package api

import (
	"encoding/json"

	"wrht/internal/exp"
	"wrht/internal/fabric"
)

// StepCost mirrors fabric.StepCost with stable JSON names.
type StepCost struct {
	Setup         float64 `json:"setup"`
	Serialization float64 `json:"serialization"`
	OEO           float64 `json:"oeo"`
	RouterDelay   float64 `json:"router_delay"`
	Total         float64 `json:"total"`
	MaxBytes      float64 `json:"max_bytes"`
}

// StepReport mirrors fabric.StepReport; the phase is serialized by
// name ("reduce", "all-to-all", "broadcast").
type StepReport struct {
	Phase      string   `json:"phase"`
	Cost       StepCost `json:"cost"`
	Overlapped float64  `json:"overlapped,omitempty"`
}

// SimResult mirrors fabric.Result: the fabric breakdown of one
// engine run. All times are seconds of simulated time — nothing here
// depends on the host clock.
type SimResult struct {
	Fabric       string       `json:"fabric"`
	Algorithm    string       `json:"algorithm"`
	Steps        int          `json:"steps"`
	Time         float64      `json:"time_seconds"`
	TransferTime float64      `json:"transfer_seconds"`
	OverheadTime float64      `json:"overhead_seconds"`
	RouterTime   float64      `json:"router_seconds"`
	OverlapSaved float64      `json:"overlap_saved_seconds,omitempty"`
	PerStep      []StepReport `json:"per_step,omitempty"`
}

// SimResultFrom converts an engine result into its API mirror.
func SimResultFrom(r fabric.Result) SimResult {
	out := SimResult{
		Fabric:       r.Fabric,
		Algorithm:    r.Algorithm,
		Steps:        r.Steps,
		Time:         r.Time,
		TransferTime: r.TransferTime,
		OverheadTime: r.OverheadTime,
		RouterTime:   r.RouterTime,
		OverlapSaved: r.OverlapSaved,
	}
	for _, sr := range r.PerStep {
		out.PerStep = append(out.PerStep, StepReport{
			Phase: sr.Phase.String(),
			Cost: StepCost{
				Setup:         sr.Cost.Setup,
				Serialization: sr.Cost.Serialization,
				OEO:           sr.Cost.OEO,
				RouterDelay:   sr.Cost.RouterDelay,
				Total:         sr.Cost.Total,
				MaxBytes:      sr.Cost.MaxBytes,
			},
			Overlapped: sr.Overlapped,
		})
	}
	return out
}

// BuildResponse reports one schedule construction.
type BuildResponse struct {
	Version string `json:"version"`
	// Kind echoes the (normalized) requested kind; Algorithm is the
	// built schedule's algorithm name.
	Kind      string `json:"kind"`
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	// Wavelengths echoes the budget the schedule was validated against
	// (0 = not validated: no budget was given).
	Wavelengths int  `json:"wavelengths,omitempty"`
	Steps       int  `json:"steps"`
	Transfers   int  `json:"transfers"`
	Validated   bool `json:"validated"`
	// Streamed reports the stream-and-consume construction path.
	Streamed bool `json:"streamed,omitempty"`
}

// SimulateResponse reports one timed run.
type SimulateResponse struct {
	Version      string    `json:"version"`
	Backend      string    `json:"backend"`
	PayloadBytes float64   `json:"payload_bytes"`
	Result       SimResult `json:"result"`
	// Trace is the run's simulated-time Perfetto timeline (Chrome
	// Trace Event JSON), present when the request asked for it.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// CrossFabricCell is one (algorithm, mode) cell of the crossfabric
// sweep; mode is "optical", "optical+overlap" or "electrical".
type CrossFabricCell struct {
	Algorithm string    `json:"algorithm"`
	Mode      string    `json:"mode"`
	Result    SimResult `json:"result"`
}

// CrossFabricResult is the crossfabric sweep payload: every cell of
// the one-engine-two-backends comparison, sorted by algorithm then
// mode so the encoding is deterministic.
type CrossFabricResult struct {
	N            int               `json:"n"`
	Wavelengths  int               `json:"wavelengths"`
	PayloadBytes float64           `json:"payload_bytes"`
	Cells        []CrossFabricCell `json:"cells"`
}

// OverlapPoint mirrors exp.OverlapPoint: the opportunistic baseline
// versus the IR pass pipeline at one ring size.
type OverlapPoint struct {
	N              int     `json:"n"`
	Wavelengths    int     `json:"wavelengths"`
	BaselineSteps  int     `json:"baseline_steps"`
	PassSteps      int     `json:"pass_steps"`
	BaselineHidden int     `json:"baseline_hidden"`
	PassHidden     int     `json:"pass_hidden"`
	BaselineSaved  float64 `json:"baseline_saved_seconds"`
	PassSaved      float64 `json:"pass_saved_seconds"`
	BaselineTime   float64 `json:"baseline_seconds"`
	PassTime       float64 `json:"pass_seconds"`
}

// OverlapPointFrom converts a sweep point into its API mirror.
func OverlapPointFrom(p exp.OverlapPoint) OverlapPoint {
	return OverlapPoint{
		N:              p.N,
		Wavelengths:    p.W,
		BaselineSteps:  p.BaselineSteps,
		PassSteps:      p.PassSteps,
		BaselineHidden: p.BaselineHidden,
		PassHidden:     p.PassHidden,
		BaselineSaved:  p.BaselineSaved,
		PassSaved:      p.PassSaved,
		BaselineTime:   p.BaselineTime,
		PassTime:       p.PassTime,
	}
}

// FaultsPoint mirrors exp.DegradationPoint: one (ring size,
// dead-wavelength count) cell of the degradation sweep.
type FaultsPoint struct {
	N                    int     `json:"n"`
	Dead                 int     `json:"dead"`
	EffectiveWavelengths int     `json:"effective_wavelengths"`
	Steps                int     `json:"steps"`
	StaticTime           float64 `json:"static_seconds"`
	Slowdown             float64 `json:"slowdown"`
	InjectedTime         float64 `json:"injected_seconds"`
	Reschedules          int     `json:"reschedules"`
}

// FaultsPointFrom converts a degradation point into its API mirror.
func FaultsPointFrom(p exp.DegradationPoint) FaultsPoint {
	return FaultsPoint{
		N:                    p.N,
		Dead:                 p.Dead,
		EffectiveWavelengths: p.EffW,
		Steps:                p.Steps,
		StaticTime:           p.StaticTime,
		Slowdown:             p.Slowdown,
		InjectedTime:         p.InjectedTime,
		Reschedules:          p.Reschedules,
	}
}

// SweepResponse reports one named sweep; exactly one of the payload
// fields is populated, matching the request's sweep name.
type SweepResponse struct {
	Version     string             `json:"version"`
	Sweep       string             `json:"sweep"`
	CrossFabric *CrossFabricResult `json:"crossfabric,omitempty"`
	Overlap     []OverlapPoint     `json:"overlap,omitempty"`
	Faults      []FaultsPoint      `json:"faults,omitempty"`
}

// PlanPoint mirrors exp.PlanPoint: one planned and cross-checked grid
// point of the all-to-all planner sweep.
type PlanPoint struct {
	Fabric      string  `json:"fabric"`
	R           int     `json:"r"`
	Wavelengths int     `json:"wavelengths"`
	AMicro      float64 `json:"a_micro"`
	Chosen      string  `json:"chosen"`
	ChosenSteps int     `json:"chosen_steps"`
	Predicted   float64 `json:"predicted_seconds"`
	Simulated   float64 `json:"simulated_seconds"`
	Argmin      bool    `json:"argmin"`
	OneShot     float64 `json:"one_shot_seconds,omitempty"`
	Fallback    float64 `json:"fallback_seconds,omitempty"`
}

// PlanPointFrom converts a planner grid point into its API mirror.
func PlanPointFrom(p exp.PlanPoint) PlanPoint {
	return PlanPoint{
		Fabric:      p.Fabric,
		R:           p.R,
		Wavelengths: p.W,
		AMicro:      p.AMicro,
		Chosen:      p.Chosen,
		ChosenSteps: p.ChosenSteps,
		Predicted:   p.Predicted,
		Simulated:   p.Simulated,
		Argmin:      p.Argmin,
		OneShot:     p.OneShot,
		Fallback:    p.Fallback,
	}
}

// RescuePoint mirrors exp.RescuePoint: the planner rescue of one
// fallback configuration.
type RescuePoint struct {
	N             int     `json:"n"`
	Wavelengths   int     `json:"wavelengths"`
	FinalR        int     `json:"final_r"`
	Requirement   int     `json:"requirement"`
	FallbackSteps int     `json:"fallback_steps"`
	PlannedSteps  int     `json:"planned_steps"`
	FallbackTime  float64 `json:"fallback_seconds"`
	PlannedTime   float64 `json:"planned_seconds"`
	Speedup       float64 `json:"speedup"`
}

// RescuePointFrom converts a rescue point into its API mirror.
func RescuePointFrom(p exp.RescuePoint) RescuePoint {
	return RescuePoint{
		N:             p.N,
		Wavelengths:   p.W,
		FinalR:        p.FinalR,
		Requirement:   p.Requirement,
		FallbackSteps: p.FallbackSteps,
		PlannedSteps:  p.PlannedSteps,
		FallbackTime:  p.FallbackTime,
		PlannedTime:   p.PlannedTime,
		Speedup:       p.Speedup,
	}
}

// PlanResponse reports the planner grid sweep plus the rescue table.
type PlanResponse struct {
	Version string        `json:"version"`
	Points  []PlanPoint   `json:"points"`
	Rescue  []RescuePoint `json:"rescue,omitempty"`
}
