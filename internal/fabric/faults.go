package fabric

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/fault"
)

// DefaultMaxReschedules bounds how many times a faulted run rebuilds
// its schedule before giving up.
const DefaultMaxReschedules = 3

// FaultOptions configures a fault-aware run (RunScheduleFaulted).
type FaultOptions struct {
	// Mask is the fault state at the start of the run; nil means
	// healthy. The run clones it, so injected events never leak into
	// the caller's mask.
	Mask *fault.Mask
	// Injector delivers faults mid-run, keyed by the global count of
	// executed steps (which keeps advancing across reschedule
	// restarts, so an injection can never fire twice).
	Injector *fault.Injector
	// MaxReschedules bounds the retry-with-reschedule loop; zero means
	// DefaultMaxReschedules. Exceeding it is a hard error: the run
	// cannot make progress against the fault load.
	MaxReschedules int
	// Rebuild produces a fresh schedule for the accumulated fault
	// state after a fault invalidates the current one (typically a
	// core.BuildWRHTMasked closure). A nil Rebuild makes any fault hit
	// a hard error.
	Rebuild func(*fault.Mask) (*core.Schedule, error)
	// Observer, when non-nil, is notified of every reschedule on top
	// of the regular step events.
	Observer FaultObserver
}

// FaultObserver extends the step-level Observer with reschedule
// notifications. internal/obs implements it on FabricObserver.
type FaultObserver interface {
	// FaultRescheduled fires when a fault hit invalidates the current
	// schedule, before the rebuilt schedule restarts.
	FaultRescheduled(ev FaultEvent)
}

// FaultEvent describes one reschedule decision.
type FaultEvent struct {
	// Time is the simulated time at which the fault was detected.
	Time float64
	// Step is the global executed-step count at detection.
	Step int
	// Reschedule is the 1-based reschedule ordinal.
	Reschedule int
	// Reason is the fault that broke the schedule.
	Reason error
}

// FaultResult is a Result plus the fault bookkeeping of the run.
type FaultResult struct {
	Result
	// Reschedules is how many times the schedule was rebuilt mid-run.
	Reschedules int
	// FaultsApplied is how many injected fault events fired.
	FaultsApplied int
}

// RunScheduleFaulted executes a schedule under fault injection. Before
// each step, injector events due at the global executed-step count are
// applied to the (cloned) mask; if any transfer of the upcoming step
// then hits a fault, the run asks Rebuild for a degraded schedule,
// validates it, and restarts it from its first step — time already
// spent is kept, modelling a fail-restart collective. With a nil mask
// and injector the run is bit-identical to RunSchedule (asserted by
// TestFaultedZeroFaultIdentity).
//
// Overlap mode is rejected: hiding circuit setup under a transmission
// that a fault may abort would let a failed step contribute negative
// time.
func (e Engine) RunScheduleFaulted(s *core.Schedule, dBytes float64, fo FaultOptions) (FaultResult, error) {
	if e.Opts.Overlap {
		return FaultResult{}, fmt.Errorf("fabric: overlap mode is incompatible with fault injection")
	}
	f := e.Fabric
	budget, err := f.CircuitBudget(e.Opts.UseFiberMultiplicity)
	if err != nil {
		return FaultResult{}, err
	}
	check := func(ns *core.Schedule) error {
		if err := f.CheckSchedule(ns); err != nil {
			return err
		}
		if e.Opts.ValidateWavelengths {
			if err := ns.Validate(budget); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(s); err != nil {
		return FaultResult{}, err
	}
	var mask *fault.Mask
	if fo.Mask != nil {
		mask = fo.Mask.Clone()
	} else {
		mask = fault.NewMask(s.Ring.N)
	}
	maxRes := fo.MaxReschedules
	if maxRes == 0 {
		maxRes = DefaultMaxReschedules
	}
	elems, err := core.ElemsOf(dBytes)
	if err != nil {
		return FaultResult{}, fmt.Errorf("fabric: %w", err)
	}
	res := FaultResult{Result: Result{Fabric: f.Name(), Algorithm: s.Algorithm}}
	var memo map[string]StepCost
	g := 0 // global executed-step counter: the injector's clock
	next := 0
	for {
		restarted := false
		for k := 0; k < len(s.Steps); k++ {
			for next < fo.Injector.Len() && fo.Injector.At(next).Step <= g {
				mask.Apply(fo.Injector.At(next).Fault)
				res.FaultsApplied++
				next++
			}
			if reason := faultedStep(s, k, mask); reason != nil {
				res.Reschedules++
				if fo.Observer != nil {
					fo.Observer.FaultRescheduled(FaultEvent{
						Time: res.Time, Step: g, Reschedule: res.Reschedules, Reason: reason,
					})
				}
				if res.Reschedules > maxRes {
					return FaultResult{}, fmt.Errorf("fabric: reschedule budget (%d) exhausted at step %d: %w", maxRes, g, reason)
				}
				if fo.Rebuild == nil {
					return FaultResult{}, fmt.Errorf("fabric: fault at step %d and no Rebuild configured: %w", g, reason)
				}
				ns, err := fo.Rebuild(mask.Clone())
				if err != nil {
					return FaultResult{}, fmt.Errorf("fabric: no feasible degraded schedule after fault at step %d: %w", g, err)
				}
				if err := check(ns); err != nil {
					return FaultResult{}, fmt.Errorf("fabric: rebuilt schedule rejected: %w", err)
				}
				s = ns
				res.Algorithm = s.Algorithm
				restarted = true
				break
			}
			st := s.Steps[k]
			var c StepCost
			if key, ok := f.StepKey(st, elems); ok {
				if memo == nil {
					memo = make(map[string]StepCost)
				}
				c, ok = memo[key]
				if !ok {
					c = f.StepCost(st, elems)
					memo[key] = c
				}
			} else {
				c = f.StepCost(st, elems)
			}
			if e.Opts.Observer != nil {
				e.Opts.Observer.StepExecuted(StepEvent{
					Index: g, Start: res.Time, Step: &s.Steps[k],
					Cost: c, Hidden: 0, Elems: elems,
				})
			}
			res.Time += c.Total
			res.TransferTime += c.Serialization + c.OEO
			res.OverheadTime += c.Setup
			res.RouterTime += c.RouterDelay
			res.PerStep = append(res.PerStep, StepReport{Phase: st.Phase, Cost: c})
			res.Steps++
			g++
		}
		if !restarted {
			return res, nil
		}
	}
}

// faultedStep returns the first fault any transfer of step k hits under
// the mask, or nil if the step can run.
func faultedStep(s *core.Schedule, k int, m *fault.Mask) error {
	for _, tr := range s.Steps[k].Transfers {
		if err := m.TransferErr(s.Ring, tr.Src, tr.Dst, tr.Dir, tr.Wavelength); err != nil {
			return fmt.Errorf("step %d transfer %v: %w", k, tr, err)
		}
	}
	return nil
}
