package optical

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/topo"
)

// Control plane (§3.2): TeraRack reconfigures micro-ring resonators
// (MRRs) between steps. On the transmit side an MRR array modulates the
// node's data onto chosen wavelengths; on the receive side a second
// array *drops* (absorbs) the wavelengths addressed to the node and
// passes the rest through. This file compiles a schedule step into
// explicit per-node MRR configurations and verifies them by propagating
// light around the ring — a stricter, physical-level check than the
// arc-overlap validation in internal/rwa: it also catches drops that
// shadow a downstream receiver and modulators injecting onto a
// wavelength that is still lit.

// MRRConfig is one node's resonator configuration for one step and one
// travel direction: the sets of wavelength indices its Tx array
// modulates and its Rx array drops. A wavelength absent from both sets
// passes through the node untouched.
type MRRConfig struct {
	Modulate map[int]bool // wavelengths this node's Tx array drives
	Drop     map[int]bool // wavelengths this node's Rx array absorbs
}

func newMRRConfig() *MRRConfig {
	return &MRRConfig{Modulate: map[int]bool{}, Drop: map[int]bool{}}
}

// StepConfig is the whole ring's MRR state for one step: per direction,
// per node.
type StepConfig struct {
	N     int
	Nodes map[topo.Direction][]*MRRConfig
}

// CompileStep translates a schedule step into MRR configurations. It
// fails if two transfers ask one node to modulate or drop the same
// wavelength in the same direction (a physical impossibility: one MRR
// per (node, direction, wavelength)).
func CompileStep(n int, st core.Step) (*StepConfig, error) {
	cfg := &StepConfig{N: n, Nodes: map[topo.Direction][]*MRRConfig{}}
	for _, dir := range []topo.Direction{topo.CW, topo.CCW} {
		nodes := make([]*MRRConfig, n)
		for i := range nodes {
			nodes[i] = newMRRConfig()
		}
		cfg.Nodes[dir] = nodes
	}
	for ti, t := range st.Transfers {
		if t.Src < 0 || t.Src >= n || t.Dst < 0 || t.Dst >= n {
			return nil, fmt.Errorf("optical: transfer %d out of range: %v", ti, t)
		}
		nodes := cfg.Nodes[t.Dir]
		if nodes[t.Src].Modulate[t.Wavelength] {
			return nil, fmt.Errorf("optical: node %d already modulates λ%d %s (transfer %d)", t.Src, t.Wavelength, t.Dir, ti)
		}
		if nodes[t.Dst].Drop[t.Wavelength] {
			return nil, fmt.Errorf("optical: node %d already drops λ%d %s (transfer %d)", t.Dst, t.Wavelength, t.Dir, ti)
		}
		nodes[t.Src].Modulate[t.Wavelength] = true
		nodes[t.Dst].Drop[t.Wavelength] = true
	}
	return cfg, nil
}

// VerifyStep propagates every modulated wavelength around the ring and
// checks that it is absorbed exactly by the intended receiver of its
// transfer: no other node drops it first (shadowing), and no second
// modulator injects onto it while it is still lit (collision). The
// schedule step must have compiled cleanly first.
func VerifyStep(n int, st core.Step) error {
	cfg, err := CompileStep(n, st)
	if err != nil {
		return err
	}
	ring := topo.NewRing(n)
	for ti, t := range st.Transfers {
		nodes := cfg.Nodes[t.Dir]
		// Walk from src toward dst in the travel direction; the signal
		// passes every intermediate node's Rx array.
		hops := ring.Dist(t.Src, t.Dst, t.Dir)
		at := t.Src
		for h := 0; h < hops; h++ {
			if t.Dir == topo.CW {
				at = (at + 1) % n
			} else {
				at = (at - 1 + n) % n
			}
			if at == t.Dst {
				break
			}
			if nodes[at].Drop[t.Wavelength] {
				return fmt.Errorf("optical: transfer %d (%v): node %d drops λ%d before it reaches %d (shadowed)",
					ti, t, at, t.Wavelength, t.Dst)
			}
			if nodes[at].Modulate[t.Wavelength] {
				return fmt.Errorf("optical: transfer %d (%v): node %d modulates onto lit λ%d (collision)",
					ti, t, at, t.Wavelength)
			}
		}
		if !cfg.Nodes[t.Dir][t.Dst].Drop[t.Wavelength] {
			return fmt.Errorf("optical: transfer %d (%v): destination does not drop its wavelength", ti, t)
		}
	}
	return nil
}

// VerifySchedule runs the MRR-level check on every step.
func VerifySchedule(s *core.Schedule) error {
	for si, st := range s.Steps {
		if err := VerifyStep(s.Ring.N, st); err != nil {
			return fmt.Errorf("optical: step %d: %w", si, err)
		}
	}
	return nil
}

// MRRUseCount reports the peak number of active resonators any single
// node needs in one step (Tx + Rx over both directions), which must fit
// the hardware: a TeraRack node has 64 MRRs per interface and four
// interfaces (§3.2).
func MRRUseCount(s *core.Schedule) int {
	peak := 0
	for _, st := range s.Steps {
		cfg, err := CompileStep(s.Ring.N, st)
		if err != nil {
			continue
		}
		use := make([]int, s.Ring.N)
		for _, nodes := range cfg.Nodes {
			for i, c := range nodes {
				use[i] += len(c.Modulate) + len(c.Drop)
			}
		}
		for _, u := range use {
			if u > peak {
				peak = u
			}
		}
	}
	return peak
}
