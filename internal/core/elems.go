package core

import (
	"fmt"
	"math"
)

// ElemsOf converts a per-node payload size in bytes into the vector
// length in 4-byte float32 elements — the unit every timing path sizes
// transfers with (the paper assumes float32 gradients throughout,
// §5.1). The conversion truncates a trailing partial element, matching
// the historical `int(dBytes / 4)` at every call site bit for bit, and
// rejects sizes that would otherwise be timed as a garbage or zero
// element count: NaN, infinities, negative byte counts, and values
// beyond the int range.
func ElemsOf(dBytes float64) (int, error) {
	switch {
	case math.IsNaN(dBytes):
		return 0, fmt.Errorf("core: payload size is NaN")
	case math.IsInf(dBytes, 0):
		return 0, fmt.Errorf("core: payload size is infinite")
	case dBytes < 0:
		return 0, fmt.Errorf("core: negative payload size %g bytes", dBytes)
	case dBytes/4 >= float64(math.MaxInt):
		return 0, fmt.Errorf("core: payload size %g bytes overflows the element count", dBytes)
	}
	return int(dBytes / 4), nil
}
