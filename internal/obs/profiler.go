package obs

import "time"

// Profiler aggregates wall-clock spans into per-label histograms in a
// Registry, replacing raw span streams with distributions: instead of
// one trace event per sweep point or IR pass, producers record the
// duration into a histogram family and the exposition reports
// p50/p99/max. Every histogram a profiler creates is automatically
// marked volatile (Registry.MarkVolatile) — wall-clock latencies are
// never byte-stable — so determinism checks over the exposition skip
// them by construction.
//
// Like every hook in this package the profiler is zero-cost when
// disabled: NewProfiler on a nil registry returns nil, and every method
// is safe on a nil receiver (Start returns the zero time, Hist returns
// a nil histogram whose Observe no-ops). Handle lookup (Hist) takes the
// registry lock; hot paths cache the handle so the Observe path stays
// lock-free.
type Profiler struct {
	// Metrics is the registry the histograms live in.
	Metrics *Registry
	// Now, when non-nil, replaces time.Now — the injectable clock for
	// deterministic tests, the same pattern as Tracer.Clock.
	Now func() time.Time
}

// NewProfiler returns a profiler recording into reg, or nil when reg is
// nil so the disabled path stays one pointer comparison.
func NewProfiler(reg *Registry) *Profiler {
	if reg == nil {
		return nil
	}
	return &Profiler{Metrics: reg}
}

// Hist returns the histogram for family with the given label pairs
// (see Labeled), creating it on first use and marking the family
// volatile. Callers on hot paths cache the handle.
func (p *Profiler) Hist(family string, kv ...string) *Histogram {
	if p == nil {
		return nil
	}
	p.Metrics.MarkVolatile(family)
	return p.Metrics.Histogram(Labeled(family, kv...))
}

// Start returns the span's start time (the zero time on a nil
// profiler).
func (p *Profiler) Start() time.Time {
	if p == nil {
		return time.Time{}
	}
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

// End records the span begun at start into h. Both the nil-profiler and
// nil-histogram paths are single pointer comparisons.
func (p *Profiler) End(h *Histogram, start time.Time) {
	if p == nil || h == nil {
		return
	}
	if p.Now != nil {
		h.Observe(p.Now().Sub(start).Seconds())
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Span records one complete span: the duration from start to now into
// the (family, labels) histogram. Convenience for rare events (pass
// applications, plan decisions) where caching the handle buys nothing.
func (p *Profiler) Span(start time.Time, family string, kv ...string) {
	if p == nil {
		return
	}
	p.End(p.Hist(family, kv...), start)
}
