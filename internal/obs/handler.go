package obs

import "net/http"

// MetricsHandler serves the registry's Prometheus text exposition —
// the one /metrics implementation wrhtd and wrhtsim -promaddr share.
// "?reset=1" switches to a snapshot-and-reset delta scrape.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.URL.Query().Get("reset") == "1" {
			r.ExposeAndReset(w)
			return
		}
		r.Expose(w)
	})
}
