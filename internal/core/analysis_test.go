package core

import (
	"math"
	"testing"
)

func TestCeilLog(t *testing.T) {
	cases := []struct{ base, n, want int }{
		{2, 1, 0}, {2, 2, 1}, {2, 3, 2}, {2, 1024, 10}, {2, 1025, 11},
		{129, 1024, 2}, {129, 129, 1}, {129, 130, 2},
		{5, 15, 2}, {3, 27, 3}, {3, 28, 4},
	}
	for _, c := range cases {
		if got := CeilLog(c.base, c.n); got != c.want {
			t.Errorf("CeilLog(%d, %d) = %d, want %d", c.base, c.n, got, c.want)
		}
	}
}

func TestTable1StepCounts(t *testing.T) {
	// Table 1 at N = 1024, w = 64.
	if got := StepsRing(1024); got != 2046 {
		t.Errorf("Ring steps = %d, want 2046", got)
	}
	if got := StepsHRingPaper(1024, 5, 64); got != 417 {
		t.Errorf("H-Ring steps = %d, want 417", got)
	}
	if got := StepsBT(1024); got != 20 {
		t.Errorf("BT steps = %d, want 20", got)
	}
	st, err := StepsWRHT(Config{N: 1024, Wavelengths: 64, GroupSize: 129})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 3 {
		t.Errorf("WRHT steps = %d, want 3", st.Total)
	}
}

func TestStepsHRingPaperVariants(t *testing.T) {
	// ⌈m/w⌉ > 1 switches to the second closed form.
	small := StepsHRingPaper(1024, 5, 64) // w >= m
	big := StepsHRingPaper(1024, 5, 4)    // w < m
	if big <= small {
		t.Errorf("H-Ring with scarce wavelengths should need more steps: %d vs %d", big, small)
	}
	if got := StepsHRingPaper(1024, 5, 4); got != 424 {
		t.Errorf("H-Ring(1024,5,w=4) = %d, want 424 (2(2·25+1024)/5−6 rounded up)", got)
	}
	if StepsHRingPaper(1, 5, 4) != 0 {
		t.Error("single node should need 0 steps")
	}
}

func TestLemma1LowerBound(t *testing.T) {
	// Lemma 1: 2⌈log_{2w+1} N⌉; default-config WRHT with all-to-all
	// disabled achieves it exactly.
	for _, c := range []struct{ n, w int }{{1024, 64}, {4096, 64}, {100, 4}, {15, 2}} {
		lb := LowerBoundSteps(c.n, c.w)
		st, err := StepsWRHT(Config{N: c.n, Wavelengths: c.w, DisableAllToAll: true})
		if err != nil {
			t.Fatal(err)
		}
		if st.Total != lb {
			t.Errorf("N=%d w=%d: gather-only θ=%d, Lemma-1 bound %d", c.n, c.w, st.Total, lb)
		}
		// With the all-to-all enabled WRHT may beat the stated bound by one.
		stA, _ := StepsWRHT(Config{N: c.n, Wavelengths: c.w})
		if stA.Total > lb {
			t.Errorf("N=%d w=%d: θ=%d exceeds Lemma-1 bound %d", c.n, c.w, stA.Total, lb)
		}
	}
}

func TestCommTimeEq6(t *testing.T) {
	// Eq 6 with Table-2 constants: 3 steps of 100 MB at 40 Gb/s + 25 µs.
	p := TimeParams{BytesPerSec: 5e9, StepOverheadSec: 25e-6}
	d := 100e6
	got := p.CommTime(3, d)
	want := 3 * (d/5e9 + 25e-6)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CommTime = %g, want %g", got, want)
	}
}

func TestTheorem1LowerBound(t *testing.T) {
	p := TimeParams{BytesPerSec: 5e9, StepOverheadSec: 25e-6}
	d := 1.2288e9 // BEiT-class payload
	lb := p.TheoremOneLowerBound(1024, 64, d)
	// 2⌈log_129 1024⌉ = 4 steps.
	want := 4 * (d/5e9 + 25e-6)
	if math.Abs(lb-want) > 1e-9 {
		t.Fatalf("Theorem 1 bound = %g, want %g", lb, want)
	}
	// Any feasible WRHT configuration must not beat the bound by more
	// than the single all-to-all step saving.
	st, _ := StepsWRHT(Config{N: 1024, Wavelengths: 64})
	if tm := p.CommTime(st.Total, d); tm > lb {
		t.Fatalf("achieved %g > Theorem-1 bound %g", tm, lb)
	}
}

func TestProfileTimeMatchesCommTime(t *testing.T) {
	p := TimeParams{BytesPerSec: 5e9, StepOverheadSec: 25e-6}
	pr := Profile{Groups: []ProfileGroup{{Steps: 3, FracOfD: 1}}}
	d := 7.7e8
	if got, want := p.ProfileTime(pr, d), p.CommTime(3, d); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ProfileTime = %g, want %g", got, want)
	}
}

func TestRingCrossover(t *testing.T) {
	p := TimeParams{BytesPerSec: 5e9, StepOverheadSec: 25e-6}
	// Small payloads: WRHT wins immediately (steps dominate).
	if n := p.RingCrossoverN(64, 1e6, 1<<20); n == 0 || n > 64 {
		t.Errorf("small-payload crossover N = %d, want early", n)
	}
	// BEiT-class payloads: crossover happens but later.
	small := p.RingCrossoverN(64, 100e6, 1<<20)
	big := p.RingCrossoverN(64, 1.23e9, 1<<20)
	if big == 0 {
		t.Error("BEiT-class payload should eventually cross over")
	}
	if big < small {
		t.Errorf("larger payload should cross over later: %d < %d", big, small)
	}
}

func TestProfileOfGroupsConsecutiveSteps(t *testing.T) {
	s := &Schedule{Algorithm: "x", Ring: ringOf(4)}
	s.Steps = []Step{
		{Transfers: []Transfer{{Src: 0, Dst: 1, Chunk: whole()}}},
		{Transfers: []Transfer{{Src: 1, Dst: 2, Chunk: whole()}}},
		{Transfers: []Transfer{{Src: 2, Dst: 3, Chunk: half()}}},
	}
	p := ProfileOf(s)
	if len(p.Groups) != 2 || p.Groups[0].Steps != 2 || p.Groups[1].Steps != 1 {
		t.Fatalf("ProfileOf grouping wrong: %+v", p.Groups)
	}
	if p.NumSteps() != 3 {
		t.Fatalf("NumSteps = %d", p.NumSteps())
	}
}
