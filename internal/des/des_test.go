package des

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	var k Kernel
	var order []int
	k.At(3, func() { order = append(order, 3) })
	k.At(1, func() { order = append(order, 1) })
	k.At(2, func() { order = append(order, 2) })
	if end := k.Run(); end != 3 {
		t.Fatalf("final time %g, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var k Kernel
	var hits []float64
	k.After(1, func() {
		hits = append(hits, k.Now())
		k.After(2, func() { hits = append(hits, k.Now()) })
	})
	if end := k.Run(); end != 3 {
		t.Fatalf("end = %g", end)
	}
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var k Kernel
	k.At(5, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var k Kernel
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestStepAndPending(t *testing.T) {
	var k Kernel
	if k.Step() {
		t.Fatal("empty kernel stepped")
	}
	k.At(1, func() {})
	k.At(2, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending = %d", k.Pending())
	}
	if !k.Step() || k.Now() != 1 || k.Pending() != 1 {
		t.Fatalf("step state wrong: now=%g pending=%d", k.Now(), k.Pending())
	}
}

func TestQuickMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		var k Kernel
		for _, d := range delays {
			k.At(float64(d), func() {})
		}
		prev := -1.0
		for k.Step() {
			if k.Now() < prev {
				return false
			}
			prev = k.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
