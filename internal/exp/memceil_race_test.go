//go:build race

package exp

// Race-detector builds downscale the memory-ceiling test: shadow
// memory inflates every byte and the CI race job is about correctness,
// not footprint. The !race build (memceil_norace_test.go) runs the
// full 2^20-node configuration.
const memCeilingNodes = 1 << 16
