package core

import (
	"testing"
	"testing/quick"

	"wrht/internal/rwa"
)

func TestMotivationExampleFig2(t *testing.T) {
	// §3.3: 15 nodes, 2 wavelengths → WRHT finishes in 3 steps while BT
	// needs 8. Groups of m = 2w+1 = 5 with representatives 2, 7, 12.
	s, err := BuildWRHT(Config{N: 15, Wavelengths: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NumSteps(); got != 3 {
		t.Fatalf("WRHT(15, w=2) steps = %d, want 3", got)
	}
	if err := s.Validate(2); err != nil {
		t.Fatalf("schedule violates 2-wavelength budget: %v", err)
	}
	red, a2a, bc := s.StepsByPhase()
	if red != 1 || a2a != 1 || bc != 1 {
		t.Fatalf("phases = %d reduce, %d a2a, %d bcast; want 1,1,1", red, a2a, bc)
	}
	// The first step gathers to the three middle representatives.
	reps := map[int]bool{}
	for _, tr := range s.Steps[0].Transfers {
		reps[tr.Dst] = true
	}
	for _, want := range []int{2, 7, 12} {
		if !reps[want] {
			t.Errorf("node %d is not a step-1 representative (got %v)", want, reps)
		}
	}
	if len(reps) != 3 {
		t.Errorf("expected 3 representatives, got %v", reps)
	}
}

func TestTable1WRHTCell(t *testing.T) {
	// Table 1: N=1024, w=64, m=129 → 3 steps.
	st, err := StepsWRHT(Config{N: 1024, Wavelengths: 64, GroupSize: 129})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 3 {
		t.Fatalf("WRHT(1024, m=129, w=64) steps = %d, want 3", st.Total)
	}
	if !st.AllToAll || st.FinalGroup != 8 {
		t.Fatalf("expected all-to-all among 8 representatives, got %+v", st)
	}
}

func TestStepsMatchConstructedSchedule(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 15, 16, 17, 33, 64, 100, 129, 200, 513, 1024} {
		for _, w := range []int{1, 2, 4, 8, 16, 64} {
			for _, disable := range []bool{false, true} {
				cfg := Config{N: n, Wavelengths: w, DisableAllToAll: disable}
				st, err := StepsWRHT(cfg)
				if err != nil {
					t.Fatalf("StepsWRHT(%+v): %v", cfg, err)
				}
				s, err := BuildWRHT(cfg)
				if err != nil {
					t.Fatalf("BuildWRHT(%+v): %v", cfg, err)
				}
				if s.NumSteps() != st.Total {
					t.Fatalf("N=%d w=%d disable=%v: built %d steps, analysis says %d",
						n, w, disable, s.NumSteps(), st.Total)
				}
			}
		}
	}
}

func TestStepsMatchClosedForm(t *testing.T) {
	// θ must equal 2⌈log_m N⌉ or 2⌈log_m N⌉ − 1 (§4.2).
	for _, n := range []int{2, 7, 15, 16, 100, 128, 1024, 2048, 3072, 4096} {
		for _, w := range []int{2, 4, 16, 64, 256} {
			cfg := Config{N: n, Wavelengths: w}
			m := cfg.EffectiveGroupSize()
			st, err := StepsWRHT(cfg)
			if err != nil {
				t.Fatal(err)
			}
			l := CeilLog(m, n)
			if st.Total != 2*l && st.Total != 2*l-1 {
				t.Errorf("N=%d w=%d m=%d: θ=%d not in {2⌈log⌉−1, 2⌈log⌉} = {%d,%d}",
					n, w, m, st.Total, 2*l-1, 2*l)
			}
			if st.AllToAll && st.Total != 2*l-1 {
				t.Errorf("N=%d w=%d: all-to-all used but θ=%d != %d", n, w, st.Total, 2*l-1)
			}
		}
	}
}

func TestWRHTSchedulesAreConflictFreeWithinBudget(t *testing.T) {
	for _, n := range []int{2, 3, 5, 15, 16, 31, 64, 100, 128, 255} {
		for _, w := range []int{1, 2, 3, 8, 32} {
			s, err := BuildWRHT(Config{N: n, Wavelengths: w})
			if err != nil {
				t.Fatalf("N=%d w=%d: %v", n, w, err)
			}
			if err := s.Validate(w); err != nil {
				t.Errorf("N=%d w=%d: %v", n, w, err)
			}
		}
	}
}

func TestWRHTQuickValidity(t *testing.T) {
	f := func(nRaw uint16, wRaw uint8) bool {
		n := int(nRaw%600) + 1
		w := int(wRaw%40) + 1
		s, err := BuildWRHT(Config{N: n, Wavelengths: w})
		if err != nil {
			return false
		}
		return s.Validate(w) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWRHTRandomFitValid(t *testing.T) {
	s, err := BuildWRHT(Config{N: 100, Wavelengths: 8, Strategy: rwa.RandomFit, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Random fit may exceed the strict first-fit count on the all-to-all
	// step; it must still be conflict-free.
	if err := s.Validate(0); err != nil {
		t.Fatal(err)
	}
}

func TestMoreGroupedNodesNeverMoreSteps(t *testing.T) {
	// Fig 4's premise: growing m cannot increase θ (at fixed N), until it
	// plateaus.
	n := 1024
	prev := 1 << 30
	for _, m := range []int{17, 33, 65, 129} {
		st, err := StepsWRHT(Config{N: n, Wavelengths: (m - 1) / 2, GroupSize: m})
		if err != nil {
			t.Fatal(err)
		}
		if st.Total > prev {
			t.Fatalf("θ increased from %d to %d at m=%d", prev, st.Total, m)
		}
		prev = st.Total
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{N: 0, Wavelengths: 4},
		{N: 4, Wavelengths: 0},
		{N: 4, Wavelengths: 2, GroupSize: 1},
		{N: 100, Wavelengths: 2, GroupSize: 64}, // needs 32 λ > 2
	}
	for _, c := range cases {
		if _, err := BuildWRHT(c); err == nil {
			t.Errorf("BuildWRHT(%+v) should fail", c)
		}
		if _, err := StepsWRHT(c); err == nil {
			t.Errorf("StepsWRHT(%+v) should fail", c)
		}
	}
}

func TestEffectiveGroupSize(t *testing.T) {
	if m := (Config{Wavelengths: 64}).EffectiveGroupSize(); m != 129 {
		t.Fatalf("default m = %d, want 129", m)
	}
	if m := (Config{Wavelengths: 64, MaxGroupSize: 65}).EffectiveGroupSize(); m != 65 {
		t.Fatalf("constrained m = %d, want 65", m)
	}
	if m := (Config{Wavelengths: 64, GroupSize: 17}).EffectiveGroupSize(); m != 17 {
		t.Fatalf("explicit m = %d, want 17", m)
	}
}

func TestSingleNodeSchedule(t *testing.T) {
	s, err := BuildWRHT(Config{N: 1, Wavelengths: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() != 0 {
		t.Fatalf("N=1 schedule has %d steps", s.NumSteps())
	}
}

func TestGatherUsesAtMostHalfMWavelengths(t *testing.T) {
	s, err := BuildWRHT(Config{N: 129, Wavelengths: 64, GroupSize: 129, DisableAllToAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.WavelengthsNeeded(); got != 64 {
		t.Fatalf("gather over 129 nodes used %d wavelengths, want ⌊129/2⌋ = 64", got)
	}
}

func TestAllToAllWavelengthsFormula(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 8: 8, 16: 32}
	for r, want := range cases {
		if got := AllToAllWavelengths(r); got != want {
			t.Errorf("AllToAllWavelengths(%d) = %d, want %d", r, got, want)
		}
	}
}
