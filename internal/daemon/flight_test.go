package daemon

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Concurrent callers with one key must share a single execution, and
// every joiner (not the leader) must report shared=true.
func TestFlightCoalesces(t *testing.T) {
	var f flight
	var execs atomic.Int64
	release := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		execs.Add(1)
		<-release
		return "result", nil
	}
	const callers = 16
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			v, err, shared := f.Do(context.Background(), context.Background(), "k", fn)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if v != "result" {
				t.Errorf("Do value = %v, want result", v)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let everyone pile onto the call before it completes.
	for execs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != callers-1 {
		t.Fatalf("shared reported by %d callers, want %d (all but the leader)", got, callers-1)
	}
}

// Distinct keys must not coalesce.
func TestFlightDistinctKeys(t *testing.T) {
	var f flight
	var execs atomic.Int64
	fn := func(ctx context.Context) (any, error) { execs.Add(1); return nil, nil }
	if _, _, shared := f.Do(context.Background(), context.Background(), "a", fn); shared {
		t.Fatal("first call reported shared")
	}
	if _, _, shared := f.Do(context.Background(), context.Background(), "b", fn); shared {
		t.Fatal("distinct key reported shared")
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("fn executed %d times, want 2", got)
	}
}

// A completed call must leave the map: a later request with the same
// key starts a fresh execution (results are not cached).
func TestFlightNoCachingAfterCompletion(t *testing.T) {
	var f flight
	var execs atomic.Int64
	fn := func(ctx context.Context) (any, error) { return execs.Add(1), nil }
	v1, _, _ := f.Do(context.Background(), context.Background(), "k", fn)
	v2, _, _ := f.Do(context.Background(), context.Background(), "k", fn)
	if v1 == v2 {
		t.Fatalf("second call returned cached result %v", v1)
	}
}

// The leader's request context hanging up must not kill the call for
// a waiter that is still interested.
func TestFlightLeaderCancelDoesNotKillWaiters(t *testing.T) {
	var f flight
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-release:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, err, _ := f.Do(leaderCtx, context.Background(), "k", fn)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want canceled", err)
		}
	}()
	<-started
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, err, shared := f.Do(context.Background(), context.Background(), "k", fn)
		if err != nil || v != "ok" {
			t.Errorf("waiter got (%v, %v), want (ok, nil)", v, err)
		}
		if !shared {
			t.Error("waiter did not report shared")
		}
	}()
	// Give the waiter time to join, then abandon the leader.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	<-leaderDone
	close(release)
	<-waiterDone
}

// When the last waiter abandons a running call, its work context must
// be canceled so the execution stops burning pool workers.
func TestFlightAbandonCancelsWork(t *testing.T) {
	var f flight
	started := make(chan struct{})
	workCanceled := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		close(workCanceled)
		return nil, ctx.Err()
	}
	reqCtx, cancelReq := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err, _ := f.Do(reqCtx, context.Background(), "k", fn)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want canceled", err)
		}
	}()
	<-started
	cancelReq()
	<-done
	select {
	case <-workCanceled:
	case <-time.After(2 * time.Second):
		t.Fatal("work context was not canceled after the last waiter left")
	}
	// The abandoned key must be gone so a fresh request re-executes.
	v, err, _ := f.Do(context.Background(), context.Background(), "k",
		func(ctx context.Context) (any, error) { return "fresh", nil })
	if err != nil || v != "fresh" {
		t.Fatalf("post-abandon call got (%v, %v), want (fresh, nil)", v, err)
	}
}

// Daemon shutdown (base context cancellation) must abort running calls.
func TestFlightBaseCancelAbortsWork(t *testing.T) {
	var f flight
	base, cancelBase := context.WithCancel(context.Background())
	started := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	go func() {
		<-started
		cancelBase()
	}()
	_, err, _ := f.Do(context.Background(), base, "k", fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}
