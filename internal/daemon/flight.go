package daemon

import (
	"context"
	"sync"
)

// flight is a refcounted singleflight: concurrent calls with equal
// keys share one execution of fn. Unlike the classic singleflight,
// the work runs under its own context derived from the daemon's base
// context, not the leader's request context — so the leader hanging
// up does not kill the call for the waiters. Each joiner holds a
// reference; when the last one abandons the call (request contexts
// all canceled), the work context is canceled and the key is dropped,
// so a sweep nobody is waiting for stops burning pool workers.
type flight struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int
	val    any
	err    error
}

// Do returns the result of fn for key, coalescing concurrent callers.
// base scopes the work's lifetime (the daemon's run context); ctx is
// this caller's request context. shared reports whether the caller
// joined an execution another request started — the coalescing-hit
// signal the obs counters expose.
func (f *flight) Do(ctx, base context.Context, key string, fn func(ctx context.Context) (any, error)) (v any, err error, shared bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = map[string]*call{}
	}
	c, ok := f.calls[key]
	if !ok {
		workCtx, cancel := context.WithCancel(base)
		c = &call{done: make(chan struct{}), cancel: cancel, refs: 0}
		f.calls[key] = c
		go func() {
			v, err := fn(workCtx)
			f.mu.Lock()
			c.val, c.err = v, err
			// The call stays joinable until it completes, then leaves the
			// map: results are not cached beyond the in-flight window.
			delete(f.calls, key)
			f.mu.Unlock()
			cancel()
			close(c.done)
		}()
	}
	c.refs++
	f.mu.Unlock()

	select {
	case <-c.done:
		f.release(key, c)
		return c.val, c.err, ok
	case <-ctx.Done():
		f.release(key, c)
		return nil, ctx.Err(), ok
	}
}

// release drops one caller's reference; the last reference out while
// the call is still running cancels the work and removes the key so a
// fresh request starts a fresh execution.
func (f *flight) release(key string, c *call) {
	f.mu.Lock()
	c.refs--
	abandoned := c.refs == 0
	select {
	case <-c.done:
		abandoned = false // completed normally; goroutine already cleaned up
	default:
	}
	if abandoned {
		if f.calls[key] == c {
			delete(f.calls, key)
		}
		c.cancel()
	}
	f.mu.Unlock()
}
