package collective

import (
	"math"
	"testing"

	"wrht/internal/core"
)

func TestRingStepCount(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 100, 1024} {
		s := BuildRing(n)
		if got, want := s.NumSteps(), core.StepsRing(n); got != want {
			t.Errorf("Ring(%d) steps = %d, want %d", n, got, want)
		}
	}
}

func TestRingSingleWavelengthAndValid(t *testing.T) {
	for _, n := range []int{2, 3, 16, 65} {
		s := BuildRing(n)
		if s.WavelengthsNeeded() > 1 {
			t.Errorf("Ring(%d) uses %d wavelengths, want 1", n, s.WavelengthsNeeded())
		}
		if err := s.Validate(1); err != nil {
			t.Errorf("Ring(%d): %v", n, err)
		}
	}
}

func TestBTStepCountAndFig2(t *testing.T) {
	// Paper Fig 2a: BT needs 8 steps on 15 nodes.
	if got := BuildBT(15).NumSteps(); got != 8 {
		t.Errorf("BT(15) steps = %d, want 8", got)
	}
	for _, n := range []int{2, 15, 16, 100, 1024} {
		if got, want := BuildBT(n).NumSteps(), core.StepsBT(n); got != want {
			t.Errorf("BT(%d) steps = %d, want %d", n, got, want)
		}
	}
}

func TestBTSingleWavelengthAndValid(t *testing.T) {
	for _, n := range []int{2, 15, 64, 100} {
		s := BuildBT(n)
		if s.WavelengthsNeeded() > 1 {
			t.Errorf("BT(%d) uses %d wavelengths", n, s.WavelengthsNeeded())
		}
		if err := s.Validate(1); err != nil {
			t.Errorf("BT(%d): %v", n, err)
		}
	}
}

func TestRDStepCountAndValidity(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64} {
		s, err := BuildRD(n)
		if err != nil {
			t.Fatal(err)
		}
		want := 2 * core.CeilLog(2, n)
		if s.NumSteps() != want {
			t.Errorf("RD(%d) steps = %d, want %d", n, s.NumSteps(), want)
		}
		// RD is an electrical algorithm but its optical expression must
		// still be conflict-free (unbounded wavelength budget).
		if err := s.Validate(0); err != nil {
			t.Errorf("RD(%d): %v", n, err)
		}
	}
}

func TestHRingStepCountNearPaperFormula(t *testing.T) {
	// Constructed H-Ring: 2(m−1) + 2(G−1) steps; the paper's closed form
	// is one step higher at its Table-1 setting.
	s, err := BuildHRing(1000, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.NumSteps(), HRingSteps(1000, 5, 64); got != want {
		t.Errorf("HRing(1000,5) steps = %d, want %d", got, want)
	}
	paper := core.StepsHRingPaper(1000, 5, 64)
	if diff := paper - s.NumSteps(); diff < 0 || diff > 2 {
		t.Errorf("constructed %d vs paper formula %d differ by %d", s.NumSteps(), paper, diff)
	}
}

func TestHRingScarceWavelengthsSerializes(t *testing.T) {
	rich, err := BuildHRing(100, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	poor, err := BuildHRing(100, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if poor.NumSteps() <= rich.NumSteps() {
		t.Errorf("w=2 steps %d should exceed w=64 steps %d", poor.NumSteps(), rich.NumSteps())
	}
	if err := poor.Validate(2); err != nil {
		t.Errorf("poor-wavelength H-Ring invalid: %v", err)
	}
	if err := rich.Validate(64); err != nil {
		t.Errorf("rich-wavelength H-Ring invalid: %v", err)
	}
}

func TestHRingWavelengthUse(t *testing.T) {
	s, err := BuildHRing(100, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.WavelengthsNeeded(); got != 10 {
		t.Errorf("HRing(m=10) uses %d wavelengths, want m=10", got)
	}
}

func TestProfilesMatchSchedules(t *testing.T) {
	params := core.TimeParams{BytesPerSec: 5e9, StepOverheadSec: 25e-6}
	d := 64e6 // divisible by all chunk counts used here
	type pair struct {
		name     string
		schedule *core.Schedule
		profile  core.Profile
	}
	rd64, err := BuildRD(64)
	if err != nil {
		t.Fatal(err)
	}
	rdProf, err := RDProfile(64)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := BuildHRing(100, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := core.Config{N: 100, Wavelengths: 8}
	ws, err := core.BuildWRHT(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	wProf, err := WRHTProfile(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []pair{
		{"ring", BuildRing(64), RingProfile(64)},
		{"bt", BuildBT(64), BTProfile(64)},
		{"rd", rd64, rdProf},
		{"hring", hr, HRingProfile(100, 5, 64)},
		{"wrht", ws, wProf},
	}
	for _, p := range pairs {
		fromSched := params.ProfileTime(core.ProfileOf(p.schedule), d)
		fromProf := params.ProfileTime(p.profile, d)
		if rel := math.Abs(fromSched-fromProf) / fromSched; rel > 1e-6 {
			t.Errorf("%s: schedule-derived time %g != analytic profile time %g (rel %g)",
				p.name, fromSched, fromProf, rel)
		}
		if p.schedule.NumSteps() != p.profile.NumSteps() {
			t.Errorf("%s: schedule steps %d != profile steps %d",
				p.name, p.schedule.NumSteps(), p.profile.NumSteps())
		}
	}
}

func TestProfileStepCountsAtPaperScale(t *testing.T) {
	// Profiles must scale to Fig-6 sizes without building schedules.
	if got := RingProfile(4096).NumSteps(); got != 8190 {
		t.Errorf("Ring profile steps = %d, want 8190", got)
	}
	if got := BTProfile(4096).NumSteps(); got != 24 {
		t.Errorf("BT profile steps = %d, want 24", got)
	}
	p, err := WRHTProfile(core.Config{N: 4096, Wavelengths: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NumSteps(); got != 4 {
		t.Errorf("WRHT profile steps = %d, want 4 (no all-to-all at m*=32)", got)
	}
	p2, err := WRHTProfile(core.Config{N: 2048, Wavelengths: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.NumSteps(); got != 3 {
		t.Errorf("WRHT(2048) profile steps = %d, want 3 (all-to-all at m*=16)", got)
	}
}

func TestRDProfileRejectsNonPow2(t *testing.T) {
	if _, err := RDProfile(100); err == nil {
		t.Fatal("RDProfile(100) should fail")
	}
}

func TestTrivialSchedules(t *testing.T) {
	for _, s := range []*core.Schedule{BuildRing(1), BuildBT(1)} {
		if s.NumSteps() != 0 {
			t.Errorf("%s(1) should be empty", s.Algorithm)
		}
	}
	s, err := BuildRD(1)
	if err != nil || s.NumSteps() != 0 {
		t.Errorf("RD(1) should be empty, got %v %v", s.NumSteps(), err)
	}
	hs, err := BuildHRing(1, 2, 4)
	if err != nil || hs.NumSteps() != 0 {
		t.Errorf("HRing(1) should be empty, got %v", err)
	}
	if HRingProfile(1, 5, 4).NumSteps() != 0 || RingProfile(1).NumSteps() != 0 || BTProfile(1).NumSteps() != 0 {
		t.Error("single-node profiles should be empty")
	}
}
