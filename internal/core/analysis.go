package core

import "fmt"

// CeilLog returns ⌈log_base(n)⌉ for n ≥ 1 and base ≥ 2, computed with
// integer arithmetic: the smallest L with base^L ≥ n.
func CeilLog(base, n int) int {
	if base < 2 {
		panic(fmt.Sprintf("core: CeilLog base %d < 2", base))
	}
	if n < 1 {
		panic(fmt.Sprintf("core: CeilLog n %d < 1", n))
	}
	l, p := 0, 1
	for p < n {
		p *= base
		l++
	}
	return l
}

// StepsRing returns the step count of Ring all-reduce, 2(N−1) (Table 1).
func StepsRing(n int) int {
	if n <= 1 {
		return 0
	}
	return 2 * (n - 1)
}

// StepsBT returns the step count of binary-tree all-reduce,
// 2⌈log₂N⌉ (Table 1).
func StepsBT(n int) int {
	if n <= 1 {
		return 0
	}
	return 2 * CeilLog(2, n)
}

// StepsHRingPaper returns the H-Ring step count using the paper's
// closed forms (Table 1): 2(m²+N)/m − 3 when ⌈m/w⌉ = 1, and
// 2(2m²+N)/m − 6 when ⌈m/w⌉ > 1, rounded up. For N=1024, m=5, w=64 this
// yields the paper's 417.
func StepsHRingPaper(n, m, w int) int {
	if n <= 1 {
		return 0
	}
	if m < 2 || w < 1 {
		panic(fmt.Sprintf("core: StepsHRingPaper m=%d w=%d invalid", m, w))
	}
	if (m+w-1)/w == 1 {
		return ceilDiv(2*(m*m+n), m) - 3
	}
	return ceilDiv(2*(2*m*m+n), m) - 6
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// WRHTSteps describes the analytic step structure of a WRHT schedule.
type WRHTSteps struct {
	// GatherLevels is the number of grouped-gather reduce levels.
	GatherLevels int
	// AllToAll reports whether the final reduce step is the all-to-all
	// exchange among representatives (θ = 2⌈log_m N⌉ − 1) rather than a
	// gather to a single root (θ = 2⌈log_m N⌉).
	AllToAll bool
	// FinalGroup is the representative count entering the final reduce
	// step (m* in §4.1.2).
	FinalGroup int
	// Planned reports that Config.PlanAllToAll replaced the single-root
	// gather fallback with a multi-round reconfiguration plan;
	// PlanSteps is that plan's step count (included in Total).
	Planned   bool
	PlanSteps int
	// Total is θ, the total communication step count.
	Total int
}

// StepsWRHT computes the WRHT step structure for the configuration by
// replaying the level recursion without materialising transfers. It
// agrees exactly with BuildWRHT (asserted by the test suite).
func StepsWRHT(cfg Config) (WRHTSteps, error) {
	if err := cfg.validate(); err != nil {
		return WRHTSteps{}, err
	}
	m := cfg.EffectiveGroupSize()
	r := cfg.N
	var out WRHTSteps
	if r <= 1 {
		return out, nil
	}
	for r > 1 {
		if r <= m && !cfg.DisableAllToAll && AllToAllRequirement(r) <= cfg.Wavelengths {
			out.AllToAll = true
			out.FinalGroup = r
			break
		}
		if r <= m && !cfg.DisableAllToAll && cfg.PlanAllToAll {
			if plan, ok := DefaultPhasePlan(r, cfg.Wavelengths); ok {
				out.Planned = true
				out.PlanSteps = plan.NumSteps()
				out.FinalGroup = r
				break
			}
		}
		if r <= m {
			out.FinalGroup = r
		}
		r = ceilDiv(r, m)
		out.GatherLevels++
	}
	switch {
	case out.AllToAll:
		out.Total = 2*out.GatherLevels + 1 // gathers + a2a + broadcasts
	case out.Planned:
		out.Total = 2*out.GatherLevels + out.PlanSteps // gathers + plan rounds + broadcasts
	default:
		out.Total = 2 * out.GatherLevels
	}
	return out, nil
}

// LowerBoundSteps returns Lemma 1's lower bound on the WRHT step count in
// an N-node ring with w wavelengths: 2⌈log_{2w+1} N⌉.
func LowerBoundSteps(n, w int) int {
	if n <= 1 {
		return 0
	}
	return 2 * CeilLog(2*w+1, n)
}

// TimeParams are the Eq-6 timing constants of the optical system.
type TimeParams struct {
	// BytesPerSec is B, the per-wavelength bandwidth (40 Gb/s in Table 2,
	// i.e. 5e9 bytes/s).
	BytesPerSec float64
	// StepOverheadSec is a, the O/E/O conversion plus MRR reconfiguration
	// delay charged once per communication step (25 µs in Table 2).
	StepOverheadSec float64
}

// CommTime evaluates Eq (6): T = d·θ/B + a·θ for a collective whose every
// step moves d bytes on its busiest circuit.
func (p TimeParams) CommTime(steps int, dBytes float64) float64 {
	return float64(steps) * (dBytes/p.BytesPerSec + p.StepOverheadSec)
}

// ProfileTime evaluates the Eq-6 model over an analytic step profile:
// Σ groups steps × (frac·d/B + a).
func (p TimeParams) ProfileTime(pr Profile, dBytes float64) float64 {
	var t float64
	for _, g := range pr.Groups {
		t += float64(g.Steps) * (g.FracOfD*dBytes/p.BytesPerSec + p.StepOverheadSec)
	}
	return t
}

// TheoremOneLowerBound returns Theorem 1's optimal WRHT communication
// time: (2d⌈log_m N⌉)/B + 2a⌈log_m N⌉ with m = 2w+1.
func (p TimeParams) TheoremOneLowerBound(n, w int, dBytes float64) float64 {
	return p.CommTime(LowerBoundSteps(n, w), dBytes)
}

// RingCrossoverN returns the node count beyond which fused WRHT (full
// vector per step) always has lower Eq-6 communication time than optical
// Ring all-reduce (d/N chunks, 2(N−1) steps) over power-of-two N up to
// maxN, for a d-byte vector and w wavelengths. WRHT trivially wins at
// very small N (θ ≤ 2); for large payloads Ring's chunk amortisation can
// win in a middle range until its 2(N−1) step overheads dominate — this
// returns the first power of two past that range, quantifying the §5.4
// observation. It returns 2 when Ring never wins, and 0 when Ring still
// wins at maxN.
func (p TimeParams) RingCrossoverN(w int, dBytes float64, maxN int) int {
	cross := 2
	for n := 2; n <= maxN; n *= 2 {
		st, err := StepsWRHT(Config{N: n, Wavelengths: w})
		if err != nil {
			return 0
		}
		tw := p.CommTime(st.Total, dBytes)
		ring := float64(StepsRing(n)) * (dBytes/float64(n)/p.BytesPerSec + p.StepOverheadSec)
		if ring <= tw {
			cross = 2 * n
		}
	}
	if cross > maxN {
		return 0
	}
	return cross
}
