package core

import (
	"fmt"

	"wrht/internal/rwa"
	"wrht/internal/topo"
)

// StepValidator validates a schedule one step at a time: structural
// sanity per transfer, then wavelength conflict-freedom via the delta
// occupancy index — rwa.Index.AdvanceChecked applies only the
// occupy/release diff against the previous step instead of the old
// Reset+replay. The retained state is two circuit buffers (previous and
// current step) and the index, so validating a streamed schedule costs
// O(max step) + O(index) memory, independent of the step count (pinned
// by TestValidateAllocsStepCountIndependent).
//
// Error behaviour is bit-identical to the materialized validator: when
// the delta check trips (or a wavelength is out of range), the step is
// re-validated through rwa.Index.Validate — Reset+replay with the
// quadratic-oracle fallback — so the reported error, including which
// rwa.Conflict pair is named, matches the legacy path exactly. The
// request/arc/assignment view that fallback needs is only built on that
// error path, never per clean step.
type StepValidator struct {
	ring        topo.Ring
	ix          *rwa.Index
	wavelengths int
	si          int
	prev, next  []rwa.Circuit
}

// NewStepValidator returns a validator over the caller-supplied index
// (which may carry pre-occupied fault-mask cells; it is reset once on
// entry, preserving them) checking every wavelength against the budget
// (0 disables the range check).
func NewStepValidator(ring topo.Ring, ix *rwa.Index, wavelengths int) *StepValidator {
	ix.Reset()
	return &StepValidator{ring: ring, ix: ix, wavelengths: wavelengths}
}

// Step validates the next schedule step. Steps must be presented in
// schedule order; the reported step index counts calls.
func (v *StepValidator) Step(st *Step) error {
	si := v.si
	v.si++
	n := v.ring.N
	v.next = v.next[:0]
	rangeBad := false
	for ti := range st.Transfers {
		t := &st.Transfers[ti]
		if t.Src < 0 || t.Src >= n || t.Dst < 0 || t.Dst >= n {
			return fmt.Errorf("core: step %d transfer %d: node out of range: %v", si, ti, *t)
		}
		if t.Src == t.Dst {
			return fmt.Errorf("core: step %d transfer %d: self transfer: %v", si, ti, *t)
		}
		if err := t.Chunk.Validate(); err != nil {
			return fmt.Errorf("core: step %d transfer %d: %w", si, ti, err)
		}
		v.next = append(v.next, rwa.Circuit{Dir: t.Dir, Arc: v.ring.ArcOf(t.Src, t.Dst, t.Dir), W: t.Wavelength})
		if t.Wavelength < 0 || (v.wavelengths > 0 && t.Wavelength >= v.wavelengths) {
			rangeBad = true
		}
	}
	ok := false
	if !rangeBad {
		// Delta path: release the previous step's circuits, occupy this
		// step's, probing each newly occupied circuit for clashes with
		// the step's other circuits and the fault-mask cells.
		ok = v.ix.AdvanceChecked(v.prev, v.next)
	}
	if !ok {
		// Authoritative re-check through the legacy Reset+replay path so
		// the error value is bit-identical to the materialized validator.
		// This is the error path (or about to be), so building the
		// request view here — the only place it is needed — keeps the
		// clean path allocation-free. On the (defensive) chance the
		// re-check passes after all, the index is left holding exactly
		// this step's circuits over the fault mask, which is the state
		// the delta chain needs.
		reqs := make([]rwa.Request, 0, len(st.Transfers))
		arcs := make([]topo.Arc, 0, len(st.Transfers))
		asn := make(rwa.Assignment, 0, len(st.Transfers))
		for ti := range st.Transfers {
			t := &st.Transfers[ti]
			reqs = append(reqs, rwa.Request{Src: t.Src, Dst: t.Dst, Dir: t.Dir})
			arcs = append(arcs, v.ring.ArcOf(t.Src, t.Dst, t.Dir))
			asn = append(asn, t.Wavelength)
		}
		if err := v.ix.Validate(reqs, arcs, asn, v.wavelengths); err != nil {
			return fmt.Errorf("core: step %d: %w", si, err)
		}
	}
	// AdvanceChecked sorted next in place; as a set it is still this
	// step's circuits, which is all the next diff needs.
	v.prev, v.next = v.next, v.prev
	return nil
}

// ValidateSource drains a StepSource through a StepValidator: the
// streamed equivalent of Schedule.Validate, in O(max step) memory. A
// nil index allocates a fresh one for the source's ring.
func ValidateSource(src StepSource, ix *rwa.Index, wavelengths int) error {
	if ix == nil {
		ix = rwa.NewIndex(src.Ring())
	}
	v := NewStepValidator(src.Ring(), ix, wavelengths)
	for {
		st, ok := src.Next()
		if !ok {
			return nil
		}
		if err := v.Step(st); err != nil {
			return err
		}
	}
}
