// Package collective implements the baseline all-reduce algorithms the
// paper compares against (§5.2): Ring, hierarchical Ring (H-Ring [28]),
// binary tree (BT [33]), and recursive halving/doubling (RD). Each
// algorithm is available both as an explicit core.Schedule (for the
// data-plane executor, wavelength validation, and small-scale timing)
// and as an analytic core.Profile (for timing at paper scale without
// materialising millions of transfers). The test suite cross-checks
// schedule-derived and analytic profiles for equality.
package collective

import (
	"wrht/internal/core"
)

// BuildRing constructs the classic Ring all-reduce on an n-node ring:
// a reduce-scatter pass of n−1 steps followed by an all-gather pass of
// n−1 steps, every step moving d/n-sized chunks between CW neighbours.
// It uses a single wavelength (neighbour arcs are segment-disjoint),
// which is exactly why it cannot exploit WDM (§1).
func BuildRing(n int) *core.Schedule {
	return core.Collect(StreamRing(n))
}

// RingProfile returns the analytic step profile of Ring all-reduce:
// 2(N−1) steps of d/N bytes on one wavelength.
func RingProfile(n int) core.Profile {
	p := core.Profile{Algorithm: "ring"}
	if n <= 1 {
		return p
	}
	p.Groups = []core.ProfileGroup{{
		Steps:       core.StepsRing(n),
		FracOfD:     1 / float64(n),
		Wavelengths: 1,
	}}
	return p
}

// BuildBT constructs the binary-tree all-reduce of [33] (paper Fig 2a):
// in reduce step i (1-based), nodes are grouped in runs of 2^i and the
// node at offset 2^(i−1) sends its full partial to the run's first node;
// the broadcast stage replays the steps in reverse. Like Ring it uses a
// single wavelength: within a step the sender→receiver arcs of distinct
// runs are segment-disjoint.
func BuildBT(n int) *core.Schedule {
	return core.Collect(StreamBT(n))
}

// BTProfile returns the analytic step profile of binary-tree all-reduce:
// 2⌈log₂N⌉ steps of d bytes on one wavelength.
func BTProfile(n int) core.Profile {
	p := core.Profile{Algorithm: "bt"}
	if n <= 1 {
		return p
	}
	p.Groups = []core.ProfileGroup{{
		Steps:       core.StepsBT(n),
		FracOfD:     1,
		Wavelengths: 1,
	}}
	return p
}

// WRHTProfile returns the analytic step profile of WRHT for cfg: every
// step carries the full vector d (the reduction keeps per-step traffic
// constant, §3.3); gather levels need ⌊m/2⌋ wavelengths and the final
// all-to-all needs ⌈m*²/8⌉.
func WRHTProfile(cfg core.Config) (core.Profile, error) {
	st, err := core.StepsWRHT(cfg)
	if err != nil {
		return core.Profile{}, err
	}
	p := core.Profile{Algorithm: "wrht"}
	if st.Total == 0 {
		return p, nil
	}
	m := cfg.EffectiveGroupSize()
	gatherW := m / 2
	if cfg.N < m {
		gatherW = cfg.N / 2
	}
	if st.GatherLevels > 0 {
		p.Groups = append(p.Groups, core.ProfileGroup{Steps: st.GatherLevels, FracOfD: 1, Wavelengths: gatherW})
	}
	if st.AllToAll {
		p.Groups = append(p.Groups, core.ProfileGroup{Steps: 1, FracOfD: 1, Wavelengths: core.AllToAllRequirement(st.FinalGroup)})
	}
	if st.GatherLevels > 0 {
		p.Groups = append(p.Groups, core.ProfileGroup{Steps: st.GatherLevels, FracOfD: 1, Wavelengths: gatherW})
	}
	return p, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
