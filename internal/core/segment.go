package core

import (
	"fmt"
	"sort"

	"wrht/internal/topo"
)

// Segment-confined WRHT: hybrid-parallel training (§6.2) places several
// independent data-parallel groups on one ring — one per pipeline
// stage — and each group all-reduces only its own shard. For the groups
// to run concurrently with full wavelength reuse, every circuit of a
// group must stay inside the group's span of the ring; the line
// construction (no wraparound, line all-to-all) guarantees exactly that,
// so disjoint segments never conflict however few wavelengths there are.

// BuildWRHTSegment constructs a WRHT all-reduce among an ascending
// subset of ring positions, keeping every circuit inside
// [participants[0], participants[last]]. ringN only sizes the schedule's
// node-id space; the wavelength budget and group size behave as in
// BuildWRHTLine.
func BuildWRHTSegment(ringN int, participants []int, wavelengths, groupSize int) (*Schedule, error) {
	if len(participants) == 0 {
		return nil, fmt.Errorf("core: segment has no participants")
	}
	if !sort.IntsAreSorted(participants) {
		return nil, fmt.Errorf("core: segment participants must be ascending")
	}
	for i, p := range participants {
		if p < 0 || p >= ringN {
			return nil, fmt.Errorf("core: participant %d out of ring [0,%d)", p, ringN)
		}
		if i > 0 && participants[i-1] == p {
			return nil, fmt.Errorf("core: duplicate participant %d", p)
		}
	}
	cfg := Config{N: len(participants), Wavelengths: wavelengths, GroupSize: groupSize}
	line, err := BuildWRHTLine(cfg)
	if err != nil {
		return nil, err
	}
	s := &Schedule{Algorithm: "wrht-segment", Ring: topo.NewRing(ringN)}
	for _, st := range line.Steps {
		s.Steps = append(s.Steps, remapStep(st, func(idx int) int { return participants[idx] }))
	}
	return s, nil
}

// MergeConcurrent overlays several schedules that are known to use
// disjoint ring resources (e.g. segment-confined WRHT groups on disjoint
// spans): step k of the result is the union of every input's step k, and
// shorter schedules simply stop contributing. The caller should
// Validate the result — overlapping inputs will fail there.
func MergeConcurrent(ringN int, scheds ...*Schedule) *Schedule {
	out := &Schedule{Algorithm: "merged", Ring: topo.NewRing(ringN)}
	maxSteps := 0
	for _, s := range scheds {
		if s.NumSteps() > maxSteps {
			maxSteps = s.NumSteps()
		}
	}
	for k := 0; k < maxSteps; k++ {
		st := Step{Phase: PhaseReduce}
		for _, s := range scheds {
			if k < len(s.Steps) {
				if len(st.Transfers) == 0 {
					st.Phase = s.Steps[k].Phase
				}
				st.Transfers = append(st.Transfers, s.Steps[k].Transfers...)
			}
		}
		out.Steps = append(out.Steps, st)
	}
	return out
}

// SegmentSpanArcs reports whether any transfer of the schedule leaves
// the inclusive position span [lo, hi] (treating the span as a line —
// transfers may not wrap). Used to prove segment confinement.
func SegmentSpanArcs(s *Schedule, lo, hi int) error {
	for si, st := range s.Steps {
		for _, tr := range st.Transfers {
			if tr.Src < lo || tr.Src > hi || tr.Dst < lo || tr.Dst > hi {
				return fmt.Errorf("core: step %d: transfer %v escapes span [%d,%d]", si, tr, lo, hi)
			}
			if (tr.Dir == topo.CW) != (tr.Dst > tr.Src) {
				return fmt.Errorf("core: step %d: transfer %v would wrap", si, tr)
			}
		}
	}
	return nil
}
