// Package tensor provides the float32 vector arithmetic used by the
// data-plane collectives and the numeric DNN training substrate.
//
// Gradients in distributed data-parallel training are float32 vectors
// (the paper assumes float32 throughout, §5.1); all-reduce moves chunks
// of such vectors and applies an elementwise reduction at the receiver.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float32 vector. The zero value is an empty vector.
type Vector []float32

// New returns a zero vector of length n.
func New(n int) Vector { return make(Vector, n) }

// Filled returns a vector of length n with every element set to v.
func Filled(n int, v float32) Vector {
	out := make(Vector, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Bytes returns the wire size of the vector assuming float32 encoding.
func (v Vector) Bytes() int64 { return int64(len(v)) * 4 }

// Chunk describes a contiguous 1/Of share of a vector, the Index-th of
// Of equal (±1 element) pieces. Chunk{Index: 0, Of: 1} denotes the whole
// vector. An optional Sub refines the selection hierarchically: the
// sub-chunk is taken of the parent chunk's range. Hierarchical
// collectives (e.g. H-Ring) use nesting so that an inner ring pass
// subdivides exactly the band an outer pass reduced, regardless of how
// vector lengths round.
type Chunk struct {
	Index int
	Of    int
	Sub   *Chunk
}

// Whole is the chunk covering an entire vector.
var Whole = Chunk{Index: 0, Of: 1}

// Validate reports whether the chunk designator is well formed.
func (c Chunk) Validate() error {
	if c.Of < 1 {
		return fmt.Errorf("tensor: chunk divisor %d < 1", c.Of)
	}
	if c.Index < 0 || c.Index >= c.Of {
		return fmt.Errorf("tensor: chunk index %d out of range [0,%d)", c.Index, c.Of)
	}
	if c.Sub != nil {
		return c.Sub.Validate()
	}
	return nil
}

// Range returns the half-open element range [lo, hi) selected by the
// chunk within a vector of length n. Chunks partition the vector evenly,
// with the first n%Of chunks one element longer; a Sub chunk recursively
// partitions the parent's range.
func (c Chunk) Range(n int) (lo, hi int) {
	base := n / c.Of
	extra := n % c.Of
	lo = c.Index*base + min(c.Index, extra)
	size := base
	if c.Index < extra {
		size++
	}
	if c.Sub != nil {
		slo, shi := c.Sub.Range(size)
		return lo + slo, lo + shi
	}
	return lo, lo + size
}

// Slice returns the sub-vector selected by the chunk. The returned slice
// aliases v.
func (c Chunk) Slice(v Vector) Vector {
	lo, hi := c.Range(len(v))
	return v[lo:hi]
}

// Bytes returns the wire size of the chunk within a vector of n elements.
func (c Chunk) Bytes(n int) int64 {
	lo, hi := c.Range(n)
	return int64(hi-lo) * 4
}

// Fraction returns the share of the vector the chunk covers, as a float
// in (0, 1] (ignoring the ±1-element rounding of uneven splits).
func (c Chunk) Fraction() float64 {
	f := 1 / float64(c.Of)
	if c.Sub != nil {
		f *= c.Sub.Fraction()
	}
	return f
}

func (c Chunk) String() string {
	if c.Of == 1 && c.Sub == nil {
		return "whole"
	}
	s := fmt.Sprintf("%d/%d", c.Index, c.Of)
	if c.Sub != nil {
		s += "." + c.Sub.String()
	}
	return s
}

// Add accumulates src into dst elementwise. The lengths must match.
func Add(dst, src Vector) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d != %d", len(dst), len(src)))
	}
	for i, s := range src {
		dst[i] += s
	}
}

// Scale multiplies every element of v by k in place.
func Scale(v Vector, k float32) {
	for i := range v {
		v[i] *= k
	}
}

// AXPY computes dst += k*src elementwise.
func AXPY(dst Vector, k float32, src Vector) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: AXPY length mismatch %d != %d", len(dst), len(src)))
	}
	for i, s := range src {
		dst[i] += k * s
	}
}

// Sum returns the sum of the elements of v in float64 precision.
func Sum(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return s
}

// Dot returns the inner product of a and b in float64 precision.
func Dot(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vector) float64 { return math.Sqrt(Dot(v, v)) }

// MaxAbsDiff returns the largest absolute elementwise difference between
// a and b. It panics if the lengths differ.
func MaxAbsDiff(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff length mismatch %d != %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// Equal reports whether a and b agree elementwise within tol.
func Equal(a, b Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}

// ReduceOp is an elementwise reduction applied when a transfer lands.
type ReduceOp int

const (
	// OpSum accumulates the payload into the destination buffer.
	OpSum ReduceOp = iota
	// OpCopy overwrites the destination buffer with the payload.
	OpCopy
)

func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpCopy:
		return "copy"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(op))
	}
}

// Apply performs the reduction op on dst given payload src.
func (op ReduceOp) Apply(dst, src Vector) {
	switch op {
	case OpSum:
		Add(dst, src)
	case OpCopy:
		if len(dst) != len(src) {
			panic(fmt.Sprintf("tensor: copy length mismatch %d != %d", len(dst), len(src)))
		}
		copy(dst, src)
	default:
		panic("tensor: unknown reduce op")
	}
}
