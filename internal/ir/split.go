package ir

import (
	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// Split replaces a step with two half-payload copies of itself whose
// second half runs on wavelengths uniformly shifted by the step's
// wavelength count W. The two halves keep the original routes and
// arcs, so they use disjoint wavelength sets on identical circuits —
// the internal boundary is rwa-disjoint *by construction*, and the
// engine hides the second half's reconfiguration under the first
// half's transmission. Total transmission is unchanged (each circuit
// carries half the bytes, twice), so when the half-step transmission
// still exceeds the reconfiguration delay the split converts a full
// setup charge into hidden time at no cost; the chunk halving nests a
// Sub{0,2}/Sub{1,2} level at the deepest point of the chunk chain, so
// both halves together cover exactly the original elements at any
// vector length.
//
// A step is split only when (a) doubling its wavelength usage fits the
// budget (2W ≤ Budget), (b) the half-step transmission of its busiest
// circuit still covers the setup delay (profitability gate, wired from
// the fabric's parameters), and (c) the boundary to the following step
// does not regress from disjoint to conflicted (the shifted colors
// could in principle collide with the successor; conflicted successors
// stay conflicted — the pooled arcs are unchanged and only wavelengths
// moved upward — so the split's net gain is always ≥ 1 boundary).
// Freshly created halves are not re-split in the same application.
type Split struct {
	// SetupSeconds is the per-step circuit setup cost to hide (the MRR
	// reconfiguration delay a); zero or negative disables the pass —
	// with nothing to hide a split has no value.
	SetupSeconds float64
	// BytesPerSecond is the per-circuit line rate used to estimate the
	// half-step transmission.
	BytesPerSecond float64
	// PayloadBytes is the per-node vector size d the schedule will
	// carry.
	PayloadBytes float64
	// MaxSplits bounds the number of steps split in one application;
	// zero means unlimited.
	MaxSplits int
}

// Name implements Pass.
func (*Split) Name() string { return "split" }

// Apply implements Pass.
func (sp *Split) Apply(p *Program) (bool, error) {
	splits := 0
	changed := false
	for k := 0; k < len(p.Steps); k++ {
		if sp.MaxSplits > 0 && splits >= sp.MaxSplits {
			break
		}
		st := &p.Steps[k]
		if len(st.Transfers) == 0 || !sp.profitable(st) {
			continue
		}
		w := st.maxWavelength()
		if p.Budget > 0 && 2*w > p.Budget {
			continue
		}
		s1, s2 := splitStep(st, w)
		if !p.disjointPair(&s1, &s2) {
			// Cannot happen for a valid step (disjoint wavelength sets on
			// identical arcs), but verify rather than trust: a false here
			// means the step was already conflicted and splitting it would
			// compound the damage.
			continue
		}
		if k+1 < len(p.Steps) {
			next := &p.Steps[k+1]
			if p.disjointPair(st, next) && !p.disjointPair(&s2, next) {
				continue // the shift would sacrifice an existing boundary
			}
		}
		p.Steps = append(p.Steps, Step{})
		copy(p.Steps[k+2:], p.Steps[k+1:])
		p.Steps[k] = s1
		p.Steps[k+1] = s2
		splits++
		changed = true
		k++ // skip the freshly created second half
	}
	if changed {
		p.analyze() // step count and chunks changed: rebuild dependencies
	}
	return changed, nil
}

// profitable reports whether the half-step transmission of the step's
// busiest circuit still covers the setup delay, so the split hides a
// full reconfiguration without stretching the schedule.
func (sp *Split) profitable(st *Step) bool {
	if sp.SetupSeconds <= 0 || sp.BytesPerSecond <= 0 || sp.PayloadBytes <= 0 {
		return false
	}
	maxFrac := 0.0
	for _, t := range st.Transfers {
		if f := t.Chunk.Fraction(); f > maxFrac {
			maxFrac = f
		}
	}
	return maxFrac*sp.PayloadBytes/2/sp.BytesPerSecond >= sp.SetupSeconds
}

// splitStep builds the two halves: identical routes and arcs, chunks
// halved in place, second half's wavelengths shifted up by shift.
func splitStep(st *Step, shift int) (Step, Step) {
	mk := func() Step {
		return Step{
			Phase:     st.Phase,
			Transfers: make([]core.Transfer, len(st.Transfers)),
			Arcs:      append([]topo.Arc(nil), st.Arcs...),
		}
	}
	s1, s2 := mk(), mk()
	for i, t := range st.Transfers {
		c1, c2 := halveChunk(t.Chunk)
		a, b := t, t
		a.Chunk = c1
		b.Chunk = c2
		b.Wavelength += shift
		s1.Transfers[i] = a
		s2.Transfers[i] = b
	}
	return s1, s2
}

// halveChunk appends a {0,2}/{1,2} split at the deepest nesting level,
// cloning the Sub chain so neither half aliases the original.
func halveChunk(c tensor.Chunk) (tensor.Chunk, tensor.Chunk) {
	a, b := c, c
	if c.Sub == nil {
		a.Sub = &tensor.Chunk{Index: 0, Of: 2}
		b.Sub = &tensor.Chunk{Index: 1, Of: 2}
		return a, b
	}
	sa, sb := halveChunk(*c.Sub)
	a.Sub, b.Sub = &sa, &sb
	return a, b
}
