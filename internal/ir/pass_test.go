package ir

import (
	"reflect"
	"testing"

	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

func TestReorderPlacesDisjointStepsAdjacent(t *testing.T) {
	// Two conflicting pairs on (CW, λ0): A0/A1 overlap on arcs [0,2)/[1,3),
	// B0/B1 on [4,6)/[5,7); A and B arcs are mutually disjoint, and no
	// step shares a node with another, so any order is dependency-legal.
	// [A0, A1, B0, B1] has one disjoint boundary; interleaving to
	// [A0, B0, A1, B1] makes all three disjoint.
	p := lowerSteps(t, 8,
		tstep(0, 2, tensor.Whole, 0), // A0
		tstep(1, 3, tensor.Whole, 0), // A1
		tstep(4, 6, tensor.Whole, 0), // B0
		tstep(5, 7, tensor.Whole, 0), // B1
	)
	if got := p.DisjointBoundaries(); got != 1 {
		t.Fatalf("pre-reorder disjoint boundaries = %d, want 1", got)
	}
	changed, err := Reorder{}.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("reorder reported no change")
	}
	if got := p.DisjointBoundaries(); got != 3 {
		t.Errorf("post-reorder disjoint boundaries = %d, want 3", got)
	}
	order := make([]int, len(p.Steps))
	for i, st := range p.Steps {
		order[i] = st.Transfers[0].Src
	}
	if want := []int{0, 4, 1, 5}; !reflect.DeepEqual(order, want) {
		t.Errorf("greedy order %v, want %v (A0 B0 A1 B1)", order, want)
	}
}

func TestReorderHonorsDependencies(t *testing.T) {
	// Same conflict structure, but B1 reads what A1 wrote (node 3), so
	// B1 may never move before A1.
	p := lowerSteps(t, 8,
		tstep(0, 2, tensor.Whole, 0), // A0
		tstep(1, 3, tensor.Whole, 0), // A1 writes node 3
		tstep(4, 6, tensor.Whole, 0), // B0
		tstep(3, 7, tensor.Whole, 0), // B1 reads node 3
	)
	if _, err := (Reorder{}).Apply(p); err != nil {
		t.Fatal(err)
	}
	posOf := func(src int) int {
		for i, st := range p.Steps {
			if st.Transfers[0].Src == src {
				return i
			}
		}
		t.Fatalf("step with src %d lost", src)
		return -1
	}
	if posOf(3) < posOf(1) {
		t.Errorf("dependent step moved before its producer: order %v", p.Steps)
	}
	if err := p.check(); err != nil {
		t.Errorf("reorder output invalid: %v", err)
	}
}

func TestReorderStaysInsidePhaseRuns(t *testing.T) {
	// A broadcast step disjoint from the first reduce step may not cross
	// the phase boundary to sit next to it.
	mk := func(phase core.Phase, src, dst int) core.Step {
		st := tstep(src, dst, tensor.Whole, 0)
		st.Phase = phase
		return st
	}
	p := lowerSteps(t, 8,
		mk(core.PhaseReduce, 0, 2),
		mk(core.PhaseReduce, 1, 3),
		mk(core.PhaseBroadcast, 4, 6),
	)
	changed, err := Reorder{}.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("reorder crossed a phase boundary (or reordered a 2-chain)")
	}
	for i, want := range []core.Phase{core.PhaseReduce, core.PhaseReduce, core.PhaseBroadcast} {
		if p.Steps[i].Phase != want {
			t.Errorf("step %d phase %v, want %v", i, p.Steps[i].Phase, want)
		}
	}
}

func TestRecolorBreaksBoundaryClash(t *testing.T) {
	// Steps on overlapping CW arcs, both λ0. With budget 2 the second
	// step recolors to λ1 and the boundary becomes disjoint.
	s := &core.Schedule{Algorithm: "t", Ring: topo.NewRing(8), Steps: []core.Step{
		tstep(0, 4, tensor.Whole, 0),
		tstep(2, 6, tensor.Whole, 0),
	}}
	p, err := Lower(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := Recolor{}.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || p.DisjointBoundaries() != 1 {
		t.Fatalf("recolor changed=%v disjoint=%d, want true/1", changed, p.DisjointBoundaries())
	}
	if err := p.check(); err != nil {
		t.Errorf("recolor output invalid: %v", err)
	}

	// With budget 1 there is no second wavelength: the pass must revert
	// and leave the program untouched.
	p1, err := Lower(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := p1.Raise()
	changed, err = Recolor{}.Apply(p1)
	if err != nil {
		t.Fatal(err)
	}
	if changed || !reflect.DeepEqual(before, p1.Raise()) {
		t.Error("recolor mutated a program it could not improve")
	}
}

func TestSplitManufacturesDisjointBoundary(t *testing.T) {
	s := &core.Schedule{Algorithm: "t", Ring: topo.NewRing(8), Steps: []core.Step{
		tstep(0, 4, tensor.Whole, 0),
	}}
	p, err := Lower(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	sp := &Split{SetupSeconds: 25e-6, BytesPerSecond: 5e9, PayloadBytes: 100e6}
	changed, err := sp.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || len(p.Steps) != 2 {
		t.Fatalf("split changed=%v steps=%d, want true/2", changed, len(p.Steps))
	}
	if got := p.Boundaries(); !reflect.DeepEqual(got, []bool{true}) {
		t.Errorf("internal boundary %v, want [true]", got)
	}
	// Halves: same route, wavelengths shifted by W=1, chunks partition
	// the original elements exactly at any vector length.
	a, b := p.Steps[0].Transfers[0], p.Steps[1].Transfers[0]
	if a.Wavelength != 0 || b.Wavelength != 1 {
		t.Errorf("wavelengths %d/%d, want 0/1", a.Wavelength, b.Wavelength)
	}
	for _, n := range []int{7, 8, 100, 101} {
		alo, ahi := a.Chunk.Range(n)
		blo, bhi := b.Chunk.Range(n)
		if alo != 0 || ahi != blo || bhi != n {
			t.Errorf("n=%d: halves [%d,%d)+[%d,%d) do not partition [0,%d)", n, alo, ahi, blo, bhi, n)
		}
	}
	// The second half depends on nothing new; the dependency edges were
	// rebuilt for the longer program.
	if deps := p.Steps[1].Deps; len(deps) != 0 {
		t.Errorf("disjoint-range halves carry deps %v", deps)
	}
	if err := p.check(); err != nil {
		t.Errorf("split output invalid: %v", err)
	}
}

func TestSplitRespectsGates(t *testing.T) {
	s := &core.Schedule{Algorithm: "t", Ring: topo.NewRing(8), Steps: []core.Step{
		tstep(0, 4, tensor.Whole, 1),
	}}
	// Budget gate: the step uses wavelength count 2 (λ1), doubling needs
	// 4 > budget 3.
	p, err := Lower(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp := &Split{SetupSeconds: 25e-6, BytesPerSecond: 5e9, PayloadBytes: 100e6}
	if changed, _ := sp.Apply(p); changed {
		t.Error("split ignored the wavelength budget")
	}
	// Profitability gate: a payload whose half-transmission undercuts
	// the setup delay must not be split (it would stretch the schedule).
	p2, err := Lower(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	tiny := &Split{SetupSeconds: 25e-6, BytesPerSecond: 5e9, PayloadBytes: 1e3}
	if changed, _ := tiny.Apply(p2); changed {
		t.Error("split ignored the profitability gate")
	}
	// MaxSplits gate.
	many := &core.Schedule{Algorithm: "t", Ring: topo.NewRing(8), Steps: []core.Step{
		tstep(0, 4, tensor.Whole, 0),
		tstep(1, 5, tensor.Whole, 0),
	}}
	p3, err := Lower(many, 64)
	if err != nil {
		t.Fatal(err)
	}
	capped := &Split{SetupSeconds: 25e-6, BytesPerSecond: 5e9, PayloadBytes: 100e6, MaxSplits: 1}
	if _, err := capped.Apply(p3); err != nil {
		t.Fatal(err)
	}
	if len(p3.Steps) != 3 {
		t.Errorf("MaxSplits=1 produced %d steps, want 3", len(p3.Steps))
	}
}

// passEventRecorder captures pipeline observer events.
type passEventRecorder struct{ events []PassEvent }

func (r *passEventRecorder) PassApplied(ev PassEvent) { r.events = append(r.events, ev) }

func TestPipelineObserverSeesEveryPass(t *testing.T) {
	p := lowerSteps(t, 8,
		tstep(0, 2, tensor.Whole, 0),
		tstep(1, 3, tensor.Whole, 0),
		tstep(4, 6, tensor.Whole, 0),
		tstep(5, 7, tensor.Whole, 0),
	)
	rec := &passEventRecorder{}
	if err := (Pipeline{Passes: testPasses(), Observer: rec}).Run(p); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(rec.events))
	}
	re := rec.events[0]
	if re.Pass != "reorder" || !re.Changed || re.DisjointBefore != 1 || re.DisjointAfter != 3 {
		t.Errorf("reorder event %+v, want changed 1→3", re)
	}
	se := rec.events[2]
	if se.Pass != "split" || se.StepsAfter <= se.StepsBefore {
		t.Errorf("split event %+v, want steps to grow", se)
	}
	for _, ev := range rec.events {
		if ev.Seconds < 0 {
			t.Errorf("pass %s has negative duration %g", ev.Pass, ev.Seconds)
		}
	}
}

// conflictingPass deliberately breaks the program to prove the pipeline
// re-validates after every mutating pass.
type conflictingPass struct{}

func (conflictingPass) Name() string { return "sabotage" }
func (conflictingPass) Apply(p *Program) (bool, error) {
	for i := range p.Steps[0].Transfers {
		p.Steps[0].Transfers[i].Wavelength = 1 << 20 // far beyond any budget
	}
	return true, nil
}

func TestPipelineRejectsInvalidPassOutput(t *testing.T) {
	s, err := core.BuildWRHT(core.Config{N: 16, Wavelengths: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := (Pipeline{Passes: []Pass{conflictingPass{}}}).Run(p); err == nil {
		t.Error("pipeline accepted an over-budget pass output")
	}
}

// TestPassesManufactureOverlapOnWRHT is the tentpole's figure of merit
// at the IR level: on the golden configs the natural WRHT schedule has
// 0 (N=1024) and 1 (N=4096) overlap-eligible boundaries, and the pass
// pipeline must strictly improve both (the engine-level counterpart is
// asserted in internal/exp and in CI).
func TestPassesManufactureOverlapOnWRHT(t *testing.T) {
	for _, tc := range []struct {
		n, baseline, want int
	}{
		{1024, 0, 1}, // split the all-to-all exchange
		{4096, 1, 3}, // split the level-2 gather and broadcast
	} {
		s, err := core.BuildWRHT(core.Config{N: tc.n, Wavelengths: 64})
		if err != nil {
			t.Fatal(err)
		}
		p, err := Lower(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.DisjointBoundaries(); got != tc.baseline {
			t.Errorf("N=%d: natural schedule has %d disjoint boundaries, want %d", tc.n, got, tc.baseline)
		}
		if err := (Pipeline{Passes: testPasses()}).Run(p); err != nil {
			t.Fatal(err)
		}
		if got := p.DisjointBoundaries(); got < tc.want {
			t.Errorf("N=%d: passes yield %d disjoint boundaries, want >= %d", tc.n, got, tc.want)
		} else if got <= tc.baseline {
			t.Errorf("N=%d: passes did not improve on the %d-boundary baseline", tc.n, tc.baseline)
		}
	}
}
