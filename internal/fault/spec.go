package fault

import (
	"fmt"
	"math/rand"

	"wrht/internal/topo"
)

// Spec describes how many faults of each class to sample. Sampling is
// deterministic for a given Seed: every count draws from its own
// offset of the seeded stream, so masks are reproducible across runs
// and platforms.
type Spec struct {
	// Seed seeds the sampling RNG.
	Seed int64
	// Nodes, Transceivers, Wavelengths, Segments and MRRs are the fault
	// counts per class. Counts exceeding the available population are
	// clamped to it.
	Nodes, Transceivers, Wavelengths, Segments, MRRs int
	// WavelengthBudget is the wavelength population dead wavelengths are
	// drawn from (the ring's per-waveguide budget w).
	WavelengthBudget int
	// MRRLossDB is the extra insertion loss per degraded resonator;
	// zero selects DefaultMRRLossDB.
	MRRLossDB float64
}

// DefaultMRRLossDB is the extra per-MRR insertion loss a degraded
// resonator contributes when Spec.MRRLossDB is zero: 0.5 dB, 25× the
// healthy 0.02 dB pass-through loss of phys.DefaultBudget.
const DefaultMRRLossDB = 0.5

// Sample draws a deterministic random mask for an n-node ring.
func (sp Spec) Sample(n int) *Mask {
	m := NewMask(n)
	rng := rand.New(rand.NewSource(sp.Seed))
	for _, i := range sampleDistinct(rng, sp.Nodes, n) {
		m.FailNode(i)
	}
	// Transceivers are drawn over 2n (node, direction) pairs.
	for _, v := range sampleDistinct(rng, sp.Transceivers, 2*n) {
		m.FailTransceiver(v%n, topo.Direction(v/n))
	}
	if sp.Wavelengths > 0 {
		if sp.WavelengthBudget < 1 {
			panic(fmt.Sprintf("fault: sampling %d dead wavelengths needs a positive WavelengthBudget", sp.Wavelengths))
		}
		for _, w := range sampleDistinct(rng, sp.Wavelengths, sp.WavelengthBudget) {
			m.KillWavelength(w)
		}
	}
	// Cuts are drawn over 2n (direction, segment) pairs.
	for _, v := range sampleDistinct(rng, sp.Segments, 2*n) {
		m.CutSegment(topo.Direction(v/n), v%n)
	}
	loss := sp.MRRLossDB
	if loss == 0 {
		loss = DefaultMRRLossDB
	}
	for _, i := range sampleDistinct(rng, sp.MRRs, n) {
		m.DegradeMRR(i, loss)
	}
	return m
}
