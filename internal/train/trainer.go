package train

import (
	"fmt"
	"math/rand"
	"sync"

	"wrht/internal/cluster"
	"wrht/internal/core"
	"wrht/internal/tensor"
)

// Dataset is a labelled synthetic dataset (substituting MNIST/ImageNet,
// which the offline build cannot download; §5.1's observation that the
// dataset affects only total training time, not all-reduce behaviour,
// makes this harmless).
type Dataset struct {
	X      [][]float32
	Labels []int
}

// SyntheticClassification generates a linearly-separable-ish K-class
// dataset of dim-dimensional points around K random centroids.
func SyntheticClassification(samples, dim, classes int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	centroids := make([][]float32, classes)
	for c := range centroids {
		centroids[c] = make([]float32, dim)
		for i := range centroids[c] {
			centroids[c][i] = rng.Float32()*4 - 2
		}
	}
	ds := Dataset{X: make([][]float32, samples), Labels: make([]int, samples)}
	for s := range ds.X {
		c := rng.Intn(classes)
		ds.Labels[s] = c
		x := make([]float32, dim)
		for i := range x {
			x[i] = centroids[c][i] + float32(rng.NormFloat64())*0.4
		}
		ds.X[s] = x
	}
	return ds
}

// NetFactory builds one replica of the model. Each worker calls it once;
// the factory must produce identical initial weights for every call
// (seed it deterministically).
type NetFactory func() *Net

// ParallelTrainer runs synchronous data-parallel SGD over n replicas
// whose gradients are combined by executing a real collective schedule
// on the in-process cluster each iteration (Eq 5).
type ParallelTrainer struct {
	Nets     []*Net
	Schedule *core.Schedule
	LR       float32
}

// NewParallelTrainer builds n replicas and checks they start identical.
func NewParallelTrainer(n int, factory NetFactory, schedule *core.Schedule, lr float32) (*ParallelTrainer, error) {
	if schedule.Ring.N != n {
		return nil, fmt.Errorf("train: schedule for %d nodes, want %d", schedule.Ring.N, n)
	}
	t := &ParallelTrainer{Schedule: schedule, LR: lr}
	for i := 0; i < n; i++ {
		t.Nets = append(t.Nets, factory())
	}
	w0 := t.Nets[0].Weights()
	for i := 1; i < n; i++ {
		if !tensor.Equal(w0, t.Nets[i].Weights(), 0) {
			return nil, fmt.Errorf("train: replica %d starts with different weights; factory must be deterministic", i)
		}
	}
	return t, nil
}

// Step runs one synchronous iteration: every worker computes the
// gradient of its shard (in parallel goroutines, like the paper's
// per-GPU backward pass), the shard gradients are averaged through the
// collective schedule, and every replica applies the same SGD update.
// It returns the mean loss across workers.
func (t *ParallelTrainer) Step(shardX [][][]float32, shardY [][]int) (float64, error) {
	n := len(t.Nets)
	if len(shardX) != n || len(shardY) != n {
		return 0, fmt.Errorf("train: %d shards for %d workers", len(shardX), n)
	}
	losses := make([]float64, n)
	if err := t.computeAndSync(shardX, shardY, losses); err != nil {
		return 0, err
	}
	var meanLoss float64
	for i := 0; i < n; i++ {
		t.Nets[i].SGDStep(t.LR)
		meanLoss += losses[i]
	}
	return meanLoss / float64(n), nil
}

// computeAndSync runs the per-replica forward/backward passes in
// parallel, all-reduces the shard gradients through the schedule, and
// leaves the averaged gradient installed in every replica.
func (t *ParallelTrainer) computeAndSync(shardX [][][]float32, shardY [][]int, losses []float64) error {
	n := len(t.Nets)
	grads := make([]tensor.Vector, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			net := t.Nets[i]
			net.ZeroGrad()
			logits := net.Forward(shardX[i])
			loss, g := SoftmaxCrossEntropy(logits, shardY[i])
			net.Backward(g)
			losses[i] = loss
			grads[i] = net.Gradients()
		}()
	}
	wg.Wait()

	// Gradient synchronisation: a real all-reduce over the schedule.
	cl, err := cluster.New(grads)
	if err != nil {
		return err
	}
	if err := cl.AllReduce(t.Schedule, true); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		t.Nets[i].SetGradients(cl.Vector(i))
	}
	return nil
}

// ReplicasInSync reports whether all replicas hold elementwise-equal
// weights within tol (they must, after every synchronous step).
func (t *ParallelTrainer) ReplicasInSync(tol float64) error {
	w0 := t.Nets[0].Weights()
	for i := 1; i < len(t.Nets); i++ {
		if !tensor.Equal(w0, t.Nets[i].Weights(), tol) {
			return fmt.Errorf("train: replica %d diverged (max diff %g)", i, tensor.MaxAbsDiff(w0, t.Nets[i].Weights()))
		}
	}
	return nil
}

// Shard splits the dataset round-robin into n worker shards of batch
// samples each, starting at iteration it (wrapping).
func (d Dataset) Shard(n, batch, it int) ([][][]float32, [][]int) {
	xs := make([][][]float32, n)
	ys := make([][]int, n)
	total := len(d.X)
	base := it * n * batch
	for w := 0; w < n; w++ {
		for b := 0; b < batch; b++ {
			idx := (base + w*batch + b) % total
			xs[w] = append(xs[w], d.X[idx])
			ys[w] = append(ys[w], d.Labels[idx])
		}
	}
	return xs, ys
}

// Epochs runs the given number of passes over the dataset, returning the
// per-iteration losses.
func (t *ParallelTrainer) Epochs(d Dataset, batch, epochs int) ([]float64, error) {
	n := len(t.Nets)
	itersPerEpoch := len(d.X) / (n * batch)
	if itersPerEpoch < 1 {
		itersPerEpoch = 1
	}
	var losses []float64
	for e := 0; e < epochs; e++ {
		for it := 0; it < itersPerEpoch; it++ {
			xs, ys := d.Shard(n, batch, e*itersPerEpoch+it)
			loss, err := t.Step(xs, ys)
			if err != nil {
				return nil, err
			}
			losses = append(losses, loss)
		}
	}
	return losses, nil
}
