package parallel_test

import (
	"math/rand"
	"testing"

	"wrht/internal/cluster"
	"wrht/internal/dnn"
	"wrht/internal/optical"
	"wrht/internal/parallel"
	"wrht/internal/tensor"
	"wrht/internal/workload"
)

func TestGradientSyncConcurrentGroups(t *testing.T) {
	// 4 stages × 8 replicas: the merged schedule must be conflict-free
	// and no longer (in steps) than a single group's schedule.
	st := parallel.Strategy{Stages: 4, Replicas: 8}
	sched, err := parallel.BuildGradientSync(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	single, err := parallel.BuildGradientSync(parallel.Strategy{Stages: 1, Replicas: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumSteps() != single.NumSteps() {
		t.Fatalf("merged steps %d != single group steps %d (groups must run concurrently)",
			sched.NumSteps(), single.NumSteps())
	}
	if err := sched.Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := optical.VerifySchedule(sched); err != nil {
		t.Fatalf("MRR-level check: %v", err)
	}
}

func TestGradientSyncDataPlane(t *testing.T) {
	// Each stage group must all-reduce among exactly its own members:
	// give group g vectors filled with g's replica values and verify the
	// per-group sums.
	st := parallel.Strategy{Stages: 3, Replicas: 5}
	sched, err := parallel.BuildGradientSync(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := st.Nodes()
	rng := rand.New(rand.NewSource(13))
	in := make([]tensor.Vector, n)
	for i := range in {
		in[i] = tensor.New(12)
		for j := range in[i] {
			in[i][j] = float32(rng.Intn(50))
		}
	}
	cl, err := cluster.New(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Execute(sched); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < st.Stages; g++ {
		members := st.GroupParticipants(g)
		want := make([]float64, 12)
		for _, m := range members {
			for j, x := range in[m] {
				want[j] += float64(x)
			}
		}
		for _, m := range members {
			v := cl.Vector(m)
			for j := range want {
				if float64(v[j]) != want[j] {
					t.Fatalf("stage %d node %d elem %d = %g, want %g", g, m, j, v[j], want[j])
				}
			}
		}
	}
}

func TestSplitStagesBalanced(t *testing.T) {
	m := dnn.BEiTLarge()
	for _, p := range []int{1, 2, 4, 8} {
		stages := dnn.SplitStages(m, p)
		if len(stages) != p {
			t.Fatalf("p=%d: got %d stages", p, len(stages))
		}
		var params, flops int64
		layers := 0
		for _, s := range stages {
			params += s.Params()
			flops += s.ForwardFLOPs()
			layers += len(s.Layers)
			if len(s.Layers) == 0 {
				t.Fatalf("p=%d: empty stage", p)
			}
		}
		if params != m.Params() || flops != m.ForwardFLOPs() || layers != len(m.Layers) {
			t.Fatalf("p=%d: stage totals do not add up", p)
		}
		// Balance: no stage above 2× the mean FLOPs (coarse, since layer
		// granularity limits balance).
		mean := float64(flops) / float64(p)
		for si, s := range stages {
			if float64(s.ForwardFLOPs()) > 2.5*mean {
				t.Errorf("p=%d: stage %d has %.1f× the mean FLOPs", p, si, float64(s.ForwardFLOPs())/mean)
			}
		}
	}
}

func TestSplitStagesMoreStagesThanLayers(t *testing.T) {
	m := dnn.AlexNet() // 8 layers
	stages := dnn.SplitStages(m, 100)
	if len(stages) != len(m.Layers) {
		t.Fatalf("stages = %d, want %d", len(stages), len(m.Layers))
	}
}

func TestHybridIterationBreakdown(t *testing.T) {
	sim := parallel.Sim{
		Model:          dnn.BEiTLarge(),
		Strat:          parallel.Strategy{Stages: 4, Replicas: 16},
		Microbatches:   8,
		MicrobatchSize: 2,
		GPU:            workload.TitanXP(),
		Optical:        optical.DefaultParams(),
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSec <= 0 || res.PipelineSec <= 0 || res.AllReduceSec <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.BubbleSec < 0 || res.BubbleSec >= res.PipelineSec {
		t.Fatalf("bubble %g out of range (pipeline %g)", res.BubbleSec, res.PipelineSec)
	}
	if res.TotalSec != res.PipelineSec+res.AllReduceSec {
		t.Fatal("total != pipeline + allreduce")
	}
	// Sharding means the per-group payload is well below the full model.
	if res.MaxStageGradBytes >= float64(dnn.BEiTLarge().GradBytes()) {
		t.Fatal("stage shard not smaller than full gradient")
	}
}

func TestMoreMicrobatchesShrinkBubbleShare(t *testing.T) {
	base := parallel.Sim{
		Model:          dnn.VGG16(),
		Strat:          parallel.Strategy{Stages: 4, Replicas: 4},
		MicrobatchSize: 2,
		GPU:            workload.TitanXP(),
		Optical:        optical.DefaultParams(),
	}
	small := base
	small.Microbatches = 2
	big := base
	big.Microbatches = 32
	rs, err := small.Run()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rb.BubbleSec/rb.PipelineSec >= rs.BubbleSec/rs.PipelineSec {
		t.Fatalf("bubble share did not shrink: %.3f -> %.3f",
			rs.BubbleSec/rs.PipelineSec, rb.BubbleSec/rb.PipelineSec)
	}
}

func TestPureDataParallelMatchesStrategyOne(t *testing.T) {
	// P=1 reduces to plain data parallelism: no bubbles, full-gradient
	// all-reduce.
	sim := parallel.Sim{
		Model:          dnn.ResNet50(),
		Strat:          parallel.Strategy{Stages: 1, Replicas: 64},
		Microbatches:   4,
		MicrobatchSize: 4,
		GPU:            workload.TitanXP(),
		Optical:        optical.DefaultParams(),
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BubbleSec > 1e-12 {
		t.Fatalf("P=1 should have no bubble, got %g", res.BubbleSec)
	}
	if res.MaxStageGradBytes != float64(dnn.ResNet50().GradBytes()) {
		t.Fatal("P=1 shard should be the full gradient")
	}
}

func TestStrategyValidation(t *testing.T) {
	if _, err := parallel.BuildGradientSync(parallel.Strategy{Stages: 0, Replicas: 4}, 4); err == nil {
		t.Fatal("invalid strategy accepted")
	}
	sim := parallel.Sim{Model: dnn.AlexNet(), Strat: parallel.Strategy{Stages: 2, Replicas: 2},
		GPU: workload.TitanXP(), Optical: optical.DefaultParams()}
	if _, err := sim.Run(); err == nil {
		t.Fatal("zero microbatches accepted")
	}
}
