package ir

// Reorder permutes steps within each maximal run of equal-phase steps,
// respecting dependency edges, to place rwa-disjoint steps adjacent:
// every adjacent disjoint pair is a boundary where the engine hides the
// next step's reconfiguration. Phase runs are never crossed — the
// collective's reduce → all-to-all → broadcast structure (and the
// correctness argument behind it) survives any legal permutation
// within a phase, but not across phases.
//
// The order is rebuilt greedily: among the dependency-ready steps of a
// run, prefer the lowest-index one disjoint from the previously placed
// step (the step just before the run counts as "previous" for the first
// slot), falling back to the lowest-index ready step. Ties resolve by
// original position, so the pass is deterministic and is the identity
// on programs whose runs are dependency chains — which includes every
// natural WRHT schedule, where each level reads what the previous level
// reduced.
type Reorder struct{}

// Name implements Pass.
func (Reorder) Name() string { return "reorder" }

// Apply implements Pass.
func (Reorder) Apply(p *Program) (bool, error) {
	order := make([]int, 0, len(p.Steps))
	for lo := 0; lo < len(p.Steps); {
		hi := lo + 1
		for hi < len(p.Steps) && p.Steps[hi].Phase == p.Steps[lo].Phase {
			hi++
		}
		order = append(order, reorderRun(p, lo, hi)...)
		lo = hi
	}
	changed := false
	for i, o := range order {
		if o != i {
			changed = true
			break
		}
	}
	if !changed {
		return false, nil
	}
	ns := make([]Step, len(p.Steps))
	for i, o := range order {
		ns[i] = p.Steps[o]
	}
	p.Steps = ns
	p.analyze() // step indices moved: dependency edges must be rebuilt
	return true, nil
}

// reorderRun greedily orders the steps of run [lo, hi) and returns
// their original indices in placement order. Dependency edges within
// the run are honored (edges to steps outside the run always point
// before lo or after hi-1 and cannot be violated by an intra-run
// permutation); the greedy output is always a topological order, which
// exists because every edge points from a lower to a higher index.
func reorderRun(p *Program, lo, hi int) []int {
	n := hi - lo
	out := make([]int, 0, n)
	if n == 1 {
		return append(out, lo)
	}
	placed := make([]bool, n)
	ready := func(k int) bool {
		for _, d := range p.Steps[lo+k].Deps {
			if d >= lo && d < hi && !placed[d-lo] {
				return false
			}
		}
		return true
	}
	var prev *Step
	if lo > 0 {
		prev = &p.Steps[lo-1]
	}
	for len(out) < n {
		pick := -1
		for k := 0; k < n; k++ {
			if placed[k] || !ready(k) {
				continue
			}
			if pick < 0 {
				pick = k // lowest-index ready step: the fallback
			}
			if prev != nil && p.disjointPair(prev, &p.Steps[lo+k]) {
				pick = k
				break
			}
		}
		placed[pick] = true
		out = append(out, lo+pick)
		prev = &p.Steps[lo+pick]
	}
	return out
}
