package fabric_test

import (
	"reflect"
	"strings"
	"testing"

	"wrht/internal/core"
	"wrht/internal/fabric"
	"wrht/internal/fault"
	"wrht/internal/optical"
)

func opticalEngine(t *testing.T, validate bool) fabric.Engine {
	t.Helper()
	f, err := optical.DefaultParams().Fabric()
	if err != nil {
		t.Fatal(err)
	}
	return fabric.Engine{Fabric: f, Opts: fabric.Options{ValidateWavelengths: validate}}
}

func wrhtSchedule(t *testing.T, n, w int) *core.Schedule {
	t.Helper()
	s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFaultedZeroFaultIdentity(t *testing.T) {
	const n, w, d = 32, 4, 1 << 20
	e := opticalEngine(t, true)
	s := wrhtSchedule(t, n, w)
	plain, err := e.RunSchedule(s, d)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := e.RunScheduleFaulted(s, d, fabric.FaultOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Reschedules != 0 || faulted.FaultsApplied != 0 {
		t.Errorf("zero-fault run reports Reschedules=%d FaultsApplied=%d", faulted.Reschedules, faulted.FaultsApplied)
	}
	if !reflect.DeepEqual(plain, faulted.Result) {
		t.Errorf("zero-fault RunScheduleFaulted differs from RunSchedule:\n%+v\nvs\n%+v", plain, faulted.Result)
	}
}

type faultSpy struct{ events []fabric.FaultEvent }

func (f *faultSpy) FaultRescheduled(ev fabric.FaultEvent) { f.events = append(f.events, ev) }

func TestFaultedInjectionReschedules(t *testing.T) {
	const n, w, d = 64, 8, 1 << 20
	e := opticalEngine(t, true)
	cfg := core.Config{N: n, Wavelengths: w}
	s := wrhtSchedule(t, n, w)
	healthy, err := e.RunSchedule(s, d)
	if err != nil {
		t.Fatal(err)
	}
	spy := &faultSpy{}
	res, err := e.RunScheduleFaulted(s, d, fabric.FaultOptions{
		Injector: fault.NewInjector(
			fault.Event{Step: 1, Fault: fault.Fault{Kind: fault.WavelengthDead, Wavelength: 0}},
		),
		Rebuild: func(m *fault.Mask) (*core.Schedule, error) {
			return core.BuildWRHTMasked(cfg, m)
		},
		Observer: spy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsApplied != 1 {
		t.Errorf("FaultsApplied = %d, want 1", res.FaultsApplied)
	}
	if res.Reschedules != 1 {
		t.Errorf("Reschedules = %d, want 1", res.Reschedules)
	}
	if len(spy.events) != 1 {
		t.Fatalf("observer saw %d reschedules, want 1", len(spy.events))
	}
	if ev := spy.events[0]; ev.Step != 1 || ev.Reschedule != 1 || ev.Reason == nil {
		t.Errorf("unexpected fault event %+v", ev)
	}
	// Fail-restart: the step executed before the fault plus the full
	// rebuilt schedule.
	rebuilt, err := core.BuildWRHTMasked(cfg, fault.NewMask(n).KillWavelength(0))
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + rebuilt.NumSteps(); res.Steps != want {
		t.Errorf("Steps = %d, want %d (1 pre-fault + %d rebuilt)", res.Steps, want, rebuilt.NumSteps())
	}
	if res.Time <= healthy.Time {
		t.Errorf("faulted run (%.3gs) not slower than healthy (%.3gs)", res.Time, healthy.Time)
	}
	if res.Algorithm != "wrht-degraded" {
		t.Errorf("Algorithm = %q after reschedule", res.Algorithm)
	}
}

func TestFaultedNoRebuildIsHardError(t *testing.T) {
	const n, w, d = 32, 4, 1 << 20
	e := opticalEngine(t, false)
	s := wrhtSchedule(t, n, w)
	_, err := e.RunScheduleFaulted(s, d, fabric.FaultOptions{
		Mask: fault.NewMask(n).KillWavelength(0),
	})
	if err == nil || !strings.Contains(err.Error(), "no Rebuild") {
		t.Errorf("want a hard error without Rebuild, got %v", err)
	}
}

func TestFaultedRescheduleBudgetExhausted(t *testing.T) {
	const n, w, d = 32, 4, 1 << 20
	e := opticalEngine(t, false)
	s := wrhtSchedule(t, n, w)
	rebuilds := 0
	_, err := e.RunScheduleFaulted(s, d, fabric.FaultOptions{
		Mask:           fault.NewMask(n).KillWavelength(0),
		MaxReschedules: 2,
		// A rebuild that ignores the mask keeps handing back a faulted
		// schedule, so the run can never make progress.
		Rebuild: func(*fault.Mask) (*core.Schedule, error) {
			rebuilds++
			return wrhtSchedule(t, n, w), nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "reschedule budget") {
		t.Fatalf("want reschedule-budget error, got %v", err)
	}
	if rebuilds != 2 {
		t.Errorf("Rebuild called %d times, want 2", rebuilds)
	}
}

func TestFaultedOverlapRejected(t *testing.T) {
	const n, w = 32, 4
	e := opticalEngine(t, false)
	e.Opts.Overlap = true
	if _, err := e.RunScheduleFaulted(wrhtSchedule(t, n, w), 1<<20, fabric.FaultOptions{}); err == nil {
		t.Error("overlap mode should be rejected")
	}
}

func TestFaultedMaskNotMutated(t *testing.T) {
	const n, w, d = 32, 4, 1 << 20
	e := opticalEngine(t, false)
	cfg := core.Config{N: n, Wavelengths: w}
	m := fault.NewMask(n)
	before := m.String()
	_, err := e.RunScheduleFaulted(wrhtSchedule(t, n, w), d, fabric.FaultOptions{
		Mask: m,
		Injector: fault.NewInjector(
			fault.Event{Step: 0, Fault: fault.Fault{Kind: fault.WavelengthDead, Wavelength: 1}},
		),
		Rebuild: func(fm *fault.Mask) (*core.Schedule, error) {
			return core.BuildWRHTMasked(cfg, fm)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != before {
		t.Errorf("caller's mask mutated by injection: %s", m)
	}
}
