// Package obs is the simulator's observability layer: a tracer that
// emits Chrome Trace Event / Perfetto-loadable JSON timelines in
// simulated time, and a registry of named counters and gauges.
//
// Everything here is zero-cost when disabled. Producers (the fabric
// engine, the DES kernel, the sweep engine, the training timeline) take
// a nil-able observer/tracer/registry; a nil value is one pointer
// comparison on the hot path and no allocations, pinned by
// BenchmarkEngineNilObserver in internal/fabric.
//
// Timestamps are simulated seconds supplied by the producer — never
// time.Now — so an emitted trace file is a pure function of the
// simulated run and byte-identical across invocations (golden-tested).
// The only clock the tracer knows is the injectable Clock field, the
// same pattern trace.Recorder uses for its Now field; it exists for
// diagnostic wall-clock tracks (sweep progress) and deterministic tests.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are
// safe on a nil receiver (no-ops / zero), so producers can hold the
// result of Registry.Counter on a nil registry without branching.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric (accumulated seconds, ratios). Like Counter
// it is nil-safe and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a namespace of counters, gauges and histograms. Metric
// handles are created on first use and live for the registry's
// lifetime; lookups on a nil registry return nil handles whose methods
// no-op, so one nil check at wiring time covers an entire instrumented
// subsystem. Handle lookup takes the registry lock; the handles
// themselves are lock-free, so hot paths cache the handle and pay no
// lock on Observe/Add.
//
// Metric names may carry Prometheus-style labels via Labeled
// ("family{k=\"v\"}"); Expose groups such series under one family.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// volatile records family names whose values depend on wall-clock
	// measurement (see MarkVolatile); Expose flags them so determinism
	// checks can exclude them.
	volatile map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		volatile:   make(map[string]bool),
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty on first
// use. Use Labeled to build names carrying labels.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// MarkVolatile flags metric families whose values depend on wall-clock
// measurement rather than on the simulated run (worker busy time, span
// latencies). Expose emits a "# VOLATILE" comment for them, which the
// byte-identity determinism checks use as an exclusion list. Names are
// family names — the part of a Labeled name before the brace.
func (r *Registry) MarkVolatile(families ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range families {
		r.volatile[f] = true
	}
}

// Snapshot is a point-in-time copy of every metric, JSON-serializable
// with deterministic (sorted) key order. Families lists it in the
// sorted typed form Expose renders.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Volatile lists the family names marked wall-clock-dependent via
	// MarkVolatile, sorted.
	Volatile []string `json:"volatile,omitempty"`
}

// Snapshot captures the current value of every metric.
func (r *Registry) Snapshot() Snapshot { return r.snapshot(false) }

// SnapshotAndReset captures every metric and atomically resets it to
// zero, so consecutive calls observe non-overlapping deltas — the
// snapshot-and-reset idiom for cheap delta scraping (each counter word
// is swapped atomically; an observation racing the scrape lands wholly
// in one delta or the next).
func (r *Registry) SnapshotAndReset() Snapshot { return r.snapshot(true) }

func (r *Registry) snapshot(reset bool) Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Gauges: map[string]float64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		if reset {
			s.Counters[name] = c.v.Swap(0)
		} else {
			s.Counters[name] = c.Value()
		}
	}
	for name, g := range r.gauges {
		if reset {
			s.Gauges[name] = math.Float64frombits(g.bits.Swap(0))
		} else {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot(reset)
		}
	}
	for f := range r.volatile {
		s.Volatile = append(s.Volatile, f)
	}
	sort.Strings(s.Volatile)
	return s
}

// WriteText writes the snapshot as sorted "name value" lines — the
// legacy dump format kept behind the CLIs' -metrics-format=legacy
// escape hatch (Expose is the canonical serialization). Histograms are
// summarized as .count/.sum/.p50/.p99/.max lines.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+5*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", name, h.Count),
			fmt.Sprintf("%s.sum %g", name, h.Sum),
			fmt.Sprintf("%s.p50 %g", name, h.Quantile(0.5)),
			fmt.Sprintf("%s.p99 %g", name, h.Quantile(0.99)),
			fmt.Sprintf("%s.max %g", name, h.Max))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile dumps the metrics to path: JSON when the path ends in
// ".json", text lines otherwise. A path of "-" writes text to stdout.
func (r *Registry) WriteFile(path string) error {
	if path == "-" {
		return r.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = r.WriteJSON(f)
	} else {
		err = r.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
