package core

import (
	"math"
	"testing"
)

func TestElemsOfMatchesLegacyTruncation(t *testing.T) {
	for _, d := range []float64{0, 1, 3, 4, 5, 7, 8, 100, 399, 400, 401, 1e6, 1e6 + 2, 2.5e9} {
		got, err := ElemsOf(d)
		if err != nil {
			t.Fatalf("ElemsOf(%g): %v", d, err)
		}
		if want := int(d / 4); got != want {
			t.Errorf("ElemsOf(%g) = %d, want legacy int(d/4) = %d", d, got, want)
		}
	}
}

func TestElemsOfRejectsGarbageSizes(t *testing.T) {
	for _, d := range []float64{
		math.NaN(),
		math.Inf(1),
		math.Inf(-1),
		-1,
		-0.0001,
		4 * float64(math.MaxInt),
	} {
		if n, err := ElemsOf(d); err == nil {
			t.Errorf("ElemsOf(%g) = %d, want error", d, n)
		}
	}
}
