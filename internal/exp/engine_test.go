package exp

import (
	"fmt"
	"strings"
	"testing"

	"wrht/internal/dnn"
	"wrht/internal/obs"
)

// renderFig5 serialises every subfigure plus the headline reductions in
// exact hex-float form, so two runs compare bit-for-bit.
func renderFig5(r Fig5Result) string {
	var b strings.Builder
	for _, f := range r.Figures {
		b.WriteString(f.String())
	}
	fmt.Fprintf(&b, "%x %x %x", r.VsRing, r.VsHRing, r.VsBT)
	return b.String()
}

func renderFig6(r Fig6Result) string {
	var b strings.Builder
	for _, f := range r.Figures {
		b.WriteString(f.String())
	}
	fmt.Fprintf(&b, "%x %x %x", r.VsRing, r.VsHRing, r.VsBT)
	return b.String()
}

func renderFig7(r Fig7Result) string {
	var b strings.Builder
	for _, f := range r.Figures {
		b.WriteString(f.String())
	}
	fmt.Fprintf(&b, "%x %x %x", r.ORingVsERing, r.WRHTVsERing, r.WRHTVsERD)
	return b.String()
}

// TestParallelMatchesSequential is the engine's safety proof: every
// figure rendered on the full worker pool is byte-identical to the
// sequential (Workers=1) baseline, including the exact float bits of
// the headline reduction percentages.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name   string
		render func(Options) (string, error)
	}{
		{"fig4", func(o Options) (string, error) {
			f, err := Fig4(o)
			if err != nil {
				return "", err
			}
			return f.String(), nil
		}},
		{"fig5", func(o Options) (string, error) {
			r, err := Fig5(o)
			if err != nil {
				return "", err
			}
			return renderFig5(r), nil
		}},
		{"fig6-bucketed", func(o Options) (string, error) {
			o.Granularity = Bucketed
			r, err := Fig6(o)
			if err != nil {
				return "", err
			}
			return renderFig6(r), nil
		}},
		{"fig7-small", func(o Options) (string, error) {
			r, err := fig7At(o, []int{64, 128})
			if err != nil {
				return "", err
			}
			return renderFig7(r), nil
		}},
		{"extras", func(o Options) (string, error) {
			tab, err := Extras(o, dnn.ResNet50(), 256, 64)
			if err != nil {
				return "", err
			}
			return tab.String(), nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := Defaults()
			seq.Workers = 1
			par := Defaults()
			par.Workers = 8
			want, err := tc.render(seq)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			got, err := tc.render(par)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if got != want {
				t.Errorf("parallel output differs from sequential baseline:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
			}
		})
	}
}

// TestProfileCacheBuildsEachConfigOnce proves the memoization claim:
// one sweep builds each distinct collective configuration exactly once,
// however many (model, point) pairs revisit it.
func TestProfileCacheBuildsEachConfigOnce(t *testing.T) {
	// Fig 4 touches 4 distinct WRHT configs (m ∈ {17,33,65,129}) across
	// 16 sweep points.
	e := newEngine(Defaults(), "test")
	if _, err := e.fig4(); err != nil {
		t.Fatal(err)
	}
	if got := e.profiles.Builds(); got != 4 {
		t.Errorf("fig4 built %d profiles, want 4 (one per distinct m)", got)
	}
	// 16 sweep points, one profile lookup each: 4 misses created the
	// entries, the other 12 lookups hit. Misses above Builds would be the
	// silent-rebuild signal (identical profiles under fragmented keys).
	if h, m := e.profiles.Hits(), e.profiles.Misses(); m != 4 || h != 12 {
		t.Errorf("fig4 hits/misses = %d/%d, want 12/4", h, m)
	}
	// Re-running on the same engine adds no builds — 16 more hits.
	if _, err := e.fig4(); err != nil {
		t.Fatal(err)
	}
	if got := e.profiles.Builds(); got != 4 {
		t.Errorf("fig4 rerun rebuilt profiles: %d builds", got)
	}
	if h, m := e.profiles.Hits(), e.profiles.Misses(); m != 4 || h != 28 {
		t.Errorf("fig4 rerun hits/misses = %d/%d, want 28/4", h, m)
	}

	// Fig 5 touches 4 WRHT (canonical m per w ∈ {4,16,64,256}; the
	// normalization base shares the w=256 entry), 1 Ring, 4 H-Ring and
	// 1 BT config = 10 distinct profiles across 65 point evaluations.
	e = newEngine(Defaults(), "test")
	if _, err := e.fig5(); err != nil {
		t.Fatal(err)
	}
	if got := e.profiles.Builds(); got != 10 {
		t.Errorf("fig5 built %d profiles, want 10", got)
	}
	if m := e.profiles.Misses(); m != 10 {
		t.Errorf("fig5 misses = %d, want 10 (one per distinct profile)", m)
	}
	// 64 sweep lookups + the normalization base, 10 of them misses.
	if h := e.profiles.Hits(); h != 55 {
		t.Errorf("fig5 hits = %d, want 55", h)
	}
}

// TestSweepPublishesCacheMetrics checks the registry integration: sweep
// counters and the cache's hit/miss deltas land under their documented
// names after each sweep.
func TestSweepPublishesCacheMetrics(t *testing.T) {
	o := Defaults()
	o.Metrics = obs.NewRegistry()
	if _, err := Fig4(o); err != nil {
		t.Fatal(err)
	}
	s := o.Metrics.Snapshot()
	if got := s.Counters["exp.sweep.points"]; got != 16 {
		t.Errorf("exp.sweep.points = %d, want 16", got)
	}
	if got := s.Counters["collective.profile_cache.misses"]; got != 4 {
		t.Errorf("collective.profile_cache.misses = %d, want 4", got)
	}
	if got := s.Counters["collective.profile_cache.hits"]; got != 12 {
		t.Errorf("collective.profile_cache.hits = %d, want 12", got)
	}
	if got := s.Counters["collective.profile_cache.builds"]; got != 4 {
		t.Errorf("collective.profile_cache.builds = %d, want 4", got)
	}
	if s.Gauges["exp.sweep.busy_seconds"] <= 0 {
		t.Error("exp.sweep.busy_seconds not accumulated")
	}
}

// TestSweepDeterministicOrderAndError pins the two determinism
// guarantees of the pool: results land in index order, and the
// lowest-index error wins regardless of goroutine scheduling.
func TestSweepDeterministicOrderAndError(t *testing.T) {
	e := newEngine(Options{Workers: 8}, "test")
	vals, err := sweep(e, 100, func(i int) (float64, error) { return float64(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != float64(i) {
			t.Fatalf("vals[%d] = %g, want %d", i, v, i)
		}
	}
	for trial := 0; trial < 25; trial++ {
		_, err := sweep(e, 100, func(i int) (float64, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("boom at %d", i)
			}
			return 0, nil
		})
		if err == nil || !strings.Contains(err.Error(), "point 3:") {
			t.Fatalf("trial %d: error = %v, want lowest-index point 3", trial, err)
		}
	}
}

// TestBaselineModelLookup guards the normalization bugfix: the baseline
// is found by name, and a missing name is a loud error rather than a
// silently skewed figure.
func TestBaselineModelLookup(t *testing.T) {
	m, err := baselineModel(dnn.Workloads(), baselineWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "ResNet50" {
		t.Fatalf("baseline = %s, want ResNet50", m.Name)
	}
	if _, err := baselineModel(dnn.Workloads(), "NoSuchNet"); err == nil {
		t.Fatal("missing baseline workload should error")
	}
	// Reordering the workload list must not change the baseline.
	ws := dnn.Workloads()
	for i, j := 0, len(ws)-1; i < j; i, j = i+1, j-1 {
		ws[i], ws[j] = ws[j], ws[i]
	}
	m2, err := baselineModel(ws, baselineWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != m.Name {
		t.Fatalf("baseline after reorder = %s, want %s", m2.Name, m.Name)
	}
}
