package rwa

import (
	"math/rand"
	"testing"

	"wrht/internal/topo"
)

// FuzzAssign is a differential fuzz of the bitset assignment path
// against the legacy quadratic oracle on arbitrary request sets: both
// strategies must produce bit-identical assignments and wavelength
// counts (RandomFit from identical RNG draws), every assignment must
// validate conflict-free under both validators, and every wavelength id
// must stay inside the count Assign reports.
func FuzzAssign(f *testing.F) {
	f.Add(8, int64(1), []byte{0x01, 0x52, 0x13, 0x34})
	f.Add(16, int64(7), []byte{0xff, 0x00, 0x80, 0x7f, 0x21})
	f.Add(3, int64(42), []byte{})
	f.Fuzz(func(t *testing.T, n int, seed int64, data []byte) {
		if n < 2 {
			n = 2
		}
		if n > 64 {
			n = 64
		}
		ring := topo.NewRing(n)
		// Three fuzz bytes make one request: source, hop distance (1..n-1
		// so src != dst) and direction.
		var reqs []Request
		for i := 0; i+2 < len(data) && len(reqs) < 128; i += 3 {
			src := int(data[i]) % n
			dst := (src + 1 + int(data[i+1])%(n-1)) % n
			dir := topo.CW
			if data[i+2]%2 == 1 {
				dir = topo.CCW
			}
			reqs = append(reqs, Request{Src: src, Dst: dst, Dir: dir})
		}
		for _, strat := range []Strategy{FirstFit, RandomFit} {
			asn, used := Assign(ring, reqs, strat, rand.New(rand.NewSource(seed)))
			if len(asn) != len(reqs) {
				t.Fatalf("%v: %d assignments for %d requests", strat, len(asn), len(reqs))
			}
			ref, refUsed := assignQuadratic(ring, reqs, strat, rand.New(rand.NewSource(seed)))
			if used != refUsed {
				t.Fatalf("%v: bitset used %d wavelengths, oracle %d", strat, used, refUsed)
			}
			for i := range reqs {
				if asn[i] != ref[i] {
					t.Fatalf("%v: request %d: bitset λ%d, oracle λ%d", strat, i, asn[i], ref[i])
				}
			}
			for i, w := range asn {
				if w < 0 || w >= used {
					t.Fatalf("%v: request %d got wavelength %d outside [0,%d)", strat, i, w, used)
				}
			}
			if err := Validate(ring, reqs, asn, used); err != nil {
				t.Fatalf("%v: assignment rejected by validator: %v", strat, err)
			}
			if err := validateQuadratic(ring, reqs, asn, used); err != nil {
				t.Fatalf("%v: assignment rejected by oracle validator: %v", strat, err)
			}

			// Release coverage: occupy the whole assignment, release a
			// data-derived subset, and pin the surviving occupancy (cells
			// and block summaries) bit-identical to an index that only ever
			// occupied the kept circuits.
			arcs := ArcsOf(ring, reqs)
			ix := NewIndex(ring)
			kept := NewIndex(ring)
			for i, q := range reqs {
				ix.Occupy(q.Dir, arcs[i], asn[i])
			}
			for i, q := range reqs {
				if data[(i*3)%max(len(data), 1)]&0x40 != 0 {
					ix.Release(q.Dir, arcs[i], asn[i])
				} else {
					kept.Occupy(q.Dir, arcs[i], asn[i])
				}
			}
			if !ix.EqualOccupancy(kept) {
				t.Fatalf("%v: released occupancy differs from never-occupied reference", strat)
			}
		}
	})
}
