package daemon

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wrht/internal/api"
)

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, b
}

func decodeErrorEnvelope(t *testing.T, b []byte) *api.Error {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("decoding error envelope from %q: %v", b, err)
	}
	if env.Error == nil {
		t.Fatalf("no error in envelope %q", b)
	}
	return env.Error
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func TestBuildEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, b := postJSON(t, ts.URL+"/v1/build", `{"kind":"wrht","n":64,"wavelengths":8}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, b)
	}
	var resp api.BuildResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if resp.Version != api.Version {
		t.Errorf("version = %q, want %q", resp.Version, api.Version)
	}
	if !resp.Validated {
		t.Error("response not validated despite wavelengths > 0")
	}
	if resp.Steps <= 0 || resp.Transfers <= 0 {
		t.Errorf("empty schedule: %d steps, %d transfers", resp.Steps, resp.Transfers)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, b := postJSON(t, ts.URL+"/v1/simulate",
		`{"backend":"optical","payload_bytes":1048576,"build":{"kind":"wrht","n":32,"wavelengths":8}}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, b)
	}
	var resp api.SimulateResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if resp.Result.Time <= 0 {
		t.Errorf("non-positive simulated time %g", resp.Result.Time)
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, b := postJSON(t, ts.URL+"/v1/sweep",
		`{"sweep":"faults","ns":[16],"wavelengths":4,"payload_mb":1,"dead":[0,1]}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, b)
	}
	var resp api.SweepResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(resp.Faults) != 2 {
		t.Fatalf("got %d fault points, want 2", len(resp.Faults))
	}
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, b := postJSON(t, ts.URL+"/v1/plan",
		`{"rs":[4],"wavelengths":8,"a_micros":[25],"payload_mb":1,"no_rescue":true}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, b)
	}
	var resp api.PlanResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(resp.Points) == 0 {
		t.Fatal("no plan points")
	}
	if len(resp.Rescue) != 0 {
		t.Fatal("rescue rows present despite no_rescue")
	}
}

// Every error leaves the daemon as the typed envelope with the right
// code and HTTP status.
func TestErrorEnvelopes(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"bad json", "/v1/build", `{"kind":`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown field", "/v1/build", `{"kind":"wrht","n":8,"bogus":1}`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown kind", "/v1/build", `{"kind":"quantum","n":8}`, http.StatusBadRequest, api.CodeUnknownKind},
		{"unconsumed option", "/v1/build", `{"kind":"ring","n":8,"wavelengths":4}`, http.StatusBadRequest, api.CodeUnconsumedOption},
		{"unknown backend", "/v1/simulate", `{"backend":"carrier-pigeon","payload_bytes":1,"build":{"kind":"ring","n":8}}`, http.StatusBadRequest, api.CodeUnknownBackend},
		{"negative payload", "/v1/simulate", `{"backend":"optical","payload_bytes":-1,"build":{"kind":"ring","n":8}}`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown sweep", "/v1/sweep", `{"sweep":"warp","wavelengths":4,"payload_mb":1}`, http.StatusBadRequest, api.CodeBadRequest},
		{"empty plan grid", "/v1/plan", `{"rs":[],"wavelengths":8,"a_micros":[25],"payload_mb":1}`, http.StatusBadRequest, api.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, b := postJSON(t, ts.URL+tc.path, tc.body)
			if code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", code, tc.status, b)
			}
			if e := decodeErrorEnvelope(t, b); e.Code != tc.code {
				t.Errorf("code = %q, want %q (message %q)", e.Code, tc.code, e.Message)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/build")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	if e := decodeErrorEnvelope(t, b); e.Code != api.CodeMethodNotAllowed {
		t.Errorf("code = %q, want %q", e.Code, api.CodeMethodNotAllowed)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/build", `{"kind":"wrht","n":16,"wavelengths":4}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	text := string(b)
	for _, want := range []string{"api_requests", `endpoint="build"`, "api_request_seconds"} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// After Close the daemon's base context is canceled: any request that
// still reaches a handler fails fast with the canceled code rather
// than computing for a caller the daemon is abandoning.
func TestClosedServerReturnsCanceled(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	code, b := postJSON(t, ts.URL+"/v1/build", `{"kind":"wrht","n":16,"wavelengths":4}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", code, b)
	}
	if e := decodeErrorEnvelope(t, b); e.Code != api.CodeCanceled {
		t.Errorf("code = %q, want %q", e.Code, api.CodeCanceled)
	}
}

// Duplicate concurrent requests coalesce: the hit counter moves and
// all callers get the same bytes.
func TestCoalescingObserved(t *testing.T) {
	s, ts := newTestServer(t)
	const callers = 8
	// A sweep heavy enough (~hundreds of ms) that concurrent callers
	// reliably land inside the in-flight window.
	body := `{"sweep":"crossfabric","n":512,"wavelengths":64,"payload_mb":100}`
	results := make(chan []byte, callers)
	for i := 0; i < callers; i++ {
		go func() {
			code, b := postJSON(t, ts.URL+"/v1/sweep", body)
			if code != http.StatusOK {
				t.Errorf("status = %d, body %s", code, b)
			}
			results <- b
		}()
	}
	first := <-results
	for i := 1; i < callers; i++ {
		if got := <-results; string(got) != string(first) {
			t.Fatalf("coalesced callers saw different bytes:\n%s\nvs\n%s", first, got)
		}
	}
	// With 8 identical concurrent requests at least some must have
	// joined an in-flight execution.
	var hits int64
	for name, v := range s.Registry().Snapshot().Counters {
		if strings.HasPrefix(name, "api.coalesce.hits") {
			hits += v
		}
	}
	if hits == 0 {
		t.Error("no coalescing hits recorded for 8 identical concurrent sweeps")
	}
}
