package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wrht/internal/daemon"
)

// TestDaemonCLIParity is the API-redesign acceptance gate: for every
// golden config, the bytes `wrhtsim <cmd> -json` writes must equal the
// body wrhtd serves for the equivalent request. Both surfaces run the
// same executors and serialize through api.Encode, and the schema
// carries no wall-clock fields, so the comparison is exact — not
// "modulo volatile fields".
func TestDaemonCLIParity(t *testing.T) {
	s := daemon.New(daemon.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	cases := []struct {
		name string
		cfg  runConfig
		path string
		body string
	}{
		{
			name: "build",
			cfg:  runConfig{cmd: "build", granularity: "fused", n: 64, w: 8},
			path: "/v1/build",
			body: `{"kind":"wrht","n":64,"wavelengths":8}`,
		},
		{
			name: "build streamed",
			cfg:  runConfig{cmd: "build", granularity: "fused", n: 256, w: 16, stream: true},
			path: "/v1/build",
			body: `{"kind":"wrht","n":256,"wavelengths":16,"stream":true}`,
		},
		{
			name: "crossfabric",
			cfg:  runConfig{cmd: "crossfabric", granularity: "fused", workers: 1, n: 64, w: 8, payloadMB: 10},
			path: "/v1/sweep",
			body: `{"sweep":"crossfabric","n":64,"wavelengths":8,"payload_mb":10}`,
		},
		{
			name: "overlap",
			cfg:  runConfig{cmd: "overlap", granularity: "fused", workers: 1, nSet: true, n: 1024, w: 64, payloadMB: 100},
			path: "/v1/sweep",
			body: `{"sweep":"overlap","ns":[1024],"wavelengths":64,"payload_mb":100}`,
		},
		{
			name: "faults",
			cfg:  runConfig{cmd: "faults", granularity: "fused", workers: 1, nSet: true, n: 64, w: 8, payloadMB: 10},
			path: "/v1/sweep",
			body: `{"sweep":"faults","ns":[64],"wavelengths":8,"payload_mb":10}`,
		},
		{
			name: "plan",
			cfg:  runConfig{cmd: "plan", granularity: "fused", workers: 1, w: 8, payloadMB: 25, planR: "8", planA: "25"},
			path: "/v1/plan",
			body: `{"rs":[8],"wavelengths":8,"a_micros":[25],"payload_mb":25}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jsonPath := filepath.Join(t.TempDir(), "out.json")
			tc.cfg.jsonOut = jsonPath
			old := os.Stdout
			null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			os.Stdout = null
			code := run(tc.cfg)
			os.Stdout = old
			null.Close()
			if code != 0 {
				t.Fatalf("run exited %d", code)
			}
			cli, err := os.ReadFile(jsonPath)
			if err != nil {
				t.Fatal(err)
			}

			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			served, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("daemon status %d: %s", resp.StatusCode, served)
			}
			if !bytes.Equal(cli, served) {
				t.Errorf("CLI and daemon bytes differ:\n--- wrhtsim -json ---\n%s\n--- wrhtd %s ---\n%s", cli, tc.path, served)
			}
		})
	}
}
