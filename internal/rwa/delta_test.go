package rwa

import (
	"math/rand"
	"testing"

	"wrht/internal/topo"
)

// randomStep draws a conflict-free circuit set on ring r: random
// requests colored by AssignInto, so wavelengths never clash within the
// step (the precondition Advance's release path relies on).
func randomStep(t *testing.T, r topo.Ring, rng *rand.Rand, maxReqs int) []Circuit {
	t.Helper()
	nr := rng.Intn(maxReqs + 1)
	reqs := make([]Request, nr)
	for i := range reqs {
		src := rng.Intn(r.N)
		dst := (src + 1 + rng.Intn(r.N-1)) % r.N
		dir := topo.CW
		if rng.Intn(2) == 1 {
			dir = topo.CCW
		}
		reqs[i] = Request{Src: src, Dst: dst, Dir: dir}
	}
	arcs := ArcsOf(r, reqs)
	ix := NewIndex(r)
	asn := make(Assignment, nr)
	ix.AssignInto(asn, reqs, arcs, FirstFit, nil)
	out := make([]Circuit, nr)
	for i := range reqs {
		out[i] = Circuit{Dir: reqs[i].Dir, Arc: arcs[i], W: asn[i]}
	}
	return out
}

// occupyAll occupies every circuit on a reset index.
func occupyAll(ix *Index, step []Circuit) {
	for _, c := range step {
		ix.Occupy(c.Dir, c.Arc, c.W)
	}
}

// TestAdvanceMatchesResetReplay chains random conflict-free steps
// through one delta-updated index and pins its occupancy (cells AND
// block summaries) bit-identical to a fresh Reset+replay of each step,
// with and without a pre-occupied fault mask.
func TestAdvanceMatchesResetReplay(t *testing.T) {
	for _, masked := range []bool{false, true} {
		for _, n := range []int{2, 5, 16, 64, 100} {
			r := topo.NewRing(n)
			rng := rand.New(rand.NewSource(int64(n) * 31))
			delta := NewIndex(r)
			ref := NewIndex(r)
			if masked {
				// Park the mask on a high wavelength word so it never
				// collides with the assigned circuits.
				for _, ix := range []*Index{delta, ref} {
					ix.Preoccupy(topo.CW, r.ArcOf(0, n/2+1, topo.CW), 130)
					ix.Preoccupy(topo.CCW, r.ArcOf(1, 0, topo.CCW), 64)
				}
			}
			delta.Reset()
			var prev []Circuit
			for step := 0; step < 40; step++ {
				next := randomStep(t, r, rng, 24)
				delta.Advance(prev, next)
				ref.Reset()
				occupyAll(ref, next)
				if !delta.EqualOccupancy(ref) {
					t.Fatalf("n=%d masked=%v step %d: delta occupancy diverged from reset+replay", n, masked, step)
				}
				if !ref.EqualOccupancy(delta) {
					t.Fatalf("n=%d masked=%v step %d: EqualOccupancy not symmetric", n, masked, step)
				}
				prev = next
			}
		}
	}
}

// TestAdvanceCheckedMatchesConflictFree pins AdvanceChecked's verdict
// to the authoritative ConflictFree check on steps that are randomly
// either clean or corrupted (a duplicated circuit forces a clash).
// After a rejection the index state is unspecified, so the chain
// restarts from Reset exactly as StepValidator's fallback path does.
func TestAdvanceCheckedMatchesConflictFree(t *testing.T) {
	r := topo.NewRing(24)
	rng := rand.New(rand.NewSource(7))
	ix := NewIndex(r)
	ix.Preoccupy(topo.CW, r.ArcOf(3, 9, topo.CW), 200)
	ix.Reset()
	oracle := NewIndex(r)
	oracle.Preoccupy(topo.CW, r.ArcOf(3, 9, topo.CW), 200)
	var prev []Circuit
	sawBad := false
	for step := 0; step < 200; step++ {
		next := randomStep(t, r, rng, 12)
		if len(next) > 0 && rng.Intn(3) == 0 {
			// Corrupt: clone a circuit so it overlaps itself.
			next = append(next, next[rng.Intn(len(next))])
		}
		reqs := make([]Request, len(next))
		arcs := make([]topo.Arc, len(next))
		asn := make(Assignment, len(next))
		for i, c := range next {
			reqs[i] = Request{Src: c.Arc.Lo, Dst: (c.Arc.Lo + c.Arc.Len) % r.N, Dir: c.Dir}
			arcs[i] = c.Arc
			asn[i] = c.W
		}
		want := oracle.ConflictFree(reqs, arcs, asn)
		got := ix.AdvanceChecked(prev, next)
		if got != want {
			t.Fatalf("step %d: AdvanceChecked=%v, ConflictFree=%v (%d circuits)", step, got, want, len(next))
		}
		if !got {
			sawBad = true
			// A rejected step aborts validation in the real pipeline, so
			// the chain restarts clean: Advance's release contract only
			// covers conflict-free previous steps.
			ix.Reset()
			prev = nil
			continue
		}
		prev = next
	}
	if !sawBad {
		t.Fatal("corruption never produced a conflict; test is vacuous")
	}
}

// TestReleaseRepairsBlockSummaries occupies same-wavelength circuits
// sharing a 64-segment summary block, releases one, and checks both the
// per-segment cells and the block summaries match an index that never
// saw the released circuit.
func TestReleaseRepairsBlockSummaries(t *testing.T) {
	r := topo.NewRing(200) // several summary blocks, wrap-around arcs
	cases := [][2]Circuit{
		// Same block, disjoint segments.
		{{topo.CW, r.ArcOf(2, 10, topo.CW), 5}, {topo.CW, r.ArcOf(20, 30, topo.CW), 5}},
		// Different blocks, same word.
		{{topo.CW, r.ArcOf(0, 40, topo.CW), 7}, {topo.CW, r.ArcOf(100, 180, topo.CW), 7}},
		// Wrap-around release crossing the ring seam.
		{{topo.CCW, r.ArcOf(10, 190, topo.CCW), 66}, {topo.CCW, r.ArcOf(100, 60, topo.CCW), 66}},
		// Different wavelengths in the same word on overlapping segments.
		{{topo.CW, r.ArcOf(50, 90, topo.CW), 3}, {topo.CW, r.ArcOf(60, 95, topo.CW), 4}},
	}
	for i, pair := range cases {
		keep, drop := pair[0], pair[1]
		ix := NewIndex(r)
		ix.Occupy(keep.Dir, keep.Arc, keep.W)
		ix.Occupy(drop.Dir, drop.Arc, drop.W)
		ix.Release(drop.Dir, drop.Arc, drop.W)
		ref := NewIndex(r)
		ref.Occupy(keep.Dir, keep.Arc, keep.W)
		// Force ref to the same word growth as ix so only occupancy
		// content, not capacity, can differ.
		if !ix.EqualOccupancy(ref) {
			t.Errorf("case %d: release left occupancy != never-occupied reference", i)
		}
		if !ix.Occupied(keep.Dir, keep.Arc, keep.W) {
			t.Errorf("case %d: release of %v cleared the kept circuit %v", i, drop, keep)
		}
	}
}

// TestReleaseAboveGrownWords releases a wavelength the index never grew
// to: a no-op, not a panic.
func TestReleaseAboveGrownWords(t *testing.T) {
	r := topo.NewRing(8)
	ix := NewIndex(r)
	ix.Occupy(topo.CW, r.ArcOf(0, 3, topo.CW), 1)
	ref := NewIndex(r)
	ref.Occupy(topo.CW, r.ArcOf(0, 3, topo.CW), 1)
	ix.Release(topo.CCW, r.ArcOf(2, 6, topo.CCW), 500)
	if !ix.EqualOccupancy(ref) {
		t.Fatal("high-wavelength release disturbed occupancy")
	}
}

// TestAdvanceReleaseBeforeOccupy pins the diff ordering: a next-only
// circuit claiming exactly the cells a prev-only circuit frees must not
// be misreported as a conflict.
func TestAdvanceReleaseBeforeOccupy(t *testing.T) {
	r := topo.NewRing(16)
	ix := NewIndex(r)
	arc := r.ArcOf(2, 9, topo.CW)
	prev := []Circuit{{topo.CW, arc, 3}}
	occupyAll(ix, prev)
	// Same cells, but a different Circuit value (distinct arc bounds).
	next := []Circuit{{topo.CW, r.ArcOf(1, 10, topo.CW), 3}}
	if !ix.AdvanceChecked(prev, next) {
		t.Fatal("AdvanceChecked misreported a conflict for cells freed within the same step")
	}
	ref := NewIndex(r)
	occupyAll(ref, next)
	if !ix.EqualOccupancy(ref) {
		t.Fatal("occupancy after handover diverged from replay")
	}
}
