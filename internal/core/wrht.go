package core

import (
	"fmt"
	"math/rand"

	"wrht/internal/rwa"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// Config parameterizes WRHT schedule construction.
type Config struct {
	// N is the number of nodes on the optical ring.
	N int
	// Wavelengths is the available wavelength count w per waveguide
	// (64 on TeraRack, Table 2).
	Wavelengths int
	// GroupSize is the number of grouped nodes m per subgroup in the
	// first reduce step. Zero selects the step-optimal m = 2w+1
	// (Lemma 1), clamped by MaxGroupSize when set.
	GroupSize int
	// MaxGroupSize is the insertion-loss/crosstalk bound m' (§4.4); zero
	// means unconstrained. GroupSize and the Lemma-1 default are clamped
	// to it.
	MaxGroupSize int
	// DisableAllToAll forces the final reduce step to gather to a single
	// root even when the wavelength budget would allow the all-to-all
	// exchange, yielding θ = 2⌈log_m N⌉ instead of 2⌈log_m N⌉−1.
	// Used by the ablation benchmarks. It also disables PlanAllToAll.
	DisableAllToAll bool
	// PlanAllToAll replaces the single-root gather fallback with a
	// multi-round reconfiguration plan (DefaultPhasePlan) whenever the
	// final representatives' one-shot all-to-all exceeds the wavelength
	// budget: the exchange the fallback abandons is carried over k
	// striped rounds instead. Configurations whose one-shot exchange
	// fits the budget build identical schedules with or without this
	// option; payload-aware plan selection is internal/plan's job.
	PlanAllToAll bool
	// Strategy selects the wavelength-assignment heuristic for the final
	// all-to-all step (First Fit by default, §4.1.2).
	Strategy rwa.Strategy
	// Seed seeds the Random Fit strategy.
	Seed int64
}

// EffectiveGroupSize resolves the grouped-node count m the configuration
// will use: the explicit GroupSize if set, otherwise the Lemma-1 optimum
// 2w+1, both clamped to MaxGroupSize when that constraint is present.
func (c Config) EffectiveGroupSize() int {
	m := c.GroupSize
	if m == 0 {
		m = 2*c.Wavelengths + 1
	}
	if c.MaxGroupSize > 0 && m > c.MaxGroupSize {
		m = c.MaxGroupSize
	}
	return m
}

// Canonical returns the configuration with GroupSize resolved to
// EffectiveGroupSize. Two configurations with equal canonical forms
// build identical schedules (GroupSize is only ever read through
// EffectiveGroupSize), so caches key on the canonical value: an
// explicit GroupSize of 2w+1 shares a cache entry with the
// GroupSize-0 default at the same wavelength budget.
func (c Config) Canonical() Config {
	c.GroupSize = c.EffectiveGroupSize()
	return c
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("core: wrht: N=%d < 1", c.N)
	}
	if c.Wavelengths < 1 {
		return fmt.Errorf("core: wrht: wavelengths=%d < 1", c.Wavelengths)
	}
	m := c.EffectiveGroupSize()
	if m < 2 {
		return fmt.Errorf("core: wrht: group size m=%d < 2", m)
	}
	if need := m / 2; need > c.Wavelengths {
		return fmt.Errorf("core: wrht: group size m=%d needs ⌊m/2⌋=%d wavelengths > budget %d", m, need, c.Wavelengths)
	}
	return nil
}

// group is one subgroup at one level of the hierarchical tree: the ring
// positions of its members and the index of the representative within
// Members (the intermediate node, §4.1.1).
type group struct {
	Members []int
	RepIdx  int
}

func (g group) rep() int { return g.Members[g.RepIdx] }

// partition splits the participant positions into consecutive runs of at
// most m, selecting the middle member of each run as representative.
func partition(participants []int, m int) []group {
	var groups []group
	for lo := 0; lo < len(participants); lo += m {
		hi := min(lo+m, len(participants))
		members := participants[lo:hi]
		groups = append(groups, group{Members: members, RepIdx: len(members) / 2})
	}
	return groups
}

// gatherStep emits the intra-group collection transfers of one reduce
// level: every non-representative sends its full partial sum to the
// representative. Members below the representative travel CW (toward
// higher index), members above travel CCW; the wavelength is the
// group-local distance to the representative minus one, so two members
// equidistant on opposite sides reuse the same wavelength on the two
// opposite fibers (§3.3) and at most ⌊m/2⌋ wavelengths are used.
func gatherStep(groups []group, op tensor.ReduceOp) Step {
	var st Step
	gatherStepInto(&st, groups, op)
	return st
}

// gatherStepInto is gatherStep writing into a reused buffer: the phase
// is set and the transfers are appended to buf.Transfers[:0], keeping
// the capacity across steps (the streaming producers emit through it).
func gatherStepInto(buf *Step, groups []group, op tensor.ReduceOp) {
	phase := PhaseReduce
	if op == tensor.OpCopy {
		phase = PhaseBroadcast
	}
	buf.Phase = phase
	buf.Transfers = buf.Transfers[:0]
	for _, g := range groups {
		for i, node := range g.Members {
			if i == g.RepIdx {
				continue
			}
			var dir topo.Direction
			var dist int
			if i < g.RepIdx {
				dir, dist = topo.CW, g.RepIdx-i
			} else {
				dir, dist = topo.CCW, i-g.RepIdx
			}
			tr := Transfer{
				Src: node, Dst: g.rep(),
				Chunk: tensor.Whole, Op: op,
				Dir: dir, Wavelength: dist - 1,
			}
			if op == tensor.OpCopy {
				// Broadcast reverses the gather: representative -> member,
				// opposite direction, same wavelength.
				tr.Src, tr.Dst = g.rep(), node
				tr.Dir = dir.Opposite()
			}
			buf.Transfers = append(buf.Transfers, tr)
		}
	}
}

// AllToAllWavelengths returns the paper's wavelength requirement
// ⌈r²/8⌉ for an all-to-all exchange among r nodes on a WDM ring [13].
func AllToAllWavelengths(r int) int {
	if r <= 1 {
		return 0
	}
	return (r*r + 7) / 8
}

// allToAllStep emits the final exchange among the top-level
// representatives: every ordered pair (i, j) carries i's partial sum to
// j over the shortest ring direction; wavelengths are assigned by the
// configured heuristic.
func allToAllStep(r topo.Ring, reps []int, strat rwa.Strategy, rng *rand.Rand) Step {
	st := Step{Phase: PhaseAllToAll}
	var reqs []rwa.Request
	for _, src := range reps {
		for _, dst := range reps {
			if src == dst {
				continue
			}
			dir, _ := r.ShortestDir(src, dst)
			reqs = append(reqs, rwa.Request{Src: src, Dst: dst, Dir: dir})
		}
	}
	asn, _ := rwa.AssignArcs(r, reqs, rwa.ArcsOf(r, reqs), strat, rng)
	for i, q := range reqs {
		st.Transfers = append(st.Transfers, Transfer{
			Src: q.Src, Dst: q.Dst,
			Chunk: tensor.Whole, Op: tensor.OpSum,
			Dir: q.Dir, Wavelength: asn[i],
		})
	}
	return st
}

// BuildWRHT constructs the WRHT all-reduce schedule (§4.1): hierarchical
// grouped gathers until the surviving representatives either fit a
// wavelength-feasible all-to-all exchange or collapse to a single root,
// then the broadcast stage replays the gather levels in reverse with the
// reduced vector. The construction streams through StreamWRHT; callers
// that can consume one step at a time should use the stream directly and
// skip materializing the schedule (see stream.go).
func BuildWRHT(cfg Config) (*Schedule, error) {
	src, err := StreamWRHT(cfg)
	if err != nil {
		return nil, err
	}
	return Collect(src), nil
}
