// resnet50_training: end-to-end distributed data-parallel training.
//
// Two halves, mirroring how the paper separates correctness from
// performance:
//
//  1. A real (numeric) convolutional network trains on 8 in-process
//     workers whose gradients are synchronised by executing the WRHT
//     schedule — demonstrating Eq 1–5 end to end: loss falls and all
//     replicas stay bit-identical.
//  2. The ResNet50 workload's per-epoch timeline on a 1024-node optical
//     ring, comparing WRHT against Ring all-reduce (the headline
//     use-case of the paper).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wrht"
	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/train"
	"wrht/internal/workload"
)

func main() {
	log.SetFlags(0)

	// ---- Part 1: real training on 8 workers with WRHT gradient sync.
	const (
		workers          = 8
		classes          = 4
		imgC, imgH, imgW = 1, 8, 8
	)
	sched, err := wrht.Build(wrht.KindWRHT, workers, wrht.WithWavelengths(2))
	if err != nil {
		log.Fatal(err)
	}
	factory := func() *train.Net {
		rng := rand.New(rand.NewSource(42))
		conv := train.NewConv2D(imgC, imgH, imgW, 4, 3, 1, 1, rng)
		return train.NewNet(
			conv,
			train.NewReLU(conv.OutDim()),
			train.NewDense(conv.OutDim(), 32, rng),
			train.NewReLU(32),
			train.NewDense(32, classes, rng),
		)
	}
	tr, err := train.NewParallelTrainer(workers, factory, sched, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	ds := train.SyntheticClassification(1024, imgC*imgH*imgW, classes, 7)
	losses, err := tr.Epochs(ds, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("numeric training on %d workers (conv net, %d params, WRHT sync):\n",
		workers, tr.Nets[0].NumParams())
	fmt.Printf("  loss %.4f -> %.4f over %d iterations\n",
		losses[0], losses[len(losses)-1], len(losses))
	if err := tr.ReplicasInSync(0); err != nil {
		log.Fatalf("  replicas diverged: %v", err)
	}
	fmt.Println("  all replicas bit-identical after every synchronous step: OK")

	// Final accuracy on the training set.
	logits := tr.Nets[0].Forward(ds.X)
	fmt.Printf("  training accuracy: %.1f%%\n", train.Accuracy(logits, ds.Labels)*100)

	// ---- Part 2: ResNet50 epoch timeline at paper scale.
	const nodes = 1024
	w := workload.New(dnn.ResNet50(), workload.TitanXP(), 0)
	wrhtProf, err := collective.WRHTProfile(core.Config{N: nodes, Wavelengths: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nResNet50 on %d nodes (batch %d/GPU, %.0f MB gradients):\n",
		nodes, w.BatchSize, w.GradBytes/1e6)
	for _, c := range []struct {
		name string
		prof core.Profile
	}{
		{"WRHT", wrhtProf},
		{"Ring", collective.RingProfile(nodes)},
		{"BT", collective.BTProfile(nodes)},
	} {
		res, err := wrht.Simulate(wrht.Optical, c.prof, w.GradBytes)
		if err != nil {
			log.Fatal(err)
		}
		tl := train.EpochTimeline(w, nodes, 1281167, res.Time)
		out := tl.Run()
		fmt.Printf("  %-5s θ=%-5d comm/iter %7.2f ms, epoch %6.1f s, comm share %4.1f%%\n",
			c.name, c.prof.NumSteps(), res.Time*1e3, out.TotalSec, out.CommFraction*100)
	}
}
