package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"wrht/internal/api"
)

// TestPlanSubcommand drives the plan gate the way CI does: the -check
// run must exit zero and the -json dump must carry every grid point
// plus the rescue rows.
func TestPlanSubcommand(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "plan.json")
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	code := run(runConfig{
		cmd:         "plan",
		granularity: "fused",
		workers:     1,
		w:           8,
		payloadMB:   25,
		planR:       "8,16,32",
		planA:       "25",
		check:       true,
		jsonOut:     jsonPath,
	})
	os.Stdout = old
	null.Close()
	if code != 0 {
		t.Fatalf("plan -check exited %d", code)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out api.PlanResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Version != api.Version {
		t.Errorf("version = %q, want %q", out.Version, api.Version)
	}
	if len(out.Points) != 3+3 { // 3 optical + 3 electrical rows
		t.Errorf("dumped %d points, want 6", len(out.Points))
	}
	if len(out.Rescue) != 2 {
		t.Errorf("dumped %d rescue rows, want 2", len(out.Rescue))
	}
	for _, r := range out.Rescue {
		if r.Speedup <= 1 {
			t.Errorf("rescue N=%d speedup %.3f not above 1", r.N, r.Speedup)
		}
	}
}

// TestPlanSubcommandBadGrid rejects malformed -r/-a lists.
func TestPlanSubcommandBadGrid(t *testing.T) {
	for _, cfg := range []runConfig{
		{cmd: "plan", granularity: "fused", planR: "8,x", planA: "25"},
		{cmd: "plan", granularity: "fused", planR: "8", planA: ""},
	} {
		if code := run(cfg); code == 0 {
			t.Errorf("run(%+v) exited 0, want failure", cfg)
		}
	}
}
