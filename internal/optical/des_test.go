package optical

import (
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
)

func TestDESMatchesAnalytic(t *testing.T) {
	p := DefaultParams()
	var scheds []*core.Schedule
	for _, n := range []int{4, 15, 64, 100} {
		s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: 8})
		if err != nil {
			t.Fatal(err)
		}
		scheds = append(scheds, s, collective.BuildRing(n), collective.BuildBT(n))
	}
	for _, s := range scheds {
		for _, d := range []float64{0, 72, 1e6, 123456789} {
			if err := CheckAgainstAnalytic(p, s, d); err != nil {
				t.Errorf("%s N=%d d=%g: %v", s.Algorithm, s.Ring.N, d, err)
			}
		}
	}
}

func TestDESStragglerInjection(t *testing.T) {
	// Slowing one circuit in one step by 10 ms must extend the total by
	// exactly the amount it exceeds the step's critical path.
	p := DefaultParams()
	s, err := core.BuildWRHT(core.Config{N: 64, Wavelengths: 8})
	if err != nil {
		t.Fatal(err)
	}
	d := 8e6
	base, err := RunScheduleDES(p, s, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	const extra = 10e-3
	slow, err := RunScheduleDES(p, s, d, func(step, transfer int, nominal float64) float64 {
		if step == 0 && transfer == 0 {
			return nominal + extra
		}
		return nominal
	})
	if err != nil {
		t.Fatal(err)
	}
	got := slow.Time - base.Time
	if diff := got - extra; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("straggler extended total by %.9f, want %.9f", got, extra)
	}
}

func TestDESPerStepReports(t *testing.T) {
	p := DefaultParams()
	s, err := core.BuildWRHT(core.Config{N: 15, Wavelengths: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScheduleDES(p, s, 1e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerStep) != 3 {
		t.Fatalf("per-step reports = %d", len(res.PerStep))
	}
	var sum float64
	for _, r := range res.PerStep {
		if r.Duration <= 0 {
			t.Fatalf("non-positive step duration: %+v", r)
		}
		sum += r.Duration
	}
	if diff := sum - res.Time; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("step durations sum %.12f != total %.12f", sum, res.Time)
	}
}

func TestDESNegativeDelayClamped(t *testing.T) {
	p := DefaultParams()
	s := collective.BuildRing(4)
	if _, err := RunScheduleDES(p, s, 1e5, func(_, _ int, _ float64) float64 { return -5 }); err != nil {
		t.Fatal(err)
	}
}
