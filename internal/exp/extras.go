package exp

import (
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/metrics"
	"wrht/internal/optical"
	"wrht/internal/phys"
)

// Extras extends the paper's evaluation with the additional collectives
// implemented here (double binary tree from the related work [25],
// recursive halving/doubling on the optical ring) and an energy column,
// for one workload at the Table-1 configuration. It answers the obvious
// reviewer question "how does WRHT fare against NCCL's tree?" that the
// paper leaves open. Rows are timed on the sweep worker pool and
// emitted in a fixed order.
func Extras(o Options, model dnn.Model, n, w int) (*metrics.Table, error) {
	e := newEngine(o, "extras")
	t := &metrics.Table{
		Title: fmt.Sprintf("Beyond-paper comparison: %s (%.0f MB), N=%d, w=%d",
			model.Name, float64(model.GradBytes())/1e6, n, w),
		Headers: []string{"Algorithm", "Steps", "λ used", "fits w?", "Time (ms)", "Energy (J)"},
	}
	ep := optical.DefaultEnergyParams(phys.DefaultBudget())
	type entry struct {
		name string
		pr   core.Profile
	}
	wrhtPr, err := e.wrht(n, w, 0)
	if err != nil {
		return nil, fmt.Errorf("exp: extras: %w", err)
	}
	entries := []entry{
		{"Ring", e.ring(n)},
		{"H-Ring (m=5)", e.hring(n, 5, w)},
		{"BT", e.bt(n)},
		{"DBTree", collective.DBTreeProfile(n)},
	}
	// RD requires a power-of-two node count; skip the row otherwise,
	// like the paper skips infeasible cells.
	if rd, err := collective.RDProfile(n); err == nil {
		entries = append(entries, entry{"RD (halving/doubling)", rd})
	}
	entries = append(entries,
		entry{"WRHT", wrhtPr},
		entry{"WDM-HRing (m=32)", collective.WDMHRingProfile(n, 32, w)},
	)
	rows, err := sweep(e, len(entries), func(i int) ([]string, error) {
		en := entries[i]
		res, err := e.opticalBuckets(en.pr, e.opts.payloads(model))
		if err != nil {
			return nil, fmt.Errorf("extras %s: %w", en.name, err)
		}
		maxW := 0
		for _, g := range en.pr.Groups {
			if g.Wavelengths > maxW {
				maxW = g.Wavelengths
			}
		}
		eg := optical.EnergyOfProfile(e.opts.Optical, ep, en.pr, float64(model.GradBytes()))
		fits := "yes"
		if maxW > w {
			fits = "NO"
		}
		return []string{en.name, fmt.Sprint(en.pr.NumSteps()), fmt.Sprint(maxW), fits,
			fmt.Sprintf("%.2f", res.Time*1e3), fmt.Sprintf("%.3f", eg.Total())}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}
