// Package phys models the optical-communication constraints of §4.4:
// insertion loss (Eqs 7–10) and crosstalk/SNR/BER (Eqs 11–13). Its main
// output is the maximum feasible grouped-node count m' that WRHT may use
// under a given optical power budget, which clamps the Lemma-1 optimum
// m = 2w+1 in core.Config.MaxGroupSize.
//
// All powers and losses are in dB/dBm, matching how silicon-photonics
// budgets are specified (e.g. [14]); helper functions convert to linear
// scale where the SNR arithmetic needs it.
package phys

import (
	"fmt"
	"math"
)

// Budget collects the link-budget parameters of §4.4. Defaults follow
// the TeraPHY/comb-laser figures cited by the paper ([10], [5], [14]).
type Budget struct {
	// LaserPowerDBm is the per-wavelength laser source power P_laser.
	LaserPowerDBm float64
	// ModulatorLossDB is the Tx modulator loss P_m.
	ModulatorLossDB float64
	// PassLossDB is the loss P_pass a signal suffers passing one optical
	// interface (an MRR it is not dropped at).
	PassLossDB float64
	// ExtinctionPenaltyDB is the power penalty P_p caused by the finite
	// extinction ratio.
	ExtinctionPenaltyDB float64

	// RxCrosstalkDBc is the per-interface worst-case crosstalk power on
	// the receive side relative to the signal (P_Rx, negative dBc).
	RxCrosstalkDBc float64
	// TxCrosstalkDBc is the worst-case crosstalk power contributed on
	// the transmit side relative to the signal (P_Tx, negative dBc).
	TxCrosstalkDBc float64
	// OtherNoiseDBm is the aggregate power P_O of other noise sources at
	// the photodetector.
	OtherNoiseDBm float64
}

// DefaultBudget returns a representative TeraRack-class link budget:
// 10 dBm comb-laser line power, 1.5 dB modulator loss, 0.02 dB per-MRR
// pass-through loss, 3 dB extinction-ratio penalty, −40 dBc per-hop
// receive crosstalk, −35 dBc transmit crosstalk, −50 dBm other noise.
func DefaultBudget() Budget {
	return Budget{
		LaserPowerDBm:       10,
		ModulatorLossDB:     1.5,
		PassLossDB:          0.02,
		ExtinctionPenaltyDB: 3,
		RxCrosstalkDBc:      -40,
		TxCrosstalkDBc:      -35,
		OtherNoiseDBm:       -50,
	}
}

// MaxCommLength evaluates Eq (7): the maximum communication length (in
// traversed interfaces) of a WRHT run on n nodes with first-step group
// size m. With a single level (log_m n = 1) the longest circuit spans
// ⌊m/2⌋ interfaces; with L ≥ 2 levels the top-level gather spans
// m·m^(L−2) interfaces.
func MaxCommLength(n, m int) int {
	if n <= 1 || m < 2 {
		return 0
	}
	l := ceilLog(m, n)
	if l <= 1 {
		return m / 2
	}
	return m * pow(m, l-2)
}

// TotalLossDB evaluates Eq (8): L_l = P_m + L_max · P_pass.
func (b Budget) TotalLossDB(lmax int) float64 {
	return b.ModulatorLossDB + float64(lmax)*b.PassLossDB
}

// InsertionLossOK evaluates Eq (9): P_laser ≥ L_l + P_p.
func (b Budget) InsertionLossOK(lmax int) bool {
	return b.LaserPowerDBm >= b.TotalLossDB(lmax)+b.ExtinctionPenaltyDB
}

// SignalPowerDBm returns the signal power arriving at the photodetector
// after the modulator and lmax pass-through interfaces.
func (b Budget) SignalPowerDBm(lmax int) float64 {
	return b.LaserPowerDBm - b.TotalLossDB(lmax)
}

// WorstCrosstalkDBm evaluates Eq (12): P_Nw = L_max·P_Rx + P_Tx, with
// the per-interface receive crosstalk accumulated in linear scale
// relative to the arriving signal power.
func (b Budget) WorstCrosstalkDBm(lmax int) float64 {
	sig := b.SignalPowerDBm(lmax)
	rx := float64(lmax) * dbmToMw(sig+b.RxCrosstalkDBc)
	tx := dbmToMw(sig + b.TxCrosstalkDBc)
	return mwToDbm(rx + tx)
}

// SNRdB evaluates Eq (11): 10·log10(P_S / (P_N + P_O)).
func (b Budget) SNRdB(lmax int) float64 {
	ps := dbmToMw(b.SignalPowerDBm(lmax))
	pn := dbmToMw(b.WorstCrosstalkDBm(lmax))
	po := dbmToMw(b.OtherNoiseDBm)
	return 10 * math.Log10(ps/(pn+po))
}

// BER evaluates Eq (13): BER = ½·e^(−SNR/4) with SNR in linear scale.
func BER(snrDB float64) float64 {
	snr := math.Pow(10, snrDB/10)
	return 0.5 * math.Exp(-snr/4)
}

// MaxBER is the reliability threshold of §4.4.2 ([26]).
const MaxBER = 1e-9

// CrosstalkOK reports whether the worst-case BER at communication length
// lmax satisfies the 10⁻⁹ reliability threshold.
func (b Budget) CrosstalkOK(lmax int) bool {
	return BER(b.SNRdB(lmax)) <= MaxBER
}

// FeasibleLength reports whether both §4.4 constraints hold at lmax.
func (b Budget) FeasibleLength(lmax int) bool {
	return b.InsertionLossOK(lmax) && b.CrosstalkOK(lmax)
}

// MaxGroupSize computes m′, the largest grouped-node count m ∈ [2, cap]
// whose worst-case communication length on an n-node ring satisfies both
// the insertion-loss and crosstalk constraints (Eq 10: m ≤ m′). It
// returns 0 if no group size is feasible.
//
// Feasibility is not monotone in m in general (a larger m can reduce the
// level count L and thereby shorten the longest circuit), so the search
// scans all candidates rather than bisecting.
func (b Budget) MaxGroupSize(n, cap int) int {
	if cap < 2 {
		return 0
	}
	best := 0
	for m := 2; m <= cap; m++ {
		if b.FeasibleLength(MaxCommLength(n, m)) {
			best = m
		}
	}
	return best
}

func dbmToMw(dbm float64) float64 { return math.Pow(10, dbm/10) }

func mwToDbm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

func ceilLog(base, n int) int {
	if base < 2 || n < 1 {
		panic(fmt.Sprintf("phys: ceilLog(%d, %d) invalid", base, n))
	}
	l, p := 0, 1
	for p < n {
		p *= base
		l++
	}
	return l
}

func pow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= b
	}
	return p
}
