package exp

import (
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/electrical"
	"wrht/internal/fabric"
	"wrht/internal/metrics"
	"wrht/internal/obs"
	"wrht/internal/rwa"
)

// CrossFabricResult bundles the comparison table with the raw engine
// results so callers (cmd/wrhtsim -json) can export per-step breakdowns
// via fabric.BreakdownRun.
type CrossFabricResult struct {
	Table *metrics.Table
	// Runs holds one engine result per (algorithm, mode) cell, keyed
	// "<algorithm>/<optical|optical+overlap|electrical>".
	Runs map[string]fabric.Result
}

// CrossFabric runs the §5 collectives' explicit schedules through one
// fabric.Engine on both backends — the TeraRack WDM ring (with and
// without reconfiguration–communication overlap) and the electrical
// fat-tree — for a single dBytes payload at (n, w). It is the
// cross-fabric experiment the four pre-engine Run* entry points could
// not express: same schedule, same engine, different physics.
// When o.Trace is set, every run additionally emits its full
// simulated-time step timeline — one Perfetto process per
// "<mode>/<algorithm>" cell — and the sweep runs sequentially so the
// emitted trace is byte-stable (each run's spans start at simulated
// time zero; the processes sit side by side in the viewer).
func CrossFabric(o Options, n, w int, dBytes float64) (*CrossFabricResult, error) {
	if o.Trace != nil {
		o.Workers = 1
	}
	e := newEngine(o, "crossfabric")
	if e.optFabErr != nil {
		return nil, fmt.Errorf("exp: cross-fabric: %w", e.optFabErr)
	}
	nw, err := electrical.NewNetwork(n, o.Electrical)
	if err != nil {
		return nil, fmt.Errorf("exp: cross-fabric network (N=%d): %w", n, err)
	}
	elFab := nw.Fabric()

	type entry struct {
		name string
		s    *core.Schedule
	}
	wrhtS, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w})
	if err != nil {
		return nil, fmt.Errorf("exp: cross-fabric WRHT (N=%d, w=%d): %w", n, w, err)
	}
	entries := []entry{
		{"WRHT", wrhtS},
		{"Ring", collective.BuildRing(n)},
		{"BT", collective.BuildBT(n)},
	}
	// RD needs a power-of-two node count; skip the row otherwise, like
	// the paper skips infeasible cells.
	if rd, err := collective.BuildRD(n); err == nil {
		entries = append(entries, entry{"RD", rd})
	}

	type mode struct {
		name string
		eng  fabric.Engine
	}
	modes := []mode{
		{"optical", fabric.Engine{Fabric: e.optFab}},
		{"optical+overlap", fabric.Engine{Fabric: e.optFab, Opts: fabric.Options{Overlap: true}}},
		{"electrical", fabric.Engine{Fabric: elFab}},
	}

	var rwaStats *rwa.Stats
	if o.Metrics != nil {
		// The latency sink feeds the rwa probe histogram; Histogram.Observe
		// is lock-free, so one shared Stats still serves all workers.
		rwaStats = &rwa.Stats{Latency: e.prof.Hist("rwa.probe.seconds")}
	}
	// Per-mode wall-time histograms for the engine runs; handles are
	// cached outside the sweep so the per-cell path takes no registry
	// lock.
	runHists := make([]*obs.Histogram, len(modes))
	for i, mo := range modes {
		runHists[i] = e.prof.Hist("fabric.run.seconds", "fabric", mo.name)
	}

	// One sweep point per (algorithm, mode); the electrical fluid solves
	// dominate, so fanning out pays off.
	results, err := sweep(e, len(entries)*len(modes), func(i int) (fabric.Result, error) {
		en, mo := entries[i/len(modes)], modes[i%len(modes)]
		eng := mo.eng
		if o.Trace != nil || o.Metrics != nil {
			eng.Opts.Observer = obs.NewFabricObserver(o.Trace, o.Metrics, mo.name+"/"+en.name)
			eng.Opts.RWAStats = rwaStats
		}
		start := e.prof.Start()
		res, err := eng.RunSchedule(en.s, dBytes)
		e.prof.End(runHists[i%len(modes)], start)
		if err != nil {
			return fabric.Result{}, fmt.Errorf("cross-fabric %s on %s: %w", en.name, mo.name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	if o.Metrics != nil {
		rwaStats.Publish(func(name string, v int64) { o.Metrics.Counter(name).Add(v) })
	}

	out := &CrossFabricResult{
		Table: &metrics.Table{
			Title: fmt.Sprintf("Cross-fabric: one engine, two backends (N=%d, w=%d, d=%.0f MB)",
				n, w, dBytes/1e6),
			Headers: []string{"Algorithm", "Steps",
				"Optical (ms)", "+overlap (ms)", "saved (µs)", "Electrical (ms)", "E/O ratio"},
		},
		Runs: map[string]fabric.Result{},
	}
	for ei, en := range entries {
		opt := results[ei*len(modes)]
		ovl := results[ei*len(modes)+1]
		ele := results[ei*len(modes)+2]
		out.Runs[en.name+"/optical"] = opt
		out.Runs[en.name+"/optical+overlap"] = ovl
		out.Runs[en.name+"/electrical"] = ele
		out.Table.AddRow(en.name, fmt.Sprint(opt.Steps),
			fmt.Sprintf("%.3f", opt.Time*1e3),
			fmt.Sprintf("%.3f", ovl.Time*1e3),
			fmt.Sprintf("%.1f", ovl.OverlapSaved*1e6),
			fmt.Sprintf("%.3f", ele.Time*1e3),
			fmt.Sprintf("%.2f", ele.Time/opt.Time))
	}
	return out, nil
}
