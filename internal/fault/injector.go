package fault

import (
	"fmt"
	"sort"

	"wrht/internal/topo"
)

// Kind labels one fault class.
type Kind uint8

const (
	// NodeDown fails Node completely.
	NodeDown Kind = iota
	// TransceiverDown fails Node's Tx/Rx array on the Dir fiber.
	TransceiverDown
	// WavelengthDead kills Wavelength ring-wide.
	WavelengthDead
	// SegmentCut darkens directed fiber Segment on the Dir waveguide.
	SegmentCut
	// MRRDegraded adds ExtraLossDB of insertion loss at Node.
	MRRDegraded
)

func (k Kind) String() string {
	switch k {
	case NodeDown:
		return "node-down"
	case TransceiverDown:
		return "transceiver-down"
	case WavelengthDead:
		return "wavelength-dead"
	case SegmentCut:
		return "segment-cut"
	case MRRDegraded:
		return "mrr-degraded"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Fault is one injectable fault event payload. Only the fields relevant
// to Kind are read.
type Fault struct {
	Kind        Kind
	Node        int
	Dir         topo.Direction
	Wavelength  int
	Segment     int
	ExtraLossDB float64
}

func (f Fault) String() string {
	switch f.Kind {
	case NodeDown:
		return fmt.Sprintf("node %d down", f.Node)
	case TransceiverDown:
		return fmt.Sprintf("node %d %s transceiver down", f.Node, f.Dir)
	case WavelengthDead:
		return fmt.Sprintf("wavelength %d dead", f.Wavelength)
	case SegmentCut:
		return fmt.Sprintf("%s segment %d cut", f.Dir, f.Segment)
	case MRRDegraded:
		return fmt.Sprintf("node %d MRR +%.2f dB", f.Node, f.ExtraLossDB)
	default:
		return f.Kind.String()
	}
}

// Apply folds one fault event into the mask.
func (m *Mask) Apply(f Fault) {
	switch f.Kind {
	case NodeDown:
		m.FailNode(f.Node)
	case TransceiverDown:
		m.FailTransceiver(f.Node, f.Dir)
	case WavelengthDead:
		m.KillWavelength(f.Wavelength)
	case SegmentCut:
		m.CutSegment(f.Dir, f.Segment)
	case MRRDegraded:
		db := f.ExtraLossDB
		if db == 0 {
			db = DefaultMRRLossDB
		}
		m.DegradeMRR(f.Node, db)
	default:
		panic(fmt.Sprintf("fault: unknown kind %v", f.Kind))
	}
}

// Event schedules a fault to strike before the Step-th executed
// communication step of a fault-aware engine run (step counting is
// global across reschedule restarts, so the injection clock keeps
// advancing when the schedule is rebuilt).
type Event struct {
	Step  int
	Fault Fault
}

// Injector is an immutable, step-ordered fault event sequence. One
// Injector may drive many runs: the engine keeps its own cursor.
type Injector struct {
	events []Event
}

// NewInjector returns an injector firing the given events, stably
// sorted by step.
func NewInjector(events ...Event) *Injector {
	in := &Injector{events: append([]Event(nil), events...)}
	sort.SliceStable(in.events, func(i, j int) bool { return in.events[i].Step < in.events[j].Step })
	return in
}

// Len returns the event count.
func (in *Injector) Len() int {
	if in == nil {
		return 0
	}
	return len(in.events)
}

// At returns the i-th event in step order.
func (in *Injector) At(i int) Event { return in.events[i] }
