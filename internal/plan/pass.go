package plan

import (
	"fmt"
	"reflect"

	"wrht/internal/core"
	"wrht/internal/ir"
)

// Pass is the IR entry point of the planner: it locates the schedule's
// all-to-all phase span (every plan round carries core.PhaseAllToAll,
// so a Config.PlanAllToAll schedule exposes its whole multi-round plan
// here, and a feasible-regime schedule exposes its single exchange
// step), re-plans the span for the pass's payload and fabric, and
// splices the argmin schedule in through Program.ReplaceSteps. Unlike
// the built-in circuit-metadata passes it may change the step count;
// the pipeline re-validates after it, and ReplaceSteps itself reverts
// on a validation failure.
type Pass struct {
	// Planner prices and picks the replacement. Its Budget must equal
	// the program's (the splice is validated against the program's).
	Planner *Planner
	// DBytes is the per-node payload the span is re-planned for.
	DBytes float64
}

// Name implements ir.Pass.
func (ps *Pass) Name() string { return "plan-a2a" }

// Apply implements ir.Pass.
func (ps *Pass) Apply(p *ir.Program) (bool, error) {
	if ps.Planner == nil {
		return false, fmt.Errorf("plan: pass has no planner")
	}
	if ps.Planner.Budget != p.Budget {
		return false, fmt.Errorf("plan: planner budget %d != program budget %d", ps.Planner.Budget, p.Budget)
	}
	lo, hi, err := phaseSpan(p)
	if err != nil {
		return false, err
	}
	if lo == hi {
		return false, nil
	}
	span := make([]core.Step, hi-lo)
	for i := range span {
		span[i] = core.Step{Phase: p.Steps[lo+i].Phase, Transfers: p.Steps[lo+i].Transfers}
	}
	reps := sortedNodes(span)
	if len(reps) < 2 {
		return false, nil
	}
	d, err := ps.Planner.Plan(p.Ring, reps, ps.DBytes)
	if err != nil {
		return false, err
	}
	if sameSteps(span, d.Schedule) {
		return false, nil
	}
	if err := p.ReplaceSteps(lo, hi, d.Schedule); err != nil {
		return false, err
	}
	return true, nil
}

// phaseSpan returns the [lo, hi) index range of the program's
// PhaseAllToAll steps (lo == hi when there are none). A non-contiguous
// phase is not a schedule this pass understands and is an error.
func phaseSpan(p *ir.Program) (lo, hi int, err error) {
	lo, hi = -1, -1
	for i := range p.Steps {
		if p.Steps[i].Phase != core.PhaseAllToAll {
			continue
		}
		if lo < 0 {
			lo = i
		} else if i != hi {
			return 0, 0, fmt.Errorf("plan: all-to-all phase is not contiguous (steps %d and %d)", hi-1, i)
		}
		hi = i + 1
	}
	if lo < 0 {
		return 0, 0, nil
	}
	return lo, hi, nil
}

// sameSteps reports whether the replacement is bit-identical to the
// span it would replace (phase and transfer sequences), in which case
// the pass leaves the program untouched.
func sameSteps(a, b []core.Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Phase != b[i].Phase || len(a[i].Transfers) != len(b[i].Transfers) {
			return false
		}
		if len(a[i].Transfers) > 0 && !reflect.DeepEqual(a[i].Transfers, b[i].Transfers) {
			return false
		}
	}
	return true
}
