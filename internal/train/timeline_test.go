package train

import (
	"bytes"
	"math"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/fabric"
	"wrht/internal/obs"
	"wrht/internal/optical"
	"wrht/internal/workload"
)

func TestTimelineBasicAccounting(t *testing.T) {
	tl := Timeline{Workers: 4, Iterations: 10, ComputeSec: 0.08, CommSec: 0.02}
	res := tl.Run()
	if math.Abs(res.TotalSec-10*(0.08+0.02)) > 1e-9 {
		t.Fatalf("total = %g, want 1.0", res.TotalSec)
	}
	if math.Abs(res.CommFraction-0.2) > 1e-9 {
		t.Fatalf("comm fraction = %g, want 0.2", res.CommFraction)
	}
	if math.Abs(res.ComputeSec-0.8) > 1e-9 || math.Abs(res.CommSec-0.2) > 1e-9 {
		t.Fatalf("split wrong: %+v", res)
	}
}

func TestTimelineStragglerSkew(t *testing.T) {
	// With 10% skew the barrier waits for the slowest worker: per
	// iteration compute becomes ComputeSec × 1.1.
	tl := Timeline{Workers: 8, Iterations: 5, ComputeSec: 0.1, CommSec: 0.01, Skew: 0.1}
	res := tl.Run()
	want := 5 * (0.1*1.1 + 0.01)
	if math.Abs(res.TotalSec-want) > 1e-9 {
		t.Fatalf("total = %g, want %g", res.TotalSec, want)
	}
}

func TestTimelineZeroIterations(t *testing.T) {
	res := Timeline{Workers: 2, Iterations: 0, ComputeSec: 1, CommSec: 1}.Run()
	if res.TotalSec != 0 || res.CommFraction != 0 {
		t.Fatalf("empty timeline: %+v", res)
	}
}

func TestTimelinePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 workers")
		}
	}()
	Timeline{Workers: 0, Iterations: 1}.Run()
}

func TestEpochTimelineCommShareGrowsWithStepHeavyAlgorithms(t *testing.T) {
	// The paper's [35] motivation: at 1024 nodes, Ring's 2046 steps make
	// communication dominate; WRHT reduces the share.
	const n = 1024
	w := workload.New(dnn.ResNet50(), workload.TitanXP(), 16)
	p := optical.DefaultParams()
	commFor := func(pr core.Profile) float64 {
		f, err := p.Fabric()
		if err != nil {
			t.Fatal(err)
		}
		res, err := fabric.Engine{Fabric: f}.RunProfile(pr, w.GradBytes)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	wrhtProf, err := collective.WRHTProfile(core.Config{N: n, Wavelengths: 64})
	if err != nil {
		t.Fatal(err)
	}
	wrhtRes := EpochTimeline(w, n, 1281167, commFor(wrhtProf)).Run()
	ringRes := EpochTimeline(w, n, 1281167, commFor(collective.RingProfile(n))).Run()
	btRes := EpochTimeline(w, n, 1281167, commFor(collective.BTProfile(n))).Run()
	if !(wrhtRes.CommFraction < ringRes.CommFraction && ringRes.CommFraction < btRes.CommFraction) {
		t.Fatalf("comm shares out of order: wrht %.2f ring %.2f bt %.2f",
			wrhtRes.CommFraction, ringRes.CommFraction, btRes.CommFraction)
	}
	if ringRes.CommFraction < 0.3 || ringRes.CommFraction > 0.95 {
		t.Fatalf("Ring comm share %.2f outside the paper's 50-90%% ballpark", ringRes.CommFraction)
	}
}

func TestCommTimeForProfile(t *testing.T) {
	pr, err := collective.WRHTProfile(core.Config{N: 64, Wavelengths: 8})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := CommTimeForProfile(optical.DefaultParams(), pr, dnn.ResNet50())
	if err != nil || tm <= 0 {
		t.Fatalf("comm time: %v %g", err, tm)
	}
}

func TestTimelineTraceSpans(t *testing.T) {
	render := func() (*obs.Tracer, TimelineResult) {
		tr := obs.NewTracer()
		tl := Timeline{
			Workers: 16, Iterations: 3, ComputeSec: 0.08, CommSec: 0.02,
			Trace: tr, TraceProcess: "test N=16", TraceWorkers: 4,
		}
		return tr, tl.Run()
	}
	tr, res := render()
	plain := Timeline{Workers: 16, Iterations: 3, ComputeSec: 0.08, CommSec: 0.02}.Run()
	if res != plain {
		t.Fatalf("tracing changed the result: %+v vs %+v", res, plain)
	}
	// 4 traced workers × 3 iterations compute spans + 3 all-reduce spans.
	if got, want := tr.Events(), 4*3+3; got != want {
		t.Fatalf("trace has %d events, want %d", got, want)
	}
	var a, b bytes.Buffer
	if _, err := tr.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	tr2, _ := render()
	if _, err := tr2.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("timeline trace is not byte-stable across runs")
	}
}
