package collective

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// Streaming producers for the baseline collectives. Every Build* in
// this package is core.Collect over the matching Stream*, so the
// materialized schedules are bit-identical to the streamed ones by
// construction; the streams exist because at large N the baselines are
// the memory hogs — Ring is 2(N−1) steps of N transfers, O(N²)
// materialized, while its stream holds exactly one step. All step
// counts here are closed-form, so the producers run off
// core.NewIndexedSource with an emit function per algorithm.

// StreamRing returns a streaming producer of the Ring all-reduce
// schedule (see BuildRing).
func StreamRing(n int) core.StepSource {
	steps := 0
	if n > 1 {
		steps = 2 * (n - 1)
	}
	return core.NewIndexedSource("ring", topo.NewRing(n), steps, func(k int, st *core.Step) {
		// Reduce-scatter step t forwards chunk (i−t mod n); the
		// all-gather step t forwards the reduced chunk (i+1−t mod n).
		t, op, phase := k, tensor.OpSum, core.PhaseReduce
		off := 0
		if k >= n-1 {
			t, op, phase = k-(n-1), tensor.OpCopy, core.PhaseBroadcast
			off = 1
		}
		st.Phase = phase
		for i := 0; i < n; i++ {
			c := ((i+off-t)%n + n) % n
			st.Transfers = append(st.Transfers, core.Transfer{
				Src: i, Dst: (i + 1) % n,
				Chunk: tensor.Chunk{Index: c, Of: n},
				Op:    op,
				Dir:   topo.CW, Wavelength: 0,
			})
		}
	})
}

// btStepInto emits binary-tree level i (1-based): in runs of 2^i, the
// node at offset 2^(i−1) exchanges with the run's first node.
func btStepInto(st *core.Step, n, i int, op tensor.ReduceOp) {
	phase := core.PhaseReduce
	if op == tensor.OpCopy {
		phase = core.PhaseBroadcast
	}
	st.Phase = phase
	span := 1 << i
	half := span >> 1
	for lo := 0; lo < n; lo += span {
		src := lo + half
		if src >= n {
			continue
		}
		tr := core.Transfer{
			Src: src, Dst: lo,
			Chunk: tensor.Whole, Op: op,
			Dir: topo.CCW, Wavelength: 0,
		}
		if op == tensor.OpCopy {
			tr.Src, tr.Dst = lo, src
			tr.Dir = topo.CW
		}
		st.Transfers = append(st.Transfers, tr)
	}
}

// StreamBT returns a streaming producer of the binary-tree all-reduce
// schedule (see BuildBT).
func StreamBT(n int) core.StepSource {
	steps, levels := 0, 0
	if n > 1 {
		levels = core.CeilLog(2, n)
		steps = 2 * levels
	}
	return core.NewIndexedSource("bt", topo.NewRing(n), steps, func(k int, st *core.Step) {
		if k < levels {
			btStepInto(st, n, k+1, tensor.OpSum)
		} else {
			btStepInto(st, n, 2*levels-k, tensor.OpCopy)
		}
	})
}

// StreamRD returns a streaming producer of the recursive
// halving/doubling schedule (see BuildRD). N must be a power of two.
func StreamRD(n int) (core.StepSource, error) {
	ring := topo.NewRing(n)
	if n <= 1 {
		return core.NewIndexedSource("rd", ring, 0, nil), nil
	}
	if n&(n-1) != 0 {
		return nil, errNotPow2(n)
	}
	k := 0
	for 1<<k < n {
		k++
	}
	return core.NewIndexedSource("rd", ring, 2*k, func(idx int, st *core.Step) {
		t, op := idx, tensor.OpSum
		if idx >= k {
			t, op = 2*k-1-idx, tensor.OpCopy
		}
		rdStepInto(st, ring, n, k, t, op)
	}), nil
}

// rdStepInto emits halving/doubling step t: node i pairs with
// p = i XOR 2^(k-1-t), shipping the nested half-block its partner's
// side owns (halving) or the sender's own completed side (doubling).
func rdStepInto(st *core.Step, ring topo.Ring, n, k, t int, op tensor.ReduceOp) {
	phase := core.PhaseReduce
	if op == tensor.OpCopy {
		phase = core.PhaseBroadcast
	}
	st.Phase = phase
	bit := k - 1 - t
	for i := 0; i < n; i++ {
		p := i ^ (1 << bit)
		var c tensor.Chunk
		if op == tensor.OpSum {
			c = nestedBlock(p>>bit, k-bit)
		} else {
			c = nestedBlock(i>>bit, k-bit)
		}
		dir, dist := ring.ShortestDir(i, p)
		st.Transfers = append(st.Transfers, core.Transfer{
			Src: i, Dst: p,
			Chunk: c, Op: op,
			Dir: dir, Wavelength: wavelengthForPair(i, dist),
		})
	}
}

// StreamHRing returns a streaming producer of the hierarchical-ring
// schedule (see BuildHRing). Step layout: m−1 intra reduce steps,
// (G−1)·⌈m/w⌉ inter reduce, the same again broadcast, m−1 intra
// broadcast.
func StreamHRing(n, m, w int) (core.StepSource, error) {
	ring := topo.NewRing(n)
	if n <= 1 {
		return core.NewIndexedSource("hring", ring, 0, nil), nil
	}
	if m < 2 || m > n {
		return nil, fmt.Errorf("collective: hring group size m=%d out of range [2,%d]", m, n)
	}
	if n%m != 0 {
		return nil, fmt.Errorf("collective: hring requires m | n, got n=%d m=%d", n, m)
	}
	if w < 1 {
		return nil, fmt.Errorf("collective: hring wavelengths w=%d < 1", w)
	}
	g := n / m
	batches := (m + w - 1) / w
	inter := (g - 1) * batches
	steps := 2*(m-1) + 2*inter
	return core.NewIndexedSource("hring", ring, steps, func(k int, st *core.Step) {
		switch {
		case k < m-1:
			t := k
			hringIntraInto(st, n, m, func(i int) int { return ((i-t)%m + m) % m }, tensor.OpSum, core.PhaseReduce)
		case k < m-1+inter:
			t, b := (k-(m-1))/batches, (k-(m-1))%batches
			hringInterInto(st, n, m, w, b, func(grp int) int { return ((grp-t)%g + g) % g },
				func(j int) int { return (j + 1) % m }, tensor.OpSum, core.PhaseReduce)
		case k < m-1+2*inter:
			t, b := (k-(m-1)-inter)/batches, (k-(m-1)-inter)%batches
			hringInterInto(st, n, m, w, b, func(grp int) int { return ((grp+1-t)%g + g) % g },
				func(j int) int { return (j + 1) % m }, tensor.OpCopy, core.PhaseBroadcast)
		default:
			t := k - (m - 1) - 2*inter
			hringIntraInto(st, n, m, func(i int) int { return ((i+1-t)%m + m) % m }, tensor.OpCopy, core.PhaseBroadcast)
		}
	}), nil
}

// hringIntraInto emits one intra-group ring pass (see BuildHRing:
// member i sends band bandOf(i) to member i+1 within its group).
func hringIntraInto(st *core.Step, n, m int, bandOf func(i int) int, op tensor.ReduceOp, phase core.Phase) {
	st.Phase = phase
	g := n / m
	for grp := 0; grp < g; grp++ {
		for i := 0; i < m; i++ {
			b := bandOf(i)
			tr := core.Transfer{
				Src:   grp*m + i,
				Dst:   grp*m + (i+1)%m,
				Chunk: tensor.Chunk{Index: b, Of: m},
				Op:    op,
			}
			if i == m-1 {
				tr.Dir = topo.CCW
			} else {
				tr.Dir = topo.CW
			}
			tr.Wavelength = 0
			st.Transfers = append(st.Transfers, tr)
		}
	}
}

// hringInterInto emits one inter-group ring sub-step for wavelength
// batch `batch`: slot j of every group forwards band bandOf(j),
// sub-chunk subOf(grp), to the next group's slot j.
func hringInterInto(st *core.Step, n, m, w, batch int, subOf func(grp int) int, bandOf func(j int) int, op tensor.ReduceOp, phase core.Phase) {
	st.Phase = phase
	g := n / m
	for j := batch * w; j < min((batch+1)*w, m); j++ {
		band := bandOf(j)
		for grp := 0; grp < g; grp++ {
			st.Transfers = append(st.Transfers, core.Transfer{
				Src:   grp*m + j,
				Dst:   ((grp+1)%g)*m + j,
				Chunk: tensor.Chunk{Index: band, Of: m, Sub: &tensor.Chunk{Index: subOf(grp), Of: g}},
				Op:    op,
				Dir:   topo.CW, Wavelength: j - batch*w,
			})
		}
	}
}

// StreamWDMHRing returns a streaming producer of the WDM-enhanced
// hierarchical-ring schedule (see BuildWDMHRing). The in-group
// all-to-all sub-steps are structurally identical across groups modulo
// a +grp·m node offset, so the stream retains one compact interned
// template per sub-step (built from group 0) and expands it across
// groups per emission instead of materializing the merged steps.
func StreamWDMHRing(n, m, w int) (core.StepSource, error) {
	ring := topo.NewRing(n)
	if n <= 1 {
		return core.NewIndexedSource("wdm-hring", ring, 0, nil), nil
	}
	if m < 2 || m > n || n%m != 0 {
		return nil, fmt.Errorf("collective: wdm-hring needs 2 <= m <= n with m | n, got n=%d m=%d", n, m)
	}
	if w < 1 {
		return nil, fmt.Errorf("collective: wdm-hring wavelengths %d < 1", w)
	}
	g := n / m
	members := make([]int, m)
	for i := range members {
		members[i] = i
	}
	compact := func(steps []core.Step) []core.CompactStep {
		out := make([]core.CompactStep, len(steps))
		for i, st := range steps {
			out[i] = core.CompactOf(st)
		}
		return out
	}
	scatter := compact(lineA2AGroupSteps(members, w, func(_, dst int) tensor.Chunk {
		return tensor.Chunk{Index: dst, Of: m}
	}, tensor.OpSum, core.PhaseReduce))
	gather := compact(lineA2AGroupSteps(members, w, func(src, _ int) tensor.Chunk {
		return tensor.Chunk{Index: src, Of: m}
	}, tensor.OpCopy, core.PhaseBroadcast))

	batches := (m + w - 1) / w
	inter := (g - 1) * batches
	steps := len(scatter) + 2*inter + len(gather)
	// expandGroups reuses one offset-closure across every expansion.
	off := 0
	mapID := func(id int) int { return id + off }
	expandGroups := func(st *core.Step, tmpl core.CompactStep) {
		st.Phase = tmpl.Phase
		for grp := 0; grp < g; grp++ {
			off = grp * m
			tmpl.AppendTo(st, mapID)
		}
	}
	return core.NewIndexedSource("wdm-hring", ring, steps, func(k int, st *core.Step) {
		switch {
		case k < len(scatter):
			expandGroups(st, scatter[k])
		case k < len(scatter)+inter:
			t, b := (k-len(scatter))/batches, (k-len(scatter))%batches
			hringInterInto(st, n, m, w, b, func(grp int) int { return ((grp-t)%g + g) % g },
				func(j int) int { return j }, tensor.OpSum, core.PhaseReduce)
		case k < len(scatter)+2*inter:
			t, b := (k-len(scatter)-inter)/batches, (k-len(scatter)-inter)%batches
			hringInterInto(st, n, m, w, b, func(grp int) int { return ((grp+1-t)%g + g) % g },
				func(j int) int { return j }, tensor.OpCopy, core.PhaseBroadcast)
		default:
			expandGroups(st, gather[k-len(scatter)-2*inter])
		}
	}), nil
}
