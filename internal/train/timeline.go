package train

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/des"
	"wrht/internal/dnn"
	"wrht/internal/fabric"
	"wrht/internal/obs"
	"wrht/internal/optical"
	"wrht/internal/workload"
)

// Timeline simulates the wall-clock structure of synchronous
// data-parallel training: per iteration every worker computes for
// ComputeSecPerIter (the paper's profiled GPU time), then the cluster
// performs one all-reduce whose duration comes from the optical (or any
// Eq-6-style) model. The simulation runs on the DES kernel so worker
// compute phases genuinely interleave and the communication step is the
// synchronisation barrier — the structure behind the paper's claim that
// all-reduce takes 50–90% of iteration time at scale [35].
type Timeline struct {
	Workers    int
	Iterations int
	// ComputeSec is the per-iteration compute time per worker.
	ComputeSec float64
	// CommSec is the per-iteration all-reduce time.
	CommSec float64
	// Skew adds worker-index-proportional compute jitter (stragglers):
	// worker i computes ComputeSec·(1 + Skew·i/(Workers−1)).
	Skew float64
	// Trace, when non-nil, receives the simulated compute/all-reduce
	// timeline: one "worker <i>" track per traced worker plus an
	// "all-reduce" track, grouped under the TraceProcess process. The
	// simulation runs on one goroutine, so emission order — and the
	// trace file — is deterministic.
	Trace *obs.Tracer
	// TraceProcess names the Perfetto process ("<model> N=64"); it lets
	// several workloads coexist in one trace file.
	TraceProcess string
	// TraceWorkers caps how many per-worker compute tracks are emitted
	// (0 means the default of 8; the barrier structure is visible from a
	// few workers, and thousand-track traces drown the viewer).
	TraceWorkers int
}

// Result summarises a timeline simulation.
type TimelineResult struct {
	TotalSec     float64
	ComputeSec   float64 // critical-path compute time
	CommSec      float64
	CommFraction float64 // share of total spent in all-reduce
}

// Run simulates the timeline and returns the totals.
func (tl Timeline) Run() TimelineResult {
	if tl.Workers < 1 || tl.Iterations < 0 {
		panic(fmt.Sprintf("train: timeline workers=%d iterations=%d invalid", tl.Workers, tl.Iterations))
	}
	var k des.Kernel
	var res TimelineResult
	tracedWorkers := tl.TraceWorkers
	if tracedWorkers <= 0 {
		tracedWorkers = 8
	}
	slowest := tl.ComputeSec
	if tl.Workers > 1 {
		slowest = tl.ComputeSec * (1 + tl.Skew)
	}
	var iterate func(it int)
	iterate = func(it int) {
		if it >= tl.Iterations {
			return
		}
		// All workers compute concurrently; the barrier fires when the
		// slowest finishes.
		done := 0
		for wkr := 0; wkr < tl.Workers; wkr++ {
			c := tl.ComputeSec
			if tl.Workers > 1 {
				c *= 1 + tl.Skew*float64(wkr)/float64(tl.Workers-1)
			}
			if tl.Trace != nil && wkr < tracedWorkers {
				tl.Trace.Span(obs.Track{Process: tl.TraceProcess, Name: fmt.Sprintf("worker %d", wkr)},
					"compute", k.Now(), c, obs.Args{"iteration": it})
			}
			k.AfterNamed(c, "compute", func() {
				done++
				if done == tl.Workers {
					res.ComputeSec += slowest
					// Synchronous all-reduce.
					if tl.Trace != nil {
						tl.Trace.Span(obs.Track{Process: tl.TraceProcess, Name: "all-reduce"},
							"all-reduce", k.Now(), tl.CommSec, obs.Args{"iteration": it})
					}
					k.AfterNamed(tl.CommSec, "all-reduce", func() {
						res.CommSec += tl.CommSec
						iterate(it + 1)
					})
				}
			})
		}
	}
	iterate(0)
	res.TotalSec = k.Run()
	if res.TotalSec > 0 {
		res.CommFraction = res.CommSec / res.TotalSec
	}
	return res
}

// EpochTimeline builds a Timeline for one training epoch of a workload
// on n nodes, with the all-reduce time supplied by the optical model
// for the given collective profile.
func EpochTimeline(w workload.Workload, n, datasetSize int, comm float64) Timeline {
	return Timeline{
		Workers:    n,
		Iterations: w.IterationsPerEpoch(datasetSize, n),
		ComputeSec: w.ComputeSecPerIter,
		CommSec:    comm,
	}
}

// CommTimeForProfile is a convenience for building the per-iteration
// all-reduce duration of a model's gradient on the optical system.
func CommTimeForProfile(p optical.Params, pr core.Profile, m dnn.Model) (float64, error) {
	f, err := p.Fabric()
	if err != nil {
		return 0, err
	}
	res, err := fabric.Engine{Fabric: f}.RunProfile(pr, float64(m.GradBytes()))
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}
