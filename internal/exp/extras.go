package exp

import (
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/metrics"
	"wrht/internal/optical"
	"wrht/internal/phys"
)

// Extras extends the paper's evaluation with the additional collectives
// implemented here (double binary tree from the related work [25],
// recursive halving/doubling on the optical ring) and an energy column,
// for one workload at the Table-1 configuration. It answers the obvious
// reviewer question "how does WRHT fare against NCCL's tree?" that the
// paper leaves open.
func Extras(o Options, model dnn.Model, n, w int) *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf("Beyond-paper comparison: %s (%.0f MB), N=%d, w=%d",
			model.Name, float64(model.GradBytes())/1e6, n, w),
		Headers: []string{"Algorithm", "Steps", "λ used", "fits w?", "Time (ms)", "Energy (J)"},
	}
	ep := optical.DefaultEnergyParams(phys.DefaultBudget())
	add := func(name string, pr core.Profile) {
		res, err := optical.RunBuckets(o.Optical, pr, o.payloads(model))
		if err != nil {
			panic(fmt.Sprintf("exp: extras: %v", err))
		}
		maxW := 0
		for _, g := range pr.Groups {
			if g.Wavelengths > maxW {
				maxW = g.Wavelengths
			}
		}
		e := optical.EnergyOfProfile(o.Optical, ep, pr, float64(model.GradBytes()))
		fits := "yes"
		if maxW > w {
			fits = "NO"
		}
		t.AddRow(name, fmt.Sprint(pr.NumSteps()), fmt.Sprint(maxW), fits,
			fmt.Sprintf("%.2f", res.Time*1e3), fmt.Sprintf("%.3f", e.Total()))
	}
	add("Ring", collective.RingProfile(n))
	add("H-Ring (m=5)", collective.HRingProfile(n, 5, w))
	add("BT", collective.BTProfile(n))
	add("DBTree", collective.DBTreeProfile(n))
	if rd, err := collective.RDProfile(n); err == nil {
		add("RD (halving/doubling)", rd)
	}
	add("WRHT", wrhtProfile(n, w, 0))
	add("WDM-HRing (m=32)", collective.WDMHRingProfile(n, 32, w))
	return t
}
