package collective

import (
	"sync"
	"sync/atomic"

	"wrht/internal/core"
)

// ProfileCache memoizes analytic collective profiles so a sweep that
// revisits a configuration (every figure of §5 does, once per DNN
// workload) constructs each profile exactly once, even when sweep
// points are evaluated concurrently. It follows the lineA2ACache
// pattern in core/mesh.go — a mutexed map of entries — but adds a
// per-entry sync.Once so two goroutines racing on a cold key never
// both build, and a build counter so tests can prove single
// construction. Profiles are immutable once built, so returning the
// shared value to concurrent readers is safe.
type ProfileCache struct {
	mu     sync.Mutex
	m      map[profileKey]*profileEntry
	builds atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

type profileKind uint8

const (
	kindWRHT profileKind = iota
	kindRing
	kindHRing
	kindBT
)

// profileKey identifies one collective construction. core.Config is a
// comparable struct, so it serves directly as the map key; the unused
// fields stay zero for the non-WRHT kinds.
type profileKey struct {
	kind profileKind
	cfg  core.Config
}

type profileEntry struct {
	once sync.Once
	pr   core.Profile
	err  error
}

// NewProfileCache returns an empty cache.
func NewProfileCache() *ProfileCache {
	return &ProfileCache{m: make(map[profileKey]*profileEntry)}
}

func (c *ProfileCache) get(k profileKey, build func() (core.Profile, error)) (core.Profile, error) {
	c.mu.Lock()
	e, ok := c.m[k]
	if !ok {
		e = &profileEntry{}
		c.m[k] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		c.builds.Add(1)
		e.pr, e.err = build()
	})
	return e.pr, e.err
}

// WRHT returns the memoized WRHTProfile for cfg. The key drops every
// field the profile does not depend on: GroupSize is canonicalized, and
// Strategy, Seed and MaxGroupSize are zeroed — the profile is a pure
// function of (N, Wavelengths, effective GroupSize, DisableAllToAll),
// so configs differing only in wavelength-assignment strategy or the
// already-applied insertion-loss clamp share one entry. Before this
// normalization such configs silently rebuilt an identical profile
// under a fragmented key; with the hit/miss counters any regression of
// that kind shows up as excess misses.
func (c *ProfileCache) WRHT(cfg core.Config) (core.Profile, error) {
	cc := cfg.Canonical()
	key := cc
	key.MaxGroupSize = 0 // canonical GroupSize already honors the clamp
	key.Strategy = 0
	key.Seed = 0
	return c.get(profileKey{kind: kindWRHT, cfg: key}, func() (core.Profile, error) {
		return WRHTProfile(cc)
	})
}

// Ring returns the memoized RingProfile for n nodes.
func (c *ProfileCache) Ring(n int) core.Profile {
	pr, _ := c.get(profileKey{kind: kindRing, cfg: core.Config{N: n}}, func() (core.Profile, error) {
		return RingProfile(n), nil
	})
	return pr
}

// HRing returns the memoized HRingProfile for n nodes, m grouped nodes
// and w wavelengths.
func (c *ProfileCache) HRing(n, m, w int) core.Profile {
	k := profileKey{kind: kindHRing, cfg: core.Config{N: n, GroupSize: m, Wavelengths: w}}
	pr, _ := c.get(k, func() (core.Profile, error) {
		return HRingProfile(n, m, w), nil
	})
	return pr
}

// BT returns the memoized BTProfile for n nodes.
func (c *ProfileCache) BT(n int) core.Profile {
	pr, _ := c.get(profileKey{kind: kindBT, cfg: core.Config{N: n}}, func() (core.Profile, error) {
		return BTProfile(n), nil
	})
	return pr
}

// Builds reports how many distinct profiles have been constructed —
// equal to the number of distinct keys requested, however many
// goroutines asked.
func (c *ProfileCache) Builds() int64 { return c.builds.Load() }

// Hits reports how many lookups found an existing entry. A goroutine
// that arrives while another is still building the entry counts as a
// hit (it shares the build rather than starting one).
func (c *ProfileCache) Hits() int64 { return c.hits.Load() }

// Misses reports how many lookups created a new entry. Under the key
// normalization above, Misses exceeding the number of genuinely
// distinct profiles is the silent-rebuild signal the counters exist to
// expose.
func (c *ProfileCache) Misses() int64 { return c.misses.Load() }
