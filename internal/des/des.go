// Package des is a minimal discrete-event simulation kernel: a
// time-ordered event queue with deterministic FIFO tie-breaking. The
// electrical fat-tree simulator uses it to sequence flow completions and
// the training simulator uses it to interleave per-worker compute and
// communication phases.
package des

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback.
type event struct {
	time float64
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel owns the simulated clock and the pending event queue. The zero
// value is ready to use at time 0.
type Kernel struct {
	now    float64
	seq    uint64
	events eventHeap
}

// Now returns the current simulated time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would reorder causality silently.
func (k *Kernel) At(t float64, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("des: scheduling at %g before now %g", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{time: t, seq: k.seq, fn: fn})
}

// After schedules fn to run delay seconds from now.
func (k *Kernel) After(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %g", delay))
	}
	k.At(k.now+delay, fn)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was available.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*event)
	k.now = e.time
	e.fn()
	return true
}

// Run drains the event queue and returns the final clock value.
func (k *Kernel) Run() float64 {
	for k.Step() {
	}
	return k.now
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }
