package exp

import (
	"fmt"
	"math/rand"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/metrics"
	"wrht/internal/optical"
)

// Stragglers studies a question the paper's deterministic model cannot
// ask: how sensitive is each all-reduce to per-circuit jitter? Every
// transfer's duration is multiplied by (1 + |N(0, sigma)|) in the
// event-driven simulator, and because steps are barriers, an algorithm
// with many small steps (Ring) absorbs jitter differently from one with
// few large steps (WRHT): Ring pays max-of-N on every one of its 2(N−1)
// steps but each straggle is small, while WRHT pays max-of-N on 3 steps
// of full-gradient size. Trials stay sequential — they share one seeded
// RNG, and reproducibility for a fixed seed is part of the contract.
func Stragglers(o Options, model dnn.Model, n, w int, sigma float64, trials int, seed int64) (*metrics.Table, error) {
	t := &metrics.Table{
		Title: fmt.Sprintf("Straggler sensitivity: %s, N=%d, w=%d, per-transfer jitter ~|N(0,%.2f)| (%d trials)",
			model.Name, n, w, sigma, trials),
		Headers: []string{"Algorithm", "clean (ms)", "mean jittered (ms)", "slowdown"},
	}
	d := float64(model.GradBytes())
	scheds := []*core.Schedule{}
	if s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w}); err == nil {
		scheds = append(scheds, s)
	}
	scheds = append(scheds, collective.BuildRing(n), collective.BuildBT(n))
	rng := rand.New(rand.NewSource(seed))
	for _, s := range scheds {
		clean, err := optical.RunScheduleDES(o.Optical, s, d, nil)
		if err != nil {
			return nil, fmt.Errorf("exp: stragglers (%s): %w", s.Algorithm, err)
		}
		var sum float64
		for tr := 0; tr < trials; tr++ {
			res, err := optical.RunScheduleDES(o.Optical, s, d, func(_, _ int, nominal float64) float64 {
				f := rng.NormFloat64() * sigma
				if f < 0 {
					f = -f
				}
				return nominal * (1 + f)
			})
			if err != nil {
				return nil, fmt.Errorf("exp: stragglers (%s, trial %d): %w", s.Algorithm, tr, err)
			}
			sum += res.Time
		}
		mean := sum / float64(trials)
		t.AddRow(s.Algorithm,
			fmt.Sprintf("%.2f", clean.Time*1e3),
			fmt.Sprintf("%.2f", mean*1e3),
			fmt.Sprintf("%.3fx", mean/clean.Time))
	}
	return t, nil
}
