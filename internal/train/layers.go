// Package train is the distributed data-parallel training substrate of
// §3.1: a real (numeric) neural-network implementation — dense layers,
// im2col convolutions (Eq 1–3, [32]), activations, losses and SGD
// (Eq 4) — whose N replicas synchronise gradients by executing a
// collective schedule on the in-process cluster (Eq 5). It exists to
// demonstrate end to end that WRHT is a correct all-reduce: replicas
// stay bit-identical and training converges exactly as with a perfect
// synchronisation oracle.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"wrht/internal/tensor"
)

// Layer is one differentiable network stage. Forward consumes the
// activations of the previous layer for a whole mini-batch (row-major
// [batch × in]); Backward consumes ∂L/∂out and returns ∂L/∂in while
// accumulating parameter gradients (Eq 2–3).
type Layer interface {
	// Forward computes the layer output for a batch.
	Forward(in [][]float32) [][]float32
	// Backward computes the input gradient and accumulates parameter
	// gradients for the most recent Forward batch.
	Backward(gradOut [][]float32) [][]float32
	// Params returns views of the parameter and gradient vectors (nil
	// for parameterless layers). Mutating the returned slices mutates
	// the layer.
	Params() (weights, grads tensor.Vector)
	// ZeroGrad clears accumulated gradients.
	ZeroGrad()
	// OutDim returns the flattened output width.
	OutDim() int
}

// Dense is a fully connected layer: y = W·x + b (Eq 1 without the
// activation, which is a separate layer).
type Dense struct {
	In, Out int
	w       tensor.Vector // Out×In weights followed by Out biases
	g       tensor.Vector
	lastIn  [][]float32
}

// NewDense builds a dense layer with Glorot-uniform initial weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, w: tensor.New(in*out + out), g: tensor.New(in*out + out)}
	limit := float32(math.Sqrt(6 / float64(in+out)))
	for i := 0; i < in*out; i++ {
		d.w[i] = (rng.Float32()*2 - 1) * limit
	}
	return d
}

func (d *Dense) bias(o int) float32           { return d.w[d.In*d.Out+o] }
func (d *Dense) addWGrad(o, i int, v float32) { d.g[o*d.In+i] += v }
func (d *Dense) addBGrad(o int, v float32)    { d.g[d.In*d.Out+o] += v }

// Forward implements Layer.
func (d *Dense) Forward(in [][]float32) [][]float32 {
	d.lastIn = in
	out := make([][]float32, len(in))
	for b, x := range in {
		if len(x) != d.In {
			panic(fmt.Sprintf("train: dense input width %d, want %d", len(x), d.In))
		}
		y := make([]float32, d.Out)
		for o := 0; o < d.Out; o++ {
			acc := d.bias(o)
			row := d.w[o*d.In : (o+1)*d.In]
			for i, xi := range x {
				acc += row[i] * xi
			}
			y[o] = acc
		}
		out[b] = y
	}
	return out
}

// Backward implements Layer: dX = Wᵀ·dY, dW += dY·Xᵀ, db += dY (Eq 2–3).
func (d *Dense) Backward(gradOut [][]float32) [][]float32 {
	gradIn := make([][]float32, len(gradOut))
	for b, gy := range gradOut {
		x := d.lastIn[b]
		gx := make([]float32, d.In)
		for o := 0; o < d.Out; o++ {
			g := gy[o]
			if g == 0 {
				continue
			}
			row := d.w[o*d.In : (o+1)*d.In]
			for i := range gx {
				gx[i] += row[i] * g
				d.addWGrad(o, i, g*x[i])
			}
			d.addBGrad(o, g)
		}
		gradIn[b] = gx
	}
	return gradIn
}

// Params implements Layer.
func (d *Dense) Params() (tensor.Vector, tensor.Vector) { return d.w, d.g }

// ZeroGrad implements Layer.
func (d *Dense) ZeroGrad() {
	for i := range d.g {
		d.g[i] = 0
	}
}

// OutDim implements Layer.
func (d *Dense) OutDim() int { return d.Out }

// ReLU is the rectifier activation f(x) = max(0, x).
type ReLU struct {
	dim    int
	lastIn [][]float32
}

// NewReLU builds a ReLU over vectors of the given width.
func NewReLU(dim int) *ReLU { return &ReLU{dim: dim} }

// Forward implements Layer.
func (r *ReLU) Forward(in [][]float32) [][]float32 {
	r.lastIn = in
	out := make([][]float32, len(in))
	for b, x := range in {
		y := make([]float32, len(x))
		for i, v := range x {
			if v > 0 {
				y[i] = v
			}
		}
		out[b] = y
	}
	return out
}

// Backward implements Layer: f'(x) gates the gradient (Eq 2).
func (r *ReLU) Backward(gradOut [][]float32) [][]float32 {
	gradIn := make([][]float32, len(gradOut))
	for b, gy := range gradOut {
		x := r.lastIn[b]
		gx := make([]float32, len(gy))
		for i, v := range x {
			if v > 0 {
				gx[i] = gy[i]
			}
		}
		gradIn[b] = gx
	}
	return gradIn
}

// Params implements Layer.
func (r *ReLU) Params() (tensor.Vector, tensor.Vector) { return nil, nil }

// ZeroGrad implements Layer.
func (r *ReLU) ZeroGrad() {}

// OutDim implements Layer.
func (r *ReLU) OutDim() int { return r.dim }
