// Package fault models hardware failures of the TeraRack-style optical
// ring and their effect on WRHT scheduling. The paper's §4.4 constraint
// analysis assumes a fully healthy ring; a production collective stack
// must instead keep training when components degrade, the way
// reconfigurable-fabric systems adapt their circuit plans to runtime
// conditions (SWOT, arXiv:2510.19322; "To Reconfigure or Not to
// Reconfigure", arXiv:2602.10468). Five fault classes are modelled:
//
//   - failed nodes: the node neither sends nor receives. Its MRRs are
//     assumed to fail safe into the pass state, so light still crosses
//     the node's interfaces (a stuck resonator that shadows a channel is
//     modelled as a dead wavelength or a cut segment instead).
//   - failed per-direction transceivers: the node's Tx/Rx array on one
//     fiber direction is dead; the opposite direction still works.
//   - dead wavelengths: a comb-laser line or its modulator row is gone
//     ring-wide, shrinking the effective budget from w to w−k.
//   - cut waveguide segments: one directed fiber segment carries no
//     light on any wavelength (the opposite-direction fiber of the same
//     physical span is an independent waveguide and gets its own cut).
//   - degraded-loss MRRs: a node's ring resonators developed extra
//     insertion loss, tightening the §4.4 link budget and with it
//     phys.Budget.MaxGroupSize.
//
// A Mask is the aggregate fault state. It is deterministic: all
// accessors enumerate in sorted order, and Spec.Sample draws
// reproducible random masks from a seed. Masks plug into the stack at
// three levels — schedule construction (core.BuildWRHTMasked),
// wavelength assignment (Mask.Seed pre-occupies rwa.Index cells so
// first/random fit route around cuts and dead wavelengths), and
// execution (fabric.Engine's fault-aware run mode re-checks every step
// against the live mask and reschedules on a hit).
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"wrht/internal/phys"
	"wrht/internal/rwa"
	"wrht/internal/topo"
)

// Mask is the aggregate fault state of one n-node ring. The zero Mask
// is not usable; construct with NewMask. Mutators are not safe for
// concurrent use with queries.
type Mask struct {
	n     int
	nodes map[int]bool
	// trans[dir][node] marks the node's transceiver (Tx and Rx array)
	// on the dir fiber as failed.
	trans [2]map[int]bool
	wl    map[int]bool
	// cuts[dir][segment] marks the directed fiber segment as dark.
	cuts [2]map[int]bool
	// mrr[node] is the extra insertion loss in dB of the node's
	// degraded resonators.
	mrr map[int]float64
}

// NewMask returns an empty (healthy) mask for an n-node ring.
func NewMask(n int) *Mask {
	if n < 1 {
		panic(fmt.Sprintf("fault: ring size %d < 1", n))
	}
	return &Mask{n: n}
}

// N returns the ring size the mask describes.
func (m *Mask) N() int { return m.n }

// Empty reports whether the mask carries no faults at all. A nil mask
// is empty.
func (m *Mask) Empty() bool {
	if m == nil {
		return true
	}
	return len(m.nodes) == 0 && len(m.trans[0]) == 0 && len(m.trans[1]) == 0 &&
		len(m.wl) == 0 && len(m.cuts[0]) == 0 && len(m.cuts[1]) == 0 && len(m.mrr) == 0
}

// Clone returns an independent copy of the mask.
func (m *Mask) Clone() *Mask {
	c := NewMask(m.n)
	for i := range m.nodes {
		c.FailNode(i)
	}
	for d := range m.trans {
		for i := range m.trans[d] {
			c.FailTransceiver(i, topo.Direction(d))
		}
	}
	for w := range m.wl {
		c.KillWavelength(w)
	}
	for d := range m.cuts {
		for s := range m.cuts[d] {
			c.CutSegment(topo.Direction(d), s)
		}
	}
	for i, db := range m.mrr {
		c.DegradeMRR(i, db)
	}
	return c
}

func (m *Mask) checkNode(i int) {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("fault: node %d out of ring [0,%d)", i, m.n))
	}
}

// FailNode marks node i as completely failed.
func (m *Mask) FailNode(i int) *Mask {
	m.checkNode(i)
	if m.nodes == nil {
		m.nodes = map[int]bool{}
	}
	m.nodes[i] = true
	return m
}

// FailTransceiver marks node i's Tx/Rx array on the dir fiber as failed.
func (m *Mask) FailTransceiver(i int, dir topo.Direction) *Mask {
	m.checkNode(i)
	if m.trans[dir] == nil {
		m.trans[dir] = map[int]bool{}
	}
	m.trans[dir][i] = true
	return m
}

// KillWavelength marks wavelength w as dead ring-wide.
func (m *Mask) KillWavelength(w int) *Mask {
	if w < 0 {
		panic(fmt.Sprintf("fault: negative wavelength %d", w))
	}
	if m.wl == nil {
		m.wl = map[int]bool{}
	}
	m.wl[w] = true
	return m
}

// CutSegment marks directed fiber segment seg (joining node seg and
// seg+1 mod N, travelling dir) as dark on every wavelength.
func (m *Mask) CutSegment(dir topo.Direction, seg int) *Mask {
	if seg < 0 || seg >= m.n {
		panic(fmt.Sprintf("fault: segment %d out of ring [0,%d)", seg, m.n))
	}
	if m.cuts[dir] == nil {
		m.cuts[dir] = map[int]bool{}
	}
	m.cuts[dir][seg] = true
	return m
}

// DegradeMRR records extraLossDB of additional insertion loss on node
// i's resonators (accumulating across calls).
func (m *Mask) DegradeMRR(i int, extraLossDB float64) *Mask {
	m.checkNode(i)
	if extraLossDB < 0 {
		panic(fmt.Sprintf("fault: negative MRR loss %g dB", extraLossDB))
	}
	if m.mrr == nil {
		m.mrr = map[int]float64{}
	}
	m.mrr[i] += extraLossDB
	return m
}

// NodeOK reports whether node i is alive.
func (m *Mask) NodeOK(i int) bool { return !m.nodes[i] }

// TransceiverOK reports whether node i can transmit and receive on the
// dir fiber (the node is alive and its dir transceiver works).
func (m *Mask) TransceiverOK(i int, dir topo.Direction) bool {
	return m.NodeOK(i) && !m.trans[dir][i]
}

// WavelengthOK reports whether wavelength w is alive.
func (m *Mask) WavelengthOK(w int) bool { return !m.wl[w] }

// AliveNodes returns the ascending list of alive node positions.
func (m *Mask) AliveNodes() []int {
	alive := make([]int, 0, m.n-len(m.nodes))
	for i := 0; i < m.n; i++ {
		if m.NodeOK(i) {
			alive = append(alive, i)
		}
	}
	return alive
}

// AliveWavelengths returns the ascending alive wavelength indices below
// the given budget.
func (m *Mask) AliveWavelengths(budget int) []int {
	alive := make([]int, 0, budget)
	for w := 0; w < budget; w++ {
		if m.WavelengthOK(w) {
			alive = append(alive, w)
		}
	}
	return alive
}

// ArcClear reports whether no cut segment lies on arc a of the dir
// fiber.
func (m *Mask) ArcClear(dir topo.Direction, a topo.Arc) bool {
	for s := range m.cuts[dir] {
		if a.Contains(s) {
			return false
		}
	}
	return true
}

// TransferErr reports why a circuit from src to dst travelling dir on
// wavelength w cannot be lit under the mask, or nil if it can: both
// endpoints must be alive with working dir transceivers, the wavelength
// must be alive, and the traversed arc must be free of cuts. Light
// passing through intermediate nodes needs no transceiver there (failed
// nodes' MRRs fail safe to pass-through).
func (m *Mask) TransferErr(r topo.Ring, src, dst int, dir topo.Direction, w int) error {
	if m == nil || m.Empty() {
		return nil
	}
	if !m.NodeOK(src) {
		return fmt.Errorf("fault: source node %d failed", src)
	}
	if !m.NodeOK(dst) {
		return fmt.Errorf("fault: destination node %d failed", dst)
	}
	if !m.TransceiverOK(src, dir) {
		return fmt.Errorf("fault: node %d has no working %s transmitter", src, dir)
	}
	if !m.TransceiverOK(dst, dir) {
		return fmt.Errorf("fault: node %d has no working %s receiver", dst, dir)
	}
	if !m.WavelengthOK(w) {
		return fmt.Errorf("fault: wavelength %d dead", w)
	}
	if !m.ArcClear(dir, r.ArcOf(src, dst, dir)) {
		return fmt.Errorf("fault: cut %s segment on the %d->%d arc", dir, src, dst)
	}
	return nil
}

// PathErr reports why src and dst cannot terminate any circuit
// travelling dir (endpoint and transceiver faults only — wavelength and
// cut feasibility are occupancy questions answered by a seeded
// rwa.Index).
func (m *Mask) PathErr(src, dst int, dir topo.Direction) error {
	if m == nil || m.Empty() {
		return nil
	}
	if !m.NodeOK(src) || !m.NodeOK(dst) {
		return fmt.Errorf("fault: endpoint of %d->%d failed", src, dst)
	}
	if !m.TransceiverOK(src, dir) {
		return fmt.Errorf("fault: node %d has no working %s transmitter", src, dir)
	}
	if !m.TransceiverOK(dst, dir) {
		return fmt.Errorf("fault: node %d has no working %s receiver", dst, dir)
	}
	return nil
}

// Seed pre-occupies ix with the mask's ring-wide resource faults so
// first/random fit and the conflict validator route around them: every
// dead wavelength is occupied on the full ring in both directions, and
// every cut segment is occupied on all budget wavelengths of its fiber.
// The cells persist across the index's Reset (see rwa.Index.Preoccupy).
func (m *Mask) Seed(ix *rwa.Index, budget int) {
	if m == nil {
		return
	}
	ring := topo.Arc{Lo: 0, Len: m.n, N: m.n}
	for _, w := range sortedKeys(m.wl) {
		ix.Preoccupy(topo.CW, ring, w)
		ix.Preoccupy(topo.CCW, ring, w)
	}
	for d := range m.cuts {
		for _, s := range sortedKeys(m.cuts[d]) {
			seg := topo.Arc{Lo: s, Len: 1, N: m.n}
			for w := 0; w < budget; w++ {
				ix.Preoccupy(topo.Direction(d), seg, w)
			}
		}
	}
}

// TightenBudget folds the degraded resonators into the §4.4 link
// budget: the worst-case circuit may pass every degraded MRR, so their
// extra insertion losses add to the transmit-side loss. Feeding the
// result into phys.Budget.MaxGroupSize yields the clamp m' the degraded
// ring supports.
func (m *Mask) TightenBudget(b phys.Budget) phys.Budget {
	if m == nil {
		return b
	}
	for _, db := range m.mrr {
		b.ModulatorLossDB += db
	}
	return b
}

// MaxGroupSize returns phys.Budget.MaxGroupSize under the mask's
// tightened budget.
func (m *Mask) MaxGroupSize(b phys.Budget, n, cap int) int {
	return m.TightenBudget(b).MaxGroupSize(n, cap)
}

// Counts summarises the mask for reporting.
func (m *Mask) Counts() (nodes, transceivers, wavelengths, cuts, mrrs int) {
	if m == nil {
		return
	}
	return len(m.nodes), len(m.trans[0]) + len(m.trans[1]), len(m.wl),
		len(m.cuts[0]) + len(m.cuts[1]), len(m.mrr)
}

func (m *Mask) String() string {
	if m.Empty() {
		return "fault.Mask{healthy}"
	}
	var parts []string
	add := func(label string, ks []int) {
		if len(ks) > 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", label, ks))
		}
	}
	add("nodes", sortedKeys(m.nodes))
	add("tx/rx(cw)", sortedKeys(m.trans[topo.CW]))
	add("tx/rx(ccw)", sortedKeys(m.trans[topo.CCW]))
	add("wavelengths", sortedKeys(m.wl))
	add("cuts(cw)", sortedKeys(m.cuts[topo.CW]))
	add("cuts(ccw)", sortedKeys(m.cuts[topo.CCW]))
	add("mrrs", sortedKeys(m.mrr))
	return "fault.Mask{" + strings.Join(parts, " ") + "}"
}

func sortedKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// sampleDistinct draws k distinct values from [0, n) in ascending draw
// order, deterministically for a given rng state.
func sampleDistinct(rng *rand.Rand, k, n int) []int {
	if k > n {
		k = n
	}
	picked := map[int]bool{}
	out := make([]int, 0, k)
	for len(out) < k {
		v := rng.Intn(n)
		if !picked[v] {
			picked[v] = true
			out = append(out, v)
		}
	}
	return out
}
