package fabric

import (
	"testing"

	"wrht/internal/core"
)

// benchSchedule is the N=64, w=64 WRHT schedule: small enough to run in
// the CI -benchtime=1x smoke step, large enough to exercise the overlap
// probe (its top boundary is rwa-disjoint, so one reconfiguration hides).
func benchSchedule(b *testing.B) *core.Schedule {
	b.Helper()
	s, err := core.BuildWRHT(core.Config{N: 64, Wavelengths: 64})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkEngineNilObserver pins the cost of the engine's default path
// with no observer attached: the observability hook must add zero
// allocations and <1% time versus the pre-hook engine (BENCH_obs.json
// records the before/after pair).
func BenchmarkEngineNilObserver(b *testing.B) {
	s := benchSchedule(b)
	for _, bc := range []struct {
		name    string
		overlap bool
	}{{"plain", false}, {"overlap", true}} {
		b.Run(bc.name, func(b *testing.B) {
			f := &stubFabric{setup: 25e-6, perByte: 2.5e-10}
			eng := Engine{Fabric: f, Opts: Options{Overlap: bc.overlap}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.RunSchedule(s, 100e6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
