package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Labeled builds the canonical registry name for a labeled series:
// `family{k="v",k2="v2"}` with the label pairs sorted by key and the
// values escaped. kv alternates key, value; an odd count panics (a
// wiring bug, not a runtime condition). Labeled names group under one
// family in Expose, which appends the histogram "le" label after the
// user labels.
func Labeled(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: Labeled(%q) with odd key/value count %d", family, len(kv)))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// splitSeries separates a registry name into its family and rendered
// label part ("" when unlabeled).
func splitSeries(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// promName sanitizes a registry name into a valid Prometheus metric
// name: every character outside [a-zA-Z0-9_:] becomes '_' (the
// registry's dotted names map dot to underscore), and a leading digit
// is prefixed with '_'.
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
		}
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Series is one exposed time series of a family: its canonical label
// string (empty when unlabeled) and either a scalar value or a
// histogram snapshot.
type Series struct {
	// Labels is the rendered label body, `k="v",...`, empty for an
	// unlabeled series.
	Labels string
	// Value holds the sample for counter and gauge series.
	Value float64
	// Hist holds the snapshot for histogram series (nil otherwise).
	Hist *HistogramSnapshot
}

// Family is one metric family of a snapshot: the sanitized Prometheus
// name, the raw registry family name, the metric type and the series
// sorted by label string.
type Family struct {
	// Name is the Prometheus-sanitized family name; Raw the registry
	// name it came from.
	Name, Raw string
	// Type is "counter", "gauge" or "histogram".
	Type string
	// Volatile reports that the family was marked wall-clock-dependent
	// (see Registry.MarkVolatile).
	Volatile bool
	Series   []Series
}

// Families returns the snapshot as an immutable, sorted view: families
// ordered by sanitized name (ties broken by raw name so distinct
// registry names that sanitize identically stay deterministic), series
// within a family ordered by label string. This is exactly what Expose
// renders.
func (s Snapshot) Families() []Family {
	vol := make(map[string]bool, len(s.Volatile))
	for _, f := range s.Volatile {
		vol[f] = true
	}
	byRaw := map[string]*Family{}
	add := func(name, typ string, val float64, h *HistogramSnapshot) {
		fam, labels := splitSeries(name)
		f, ok := byRaw[fam+"\x00"+typ]
		if !ok {
			f = &Family{Name: promName(fam), Raw: fam, Type: typ, Volatile: vol[fam]}
			byRaw[fam+"\x00"+typ] = f
		}
		f.Series = append(f.Series, Series{Labels: labels, Value: val, Hist: h})
	}
	for name, v := range s.Counters {
		add(name, "counter", float64(v), nil)
	}
	for name, v := range s.Gauges {
		add(name, "gauge", v, nil)
	}
	for name, h := range s.Histograms {
		h := h
		add(name, "histogram", 0, &h)
	}
	out := make([]Family, 0, len(byRaw))
	for _, f := range byRaw {
		sort.Slice(f.Series, func(i, j int) bool { return f.Series[i].Labels < f.Series[j].Labels })
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Raw < out[j].Raw
	})
	return out
}

// formatSample renders a sample value the Prometheus way: the shortest
// float64 representation ("+Inf" never appears outside le labels).
func formatSample(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Expose writes the snapshot in the Prometheus text exposition format:
// one deterministic block per family — HELP, TYPE, then the sorted
// series, with histogram families expanded into cumulative `_bucket`
// series (non-empty bounds plus "+Inf") and `_sum`/`_count` samples.
// Families marked via Registry.MarkVolatile carry a "# VOLATILE"
// comment line (a plain comment to Prometheus parsers) so determinism
// checks can exclude wall-clock families from byte comparison.
func (s Snapshot) Expose(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.Families() {
		fmt.Fprintf(bw, "# HELP %s wrht registry %s %s\n", f.Name, f.Type, f.Raw)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		if f.Volatile {
			fmt.Fprintf(bw, "# VOLATILE %s\n", f.Name)
		}
		for _, se := range f.Series {
			if f.Type != "histogram" {
				if se.Labels == "" {
					fmt.Fprintf(bw, "%s %s\n", f.Name, formatSample(se.Value))
				} else {
					fmt.Fprintf(bw, "%s{%s} %s\n", f.Name, se.Labels, formatSample(se.Value))
				}
				continue
			}
			prefix := ""
			if se.Labels != "" {
				prefix = se.Labels + ","
			}
			// The +Inf bucket and _count derive from the bucket words, not
			// the separate Count field, so a scrape racing live Observe
			// calls is still internally consistent (cumulative counts never
			// decrease within the series).
			var cum, total uint64
			for _, b := range se.Hist.Buckets {
				total += b.Count
			}
			for _, b := range se.Hist.Buckets {
				if math.IsInf(b.UpperBound, 1) {
					continue // folded into the +Inf bucket below
				}
				cum += b.Count
				fmt.Fprintf(bw, "%s_bucket{%sle=\"%s\"} %d\n",
					f.Name, prefix, formatSample(b.UpperBound), cum)
			}
			fmt.Fprintf(bw, "%s_bucket{%sle=\"+Inf\"} %d\n", f.Name, prefix, total)
			if se.Labels == "" {
				fmt.Fprintf(bw, "%s_sum %s\n", f.Name, formatSample(se.Hist.Sum))
				fmt.Fprintf(bw, "%s_count %d\n", f.Name, total)
			} else {
				fmt.Fprintf(bw, "%s_sum{%s} %s\n", f.Name, se.Labels, formatSample(se.Hist.Sum))
				fmt.Fprintf(bw, "%s_count{%s} %d\n", f.Name, se.Labels, total)
			}
		}
	}
	return bw.Flush()
}

// Expose writes the registry's current state in the Prometheus text
// exposition format (see Snapshot.Expose).
func (r *Registry) Expose(w io.Writer) error { return r.Snapshot().Expose(w) }

// ExposeAndReset writes the exposition and atomically resets every
// metric, so consecutive scrapes see non-overlapping deltas (the
// snapshot-and-reset scrape mode).
func (r *Registry) ExposeAndReset(w io.Writer) error { return r.SnapshotAndReset().Expose(w) }

// ExposeFile writes the Prometheus exposition to path ("-" for stdout).
func (r *Registry) ExposeFile(path string) error {
	if path == "-" {
		return r.Expose(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.Expose(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidateExposition lints a Prometheus text exposition the way a
// strict scraper would, plus the ordering guarantees Expose makes:
//
//   - every sample's family has a TYPE line before the first sample;
//   - no family declares TYPE twice (duplicate families);
//   - metric and label names match the Prometheus grammar, non-le
//     labels are sorted and "le" comes last;
//   - histogram `_bucket` series have strictly increasing le bounds
//     with non-decreasing cumulative counts, end at le="+Inf", and
//     agree with the family's `_count` sample.
//
// It returns the first violation found, or nil.
func ValidateExposition(b []byte) error {
	type histState struct {
		lastLE   float64
		lastCum  uint64
		sawInf   bool
		infCount uint64
	}
	types := map[string]string{}     // family -> TYPE
	sampled := map[string]bool{}     // family -> saw a sample
	hists := map[string]*histState{} // histogram family+labels -> bucket state

	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$`)
	lineNo := 0
	for _, line := range strings.Split(string(b), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 4 && fields[1] == "TYPE" {
					return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				name := fields[2]
				if !promNameRe.MatchString(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				if fields[1] == "TYPE" {
					if _, dup := types[name]; dup {
						return fmt.Errorf("line %d: duplicate family %q", lineNo, name)
					}
					if sampled[name] {
						return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
					}
					types[name] = fields[3]
				}
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name, labels, value := m[1], m[2], m[3]
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := types[strings.TrimSuffix(name, suf)]; ok && t == "histogram" && strings.HasSuffix(name, suf) {
				family = strings.TrimSuffix(name, suf)
				break
			}
		}
		if _, ok := types[family]; !ok {
			return fmt.Errorf("line %d: sample %q before any TYPE line for %q", lineNo, name, family)
		}
		sampled[family] = true
		var le string
		prevKey := ""
		if labels != "" {
			for _, kv := range splitLabels(labels) {
				eq := strings.Index(kv, "=")
				if eq < 0 {
					return fmt.Errorf("line %d: malformed label %q", lineNo, kv)
				}
				k, v := kv[:eq], kv[eq+1:]
				if !promLabelRe.MatchString(k) {
					return fmt.Errorf("line %d: invalid label name %q", lineNo, k)
				}
				if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					return fmt.Errorf("line %d: unquoted label value %q", lineNo, v)
				}
				if k == "le" {
					le = v[1 : len(v)-1]
					continue
				}
				if le != "" {
					return fmt.Errorf("line %d: label %q after le", lineNo, k)
				}
				if k <= prevKey {
					return fmt.Errorf("line %d: label %q not sorted after %q", lineNo, k, prevKey)
				}
				prevKey = k
			}
		}
		if types[family] == "histogram" && strings.HasSuffix(name, "_bucket") {
			if le == "" {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			key := family + "{" + stripLE(labels) + "}"
			st := hists[key]
			if st == nil {
				st = &histState{lastLE: math.Inf(-1)}
				hists[key] = st
			}
			cum, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: non-integer bucket count %q", lineNo, value)
			}
			if le == "+Inf" {
				st.sawInf, st.infCount = true, cum
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le bound %q", lineNo, le)
				}
				if st.sawInf {
					return fmt.Errorf("line %d: bucket le=%q after +Inf", lineNo, le)
				}
				if bound <= st.lastLE {
					return fmt.Errorf("line %d: unsorted bucket bound %g after %g", lineNo, bound, st.lastLE)
				}
				st.lastLE = bound
			}
			if cum < st.lastCum {
				return fmt.Errorf("line %d: non-cumulative bucket count %d after %d", lineNo, cum, st.lastCum)
			}
			st.lastCum = cum
		}
		if types[family] == "histogram" && strings.HasSuffix(name, "_count") {
			key := family + "{" + labels + "}"
			st := hists[key]
			if st == nil || !st.sawInf {
				return fmt.Errorf("line %d: %s_count without preceding +Inf bucket", lineNo, family)
			}
			cnt, err := strconv.ParseUint(value, 10, 64)
			if err != nil || cnt != st.infCount {
				return fmt.Errorf("line %d: %s_count %q disagrees with +Inf bucket %d", lineNo, family, value, st.infCount)
			}
		}
	}
	return nil
}

// splitLabels splits a rendered label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// stripLE drops the le pair from a rendered label body.
func stripLE(labels string) string {
	var keep []string
	for _, kv := range splitLabels(labels) {
		if !strings.HasPrefix(kv, "le=") {
			keep = append(keep, kv)
		}
	}
	return strings.Join(keep, ",")
}
