package ir

import (
	"reflect"
	"testing"

	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// tstep builds a one-transfer step for dependency tests.
func tstep(src, dst int, c tensor.Chunk, w int) core.Step {
	return core.Step{Transfers: []core.Transfer{
		{Src: src, Dst: dst, Chunk: c, Op: tensor.OpSum, Dir: topo.CW, Wavelength: w},
	}}
}

func lowerSteps(t *testing.T, n int, steps ...core.Step) *Program {
	t.Helper()
	p, err := Lower(&core.Schedule{Algorithm: "t", Ring: topo.NewRing(n), Steps: steps}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDepsTrackReadAfterWrite(t *testing.T) {
	// Step 0 writes node 1; step 1 reads node 1: RAW edge.
	p := lowerSteps(t, 8,
		tstep(0, 1, tensor.Whole, 0),
		tstep(1, 2, tensor.Whole, 0),
		tstep(4, 5, tensor.Whole, 0), // disjoint nodes: no edges
	)
	if got := p.Steps[1].Deps; !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("step 1 deps = %v, want [0]", got)
	}
	if got := p.Steps[2].Deps; got != nil {
		t.Errorf("step 2 deps = %v, want none", got)
	}
}

func TestDepsTrackWriteAfterReadAndWrite(t *testing.T) {
	p := lowerSteps(t, 8,
		tstep(1, 2, tensor.Whole, 0), // reads node 1
		tstep(0, 1, tensor.Whole, 0), // writes node 1: WAR edge on 0
		tstep(3, 1, tensor.Whole, 0), // writes node 1 again: WAW edge on 1
	)
	if got := p.Steps[1].Deps; !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("WAR deps = %v, want [0]", got)
	}
	// Step 2 hazards against both predecessors: WAR on step 0's read of
	// node 1 and WAW on step 1's write of it.
	if got := p.Steps[2].Deps; !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("WAW/WAR deps = %v, want [0 1]", got)
	}
}

func TestDepsAreChunkRangeExact(t *testing.T) {
	half := func(i int) tensor.Chunk { return tensor.Chunk{Index: i, Of: 2} }
	// Writes to disjoint halves of node 1 carry no hazard; the nested
	// quarter 1/2.0/2 overlaps half 1/2 but not half 0/2.
	p := lowerSteps(t, 8,
		tstep(0, 1, half(0), 0),
		tstep(2, 1, half(1), 0),
		tstep(4, 1, tensor.Chunk{Index: 1, Of: 2, Sub: &tensor.Chunk{Index: 0, Of: 2}}, 0),
	)
	if got := p.Steps[1].Deps; got != nil {
		t.Errorf("disjoint halves carry deps %v, want none", got)
	}
	if got := p.Steps[2].Deps; !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("nested quarter deps = %v, want [1] (overlaps upper half only)", got)
	}
}

func TestDepsOnNaturalSchedules(t *testing.T) {
	// WRHT levels chain: each gather reads what the previous one
	// reduced at the representatives, and the broadcast replays it
	// backwards, so deps form a path 0 <- 1 <- ... <- θ-1.
	s, err := core.BuildWRHT(core.Config{N: 4096, Wavelengths: 64})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(p.Steps); j++ {
		found := false
		for _, d := range p.Steps[j].Deps {
			if d == j-1 {
				found = true
			}
		}
		if !found {
			t.Errorf("WRHT step %d does not depend on step %d: %v", j, j-1, p.Steps[j].Deps)
		}
	}
}

func TestResolutionFallsBackConservatively(t *testing.T) {
	// A chunk whose divisor product exceeds the cap forces node
	// granularity: two disjoint-range writes to the same node now carry
	// a (conservative) WAW edge.
	deep := tensor.Chunk{Index: 0, Of: 1 << 11, Sub: &tensor.Chunk{Index: 0, Of: 1 << 11}}
	p := lowerSteps(t, 8,
		tstep(0, 1, deep, 0),
		tstep(2, 1, tensor.Chunk{Index: 1, Of: 2}, 0),
	)
	if got := p.Steps[1].Deps; !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("coarse fallback deps = %v, want [0]", got)
	}
}
