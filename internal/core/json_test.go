package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	orig, err := BuildWRHT(Config{N: 33, Wavelengths: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != orig.Algorithm || back.Ring.N != orig.Ring.N {
		t.Fatalf("header mismatch: %s/%d vs %s/%d", back.Algorithm, back.Ring.N, orig.Algorithm, orig.Ring.N)
	}
	if !reflect.DeepEqual(orig.Steps, back.Steps) {
		t.Fatal("steps did not round-trip")
	}
	// The round-tripped schedule validates identically.
	if err := back.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleJSONRoundTripNestedChunks(t *testing.T) {
	// H-Ring-style nested chunks must survive (exercised through a raw
	// schedule since collective would import-cycle here).
	s, err := BuildWRHT(Config{N: 8, Wavelengths: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Steps, back.Steps) {
		t.Fatal("steps mismatch")
	}
}

func TestScheduleJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"algorithm":"x","n":0,"steps":[]}`,
		`{"algorithm":"x","n":4,"steps":[{"phase":"nope","transfers":[]}]}`,
		`{"algorithm":"x","n":4,"steps":[{"phase":"reduce","transfers":[{"src":0,"dst":1,"op":"sum","dir":"cw","wl":0}]}]}`,
		`{"algorithm":"x","n":4,"steps":[{"phase":"reduce","transfers":[{"src":0,"dst":1,"chunk":{"i":0,"of":1},"op":"nope","dir":"cw","wl":0}]}]}`,
		`{"algorithm":"x","n":4,"steps":[{"phase":"reduce","transfers":[{"src":0,"dst":1,"chunk":{"i":0,"of":1},"op":"sum","dir":"diagonal","wl":0}]}]}`,
		`not json at all`,
	}
	for i, c := range cases {
		if _, err := ReadSchedule(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
