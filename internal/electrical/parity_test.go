package electrical

import (
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/fabric"
)

// Result is the legacy (pre-engine) outcome shape, kept test-side so
// the parity oracle can compare field by field now that the deprecated
// Network.RunSchedule shim is gone.
type Result struct {
	Algorithm string
	Steps     int
	Time      float64
}

// runSchedule drives fabric.Engine over Network.Fabric the way
// production callers do, converted to the legacy Result shape.
func runSchedule(nw *Network, s *core.Schedule, dBytes float64) (Result, error) {
	r, err := fabric.Engine{Fabric: nw.Fabric()}.RunSchedule(s, dBytes)
	if err != nil {
		return Result{}, err
	}
	return Result{Algorithm: r.Algorithm, Steps: r.Steps, Time: r.Time}, nil
}

// legacyRunSchedule reproduces the pre-engine fat-tree accumulation loop
// verbatim (memoized stepDuration, summed in schedule order) so the
// parity test can assert fabric.Engine changed no result bit.
func legacyRunSchedule(nw *Network, s *core.Schedule, dBytes float64) Result {
	// core.ElemsOf truncates exactly like the historical int(dBytes/4)
	// here, so the oracle's arithmetic is unchanged.
	elems, err := core.ElemsOf(dBytes)
	if err != nil {
		panic(err)
	}
	res := Result{Algorithm: s.Algorithm, Steps: s.NumSteps()}
	memo := map[string]float64{}
	for _, st := range s.Steps {
		key := stepSignature(st, elems)
		dur, ok := memo[key]
		if !ok {
			dur, _ = nw.stepDuration(st, elems)
			memo[key] = dur
		}
		res.Time += dur
	}
	return res
}

func TestScheduleEngineMatchesLegacyBitForBit(t *testing.T) {
	nw, err := NewNetwork(64, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	schedules := map[string]*core.Schedule{
		"ring": collective.BuildRing(32),
		"bt":   collective.BuildBT(32),
	}
	if s, err := core.BuildWRHT(core.Config{N: 64, Wavelengths: 8}); err != nil {
		t.Fatal(err)
	} else {
		schedules["wrht"] = s
	}
	if s, err := collective.BuildRD(32); err != nil {
		t.Fatal(err)
	} else {
		schedules["rd"] = s
	}
	for name, s := range schedules {
		for _, dBytes := range []float64{4e3, 1e6} {
			want := legacyRunSchedule(nw, s, dBytes)
			got, err := runSchedule(nw, s, dBytes)
			if err != nil {
				t.Fatalf("%s d=%g: %v", name, dBytes, err)
			}
			if got != want {
				t.Errorf("%s d=%g: engine %+v != legacy %+v", name, dBytes, got, want)
			}
		}
	}
}

func TestScheduleEngineKeepsHostCheck(t *testing.T) {
	nw, err := NewNetwork(16, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runSchedule(nw, collective.BuildRing(32), 1e6); err == nil {
		t.Fatal("32-host schedule accepted on a 16-host network")
	}
}

func TestStepCostSplitsDrainAndRouterTail(t *testing.T) {
	nw, err := NewNetwork(32, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := collective.BuildRing(32)
	f := nw.Fabric()
	c := f.StepCost(s.Steps[0], 1<<20)
	if c.Setup != 0 {
		t.Errorf("packet-switched step has circuit setup %g", c.Setup)
	}
	if c.Serialization <= 0 || c.RouterDelay <= 0 {
		t.Errorf("expected positive drain and router tail, got %+v", c)
	}
	if diff := c.Total - (c.Serialization + c.RouterDelay); diff > 1e-12*c.Total || diff < -1e-12*c.Total {
		t.Errorf("Total %g != drain %g + tail %g", c.Total, c.Serialization, c.RouterDelay)
	}
}
