package obs_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wrht/internal/obs"
)

// fixtureRegistry builds the deterministic registry the golden test
// pins: counters, gauges, a labeled histogram family and a volatile
// family.
func fixtureRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("fabric.steps").Add(128)
	r.Counter("fabric.circuits.reserved").Add(4096)
	r.Counter("plan.chosen.one-shot").Add(3)
	r.Gauge("exp.sweep.busy_seconds").Set(1.5)
	r.Histogram(obs.Labeled("exp.sweep.point.seconds", "sweep", "fig4")).Observe(1e-3)
	r.Histogram(obs.Labeled("exp.sweep.point.seconds", "sweep", "fig4")).Observe(2e-3)
	r.Histogram(obs.Labeled("exp.sweep.point.seconds", "sweep", "crossfabric")).Observe(5e-4)
	h := r.Histogram("rwa.probe.seconds")
	h.Observe(2e-6)
	h.Observe(40e-6)
	h.Observe(40e-6)
	r.MarkVolatile("exp.sweep.busy_seconds", "rwa.probe.seconds")
	return r
}

func TestExposeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().Expose(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "expose.golden.prom")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Two expositions of the same registry are byte-identical.
	var again bytes.Buffer
	if err := fixtureRegistry().Expose(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("exposition not deterministic across renders")
	}
}

func TestExposeValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().Expose(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("Expose output fails its own lint: %v\n%s", err, buf.Bytes())
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{
			"duplicate family",
			"# TYPE a counter\na 1\n# TYPE a counter\na 2\n",
			"duplicate family",
		},
		{
			"sample before TYPE",
			"a 1\n# TYPE a counter\n",
			"before any TYPE",
		},
		{
			"unsorted buckets",
			"# TYPE h histogram\nh_bucket{le=\"0.2\"} 1\nh_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.3\nh_count 2\n",
			"unsorted bucket bound",
		},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 0.3\nh_count 5\n",
			"non-cumulative",
		},
		{
			"count disagrees with +Inf",
			"# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.3\nh_count 3\n",
			"disagrees",
		},
		{
			"unsorted labels",
			"# TYPE a counter\na{z=\"1\",b=\"2\"} 1\n",
			"not sorted",
		},
		{
			"invalid metric name",
			"# TYPE a.b counter\n",
			"invalid metric name",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := obs.ValidateExposition([]byte(tc.doc))
			if err == nil {
				t.Fatalf("lint accepted %q", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("lint error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestExposeAndResetDeltas(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(2.5)
	r.Histogram("h").Observe(1e-3)

	var first bytes.Buffer
	if err := r.ExposeAndReset(&first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "c 5") || !strings.Contains(first.String(), "h_count 1") {
		t.Fatalf("first delta scrape missing values:\n%s", first.String())
	}

	// Everything was reset: the next scrape reports zeros.
	if v := r.Counter("c").Value(); v != 0 {
		t.Fatalf("counter not reset: %d", v)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Fatalf("gauge not reset: %g", v)
	}
	if n := r.Histogram("h").Count(); n != 0 {
		t.Fatalf("histogram not reset: %d", n)
	}

	// New activity lands wholly in the second delta.
	r.Counter("c").Add(2)
	var second bytes.Buffer
	if err := r.ExposeAndReset(&second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "c 2") {
		t.Fatalf("second delta scrape wrong:\n%s", second.String())
	}
}

func TestSnapshotFamiliesSorted(t *testing.T) {
	s := fixtureRegistry().Snapshot()
	fams := s.Families()
	for i := 1; i < len(fams); i++ {
		if fams[i].Name < fams[i-1].Name {
			t.Fatalf("families unsorted: %q after %q", fams[i].Name, fams[i-1].Name)
		}
	}
	for _, f := range fams {
		for i := 1; i < len(f.Series); i++ {
			if f.Series[i].Labels < f.Series[i-1].Labels {
				t.Fatalf("series of %q unsorted: %q after %q", f.Name, f.Series[i].Labels, f.Series[i-1].Labels)
			}
		}
	}
	// Mutating the view must not touch the registry (immutability).
	if len(fams) > 0 && len(fams[0].Series) > 0 {
		fams[0].Series[0].Value = -1
	}
}
