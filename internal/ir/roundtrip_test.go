package ir

import (
	"reflect"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// builders enumerates the schedule kinds the differential tests fuzz
// over. Each returns the schedule and the wavelength budget it was
// built for (0 = uncapped), or an error when the (n, w) point is not
// constructible for that kind (skipped).
var builders = map[string]func(n, w int) (*core.Schedule, int, error){
	"wrht": func(n, w int) (*core.Schedule, int, error) {
		s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w})
		return s, w, err
	},
	"ring": func(n, w int) (*core.Schedule, int, error) {
		return collective.BuildRing(n), 0, nil
	},
	"bt": func(n, w int) (*core.Schedule, int, error) {
		return collective.BuildBT(n), 0, nil
	},
	"rd": func(n, w int) (*core.Schedule, int, error) {
		s, err := collective.BuildRD(n)
		return s, 0, err
	},
	"hring": func(n, w int) (*core.Schedule, int, error) {
		s, err := collective.BuildHRing(n, 4, w)
		return s, w, err
	},
	"reduce": func(n, w int) (*core.Schedule, int, error) {
		s, err := collective.BuildReduce(n, w, 0)
		return s, w, err
	},
}

// testPasses is the full pipeline with a profitable split gate (25 µs
// setup, 40 Gb/s line rate, 100 MB payload — the paper's defaults).
func testPasses() []Pass {
	return []Pass{
		Reorder{},
		Recolor{},
		&Split{SetupSeconds: 25e-6, BytesPerSecond: 5e9, PayloadBytes: 100e6},
	}
}

// TestRoundTripIsExact is the differential property test: for every
// kind × N × w, lower → (no passes) → raise must reproduce the original
// schedule exactly, so the passes-off engine path is bit-identical by
// construction.
func TestRoundTripIsExact(t *testing.T) {
	for name, build := range builders {
		for _, n := range []int{1, 2, 3, 4, 5, 8, 9, 16, 17, 32} {
			for _, w := range []int{1, 2, 4, 8} {
				s, budget, err := build(n, w)
				if err != nil {
					continue // point not constructible for this kind
				}
				p, err := Lower(s, budget)
				if err != nil {
					t.Fatalf("%s n=%d w=%d: lower: %v", name, n, w, err)
				}
				r := p.Raise()
				if !reflect.DeepEqual(s, r) {
					t.Errorf("%s n=%d w=%d: round trip diverged\n in: %+v\nout: %+v", name, n, w, s, r)
				}
			}
		}
	}
}

// TestPipelineOutputStaysValid asserts every pass pipeline output still
// satisfies Schedule.Validate under the budget it was lowered with, and
// that the boundary precomputation agrees with a fresh probe of the
// raised schedule.
func TestPipelineOutputStaysValid(t *testing.T) {
	for name, build := range builders {
		for _, n := range []int{2, 4, 5, 8, 16, 32} {
			for _, w := range []int{2, 4, 8} {
				s, budget, err := build(n, w)
				if err != nil {
					continue
				}
				p, err := Lower(s, budget)
				if err != nil {
					t.Fatalf("%s n=%d w=%d: lower: %v", name, n, w, err)
				}
				if err := (Pipeline{Passes: testPasses()}).Run(p); err != nil {
					t.Fatalf("%s n=%d w=%d: pipeline: %v", name, n, w, err)
				}
				out := p.Raise()
				if err := out.Validate(budget); err != nil {
					t.Errorf("%s n=%d w=%d: pass output invalid: %v", name, n, w, err)
				}
				// The exported boundary decisions must match re-lowering the
				// raised schedule (i.e. they describe the output, not a stale
				// intermediate state).
				fresh, err := Lower(out, budget)
				if err != nil {
					t.Fatalf("%s n=%d w=%d: re-lower: %v", name, n, w, err)
				}
				if got, want := p.Boundaries(), fresh.Boundaries(); !reflect.DeepEqual(got, want) {
					t.Errorf("%s n=%d w=%d: Boundaries() %v != fresh probe %v", name, n, w, got, want)
				}
			}
		}
	}
}

func TestLowerRejectsInvalidSchedules(t *testing.T) {
	// Two same-direction circuits share λ0 on overlapping arcs.
	conflicted := &core.Schedule{Algorithm: "bad", Ring: topo.NewRing(8), Steps: []core.Step{
		{Transfers: []core.Transfer{
			{Src: 0, Dst: 4, Chunk: tensor.Whole, Dir: topo.CW, Wavelength: 0},
			{Src: 2, Dst: 6, Chunk: tensor.Whole, Dir: topo.CW, Wavelength: 0},
		}},
	}}
	if _, err := Lower(conflicted, 0); err == nil {
		t.Error("wavelength-conflicted schedule accepted by Lower")
	}
	bad := &core.Schedule{Algorithm: "bad", Ring: topo.NewRing(8), Steps: []core.Step{
		{Transfers: []core.Transfer{{Src: 0, Dst: 99, Chunk: tensor.Whole}}},
	}}
	if _, err := Lower(bad, 0); err == nil {
		t.Error("out-of-range node accepted by Lower")
	}
}
