package optical

import (
	"strings"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

func TestAllSchedulesPassMRRVerification(t *testing.T) {
	var scheds []*core.Schedule
	for _, n := range []int{4, 15, 16, 33, 64, 100, 129} {
		for _, w := range []int{1, 2, 8, 64} {
			s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w})
			if err != nil {
				t.Fatal(err)
			}
			scheds = append(scheds, s)
		}
		scheds = append(scheds, collective.BuildRing(n), collective.BuildBT(n))
	}
	hr, err := collective.BuildHRing(100, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := collective.BuildRD(64)
	if err != nil {
		t.Fatal(err)
	}
	scheds = append(scheds, hr, rd)
	for _, s := range scheds {
		if err := VerifySchedule(s); err != nil {
			t.Errorf("%s (N=%d): %v", s.Algorithm, s.Ring.N, err)
		}
	}
}

func TestMRRDetectsShadowedDrop(t *testing.T) {
	// Transfers 0→4 and 2→6 on the same wavelength: node 2's modulator
	// collides with the lit wavelength, and its drop at 6... construct the
	// shadow case explicitly: 0→6 and a second receiver at 3 dropping λ0.
	st := core.Step{Transfers: []core.Transfer{
		{Src: 0, Dst: 6, Chunk: tensor.Whole, Dir: topo.CW, Wavelength: 0},
		{Src: 8, Dst: 3, Chunk: tensor.Whole, Dir: topo.CW, Wavelength: 0},
	}}
	err := VerifyStep(10, st)
	if err == nil {
		t.Fatal("shadowed drop not detected")
	}
	if !strings.Contains(err.Error(), "shadow") && !strings.Contains(err.Error(), "collision") {
		t.Fatalf("unexpected error kind: %v", err)
	}
}

func TestMRRDetectsModulatorCollision(t *testing.T) {
	// 0→5 and 2→8 on λ0 CW: node 2 modulates onto the lit wavelength.
	st := core.Step{Transfers: []core.Transfer{
		{Src: 0, Dst: 5, Chunk: tensor.Whole, Dir: topo.CW, Wavelength: 0},
		{Src: 2, Dst: 8, Chunk: tensor.Whole, Dir: topo.CW, Wavelength: 0},
	}}
	if err := VerifyStep(10, st); err == nil {
		t.Fatal("modulator collision not detected")
	}
}

func TestMRRAllowsOppositeDirections(t *testing.T) {
	st := core.Step{Transfers: []core.Transfer{
		{Src: 0, Dst: 5, Chunk: tensor.Whole, Dir: topo.CW, Wavelength: 0},
		{Src: 9, Dst: 5, Chunk: tensor.Whole, Dir: topo.CCW, Wavelength: 0},
	}}
	if err := VerifyStep(10, st); err != nil {
		t.Fatalf("independent directions rejected: %v", err)
	}
}

func TestMRRDoubleModulatePanicsCompile(t *testing.T) {
	st := core.Step{Transfers: []core.Transfer{
		{Src: 0, Dst: 3, Chunk: tensor.Whole, Dir: topo.CW, Wavelength: 1},
		{Src: 0, Dst: 5, Chunk: tensor.Whole, Dir: topo.CW, Wavelength: 1},
	}}
	if _, err := CompileStep(10, st); err == nil {
		t.Fatal("double modulation accepted")
	}
}

func TestMRRUseFitsTeraRackHardware(t *testing.T) {
	// A TeraRack node carries 4 interfaces × 64 MRRs = 256 resonators;
	// the Table-1 configuration must fit comfortably.
	s, err := core.BuildWRHT(core.Config{N: 1024, Wavelengths: 64})
	if err != nil {
		t.Fatal(err)
	}
	if use := MRRUseCount(s); use > 256 {
		t.Fatalf("peak MRR use %d exceeds TeraRack's 256 resonators", use)
	}
}

func TestWrapAroundTransferVerifies(t *testing.T) {
	// A circuit crossing the index-0 seam must verify too.
	st := core.Step{Transfers: []core.Transfer{
		{Src: 8, Dst: 2, Chunk: tensor.Whole, Dir: topo.CW, Wavelength: 3},
	}}
	if err := VerifyStep(10, st); err != nil {
		t.Fatal(err)
	}
}
