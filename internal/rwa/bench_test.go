package rwa

import (
	"fmt"
	"math/rand"
	"testing"

	"wrht/internal/topo"
)

// BenchmarkRWAAssign measures wavelength assignment over R = N random
// requests on an N-node ring — the shape of the final all-to-all among
// representatives at large N. "bitset" is the production path (fresh
// index per call, as Assign does), "steady" reuses one Index and
// assignment buffer (zero allocations per op), and "legacy" is the
// quadratic reference oracle, capped at legacyBenchCap to keep the CI
// smoke run short. BENCH_rwa.json records the before/after numbers.

// legacyBenchCap bounds the ring sizes the quadratic reference-oracle
// benchmarks run at: past this the O(R²·w) oracle dominates bench wall
// time without telling us anything new, and the production-path
// benchmarks cover the large sizes alone.
const legacyBenchCap = 4096

func BenchmarkRWAAssign(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		r := topo.NewRing(n)
		reqs := randomRequests(rand.New(rand.NewSource(int64(n))), n, n)
		arcs := ArcsOf(r, reqs)
		for _, strat := range []Strategy{FirstFit, RandomFit} {
			b.Run(fmt.Sprintf("bitset/%v/N%d", strat, n), func(b *testing.B) {
				b.ReportAllocs()
				rng := rand.New(rand.NewSource(1))
				for i := 0; i < b.N; i++ {
					Assign(r, reqs, strat, rng)
				}
			})
			b.Run(fmt.Sprintf("steady/%v/N%d", strat, n), func(b *testing.B) {
				ix := NewIndex(r)
				asn := make(Assignment, len(reqs))
				rng := rand.New(rand.NewSource(1))
				ix.AssignInto(asn, reqs, arcs, strat, rng) // warm up capacity
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ix.AssignInto(asn, reqs, arcs, strat, rng)
				}
			})
			if n <= legacyBenchCap {
				b.Run(fmt.Sprintf("legacy/%v/N%d", strat, n), func(b *testing.B) {
					b.ReportAllocs()
					rng := rand.New(rand.NewSource(1))
					for i := 0; i < b.N; i++ {
						assignQuadratic(r, reqs, strat, rng)
					}
				})
			}
		}
	}
}

// BenchmarkRWAValidate measures conflict validation of a first-fit
// coloring of N random requests, bitset vs the quadratic oracle.
func BenchmarkRWAValidate(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		r := topo.NewRing(n)
		reqs := randomRequests(rand.New(rand.NewSource(int64(n))), n, n)
		arcs := ArcsOf(r, reqs)
		asn, used := Assign(r, reqs, FirstFit, nil)
		b.Run(fmt.Sprintf("bitset/N%d", n), func(b *testing.B) {
			ix := NewIndex(r)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := ix.Validate(reqs, arcs, asn, used); err != nil {
					b.Fatal(err)
				}
			}
		})
		if n <= legacyBenchCap {
			b.Run(fmt.Sprintf("legacy/N%d", n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := validateQuadratic(r, reqs, asn, used); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
