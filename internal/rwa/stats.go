package rwa

import "sync/atomic"

// Stats accumulates probe counters from one or more occupancy indexes.
// Attach it via Index.Stats; a nil Stats costs one pointer comparison
// per probe and no allocations (the fields are plain atomics, so one
// Stats may be shared by indexes on many goroutines — the experiment
// sweeps run independent engines concurrently). Counters are batched:
// each probe accumulates locally and publishes with one atomic add per
// field on exit, so the hot union loops stay untouched.
type Stats struct {
	// FirstFitCalls counts FirstFree probes (first-fit coloring).
	FirstFitCalls atomic.Int64
	// RandomFitCalls counts RandomFree probes (random-fit coloring).
	RandomFitCalls atomic.Int64
	// WordsScanned counts 64-wavelength words whose arc union was
	// computed across all fit probes.
	WordsScanned atomic.Int64
	// SaturatedWords counts scanned words whose union came back fully
	// occupied — the early-exit case the block summaries make nearly
	// free.
	SaturatedWords atomic.Int64
	// BiasedFitCalls counts FirstFreeAvoiding probes (boundary-biased
	// first-fit, used by the ir recolor pass).
	BiasedFitCalls atomic.Int64
	// BiasedFallbacks counts biased probes whose avoid-aware pick missed
	// the wavelength cap and fell back to plain first-fit.
	BiasedFallbacks atomic.Int64
	// ConflictProbes counts ConflictFree invocations (one per overlap
	// boundary the fabric engine considers).
	ConflictProbes atomic.Int64
	// ConflictsFound counts ConflictFree probes that detected a clash
	// (the boundary falls back to sequential setup-then-transmit).
	ConflictsFound atomic.Int64

	// Latency, when non-nil, receives every probe's wall-clock duration
	// in seconds (FirstFree, FirstFreeAvoiding, RandomFree,
	// ConflictFree). The sink must be safe for concurrent use —
	// obs.Histogram.Observe is the intended implementation. Set it
	// before the first probe; it is read without synchronization on the
	// hot path (a nil Latency adds one pointer comparison per probe).
	Latency interface{ Observe(float64) }
}

// Publish copies every counter into the given sink under the standard
// "rwa."-prefixed names. The sink is any func(name string, v int64) —
// in practice obs.Registry.Counter(name).Add — kept abstract so this
// package stays free of an observability dependency.
func (st *Stats) Publish(sink func(name string, v int64)) {
	if st == nil {
		return
	}
	sink("rwa.firstfit.calls", st.FirstFitCalls.Load())
	sink("rwa.randomfit.calls", st.RandomFitCalls.Load())
	sink("rwa.words.scanned", st.WordsScanned.Load())
	sink("rwa.words.saturated", st.SaturatedWords.Load())
	sink("rwa.biasedfit.calls", st.BiasedFitCalls.Load())
	sink("rwa.biasedfit.fallbacks", st.BiasedFallbacks.Load())
	sink("rwa.conflict.probes", st.ConflictProbes.Load())
	sink("rwa.conflict.found", st.ConflictsFound.Load())
}
