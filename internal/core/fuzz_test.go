package core

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzScheduleJSON fuzzes the schedule decoder against arbitrary bytes
// (it must never panic) and, for valid configurations, checks the
// round-trip identity.
func FuzzScheduleJSON(f *testing.F) {
	seed, err := BuildWRHT(Config{N: 15, Wavelengths: 2})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := seed.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"algorithm":"x","n":4,"steps":[]}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSchedule(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same value.
		var out bytes.Buffer
		if _, err := s.WriteTo(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		s2, err := ReadSchedule(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(s.Steps, s2.Steps) {
			t.Fatal("round trip changed the schedule")
		}
	})
}

// FuzzBuildWRHT fuzzes the constructor inputs: every accepted
// configuration must produce a schedule that passes both the analytic
// step count and conflict validation.
func FuzzBuildWRHT(f *testing.F) {
	f.Add(15, 2, 0)
	f.Add(1024, 64, 129)
	f.Add(3, 1, 2)
	f.Fuzz(func(t *testing.T, n, w, m int) {
		if n < 1 || n > 400 || w < 1 || w > 64 || m < 0 || m > 200 {
			t.Skip()
		}
		cfg := Config{N: n, Wavelengths: w, GroupSize: m}
		s, err := BuildWRHT(cfg)
		if err != nil {
			return
		}
		st, err := StepsWRHT(cfg)
		if err != nil {
			t.Fatalf("built but analysis failed: %v", err)
		}
		if s.NumSteps() != st.Total {
			t.Fatalf("steps %d != analysis %d", s.NumSteps(), st.Total)
		}
		if err := s.Validate(w); err != nil {
			t.Fatalf("accepted config produced invalid schedule: %v", err)
		}
	})
}
