// topology_compare: the same all-reduce payload across three fabrics.
//
//  1. Optical ring (TeraRack-style, Table 2) running WRHT and Ring.
//  2. Optical 32×32 torus (§6.1 extension) running the two-stage
//     row/column WRHT — fewer steps when wavelengths are scarce, because
//     each row is a short independent ring.
//  3. Electrical two-level fat-tree (Table 2) running Ring and recursive
//     halving/doubling, via the flow-level simulator.
//
// Reproduces the Fig-7 story plus the §6.1 discussion at one glance,
// written against the facade's Build/Simulate API: one constructor and
// one simulation entrypoint regardless of collective and fabric.
package main

import (
	"fmt"
	"log"

	"wrht"
	"wrht/internal/core"
	"wrht/internal/metrics"
	"wrht/internal/phys"
	"wrht/internal/topo"
)

func main() {
	log.SetFlags(0)
	const (
		n     = 1024
		waves = 8 // scarce wavelengths make the torus interesting
	)
	model := wrht.ResNet50()
	d := float64(model.GradBytes())
	p := wrht.DefaultOpticalParams()
	p.Wavelengths = waves

	table := &metrics.Table{
		Title:   fmt.Sprintf("%s gradient (%.0f MB), %d nodes, %d wavelengths", model.Name, d/1e6, n, waves),
		Headers: []string{"Fabric", "Algorithm", "Steps", "Time (ms)"},
	}

	// Optical ring: analytic profiles through the unified Simulate.
	wrhtProf, err := wrht.WRHTProfile(wrht.Config{N: n, Wavelengths: waves})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []struct {
		name string
		prof wrht.Profile
	}{{"WRHT", wrhtProf}, {"Ring", wrht.RingProfile(n)}} {
		res, err := wrht.Simulate(wrht.Optical, c.prof, d, wrht.WithOpticalParams(p))
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow("optical ring", c.name, fmt.Sprint(c.prof.NumSteps()), fmt.Sprintf("%.2f", res.Time*1e3))
	}

	// Optical torus (32×32): schedule-based timing through Build.
	tor := topo.NewTorus(32, 32)
	ts, err := wrht.Build(wrht.KindTorus, n, wrht.WithDims(32, 32), wrht.WithWavelengths(waves))
	if err != nil {
		log.Fatal(err)
	}
	if err := core.ValidateTorus(ts, tor, waves); err != nil {
		log.Fatal(err)
	}
	// Torus wavelength reuse is validated per row/column above, not
	// against the flat-ring budget, so skip the ring validator.
	tres, err := wrht.Simulate(wrht.Optical, ts, d,
		wrht.WithOpticalParams(p), wrht.WithoutValidation())
	if err != nil {
		log.Fatal(err)
	}
	table.AddRow("optical 32x32 torus", "WRHT rows+col", fmt.Sprint(ts.NumSteps()), fmt.Sprintf("%.2f", tres.Time*1e3))

	// Electrical fat-tree: same Simulate call, different backend.
	rd, err := wrht.Build(wrht.KindRD, n)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []struct {
		name  string
		sched *wrht.Schedule
	}{{"Ring", wrht.RingSchedule(n)}, {"RD", rd}} {
		res, err := wrht.Simulate(wrht.ElectricalFatTree, c.sched, d)
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow("electrical fat-tree", c.name, fmt.Sprint(c.sched.NumSteps()), fmt.Sprintf("%.2f", res.Time*1e3))
	}

	fmt.Println(table)

	// The torus's real advantage is physical (§4.4 + §6.1): its circuits
	// never span more than one row or column, so the worst-case insertion
	// loss is bounded by the row length instead of growing with N.
	flatM := core.Config{N: n, Wavelengths: waves}.EffectiveGroupSize()
	flatLen := phys.MaxCommLength(n, flatM)
	rowLen := phys.MaxCommLength(tor.Cols, flatM)
	fmt.Printf("max circuit length: flat ring %d interfaces vs torus %d (insertion-loss budget, §4.4);\n",
		flatLen, rowLen)
	fmt.Println("on the torus every row reduces in parallel on its own short waveguide (§6.1).")
}
