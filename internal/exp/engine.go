package exp

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/electrical"
	"wrht/internal/fabric"
	"wrht/internal/obs"
)

// engine executes one sweep: it owns the bounded worker pool, the
// per-sweep profile cache and the optical fabric backend. Every exported
// figure entry point builds a fresh engine, so memoized profiles never
// outlive a sweep and one figure's output cannot depend on what ran
// before it.
type engine struct {
	opts Options
	// name identifies the sweep ("fig4", "crossfabric", ...); it labels
	// the per-point latency histogram and the pprof goroutine labels.
	name     string
	workers  int
	profiles *collective.ProfileCache
	// optFab is the optical backend shared by every sweep point (it is
	// stateless); optFabErr defers parameter-validation failures to the
	// first timing call so newEngine stays infallible.
	optFab    fabric.Fabric
	optFabErr error
	// prof aggregates wall-clock spans into Options.Metrics (nil when
	// metrics are disabled); the histogram handles below are cached at
	// construction so the per-point Observe path takes no registry lock.
	prof       *obs.Profiler
	pointHist  *obs.Histogram
	optRunHist *obs.Histogram
	elRunHist  *obs.Histogram
	// pubHits/pubMisses/pubBuilds are the cache values already published
	// to Options.Metrics (see publishCacheMetrics).
	pubHits, pubMisses, pubBuilds int64
}

func newEngine(o Options, name string) *engine {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &engine{opts: o, name: name, workers: w, profiles: collective.NewProfileCache()}
	e.optFab, e.optFabErr = o.Optical.Fabric()
	e.prof = obs.NewProfiler(o.Metrics)
	e.pointHist = e.prof.Hist("exp.sweep.point.seconds", "sweep", name)
	e.optRunHist = e.prof.Hist("fabric.run.seconds", "fabric", "optical")
	e.elRunHist = e.prof.Hist("fabric.run.seconds", "fabric", "electrical")
	// Worker busy time is wall clock too; flag it for determinism checks.
	o.Metrics.MarkVolatile("exp.sweep.busy_seconds")
	return e
}

// sweep evaluates fn(i) for every i in [0, n) on e's worker pool and
// returns the values in index order, so figures assembled from the
// result are byte-identical to a sequential run. Point functions must
// be pure (they may share e's caches, which synchronise internally).
// On failure the lowest-index error is returned — again independent
// of goroutine scheduling.
//
// With Options.Metrics set, the sweep counts points and accumulates
// per-worker busy time (wall clock; metrics are not byte-stability
// constrained). With Options.Trace carrying a Clock, each point also
// emits a progress span on its worker's track — a diagnostic timeline
// of pool utilisation, separate from the simulated-time traces.
func sweep[T any](e *engine, n int, fn func(i int) (T, error)) ([]T, error) {
	points := e.opts.Metrics.Counter("exp.sweep.points")
	busy := e.opts.Metrics.Gauge("exp.sweep.busy_seconds")
	ctx := e.opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	tr := e.opts.Trace
	if tr != nil && tr.Clock == nil {
		tr = nil // sweep spans are wall-clock-only; without a clock, skip
	}
	run := func(worker, i int) (T, error) {
		// Cancellation is checked at point boundaries: a canceled sweep
		// stops starting new points (in-flight ones finish) and returns
		// the context's error at the lowest unstarted index.
		if err := ctx.Err(); err != nil {
			var zero T
			return zero, err
		}
		var start float64
		if tr != nil {
			start = tr.Clock()
		}
		w0 := time.Now()
		v, err := fn(i)
		sec := time.Since(w0).Seconds()
		busy.Add(sec)
		e.pointHist.Observe(sec)
		points.Inc()
		if tr != nil {
			tr.Span(obs.Track{Process: "sweep", Name: fmt.Sprintf("worker %d", worker)},
				fmt.Sprintf("point %d", i), start, tr.Clock()-start, nil)
		}
		return v, err
	}
	// Sweep workers carry pprof labels so a CPU profile captured during a
	// run (wrhtsim -promaddr + go tool pprof) attributes samples to the
	// sweep and worker that burned them.
	labeled := func(worker int, body func()) {
		pprof.Do(context.Background(),
			pprof.Labels("sweep", e.name, "worker", strconv.Itoa(worker)),
			func(context.Context) { body() })
	}
	vals := make([]T, n)
	errs := make([]error, n)
	workers := min(e.workers, n)
	switch {
	case workers <= 1:
		labeled(0, func() {
			for i := 0; i < n; i++ {
				vals[i], errs[i] = run(0, i)
			}
		})
	case e.opts.Pool != nil:
		// Shared-pool path: points fan out onto the process-wide pool
		// (one compute bound across all concurrent sweeps) instead of
		// per-sweep goroutines. Identical output either way.
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			if err := e.opts.Pool.Submit(ctx, func(w int) {
				defer wg.Done()
				labeled(w, func() { vals[i], errs[i] = run(w, i) })
			}); err != nil {
				errs[i] = err
				wg.Done()
			}
		}
		wg.Wait()
	default:
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			w := w
			go func() {
				defer wg.Done()
				labeled(w, func() {
					for i := range idx {
						vals[i], errs[i] = run(w, i)
					}
				})
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	e.publishCacheMetrics()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: sweep point %d: %w", i, err)
		}
	}
	return vals, nil
}

// publishCacheMetrics adds the profile cache's activity since the last
// publication to the registry. Called from the sweep coordinator (never
// concurrently for one engine), so plain delta fields suffice.
func (e *engine) publishCacheMetrics() {
	m := e.opts.Metrics
	if m == nil {
		return
	}
	h, mi, b := e.profiles.Hits(), e.profiles.Misses(), e.profiles.Builds()
	m.Counter("collective.profile_cache.hits").Add(h - e.pubHits)
	m.Counter("collective.profile_cache.misses").Add(mi - e.pubMisses)
	m.Counter("collective.profile_cache.builds").Add(b - e.pubBuilds)
	e.pubHits, e.pubMisses, e.pubBuilds = h, mi, b
}

// wrht returns the memoized WRHT profile for n nodes, w wavelengths and
// an optional explicit group size m (0 = Lemma-1 optimum).
func (e *engine) wrht(n, w, m int) (core.Profile, error) {
	pr, err := e.profiles.WRHT(core.Config{N: n, Wavelengths: w, GroupSize: m})
	if err != nil {
		return core.Profile{}, fmt.Errorf("wrht profile (N=%d, w=%d, m=%d): %w", n, w, m, err)
	}
	return pr, nil
}

func (e *engine) ring(n int) core.Profile        { return e.profiles.Ring(n) }
func (e *engine) hring(n, m, w int) core.Profile { return e.profiles.HRing(n, m, w) }
func (e *engine) bt(n int) core.Profile          { return e.profiles.BT(n) }

// opticalTime times one collective profile for one model on the
// optical system through the shared fabric engine.
func (e *engine) opticalTime(pr core.Profile, m dnn.Model) (float64, error) {
	res, err := e.opticalBuckets(pr, e.opts.payloads(m))
	if err != nil {
		return 0, fmt.Errorf("optical timing (%s, %s): %w", pr.Algorithm, m.Name, err)
	}
	return res.Time, nil
}

// opticalBuckets runs a profile over per-bucket payloads on the optical
// fabric. Fabric backends are stateless, so one instance serves all
// sweep workers.
func (e *engine) opticalBuckets(pr core.Profile, buckets []float64) (fabric.Result, error) {
	if e.optFabErr != nil {
		return fabric.Result{}, e.optFabErr
	}
	start := e.prof.Start()
	res, err := fabric.Engine{Fabric: e.optFab}.RunBuckets(pr, buckets)
	e.prof.End(e.optRunHist, start)
	return res, err
}

// electricalTime times one collective schedule for one model on the
// fat-tree. The backend is safe for concurrent use: the engine keeps all
// mutable state (the step memo, the fluid-model flows) local to a run.
func (e *engine) electricalTime(nw *electrical.Network, s *core.Schedule, m dnn.Model) (float64, error) {
	eng := fabric.Engine{Fabric: nw.Fabric()}
	var total float64
	for _, d := range e.opts.payloads(m) {
		start := e.prof.Start()
		res, err := eng.RunSchedule(s, d)
		e.prof.End(e.elRunHist, start)
		if err != nil {
			return 0, fmt.Errorf("electrical timing (%s, %s): %w", s.Algorithm, m.Name, err)
		}
		total += res.Time
	}
	return total, nil
}

// baselineModel finds the paper's normalization workload by name, so
// reordering dnn.Workloads() cannot silently change every normalized
// figure.
func baselineModel(models []dnn.Model, name string) (dnn.Model, error) {
	for _, m := range models {
		if m.Name == name {
			return m, nil
		}
	}
	return dnn.Model{}, fmt.Errorf("exp: baseline workload %q not in dnn.Workloads()", name)
}
