package rwa

import (
	"fmt"
	"slices"

	"wrht/internal/topo"
)

// Delta updates between consecutive schedule steps. Validating a
// schedule used to Reset+replay the whole occupancy index per step;
// consecutive steps of real collectives share most of their circuits
// (the ring algorithms reuse identical neighbour circuits every step,
// WRHT's broadcast replays its gathers), so Advance applies only the
// occupy/release diff. Advance ≡ Reset+replay is pinned bit-identically
// by the differential tests in delta_test.go and the FuzzAssign
// Release coverage.

// Circuit is one occupied (direction, arc, wavelength) resource — the
// unit the delta API diffs between steps.
type Circuit struct {
	Dir topo.Direction
	Arc topo.Arc
	W   int
}

// Release clears wavelength w on every segment of arc a in direction
// dir — the inverse of Occupy — repairing the 64-segment block
// summaries by rescanning each affected block. Releasing a circuit that
// shares cells with a pre-occupied (Preoccupy) mask or another live
// circuit clears those cells too: the caller must only release circuits
// it occupied and that were conflict-free when occupied (Advance's
// contract), under which the cells are exclusively owned.
func (ix *Index) Release(dir topo.Direction, a topo.Arc, w int) {
	if w < 0 {
		panic(fmt.Sprintf("rwa: negative wavelength %d", w))
	}
	word := w >> 6
	if word >= ix.words {
		return // never occupied this high
	}
	lo1, hi1, lo2, hi2 := ix.arcRanges(a)
	mask := uint64(1) << (w & 63)
	occRow := ix.occ[dir][word*ix.n : (word+1)*ix.n]
	blkRow := ix.blk[dir][word*ix.nb : (word+1)*ix.nb]
	unset := func(lo, hi int) {
		for s := lo; s < hi; s++ {
			occRow[s] &^= mask
		}
		for j := lo >> 6; j<<6 < hi; j++ {
			// The block summary bit stays set iff any segment of the
			// block — including those outside [lo, hi) — still holds it.
			blo, bhi := j<<6, min(j<<6+64, ix.n)
			live := false
			for s := blo; s < bhi; s++ {
				if occRow[s]&mask != 0 {
					live = true
					break
				}
			}
			if !live {
				blkRow[j] &^= mask
			}
		}
	}
	unset(lo1, hi1)
	if hi2 > lo2 {
		unset(lo2, hi2)
	}
}

// compareCircuits is the total order the sorted-merge diff runs under.
func compareCircuits(a, b Circuit) int {
	if a.Dir != b.Dir {
		return int(a.Dir) - int(b.Dir)
	}
	if a.W != b.W {
		return a.W - b.W
	}
	if a.Arc.Lo != b.Arc.Lo {
		return a.Arc.Lo - b.Arc.Lo
	}
	if a.Arc.Len != b.Arc.Len {
		return a.Arc.Len - b.Arc.Len
	}
	return a.Arc.N - b.Arc.N
}

// Advance moves the index from "prev's circuits occupied" to "next's
// circuits occupied" by applying the multiset diff: circuits present in
// both steps are untouched, prev-only circuits are released, next-only
// circuits are occupied. It assumes prev was conflict-free when
// occupied and next is conflict-free (use AdvanceChecked otherwise);
// the resulting occupancy is bit-identical to Reset + re-occupying
// next. Pre-occupied (Preoccupy) cells are preserved: a valid prev
// never shares cells with them, so no release touches them.
//
// Both slices are SORTED IN PLACE (diffing without reordering would
// need private copies — at million-transfer steps that is tens of
// megabytes of scratch, exactly the footprint the delta path exists to
// avoid). The circuit multisets are unchanged, so callers that treat
// the slices as sets, like StepValidator, pass them straight back as
// the next call's prev. Advance performs zero heap allocations.
func (ix *Index) Advance(prev, next []Circuit) {
	ix.advance(prev, next, false)
}

// AdvanceChecked is Advance, additionally probing each newly occupied
// circuit against the live occupancy (shared circuits, earlier
// next-only circuits, and pre-occupied masked cells). It returns false
// on the first conflict, leaving the index partially advanced — callers
// then re-derive authoritative state (and the legacy-identical error)
// via Validate, which resets on entry.
func (ix *Index) AdvanceChecked(prev, next []Circuit) bool {
	return ix.advance(prev, next, true)
}

func (ix *Index) advance(prev, next []Circuit, check bool) bool {
	slices.SortFunc(prev, compareCircuits)
	slices.SortFunc(next, compareCircuits)
	// Two sorted-merge passes over the multiset diff. Every release must
	// land before any occupy: a next-only circuit may claim cells a
	// prev-only circuit is about to free, and occupying first would
	// misreport a conflict.
	i, j := 0, 0
	for i < len(prev) {
		switch {
		case j >= len(next) || compareCircuits(prev[i], next[j]) < 0:
			ix.Release(prev[i].Dir, prev[i].Arc, prev[i].W)
			i++
		case compareCircuits(prev[i], next[j]) > 0:
			j++
		default: // shared between the steps: keep as-is
			i++
			j++
		}
	}
	i, j = 0, 0
	for j < len(next) {
		switch {
		case i >= len(prev) || compareCircuits(prev[i], next[j]) > 0:
			c := next[j]
			if check && ix.Occupied(c.Dir, c.Arc, c.W) {
				return false
			}
			ix.Occupy(c.Dir, c.Arc, c.W)
			j++
		case compareCircuits(prev[i], next[j]) < 0:
			i++
		default:
			i++
			j++
		}
	}
	return true
}

// EqualOccupancy reports whether two indexes over the same ring size
// hold exactly the same occupied cells and block summaries — the
// differential-testing probe pinning Advance bit-identical to
// Reset+replay. Wavelength words beyond either index's in-use range
// compare as zero, so an index that grew and then released everything
// high compares equal to one that never grew.
func (ix *Index) EqualOccupancy(other *Index) bool {
	if ix.n != other.n {
		return false
	}
	words := max(ix.words, other.words)
	rowOf := func(x *Index, s []uint64, k, rowLen int) []uint64 {
		if k >= x.words {
			return nil
		}
		return s[k*rowLen : (k+1)*rowLen]
	}
	eq := func(a, b []uint64, rowLen int) bool {
		for s := 0; s < rowLen; s++ {
			var av, bv uint64
			if a != nil {
				av = a[s]
			}
			if b != nil {
				bv = b[s]
			}
			if av != bv {
				return false
			}
		}
		return true
	}
	for d := range ix.occ {
		for k := 0; k < words; k++ {
			if !eq(rowOf(ix, ix.occ[d], k, ix.n), rowOf(other, other.occ[d], k, other.n), ix.n) {
				return false
			}
			if !eq(rowOf(ix, ix.blk[d], k, ix.nb), rowOf(other, other.blk[d], k, other.nb), ix.nb) {
				return false
			}
		}
	}
	return true
}
