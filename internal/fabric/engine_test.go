package fabric

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
	"wrht/internal/trace"
)

// stubFabric is a minimal deterministic backend: setup is a constant,
// transmission is perByte times the step's largest payload.
type stubFabric struct {
	setup     float64
	perByte   float64
	keyed     bool
	budget    int
	budgetErr error
	checkErr  error
	costCalls int
}

func (f *stubFabric) Name() string                       { return "stub" }
func (f *stubFabric) CheckSchedule(*core.Schedule) error { return f.checkErr }
func (f *stubFabric) CircuitBudget(bool) (int, error)    { return f.budget, f.budgetErr }
func (f *stubFabric) GroupCost(bytes float64) StepCost {
	ser := bytes * f.perByte
	return StepCost{Setup: f.setup, Serialization: ser, Total: f.setup + ser, MaxBytes: bytes}
}

func (f *stubFabric) StepCost(st core.Step, elems int) StepCost {
	f.costCalls++
	var maxBytes float64
	for _, t := range st.Transfers {
		if b := float64(t.Chunk.Bytes(elems)); b > maxBytes {
			maxBytes = b
		}
	}
	return f.GroupCost(maxBytes)
}

func (f *stubFabric) StepKey(st core.Step, elems int) (string, bool) {
	if !f.keyed {
		return "", false
	}
	var sb strings.Builder
	for _, t := range st.Transfers {
		fmt.Fprintf(&sb, "%d>%d:%d;", t.Src, t.Dst, t.Chunk.Bytes(elems))
	}
	return sb.String(), true
}

func whole() tensor.Chunk { return tensor.Chunk{Index: 0, Of: 1} }

// step builds a one-transfer step src->dst on wavelength w, CW.
func step(src, dst, w int) core.Step {
	return core.Step{Transfers: []core.Transfer{
		{Src: src, Dst: dst, Chunk: whole(), Dir: topo.CW, Wavelength: w},
	}}
}

func sched(n int, steps ...core.Step) *core.Schedule {
	return &core.Schedule{Algorithm: "test", Ring: topo.NewRing(n), Steps: steps}
}

func TestMemoizationSolvesIdenticalStepsOnce(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 1, keyed: true}
	s := sched(8, step(0, 1, 0), step(0, 1, 0), step(2, 3, 0), step(0, 1, 0))
	res, err := Engine{Fabric: f}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	if f.costCalls != 2 {
		t.Errorf("StepCost called %d times for 2 distinct steps", f.costCalls)
	}
	if res.Steps != 4 || len(res.PerStep) != 4 {
		t.Errorf("result covers %d/%d steps, want 4/4", res.Steps, len(res.PerStep))
	}
	f2 := &stubFabric{setup: 1, perByte: 1}
	res2, err := Engine{Fabric: f2}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	if f2.costCalls != 4 {
		t.Errorf("unkeyed fabric should cost every step, got %d calls", f2.costCalls)
	}
	if res2.Time != res.Time {
		t.Errorf("memoized time %g != unmemoized %g", res.Time, res2.Time)
	}
}

func TestOverlapHidesSetupUnderDisjointPreviousStep(t *testing.T) {
	// Steps 0->1 and 2->3 share (CW, λ0) but their ring arcs are
	// disjoint, so step 2's setup can retune under step 1's transmission.
	f := &stubFabric{setup: 1, perByte: 0.1}
	s := sched(8, step(0, 1, 0), step(2, 3, 0))
	dBytes := 400.0 // transmission 40 >> setup 1
	base, err := Engine{Fabric: f}.RunSchedule(s, dBytes)
	if err != nil {
		t.Fatal(err)
	}
	over, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s, dBytes)
	if err != nil {
		t.Fatal(err)
	}
	if over.OverlapSaved != f.setup {
		t.Errorf("OverlapSaved = %g, want full setup %g", over.OverlapSaved, f.setup)
	}
	if got, want := base.Time-over.Time, over.OverlapSaved; got != want {
		t.Errorf("time drop %g != OverlapSaved %g", got, want)
	}
	if over.PerStep[0].Overlapped != 0 {
		t.Error("first step can never overlap: there is no previous transmission")
	}
	if over.PerStep[1].Overlapped != f.setup {
		t.Errorf("step 1 overlapped %g, want %g", over.PerStep[1].Overlapped, f.setup)
	}
	// OverheadTime still reports the full setup cost; only Time shrinks.
	if over.OverheadTime != base.OverheadTime {
		t.Errorf("OverheadTime changed under overlap: %g != %g", over.OverheadTime, base.OverheadTime)
	}
}

func TestOverlapClampsToPreviousTransmission(t *testing.T) {
	// Transmission 0.4 < setup 1: only 0.4 of the setup can hide.
	f := &stubFabric{setup: 1, perByte: 0.001}
	s := sched(8, step(0, 1, 0), step(2, 3, 0))
	over, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	// The engine recovers the previous transmission as Total − Setup,
	// so the expectation mirrors that expression.
	wantHidden := (f.setup + 400*0.001) - f.setup
	if over.OverlapSaved != wantHidden {
		t.Errorf("OverlapSaved = %g, want clamp to previous transmission %g", over.OverlapSaved, wantHidden)
	}
}

func TestOverlapRejectedOnConflictingSteps(t *testing.T) {
	// Arcs [0,4) and [2,6) overlap on the same (CW, λ0) resources: the
	// rwa validator must reject the boundary and the engine must fall
	// back to sequential setup.
	f := &stubFabric{setup: 1, perByte: 0.1}
	s := sched(8, step(0, 4, 0), step(2, 6, 0))
	over, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	if over.OverlapSaved != 0 {
		t.Errorf("conflicting circuits overlapped: saved %g", over.OverlapSaved)
	}
	// Same arcs on different wavelengths are disjoint again.
	s2 := sched(8, step(0, 4, 0), step(2, 6, 1))
	over2, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s2, 400)
	if err != nil {
		t.Fatal(err)
	}
	if over2.OverlapSaved != f.setup {
		t.Errorf("distinct-wavelength circuits should overlap, saved %g", over2.OverlapSaved)
	}
}

func TestOverlapNoopWhenSetupFree(t *testing.T) {
	f := &stubFabric{setup: 0, perByte: 0.1}
	s := sched(8, step(0, 1, 0), step(2, 3, 0))
	over, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	if over.OverlapSaved != 0 {
		t.Errorf("setup-free fabric saved %g", over.OverlapSaved)
	}
}

func TestProfileRunRejectsOverlap(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 1}
	pr := core.Profile{Algorithm: "p", Groups: []core.ProfileGroup{{Steps: 2, FracOfD: 1}}}
	if _, err := (Engine{Fabric: f, Opts: Options{Overlap: true}}).RunProfile(pr, 100); err == nil {
		t.Fatal("profile run accepted overlap mode")
	}
	res, err := Engine{Fabric: f}.RunProfile(pr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * (1 + 100.0); res.Time != want {
		t.Errorf("profile time %g, want %g", res.Time, want)
	}
}

func TestEngineSurfacesFabricErrors(t *testing.T) {
	boom := errors.New("boom")
	s := sched(8, step(0, 1, 0))
	if _, err := (Engine{Fabric: &stubFabric{checkErr: boom}}).RunSchedule(s, 100); !errors.Is(err, boom) {
		t.Errorf("CheckSchedule error lost: %v", err)
	}
	if _, err := (Engine{Fabric: &stubFabric{budgetErr: boom}}).RunSchedule(s, 100); !errors.Is(err, boom) {
		t.Errorf("CircuitBudget error lost: %v", err)
	}
	pr := core.Profile{Groups: []core.ProfileGroup{{Steps: 1, FracOfD: 1}}}
	if _, err := (Engine{Fabric: &stubFabric{budgetErr: boom}}).RunProfile(pr, 100); !errors.Is(err, boom) {
		t.Errorf("profile CircuitBudget error lost: %v", err)
	}
}

func TestValidateWavelengthsEnforcesBudget(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 1, budget: 1}
	s := sched(8, step(0, 1, 3)) // wavelength 3 beyond budget 1
	if _, err := (Engine{Fabric: f, Opts: Options{ValidateWavelengths: true}}).RunSchedule(s, 100); err == nil {
		t.Fatal("over-budget wavelength accepted")
	}
	if _, err := (Engine{Fabric: f}).RunSchedule(s, 100); err != nil {
		t.Fatalf("validation off should not reject: %v", err)
	}
}

func TestBreakdownRunShape(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 0.1}
	s := sched(8, step(0, 1, 0), step(2, 3, 0))
	res, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	run := BreakdownRun("breakdown", res)
	bySeries := map[string][]trace.Point{}
	for _, s := range run.Series {
		bySeries[s.Name] = s.Points
	}
	for _, name := range []string{"reconfig", "serialization", "oeo", "router-delay", "overlapped"} {
		if len(bySeries[name]) != 2 {
			t.Errorf("series %q has %d points, want 2", name, len(bySeries[name]))
		}
	}
	if pt := bySeries["overlapped"][1]; pt.Y != f.setup || !strings.HasPrefix(pt.X, "1:") {
		t.Errorf("overlapped[1] = %+v, want setup %g hidden at step 1", pt, f.setup)
	}
	if run.Scalars["overlap-saved"] != res.OverlapSaved || run.Scalars["time"] != res.Time {
		t.Errorf("scalars %v disagree with result %+v", run.Scalars, res)
	}
	if run.Params["fabric"] != "stub" || run.Params["algorithm"] != "test" {
		t.Errorf("params %v", run.Params)
	}
}

func TestRunBucketsSumsProfiles(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 1}
	pr := core.Profile{Algorithm: "p", Groups: []core.ProfileGroup{{Steps: 3, FracOfD: 0.5}}}
	res, err := Engine{Fabric: f}.RunBuckets(pr, []float64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	one, _ := Engine{Fabric: f}.RunProfile(pr, 100)
	two, _ := Engine{Fabric: f}.RunProfile(pr, 200)
	if res.Time != one.Time+two.Time || res.Steps != one.Steps+two.Steps {
		t.Errorf("buckets %+v != %+v + %+v", res, one, two)
	}
}
