// Package rwa implements routing and wavelength assignment (RWA) for
// circuits on the optical ring, per §4.1.2 of the paper: communications
// inside disjoint subgroups are independent, so wavelengths are reused
// across subgroups, and within a conflict set the First Fit [21] or
// Random Fit [31] heuristics assign wavelengths.
//
// A circuit on a ring occupies a contiguous arc of fiber segments in one
// travel direction. Two circuits conflict iff they travel the same
// direction and their arcs share a segment; only then must their
// wavelengths differ. The TeraRack node has an independent Tx/Rx array
// per direction, so circuits in opposite directions never conflict even
// on the same wavelength (§3.3).
//
// Assignment and validation run on a bitset occupancy Index (one
// wavelength bitmask per fiber segment per direction) instead of pairwise
// arc-overlap checks, so both cost O(R · arcLen · λ/64) rather than
// O(R²·λ). The original quadratic implementation survives in legacy.go as
// a reference oracle; the production path is bit-identical to it.
package rwa

import (
	"fmt"
	"math/rand"

	"wrht/internal/topo"
)

// Request is one circuit to be colored.
type Request struct {
	Src, Dst int
	Dir      topo.Direction
}

// Assignment maps each request (by position) to a wavelength index.
type Assignment []int

// Strategy selects the wavelength-assignment heuristic.
type Strategy int

const (
	// FirstFit assigns the lowest-index wavelength free on every segment
	// of the circuit's arc.
	FirstFit Strategy = iota
	// RandomFit assigns a uniformly random wavelength among those free on
	// the circuit's arc.
	RandomFit
)

func (s Strategy) String() string {
	switch s {
	case FirstFit:
		return "first-fit"
	case RandomFit:
		return "random-fit"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ArcsOf returns the fiber arc occupied by each request on ring r.
// Callers that both assign and validate a request set compute the arcs
// once and pass them to AssignArcs/ValidateArcs.
func ArcsOf(r topo.Ring, reqs []Request) []topo.Arc {
	arcs := make([]topo.Arc, len(reqs))
	for i, q := range reqs {
		arcs[i] = r.ArcOf(q.Src, q.Dst, q.Dir)
	}
	return arcs
}

// Assign colors the requests on ring r using the given strategy. rng is
// required for RandomFit and ignored for FirstFit. The returned
// assignment uses wavelength indices starting at 0; the second result is
// the number of distinct wavelengths used (max index + 1).
//
// Assign is greedy in request order. For the nested same-direction arcs
// produced by WRHT's grouped gathers, first-fit is optimal (the conflict
// graph per direction is an interval graph within each group and groups
// are segment-disjoint).
func Assign(r topo.Ring, reqs []Request, strat Strategy, rng *rand.Rand) (Assignment, int) {
	return AssignArcs(r, reqs, ArcsOf(r, reqs), strat, rng)
}

// AssignArcs is Assign with the request arcs already computed
// (arcs[i] = r.ArcOf(reqs[i]...)).
func AssignArcs(r topo.Ring, reqs []Request, arcs []topo.Arc, strat Strategy, rng *rand.Rand) (Assignment, int) {
	asn := make(Assignment, len(reqs))
	used := NewIndex(r).AssignInto(asn, reqs, arcs, strat, rng)
	return asn, used
}

// Conflict describes a wavelength clash between two circuits.
type Conflict struct {
	I, J       int // request indices
	Wavelength int
}

func (c Conflict) Error() string {
	return fmt.Sprintf("rwa: requests %d and %d share wavelength %d on overlapping same-direction arcs", c.I, c.J, c.Wavelength)
}

// Validate checks that the assignment is conflict-free on ring r and that
// every wavelength index is within [0, wavelengths). A wavelengths value
// of 0 disables the range check.
func Validate(r topo.Ring, reqs []Request, asn Assignment, wavelengths int) error {
	if len(reqs) != len(asn) {
		return fmt.Errorf("rwa: %d requests but %d assignments", len(reqs), len(asn))
	}
	return ValidateArcs(r, reqs, ArcsOf(r, reqs), asn, wavelengths)
}

// ValidateArcs is Validate with the request arcs already computed.
func ValidateArcs(r topo.Ring, reqs []Request, arcs []topo.Arc, asn Assignment, wavelengths int) error {
	return NewIndex(r).Validate(reqs, arcs, asn, wavelengths)
}
