// Command wrhtsim regenerates the paper's evaluation: each subcommand
// reproduces one table or figure of
// "WRHT: Efficient All-reduce for Distributed DNN Training in Optical
// Interconnect Systems" (ICPP 2023) on the in-repo optical and
// electrical simulators.
//
// Usage:
//
//	wrhtsim [-granularity fused|bucketed] <table1|fig4|fig5|fig6|fig7|constraints|crossover|crossfabric|faults|hybrid|extras|stragglers|overlap|plan|schedule|build|all>
//
// Flags may also follow the subcommand (`wrhtsim faults -n 64`).
//
// The faults subcommand sweeps WRHT completion time against dead
// wavelengths (internal/exp.Degradation): schedules rebuilt around the
// fault mask upfront versus the same faults injected mid-run through
// the engine's retry-with-reschedule path. Without -n it covers the
// paper trio N ∈ {64, 1024, 4096}.
//
// For the crossfabric, overlap, faults, plan and build subcommands,
// -json writes the structured result in the versioned internal/api
// schema — byte-identical to the body the wrhtd daemon serves for the
// equivalent /v1/sweep, /v1/plan or /v1/build request (the parity test
// in this package pins that); for the figure subcommands it writes the
// raw figure series.
//
// The overlap subcommand compares the engine's opportunistic overlap
// mode against schedules rewritten by the internal/ir pass pipeline
// (DESIGN.md §2.5), reporting hidden-reconfig counts, hidden setup
// time and total time per ring size. Without -n it covers N ∈ {1024,
// 4096}. -passes selects the pipeline ("all", "none", or a
// comma-separated subset of reorder, recolor, split); -check makes the
// run exit nonzero unless the passes strictly beat the baseline
// hidden-reconfig count at every point (the CI smoke gate).
//
// The plan subcommand sweeps the internal/plan cost-model planner for
// the final all-to-all over an (r, a) grid at the -w budget (DESIGN.md
// §2.7): every candidate plan is priced analytically and re-simulated
// on the engine, and the table reports the chosen family, predicted
// and simulated times, and the unstriped one-shot / gather-fallback
// comparators. A second table measures the planner rescue on the named
// fallback configurations (N=256 w=8, N=1024 w=16). -r and -a take
// comma-separated replica counts and reconfiguration delays (us), -d
// the payload in MB; -check exits nonzero unless predicted == simulated
// argmin at every point and every rescue speedup exceeds 1 (the CI
// gate); -json dumps the swept points and rescue rows.
//
// The build subcommand constructs and validates the -n/-w/-m WRHT
// schedule without simulating it — the at-scale smoke test for the
// streaming pipeline. -stream consumes the schedule as a step stream
// (peak memory O(max step) + O(index), so million-node rings fit
// comfortably); -memstats reports the measured peak live heap and
// bytes/node for either mode. Example:
//
//	wrhtsim build -n 1048576 -w 64 -stream -memstats
//
// -cpuprofile and -memprofile write pprof profiles covering the run
// (any subcommand), for `go tool pprof`.
//
// -trace writes a Chrome Trace Event / Perfetto timeline of the run
// (open it at https://ui.perfetto.dev): for crossfabric the simulated
// per-step timeline of every (algorithm, mode) cell, byte-identical
// across runs; for the figure sweeps a wall-clock diagnostic of the
// worker pool.
//
// -metrics dumps the metric registry on exit ("-" for stdout), by
// default in the Prometheus text exposition format;
// -metrics-format=legacy restores the old sorted name/value dump (a
// .json suffix for a JSON snapshot). -prom writes the Prometheus
// exposition to a file regardless of -metrics, and -promaddr serves
// /metrics (append ?reset=1 for snapshot-and-reset delta scrapes) plus
// net/http/pprof for the run's duration:
//
//	wrhtsim -promaddr :9090 fig5 &
//	curl localhost:9090/metrics
//	go tool pprof "http://localhost:9090/debug/pprof/profile?seconds=5"
//
// Any metrics-enabled run also prints a wall-clock latency summary
// (p50/p99/max per histogram series) on exit.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"wrht"
	"wrht/cmd/internal/cliflags"
	"wrht/internal/api"
	"wrht/internal/core"
	"wrht/internal/daemon"
	"wrht/internal/dnn"
	"wrht/internal/exp"
	"wrht/internal/metrics"
	"wrht/internal/obs"
	"wrht/internal/optical"
	"wrht/internal/parallel"
	"wrht/internal/trace"
	"wrht/internal/workload"
)

// fatal prints the error and returns the failure exit code; run's
// callers (not os.Exit) unwind so the pprof writers always flush.
func fatal(err error) int {
	fmt.Fprintf(os.Stderr, "wrhtsim: %v\n", err)
	return 1
}

// apiFatal reports a typed API error the way run has always reported
// plain ones: message only — the code is an HTTP-surface concern.
func apiFatal(aerr *api.Error) int {
	return fatal(errors.New(aerr.Message))
}

// writeJSON encodes v (an internal/api response — the same bytes wrhtd
// serves for the equivalent request) to path.
func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := api.Encode(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// intList and floatList parse the comma-separated -r/-a grid flags.
func intList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func floatList(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	gran := flag.String("granularity", "fused", "all-reduce invocation granularity: fused or bucketed")
	shared := cliflags.Register(flag.CommandLine,
		cliflags.Workers|cliflags.JSON|cliflags.Trace|cliflags.Metrics|cliflags.Prom|cliflags.PromServe)
	schedN := flag.Int("n", 64, "schedule/crossfabric/faults subcommands: ring size")
	schedW := flag.Int("w", 8, "schedule/crossfabric/faults subcommands: wavelengths")
	schedM := flag.Int("m", 0, "schedule subcommand: grouped nodes (0 = optimal)")
	payloadMB := flag.Float64("d", 100, "crossfabric/faults/overlap subcommands: payload per node in MB")
	stream := flag.Bool("stream", false, "build subcommand: stream-and-consume instead of materializing the schedule")
	memstats := flag.Bool("memstats", false, "build subcommand: report peak live heap and bytes/node for the construction")
	passSpec := flag.String("passes", "all", "overlap subcommand: IR passes to run (all, none, or comma-separated reorder,recolor,split)")
	check := flag.Bool("check", false, "overlap/plan subcommands: exit nonzero unless the gate holds at every point")
	planR := flag.String("r", "8,16,32", "plan subcommand: comma-separated representative counts")
	planA := flag.String("a", "25", "plan subcommand: comma-separated reconfiguration delays in µs")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wrhtsim [-granularity fused|bucketed] <table1|fig4|fig5|fig6|fig7|constraints|crossover|crossfabric|faults|hybrid|extras|stragglers|overlap|plan|schedule|build|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmdArg := flag.Arg(0)
	if flag.NArg() > 1 {
		// Flags may follow the subcommand: `wrhtsim faults -n 64`.
		flag.CommandLine.Parse(flag.Args()[1:])
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
	}
	nSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "n" {
			nSet = true
		}
	})
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	code := run(runConfig{
		cmd:           cmdArg,
		nSet:          nSet,
		granularity:   *gran,
		workers:       shared.Workers,
		jsonOut:       shared.JSONOut,
		n:             *schedN,
		w:             *schedW,
		m:             *schedM,
		payloadMB:     *payloadMB,
		stream:        *stream,
		memstats:      *memstats,
		passes:        *passSpec,
		check:         *check,
		planR:         *planR,
		planA:         *planA,
		tracePath:     shared.TracePath,
		metricsPath:   shared.MetricsPath,
		metricsFormat: shared.MetricsFormat,
		promPath:      shared.PromPath,
		promAddr:      shared.PromAddr,
	})
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	os.Exit(code)
}

// runConfig carries one invocation's resolved flags, so tests can
// drive run without the flag package.
type runConfig struct {
	cmd         string
	granularity string
	workers     int
	jsonOut     string
	n, w, m     int
	// nSet records whether -n was given explicitly; the faults sweep
	// covers the paper trio {64, 1024, 4096} otherwise.
	nSet      bool
	payloadMB float64
	// stream/memstats drive the build subcommand: streamed vs
	// materialized construction and the memory report.
	stream   bool
	memstats bool
	// passes/check drive the overlap subcommand: the IR pass selection
	// and the strict-improvement gate (check also gates plan).
	passes string
	check  bool
	// planR/planA drive the plan subcommand: comma-separated
	// representative counts and reconfiguration delays (µs).
	planR, planA string
	tracePath    string
	metricsPath  string
	// metricsFormat selects the -metrics serialization: "prom" (default,
	// Prometheus text exposition) or "legacy" (the pre-exposition dump:
	// sorted name/value lines, or a JSON snapshot for .json paths).
	metricsFormat string
	// promPath writes the Prometheus exposition to a file on exit;
	// promAddr serves /metrics and /debug/pprof over HTTP for the run's
	// duration.
	promPath string
	promAddr string
}

func run(cfg runConfig) int {
	o := exp.Defaults()
	o.Workers = cfg.workers
	switch cfg.granularity {
	case "fused":
		o.Granularity = exp.Fused
	case "bucketed":
		o.Granularity = exp.Bucketed
	default:
		fmt.Fprintf(os.Stderr, "wrhtsim: unknown granularity %q\n", cfg.granularity)
		return 2
	}
	if cfg.tracePath != "" {
		o.Trace = obs.NewTracer()
		if cfg.cmd != "crossfabric" {
			// Figure sweeps trace the worker pool in wall-clock time (a
			// diagnostic); crossfabric leaves Clock nil, so its trace is the
			// byte-stable simulated timeline the golden tests pin.
			start := time.Now()
			o.Trace.Clock = func() float64 { return time.Since(start).Seconds() }
		}
	}
	sink := cliflags.Flags{
		Workers:       cfg.workers,
		JSONOut:       cfg.jsonOut,
		TracePath:     cfg.tracePath,
		MetricsPath:   cfg.metricsPath,
		MetricsFormat: cfg.metricsFormat,
		PromPath:      cfg.promPath,
		PromAddr:      cfg.promAddr,
	}
	if err := sink.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "wrhtsim: %v\n", err)
		return 2
	}
	o.Metrics = sink.NewRegistry()
	if cfg.promAddr != "" {
		// Serve /metrics (Prometheus text; ?reset=1 for snapshot-and-reset
		// delta scrapes) plus net/http/pprof for the run's duration, with
		// the same signal-driven drain wrhtd uses: SIGINT/SIGTERM (or the
		// deferred Stop) finishes in-flight scrapes before the listener
		// dies, instead of the old unconditional Close.
		g, err := daemon.StartGraceful(cfg.promAddr, daemon.DebugMux(o.Metrics), 5*time.Second)
		if err != nil {
			return fatal(fmt.Errorf("-promaddr: %w", err))
		}
		defer g.Stop()
		fmt.Fprintf(os.Stderr, "wrhtsim: serving /metrics and /debug/pprof on http://%s\n", g.Addr())
	}

	cmd := cfg.cmd
	ran := false
	var rec trace.Recorder
	if cmd == "schedule" {
		// Dump the WRHT schedule for -n/-w/-m as JSON (loadable by a
		// control plane or core.ReadSchedule).
		s, err := core.BuildWRHT(core.Config{N: cfg.n, Wavelengths: cfg.w, GroupSize: cfg.m})
		if err != nil {
			return fatal(err)
		}
		if _, err := s.WriteTo(os.Stdout); err != nil {
			return fatal(err)
		}
		return 0
	}
	if cmd == "build" {
		// Construct (and validate) the WRHT schedule for -n/-w/-m without
		// simulating it — the at-scale smoke test for the streamed
		// pipeline. -stream selects stream-and-consume (peak memory
		// O(max step) + O(index)); -memstats reports the measured peak
		// live heap, normalized per node.
		wcfg := core.Config{N: cfg.n, Wavelengths: cfg.w, GroupSize: cfg.m}
		if cfg.memstats {
			var rep exp.MemReport
			var err error
			if cfg.stream {
				rep, err = exp.StreamedBuildMem(func() (core.StepSource, error) {
					return core.StreamWRHT(wcfg)
				}, cfg.w, true)
			} else {
				rep, err = exp.MaterializedBuildMem(func() (*core.Schedule, error) {
					return core.BuildWRHT(wcfg)
				}, cfg.w, true)
			}
			if err != nil {
				return fatal(err)
			}
			fmt.Println(rep)
			return 0
		}
		resp, aerr := wrht.ServeBuild(api.BuildRequest{
			Kind: "wrht", N: cfg.n, Wavelengths: cfg.w, GroupSize: cfg.m, Stream: cfg.stream,
		})
		if aerr != nil {
			return apiFatal(aerr)
		}
		mode := "materialized"
		if resp.Streamed {
			mode = "streamed"
		}
		fmt.Printf("%s %s N=%d w=%d: %d steps, %d transfers, validated\n",
			mode, resp.Algorithm, resp.N, cfg.w, resp.Steps, resp.Transfers)
		if cfg.jsonOut != "" {
			if err := writeJSON(cfg.jsonOut, resp); err != nil {
				return fatal(err)
			}
			fmt.Printf("build result written to %s\n", cfg.jsonOut)
		}
		return 0
	}
	if cmd == "table1" || cmd == "all" {
		t, err := exp.Table1()
		if err != nil {
			return fatal(err)
		}
		fmt.Println(t)
		ran = true
	}
	if cmd == "fig4" || cmd == "all" {
		fig, err := exp.Fig4(o)
		if err != nil {
			return fatal(err)
		}
		fmt.Println(fig)
		rec.Record(exp.FigureRun("fig4", fig))
		ran = true
	}
	if cmd == "fig5" || cmd == "all" {
		r, err := exp.Fig5(o)
		if err != nil {
			return fatal(err)
		}
		for i, f := range r.Figures {
			fmt.Println(f)
			rec.Record(exp.FigureRun(fmt.Sprintf("fig5-%d", i), f))
		}
		fmt.Printf("Fig 5 mean reductions (%s): WRHT vs Ring %s (paper 13.74%%), vs H-Ring %s (paper 9.29%%), vs BT %s (paper 75%%)\n\n",
			o.Granularity, metrics.Pct(r.VsRing), metrics.Pct(r.VsHRing), metrics.Pct(r.VsBT))
		ran = true
	}
	if cmd == "fig6" || cmd == "all" {
		r, err := exp.Fig6(o)
		if err != nil {
			return fatal(err)
		}
		for i, f := range r.Figures {
			fmt.Println(f)
			rec.Record(exp.FigureRun(fmt.Sprintf("fig6-%d", i), f))
		}
		fmt.Printf("Fig 6 mean reductions (%s): WRHT vs Ring %s (paper 65.23%%), vs H-Ring %s (paper 43.81%%), vs BT %s (paper 82.22%%)\n\n",
			o.Granularity, metrics.Pct(r.VsRing), metrics.Pct(r.VsHRing), metrics.Pct(r.VsBT))
		ran = true
	}
	if cmd == "fig7" || cmd == "all" {
		r, err := exp.Fig7(o)
		if err != nil {
			return fatal(err)
		}
		for i, f := range r.Figures {
			fmt.Println(f)
			rec.Record(exp.FigureRun(fmt.Sprintf("fig7-%d", i), f))
		}
		fmt.Printf("Fig 7 mean reductions (%s): O-Ring vs E-Ring %s (paper 48.74%%), WRHT vs E-Ring %s (paper 61.23%%), WRHT vs E-RD %s (paper 55.51%%)\n\n",
			o.Granularity, metrics.Pct(r.ORingVsERing), metrics.Pct(r.WRHTVsERing), metrics.Pct(r.WRHTVsERD))
		ran = true
	}
	if cmd == "constraints" || cmd == "all" {
		fmt.Println(exp.Constraints())
		ran = true
	}
	if cmd == "stragglers" || cmd == "all" {
		t, err := exp.Stragglers(o, dnn.ResNet50(), 256, 64, 0.2, 20, 1)
		if err != nil {
			return fatal(err)
		}
		fmt.Println(t)
		ran = true
	}
	if cmd == "extras" || cmd == "all" {
		for _, m := range []dnn.Model{dnn.ResNet50(), dnn.BEiTLarge()} {
			t, err := exp.Extras(o, m, 1024, 64)
			if err != nil {
				fatal(err)
			}
			fmt.Println(t)
		}
		ran = true
	}
	if cmd == "hybrid" || cmd == "all" {
		const nodes = 64
		model := dnn.BEiTLarge()
		t := &metrics.Table{
			Title:   fmt.Sprintf("§6.2 hybrid parallelism: %s on %d nodes (GPipe, 8×2 microbatches)", model.Name, nodes),
			Headers: []string{"P x D", "pipeline (ms)", "bubble (ms)", "all-reduce (ms)", "iteration (ms)"},
		}
		for _, p := range []int{1, 2, 4, 8, 16} {
			sim := parallel.Sim{
				Model:          model,
				Strat:          parallel.Strategy{Stages: p, Replicas: nodes / p},
				Microbatches:   8,
				MicrobatchSize: 2,
				GPU:            workload.TitanXP(),
				Optical:        optical.DefaultParams(),
			}
			res, err := sim.Run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "wrhtsim: hybrid: %v\n", err)
				return 1
			}
			t.AddRow(fmt.Sprintf("%d x %d", p, nodes/p),
				fmt.Sprintf("%.1f", res.PipelineSec*1e3),
				fmt.Sprintf("%.1f", res.BubbleSec*1e3),
				fmt.Sprintf("%.1f", res.AllReduceSec*1e3),
				fmt.Sprintf("%.1f", res.TotalSec*1e3))
		}
		fmt.Println(t)
		ran = true
	}
	if cmd == "crossfabric" || cmd == "all" {
		// One engine, two backends: the -n/-w ring and the same-size
		// fat-tree time identical explicit schedules; -d sets the payload.
		resp, tables, aerr := api.RunSweep(o, api.SweepRequest{
			Sweep: "crossfabric", N: cfg.n, Wavelengths: cfg.w, PayloadMB: cfg.payloadMB,
		})
		if aerr != nil {
			return apiFatal(aerr)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		if cmd == "crossfabric" && cfg.jsonOut != "" {
			if err := writeJSON(cfg.jsonOut, resp); err != nil {
				return fatal(err)
			}
			fmt.Printf("crossfabric result written to %s\n", cfg.jsonOut)
			cfg.jsonOut = "" // consumed; skip the figure recorder below
		}
		ran = true
	}
	if cmd == "faults" || cmd == "all" {
		// Degraded-mode sweep: completion time versus dead wavelengths,
		// rebuilt-upfront and injected-mid-run (see internal/exp.Degradation).
		var ns []int // nil selects the paper trio {64, 1024, 4096}
		if cfg.nSet {
			ns = []int{cfg.n}
		}
		resp, tables, aerr := api.RunSweep(o, api.SweepRequest{
			Sweep: "faults", Ns: ns, Wavelengths: cfg.w, PayloadMB: cfg.payloadMB,
		})
		if aerr != nil {
			return apiFatal(aerr)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		if cmd == "faults" && cfg.jsonOut != "" {
			if err := writeJSON(cfg.jsonOut, resp); err != nil {
				return fatal(err)
			}
			fmt.Printf("faults result written to %s\n", cfg.jsonOut)
			cfg.jsonOut = ""
		}
		ran = true
	}
	if cmd == "overlap" || cmd == "all" {
		// IR pass pipeline vs the opportunistic overlap baseline: how
		// many reconfigurations each hides (see DESIGN.md §2.5). The
		// golden pair N ∈ {1024, 4096} unless -n narrows it.
		var ns []int // nil selects the golden pair {1024, 4096}
		if cfg.nSet {
			ns = []int{cfg.n}
		}
		resp, tables, aerr := api.RunSweep(o, api.SweepRequest{
			Sweep: "overlap", Ns: ns, Wavelengths: cfg.w, PayloadMB: cfg.payloadMB,
			Passes: cfg.passes, Check: cfg.check,
		})
		for _, t := range tables {
			fmt.Println(t)
		}
		if aerr != nil {
			return apiFatal(aerr)
		}
		if cfg.check {
			fmt.Printf("overlap check passed: hidden reconfigs strictly above baseline at all %d points\n\n", len(resp.Overlap))
		}
		if cmd == "overlap" && cfg.jsonOut != "" {
			if err := writeJSON(cfg.jsonOut, resp); err != nil {
				return fatal(err)
			}
			fmt.Printf("overlap result written to %s\n", cfg.jsonOut)
			cfg.jsonOut = ""
		}
		ran = true
	}
	if cmd == "plan" || cmd == "all" {
		// All-to-all planner gate: sweep the (r, w, a) grid (-r, -w, -a;
		// both fabrics), cross-checking the planner's predicted argmin
		// against the simulated one, then the end-to-end rescue of the
		// named fallback configurations. -check makes any gate violation
		// exit nonzero; -json dumps the raw points.
		rs, err := intList(cfg.planR)
		if err != nil {
			return fatal(fmt.Errorf("plan: -r: %w", err))
		}
		as, err := floatList(cfg.planA)
		if err != nil {
			return fatal(fmt.Errorf("plan: -a: %w", err))
		}
		resp, tables, aerr := api.RunPlan(o, api.PlanRequest{
			Rs: rs, Wavelengths: cfg.w, AMicros: as, PayloadMB: cfg.payloadMB, Check: cfg.check,
		})
		for _, t := range tables {
			fmt.Println(t)
		}
		if aerr != nil {
			return apiFatal(aerr)
		}
		if cfg.check {
			fmt.Printf("plan check passed: predicted argmin == simulated argmin at all %d points, rescue speedups above 1\n\n", len(resp.Points))
		}
		if cfg.jsonOut != "" {
			if err := writeJSON(cfg.jsonOut, resp); err != nil {
				return fatal(err)
			}
			fmt.Printf("raw plan points written to %s\n", cfg.jsonOut)
			cfg.jsonOut = "" // consumed; skip the figure recorder below
		}
		ran = true
	}
	if cmd == "crossover" || cmd == "all" {
		tp := o.Optical.TimeParams()
		t := &metrics.Table{
			Title:   "Analytic crossover: smallest N where fused WRHT beats optical Ring (w=64)",
			Headers: []string{"Workload", "grad (MB)", "crossover N"},
		}
		for _, m := range dnn.Workloads() {
			n := tp.RingCrossoverN(64, float64(m.GradBytes()), 1<<22)
			t.AddRow(m.Name, fmt.Sprintf("%.1f", float64(m.GradBytes())/1e6), fmt.Sprint(n))
		}
		fmt.Println(t)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "wrhtsim: unknown command %q\n", cmd)
		flag.Usage()
		return 2
	}
	if cfg.jsonOut != "" && len(rec.Runs) > 0 {
		if err := rec.WriteFile(cfg.jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "wrhtsim: writing %s: %v\n", cfg.jsonOut, err)
			return 1
		}
		fmt.Printf("raw series written to %s\n", cfg.jsonOut)
	}
	if err := sink.WriteTrace(o.Trace); err != nil {
		return fatal(err)
	}
	if o.Metrics != nil {
		if t := latencySummary(o.Metrics); t != nil {
			fmt.Println(t)
		}
	}
	if err := sink.WriteMetrics(o.Metrics); err != nil {
		return fatal(err)
	}
	return 0
}

// latencySummary renders the wall-clock histograms as a p50/p99/max
// table — the at-a-glance profile every metrics-enabled run prints —
// or nil when no latency was recorded.
func latencySummary(reg *obs.Registry) *metrics.Table {
	t := &metrics.Table{
		Title:   "Wall-clock latency summary (from -metrics/-prom histograms)",
		Headers: []string{"Series", "count", "p50 (µs)", "p99 (µs)", "max (µs)"},
	}
	rows := 0
	for _, f := range reg.Snapshot().Families() {
		if f.Type != "histogram" {
			continue
		}
		for _, se := range f.Series {
			h := se.Hist
			if h == nil || h.Count == 0 {
				continue
			}
			name := f.Raw
			if se.Labels != "" {
				name += "{" + se.Labels + "}"
			}
			t.AddRow(name, fmt.Sprint(h.Count),
				fmt.Sprintf("%.1f", h.Quantile(0.5)*1e6),
				fmt.Sprintf("%.1f", h.Quantile(0.99)*1e6),
				fmt.Sprintf("%.1f", h.Max*1e6))
			rows++
		}
	}
	if rows == 0 {
		return nil
	}
	return t
}
