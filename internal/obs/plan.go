package obs

import (
	"wrht/internal/plan"
)

// PlanObserver implements plan.Observer, turning planner decisions into
// registry counters: how many decisions were made, how many candidates
// were priced, and which plan family won (plan.chosen.<family>). Like
// every producer hook in this package it is nil-safe piecewise — Tracer
// and Metrics may each be nil independently — and decision spans are
// wall-clock diagnostics emitted only when Tracer.Clock is set (the
// planner runs at build time, before any simulated clock exists).
type PlanObserver struct {
	Tracer  *Tracer
	Metrics *Registry
}

// NewPlanObserver returns an observer emitting into tr and reg (either
// may be nil).
func NewPlanObserver(tr *Tracer, reg *Registry) *PlanObserver {
	return &PlanObserver{Tracer: tr, Metrics: reg}
}

// planTrack is the Perfetto track carrying decision spans.
var planTrack = Track{Process: "plan", Name: "decisions"}

// Decided implements plan.Observer.
func (o *PlanObserver) Decided(d plan.Decision) {
	if o == nil {
		return
	}
	if m := o.Metrics; m != nil {
		m.Counter("plan.decisions").Inc()
		m.Counter("plan.candidates").Add(int64(len(d.Candidates)))
		m.Counter("plan.chosen." + d.Best().Plan.Family).Inc()
		// Decision latency is wall clock (planning happens at build
		// time), hence volatile; decisions are rare, so the registry lock
		// per event is fine.
		m.MarkVolatile("plan.decision.seconds")
		m.Histogram(Labeled("plan.decision.seconds", "family", d.Best().Plan.Family)).Observe(d.Seconds)
	}
	if t := o.Tracer; t != nil && t.Clock != nil {
		t.Span(planTrack, d.Best().Plan.String(), t.Clock(), 0, Args{
			"r":          d.R,
			"w":          d.W,
			"fabric":     d.Fabric,
			"candidates": len(d.Candidates),
			"predicted":  d.Best().Predicted,
		})
	}
}
