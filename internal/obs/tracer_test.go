package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	tr.Span(Track{Process: "p", Name: "t"}, "s", 0, 1, nil)
	tr.Instant(Track{Process: "p", Name: "t"}, "i", 0, nil)
	if tr.Events() != 0 {
		t.Fatal("nil tracer recorded events")
	}
	var buf bytes.Buffer
	if n, err := tr.WriteTo(&buf); n != 0 || err != nil {
		t.Fatalf("nil WriteTo = (%d, %v)", n, err)
	}
}

// emit produces a fixed two-process event sequence.
func emit(tr *Tracer) {
	a := Track{Process: "run A", Name: "steps"}
	b := Track{Process: "run B", Name: "steps"}
	a2 := Track{Process: "run A", Name: "control plane"}
	tr.Span(a, "reduce", 0, 25e-6, Args{"step": 0, "bytes": 4096.0})
	tr.Span(b, "broadcast", 0, 10e-6, nil)
	tr.Span(a2, "reconfig (overlap-hidden)", 10e-6, 25e-6, nil)
	tr.Instant(a, "barrier", 35e-6, nil)
}

func TestTracerChromeTraceShape(t *testing.T) {
	tr := NewTracer()
	emit(tr)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 2 process_name + 3×(thread_name + thread_sort_index) + 4 events.
	if got, want := len(doc.TraceEvents), 2+6+4; got != want {
		t.Fatalf("%d trace events, want %d", got, want)
	}
	// Metadata leads, in registration order; pids/tids are 1-based.
	if doc.TraceEvents[0]["ph"] != "M" || doc.TraceEvents[0]["args"].(map[string]any)["name"] != "run A" {
		t.Fatalf("first metadata event wrong: %v", doc.TraceEvents[0])
	}
	span := doc.TraceEvents[8]
	if span["name"] != "reduce" || span["ph"] != "X" {
		t.Fatalf("first span wrong: %v", span)
	}
	if span["dur"].(float64) != 25 { // 25 µs
		t.Fatalf("span dur = %v µs, want 25", span["dur"])
	}
	if span["pid"].(float64) != 1 || span["tid"].(float64) != 1 {
		t.Fatalf("span track = pid %v tid %v, want 1/1", span["pid"], span["tid"])
	}
	last := doc.TraceEvents[11]
	if last["ph"] != "i" || last["ts"].(float64) != 35 {
		t.Fatalf("instant wrong: %v", last)
	}
}

func TestTracerByteStable(t *testing.T) {
	var a, b bytes.Buffer
	t1 := NewTracer()
	emit(t1)
	if _, err := t1.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	t2 := NewTracer()
	emit(t2)
	if _, err := t2.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical emission sequences produced different bytes")
	}
	// Writing twice from the same tracer is also stable (WriteTo does
	// not consume or reorder state).
	var c bytes.Buffer
	if _, err := t1.WriteTo(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("re-serialization changed bytes")
	}
}
