package ir

import "wrht/internal/rwa"

// Recolor re-assigns one step's wavelengths to break (direction,
// wavelength) clashes at its boundaries. For each step whose adjacent
// boundaries are not all disjoint, it rebuilds the step's assignment
// with rwa's boundary-biased first-fit (Index.FirstFreeAvoiding): the
// avoid set holds the neighbors' circuits, so the pick dodges any
// wavelength a neighbor uses on an overlapping same-direction arc when
// the budget allows, and falls back to plain first-fit when it does
// not. The rewrite is kept only if it strictly increases the step's
// disjoint-boundary count while staying within the wavelength budget;
// otherwise the original colors are restored, so the pass can never
// regress a program (in particular it is the identity on natural WRHT
// schedules, whose gather steps saturate the full budget next to every
// representative and leave recoloring no room).
//
// Routing (Src, Dst, Dir) and chunks are untouched — wavelength-only
// rewrites move no data, so dependency edges stay valid.
type Recolor struct{}

// Name implements Pass.
func (Recolor) Name() string { return "recolor" }

// Apply implements Pass.
func (Recolor) Apply(p *Program) (bool, error) {
	if len(p.Steps) < 2 {
		return false, nil
	}
	work := rwa.NewIndex(p.Ring)  // the step's own occupancy during re-assignment
	avoid := rwa.NewIndex(p.Ring) // the neighbors' circuits to dodge
	changed := false
	for k := range p.Steps {
		st := &p.Steps[k]
		if len(st.Transfers) == 0 {
			continue
		}
		var neighbors []*Step
		if k > 0 {
			neighbors = append(neighbors, &p.Steps[k-1])
		}
		if k+1 < len(p.Steps) {
			neighbors = append(neighbors, &p.Steps[k+1])
		}
		before := 0
		for _, nb := range neighbors {
			if p.disjointPair(st, nb) {
				before++
			}
		}
		if before == len(neighbors) {
			continue // both boundaries already overlap-eligible
		}
		avoid.Reset()
		for _, nb := range neighbors {
			for i, t := range nb.Transfers {
				avoid.Occupy(t.Dir, nb.Arcs[i], t.Wavelength)
			}
		}
		old := make([]int, len(st.Transfers))
		for i, t := range st.Transfers {
			old[i] = t.Wavelength
		}
		work.Reset()
		maxUsed := 0
		for i := range st.Transfers {
			t := &st.Transfers[i]
			w := work.FirstFreeAvoiding(t.Dir, st.Arcs[i], avoid, p.Budget)
			work.Occupy(t.Dir, st.Arcs[i], w)
			t.Wavelength = w
			if w+1 > maxUsed {
				maxUsed = w + 1
			}
		}
		after := 0
		for _, nb := range neighbors {
			if p.disjointPair(st, nb) {
				after++
			}
		}
		if (p.Budget > 0 && maxUsed > p.Budget) || after <= before {
			for i := range st.Transfers {
				st.Transfers[i].Wavelength = old[i]
			}
			continue
		}
		changed = true
	}
	return changed, nil
}
