package core

import (
	"fmt"

	"wrht/internal/rwa"
	"wrht/internal/topo"
)

// WRHT on a torus (§6.1): the reduce stage of WRHT runs inside every row
// ring in parallel (all rows are structurally identical, so their
// representatives land in one column), the row representatives then run
// a full WRHT all-reduce on that column ring, and the row broadcast
// stage replays the row gathers in reverse. Row steps across different
// rows merge into single schedule steps because each row is its own
// waveguide — wavelengths are reused across rows exactly as they are
// across subgroups on the ring.

// rowRepPosition replays the grouping recursion on a c-node ring to find
// the position the row reduce converges to.
func rowRepPosition(c, m int) int {
	participants := make([]int, c)
	for i := range participants {
		participants[i] = i
	}
	for len(participants) > 1 {
		groups := partition(participants, m)
		next := make([]int, len(groups))
		for i, g := range groups {
			next[i] = g.rep()
		}
		participants = next
	}
	return participants[0]
}

// remapStep rewrites a step's node ids through the given mapping,
// keeping chunks, ops, directions and wavelengths.
func remapStep(st Step, mapID func(int) int) Step {
	out := Step{Phase: st.Phase, Transfers: make([]Transfer, len(st.Transfers))}
	for i, t := range st.Transfers {
		t.Src = mapID(t.Src)
		t.Dst = mapID(t.Dst)
		out.Transfers[i] = t
	}
	return out
}

// BuildWRHTTorus constructs the WRHT all-reduce on an R×C torus with w
// wavelengths per waveguide and first-step group size m (0 = the
// Lemma-1 optimum 2w+1, clamped to the row length). Transfers carry
// global node ids (row·C + col); ValidateTorus checks per-waveguide
// wavelength feasibility. The construction streams through
// StreamWRHTTorus.
func BuildWRHTTorus(t topo.Torus, w, m int) (*Schedule, error) {
	src, err := StreamWRHTTorus(t, w, m)
	if err != nil {
		return nil, err
	}
	return Collect(src), nil
}

// torusStream streams the torus schedule from compact interned
// templates: the retained state is one CompactStep per row-template
// step (over a C-node ring) and per column step (over an R-node ring) —
// O(R + C) transfers' worth — while the merged row steps, which carry
// O(N) transfers each, only ever exist one at a time in the emission
// buffer.
type torusStream struct {
	t       topo.Torus
	ring    topo.Ring
	rowTmpl []CompactStep // L gathers then L broadcasts, column ids
	colTmpl []CompactStep // column-stage WRHT, row ids
	gathers int
	repCol  int
	k       int
	buf     Step
}

// StreamWRHTTorus returns a streaming producer of the torus schedule,
// bit-identical to BuildWRHTTorus's output (which is Collect over it).
func StreamWRHTTorus(t topo.Torus, w, m int) (StepSource, error) {
	if t.Rows < 1 || t.Cols < 1 {
		return nil, fmt.Errorf("core: torus %dx%d invalid", t.Rows, t.Cols)
	}
	rowCfg := Config{N: t.Cols, Wavelengths: w, GroupSize: m, DisableAllToAll: true}
	if t.Cols == 1 {
		rowCfg.GroupSize = 0
	}
	ts := &torusStream{t: t, ring: topo.NewRing(t.N())}

	// Row reduce/broadcast template on a C-node ring (ids = columns).
	if t.Cols > 1 {
		rowSched, err := BuildWRHT(rowCfg)
		if err != nil {
			return nil, fmt.Errorf("core: torus row stage: %w", err)
		}
		ts.rowTmpl = make([]CompactStep, len(rowSched.Steps))
		for i, st := range rowSched.Steps {
			ts.rowTmpl[i] = CompactOf(st)
		}
	}
	ts.gathers = len(ts.rowTmpl) / 2

	// Column stage: full WRHT all-reduce among the row representatives,
	// which all sit in the representative column.
	if t.Rows > 1 {
		if t.Cols > 1 {
			ts.repCol = rowRepPosition(t.Cols, rowCfg.EffectiveGroupSize())
		}
		colCfg := Config{N: t.Rows, Wavelengths: w, GroupSize: m}
		if colCfg.GroupSize > t.Rows {
			colCfg.GroupSize = 0
		}
		colSched, err := BuildWRHT(colCfg)
		if err != nil {
			return nil, fmt.Errorf("core: torus column stage: %w", err)
		}
		ts.colTmpl = make([]CompactStep, len(colSched.Steps))
		for i, st := range colSched.Steps {
			ts.colTmpl[i] = CompactOf(st)
		}
	}
	return ts, nil
}

func (ts *torusStream) Algorithm() string { return "wrht-torus" }
func (ts *torusStream) Ring() topo.Ring   { return ts.ring }

// mergeRows expands one row-template step across every row into the
// emission buffer (each row is its own waveguide, so the template's
// wavelengths are reused across rows unchanged).
func (ts *torusStream) mergeRows(tmpl CompactStep) {
	ts.buf.Phase = tmpl.Phase
	ts.buf.Transfers = ts.buf.Transfers[:0]
	for r := 0; r < ts.t.Rows; r++ {
		tmpl.AppendTo(&ts.buf, func(col int) int { return ts.t.Index(r, col) })
	}
}

func (ts *torusStream) Next() (*Step, bool) {
	k := ts.k
	ts.k++
	switch {
	case k < ts.gathers:
		ts.mergeRows(ts.rowTmpl[k])
	case k < ts.gathers+len(ts.colTmpl):
		ts.colTmpl[k-ts.gathers].ExpandInto(&ts.buf, func(row int) int { return ts.t.Index(row, ts.repCol) })
	case k < len(ts.rowTmpl)+len(ts.colTmpl):
		// Row broadcast stage (reverse of the gathers).
		ts.mergeRows(ts.rowTmpl[k-len(ts.colTmpl)])
	default:
		return nil, false
	}
	return &ts.buf, true
}

// ValidateTorus checks a torus schedule: every transfer must stay within
// one row or one column ring, and per (ring, direction) the wavelength
// assignment must be conflict-free and within the budget (0 disables the
// budget check). Wavelength reuse across distinct rows/columns is free —
// they are separate waveguides.
func ValidateTorus(s *Schedule, t topo.Torus, wavelengths int) error {
	return ValidateTorusSource(s.Source(), t, wavelengths)
}

// ValidateTorusSource is ValidateTorus over a step stream, holding one
// step at a time. The per-domain request/arc/assignment scratch and the
// domain-bucketing map are reused across steps, so validation allocates
// O(max step) regardless of the step count. Each (row/column, index)
// domain is validated by Reset+replay on one shared index per dimension
// rather than the ring validator's delta updates: persisting delta
// state would need one occupancy index per row and column — O(N) words
// per domain, O(N·(R+C)) total — which is exactly the memory class this
// path exists to avoid, while per-domain replay stays near-linear in
// the domain's transfer count.
func ValidateTorusSource(src StepSource, t topo.Torus, wavelengths int) error {
	type domain struct {
		row bool
		idx int
	}
	// Row and column rings each get one reusable occupancy index; every
	// per-domain check below is near-linear in its transfer count.
	rowRing, colRing := topo.NewRing(t.Cols), topo.NewRing(t.Rows)
	rowIx, colIx := rwa.NewIndex(rowRing), rwa.NewIndex(colRing)
	byDomain := map[domain][]int{}
	var reqs []rwa.Request
	var asn rwa.Assignment
	var arcs []topo.Arc
	for si := 0; ; si++ {
		st, ok := src.Next()
		if !ok {
			return nil
		}
		for dom := range byDomain {
			byDomain[dom] = byDomain[dom][:0]
		}
		for ti, tr := range st.Transfers {
			sr, sc := t.Coord(tr.Src)
			dr, dc := t.Coord(tr.Dst)
			switch {
			case sr == dr:
				byDomain[domain{row: true, idx: sr}] = append(byDomain[domain{row: true, idx: sr}], ti)
			case sc == dc:
				byDomain[domain{row: false, idx: sc}] = append(byDomain[domain{row: false, idx: sc}], ti)
			default:
				return fmt.Errorf("core: torus step %d transfer %d crosses both dimensions: %v", si, ti, tr)
			}
		}
		for dom, tis := range byDomain {
			if len(tis) == 0 {
				continue
			}
			ring, ix := rowRing, rowIx
			if !dom.row {
				ring, ix = colRing, colIx
			}
			reqs, asn, arcs = reqs[:0], asn[:0], arcs[:0]
			for _, ti := range tis {
				tr := st.Transfers[ti]
				sr, sc := t.Coord(tr.Src)
				dr, dc := t.Coord(tr.Dst)
				var src, dst int
				if dom.row {
					src, dst = sc, dc
				} else {
					src, dst = sr, dr
				}
				reqs = append(reqs, rwa.Request{Src: src, Dst: dst, Dir: tr.Dir})
				asn = append(asn, tr.Wavelength)
				arcs = append(arcs, ring.ArcOf(src, dst, tr.Dir))
			}
			if err := ix.Validate(reqs, arcs, asn, wavelengths); err != nil {
				return fmt.Errorf("core: torus step %d (%v ring %d): %w", si, dom.row, dom.idx, err)
			}
		}
	}
}

// StepsWRHTTorus returns the analytic step count of the torus scheme:
// 2·L_row (row gathers + broadcasts) plus the column all-reduce θ.
func StepsWRHTTorus(t topo.Torus, w, m int) (int, error) {
	rowSteps := 0
	if t.Cols > 1 {
		cfg := Config{N: t.Cols, Wavelengths: w, GroupSize: m, DisableAllToAll: true}
		st, err := StepsWRHT(cfg)
		if err != nil {
			return 0, err
		}
		rowSteps = st.Total
	}
	colSteps := 0
	if t.Rows > 1 {
		cfg := Config{N: t.Rows, Wavelengths: w, GroupSize: m}
		if cfg.GroupSize > t.Rows {
			cfg.GroupSize = 0
		}
		st, err := StepsWRHT(cfg)
		if err != nil {
			return 0, err
		}
		colSteps = st.Total
	}
	return rowSteps + colSteps, nil
}
