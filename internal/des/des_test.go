package des

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	var k Kernel
	var order []int
	k.At(3, func() { order = append(order, 3) })
	k.At(1, func() { order = append(order, 1) })
	k.At(2, func() { order = append(order, 2) })
	if end := k.Run(); end != 3 {
		t.Fatalf("final time %g, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var k Kernel
	var hits []float64
	k.After(1, func() {
		hits = append(hits, k.Now())
		k.After(2, func() { hits = append(hits, k.Now()) })
	})
	if end := k.Run(); end != 3 {
		t.Fatalf("end = %g", end)
	}
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var k Kernel
	k.At(5, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var k Kernel
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestStepAndPending(t *testing.T) {
	var k Kernel
	if k.Step() {
		t.Fatal("empty kernel stepped")
	}
	k.At(1, func() {})
	k.At(2, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending = %d", k.Pending())
	}
	if !k.Step() || k.Now() != 1 || k.Pending() != 1 {
		t.Fatalf("step state wrong: now=%g pending=%d", k.Now(), k.Pending())
	}
}

// recordingHook captures the kernel's event lifecycle for the hook
// tests below.
type recordingHook struct {
	scheduled []uint64
	fired     []uint64
	labels    []string
}

func (h *recordingHook) EventScheduled(seq uint64, at, now float64, label string) {
	h.scheduled = append(h.scheduled, seq)
}

func (h *recordingHook) EventFired(seq uint64, now float64, label string) {
	h.fired = append(h.fired, seq)
	h.labels = append(h.labels, label)
}

func TestHookObservesNamedEvents(t *testing.T) {
	var k Kernel
	h := &recordingHook{}
	k.Hook = h
	k.AtNamed(2, "late", func() {})
	k.AfterNamed(1, "early", func() {})
	k.Run()
	if len(h.scheduled) != 2 || h.scheduled[0] != 1 || h.scheduled[1] != 2 {
		t.Fatalf("scheduled seqs = %v", h.scheduled)
	}
	if len(h.fired) != 2 || h.fired[0] != 2 || h.fired[1] != 1 {
		t.Fatalf("fired seqs = %v, want [2 1] (time order)", h.fired)
	}
	if h.labels[0] != "early" || h.labels[1] != "late" {
		t.Fatalf("labels = %v", h.labels)
	}
}

// TestQuickHookPreservesFIFO is the deterministic-tie-breaking property
// run with a recording hook attached: a hooked kernel must fire the
// same events in the same order as a hook-less one, and same-time
// events must fire in scheduling (seq) order — the FIFO guarantee is
// observable through the hook and unchanged by it.
func TestQuickHookPreservesFIFO(t *testing.T) {
	f := func(delays []uint8) bool {
		run := func(k *Kernel) []int {
			var order []int
			for i, d := range delays {
				i := i
				k.At(float64(d), func() { order = append(order, i) })
			}
			k.Run()
			return order
		}
		h := &recordingHook{}
		hooked := run(&Kernel{Hook: h})
		plain := run(&Kernel{})
		if len(hooked) != len(plain) {
			return false
		}
		for i := range hooked {
			if hooked[i] != plain[i] {
				return false
			}
		}
		// The hook saw every firing, and ties broke FIFO: a seq fires
		// before a larger seq scheduled for the same time.
		if len(h.fired) != len(delays) {
			return false
		}
		for i := 1; i < len(h.fired); i++ {
			a, b := h.fired[i-1], h.fired[i]
			if delays[a-1] == delays[b-1] && a > b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		var k Kernel
		for _, d := range delays {
			k.At(float64(d), func() {})
		}
		prev := -1.0
		for k.Step() {
			if k.Now() < prev {
				return false
			}
			prev = k.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
