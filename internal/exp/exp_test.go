package exp

import (
	"strings"
	"testing"

	"wrht/internal/dnn"
)

func TestTable1ReproducesPaper(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, cell := range []string{"2046", "417", "20", "3"} {
		if !strings.Contains(out, cell) {
			t.Errorf("Table 1 missing %q:\n%s", cell, out)
		}
	}
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	fig, err := Fig4(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 || len(fig.XTicks) != 4 {
		t.Fatalf("fig4 shape: %d series, %d ticks", len(fig.Series), len(fig.XTicks))
	}
	// Per workload: time is non-increasing in m and plateaus at 1.
	for x := range fig.XTicks {
		prev := fig.Series[0].Y[x]
		for si := 1; si < len(fig.Series); si++ {
			cur := fig.Series[si].Y[x]
			if cur > prev+1e-12 {
				t.Errorf("workload %s: time increased from m-series %d to %d", fig.XTicks[x], si-1, si)
			}
			prev = cur
		}
		last := fig.Series[len(fig.Series)-1].Y[x]
		if last != 1 {
			t.Errorf("workload %s not normalized to 1 at m=129: %g", fig.XTicks[x], last)
		}
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	r, err := Fig5(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Figures) != 4 {
		t.Fatalf("fig5 has %d subfigures", len(r.Figures))
	}
	for _, fig := range r.Figures {
		byName := map[string][]float64{}
		for _, s := range fig.Series {
			byName[s.Name] = s.Y
		}
		// Ring and BT are flat in wavelengths (§5.4).
		for _, name := range []string{"Ring", "BT"} {
			ys := byName[name]
			for i := 1; i < len(ys); i++ {
				if ys[i] != ys[0] {
					t.Errorf("%s: %s should be flat in wavelengths: %v", fig.Title, name, ys)
				}
			}
		}
		// WRHT is non-increasing and eventually flat.
		w := byName["WRHT"]
		for i := 1; i < len(w); i++ {
			if w[i] > w[i-1]+1e-12 {
				t.Errorf("%s: WRHT time increased with wavelengths: %v", fig.Title, w)
			}
		}
		// H-Ring decreases from w=4 to w>=m then flattens (§5.4).
		h := byName["H-Ring"]
		if !(h[0] > h[1] && h[1] == h[2] && h[2] == h[3]) {
			t.Errorf("%s: H-Ring shape wrong: %v", fig.Title, h)
		}
	}
	// Paper's qualitative claim for Fig 5(b)-style cells: with 4
	// wavelengths and the largest models, WRHT does NOT beat Ring.
	beit := r.Figures[0]
	var wrht4, ring4 float64
	for _, s := range beit.Series {
		switch s.Name {
		case "WRHT":
			wrht4 = s.Y[0]
		case "Ring":
			ring4 = s.Y[0]
		}
	}
	if wrht4 < ring4 {
		t.Errorf("BEiT at w=4: WRHT %.3g unexpectedly beats Ring %.3g (paper says it should not)", wrht4, ring4)
	}
	// BT reduction is large and positive (paper: 75%).
	if r.VsBT < 50 {
		t.Errorf("Fig5 BT reduction = %.2f%%, expected large positive", r.VsBT)
	}
}

func TestFig6ShapeMatchesPaper(t *testing.T) {
	for _, g := range []Granularity{Fused, Bucketed} {
		o := Defaults()
		o.Granularity = g
		r, err := Fig6(o)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Figures) != 4 {
			t.Fatalf("fig6 has %d subfigures", len(r.Figures))
		}
		for _, fig := range r.Figures {
			for _, s := range fig.Series {
				switch s.Name {
				case "Ring", "H-Ring":
					// Ring-based algorithms grow with N (paper: linear rise).
					for i := 1; i < len(s.Y); i++ {
						if s.Y[i] <= s.Y[i-1] {
							t.Errorf("%s (%s): %s should grow with N: %v", fig.Title, g, s.Name, s.Y)
						}
					}
				case "WRHT":
					// WRHT stays nearly constant: ≤ 2× across the sweep.
					if s.Y[len(s.Y)-1] > 2*s.Y[0] {
						t.Errorf("%s (%s): WRHT not ~constant: %v", fig.Title, g, s.Y)
					}
				}
			}
		}
		// BT is the worst baseline on large models whichever granularity.
		if r.VsBT < 60 {
			t.Errorf("fig6 (%s): BT reduction %.2f%% too small", g, r.VsBT)
		}
	}
	// The bucketed reading reproduces the paper's positive Ring/H-Ring
	// headline reductions.
	o := Defaults()
	o.Granularity = Bucketed
	r, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.VsRing < 50 {
		t.Errorf("bucketed fig6 vs Ring = %.2f%%, want >50%% (paper 65.23%%)", r.VsRing)
	}
	if r.VsHRing < 10 {
		t.Errorf("bucketed fig6 vs H-Ring = %.2f%%, want >10%% (paper 43.81%%)", r.VsHRing)
	}
}

func TestConstraintsTable(t *testing.T) {
	out := Constraints().String()
	if !strings.Contains(out, "0.020") {
		t.Fatalf("constraints table missing default loss row:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 7 {
		t.Fatalf("constraints table too short:\n%s", out)
	}
}

func TestGranularityString(t *testing.T) {
	if Fused.String() != "fused" || Bucketed.String() != "bucketed" {
		t.Fatal("granularity strings")
	}
}

func TestPayloadsSumToGradient(t *testing.T) {
	fused := Defaults()
	bucketed := Defaults()
	bucketed.Granularity = Bucketed
	for _, m := range dnn.Workloads() {
		var fsum, bsum float64
		for _, p := range fused.payloads(m) {
			fsum += p
		}
		for _, p := range bucketed.payloads(m) {
			bsum += p
		}
		if int64(fsum) != m.GradBytes() || int64(bsum) != m.GradBytes() {
			t.Errorf("%s: payloads fused %.0f bucketed %.0f, want %d", m.Name, fsum, bsum, m.GradBytes())
		}
		if len(bucketed.payloads(m)) <= len(fused.payloads(m)) {
			t.Errorf("%s: bucketed should split into more invocations", m.Name)
		}
	}
}

func TestExtrasTable(t *testing.T) {
	tab, err := Extras(Defaults(), dnn.ResNet50(), 1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"WRHT", "DBTree", "RD", "NO", "Ring"} {
		if !strings.Contains(out, want) {
			t.Errorf("extras table missing %q:\n%s", want, out)
		}
	}
}

func TestStragglersDeterministicAndOrdered(t *testing.T) {
	o := Defaults()
	ta, err := Stragglers(o, dnn.ResNet50(), 64, 8, 0.2, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Stragglers(o, dnn.ResNet50(), 64, 8, 0.2, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, b := ta.String(), tb.String()
	if a != b {
		t.Fatal("straggler study not deterministic for a fixed seed")
	}
	for _, name := range []string{"wrht", "ring", "bt"} {
		if !strings.Contains(a, name) {
			t.Errorf("missing %s:\n%s", name, a)
		}
	}
}

func TestFig7ShapeMatchesPaper(t *testing.T) {
	// Scaled-down sweep (the flow solver dominates at N=1024).
	r, err := fig7At(Defaults(), []int{64, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Figures) != 4 {
		t.Fatalf("fig7 has %d subfigures", len(r.Figures))
	}
	for _, fig := range r.Figures {
		byName := map[string][]float64{}
		for _, s := range fig.Series {
			byName[s.Name] = s.Y
		}
		for i := range byName["E-Ring"] {
			if byName["E-Ring"][i] <= byName["O-Ring"][i] {
				t.Errorf("%s: E-Ring should exceed O-Ring at index %d", fig.Title, i)
			}
		}
	}
	if r.ORingVsERing <= 0 {
		t.Errorf("O-Ring vs E-Ring reduction %.2f%% should be positive", r.ORingVsERing)
	}
	if r.WRHTVsERing <= 0 {
		t.Errorf("WRHT vs E-Ring reduction %.2f%% should be positive", r.WRHTVsERing)
	}
}
