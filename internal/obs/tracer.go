package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
)

// Track identifies one horizontal timeline in the emitted trace. Tracks
// with the same Process render grouped in Perfetto (one "process" per
// engine run or workload, one "thread" per track). The tracer assigns
// pid/tid numbers in first-use order, so a deterministic sequence of
// Span/Instant calls yields a byte-identical file.
type Track struct {
	Process string
	Name    string
}

// Args carries span metadata (wavelength, bytes, step index, ...).
// encoding/json sorts map keys, so args serialize deterministically.
type Args map[string]any

// traceEvent is one Chrome Trace Event. Field order is the emission
// order (encoding/json preserves struct order), part of the golden
// format.
type traceEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   float64  `json:"ts"`
	Dur  *float64 `json:"dur,omitempty"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	S    string   `json:"s,omitempty"`
	Args Args     `json:"args,omitempty"`
}

// Tracer accumulates spans and instant events and writes them as a
// Chrome Trace Event JSON document loadable by ui.perfetto.dev (or
// chrome://tracing). Timestamps are simulated seconds supplied by the
// caller; the tracer converts to the format's microseconds and never
// consults a wall clock. All methods are safe on a nil receiver and for
// concurrent use (though concurrent emission makes the event order, and
// therefore the output bytes, scheduling-dependent — producers that
// promise byte-stable files emit sequentially).
type Tracer struct {
	// Clock, when set, supplies timestamps for producers that trace
	// their own progress rather than a simulated timeline (the sweep
	// engine's per-point spans). It is injectable for the same reason as
	// trace.Recorder.Now: tests install a deterministic clock, the CLI a
	// wall clock for diagnostics. Simulated-time producers ignore it.
	Clock func() float64

	mu     sync.Mutex
	pids   map[string]int
	tids   map[Track]int
	procs  []string // process names in pid order
	tracks []Track  // tracks in global registration order
	events []traceEvent
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{pids: map[string]int{}, tids: map[Track]int{}}
}

// track resolves tr to (pid, tid), registering on first use. Caller
// holds t.mu.
func (t *Tracer) track(tr Track) (pid, tid int) {
	pid, ok := t.pids[tr.Process]
	if !ok {
		pid = len(t.pids) + 1
		t.pids[tr.Process] = pid
		t.procs = append(t.procs, tr.Process)
	}
	tid, ok = t.tids[tr]
	if !ok {
		tid = len(t.tids) + 1
		t.tids[tr] = tid
		t.tracks = append(t.tracks, tr)
	}
	return pid, tid
}

const secToUs = 1e6

// Span records a complete-duration event on tr: [start, start+dur] in
// simulated seconds.
func (t *Tracer) Span(tr Track, name string, start, dur float64, args Args) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pid, tid := t.track(tr)
	d := dur * secToUs
	t.events = append(t.events, traceEvent{
		Name: name, Ph: "X", Ts: start * secToUs, Dur: &d,
		Pid: pid, Tid: tid, Args: args,
	})
}

// Instant records a zero-duration marker on tr at simulated time at.
func (t *Tracer) Instant(tr Track, name string, at float64, args Args) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pid, tid := t.track(tr)
	t.events = append(t.events, traceEvent{
		Name: name, Ph: "i", Ts: at * secToUs,
		Pid: pid, Tid: tid, S: "t", Args: args,
	})
}

// Events returns the number of recorded events.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteTo emits the trace as Chrome Trace Event JSON: first the
// process/thread naming metadata (in registration order, with
// sort_index pinning the on-screen track order), then every event in
// emission order.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	if t == nil {
		return 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	meta := make([]traceEvent, 0, len(t.procs)+2*len(t.tracks))
	for i, proc := range t.procs {
		meta = append(meta, traceEvent{
			Name: "process_name", Ph: "M", Pid: i + 1,
			Args: Args{"name": proc},
		})
	}
	for i, tr := range t.tracks {
		pid := t.pids[tr.Process]
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
			Args: Args{"name": tr.Name},
		})
		meta = append(meta, traceEvent{
			Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: i + 1,
			Args: Args{"sort_index": i + 1},
		})
	}
	doc := struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}{"ms", append(meta, t.events...)}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	n, err := w.Write(b)
	return int64(n), err
}

// WriteFile writes the trace to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = t.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
