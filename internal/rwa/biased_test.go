package rwa

import (
	"testing"

	"wrht/internal/topo"
)

func TestFirstFreeAvoidingSkipsNeighborWavelengths(t *testing.T) {
	r := topo.NewRing(8)
	ix := NewIndex(r)
	avoid := NewIndex(r)
	arc := r.ArcOf(2, 6, topo.CW)

	// Nothing to avoid: behaves like plain first-fit.
	if w := ix.FirstFreeAvoiding(topo.CW, arc, nil, 64); w != 0 {
		t.Fatalf("nil avoid pick = %d, want 0", w)
	}
	if w := ix.FirstFreeAvoiding(topo.CW, arc, avoid, 64); w != 0 {
		t.Fatalf("empty avoid pick = %d, want 0", w)
	}

	// A neighboring circuit holds λ0 on an overlapping arc: the biased
	// pick must skip it.
	avoid.Occupy(topo.CW, r.ArcOf(0, 4, topo.CW), 0)
	if w := ix.FirstFreeAvoiding(topo.CW, arc, avoid, 64); w != 1 {
		t.Errorf("biased pick = %d, want 1 (λ0 held by neighbor)", w)
	}
	// Opposite fiber never conflicts, so CCW ignores the CW neighbor.
	if w := ix.FirstFreeAvoiding(topo.CCW, r.ArcOf(6, 2, topo.CCW), avoid, 64); w != 0 {
		t.Errorf("CCW pick = %d, want 0", w)
	}
	// Own occupancy still counts on top of the avoid set.
	ix.Occupy(topo.CW, arc, 1)
	if w := ix.FirstFreeAvoiding(topo.CW, arc, avoid, 64); w != 2 {
		t.Errorf("biased pick with own λ1 = %d, want 2", w)
	}
}

func TestFirstFreeAvoidingFallsBackAtLimit(t *testing.T) {
	r := topo.NewRing(8)
	ix := NewIndex(r)
	avoid := NewIndex(r)
	arc := r.ArcOf(0, 4, topo.CW)
	// The avoid set saturates wavelengths 0..3; with a budget of 4 the
	// biased pick (4) is out of range, so the probe must fall back to the
	// plain first-fit answer over ix alone.
	var st Stats
	ix.Stats = &st
	for w := 0; w < 4; w++ {
		avoid.Occupy(topo.CW, arc, w)
	}
	ix.Occupy(topo.CW, arc, 0)
	if w := ix.FirstFreeAvoiding(topo.CW, arc, avoid, 4); w != 1 {
		t.Errorf("capped pick = %d, want plain first-fit 1", w)
	}
	if st.BiasedFitCalls.Load() != 1 || st.BiasedFallbacks.Load() != 1 {
		t.Errorf("stats: calls=%d fallbacks=%d, want 1/1",
			st.BiasedFitCalls.Load(), st.BiasedFallbacks.Load())
	}
	// Uncapped (limit <= 0), the biased pick stands.
	if w := ix.FirstFreeAvoiding(topo.CW, arc, avoid, 0); w != 4 {
		t.Errorf("uncapped pick = %d, want 4", w)
	}
}

func TestFirstFreeAvoidingPanicsOnRingMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched avoid ring size did not panic")
		}
	}()
	ix := NewIndex(topo.NewRing(8))
	avoid := NewIndex(topo.NewRing(16))
	ix.FirstFreeAvoiding(topo.CW, topo.Arc{Lo: 0, Len: 2, N: 8}, avoid, 0)
}
