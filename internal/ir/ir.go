// Package ir promotes a flat core.Schedule into a transformable
// intermediate representation. A Program's steps carry per-transfer
// circuit metadata — travel direction, wavelength, and the occupied
// fiber arc — plus inter-step dependency edges derived from chunk
// read/write sets, and a small pass framework (Pass, Pipeline) rewrites
// the program under those constraints.
//
// The point of the rewrites is overlap: fabric.Engine can hide step
// k+1's 25 µs MRR reconfiguration under step k's transmission, but only
// when the two steps' pooled (direction, wavelength, arc) circuits are
// conflict-free under the internal/rwa model (SWOT-style, see
// PAPERS.md). The engine alone can merely *find* such boundaries; the
// passes here *manufacture* them — reordering dependency-independent
// steps so disjoint ones sit adjacent, re-coloring wavelengths to break
// boundary clashes, and splitting steps so the second half's circuits
// are wavelength-shifted clones of the first's. Program.Boundaries
// exports the resulting per-boundary disjointness, which the engine
// consumes via fabric.Options.BoundaryDisjoint instead of re-probing.
//
// Lower → (no passes) → Raise reproduces the input schedule exactly, so
// with every pass disabled the engine's timing is bit-identical to the
// flat path (asserted by the round-trip tests).
package ir

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/rwa"
	"wrht/internal/topo"
)

// Step is one schedule step in IR form: the transfers (whose Dir,
// Wavelength and Chunk fields are the circuit metadata passes rewrite),
// the fiber arc each transfer occupies (Arcs[i] belongs to
// Transfers[i]), and the indices of earlier steps this one depends on
// through a chunk read/write hazard (RAW, WAR or WAW on some node's
// element range). Passes must keep Arcs in sync with Transfers and may
// only reorder steps without violating Deps.
type Step struct {
	Phase     core.Phase
	Transfers []core.Transfer
	Arcs      []topo.Arc
	Deps      []int
}

// maxWavelength returns the step's wavelength count (max index + 1).
func (s *Step) maxWavelength() int {
	m := 0
	for _, t := range s.Transfers {
		if t.Wavelength+1 > m {
			m = t.Wavelength + 1
		}
	}
	return m
}

// Program is a schedule under transformation. Budget is the wavelength
// budget passes must respect (0 disables the cap, matching
// Schedule.Validate semantics).
type Program struct {
	Algorithm string
	Ring      topo.Ring
	Budget    int
	Steps     []Step

	// ix is the shared occupancy index behind every disjointness probe
	// and validation; each rwa entry point resets it, so one index
	// serves the whole program.
	ix *rwa.Index
}

// LowerSource is Lower over a step stream. The IR is inherently
// materialized — dependency edges, reordering passes and boundary
// export all need random access to the whole program — so the stream
// is collected first and lowered through the materialized path; peak
// memory is O(total schedule), not the O(max step) of the purely
// streaming consumers (StepValidator, fabric.Engine.RunStream). Use it
// only where IR rewrites are actually wanted; at step counts where
// materialization hurts, run the stream directly.
func LowerSource(src core.StepSource, budget int) (*Program, error) {
	return Lower(core.Collect(src), budget)
}

// Lower converts a schedule into IR form, computing each transfer's
// occupied arc and the inter-step dependency edges. The schedule is
// validated first (against budget, 0 = uncapped) so passes start from a
// legal program; the input is not retained or mutated.
func Lower(s *core.Schedule, budget int) (*Program, error) {
	if err := s.Validate(budget); err != nil {
		return nil, fmt.Errorf("ir: lower: %w", err)
	}
	p := &Program{
		Algorithm: s.Algorithm,
		Ring:      s.Ring,
		Budget:    budget,
		ix:        rwa.NewIndex(s.Ring),
	}
	if len(s.Steps) > 0 {
		p.Steps = make([]Step, len(s.Steps))
	}
	for i, st := range s.Steps {
		ns := Step{Phase: st.Phase}
		if len(st.Transfers) > 0 {
			ns.Transfers = make([]core.Transfer, len(st.Transfers))
			copy(ns.Transfers, st.Transfers)
			ns.Arcs = make([]topo.Arc, len(st.Transfers))
			for j, t := range st.Transfers {
				ns.Arcs[j] = s.Ring.ArcOf(t.Src, t.Dst, t.Dir)
			}
		}
		p.Steps[i] = ns
	}
	p.analyze()
	return p, nil
}

// Raise converts the program back to a flat schedule. The result shares
// nothing with the program, and Lower → Raise with no passes in between
// reproduces the original schedule exactly (reflect.DeepEqual).
func (p *Program) Raise() *core.Schedule {
	s := &core.Schedule{Algorithm: p.Algorithm, Ring: p.Ring}
	if len(p.Steps) > 0 {
		s.Steps = make([]core.Step, len(p.Steps))
	}
	for i, st := range p.Steps {
		cs := core.Step{Phase: st.Phase}
		if len(st.Transfers) > 0 {
			cs.Transfers = make([]core.Transfer, len(st.Transfers))
			copy(cs.Transfers, st.Transfers)
		}
		s.Steps[i] = cs
	}
	return s
}

// check re-validates the program after a mutating pass, reusing the
// shared occupancy index.
func (p *Program) check() error {
	return p.Raise().ValidateWithIndex(p.ix, p.Budget)
}

// disjointPair reports whether two steps' circuits can be up
// simultaneously: the pooled (direction, wavelength, arc) sets of both
// steps must be conflict-free. This is the same probe fabric.Engine's
// overlap mode runs, over the arcs the program already carries.
func (p *Program) disjointPair(a, b *Step) bool {
	n := len(a.Transfers) + len(b.Transfers)
	reqs := make([]rwa.Request, 0, n)
	arcs := make([]topo.Arc, 0, n)
	asn := make(rwa.Assignment, 0, n)
	for _, st := range [2]*Step{a, b} {
		for i, t := range st.Transfers {
			reqs = append(reqs, rwa.Request{Src: t.Src, Dst: t.Dst, Dir: t.Dir})
			arcs = append(arcs, st.Arcs[i])
			asn = append(asn, t.Wavelength)
		}
	}
	return p.ix.ConflictFree(reqs, arcs, asn)
}

// Boundaries returns the per-boundary disjointness of the program:
// entry k answers whether steps k and k+1 may hold their circuits
// simultaneously. The slice has NumSteps-1 entries (empty, non-nil,
// for programs of at most one step) and plugs directly into
// fabric.Options.BoundaryDisjoint.
func (p *Program) Boundaries() []bool {
	out := make([]bool, max(len(p.Steps)-1, 0))
	for k := range out {
		out[k] = p.disjointPair(&p.Steps[k], &p.Steps[k+1])
	}
	return out
}

// DisjointBoundaries counts the overlap-eligible boundaries — the
// quantity every pass tries to grow.
func (p *Program) DisjointBoundaries() int {
	n := 0
	for k := 0; k+1 < len(p.Steps); k++ {
		if p.disjointPair(&p.Steps[k], &p.Steps[k+1]) {
			n++
		}
	}
	return n
}
