package rwa

import (
	"fmt"
	"math/bits"
	"math/rand"
	"time"

	"wrht/internal/topo"
)

// probeStart returns the wall-clock start time for a probe, or the zero
// time when no latency sink is attached — the timed path costs two
// pointer comparisons and one clock read, the untimed path only the
// comparisons (time.Now allocates nothing, preserving the zero-alloc
// probe pins).
func probeStart(st *Stats) time.Time {
	if st != nil && st.Latency != nil {
		return time.Now()
	}
	return time.Time{}
}

// probeEnd records the probe's duration into the stats' latency sink,
// if any.
func probeEnd(st *Stats, t0 time.Time) {
	if st != nil && st.Latency != nil {
		st.Latency.Observe(time.Since(t0).Seconds())
	}
}

// Index is a per-direction segment×wavelength occupancy table for one
// ring. For each direction it keeps one uint64 row per 64-wavelength
// word, holding the occupancy mask of wavelengths [64k, 64k+64) for each
// of the N fiber segments: occ[dir][k*n+s] bit b set means wavelength
// 64k+b is occupied on segment s. A parallel summary level stores, per
// word, the OR of each aligned 64-segment block (blk[dir][k*nb+j] = OR
// of occ over segments [64j, 64j+64)), so the union of a long arc reads
// whole blocks with one load each and only scans segments in the two
// partial blocks at the arc ends. Coloring a request ORs its arc's masks
// this way (with early exit once a word saturates) and picks via
// trailing-zero scan, so assignment and validation cost
// O(R · arcLen/64 · λ/64) plus the per-segment Occupy writes — instead
// of a pairwise O(R²·λ) sweep. Word-major layout also makes growth
// allocation-only: a new 64-wavelength word appends fresh rows, never
// re-laying existing occupancy.
//
// An Index is not safe for concurrent use. AssignInto, Validate and
// ConflictFree reset it on entry, so one Index can be reused across many
// steps with zero steady-state allocation; the lower-level
// Occupy/FirstFree/RandomFree/Occupied primitives operate on the current
// contents.
type Index struct {
	// Stats, when non-nil, accumulates probe counters (fit calls, words
	// scanned, saturation early-exits, conflict probes). May be shared
	// across indexes; see Stats.
	Stats *Stats

	n       int // ring size (segments per direction)
	nb      int // summary blocks per row: ceil(n/64)
	words   int // 64-wavelength words in use: ceil((maxOccupied+1)/64)
	occ     [2][]uint64
	blk     [2][]uint64
	scratch []uint64 // per-word arc unions, reused by RandomFree
	base    []baseCell
}

// baseCell is one pre-occupied (masked) cell set that survives Reset.
type baseCell struct {
	dir topo.Direction
	arc topo.Arc
	w   int
}

// NewIndex returns an empty occupancy index for ring r.
func NewIndex(r topo.Ring) *Index {
	ix := &Index{n: r.N, nb: (r.N + 63) / 64}
	for d := range ix.occ {
		ix.occ[d] = make([]uint64, r.N)
		ix.blk[d] = make([]uint64, ix.nb)
	}
	ix.scratch = make([]uint64, 1)
	return ix
}

// Reset clears all occupancy except the pre-occupied cells added with
// Preoccupy, which are re-applied, keeping the allocated capacity.
func (ix *Index) Reset() {
	for d := range ix.occ {
		clear(ix.occ[d][:ix.words*ix.n])
		clear(ix.blk[d][:ix.words*ix.nb])
	}
	ix.words = 0
	for _, c := range ix.base {
		ix.Occupy(c.dir, c.arc, c.w)
	}
}

// Preoccupy marks wavelength w occupied on every segment of arc a in
// direction dir persistently: unlike Occupy, the cells survive Reset
// (and therefore AssignInto/Validate/ConflictFree, which reset on
// entry), so first/random fit route around them as if a permanent
// circuit held them. Fault masks use this to model dead wavelengths and
// cut fiber segments (see internal/fault).
func (ix *Index) Preoccupy(dir topo.Direction, a topo.Arc, w int) {
	ix.base = append(ix.base, baseCell{dir: dir, arc: a, w: w})
	ix.Occupy(dir, a, w)
}

// ClearPreoccupied drops every pre-occupied cell and clears the index.
func (ix *Index) ClearPreoccupied() {
	ix.base = ix.base[:0]
	ix.Reset()
}

// arcRanges splits the wrapped segment interval of a into at most two
// ascending half-open ranges [lo1,hi1) and [lo2,hi2).
func (ix *Index) arcRanges(a topo.Arc) (lo1, hi1, lo2, hi2 int) {
	if a.N != ix.n {
		panic(fmt.Sprintf("rwa: arc modulus %d != index ring size %d", a.N, ix.n))
	}
	if a.Len <= 0 {
		return 0, 0, 0, 0
	}
	if a.Len >= ix.n {
		return 0, ix.n, 0, 0
	}
	hi := a.Lo + a.Len
	if hi <= ix.n {
		return a.Lo, hi, 0, 0
	}
	return a.Lo, ix.n, 0, hi - ix.n
}

const full = ^uint64(0)

// unionRange ORs one word's occupancy over segments [lo, hi) into m,
// reading whole 64-segment summary blocks where possible and stopping as
// soon as the mask saturates — for the densely packed low wavelengths
// that happens within a few loads, making saturated words nearly free.
func unionRange(occRow, blkRow []uint64, lo, hi int, m uint64) uint64 {
	if hi-lo <= 128 {
		for _, v := range occRow[lo:hi] {
			if m |= v; m == full {
				return m
			}
		}
		return m
	}
	head := (lo + 63) &^ 63
	tail := hi &^ 63
	for _, v := range occRow[lo:head] {
		if m |= v; m == full {
			return m
		}
	}
	for _, v := range blkRow[head>>6 : tail>>6] {
		if m |= v; m == full {
			return m
		}
	}
	for _, v := range occRow[tail:hi] {
		if m |= v; m == full {
			return m
		}
	}
	return m
}

// unionWord returns the OR of one word over every segment of the arc.
func (ix *Index) unionWord(dir topo.Direction, k, lo1, hi1, lo2, hi2 int) uint64 {
	occRow := ix.occ[dir][k*ix.n : (k+1)*ix.n]
	blkRow := ix.blk[dir][k*ix.nb : (k+1)*ix.nb]
	m := unionRange(occRow, blkRow, lo1, hi1, 0)
	if m != full && hi2 > lo2 {
		m = unionRange(occRow, blkRow, lo2, hi2, m)
	}
	return m
}

// grow extends the occupancy to hold word index `word`: append-only in
// the word-major layout (fresh zero rows per new word, nothing re-laid).
func (ix *Index) grow(word int) {
	extend := func(s []uint64, rowLen int) []uint64 {
		need := (word + 1) * rowLen
		if cap(s) >= need {
			return s[:need]
		}
		ns := make([]uint64, need, 2*need)
		copy(ns, s)
		return ns
	}
	for d := range ix.occ {
		ix.occ[d] = extend(ix.occ[d], ix.n)
		ix.blk[d] = extend(ix.blk[d], ix.nb)
	}
	if len(ix.scratch) <= word {
		ix.scratch = make([]uint64, word+1)
	}
}

// Occupy marks wavelength w occupied on every segment of arc a in
// direction dir.
func (ix *Index) Occupy(dir topo.Direction, a topo.Arc, w int) {
	if w < 0 {
		panic(fmt.Sprintf("rwa: negative wavelength %d", w))
	}
	lo1, hi1, lo2, hi2 := ix.arcRanges(a)
	word, mask := w>>6, uint64(1)<<(w&63)
	if word >= ix.words {
		ix.grow(word)
		ix.words = word + 1
	}
	occRow := ix.occ[dir][word*ix.n : (word+1)*ix.n]
	blkRow := ix.blk[dir][word*ix.nb : (word+1)*ix.nb]
	set := func(lo, hi int) {
		for s := lo; s < hi; s++ {
			occRow[s] |= mask
		}
		for j := lo >> 6; j<<6 < hi; j++ {
			blkRow[j] |= mask
		}
	}
	set(lo1, hi1)
	if hi2 > lo2 {
		set(lo2, hi2)
	}
}

// Occupied reports whether wavelength w is occupied on any segment of
// arc a in direction dir.
func (ix *Index) Occupied(dir topo.Direction, a topo.Arc, w int) bool {
	lo1, hi1, lo2, hi2 := ix.arcRanges(a)
	word := w >> 6
	if w < 0 || word >= ix.words {
		return false
	}
	mask := uint64(1) << (w & 63)
	occRow := ix.occ[dir][word*ix.n : (word+1)*ix.n]
	blkRow := ix.blk[dir][word*ix.nb : (word+1)*ix.nb]
	hit := func(lo, hi int) bool {
		if hi-lo <= 128 {
			for _, v := range occRow[lo:hi] {
				if v&mask != 0 {
					return true
				}
			}
			return false
		}
		head, tail := (lo+63)&^63, hi&^63
		for _, v := range occRow[lo:head] {
			if v&mask != 0 {
				return true
			}
		}
		for _, v := range blkRow[head>>6 : tail>>6] {
			if v&mask != 0 {
				return true
			}
		}
		for _, v := range occRow[tail:hi] {
			if v&mask != 0 {
				return true
			}
		}
		return false
	}
	return hit(lo1, hi1) || (hi2 > lo2 && hit(lo2, hi2))
}

// FirstFree returns the lowest wavelength free on every segment of arc a
// in direction dir.
func (ix *Index) FirstFree(dir topo.Direction, a topo.Arc) int {
	t0 := probeStart(ix.Stats)
	lo1, hi1, lo2, hi2 := ix.arcRanges(a)
	w := ix.words << 6
	scanned, saturated := 0, 0
	for k := 0; k < ix.words; k++ {
		m := ix.unionWord(dir, k, lo1, hi1, lo2, hi2)
		scanned++
		if m != full {
			w = k<<6 + bits.TrailingZeros64(^m)
			break
		}
		saturated++
	}
	if st := ix.Stats; st != nil {
		st.FirstFitCalls.Add(1)
		st.WordsScanned.Add(int64(scanned))
		st.SaturatedWords.Add(int64(saturated))
	}
	probeEnd(ix.Stats, t0)
	return w
}

// FirstFreeAvoiding returns the lowest wavelength free on every segment
// of arc a in direction dir in *both* this index and avoid — a biased
// first-fit: avoid typically holds the circuits of the adjacent
// schedule steps, so the pick breaks (direction, wavelength) clashes at
// step boundaries and keeps the boundary overlap-eligible (see
// internal/ir's recolor pass). If no such wavelength exists below limit
// (limit <= 0 means uncapped), the bias is dropped and the plain
// FirstFree answer is returned, so the assignment never degrades below
// unbiased first-fit. avoid may be nil (plain FirstFree) but must be
// built for the same ring size otherwise.
func (ix *Index) FirstFreeAvoiding(dir topo.Direction, a topo.Arc, avoid *Index, limit int) int {
	if avoid == nil {
		return ix.FirstFree(dir, a)
	}
	if avoid.n != ix.n {
		panic(fmt.Sprintf("rwa: avoid index ring size %d != %d", avoid.n, ix.n))
	}
	t0 := probeStart(ix.Stats)
	lo1, hi1, lo2, hi2 := ix.arcRanges(a)
	words := max(ix.words, avoid.words)
	w := words << 6
	scanned := 0
	for k := 0; k < words; k++ {
		var m uint64
		if k < ix.words {
			m = ix.unionWord(dir, k, lo1, hi1, lo2, hi2)
		}
		if m != full && k < avoid.words {
			m |= avoid.unionWord(dir, k, lo1, hi1, lo2, hi2)
		}
		scanned++
		if m != full {
			w = k<<6 + bits.TrailingZeros64(^m)
			break
		}
	}
	if st := ix.Stats; st != nil {
		st.BiasedFitCalls.Add(1)
		st.WordsScanned.Add(int64(scanned))
	}
	probeEnd(ix.Stats, t0)
	if limit > 0 && w >= limit {
		if st := ix.Stats; st != nil {
			st.BiasedFallbacks.Add(1)
		}
		// The fallback FirstFree times itself.
		return ix.FirstFree(dir, a)
	}
	return w
}

// RandomFree draws a uniformly random free wavelength on arc a in
// direction dir, reproducing the legacy draw exactly: the candidate set
// is the free wavelengths below max(occupied on the arc)+2, enumerated
// in increasing order, and exactly one rng.Intn call selects among them.
func (ix *Index) RandomFree(dir topo.Direction, a topo.Arc, rng *rand.Rand) int {
	if rng == nil {
		panic("rwa: RandomFit requires a rand source")
	}
	t0 := probeStart(ix.Stats)
	lo1, hi1, lo2, hi2 := ix.arcRanges(a)
	u := ix.scratch[:ix.words]
	limit := 1 // max occupied + 2; 1 when the arc is entirely free
	saturated := 0
	for k := ix.words - 1; k >= 0; k-- {
		u[k] = ix.unionWord(dir, k, lo1, hi1, lo2, hi2)
		if u[k] == full {
			saturated++
		}
		if limit == 1 && u[k] != 0 {
			limit = k<<6 + 65 - bits.LeadingZeros64(u[k])
		}
	}
	if st := ix.Stats; st != nil {
		st.RandomFitCalls.Add(1)
		st.WordsScanned.Add(int64(ix.words))
		st.SaturatedWords.Add(int64(saturated))
	}
	// Timed up to here: the union scan dominates; the constant-time
	// selection below draws from precomputed words.
	probeEnd(ix.Stats, t0)
	// wordAt treats wavelengths at or beyond the limit as occupied so
	// they never count as candidates; words past the in-use range are
	// entirely free.
	wordAt := func(k int) uint64 {
		var m uint64
		if k < len(u) {
			m = u[k]
		}
		if hi := limit - k<<6; hi < 64 {
			m |= full << hi
		}
		return m
	}
	free := 0
	for k := 0; k<<6 < limit; k++ {
		free += 64 - bits.OnesCount64(wordAt(k))
	}
	pick := rng.Intn(free)
	for k := 0; ; k++ {
		m := wordAt(k)
		c := 64 - bits.OnesCount64(m)
		if pick >= c {
			pick -= c
			continue
		}
		fm := ^m
		for ; pick > 0; pick-- {
			fm &= fm - 1 // clear lowest free bit: select the pick-th one
		}
		return k<<6 + bits.TrailingZeros64(fm)
	}
}

// AssignInto colors reqs into asn (which must have the same length)
// using the given pre-computed arcs (ArcsOf(r, reqs)). The index is
// reset on entry; after the initial capacity warm-up, repeated calls
// perform zero heap allocations. Returns the wavelength count used.
func (ix *Index) AssignInto(asn Assignment, reqs []Request, arcs []topo.Arc, strat Strategy, rng *rand.Rand) int {
	if len(asn) != len(reqs) || len(arcs) != len(reqs) {
		panic(fmt.Sprintf("rwa: %d requests with %d arcs and %d assignment slots", len(reqs), len(arcs), len(asn)))
	}
	ix.Reset()
	maxUsed := 0
	for i, q := range reqs {
		var w int
		switch strat {
		case FirstFit:
			w = ix.FirstFree(q.Dir, arcs[i])
		case RandomFit:
			w = ix.RandomFree(q.Dir, arcs[i], rng)
		default:
			panic("rwa: unknown strategy")
		}
		ix.Occupy(q.Dir, arcs[i], w)
		asn[i] = w
		if w+1 > maxUsed {
			maxUsed = w + 1
		}
	}
	return maxUsed
}

// MaskedConflict reports a request assigned onto a pre-occupied
// (masked) cell: no other request clashes with it, but the resource is
// unavailable (a dead wavelength or a cut fiber segment under a fault
// mask).
type MaskedConflict struct {
	I          int // request index
	Wavelength int
}

func (c MaskedConflict) Error() string {
	return fmt.Sprintf("rwa: request %d uses masked (pre-occupied) wavelength %d", c.I, c.Wavelength)
}

// Validate checks the assignment against the given pre-computed arcs
// (ArcsOf(r, reqs)). The index is reset on entry and used as the
// occupancy state, so a clean pass costs O(R · arcLen/64 · λ/64). Any
// detected problem defers to the quadratic reference implementation so
// the returned error — including which Conflict pair is reported — is
// identical to the legacy behaviour; a hit that the pairwise oracle
// cannot see (a pre-occupied masked cell) is reported as a
// MaskedConflict instead.
func (ix *Index) Validate(reqs []Request, arcs []topo.Arc, asn Assignment, wavelengths int) error {
	r := topo.Ring{N: ix.n}
	if len(reqs) != len(asn) {
		return validateQuadratic(r, reqs, asn, wavelengths)
	}
	if len(arcs) != len(reqs) {
		panic(fmt.Sprintf("rwa: %d requests but %d arcs", len(reqs), len(arcs)))
	}
	ix.Reset()
	for i, q := range reqs {
		if asn[i] < 0 || (wavelengths > 0 && asn[i] >= wavelengths) || ix.Occupied(q.Dir, arcs[i], asn[i]) {
			if err := validateQuadratic(r, reqs, asn, wavelengths); err != nil {
				return err
			}
			return MaskedConflict{I: i, Wavelength: asn[i]}
		}
		ix.Occupy(q.Dir, arcs[i], asn[i])
	}
	return nil
}

// ConflictFree reports whether the assignment is conflict-free on the
// given arcs, skipping range checks and error construction. Unlike
// Validate it never falls back to the quadratic path, so it stays cheap
// even when conflicts are common (the fabric overlap probe calls it once
// per step boundary and conflicts simply mean "don't overlap here").
func (ix *Index) ConflictFree(reqs []Request, arcs []topo.Arc, asn Assignment) bool {
	t0 := probeStart(ix.Stats)
	ix.Reset()
	ok := true
	for i, q := range reqs {
		if asn[i] < 0 || ix.Occupied(q.Dir, arcs[i], asn[i]) {
			ok = false
			break
		}
		ix.Occupy(q.Dir, arcs[i], asn[i])
	}
	if st := ix.Stats; st != nil {
		st.ConflictProbes.Add(1)
		if !ok {
			st.ConflictsFound.Add(1)
		}
	}
	probeEnd(ix.Stats, t0)
	return ok
}
