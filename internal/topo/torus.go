package topo

import "fmt"

// Torus is an R×C torus of optical ring rows and columns, the §6.1
// extension target. Node (r, c) has index r*C + c. Every row is a
// C-node ring and every column is an R-node ring, so WRHT can run its
// reduce stage per row and then synchronize representatives per column.
type Torus struct {
	Rows, Cols int
}

// NewTorus returns an r×c torus. It panics if either dimension is < 1.
func NewTorus(r, c int) Torus {
	if r < 1 || c < 1 {
		panic(fmt.Sprintf("topo: torus %dx%d has empty dimension", r, c))
	}
	return Torus{Rows: r, Cols: c}
}

// N returns the node count.
func (t Torus) N() int { return t.Rows * t.Cols }

// Index returns the node id of coordinate (r, c).
func (t Torus) Index(r, c int) int { return r*t.Cols + c }

// Coord returns the (row, col) coordinate of node id.
func (t Torus) Coord(id int) (r, c int) { return id / t.Cols, id % t.Cols }

// RowRing returns the ring formed by row r together with the node ids in
// ring order (position i on the ring is column i).
func (t Torus) RowRing(r int) (Ring, []int) {
	ids := make([]int, t.Cols)
	for c := 0; c < t.Cols; c++ {
		ids[c] = t.Index(r, c)
	}
	return NewRing(t.Cols), ids
}

// ColRing returns the ring formed by column c together with the node ids
// in ring order (position i on the ring is row i).
func (t Torus) ColRing(c int) (Ring, []int) {
	ids := make([]int, t.Rows)
	for r := 0; r < t.Rows; r++ {
		ids[r] = t.Index(r, c)
	}
	return NewRing(t.Rows), ids
}

// Mesh is an R×C mesh: like Torus but without the wraparound links, the
// second §6.1 extension target. On a mesh line (row or column) a circuit
// from a to b occupies the segments between them; there is only one
// route, so Direction degenerates to "toward higher index" / "toward
// lower index".
type Mesh struct {
	Rows, Cols int
}

// NewMesh returns an r×c mesh. It panics if either dimension is < 1.
func NewMesh(r, c int) Mesh {
	if r < 1 || c < 1 {
		panic(fmt.Sprintf("topo: mesh %dx%d has empty dimension", r, c))
	}
	return Mesh{Rows: r, Cols: c}
}

// N returns the node count.
func (m Mesh) N() int { return m.Rows * m.Cols }

// Index returns the node id of coordinate (r, c).
func (m Mesh) Index(r, c int) int { return r*m.Cols + c }

// Coord returns the (row, col) coordinate of node id.
func (m Mesh) Coord(id int) (r, c int) { return id / m.Cols, id % m.Cols }

// LineSegments returns the occupied segment interval [lo, hi) on a mesh
// line for a circuit between positions a and b (segment i joins position
// i and i+1).
func LineSegments(a, b int) (lo, hi int) {
	if a > b {
		a, b = b, a
	}
	return a, b
}
