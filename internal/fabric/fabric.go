// Package fabric unifies the optical and electrical simulators behind a
// single schedule-execution engine. A Fabric abstracts one interconnect
// backend — the per-step circuit setup cost plus the per-step transfer
// timing — and the Engine executes any core.Schedule or core.Profile on
// any backend, reporting a structured per-step cost breakdown
// (reconfiguration / serialization / O-E-O / router-delay components).
//
// Two backends implement the interface: the TeraRack WDM ring
// (optical.Params.Fabric, Eq-6 timing) and the two-level fat-tree flow
// model (electrical.Network.Fabric, max–min fair rates). Because a
// schedule is fabric-agnostic — steps of point-to-point transfers — the
// engine unlocks cross-fabric experiments: the electrical baselines can
// be timed on optics and WRHT on the fat-tree (cmd/wrhtsim crossfabric).
//
// The engine also offers an opt-in reconfiguration–communication overlap
// mode (Options.Overlap) in the spirit of SWOT (arXiv:2510.19322) and
// "To Reconfigure or Not to Reconfigure" (arXiv:2602.10468): step k+1's
// circuit setup is pipelined under step k's ongoing transmission
// whenever the two steps' (direction, wavelength) circuits are disjoint
// under the internal/rwa conflict model, hiding up to
// min(setup, transmission) per boundary and therefore at most (θ−1)·a
// in total. See engine.go for the execution loop.
package fabric

import "wrht/internal/core"

// StepCost is the timing decomposition of one communication step on a
// fabric. The component fields are the reporting breakdown; Total is the
// authoritative step duration, set by the backend with its native
// floating-point operation order so that engine results are bit-identical
// to the pre-engine simulators (the components sum to Total only up to
// rounding on the electrical fabric, where the fluid model couples them).
type StepCost struct {
	// Setup is the circuit-setup cost charged before the step starts
	// (the MRR reconfiguration delay a on the optical ring; zero on the
	// packet-switched fat-tree). Only Setup can be hidden by the
	// engine's overlap mode.
	Setup float64
	// Serialization is the wire time of the critical circuit or flow
	// (payload bytes at the line rate, including protocol headers on the
	// electrical fabric).
	Serialization float64
	// OEO is the per-packet optical-electrical-optical conversion time
	// on the critical circuit (optical fabric only).
	OEO float64
	// RouterDelay is the store-and-forward pipeline latency after the
	// last flow drains (electrical fabric only).
	RouterDelay float64
	// Total is the full step duration including Setup.
	Total float64
	// MaxBytes is the payload of the critical circuit, before any
	// per-packet wire inflation.
	MaxBytes float64
}

// Transmission returns the portion of the step that is data movement
// rather than circuit setup — the window the next step's setup can be
// hidden under in overlap mode.
func (c StepCost) Transmission() float64 { return c.Total - c.Setup }

// Fabric abstracts one interconnect backend for the engine: how much a
// step's circuit setup costs and how long its transfers take.
// Implementations must be safe for concurrent use by independent engine
// runs (the experiment sweeps time schedules from many goroutines).
type Fabric interface {
	// Name identifies the backend ("optical", "electrical") in results
	// and exported traces.
	Name() string
	// CheckSchedule rejects schedules the fabric cannot host at all
	// (e.g. a schedule over more nodes than the fat-tree has hosts).
	CheckSchedule(s *core.Schedule) error
	// CircuitBudget returns the per-direction circuit count available to
	// one step, used to validate explicit schedules; zero means
	// unconstrained (the packet-switched fabric multiplexes freely).
	// withFibers widens the budget by the physical fiber multiplicity
	// per direction (TeraRack routes two fiber rings each way) and
	// errors when the fabric's multiplicity is configured below one.
	CircuitBudget(withFibers bool) (int, error)
	// StepCost times one explicit step of a schedule carrying an
	// elems-element (4-byte) per-node vector.
	StepCost(st core.Step, elems int) StepCost
	// GroupCost times one step of an analytic profile group whose
	// busiest circuit carries bytes. Fabrics without circuit semantics
	// document what approximation they apply (the fat-tree charges the
	// congestion-free serialization plus the worst-case router path).
	GroupCost(bytes float64) StepCost
	// StepKey returns a memoization key under which StepCost(st, elems)
	// may be cached for the duration of one engine run, or ok=false to
	// disable memoization. Backends with expensive per-step solvers
	// (the max–min fluid model) use this to solve repeated steps once.
	StepKey(st core.Step, elems int) (key string, ok bool)
}
