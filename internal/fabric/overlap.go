package fabric

import (
	"wrht/internal/core"
	"wrht/internal/rwa"
	"wrht/internal/topo"
)

// Reconfiguration–communication overlap (SWOT-style): while step k's
// circuits are still streaming, the control plane may already retune the
// MRRs for step k+1 — but only if none of step k+1's circuits claims a
// (direction, wavelength) resource that an active step-k circuit holds
// on an overlapping fiber arc, because retuning a resonator onto a
// wavelength that is passing live traffic corrupts it. The decision is
// delegated to the internal/rwa conflict model: the two steps' circuits
// are pooled with their already-assigned wavelengths and checked against
// a bitset occupancy index, one near-linear pass per boundary. A clash
// rejects the boundary, falling back to the sequential setup-then-
// transmit behaviour for that step.

// overlapProbe owns the occupancy index and request buffers behind the
// per-boundary disjointness checks of one engine run. ConflictFree
// resets the index on entry, so a single probe serves every boundary of
// a schedule with zero steady-state allocation, instead of building a
// fresh rwa.NewIndex per boundary (the allocation profile is pinned by
// TestOverlapProbeReusesAllocations).
type overlapProbe struct {
	ix   *rwa.Index
	reqs []rwa.Request
	arcs []topo.Arc
	asn  rwa.Assignment
}

func newOverlapProbe(ring topo.Ring) *overlapProbe {
	return &overlapProbe{ix: rwa.NewIndex(ring)}
}

// disjoint reports whether steps a and b can have their circuits up
// simultaneously: the pooled request set of both steps must be
// conflict-free under the rwa model. stats, when non-nil, accumulates
// the probe counters.
func (pb *overlapProbe) disjoint(ring topo.Ring, a, b core.Step, stats *rwa.Stats) bool {
	// Size the pooled buffers exactly on first use (or when a bigger
	// boundary shows up), so a run probing one boundary costs the same
	// three allocations the pre-probe code paid instead of append's
	// doubling growth, and later boundaries reuse them at zero cost.
	if n := len(a.Transfers) + len(b.Transfers); cap(pb.reqs) < n {
		pb.reqs = make([]rwa.Request, 0, n)
		pb.asn = make(rwa.Assignment, 0, n)
		pb.arcs = make([]topo.Arc, 0, n)
	}
	pb.reqs = pb.reqs[:0]
	pb.asn = pb.asn[:0]
	pb.arcs = pb.arcs[:0]
	for _, st := range [2]core.Step{a, b} {
		for _, t := range st.Transfers {
			pb.reqs = append(pb.reqs, rwa.Request{Src: t.Src, Dst: t.Dst, Dir: t.Dir})
			pb.asn = append(pb.asn, t.Wavelength)
			pb.arcs = append(pb.arcs, ring.ArcOf(t.Src, t.Dst, t.Dir))
		}
	}
	pb.ix.Stats = stats
	return pb.ix.ConflictFree(pb.reqs, pb.arcs, pb.asn)
}
