// Package trace records experiment outputs as structured JSON so runs
// can be archived, diffed and re-plotted outside the repo (the paper's
// figures are normalized line charts; the JSON carries the raw
// series).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X string  `json:"x"`
	Y float64 `json:"y"`
}

// Series is a named sequence of points.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Run is one recorded experiment.
type Run struct {
	Experiment string             `json:"experiment"`
	Timestamp  time.Time          `json:"timestamp"`
	Params     map[string]string  `json:"params,omitempty"`
	Series     []Series           `json:"series,omitempty"`
	Scalars    map[string]float64 `json:"scalars,omitempty"`
}

// Recorder accumulates runs and writes them as a JSON document.
type Recorder struct {
	Runs []Run
	// Now supplies the timestamp Record stamps runs with; nil means
	// time.Now. Inject a fixed clock to make recorded documents
	// byte-stable (golden tests, reproducible archives).
	Now func() time.Time
}

// Record appends a run, stamping it with the recorder's clock.
func (r *Recorder) Record(run Run) {
	if run.Timestamp.IsZero() {
		now := time.Now
		if r.Now != nil {
			now = r.Now
		}
		run.Timestamp = now().UTC()
	}
	r.Runs = append(r.Runs, run)
}

// NewRun builds a run from parallel X labels and named Y series.
func NewRun(experiment string, xticks []string, series map[string][]float64, scalars map[string]float64) Run {
	run := Run{Experiment: experiment, Scalars: scalars}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ys := series[name]
		s := Series{Name: name}
		for i, y := range ys {
			x := fmt.Sprint(i)
			if i < len(xticks) {
				x = xticks[i]
			}
			s.Points = append(s.Points, Point{X: x, Y: y})
		}
		run.Series = append(run.Series, s)
	}
	return run
}

// WriteTo emits the recorded runs as indented JSON.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(struct {
		Runs []Run `json:"runs"`
	}{r.Runs}, "", "  ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	n, err := w.Write(b)
	return int64(n), err
}

// WriteFile writes the recorded runs to path.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := r.WriteTo(f); err != nil {
		return err
	}
	return nil
}

// Load reads a recorded document back.
func Load(reader io.Reader) ([]Run, error) {
	var doc struct {
		Runs []Run `json:"runs"`
	}
	dec := json.NewDecoder(reader)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return doc.Runs, nil
}
