package collective

import (
	"wrht/internal/core"
	"wrht/internal/tensor"
)

// BuildRD constructs recursive halving/doubling all-reduce (the paper's
// "Recursive Doubling" electrical baseline, §5.2): a reduce-scatter by
// recursive vector halving followed by an all-gather by recursive
// doubling, 2·log₂N steps total with per-step volume d/2, d/4, ….
// N must be a power of two (all Fig-7 configurations are).
//
// The schedule is expressed over ring positions like every other
// collective; the electrical simulator only uses the (src, dst, chunk)
// triples and the fat-tree routes them itself. For optical execution the
// transfers take the shortest ring direction; wavelength indices are
// chosen per distance so the validator accepts the schedule, though RD
// is not wavelength-efficient (it is an electrical-system algorithm).
func BuildRD(n int) (*core.Schedule, error) {
	src, err := StreamRD(n)
	if err != nil {
		return nil, err
	}
	return core.Collect(src), nil
}

// nestedBlock returns the chunk selecting block q among 2^depth blocks
// built by repeated halving, one bit of q per level. Expressing blocks
// as nested halvings (rather than flat Chunk{q, 2^depth} divisions)
// keeps a coarse block exactly equal to the union of its two children
// even when the vector length is not divisible by the block count —
// flat divisions place the rounding slack differently at different
// granularities and would make the halving exchange ship stale ranges.
func nestedBlock(q, depth int) tensor.Chunk {
	if depth <= 0 {
		return tensor.Whole
	}
	root := tensor.Chunk{Index: (q >> (depth - 1)) & 1, Of: 2}
	cur := &root
	for lvl := depth - 2; lvl >= 0; lvl-- {
		sub := &tensor.Chunk{Index: (q >> lvl) & 1, Of: 2}
		cur.Sub = sub
		cur = sub
	}
	return root
}

// wavelengthForPair spreads same-direction equal-distance pairwise
// exchanges over wavelengths: pairs at distance dist tile the ring in
// runs, and giving the run index modulo dist distinct wavelengths keeps
// overlapping arcs apart. (For XOR partners at distance 2^b the arcs of
// consecutive sources overlap; sources i and i+dist use disjoint arcs.)
func wavelengthForPair(src, dist int) int {
	if dist <= 0 {
		return 0
	}
	return src % dist
}

type errNotPow2 int

func (e errNotPow2) Error() string {
	return "collective: recursive halving/doubling requires power-of-two node count, got " + itoa(int(e))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// RDProfile returns the analytic step profile of recursive
// halving/doubling: steps t = 0..k−1 move d/2^(t+1) then the reverse.
func RDProfile(n int) (core.Profile, error) {
	p := core.Profile{Algorithm: "rd"}
	if n <= 1 {
		return p, nil
	}
	if n&(n-1) != 0 {
		return core.Profile{}, errNotPow2(n)
	}
	k := 0
	for 1<<k < n {
		k++
	}
	for t := 0; t < k; t++ {
		p.Groups = append(p.Groups, core.ProfileGroup{Steps: 1, FracOfD: 1 / float64(int64(2)<<t), Wavelengths: 1 << (k - 1 - t)})
	}
	for t := k - 1; t >= 0; t-- {
		p.Groups = append(p.Groups, core.ProfileGroup{Steps: 1, FracOfD: 1 / float64(int64(2)<<t), Wavelengths: 1 << (k - 1 - t)})
	}
	return p, nil
}
