package rwa

import (
	"fmt"
	"math/rand"

	"wrht/internal/topo"
)

// This file keeps the original pairwise (quadratic) RWA implementation as
// an unexported reference oracle. The production path in index.go must
// stay bit-identical to it: FirstFit picks the same wavelengths
// deterministically, and RandomFit consumes the exact same RNG draws
// (one Intn per request, with the same argument). The differential fuzz
// in fuzz_test.go and the parity tests in rwa_test.go enforce this.

// assignQuadratic is the original O(R²·λ) greedy: for every request it
// rebuilds the set of wavelengths used by earlier same-direction
// overlapping requests in a fresh map, then picks from it.
func assignQuadratic(r topo.Ring, reqs []Request, strat Strategy, rng *rand.Rand) (Assignment, int) {
	asn := make(Assignment, len(reqs))
	arcs := make([]topo.Arc, len(reqs))
	for i, q := range reqs {
		arcs[i] = r.ArcOf(q.Src, q.Dst, q.Dir)
	}
	maxUsed := 0
	for i := range reqs {
		used := map[int]bool{}
		for j := 0; j < i; j++ {
			if reqs[j].Dir != reqs[i].Dir {
				continue
			}
			if arcs[j].Overlaps(arcs[i]) {
				used[asn[j]] = true
			}
		}
		w := pickQuadratic(used, strat, rng)
		asn[i] = w
		if w+1 > maxUsed {
			maxUsed = w + 1
		}
	}
	return asn, maxUsed
}

// pickQuadratic selects a wavelength outside the used set. RandomFit
// materialises the free list below max(used)+2 and draws one index —
// the bitset path reproduces exactly this draw without the allocation.
func pickQuadratic(used map[int]bool, strat Strategy, rng *rand.Rand) int {
	switch strat {
	case FirstFit:
		for w := 0; ; w++ {
			if !used[w] {
				return w
			}
		}
	case RandomFit:
		if rng == nil {
			panic("rwa: RandomFit requires a rand source")
		}
		// Random fit chooses uniformly among the free wavelengths below
		// max(used)+2, which always includes at least one free slot.
		limit := 0
		for w := range used {
			if w+1 > limit {
				limit = w + 1
			}
		}
		limit++ // ensure at least one candidate above all used
		var free []int
		for w := 0; w < limit; w++ {
			if !used[w] {
				free = append(free, w)
			}
		}
		return free[rng.Intn(len(free))]
	default:
		panic("rwa: unknown strategy")
	}
}

// OracleValidate exposes the quadratic reference validator for
// differential tests in other packages: a schedule built under a fault
// mask must come out conflict-free under both the bitset index and this
// original pairwise implementation. The oracle knows nothing about
// pre-occupied cells, so a masked-cell hit that Index.Validate reports
// as MaskedConflict passes here — which is exactly the differential
// property the fault tests pin.
func OracleValidate(r topo.Ring, reqs []Request, asn Assignment, wavelengths int) error {
	return validateQuadratic(r, reqs, asn, wavelengths)
}

// validateQuadratic is the original O(R²·λ) conflict check. The fast
// Validate defers to it whenever it detects any problem, so error values
// (including which Conflict pair is reported) are identical to the
// original implementation.
func validateQuadratic(r topo.Ring, reqs []Request, asn Assignment, wavelengths int) error {
	if len(reqs) != len(asn) {
		return fmt.Errorf("rwa: %d requests but %d assignments", len(reqs), len(asn))
	}
	arcs := make([]topo.Arc, len(reqs))
	for i, q := range reqs {
		arcs[i] = r.ArcOf(q.Src, q.Dst, q.Dir)
	}
	for i := range reqs {
		if asn[i] < 0 {
			return fmt.Errorf("rwa: request %d has negative wavelength %d", i, asn[i])
		}
		if wavelengths > 0 && asn[i] >= wavelengths {
			return fmt.Errorf("rwa: request %d uses wavelength %d beyond budget %d", i, asn[i], wavelengths)
		}
		for j := i + 1; j < len(reqs); j++ {
			if reqs[i].Dir != reqs[j].Dir || asn[i] != asn[j] {
				continue
			}
			if arcs[i].Overlaps(arcs[j]) {
				return Conflict{I: i, J: j, Wavelength: asn[i]}
			}
		}
	}
	return nil
}
