package exp

import (
	"testing"
)

func TestDegradationMonotone(t *testing.T) {
	ns := []int{64, 128}
	dead := []int{0, 1, 2, 4}
	res, err := Degradation(Defaults(), ns, 8, 64e6, dead, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(ns)*len(dead) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(ns)*len(dead))
	}
	for i, pt := range res.Points {
		if pt.Dead == 0 {
			if pt.Slowdown != 1 {
				t.Errorf("N=%d healthy slowdown = %g, want 1", pt.N, pt.Slowdown)
			}
			continue
		}
		prev := res.Points[i-1]
		if pt.N != prev.N {
			t.Fatalf("points not grouped by N: %+v after %+v", pt, prev)
		}
		// Completion time is monotone non-decreasing in the dead count.
		if pt.StaticTime < prev.StaticTime {
			t.Errorf("N=%d: static time fell from %.6g (dead=%d) to %.6g (dead=%d)",
				pt.N, prev.StaticTime, prev.Dead, pt.StaticTime, pt.Dead)
		}
		if pt.EffW != 8-pt.Dead {
			t.Errorf("N=%d dead=%d: EffW = %d", pt.N, pt.Dead, pt.EffW)
		}
		// The mid-run injection pays for the restarted steps, so it can
		// never beat knowing the faults upfront.
		if pt.InjectedTime < pt.StaticTime {
			t.Errorf("N=%d dead=%d: injected %.6g faster than static %.6g",
				pt.N, pt.Dead, pt.InjectedTime, pt.StaticTime)
		}
		if pt.Reschedules < 1 {
			t.Errorf("N=%d dead=%d: no reschedule recorded", pt.N, pt.Dead)
		}
	}
}

func TestDegradationDeterministic(t *testing.T) {
	a, err := Degradation(Defaults(), []int{64}, 8, 64e6, []int{0, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Degradation(Defaults(), []int{64}, 8, 64e6, []int{0, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Errorf("point %d differs across runs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestDegradationRejectsInfeasibleDeadCounts(t *testing.T) {
	if _, err := Degradation(Defaults(), []int{64}, 4, 64e6, []int{4, 8}, 1); err == nil {
		t.Error("dead counts at or above the budget should be rejected")
	}
}
