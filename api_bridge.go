package wrht

import (
	"bytes"
	"encoding/json"

	"wrht/internal/api"
	"wrht/internal/core"
	"wrht/internal/fault"
	"wrht/internal/obs"
	"wrht/internal/rwa"
)

// This file maps the versioned API requests (internal/api) onto the
// facade's strict functional options. ServeBuild and ServeSimulate are
// the executors behind both `wrhtsim build -json` and wrhtd's
// /v1/build and /v1/simulate endpoints: one code path, one schema,
// byte-identical output (see the parity test in cmd/wrhtsim).

// ServeBuild answers one api.BuildRequest. Every non-zero request
// field becomes the corresponding Build functional option, so a field
// the chosen kind does not consume fails with a typed
// unconsumed_option error exactly where a direct Build call would
// return its strict-option error.
func ServeBuild(req api.BuildRequest) (*api.BuildResponse, *api.Error) {
	req = req.Normalize()
	if req.N < 1 {
		return nil, api.Errorf(api.CodeBadRequest, "build: n must be at least 1, got %d", req.N)
	}
	kind := Kind(req.Kind)
	if _, ok := buildAccepts[kind]; !ok {
		return nil, api.Errorf(api.CodeUnknownKind, "unknown collective kind %q", req.Kind)
	}
	if req.Stream {
		return streamBuild(req)
	}
	opts, aerr := buildOptions(req)
	if aerr != nil {
		return nil, aerr
	}
	s, err := Build(kind, req.N, opts...)
	if err != nil {
		return nil, api.Errorf(api.CodeBuildFailed, "%v", err)
	}
	resp := &api.BuildResponse{
		Version:   api.Version,
		Kind:      req.Kind,
		Algorithm: s.Algorithm,
		N:         req.N,
		Steps:     s.NumSteps(),
	}
	for _, st := range s.Steps {
		resp.Transfers += len(st.Transfers)
	}
	if req.Wavelengths > 0 {
		if err := s.Validate(req.Wavelengths); err != nil {
			return nil, api.Errorf(api.CodeBuildFailed, "schedule validation: %v", err)
		}
		resp.Wavelengths = req.Wavelengths
		resp.Validated = true
	}
	return resp, nil
}

// streamBuild is the stream-and-consume construction path: the
// schedule is validated step by step as it streams (peak memory
// O(max step) + O(index)) and never materialized.
func streamBuild(req api.BuildRequest) (*api.BuildResponse, *api.Error) {
	if req.Kind != string(KindWRHT) {
		return nil, api.Errorf(api.CodeBadRequest, "build: stream mode supports only kind %q, got %q", KindWRHT, req.Kind)
	}
	if req.Faults != nil || req.Rows != 0 || req.Cols != 0 || len(req.Participants) > 0 || req.Root != nil {
		return nil, api.Errorf(api.CodeBadRequest, "build: stream mode takes only n, wavelengths, group_size, max_group_size and no_all_to_all")
	}
	src, err := core.StreamWRHT(core.Config{
		N:               req.N,
		Wavelengths:     req.Wavelengths,
		GroupSize:       req.GroupSize,
		MaxGroupSize:    req.MaxGroupSize,
		DisableAllToAll: req.NoAllToAll,
	})
	if err != nil {
		return nil, api.Errorf(api.CodeBuildFailed, "%v", err)
	}
	ring := src.Ring()
	v := core.NewStepValidator(ring, rwa.NewIndex(ring), req.Wavelengths)
	steps, transfers := 0, 0
	for {
		st, ok := src.Next()
		if !ok {
			break
		}
		if err := v.Step(st); err != nil {
			return nil, api.Errorf(api.CodeBuildFailed, "%v", err)
		}
		steps++
		transfers += len(st.Transfers)
	}
	return &api.BuildResponse{
		Version:     api.Version,
		Kind:        req.Kind,
		Algorithm:   src.Algorithm(),
		N:           ring.N,
		Wavelengths: req.Wavelengths,
		Steps:       steps,
		Transfers:   transfers,
		Validated:   true,
		Streamed:    true,
	}, nil
}

// buildOptions maps the request's set fields onto Build options,
// pre-classifying the strict-option check so the error carries a
// typed code instead of Build's plain error.
func buildOptions(req api.BuildRequest) ([]BuildOption, *api.Error) {
	kind := Kind(req.Kind)
	var names []string
	var opts []BuildOption
	add := func(name string, o BuildOption) {
		names = append(names, name)
		opts = append(opts, o)
	}
	if req.Wavelengths != 0 {
		add("WithWavelengths", WithWavelengths(req.Wavelengths))
	}
	if req.GroupSize != 0 {
		add("WithGroupSize", WithGroupSize(req.GroupSize))
	}
	if req.MaxGroupSize != 0 {
		add("WithMaxGroupSize", WithMaxGroupSize(req.MaxGroupSize))
	}
	if req.Rows != 0 || req.Cols != 0 {
		add("WithDims", WithDims(req.Rows, req.Cols))
	}
	if len(req.Participants) > 0 {
		add("WithParticipants", WithParticipants(req.Participants...))
	}
	if req.Root != nil {
		add("WithRoot", WithRoot(*req.Root))
	}
	if req.NoAllToAll {
		add("WithoutAllToAll", WithoutAllToAll())
	}
	if req.Faults != nil {
		mask, aerr := sampleRequestFaults(req)
		if aerr != nil {
			return nil, aerr
		}
		add("WithFaults", WithFaults(mask))
	}
	accepted := buildAccepts[kind]
	for _, name := range names {
		found := false
		for _, a := range accepted {
			if a == name {
				found = true
				break
			}
		}
		if !found {
			return nil, api.Errorf(api.CodeUnconsumedOption, "option %s is not consumed by kind %q", name, kind)
		}
	}
	return opts, nil
}

// sampleRequestFaults draws the request's fault mask; dead
// wavelengths sample from the request's wavelength budget.
func sampleRequestFaults(req api.BuildRequest) (*FaultMask, *api.Error) {
	fs := req.Faults
	if fs.Wavelengths > 0 && req.Wavelengths < 1 {
		return nil, api.Errorf(api.CodeBadRequest,
			"faults: sampling %d dead wavelengths needs the request's wavelength budget (set wavelengths)", fs.Wavelengths)
	}
	sp := fault.Spec{
		Seed:             fs.Seed,
		Nodes:            fs.Nodes,
		Transceivers:     fs.Transceivers,
		Wavelengths:      fs.Wavelengths,
		Segments:         fs.Segments,
		MRRs:             fs.MRRs,
		WavelengthBudget: req.Wavelengths,
		MRRLossDB:        fs.MRRLossDB,
	}
	return sp.Sample(req.N), nil
}

// ServeSimulate answers one api.SimulateRequest: build the embedded
// schedule, then time it on the named backend with the request's
// options mapped onto Simulate's functional options.
func ServeSimulate(req api.SimulateRequest) (*api.SimulateResponse, *api.Error) {
	req = req.Normalize()
	if req.PayloadBytes <= 0 {
		return nil, api.Errorf(api.CodeBadRequest, "simulate: payload_bytes must be positive, got %g", req.PayloadBytes)
	}
	backend := Backend(req.Backend)
	switch backend {
	case Optical, ElectricalFatTree:
	default:
		return nil, api.Errorf(api.CodeUnknownBackend, "unknown backend %q (want %q or %q)", req.Backend, Optical, ElectricalFatTree)
	}
	if req.Overlap && backend == ElectricalFatTree {
		return nil, api.Errorf(api.CodeBadRequest, "overlap mode is an optical-circuit optimization; the electrical backend does not take it")
	}
	if req.Build.Stream {
		return nil, api.Errorf(api.CodeBadRequest, "simulate: build.stream is a build-endpoint mode; simulation needs a materialized schedule")
	}
	kind := Kind(req.Build.Kind)
	if _, ok := buildAccepts[kind]; !ok {
		return nil, api.Errorf(api.CodeUnknownKind, "unknown collective kind %q", req.Build.Kind)
	}
	if req.Build.N < 1 {
		return nil, api.Errorf(api.CodeBadRequest, "simulate: build.n must be at least 1, got %d", req.Build.N)
	}
	opts, aerr := buildOptions(req.Build)
	if aerr != nil {
		return nil, aerr
	}
	s, err := Build(kind, req.Build.N, opts...)
	if err != nil {
		return nil, api.Errorf(api.CodeBuildFailed, "%v", err)
	}
	var simOpts []SimOption
	if req.Overlap {
		simOpts = append(simOpts, WithOverlap())
	}
	if req.Hosts > 0 {
		simOpts = append(simOpts, WithHosts(req.Hosts))
	}
	if req.NoValidate {
		simOpts = append(simOpts, WithoutValidation())
	}
	var tr *obs.Tracer
	if req.Trace {
		tr = obs.NewTracer()
		simOpts = append(simOpts, WithObserver(obs.NewFabricObserver(tr, nil, req.Backend+"/"+s.Algorithm)))
	}
	res, err := Simulate(backend, s, req.PayloadBytes, simOpts...)
	if err != nil {
		return nil, api.Errorf(api.CodeSimulateFailed, "%v", err)
	}
	resp := &api.SimulateResponse{
		Version:      api.Version,
		Backend:      req.Backend,
		PayloadBytes: req.PayloadBytes,
		Result:       api.SimResultFrom(res),
	}
	if tr != nil {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return nil, api.Errorf(api.CodeInternal, "encoding trace: %v", err)
		}
		resp.Trace = json.RawMessage(buf.Bytes())
	}
	return resp, nil
}
