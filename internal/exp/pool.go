package exp

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("exp: worker pool closed")

// Pool is a bounded worker pool shared across sweeps. A sweep run
// with Options.Pool set fans its points out onto these workers
// instead of spawning a per-sweep pool, so a process serving many
// concurrent sweeps (wrhtd) has one global compute bound rather than
// one per request. Output is byte-identical either way: sweep results
// are assembled in index order regardless of which worker ran them.
type Pool struct {
	tasks   chan func(worker int)
	done    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
	workers int
}

// NewPool starts a pool of the given size (≤ 0 selects GOMAXPROCS,
// matching Options.Workers semantics).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		tasks:   make(chan func(worker int)),
		done:    make(chan struct{}),
		workers: workers,
	}
	for w := 0; w < workers; w++ {
		w := w
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-p.done:
					return
				case fn := <-p.tasks:
					fn(w)
				}
			}
		}()
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Submit hands fn to an idle worker, blocking until one accepts it,
// ctx is canceled, or the pool closes. fn runs asynchronously — the
// caller tracks completion (sweep uses its own WaitGroup). A nil ctx
// blocks indefinitely for a worker.
func (p *Pool) Submit(ctx context.Context, fn func(worker int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case p.tasks <- fn:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.done:
		return ErrPoolClosed
	}
}

// Close stops the workers and waits for in-progress tasks to finish.
// Callers must quiesce submissions first (the daemon drains its HTTP
// server before closing the pool); a Submit racing Close returns
// ErrPoolClosed.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
}
