// Package cliflags is the one place the repo's CLIs (wrhtsim,
// trainsim) define their shared observability and output flags:
// -workers, -json, -trace, -metrics, -metrics-format, -prom and
// -promaddr. Each command registers the subset it supports, then uses
// the same validation, registry/tracer construction and exit-time
// sink writes — so flag names, help text and behavior cannot drift
// between binaries.
package cliflags

import (
	"flag"
	"fmt"

	"wrht/internal/obs"
)

// Set selects which shared flags a command registers.
type Set uint

const (
	// Workers is -workers, the sweep worker pool size.
	Workers Set = 1 << iota
	// JSON is -json, the structured-output path (internal/api schema).
	JSON
	// Trace is -trace, the Perfetto timeline path.
	Trace
	// Metrics is -metrics plus -metrics-format.
	Metrics
	// Prom is -prom, the Prometheus exposition file.
	Prom
	// PromServe is -promaddr, the live /metrics + pprof server.
	PromServe
)

// Flags holds the parsed values. Fields for unregistered flags stay
// zero.
type Flags struct {
	Workers       int
	JSONOut       string
	TracePath     string
	MetricsPath   string
	MetricsFormat string
	PromPath      string
	PromAddr      string
}

// Register adds the selected flags to fs and returns the destination
// struct, populated once fs is parsed.
func Register(fs *flag.FlagSet, have Set) *Flags {
	f := &Flags{MetricsFormat: "prom"}
	if have&Workers != 0 {
		fs.IntVar(&f.Workers, "workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	}
	if have&JSON != 0 {
		fs.StringVar(&f.JSONOut, "json", "", "write the structured result (internal/api schema) to this JSON file")
	}
	if have&Trace != 0 {
		fs.StringVar(&f.TracePath, "trace", "", "write a Perfetto trace (Chrome Trace Event JSON) to this file")
	}
	if have&Metrics != 0 {
		fs.StringVar(&f.MetricsPath, "metrics", "", "write the metric registry to this file on exit (- for stdout; format per -metrics-format)")
		fs.StringVar(&f.MetricsFormat, "metrics-format", "prom", "-metrics serialization: prom (Prometheus text exposition) or legacy (sorted name/value lines, .json for a JSON snapshot)")
	}
	if have&Prom != 0 {
		fs.StringVar(&f.PromPath, "prom", "", "write the Prometheus text exposition to this file on exit (- for stdout)")
	}
	if have&PromServe != 0 {
		fs.StringVar(&f.PromAddr, "promaddr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address for the run's duration (e.g. :9090)")
	}
	return f
}

// Validate rejects value combinations the flags cannot express.
func (f *Flags) Validate() error {
	switch f.MetricsFormat {
	case "", "prom", "legacy":
		return nil
	}
	return fmt.Errorf("unknown metrics format %q (want prom or legacy)", f.MetricsFormat)
}

// NewTracer returns a tracer when -trace was given, nil otherwise.
func (f *Flags) NewTracer() *obs.Tracer {
	if f.TracePath == "" {
		return nil
	}
	return obs.NewTracer()
}

// NewRegistry returns a metric registry when any metrics sink
// (-metrics, -prom, -promaddr) was requested, nil otherwise.
func (f *Flags) NewRegistry() *obs.Registry {
	if f.MetricsPath == "" && f.PromPath == "" && f.PromAddr == "" {
		return nil
	}
	return obs.NewRegistry()
}

// WriteTrace writes the tracer to -trace and prints the confirmation.
// No-op when tracing was not requested.
func (f *Flags) WriteTrace(tr *obs.Tracer) error {
	if tr == nil || f.TracePath == "" {
		return nil
	}
	if err := tr.WriteFile(f.TracePath); err != nil {
		return fmt.Errorf("writing %s: %w", f.TracePath, err)
	}
	fmt.Printf("trace written to %s (open in https://ui.perfetto.dev)\n", f.TracePath)
	return nil
}

// WriteMetrics writes the exit-time metric sinks: -metrics in the
// selected format, then the -prom exposition. No-op on a nil registry.
func (f *Flags) WriteMetrics(reg *obs.Registry) error {
	if reg == nil {
		return nil
	}
	if f.MetricsPath != "" {
		var err error
		if f.MetricsFormat == "legacy" {
			err = reg.WriteFile(f.MetricsPath)
		} else {
			err = reg.ExposeFile(f.MetricsPath)
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", f.MetricsPath, err)
		}
		if f.MetricsPath != "-" {
			fmt.Printf("metrics written to %s\n", f.MetricsPath)
		}
	}
	if f.PromPath != "" {
		if err := reg.ExposeFile(f.PromPath); err != nil {
			return fmt.Errorf("writing %s: %w", f.PromPath, err)
		}
		if f.PromPath != "-" {
			fmt.Printf("prometheus exposition written to %s\n", f.PromPath)
		}
	}
	return nil
}
