// Package parallel implements the §6.2 extension the paper leaves as
// future work: hybrid pipeline × data parallel training of large models
// on the optical ring, with WRHT invoked per data-parallel group.
//
// Layout: an N-node ring hosts P pipeline stages × D replicas
// (P·D = N). Stage s's D replicas occupy the contiguous ring segment
// [s·D, (s+1)·D). After the backward pass every stage's group
// all-reduces its own parameter shard — all groups concurrently, each
// with a segment-confined WRHT (core.BuildWRHTSegment), so circuits of
// different groups never share fiber and wavelengths are fully reused.
// Between stages, activations and activation gradients travel over
// direct node-to-node circuits (replica r of stage s talks to replica r
// of stage s+1, a distance-D hop on the ring).
//
// The timeline follows GPipe-style synchronous pipelining: M
// microbatches flow forward then backward with the familiar (P−1)
// bubble, computed by a wavefront recurrence; the gradient all-reduce
// runs at the flush.
package parallel

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/fabric"
	"wrht/internal/optical"
	"wrht/internal/workload"
)

// Strategy is a hybrid-parallel placement.
type Strategy struct {
	// Stages is P, the pipeline depth (1 = pure data parallelism).
	Stages int
	// Replicas is D, the data-parallel width per stage.
	Replicas int
}

// Nodes returns the total node count P·D.
func (s Strategy) Nodes() int { return s.Stages * s.Replicas }

func (s Strategy) validate() error {
	if s.Stages < 1 || s.Replicas < 1 {
		return fmt.Errorf("parallel: strategy %d×%d invalid", s.Stages, s.Replicas)
	}
	return nil
}

// GroupParticipants returns stage s's ring positions.
func (s Strategy) GroupParticipants(stage int) []int {
	out := make([]int, s.Replicas)
	for r := 0; r < s.Replicas; r++ {
		out[r] = stage*s.Replicas + r
	}
	return out
}

// BuildGradientSync builds the concurrent per-stage WRHT all-reduce: one
// segment-confined schedule per stage, merged into a single schedule
// whose steps run all groups in parallel. The result is validated
// against the wavelength budget.
func BuildGradientSync(st Strategy, wavelengths int) (*core.Schedule, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	n := st.Nodes()
	groups := make([]*core.Schedule, st.Stages)
	for s := 0; s < st.Stages; s++ {
		parts := st.GroupParticipants(s)
		seg, err := core.BuildWRHTSegment(n, parts, wavelengths, 0)
		if err != nil {
			return nil, err
		}
		if err := core.SegmentSpanArcs(seg, parts[0], parts[len(parts)-1]); err != nil {
			return nil, err
		}
		groups[s] = seg
	}
	merged := core.MergeConcurrent(n, groups...)
	merged.Algorithm = "wrht-hybrid"
	if err := merged.Validate(wavelengths); err != nil {
		return nil, fmt.Errorf("parallel: merged gradient sync conflicts: %w", err)
	}
	return merged, nil
}

// Result summarises one simulated training iteration.
type Result struct {
	Strategy     Strategy
	Microbatches int
	// PipelineSec is the forward+backward makespan including bubbles.
	PipelineSec float64
	// BubbleSec is the idle time attributable to pipeline fill/drain on
	// the critical path.
	BubbleSec float64
	// AllReduceSec is the per-iteration gradient synchronisation time
	// (the slowest stage group's WRHT).
	AllReduceSec float64
	// TotalSec is the full iteration time.
	TotalSec float64
	// MaxStageGradBytes is the largest per-stage all-reduce payload.
	MaxStageGradBytes float64
}

// Sim simulates one training iteration of the model under the strategy.
type Sim struct {
	Model dnn.Model
	Strat Strategy
	// Microbatches per iteration (GPipe M); the per-replica minibatch is
	// Microbatches × MicrobatchSize samples.
	Microbatches   int
	MicrobatchSize int
	GPU            workload.GPUProfile
	Optical        optical.Params
}

// Run simulates the iteration and returns the breakdown.
func (sim Sim) Run() (Result, error) {
	if err := sim.Strat.validate(); err != nil {
		return Result{}, err
	}
	if sim.Microbatches < 1 || sim.MicrobatchSize < 1 {
		return Result{}, fmt.Errorf("parallel: microbatches=%d size=%d invalid", sim.Microbatches, sim.MicrobatchSize)
	}
	p := sim.Strat.Stages
	stages := dnn.SplitStages(sim.Model, p)
	if len(stages) != p {
		return Result{}, fmt.Errorf("parallel: model has %d layers, cannot form %d stages", len(sim.Model.Layers), p)
	}

	// Per-stage per-microbatch compute times (forward; backward = 2×).
	fwd := make([]float64, p)
	eff := sim.GPU.PeakFLOPS * sim.GPU.Efficiency
	for s, st := range stages {
		fwd[s] = float64(st.ForwardFLOPs()) * float64(sim.MicrobatchSize) / eff
	}
	// Inter-stage activation transfer time per microbatch: a direct
	// circuit on one wavelength (plus reconfiguration, charged once per
	// hop like a step).
	xfer := make([]float64, p) // xfer[s] = stage s -> s+1
	for s := 0; s < p-1; s++ {
		bytes := float64(stages[s].BoundaryElems()*4) * float64(sim.MicrobatchSize)
		xfer[s] = bytes*8/sim.Optical.BandwidthBps + sim.Optical.ReconfigDelay
	}

	pipe, bubble := sim.pipeline(fwd, xfer)

	// Gradient sync: every stage group runs its segment WRHT on its own
	// shard concurrently; the iteration waits for the slowest. The
	// profile depends only on (D, wavelengths), not the stage, so it is
	// built once rather than P times.
	prof, err := segmentProfile(sim.Strat.Replicas, sim.Optical.Wavelengths)
	if err != nil {
		return Result{}, err
	}
	optFab, err := sim.Optical.Fabric()
	if err != nil {
		return Result{}, err
	}
	eng := fabric.Engine{Fabric: optFab}
	var arMax float64
	var maxShard float64
	for s := 0; s < p; s++ {
		d := float64(stages[s].GradBytes())
		if d > maxShard {
			maxShard = d
		}
		res, err := eng.RunProfile(prof, d)
		if err != nil {
			return Result{}, err
		}
		if res.Time > arMax {
			arMax = res.Time
		}
	}

	return Result{
		Strategy:          sim.Strat,
		Microbatches:      sim.Microbatches,
		PipelineSec:       pipe,
		BubbleSec:         bubble,
		AllReduceSec:      arMax,
		TotalSec:          pipe + arMax,
		MaxStageGradBytes: maxShard,
	}, nil
}

// segmentProfile returns the analytic profile of a D-replica segment
// WRHT (line construction).
func segmentProfile(d, wavelengths int) (core.Profile, error) {
	sched, err := core.BuildWRHTSegment(d, identity(d), wavelengths, 0)
	if err != nil {
		return core.Profile{}, err
	}
	return core.ProfileOf(sched), nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// pipeline simulates the GPipe schedule on the DES kernel: microbatch m
// may start forward on stage s once stage s is free and m has finished
// forward on s−1 (plus the activation transfer); backward runs in
// reverse order after the forward flush, at 2× the forward cost. It
// returns the makespan and the critical-path bubble time. (The GPipe
// dependence graph is a wavefront, so the simulation is a direct
// recurrence over (stage, microbatch) rather than an event queue.)
func (sim Sim) pipeline(fwd, xfer []float64) (makespan, bubble float64) {
	p := sim.Strat.Stages
	m := sim.Microbatches

	stageFree := make([]float64, p) // when stage s can take new work
	fwdDone := make([]float64, m)   // per microbatch, forward-exit time of previous stage
	busy := make([]float64, p)      // accumulated busy time per stage

	// Forward waves.
	for s := 0; s < p; s++ {
		for mb := 0; mb < m; mb++ {
			start := stageFree[s]
			if s > 0 {
				arrive := fwdDone[mb] + xfer[s-1]
				if arrive > start {
					start = arrive
				}
			}
			end := start + fwd[s]
			stageFree[s] = end
			fwdDone[mb] = end
			busy[s] += fwd[s]
		}
	}
	// Backward waves (reverse stage order, 2× forward cost).
	bwdDone := make([]float64, m)
	for i := range bwdDone {
		bwdDone[i] = fwdDone[i]
	}
	for s := p - 1; s >= 0; s-- {
		for mb := 0; mb < m; mb++ {
			start := stageFree[s]
			if s < p-1 {
				arrive := bwdDone[mb] + xfer[s]
				if arrive > start {
					start = arrive
				}
			}
			end := start + 2*fwd[s]
			stageFree[s] = end
			bwdDone[mb] = end
			busy[s] += 2 * fwd[s]
		}
	}
	makespan = 0
	for _, t := range stageFree {
		if t > makespan {
			makespan = t
		}
	}
	// Bubble: the busiest stage's idle share of the makespan.
	maxBusy := 0.0
	for _, b := range busy {
		if b > maxBusy {
			maxBusy = b
		}
	}
	bubble = makespan - maxBusy
	return makespan, bubble
}
