// Package optical is the in-house optical interconnect system simulator
// of §5.1: it executes collective schedules on a TeraRack-style WDM ring
// (§3.2, Table 2) and reports communication time under the Eq-6 model.
//
// The simulator is step-driven, mirroring the circuit-switched operation
// of the real system: before every communication step the control plane
// reconfigures the micro-ring resonators (cost a = 25 µs); during the
// step every transfer owns a (direction, wavelength) circuit and streams
// its payload at the per-wavelength line rate (40 Gb/s), so the step
// lasts as long as its largest payload; per-packet O/E/O conversion
// (497 fs per 72-byte packet) is charged on the critical circuit.
package optical

import (
	"fmt"
	"math"

	"wrht/internal/core"
	"wrht/internal/fabric"
)

// Params holds the optical-system parameters of Table 2.
type Params struct {
	// Wavelengths is the per-waveguide wavelength count (64).
	Wavelengths int
	// BandwidthBps is the per-wavelength line rate in bits per second
	// (40 Gb/s).
	BandwidthBps float64
	// ReconfigDelay is the MRR reconfiguration delay charged before each
	// step, in seconds (25 µs).
	ReconfigDelay float64
	// OEOPerPacket is the O/E/O conversion delay per packet, in seconds
	// (497 fs).
	OEOPerPacket float64
	// PacketBytes is the packet size used for O/E/O accounting (72 B).
	PacketBytes int
	// FibersPerDirection is the physical ring multiplicity (TeraRack
	// routes traffic over two fiber rings per direction). The conflict
	// model conservatively uses a single fiber per direction unless the
	// engine is run with Options.UseFiberMultiplicity, which widens the
	// circuit budget to Wavelengths × FibersPerDirection and rejects
	// multiplicities below one.
	FibersPerDirection int
}

// DefaultParams returns the Table-2 optical configuration.
func DefaultParams() Params {
	return Params{
		Wavelengths:        64,
		BandwidthBps:       40e9,
		ReconfigDelay:      25e-6,
		OEOPerPacket:       497e-15,
		PacketBytes:        72,
		FibersPerDirection: 2,
	}
}

// TimeParams converts the optical parameters to the Eq-6 constants used
// by the closed-form analysis in internal/core.
func (p Params) TimeParams() core.TimeParams {
	return core.TimeParams{
		BytesPerSec:     p.BandwidthBps / 8,
		StepOverheadSec: p.ReconfigDelay,
	}
}

func (p Params) validate() error {
	if p.Wavelengths < 1 {
		return fmt.Errorf("optical: wavelengths %d < 1", p.Wavelengths)
	}
	if p.BandwidthBps <= 0 {
		return fmt.Errorf("optical: bandwidth %g <= 0", p.BandwidthBps)
	}
	if p.PacketBytes < 1 {
		return fmt.Errorf("optical: packet size %d < 1", p.PacketBytes)
	}
	return nil
}

// transferParts returns the serialization and O/E/O components of one
// payload's transfer time.
func (p Params) transferParts(bytes float64) (ser, oeo float64) {
	if bytes <= 0 {
		return 0, 0
	}
	packets := math.Ceil(bytes / float64(p.PacketBytes))
	return bytes * 8 / p.BandwidthBps, packets * p.OEOPerPacket
}

// transferTime returns the serialization plus O/E/O time of one payload.
func (p Params) transferTime(bytes float64) float64 {
	ser, oeo := p.transferParts(bytes)
	return ser + oeo
}

// StepReport records the simulated timing of one step.
type StepReport struct {
	Phase    core.Phase
	Duration float64 // seconds, including the reconfiguration delay
	MaxBytes float64 // payload of the critical circuit
}

// Result is the outcome of simulating one collective.
type Result struct {
	Algorithm string
	Steps     int
	// Time is the total communication time in seconds (Eq 6 for
	// constant-payload schedules).
	Time float64
	// TransferTime and OverheadTime split Time into the serialization
	// component (d·θ/B) and the per-step component (a·θ).
	TransferTime float64
	OverheadTime float64
	// PerStep is the per-step breakdown (only populated by schedule runs,
	// not profile runs).
	PerStep []StepReport
}

// fromFabric converts an engine result to the legacy optical result.
func fromFabric(r fabric.Result) Result {
	res := Result{
		Algorithm:    r.Algorithm,
		Steps:        r.Steps,
		Time:         r.Time,
		TransferTime: r.TransferTime,
		OverheadTime: r.OverheadTime,
	}
	for _, sr := range r.PerStep {
		res.PerStep = append(res.PerStep, StepReport{
			Phase:    sr.Phase,
			Duration: sr.Duration(),
			MaxBytes: sr.Cost.MaxBytes,
		})
	}
	return res
}

// FeasibleWavelengths reports whether the profile's per-step wavelength
// requirement fits the configured budget.
func (p Params) FeasibleWavelengths(pr core.Profile) bool {
	for _, g := range pr.Groups {
		if g.Wavelengths > p.Wavelengths {
			return false
		}
	}
	return true
}

// EffectiveWavelengths returns the per-direction circuit capacity
// including fiber multiplicity: TeraRack routes traffic over
// FibersPerDirection parallel fiber rings per direction (§3.2), so a
// WRHT configuration may treat the budget as Wavelengths × fibers. The
// single-fiber conflict model stays conservative; this accessor feeds
// the double-ring ablation.
func (p Params) EffectiveWavelengths() int {
	f := p.FibersPerDirection
	if f < 1 {
		f = 1
	}
	return p.Wavelengths * f
}
