package fabric

import (
	"wrht/internal/core"
	"wrht/internal/rwa"
	"wrht/internal/topo"
)

// Reconfiguration–communication overlap (SWOT-style): while step k's
// circuits are still streaming, the control plane may already retune the
// MRRs for step k+1 — but only if none of step k+1's circuits claims a
// (direction, wavelength) resource that an active step-k circuit holds
// on an overlapping fiber arc, because retuning a resonator onto a
// wavelength that is passing live traffic corrupts it. The decision is
// delegated to the internal/rwa conflict validator: the two steps'
// circuits are pooled and any same-direction, same-wavelength arc
// overlap rejects the boundary, falling back to the sequential
// setup-then-transmit behaviour for that step.

// disjointSteps reports whether steps a and b can have their circuits up
// simultaneously: the pooled request set of both steps must be
// conflict-free under the rwa model. Requests are bucketed by
// (direction, wavelength) first — only same-bucket pairs can ever
// conflict — so the check stays near-linear on the grouped schedules
// WRHT produces instead of quadratic in total transfer count.
func disjointSteps(ring topo.Ring, a, b core.Step) bool {
	type slot struct {
		dir topo.Direction
		w   int
	}
	buckets := make(map[slot][]rwa.Request)
	add := func(st core.Step) {
		for _, t := range st.Transfers {
			k := slot{t.Dir, t.Wavelength}
			buckets[k] = append(buckets[k], rwa.Request{Src: t.Src, Dst: t.Dst, Dir: t.Dir})
		}
	}
	add(a)
	add(b)
	for k, reqs := range buckets {
		if len(reqs) < 2 {
			continue
		}
		asn := make(rwa.Assignment, len(reqs))
		for i := range asn {
			asn[i] = k.w
		}
		if rwa.Validate(ring, reqs, asn, 0) != nil {
			return false
		}
	}
	return true
}
