package exp

import (
	"testing"

	"wrht/internal/ir"
	"wrht/internal/obs"
)

// TestOverlapSweepManufacturesHiddenReconfigs pins the PR's acceptance
// criterion at the golden configs: with the pass pipeline on, the
// hidden-reconfig count must be strictly greater than the opportunistic
// baseline at N ∈ {1024, 4096}, w=64, without ever making the schedule
// slower.
func TestOverlapSweepManufacturesHiddenReconfigs(t *testing.T) {
	o := Defaults()
	o.Metrics = obs.NewRegistry()
	r, err := OverlapSweep(o, []int{1024, 4096}, 64, 100e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(r.Points))
	}
	for _, pt := range r.Points {
		if pt.PassHidden <= pt.BaselineHidden {
			t.Errorf("N=%d: pass hidden count %d not > baseline %d", pt.N, pt.PassHidden, pt.BaselineHidden)
		}
		if pt.PassSaved <= pt.BaselineSaved {
			t.Errorf("N=%d: pass saved %g not > baseline %g", pt.N, pt.PassSaved, pt.BaselineSaved)
		}
		// The split pass must never slow the schedule down: the setup it
		// adds has to be hidden (tiny float slack for the re-summation).
		if pt.PassTime > pt.BaselineTime+1e-9 {
			t.Errorf("N=%d: pass time %g exceeds baseline %g", pt.N, pt.PassTime, pt.BaselineTime)
		}
	}
	snap := o.Metrics.Snapshot()
	for _, name := range []string{"reorder", "recolor", "split"} {
		if snap.Counters["ir.pass."+name+".runs"] != 2 {
			t.Errorf("ir.pass.%s.runs = %d, want 2 (one per sweep point)", name, snap.Counters["ir.pass."+name+".runs"])
		}
	}
	if got := snap.Counters["ir.pass.split.boundaries_gained"]; got < 2 {
		t.Errorf("split gained %d disjoint boundaries across the sweep, want >= 2", got)
	}
}

// TestOverlapSweepIdentityPipeline: an empty (non-nil) pass list is the
// round-trip control — both runs must agree exactly, because the IR's
// precomputed boundaries replace probes without changing any decision.
func TestOverlapSweepIdentityPipeline(t *testing.T) {
	r, err := OverlapSweep(Defaults(), []int{64, 1024}, 64, 100e6, []ir.Pass{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range r.Points {
		if pt.PassSteps != pt.BaselineSteps || pt.PassHidden != pt.BaselineHidden ||
			pt.PassSaved != pt.BaselineSaved || pt.PassTime != pt.BaselineTime {
			t.Errorf("N=%d: identity pipeline diverged from baseline: %+v", pt.N, pt)
		}
	}
}
