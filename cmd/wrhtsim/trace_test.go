package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// traceRun drives run() the way CI does, capturing the trace and
// metrics files for one crossfabric invocation.
func traceRun(t *testing.T, dir, tag string) (trace, metrics []byte) {
	t.Helper()
	tracePath := filepath.Join(dir, "trace-"+tag+".json")
	metricsPath := filepath.Join(dir, "metrics-"+tag+".json")
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	// metricsFormat "legacy" is deliberate: this test parses the JSON
	// snapshot, which only the legacy escape hatch still emits — it IS
	// the coverage for -metrics-format=legacy.
	code := run(runConfig{
		cmd:           "crossfabric",
		granularity:   "fused",
		workers:       1,
		n:             64,
		w:             64,
		payloadMB:     10,
		tracePath:     tracePath,
		metricsPath:   metricsPath,
		metricsFormat: "legacy",
	})
	os.Stdout = old
	null.Close()
	if code != 0 {
		t.Fatalf("run exited %d", code)
	}
	trace, err = os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err = os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	return trace, metrics
}

// TestCrossFabricTraceValidates is the CI gate for `wrhtsim -trace`: the
// N=64 w=64 crossfabric run must emit Perfetto-loadable JSON containing
// every span phase the fabric observer defines, and be byte-identical
// across runs (the trace is a pure function of the simulated timeline).
func TestCrossFabricTraceValidates(t *testing.T) {
	dir := t.TempDir()
	raw, rawMetrics := traceRun(t, dir, "a")

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	spans := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans[ev.Name] = true
		}
	}
	for _, want := range []string{
		"reduce", "broadcast",
		"reconfig", "reconfig (overlap-hidden)",
		"serialization", "oeo", "router-delay",
	} {
		if !spans[want] {
			t.Errorf("trace missing %q span", want)
		}
	}

	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(rawMetrics, &snap); err != nil {
		t.Fatalf("metrics are not valid JSON: %v", err)
	}
	if snap.Counters["fabric.steps"] == 0 || snap.Counters["fabric.circuits.reserved"] == 0 {
		t.Errorf("fabric counters empty: %v", snap.Counters)
	}
	if snap.Counters["fabric.overlap.boundaries_hidden"] == 0 {
		t.Errorf("no overlap-hidden boundaries at w=64: %v", snap.Counters)
	}

	again, _ := traceRun(t, dir, "b")
	if !bytes.Equal(raw, again) {
		t.Fatal("crossfabric trace differs between identical runs")
	}
}
