package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndHandlesNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Counter("a").Add(5)
	r.Gauge("b").Add(1.5)
	r.Gauge("b").Set(2)
	if v := r.Counter("a").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	if v := r.Gauge("b").Value(); v != 0 {
		t.Fatalf("nil gauge value = %g", v)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestRegistryConcurrentAccumulation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits").Inc()
				r.Gauge("busy").Add(0.001)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("hits").Value(); v != 8000 {
		t.Fatalf("hits = %d, want 8000", v)
	}
	if v := r.Gauge("busy").Value(); v < 7.999 || v > 8.001 {
		t.Fatalf("busy = %g, want ~8", v)
	}
}

func TestRegistryWriteTextSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("m.middle").Set(0.5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a.first 1\nm.middle 0.5\nz.last 2\n"
	if buf.String() != want {
		t.Fatalf("text dump = %q, want %q", buf.String(), want)
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1.25)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["c"] != 3 || s.Gauges["g"] != 1.25 {
		t.Fatalf("roundtrip lost values: %+v", s)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatal("JSON dump missing trailing newline")
	}
}
