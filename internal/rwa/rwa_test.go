package rwa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrht/internal/topo"
)

func randomRequests(rng *rand.Rand, n, count int) []Request {
	reqs := make([]Request, count)
	for i := range reqs {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		for dst == src {
			dst = rng.Intn(n)
		}
		dir := topo.CW
		if rng.Intn(2) == 1 {
			dir = topo.CCW
		}
		reqs[i] = Request{Src: src, Dst: dst, Dir: dir}
	}
	return reqs
}

func TestFirstFitConflictFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(40)
		r := topo.NewRing(n)
		reqs := randomRequests(rng, n, 1+rng.Intn(30))
		asn, used := Assign(r, reqs, FirstFit, nil)
		if err := Validate(r, reqs, asn, used); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRandomFitConflictFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(40)
		r := topo.NewRing(n)
		reqs := randomRequests(rng, n, 1+rng.Intn(30))
		asn, used := Assign(r, reqs, RandomFit, rng)
		if err := Validate(r, reqs, asn, used); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestFirstFitUsesNoMoreThanRandomFitOnIntervals(t *testing.T) {
	// On nested same-direction arcs (WRHT's gather pattern) first-fit is
	// optimal: k nested circuits need exactly k wavelengths.
	r := topo.NewRing(20)
	var reqs []Request
	for d := 1; d <= 8; d++ {
		reqs = append(reqs, Request{Src: 10 - d, Dst: 10, Dir: topo.CW})
	}
	_, used := Assign(r, reqs, FirstFit, nil)
	if used != 8 {
		t.Fatalf("first-fit used %d wavelengths on 8 nested arcs, want 8", used)
	}
}

func TestOppositeDirectionsShareWavelength(t *testing.T) {
	r := topo.NewRing(10)
	reqs := []Request{
		{Src: 2, Dst: 5, Dir: topo.CW},
		{Src: 8, Dst: 5, Dir: topo.CCW},
	}
	asn, used := Assign(r, reqs, FirstFit, nil)
	if used != 1 || asn[0] != 0 || asn[1] != 0 {
		t.Fatalf("opposite-direction circuits should share λ0, got %v (used %d)", asn, used)
	}
}

func TestDisjointArcsShareWavelength(t *testing.T) {
	r := topo.NewRing(12)
	reqs := []Request{
		{Src: 0, Dst: 3, Dir: topo.CW},
		{Src: 4, Dst: 7, Dir: topo.CW},
		{Src: 8, Dst: 11, Dir: topo.CW},
	}
	asn, used := Assign(r, reqs, FirstFit, nil)
	if used != 1 {
		t.Fatalf("disjoint arcs used %d wavelengths, want 1 (asn %v)", used, asn)
	}
}

func TestValidateDetectsConflict(t *testing.T) {
	r := topo.NewRing(10)
	reqs := []Request{
		{Src: 0, Dst: 5, Dir: topo.CW},
		{Src: 2, Dst: 7, Dir: topo.CW},
	}
	if err := Validate(r, reqs, Assignment{0, 0}, 0); err == nil {
		t.Fatal("overlapping same-direction same-wavelength circuits not detected")
	}
	if err := Validate(r, reqs, Assignment{0, 1}, 2); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	if err := Validate(r, reqs, Assignment{0, 5}, 2); err == nil {
		t.Fatal("over-budget wavelength not detected")
	}
	if err := Validate(r, reqs, Assignment{0}, 0); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if err := Validate(r, reqs, Assignment{0, -1}, 0); err == nil {
		t.Fatal("negative wavelength not detected")
	}
}

func TestAssignQuickProperty(t *testing.T) {
	f := func(seed int64, nRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 3
		r := topo.NewRing(n)
		reqs := randomRequests(rng, n, int(cRaw%25)+1)
		asn, used := Assign(r, reqs, FirstFit, nil)
		return Validate(r, reqs, asn, used) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAssignMatchesQuadraticOracle pins the bitset path to the legacy
// pairwise implementation: identical assignments and wavelength counts
// for both strategies, with RandomFit consuming identical RNG draws.
func TestAssignMatchesQuadraticOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(60)
		r := topo.NewRing(n)
		reqs := randomRequests(rng, n, rng.Intn(80))
		seed := rng.Int63()
		for _, strat := range []Strategy{FirstFit, RandomFit} {
			got, gotUsed := Assign(r, reqs, strat, rand.New(rand.NewSource(seed)))
			want, wantUsed := assignQuadratic(r, reqs, strat, rand.New(rand.NewSource(seed)))
			if gotUsed != wantUsed {
				t.Fatalf("trial %d %v: used %d, oracle %d", trial, strat, gotUsed, wantUsed)
			}
			for i := range reqs {
				if got[i] != want[i] {
					t.Fatalf("trial %d %v: request %d got λ%d, oracle λ%d", trial, strat, i, got[i], want[i])
				}
			}
		}
	}
}

// TestValidateMatchesQuadraticOracle checks that the fast validator and
// the legacy one agree exactly — including the error value, since the
// fast path defers to the oracle whenever it detects a problem.
func TestValidateMatchesQuadraticOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(40)
		r := topo.NewRing(n)
		reqs := randomRequests(rng, n, 1+rng.Intn(40))
		asn, used := Assign(r, reqs, FirstFit, nil)
		// Half the trials corrupt the assignment to exercise error paths.
		budget := used
		switch rng.Intn(4) {
		case 0:
			asn[rng.Intn(len(asn))] = rng.Intn(used + 1)
		case 1:
			asn[rng.Intn(len(asn))] = -1 - rng.Intn(3)
		case 2:
			budget = rng.Intn(used + 1)
		}
		got := Validate(r, reqs, asn, budget)
		want := validateQuadratic(r, reqs, asn, budget)
		if (got == nil) != (want == nil) || (got != nil && got.Error() != want.Error()) {
			t.Fatalf("trial %d: fast %v, oracle %v", trial, got, want)
		}
	}
}

// TestAssignBeyondOneWord drives first-fit past 64 and 128 wavelengths
// (nested arcs force one wavelength per circuit), exercising index
// growth across word boundaries, and re-checks oracle parity there.
func TestAssignBeyondOneWord(t *testing.T) {
	r := topo.NewRing(300)
	var reqs []Request
	for d := 1; d <= 140; d++ {
		reqs = append(reqs, Request{Src: 150 - d, Dst: 150, Dir: topo.CW})
	}
	asn, used := Assign(r, reqs, FirstFit, nil)
	if used != 140 {
		t.Fatalf("first-fit used %d wavelengths on 140 nested arcs, want 140", used)
	}
	if err := Validate(r, reqs, asn, used); err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{FirstFit, RandomFit} {
		got, _ := Assign(r, reqs, strat, rand.New(rand.NewSource(5)))
		want, _ := assignQuadratic(r, reqs, strat, rand.New(rand.NewSource(5)))
		for i := range reqs {
			if got[i] != want[i] {
				t.Fatalf("%v: request %d got λ%d, oracle λ%d", strat, i, got[i], want[i])
			}
		}
	}
}

// TestZeroLengthArcParity: a src==dst request has an empty arc; both
// implementations give it λ0 and never let it block anyone else.
func TestZeroLengthArcParity(t *testing.T) {
	r := topo.NewRing(8)
	reqs := []Request{
		{Src: 3, Dst: 3, Dir: topo.CW},
		{Src: 0, Dst: 7, Dir: topo.CW},
		{Src: 3, Dst: 3, Dir: topo.CW},
	}
	for _, strat := range []Strategy{FirstFit, RandomFit} {
		got, gotUsed := Assign(r, reqs, strat, rand.New(rand.NewSource(9)))
		want, wantUsed := assignQuadratic(r, reqs, strat, rand.New(rand.NewSource(9)))
		if gotUsed != wantUsed {
			t.Fatalf("%v: used %d, oracle %d", strat, gotUsed, wantUsed)
		}
		for i := range reqs {
			if got[i] != want[i] {
				t.Fatalf("%v: request %d got λ%d, oracle λ%d", strat, i, got[i], want[i])
			}
		}
	}
	asn, _ := Assign(r, reqs, FirstFit, nil)
	if asn[0] != 0 || asn[2] != 0 {
		t.Fatalf("empty arcs should take λ0, got %v", asn)
	}
}

// TestAssignIntoZeroAllocs verifies the satellite requirement: after the
// capacity warm-up, the assignment loop performs zero heap allocations
// per request for both strategies (RandomFit's free-set selection is
// popcount + k-th-free-bit, no free-list slice).
func TestAssignIntoZeroAllocs(t *testing.T) {
	r := topo.NewRing(256)
	rng := rand.New(rand.NewSource(31))
	reqs := randomRequests(rng, 256, 512)
	arcs := ArcsOf(r, reqs)
	asn := make(Assignment, len(reqs))
	ix := NewIndex(r)
	// Pre-size the capacity well above anything RandomFit can draw so a
	// lucky high pick during the measured runs can never trigger growth.
	ix.Occupy(topo.CW, r.ArcOf(0, 1, topo.CW), 2048)
	drawRNG := rand.New(rand.NewSource(1))
	for _, strat := range []Strategy{FirstFit, RandomFit} {
		ix.AssignInto(asn, reqs, arcs, strat, drawRNG) // warm up index growth
		allocs := testing.AllocsPerRun(20, func() {
			ix.AssignInto(asn, reqs, arcs, strat, drawRNG)
		})
		if allocs != 0 {
			t.Fatalf("%v: %v allocs per %d-request assignment, want 0", strat, allocs, len(reqs))
		}
	}
}

// TestConflictFree checks the boolean probe agrees with Validate's
// conflict verdict (it skips budget checks by design).
func TestConflictFree(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ix := NewIndex(topo.NewRing(24))
	r := topo.NewRing(24)
	for trial := 0; trial < 200; trial++ {
		reqs := randomRequests(rng, 24, 1+rng.Intn(30))
		arcs := ArcsOf(r, reqs)
		asn := make(Assignment, len(reqs))
		for i := range asn {
			asn[i] = rng.Intn(4)
		}
		got := ix.ConflictFree(reqs, arcs, asn)
		want := validateQuadratic(r, reqs, asn, 0) == nil
		if got != want {
			t.Fatalf("trial %d: ConflictFree=%v, oracle says %v", trial, got, want)
		}
	}
}

func TestRandomFitRequiresRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RandomFit without rng did not panic")
		}
	}()
	r := topo.NewRing(5)
	Assign(r, []Request{{Src: 0, Dst: 1, Dir: topo.CW}, {Src: 0, Dst: 2, Dir: topo.CW}}, RandomFit, nil)
}

func TestStrategyString(t *testing.T) {
	if FirstFit.String() != "first-fit" || RandomFit.String() != "random-fit" {
		t.Fatal("strategy strings")
	}
}
