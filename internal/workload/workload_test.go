package workload

import (
	"strings"
	"testing"

	"wrht/internal/dnn"
)

func TestTuneBatchSizeFitsMemory(t *testing.T) {
	gpu := TitanXP()
	for _, m := range dnn.Workloads() {
		b := TuneBatchSize(m, gpu)
		if b < 1 {
			t.Fatalf("%s: batch %d", m.Name, b)
		}
		w := New(m, gpu, b)
		if w.PeakMemBytes > gpu.MemoryBytes {
			t.Errorf("%s: peak memory %.1f GB exceeds GPU %.1f GB at tuned batch %d",
				m.Name, w.PeakMemBytes/1e9, gpu.MemoryBytes/1e9, b)
		}
	}
}

func TestBiggerModelSmallerBatch(t *testing.T) {
	gpu := TitanXP()
	beit := TuneBatchSize(dnn.BEiTLarge(), gpu)
	resnet := TuneBatchSize(dnn.ResNet50(), gpu)
	if beit > resnet {
		t.Fatalf("BEiT batch %d > ResNet50 batch %d", beit, resnet)
	}
}

func TestComputeTimeScalesWithBatch(t *testing.T) {
	gpu := TitanXP()
	m := dnn.ResNet50()
	w1 := New(m, gpu, 8)
	w2 := New(m, gpu, 16)
	if w2.ComputeSecPerIter <= w1.ComputeSecPerIter {
		t.Fatal("compute time must grow with batch")
	}
	if w2.ComputeSecPerIter/w1.ComputeSecPerIter != 2 {
		t.Fatalf("compute should scale linearly: %g vs %g", w1.ComputeSecPerIter, w2.ComputeSecPerIter)
	}
}

func TestGradBytesIndependentOfBatch(t *testing.T) {
	// §5.1's key observation: the transferred size depends only on the
	// model, not the batch or dataset.
	gpu := TitanXP()
	m := dnn.VGG16()
	if New(m, gpu, 2).GradBytes != New(m, gpu, 64).GradBytes {
		t.Fatal("gradient size must not depend on batch")
	}
}

func TestPaperWorkloads(t *testing.T) {
	ws := PaperWorkloads()
	if len(ws) != 4 {
		t.Fatalf("%d workloads", len(ws))
	}
	for _, w := range ws {
		if w.BatchSize < 1 || w.ComputeSecPerIter <= 0 || w.GradBytes <= 0 {
			t.Errorf("%s: bad workload %+v", w.Model.Name, w)
		}
		if !strings.Contains(w.String(), w.Model.Name) {
			t.Errorf("String() = %q lacks model name", w.String())
		}
	}
}

func TestIterationsPerEpoch(t *testing.T) {
	w := New(dnn.ResNet50(), TitanXP(), 16)
	if got := w.IterationsPerEpoch(1024*16*10, 1024); got != 10 {
		t.Fatalf("iters = %d, want 10", got)
	}
	if got := w.IterationsPerEpoch(1, 1024); got != 1 {
		t.Fatalf("tiny dataset iters = %d, want 1 (ceil)", got)
	}
}
