package daemon

import (
	"context"
	"errors"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"wrht/internal/obs"
)

// Graceful runs an http.Server with signal-driven shutdown: SIGINT or
// SIGTERM (or an explicit Stop) triggers http.Server.Shutdown with a
// bounded drain, so in-flight requests finish and new connections are
// refused. It is the one serving path wrhtd and wrhtsim -promaddr
// share — the fix for the old -promaddr server that was torn down
// with a bare Close and no drain.
type Graceful struct {
	srv        *http.Server
	ln         net.Listener
	stopSignal context.CancelFunc
	finished   chan error
	waitOnce   sync.Once
	waitErr    error
}

// StartGraceful listens on addr and serves h until a termination
// signal or Stop, then drains for at most the given timeout. It
// returns once the listener is bound, so Addr is immediately valid.
func StartGraceful(addr string, h http.Handler, drain time.Duration) (*Graceful, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	g := &Graceful{
		srv:        &http.Server{Handler: h},
		ln:         ln,
		stopSignal: stop,
		finished:   make(chan error, 1),
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- g.srv.Serve(ln) }()
	go func() {
		<-sigCtx.Done() // signal delivered, or Stop called
		stop()
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := g.srv.Shutdown(sctx)
		if err != nil {
			// Drain timeout: cut the stragglers off rather than hang.
			g.srv.Close()
		}
		if se := <-serveErr; se != nil && !errors.Is(se, http.ErrServerClosed) && err == nil {
			err = se
		}
		g.finished <- err
	}()
	return g, nil
}

// Addr is the bound listen address (useful with ":0").
func (g *Graceful) Addr() net.Addr { return g.ln.Addr() }

// Stop initiates shutdown as a signal would and waits for the drain.
func (g *Graceful) Stop() error {
	g.stopSignal()
	return g.Wait()
}

// Wait blocks until shutdown (signal- or Stop-driven) completes and
// returns the terminal serve/drain error, if any.
func (g *Graceful) Wait() error {
	g.waitOnce.Do(func() { g.waitErr = <-g.finished })
	return g.waitErr
}

// DebugMux returns the shared diagnostics mux: /metrics backed by the
// registry (nil-safe: an empty exposition) plus net/http/pprof under
// /debug/pprof, on a private mux so nothing leaks onto
// http.DefaultServeMux.
func DebugMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}
