// Package metrics formats experiment output: aligned text tables shaped
// like the paper's tables, normalized series shaped like its figures,
// and the reduction-percentage aggregates its abstract quotes.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Series is one named line of a figure: Y values indexed like X labels.
type Series struct {
	Name string
	Y    []float64
}

// Figure is a set of series over shared X labels, mirroring one subplot
// of the paper's figures.
type Figure struct {
	Title   string
	XLabel  string
	XTicks  []string
	Series  []Series
	YLabel  string
	Comment string
}

// Normalize divides every Y value by base (the paper normalizes each
// figure by one designated cell).
func (f *Figure) Normalize(base float64) {
	if base == 0 {
		return
	}
	for si := range f.Series {
		for i := range f.Series[si].Y {
			f.Series[si].Y[i] /= base
		}
	}
}

// String renders the figure as a table of normalized values.
func (f *Figure) String() string {
	t := Table{Title: f.Title, Headers: append([]string{f.XLabel}, seriesNames(f.Series)...)}
	for i, x := range f.XTicks {
		row := []string{x}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.4g", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	out := t.String()
	if f.Comment != "" {
		out += f.Comment + "\n"
	}
	return out
}

func seriesNames(ss []Series) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}

// MeanReduction returns the paper-style average reduction of "ours"
// versus "base" across paired samples: mean over i of 1 − ours[i]/base[i],
// as a percentage. Pairs with a non-positive base are skipped. Mismatched
// lengths are a caller bug and yield NaN with an error rather than a
// panic, so experiment drivers can propagate the failure.
func MeanReduction(ours, base []float64) (float64, error) {
	if len(ours) != len(base) {
		return math.NaN(), fmt.Errorf("metrics: MeanReduction length mismatch %d != %d", len(ours), len(base))
	}
	var sum float64
	var n int
	for i := range ours {
		if base[i] <= 0 {
			continue
		}
		sum += 1 - ours[i]/base[i]
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return 100 * sum / float64(n), nil
}

// Pct formats a percentage with two decimals, e.g. "65.23%".
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// SortedKeys returns the sorted keys of a string-keyed map, for
// deterministic iteration in reports.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
