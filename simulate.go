package wrht

import (
	"fmt"

	"wrht/internal/electrical"
	"wrht/internal/fabric"
	"wrht/internal/optical"
)

// Backend names a simulation fabric for Simulate.
type Backend string

const (
	// Optical is the TeraRack-style WDM ring (Eq 6, Table 2).
	Optical Backend = "optical"
	// ElectricalFatTree is the two-level fat-tree flow-level model
	// (Table 2).
	ElectricalFatTree Backend = "electrical"
)

// SimResult is the common outcome of a simulation on any backend: the
// total time plus the fabric breakdown (transfer vs circuit-setup vs
// router components, and the per-step reports for schedule runs). It is
// internal/fabric's Result type.
type SimResult = fabric.Result

// simSpec accumulates the functional options of one Simulate call.
type simSpec struct {
	optical    OpticalParams
	electrical ElectricalParams
	hosts      int
	noValidate bool
	overlap    bool
	observer   SimObserver
}

// SimOption configures Simulate.
type SimOption func(*simSpec)

// WithOpticalParams overrides the Table-2 optical configuration.
func WithOpticalParams(p OpticalParams) SimOption {
	return func(ss *simSpec) { ss.optical = p }
}

// WithElectricalParams overrides the Table-2 electrical configuration.
func WithElectricalParams(p ElectricalParams) SimOption {
	return func(ss *simSpec) { ss.electrical = p }
}

// WithHosts sets the electrical fat-tree's host count. Schedule runs
// default it to the schedule's ring size; profile runs require it
// (profiles carry no node count).
func WithHosts(n int) SimOption {
	return func(ss *simSpec) { ss.hosts = n }
}

// WithoutValidation skips the optical backend's pre-run schedule
// validation (structural sanity plus wavelength conflict-freedom
// against the ring budget). Validation never changes timing — only
// whether an invalid schedule errors instead of being priced. The
// electrical backend never validates: packet switching imposes no
// wavelength-conflict constraint.
func WithoutValidation() SimOption {
	return func(ss *simSpec) { ss.noValidate = true }
}

// WithOverlap enables the SWOT-style reconfiguration overlap mode:
// step k+1's circuit setup hides under step k's transmission when the
// two steps' circuits are rwa-disjoint. Optical schedules only.
func WithOverlap() SimOption {
	return func(ss *simSpec) { ss.overlap = true }
}

// SimObserver receives per-step and per-group engine events during a
// run (internal/fabric's Observer interface; obs.NewFabricObserver
// builds one that feeds a Perfetto tracer and a metric registry).
type SimObserver = fabric.Observer

// WithObserver attaches an observer to the run, e.g. to capture the
// simulated-time step timeline of a single Simulate call.
func WithObserver(ob SimObserver) SimOption {
	return func(ss *simSpec) { ss.observer = ob }
}

// Simulate times a collective on a backend, unifying what used to be
// SimulateOptical, SimulateOpticalProfile and SimulateElectrical (which
// remain as thin wrappers). The collective c is either an explicit
// *Schedule or an analytic Profile:
//
//	res, err := wrht.Simulate(wrht.Optical, sched, 100e6)
//	res, err := wrht.Simulate(wrht.Optical, profile, 100e6, wrht.WithOpticalParams(p))
//	res, err := wrht.Simulate(wrht.ElectricalFatTree, sched, 100e6)
//
// The returned SimResult carries the fabric breakdown: TransferTime
// (serialization + O-E-O), OverheadTime (circuit setup), RouterTime,
// and per-step reports for schedule runs.
func Simulate(backend Backend, c any, dBytes float64, opts ...SimOption) (SimResult, error) {
	ss := simSpec{optical: optical.DefaultParams(), electrical: electrical.DefaultParams()}
	for _, o := range opts {
		o(&ss)
	}
	var f fabric.Fabric
	switch backend {
	case Optical:
		var err error
		if f, err = ss.optical.Fabric(); err != nil {
			return SimResult{}, err
		}
	case ElectricalFatTree:
		if ss.overlap {
			return SimResult{}, fmt.Errorf("wrht: overlap mode is an optical-circuit optimization; the electrical backend does not take it")
		}
		hosts := ss.hosts
		if hosts == 0 {
			if s, ok := c.(*Schedule); ok {
				hosts = s.Ring.N
			} else {
				return SimResult{}, fmt.Errorf("wrht: electrical profile simulation needs WithHosts (profiles carry no node count)")
			}
		}
		nw, err := electrical.NewNetwork(hosts, ss.electrical)
		if err != nil {
			return SimResult{}, err
		}
		f = nw.Fabric()
	default:
		return SimResult{}, fmt.Errorf("wrht: unknown backend %q (want %q or %q)", backend, Optical, ElectricalFatTree)
	}
	eng := fabric.Engine{Fabric: f, Opts: fabric.Options{
		ValidateWavelengths: backend == Optical && !ss.noValidate,
		Overlap:             ss.overlap,
		Observer:            ss.observer,
	}}
	switch s := c.(type) {
	case *Schedule:
		return eng.RunSchedule(s, dBytes)
	case Profile:
		return eng.RunProfile(s, dBytes)
	case *Profile:
		return eng.RunProfile(*s, dBytes)
	default:
		return SimResult{}, fmt.Errorf("wrht: Simulate wants a *Schedule or a Profile, got %T", c)
	}
}
