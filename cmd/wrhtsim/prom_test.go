package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wrht/internal/obs"
)

// promRun drives one crossfabric invocation with -prom and returns the
// exposition bytes.
func promRun(t *testing.T, dir, tag string) []byte {
	t.Helper()
	promPath := filepath.Join(dir, "metrics-"+tag+".prom")
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	code := run(runConfig{
		cmd:         "crossfabric",
		granularity: "fused",
		n:           64,
		w:           64,
		payloadMB:   10,
		promPath:    promPath,
	})
	os.Stdout = old
	null.Close()
	if code != 0 {
		t.Fatalf("run exited %d", code)
	}
	b, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// stripVolatileFamilies drops every family block whose "# VOLATILE"
// marker flags it as wall-clock-dependent. Blocks start at "# HELP"
// lines, exactly as Expose emits them.
func stripVolatileFamilies(t *testing.T, b []byte) []byte {
	t.Helper()
	var out []string
	skip := false
	sawVolatile := false
	var block []string
	flush := func() {
		if !skip {
			out = append(out, block...)
		}
		block, skip = nil, false
	}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			flush()
		}
		if strings.HasPrefix(line, "# VOLATILE ") {
			skip = true
			sawVolatile = true
		}
		block = append(block, line)
	}
	flush()
	if !sawVolatile {
		t.Fatal("exposition carries no # VOLATILE marker — wall-clock histograms missing?")
	}
	return []byte(strings.Join(out, "\n"))
}

// TestPromExposition is the CI gate for `wrhtsim -prom`: the N=64
// crossfabric exposition must lint clean, contain latency histogram
// series, and be byte-identical across two runs once the families
// flagged "# VOLATILE" (wall-clock measurements) are excluded.
func TestPromExposition(t *testing.T) {
	dir := t.TempDir()
	a := promRun(t, dir, "a")

	if err := obs.ValidateExposition(a); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, a)
	}
	for _, want := range []string{
		"_bucket{", // histogram series present
		"exp_sweep_point_seconds_bucket",
		"fabric_run_seconds_bucket",
		"rwa_probe_seconds_bucket",
		"# VOLATILE exp_sweep_point_seconds",
		"fabric_steps ", // deterministic counters survive
	} {
		if !strings.Contains(string(a), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	b := promRun(t, dir, "b")
	sa, sb := stripVolatileFamilies(t, a), stripVolatileFamilies(t, b)
	if !bytes.Equal(sa, sb) {
		t.Fatalf("non-volatile exposition differs between identical runs:\n--- run a ---\n%s\n--- run b ---\n%s", sa, sb)
	}
}
