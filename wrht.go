// Package wrht is a Go implementation of WRHT (Wavelength Reused
// Hierarchical Tree), the all-reduce scheme for optical ring
// interconnects from
//
//	Dai, Chen, Huang, Zhang. "WRHT: Efficient All-reduce for Distributed
//	DNN Training in Optical Interconnect Systems." ICPP 2023.
//
// together with everything needed to reproduce the paper's evaluation:
// the baseline collectives (Ring, hierarchical Ring, binary tree,
// recursive halving/doubling), a TeraRack-style optical-ring simulator
// (Eq 6 timing, wavelength-conflict validation, §4.4 physical
// constraints), a flow-level electrical fat-tree simulator, the four DNN
// workload models, and a real data-plane executor that runs any schedule
// on in-process workers.
//
// # Quick start
//
//	sched, err := wrht.Build(wrht.KindWRHT, 15, wrht.WithWavelengths(2))
//	// sched.NumSteps() == 3 (the paper's Fig-2 motivating example)
//	out, err := wrht.AllReduce(sched, vectors, true) // real float32 data
//	res, err := wrht.Simulate(wrht.Optical, sched, 100e6)
//
// Build (build.go) is the single schedule-construction entrypoint —
// kind plus functional options (WithWavelengths, WithGroupSize,
// WithFaults, …) — and Simulate (simulate.go) the single simulation
// entrypoint over both fabrics; fault injection and degraded-mode
// scheduling are exposed through faults.go. The positional quick-start
// constructors below remain as thin wrappers.
//
// The package is a facade over the implementation packages under
// internal/; the experiment harness behind `cmd/wrhtsim` and the root
// benchmarks lives in internal/exp.
package wrht

import (
	"wrht/internal/cluster"
	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/electrical"
	"wrht/internal/optical"
	"wrht/internal/phys"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// Core schedule model (see internal/core for full documentation).
type (
	// Config parameterizes WRHT schedule construction: ring size N,
	// wavelength budget, optional explicit group size m and the §4.4
	// MaxGroupSize clamp.
	Config = core.Config
	// Schedule is an explicit bulk-synchronous collective schedule.
	Schedule = core.Schedule
	// Step is one communication step (one MRR reconfiguration).
	Step = core.Step
	// Transfer is one wavelength-assigned circuit within a step.
	Transfer = core.Transfer
	// Profile is the analytic step profile used for O(1)-per-step timing
	// at paper scale.
	Profile = core.Profile
	// Vector is a float32 gradient vector.
	Vector = tensor.Vector
	// Model is a DNN workload (layer table with parameters and FLOPs).
	Model = dnn.Model
	// OpticalParams is the Table-2 optical system configuration.
	OpticalParams = optical.Params
	// ElectricalParams is the Table-2 electrical system configuration.
	ElectricalParams = electrical.Params
	// Budget is the §4.4 optical link budget (insertion loss, crosstalk).
	Budget = phys.Budget
	// Torus is the §6.1 R×C torus topology.
	Torus = topo.Torus
)

// NewSchedule constructs the WRHT all-reduce schedule for the
// configuration (§4.1): hierarchical grouped gathers, a final
// wavelength-feasible all-to-all among representatives, and the mirrored
// broadcast stage.
func NewSchedule(cfg Config) (*Schedule, error) { return core.BuildWRHT(cfg) }

// NewTorusSchedule constructs WRHT on an R×C torus (§6.1): parallel row
// reduce stages, a column all-reduce among row representatives, and the
// reversed row broadcasts.
func NewTorusSchedule(t Torus, wavelengths, groupSize int) (*Schedule, error) {
	return Build(KindTorus, t.Rows*t.Cols, WithDims(t.Rows, t.Cols),
		WithWavelengths(wavelengths), WithGroupSize(groupSize))
}

// NewTorus returns an r×c torus topology.
func NewTorus(r, c int) Torus { return topo.NewTorus(r, c) }

// Baseline schedule constructors (§5.2), thin wrappers over Build.
func RingSchedule(n int) *Schedule        { return collective.BuildRing(n) }
func BTSchedule(n int) *Schedule          { return collective.BuildBT(n) }
func RDSchedule(n int) (*Schedule, error) { return Build(KindRD, n) }
func HRingSchedule(n, m, w int) (*Schedule, error) {
	return Build(KindHRing, n, WithGroupSize(m), WithWavelengths(w))
}

// Analytic step profiles for timing at arbitrary scale.
func WRHTProfile(cfg Config) (Profile, error) { return collective.WRHTProfile(cfg) }
func RingProfile(n int) Profile               { return collective.RingProfile(n) }
func BTProfile(n int) Profile                 { return collective.BTProfile(n) }
func HRingProfile(n, m, w int) Profile        { return collective.HRingProfile(n, m, w) }

// Steps returns the analytic WRHT step structure (θ, levels, whether the
// final all-to-all is used) without building transfers.
func Steps(cfg Config) (core.WRHTSteps, error) { return core.StepsWRHT(cfg) }

// LowerBoundSteps returns Lemma 1's bound 2⌈log_{2w+1}N⌉.
func LowerBoundSteps(n, w int) int { return core.LowerBoundSteps(n, w) }

// AllReduce executes the schedule on real data: worker i contributes
// inputs[i], and the returned slice holds every worker's final vector
// (the elementwise sum, divided by len(inputs) when average is set).
// The inputs are not modified.
func AllReduce(s *Schedule, inputs []Vector, average bool) ([]Vector, error) {
	cl, err := cluster.New(inputs)
	if err != nil {
		return nil, err
	}
	if err := cl.AllReduce(s, average); err != nil {
		return nil, err
	}
	return cl.Vectors(), nil
}

// DefaultOpticalParams returns the Table-2 optical configuration
// (64 wavelengths, 40 Gb/s each, 25 µs reconfiguration, 72 B packets).
func DefaultOpticalParams() OpticalParams { return optical.DefaultParams() }

// DefaultElectricalParams returns the Table-2 electrical configuration
// (two-level fat-tree of 32-port routers, 40 Gb/s links, 25 µs per hop).
func DefaultElectricalParams() ElectricalParams { return electrical.DefaultParams() }

// SimulateOptical times an explicit schedule carrying a dBytes-sized
// per-node vector on the optical ring (Eq 6), validating the wavelength
// budget first. Thin wrapper over Simulate.
func SimulateOptical(p OpticalParams, s *Schedule, dBytes float64) (SimResult, error) {
	return Simulate(Optical, s, dBytes, WithOpticalParams(p))
}

// SimulateOpticalProfile times an analytic profile (preferred at
// N ≥ thousands, where explicit Ring schedules are large). Thin wrapper
// over Simulate.
func SimulateOpticalProfile(p OpticalParams, pr Profile, dBytes float64) (SimResult, error) {
	return Simulate(Optical, pr, dBytes, WithOpticalParams(p))
}

// SimulateElectrical times a schedule on the fat-tree with n hosts.
// Thin wrapper over Simulate, returning just the completion time.
func SimulateElectrical(p ElectricalParams, n int, s *Schedule, dBytes float64) (float64, error) {
	res, err := Simulate(ElectricalFatTree, s, dBytes, WithElectricalParams(p), WithHosts(n))
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}

// DefaultBudget returns a representative TeraRack-class optical link
// budget for the §4.4 constraint analysis.
func DefaultBudget() Budget { return phys.DefaultBudget() }

// MaxGroupSize returns m′, the largest grouped-node count satisfying the
// insertion-loss and crosstalk constraints on an n-node ring, capped at
// cap (use 2·wavelengths+1). Feed it into Config.MaxGroupSize.
func MaxGroupSize(b Budget, n, cap int) int { return b.MaxGroupSize(n, cap) }

// Workload models of §5.1.
func BEiTLarge() Model { return dnn.BEiTLarge() }
func VGG16() Model     { return dnn.VGG16() }
func AlexNet() Model   { return dnn.AlexNet() }
func ResNet50() Model  { return dnn.ResNet50() }

// Workloads returns the four paper workloads in figure order.
func Workloads() []Model { return dnn.Workloads() }

// NewMesh returns an r×c mesh topology (§6.1).
func NewMesh(r, c int) topo.Mesh { return topo.NewMesh(r, c) }

// NewMeshSchedule constructs WRHT on an R×C mesh (§6.1): like the torus
// variant but on lines, with the one-stage line all-to-all in the final
// reduce step.
func NewMeshSchedule(m topo.Mesh, wavelengths, groupSize int) (*Schedule, error) {
	return Build(KindMesh, m.Rows*m.Cols, WithDims(m.Rows, m.Cols),
		WithWavelengths(wavelengths), WithGroupSize(groupSize))
}

// NewSegmentSchedule constructs a WRHT all-reduce among an ascending
// subset of ring positions, confined to the subset's span so that
// disjoint segments (e.g. per-stage data-parallel groups in hybrid
// training, §6.2) can run concurrently with full wavelength reuse.
func NewSegmentSchedule(ringN int, participants []int, wavelengths, groupSize int) (*Schedule, error) {
	return Build(KindSegment, ringN, WithParticipants(participants...),
		WithWavelengths(wavelengths), WithGroupSize(groupSize))
}

// DBTreeSchedule constructs the double-binary-tree all-reduce of [25]
// (NCCL's algorithm): BT's step count at half the per-step payload.
func DBTreeSchedule(n int) *Schedule { return collective.BuildDBTree(n) }

// BroadcastSchedule constructs a WRHT-style broadcast from root.
func BroadcastSchedule(n, wavelengths, root int) (*Schedule, error) {
	return Build(KindBroadcast, n, WithWavelengths(wavelengths), WithRoot(root))
}

// ReduceSchedule constructs a WRHT-style reduction to root.
func ReduceSchedule(n, wavelengths, root int) (*Schedule, error) {
	return Build(KindReduce, n, WithWavelengths(wavelengths), WithRoot(root))
}

// ReduceScatterSchedule constructs the ring reduce-scatter; node i ends
// up owning collective.OwnedChunk(n, i).
func ReduceScatterSchedule(n int) *Schedule { return collective.BuildReduceScatter(n) }

// AllGatherSchedule constructs the ring all-gather.
func AllGatherSchedule(n int) *Schedule { return collective.BuildAllGather(n) }

// VerifyMRR runs the micro-ring-resonator-level control-plane check on
// every step of the schedule (§3.2): each wavelength must be modulated
// once, reach its receiver unshadowed, and collide with nothing.
func VerifyMRR(s *Schedule) error { return optical.VerifySchedule(s) }

// WDMHRingSchedule constructs the WDM-enhanced hierarchical ring — a
// beyond-paper algorithm combining WRHT's wavelength-parallel exchanges
// with H-Ring's bandwidth-optimal chunking (see
// internal/collective/wdmhring.go). Requires m | n.
func WDMHRingSchedule(n, m, w int) (*Schedule, error) {
	return Build(KindWDMHRing, n, WithGroupSize(m), WithWavelengths(w))
}

// WDMHRingProfile returns its analytic step profile.
func WDMHRingProfile(n, m, w int) Profile { return collective.WDMHRingProfile(n, m, w) }
