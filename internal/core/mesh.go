package core

import (
	"fmt"
	"sort"
	"sync"

	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// WRHT on lines and meshes (§6.1): a mesh row/column is a line — no
// wraparound fiber — so the grouped gathers work unchanged (their
// circuits never cross a group boundary, let alone the seam), but the
// final exchange must use the one-stage all-to-all model for a line
// [13]: every ordered pair routes the only way it can, and wavelength
// assignment is interval-graph coloring, which first-fit by left
// endpoint solves optimally at the max-cut load ≈ ⌈k²/4⌉.

// lineArc is a directed interval [Lo, Hi) of line segments used by the
// flow Src→Dst (indices into the participant list).
type lineArc struct {
	Src, Dst int
	Lo, Hi   int
	Dir      topo.Direction // CW = toward higher index
}

// routeLineAllToAll routes all ordered pairs of k line positions.
func routeLineAllToAll(k int) (right, left []lineArc) {
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			switch {
			case i < j:
				right = append(right, lineArc{Src: i, Dst: j, Lo: i, Hi: j, Dir: topo.CW})
			case i > j:
				left = append(left, lineArc{Src: i, Dst: j, Lo: j, Hi: i, Dir: topo.CCW})
			}
		}
	}
	return right, left
}

// colorLine colors interval arcs with first-fit by (Lo, longest-first),
// which is optimal for interval graphs: the color count equals the max
// number of intervals over any segment.
func colorLine(arcs []lineArc) ([]int, int) {
	order := make([]int, len(arcs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := arcs[order[a]], arcs[order[b]]
		if x.Lo != y.Lo {
			return x.Lo < y.Lo
		}
		return x.Hi > y.Hi
	})
	colors := make([]int, len(arcs))
	var busyUntil []int // per color, the segment index it is free from
	used := 0
	for _, idx := range order {
		a := arcs[idx]
		assigned := -1
		for c := 0; c < used; c++ {
			if busyUntil[c] <= a.Lo {
				assigned = c
				break
			}
		}
		if assigned < 0 {
			busyUntil = append(busyUntil, 0)
			assigned = used
			used++
		}
		busyUntil[assigned] = a.Hi
		colors[idx] = assigned
	}
	return colors, used
}

var lineA2ACache sync.Map // int -> int

// LineAllToAllRequirement returns the wavelength count of the one-stage
// all-to-all among k nodes on a line: the max-cut load ⌊k/2⌋·⌈k/2⌉ per
// fiber (first-fit interval coloring is exactly optimal).
func LineAllToAllRequirement(k int) int {
	if k <= 1 {
		return 0
	}
	if v, ok := lineA2ACache.Load(k); ok {
		return v.(int)
	}
	right, left := routeLineAllToAll(k)
	_, nr := colorLine(right)
	_, nl := colorLine(left)
	req := nr
	if nl > req {
		req = nl
	}
	lineA2ACache.Store(k, req)
	return req
}

// buildLineAllToAllStep emits the physical one-stage exchange among
// representatives at the given ascending line positions.
func buildLineAllToAllStep(reps []int) Step {
	st := Step{Phase: PhaseAllToAll}
	right, left := routeLineAllToAll(len(reps))
	rc, _ := colorLine(right)
	lc, _ := colorLine(left)
	emit := func(arcs []lineArc, colors []int) {
		for i, a := range arcs {
			st.Transfers = append(st.Transfers, Transfer{
				Src: reps[a.Src], Dst: reps[a.Dst],
				Chunk: tensor.Whole, Op: tensor.OpSum,
				Dir: a.Dir, Wavelength: colors[i],
			})
		}
	}
	emit(right, rc)
	emit(left, lc)
	return st
}

// BuildWRHTLine constructs the WRHT all-reduce on an N-node line (a
// mesh row): identical grouped gathers, with the line all-to-all in the
// final reduce step when ⌊m*/2⌋·⌈m*/2⌉ wavelengths fit the budget.
func BuildWRHTLine(cfg Config) (*Schedule, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := cfg.EffectiveGroupSize()
	s := &Schedule{Algorithm: "wrht-line", Ring: topo.NewRing(cfg.N)}
	if cfg.N == 1 {
		return s, nil
	}
	participants := make([]int, cfg.N)
	for i := range participants {
		participants[i] = i
	}
	var levels [][]group
	for len(participants) > 1 {
		r := len(participants)
		if r <= m && !cfg.DisableAllToAll && LineAllToAllRequirement(r) <= cfg.Wavelengths {
			s.Steps = append(s.Steps, buildLineAllToAllStep(participants))
			break
		}
		groups := partition(participants, m)
		s.Steps = append(s.Steps, gatherStep(groups, tensor.OpSum))
		levels = append(levels, groups)
		next := make([]int, len(groups))
		for i, g := range groups {
			next[i] = g.rep()
		}
		participants = next
	}
	for i := len(levels) - 1; i >= 0; i-- {
		s.Steps = append(s.Steps, gatherStep(levels[i], tensor.OpCopy))
	}
	return s, nil
}

// BuildWRHTMesh constructs the §6.1 WRHT all-reduce on an R×C mesh: row
// reduce stages in parallel, a column all-reduce (with the line
// all-to-all) among the row representatives, and reversed row
// broadcasts.
func BuildWRHTMesh(m topo.Mesh, wavelengths, groupSize int) (*Schedule, error) {
	s := &Schedule{Algorithm: "wrht-mesh", Ring: topo.NewRing(m.N())}
	rowCfg := Config{N: m.Cols, Wavelengths: wavelengths, GroupSize: groupSize, DisableAllToAll: true}
	var rowSteps []Step
	if m.Cols > 1 {
		rowSched, err := BuildWRHTLine(rowCfg)
		if err != nil {
			return nil, fmt.Errorf("core: mesh row stage: %w", err)
		}
		rowSteps = rowSched.Steps
	}
	gathers := len(rowSteps) / 2
	mergeRows := func(tmpl Step) Step {
		out := Step{Phase: tmpl.Phase}
		for r := 0; r < m.Rows; r++ {
			mapped := remapStep(tmpl, func(col int) int { return m.Index(r, col) })
			out.Transfers = append(out.Transfers, mapped.Transfers...)
		}
		return out
	}
	for i := 0; i < gathers; i++ {
		s.Steps = append(s.Steps, mergeRows(rowSteps[i]))
	}
	if m.Rows > 1 {
		repCol := 0
		if m.Cols > 1 {
			repCol = rowRepPosition(m.Cols, rowCfg.EffectiveGroupSize())
		}
		colCfg := Config{N: m.Rows, Wavelengths: wavelengths, GroupSize: groupSize}
		if colCfg.GroupSize > m.Rows {
			colCfg.GroupSize = 0
		}
		colSched, err := BuildWRHTLine(colCfg)
		if err != nil {
			return nil, fmt.Errorf("core: mesh column stage: %w", err)
		}
		for _, st := range colSched.Steps {
			s.Steps = append(s.Steps, remapStep(st, func(row int) int { return m.Index(row, repCol) }))
		}
	}
	for i := gathers; i < len(rowSteps); i++ {
		s.Steps = append(s.Steps, mergeRows(rowSteps[i]))
	}
	return s, nil
}

// ValidateMesh checks a mesh schedule: every transfer stays within one
// row or column, never crosses the (nonexistent) wraparound edge, and
// the per-line wavelength assignment is conflict-free within the budget.
func ValidateMesh(s *Schedule, m topo.Mesh, wavelengths int) error {
	type lineKey struct {
		row bool
		idx int
	}
	type occ struct {
		lo, hi, wl int
	}
	for si, st := range s.Steps {
		perLineDir := map[lineKey]map[topo.Direction][]occ{}
		for ti, tr := range st.Transfers {
			sr, sc := m.Coord(tr.Src)
			dr, dc := m.Coord(tr.Dst)
			var key lineKey
			var a, b int
			switch {
			case sr == dr:
				key, a, b = lineKey{true, sr}, sc, dc
			case sc == dc:
				key, a, b = lineKey{false, sc}, sr, dr
			default:
				return fmt.Errorf("core: mesh step %d transfer %d crosses both dimensions: %v", si, ti, tr)
			}
			// No wraparound on a line: direction must match index order.
			if (tr.Dir == topo.CW) != (b > a) {
				return fmt.Errorf("core: mesh step %d transfer %d travels %v but %d->%d (would need wraparound)", si, ti, tr.Dir, a, b)
			}
			if wavelengths > 0 && tr.Wavelength >= wavelengths {
				return fmt.Errorf("core: mesh step %d transfer %d wavelength %d beyond budget %d", si, ti, tr.Wavelength, wavelengths)
			}
			lo, hi := topo.LineSegments(a, b)
			if perLineDir[key] == nil {
				perLineDir[key] = map[topo.Direction][]occ{}
			}
			for _, other := range perLineDir[key][tr.Dir] {
				if other.wl == tr.Wavelength && lo < other.hi && other.lo < hi {
					return fmt.Errorf("core: mesh step %d transfer %d conflicts on λ%d over segments [%d,%d)", si, ti, tr.Wavelength, lo, hi)
				}
			}
			perLineDir[key][tr.Dir] = append(perLineDir[key][tr.Dir], occ{lo, hi, tr.Wavelength})
		}
	}
	return nil
}
