package exp

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/electrical"
	"wrht/internal/fabric"
	"wrht/internal/metrics"
	"wrht/internal/obs"
	"wrht/internal/plan"
	"wrht/internal/topo"
)

// PlanPoint is one row of the all-to-all planner sweep: a standalone
// final-phase exchange among r representatives on a w-wavelength ring
// with reconfiguration delay a, planned and then simulated.
type PlanPoint struct {
	// Fabric is the pricing backend ("optical", "electrical").
	Fabric string
	// R is the representative count, W the wavelength budget (0 on the
	// electrical fabric) and AMicro the reconfiguration delay in µs
	// (ignored by the electrical fabric).
	R, W   int
	AMicro float64
	// Chosen describes the winning plan; ChosenSteps its step count.
	Chosen      string
	ChosenSteps int
	// Predicted is the planner's time for the chosen plan; Simulated is
	// fabric.Engine's time for the same steps. The two must be equal —
	// the planner mirrors the engine's accumulation — and Argmin
	// reports that the chosen plan also simulates no slower than every
	// other candidate.
	Predicted, Simulated float64
	Argmin               bool
	// OneShot and Fallback are the simulated times of the two fixed
	// strategies the planner competes with: the unstriped single-step
	// exchange (0 when it exceeds the budget) and the unstriped
	// gather-to-root + broadcast the builder historically fell back to.
	OneShot, Fallback float64
}

// PlanSweepResult bundles the rendered table with the raw points.
type PlanSweepResult struct {
	Table  *metrics.Table
	Points []PlanPoint
}

// phaseSchedule wraps plan steps for the engine.
func phaseSchedule(ring topo.Ring, steps []core.Step) *core.Schedule {
	return &core.Schedule{Algorithm: "a2a-plan", Ring: ring, Steps: steps}
}

// fallbackPlan is the phase the pre-planner builder executed when the
// one-shot exchange exceeded the budget: an unstriped gather of every
// representative's partial to a single root, mirrored by a broadcast.
func fallbackPlan(r int) core.PhasePlan {
	return core.PhasePlan{
		Family: "fallback",
		Levels: []core.PhaseLevel{{Group: r, Stripe: 1, BcastStripe: 1}},
	}
}

// planPoint plans and cross-checks one grid point on fab.
func planPoint(fab fabric.Fabric, budget, r int, aMicro, dBytes float64, overlap bool, o plan.Observer) (PlanPoint, error) {
	ring := topo.NewRing(r)
	reps := make([]int, r)
	for i := range reps {
		reps[i] = i
	}
	pl := plan.Planner{Fabric: fab, Budget: budget, Overlap: overlap, Observer: o}
	d, err := pl.Plan(ring, reps, dBytes)
	if err != nil {
		return PlanPoint{}, err
	}
	eng := fabric.Engine{Fabric: fab, Opts: fabric.Options{Overlap: overlap, ValidateWavelengths: true}}
	pt := PlanPoint{
		Fabric: fab.Name(), R: r, W: budget, AMicro: aMicro,
		Chosen: d.Best().Plan.String(), ChosenSteps: d.Best().Steps,
		Predicted: d.Best().Predicted,
	}
	// Simulate every candidate: the chosen one must be an argmin of the
	// simulated times, not merely of the predictions.
	minSim, chosenSim := 0.0, 0.0
	for i, c := range d.Candidates {
		steps, err := core.BuildPhaseSteps(ring, reps, c.Plan)
		if err != nil {
			return PlanPoint{}, fmt.Errorf("rebuild %s: %w", c.Plan, err)
		}
		res, err := eng.RunSchedule(phaseSchedule(ring, steps), dBytes)
		if err != nil {
			return PlanPoint{}, fmt.Errorf("simulate %s: %w", c.Plan, err)
		}
		if i == 0 || res.Time < minSim {
			minSim = res.Time
		}
		if i == d.Chosen {
			chosenSim = res.Time
		}
	}
	pt.Simulated = chosenSim
	pt.Argmin = chosenSim <= minSim
	// The two fixed comparators (built outside the candidate set so the
	// gate holds even where the planner enumerates striped variants).
	if core.AllToAllRequirement(r) <= budget || budget <= 0 {
		steps, err := core.BuildPhaseSteps(ring, reps, core.PhasePlan{Family: "one-shot", TopA2A: true, TopStripe: 1})
		if err != nil {
			return PlanPoint{}, err
		}
		res, err := eng.RunSchedule(phaseSchedule(ring, steps), dBytes)
		if err != nil {
			return PlanPoint{}, err
		}
		pt.OneShot = res.Time
	}
	if steps, err := core.BuildPhaseSteps(ring, reps, fallbackPlan(r)); err == nil {
		if res, err := eng.RunSchedule(phaseSchedule(ring, steps), dBytes); err == nil {
			pt.Fallback = res.Time
		}
	}
	return pt, nil
}

// Check reports whether the point passes the planner gate: the chosen
// plan's prediction matches its simulation exactly, it is a simulated
// argmin over the candidates, and it is no slower than either fixed
// strategy where those are feasible.
func (pt PlanPoint) Check() error {
	if pt.Predicted != pt.Simulated {
		return fmt.Errorf("predicted %.9g s != simulated %.9g s", pt.Predicted, pt.Simulated)
	}
	if !pt.Argmin {
		return fmt.Errorf("chosen plan %s is not the simulated argmin", pt.Chosen)
	}
	if pt.OneShot > 0 && pt.Simulated > pt.OneShot {
		return fmt.Errorf("chosen plan %s (%.9g s) slower than one-shot (%.9g s)", pt.Chosen, pt.Simulated, pt.OneShot)
	}
	if pt.Fallback > 0 && pt.Simulated > pt.Fallback {
		return fmt.Errorf("chosen plan %s (%.9g s) slower than fallback (%.9g s)", pt.Chosen, pt.Simulated, pt.Fallback)
	}
	return nil
}

// PlanSweep runs the all-to-all planner over the (r, w, a) grid on the
// optical fabric — every representative count in rs × every wavelength
// budget in ws × every reconfiguration delay (µs) in aMicros — plus one
// uncapped electrical row per r, cross-checking the planner's
// prediction against fabric.Engine at every point. Options.Metrics
// receives the planner's decision counters through obs.PlanObserver.
func PlanSweep(o Options, rs, ws []int, aMicros []float64, dBytes float64) (PlanSweepResult, error) {
	return newEngine(o, "plan").planSweep(rs, ws, aMicros, dBytes)
}

func (e *engine) planSweep(rs, ws []int, aMicros []float64, dBytes float64) (PlanSweepResult, error) {
	if e.optFabErr != nil {
		return PlanSweepResult{}, e.optFabErr
	}
	pObs := obs.NewPlanObserver(e.opts.Trace, e.opts.Metrics)
	type gridPoint struct {
		r, w   int
		aMicro float64
		elec   bool
	}
	var grid []gridPoint
	for _, r := range rs {
		for _, w := range ws {
			for _, a := range aMicros {
				grid = append(grid, gridPoint{r: r, w: w, aMicro: a})
			}
		}
		grid = append(grid, gridPoint{r: r, elec: true})
	}
	points, err := sweep(e, len(grid), func(i int) (PlanPoint, error) {
		g := grid[i]
		if g.elec {
			nw, err := electrical.NewNetwork(g.r, e.opts.Electrical)
			if err != nil {
				return PlanPoint{}, fmt.Errorf("plan sweep (r=%d, electrical): %w", g.r, err)
			}
			pt, err := planPoint(nw.Fabric(), 0, g.r, 0, dBytes, false, pObs)
			if err != nil {
				return PlanPoint{}, fmt.Errorf("plan sweep (r=%d, electrical): %w", g.r, err)
			}
			return pt, nil
		}
		params := e.opts.Optical
		params.Wavelengths = g.w
		params.ReconfigDelay = g.aMicro * 1e-6
		fab, err := params.Fabric()
		if err != nil {
			return PlanPoint{}, fmt.Errorf("plan sweep (r=%d, w=%d, a=%gus): %w", g.r, g.w, g.aMicro, err)
		}
		pt, err := planPoint(fab, g.w, g.r, g.aMicro, dBytes, true, pObs)
		if err != nil {
			return PlanPoint{}, fmt.Errorf("plan sweep (r=%d, w=%d, a=%gus): %w", g.r, g.w, g.aMicro, err)
		}
		return pt, nil
	})
	if err != nil {
		return PlanSweepResult{}, err
	}
	t := &metrics.Table{
		Title:   fmt.Sprintf("All-to-all planner sweep, %.0f MB payload (predicted == simulated at every row)", dBytes/1e6),
		Headers: []string{"fabric", "r", "w", "a (us)", "chosen plan", "time (ms)", "one-shot (ms)", "fallback (ms)", "argmin"},
	}
	msOrDash := func(v float64) string {
		if v <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.3f", v*1e3)
	}
	for _, pt := range points {
		t.AddRow(pt.Fabric, fmt.Sprint(pt.R), fmt.Sprint(pt.W), fmt.Sprintf("%g", pt.AMicro),
			pt.Chosen, fmt.Sprintf("%.3f", pt.Simulated*1e3),
			msOrDash(pt.OneShot), msOrDash(pt.Fallback), fmt.Sprint(pt.Argmin))
	}
	return PlanSweepResult{Table: t, Points: points}, nil
}

// RescuePoint is one end-to-end comparison of a configuration whose
// final representatives exceed the one-shot budget: the full WRHT
// schedule with the historical gather fallback versus the same
// configuration with Config.PlanAllToAll.
type RescuePoint struct {
	N, W int
	// FinalR is the representative count entering the final phase and
	// Requirement its one-shot wavelength requirement (> W here).
	FinalR, Requirement int
	// Steps and Time for the fallback and the planned schedule, both
	// simulated end to end on the optical fabric in overlap mode.
	FallbackSteps, PlannedSteps int
	FallbackTime, PlannedTime   float64
	// Speedup is FallbackTime / PlannedTime.
	Speedup float64
}

// RescueSweep measures the headline win of Config.PlanAllToAll: full
// WRHT schedules at (N, w) points in the fallback regime
// (AllToAllRequirement(final r) > w), with and without the planner.
func RescueSweep(o Options, ns, ws []int, dBytes float64) ([]RescuePoint, error) {
	e := newEngine(o, "rescue")
	if e.optFabErr != nil {
		return nil, e.optFabErr
	}
	if len(ns) != len(ws) {
		return nil, fmt.Errorf("plan rescue: %d ring sizes vs %d budgets", len(ns), len(ws))
	}
	return sweep(e, len(ns), func(i int) (RescuePoint, error) {
		n, w := ns[i], ws[i]
		params := e.opts.Optical
		params.Wavelengths = w
		fab, err := params.Fabric()
		if err != nil {
			return RescuePoint{}, err
		}
		eng := fabric.Engine{Fabric: fab, Opts: fabric.Options{Overlap: true, ValidateWavelengths: true}}
		run := func(planned bool) (fabric.Result, core.WRHTSteps, error) {
			cfg := core.Config{N: n, Wavelengths: w, PlanAllToAll: planned}
			st, err := core.StepsWRHT(cfg)
			if err != nil {
				return fabric.Result{}, core.WRHTSteps{}, err
			}
			s, err := core.BuildWRHT(cfg)
			if err != nil {
				return fabric.Result{}, core.WRHTSteps{}, err
			}
			res, err := eng.RunSchedule(s, dBytes)
			return res, st, err
		}
		fb, _, err := run(false)
		if err != nil {
			return RescuePoint{}, fmt.Errorf("plan rescue (N=%d, w=%d) fallback: %w", n, w, err)
		}
		pl, plSt, err := run(true)
		if err != nil {
			return RescuePoint{}, fmt.Errorf("plan rescue (N=%d, w=%d) planned: %w", n, w, err)
		}
		r := plSt.FinalGroup
		if req := core.AllToAllRequirement(r); req <= w {
			return RescuePoint{}, fmt.Errorf("plan rescue (N=%d, w=%d): final r=%d requirement %d fits the budget — not a fallback configuration", n, w, r, req)
		}
		return RescuePoint{
			N: n, W: w, FinalR: r, Requirement: core.AllToAllRequirement(r),
			FallbackSteps: fb.Steps, PlannedSteps: pl.Steps,
			FallbackTime: fb.Time, PlannedTime: pl.Time,
			Speedup: fb.Time / pl.Time,
		}, nil
	})
}
