// Package topo models the interconnect topologies used by the paper: the
// TeraRack-style optical double ring that WRHT targets (§3.2), the torus
// and mesh extensions (§6.1), and the two-level fat-tree used by the
// electrical baseline (§5.1, Table 2).
package topo

import "fmt"

// Direction is a travel direction on a ring waveguide. TeraRack carries
// traffic on clockwise and counter-clockwise fiber rings; every node has
// an independent transmitter/receiver pair per direction, which is why a
// representative node can receive on the same wavelength from both sides
// simultaneously (§3.3).
type Direction int8

const (
	// CW is the clockwise direction (increasing node index).
	CW Direction = iota
	// CCW is the counter-clockwise direction (decreasing node index).
	CCW
)

func (d Direction) String() string {
	switch d {
	case CW:
		return "cw"
	case CCW:
		return "ccw"
	default:
		return fmt.Sprintf("Direction(%d)", int8(d))
	}
}

// Opposite returns the reverse direction.
func (d Direction) Opposite() Direction {
	if d == CW {
		return CCW
	}
	return CW
}

// Ring is an N-node ring with nodes labeled 0..N-1. Travelling CW from
// node i reaches (i+1) mod N first.
type Ring struct {
	N int
}

// NewRing returns an n-node ring. It panics if n < 1.
func NewRing(n int) Ring {
	if n < 1 {
		panic(fmt.Sprintf("topo: ring size %d < 1", n))
	}
	return Ring{N: n}
}

// Dist returns the hop count from src to dst travelling in direction dir.
func (r Ring) Dist(src, dst int, dir Direction) int {
	d := dst - src
	if dir == CCW {
		d = -d
	}
	d %= r.N
	if d < 0 {
		d += r.N
	}
	return d
}

// ShortestDir returns the direction with the fewer hops from src to dst
// and that hop count. Ties (exactly opposite nodes) resolve to CW.
func (r Ring) ShortestDir(src, dst int) (Direction, int) {
	cw := r.Dist(src, dst, CW)
	ccw := r.N - cw
	if src == dst {
		return CW, 0
	}
	if cw <= ccw {
		return CW, cw
	}
	return CCW, ccw
}

// Segment returns the sequence of directed fiber segments traversed from
// src to dst in direction dir, as segment indices. Segment i on the CW
// fiber joins node i to node i+1 mod N; segment i on the CCW fiber joins
// node i+1 mod N to node i. A circuit from src to dst occupies its
// wavelength on every segment it crosses.
func (r Ring) Segment(src, dst int, dir Direction) []int {
	hops := r.Dist(src, dst, dir)
	segs := make([]int, 0, hops)
	at := src
	for h := 0; h < hops; h++ {
		if dir == CW {
			segs = append(segs, at)
			at = (at + 1) % r.N
		} else {
			at = (at - 1 + r.N) % r.N
			segs = append(segs, at)
		}
	}
	return segs
}

// Arc describes the set of fiber segments a directed ring circuit
// occupies, stored as a wrapped interval of Len consecutive segment
// indices starting at Lo (mod N). Whatever the travel direction, the
// occupied segment set is contiguous in increasing index order:
// a CW circuit from src over h hops covers {src, ..., src+h-1};
// a CCW circuit from src over h hops covers {src-h, ..., src-1}.
type Arc struct {
	Lo  int // lowest segment index of the interval (mod N)
	Len int // number of segments
	N   int // ring size (modulus)
}

// ArcOf returns the Arc occupied by a circuit from src to dst in dir.
func (r Ring) ArcOf(src, dst int, dir Direction) Arc {
	hops := r.Dist(src, dst, dir)
	lo := src
	if dir == CCW {
		lo = ((src-hops)%r.N + r.N) % r.N
	}
	return Arc{Lo: lo, Len: hops, N: r.N}
}

// Contains reports whether the arc covers segment index s.
func (a Arc) Contains(s int) bool {
	if a.Len == 0 {
		return false
	}
	if a.Len >= a.N {
		return true
	}
	off := ((s-a.Lo)%a.N + a.N) % a.N
	return off < a.Len
}

// Overlaps reports whether two arcs on the same fiber share a segment.
// Both arcs must have the same modulus N.
func (a Arc) Overlaps(b Arc) bool {
	if a.N != b.N {
		panic(fmt.Sprintf("topo: arc modulus mismatch %d != %d", a.N, b.N))
	}
	if a.Len == 0 || b.Len == 0 {
		return false
	}
	if a.Len >= a.N || b.Len >= b.N {
		return true
	}
	// Two wrapped intervals overlap iff either contains the other's start.
	return a.Contains(b.Lo) || b.Contains(a.Lo)
}
