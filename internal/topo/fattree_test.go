package topo

import (
	"testing"
	"testing/quick"
)

func TestFatTreeShape(t *testing.T) {
	cases := []struct {
		hosts, radix      int
		edges, cores, hpe int
	}{
		{1024, 32, 64, 16, 16}, // cores capped at hpe; see NewFatTree doc
		{512, 32, 32, 16, 16},
		{128, 32, 8, 4, 16},
		{16, 32, 1, 1, 16},
	}
	for _, c := range cases {
		f := NewFatTree(c.hosts, c.radix)
		if f.Edges != c.edges || f.Cores != c.cores || f.HostsPerEdge != c.hpe {
			t.Errorf("NewFatTree(%d,%d) = edges %d cores %d hpe %d, want %d %d %d",
				c.hosts, c.radix, f.Edges, f.Cores, f.HostsPerEdge, c.edges, c.cores, c.hpe)
		}
	}
}

func TestRouteIntraEdge(t *testing.T) {
	f := NewFatTree(1024, 32)
	p := f.Route(3, 7) // both on edge 0
	if len(p.Routers) != 1 || p.Routers[0] != 0 {
		t.Fatalf("intra-edge route routers = %v", p.Routers)
	}
	if len(p.Links) != 2 {
		t.Fatalf("intra-edge route links = %v", p.Links)
	}
}

func TestRouteInterEdge(t *testing.T) {
	f := NewFatTree(1024, 32)
	p := f.Route(3, 900)
	if len(p.Routers) != 3 {
		t.Fatalf("inter-edge route routers = %v", p.Routers)
	}
	if p.Routers[0] != f.EdgeOf(3) || p.Routers[2] != f.EdgeOf(900) {
		t.Fatalf("route endpoints wrong: %v", p.Routers)
	}
	core := p.Routers[1]
	if core < f.Edges || core >= f.Edges+f.Cores {
		t.Fatalf("middle router %d is not a core", core)
	}
	if len(p.Links) != 4 {
		t.Fatalf("inter-edge route links = %v", p.Links)
	}
}

func TestRouteSelf(t *testing.T) {
	f := NewFatTree(64, 32)
	p := f.Route(5, 5)
	if len(p.Routers) != 0 || len(p.Links) != 0 {
		t.Fatalf("self route should be empty, got %+v", p)
	}
}

func TestRouteLinkIDsWithinBounds(t *testing.T) {
	f := NewFatTree(256, 32)
	limit := f.NumLinks()
	q := func(sRaw, dRaw uint16) bool {
		s, d := int(sRaw)%256, int(dRaw)%256
		for _, l := range f.Route(s, d).Links {
			if l < 0 || l >= limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(q, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteSpreadsUplinks(t *testing.T) {
	// The 16 hosts of one edge sending to another edge must use 16
	// distinct uplinks (static spreading avoids artificial collisions).
	f := NewFatTree(1024, 32)
	seen := map[int]bool{}
	for h := 0; h < 16; h++ {
		p := f.Route(h, 512+h)
		up := p.Links[1]
		if seen[up] {
			t.Fatalf("uplink %d reused by host %d", up, h)
		}
		seen[up] = true
	}
}

func TestRoutePanicsOutOfRange(t *testing.T) {
	f := NewFatTree(16, 32)
	defer func() {
		if recover() == nil {
			t.Fatal("Route out of range did not panic")
		}
	}()
	f.Route(0, 99)
}

func TestNewFatTreePanics(t *testing.T) {
	for _, c := range []struct{ n, radix int }{{0, 32}, {16, 3}, {16, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFatTree(%d,%d) did not panic", c.n, c.radix)
				}
			}()
			NewFatTree(c.n, c.radix)
		}()
	}
}

func TestTorusRings(t *testing.T) {
	tor := NewTorus(3, 4)
	if tor.N() != 12 {
		t.Fatalf("N = %d", tor.N())
	}
	ring, ids := tor.RowRing(1)
	if ring.N != 4 || ids[0] != 4 || ids[3] != 7 {
		t.Fatalf("RowRing(1) = %v %v", ring, ids)
	}
	cring, cids := tor.ColRing(2)
	if cring.N != 3 || cids[0] != 2 || cids[2] != 10 {
		t.Fatalf("ColRing(2) = %v %v", cring, cids)
	}
	r, c := tor.Coord(7)
	if r != 1 || c != 3 || tor.Index(r, c) != 7 {
		t.Fatalf("Coord/Index roundtrip broken: %d %d", r, c)
	}
}

func TestMesh(t *testing.T) {
	m := NewMesh(2, 5)
	if m.N() != 10 {
		t.Fatalf("N = %d", m.N())
	}
	if lo, hi := LineSegments(4, 1); lo != 1 || hi != 4 {
		t.Fatalf("LineSegments(4,1) = %d,%d", lo, hi)
	}
	r, c := m.Coord(7)
	if r != 1 || c != 2 || m.Index(r, c) != 7 {
		t.Fatalf("mesh coord roundtrip: %d %d", r, c)
	}
}
