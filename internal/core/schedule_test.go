package core

import (
	"strings"
	"testing"

	"wrht/internal/tensor"
	"wrht/internal/topo"
)

func ringOf(n int) topo.Ring { return topo.NewRing(n) }
func whole() tensor.Chunk    { return tensor.Whole }
func half() tensor.Chunk     { return tensor.Chunk{Index: 0, Of: 2} }

func TestScheduleValidateCatchesBadNodes(t *testing.T) {
	s := &Schedule{Ring: ringOf(4)}
	s.Steps = []Step{{Transfers: []Transfer{{Src: 0, Dst: 9, Chunk: whole()}}}}
	if err := s.Validate(0); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	s.Steps = []Step{{Transfers: []Transfer{{Src: 2, Dst: 2, Chunk: whole()}}}}
	if err := s.Validate(0); err == nil {
		t.Fatal("self transfer accepted")
	}
	s.Steps = []Step{{Transfers: []Transfer{{Src: 0, Dst: 1, Chunk: tensor.Chunk{Index: 5, Of: 2}}}}}
	if err := s.Validate(0); err == nil {
		t.Fatal("bad chunk accepted")
	}
}

func TestScheduleValidateCatchesConflicts(t *testing.T) {
	s := &Schedule{Ring: ringOf(8)}
	s.Steps = []Step{{Transfers: []Transfer{
		{Src: 0, Dst: 4, Chunk: whole(), Dir: topo.CW, Wavelength: 0},
		{Src: 2, Dst: 6, Chunk: whole(), Dir: topo.CW, Wavelength: 0},
	}}}
	if err := s.Validate(0); err == nil {
		t.Fatal("overlapping same-wavelength circuits accepted")
	}
	s.Steps[0].Transfers[1].Wavelength = 1
	if err := s.Validate(2); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestWavelengthsNeeded(t *testing.T) {
	s := &Schedule{Ring: ringOf(8)}
	s.Steps = []Step{
		{Transfers: []Transfer{{Src: 0, Dst: 1, Chunk: whole(), Wavelength: 2}}},
		{Transfers: []Transfer{{Src: 1, Dst: 2, Chunk: whole(), Wavelength: 5}}},
	}
	if got := s.WavelengthsNeeded(); got != 6 {
		t.Fatalf("WavelengthsNeeded = %d, want 6", got)
	}
	empty := &Schedule{Ring: ringOf(2)}
	if empty.WavelengthsNeeded() != 0 {
		t.Fatal("empty schedule should need 0 wavelengths")
	}
}

func TestPhaseAndTransferStrings(t *testing.T) {
	if PhaseReduce.String() != "reduce" || PhaseAllToAll.String() != "all-to-all" || PhaseBroadcast.String() != "broadcast" {
		t.Fatal("phase strings wrong")
	}
	tr := Transfer{Src: 1, Dst: 2, Chunk: whole(), Op: tensor.OpSum, Dir: topo.CW, Wavelength: 3}
	if got := tr.String(); !strings.Contains(got, "1->2") || !strings.Contains(got, "λ3") {
		t.Fatalf("Transfer.String() = %q", got)
	}
}

func TestStepsByPhase(t *testing.T) {
	s, err := BuildWRHT(Config{N: 100, Wavelengths: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, a, b := s.StepsByPhase()
	if r+a+b != s.NumSteps() {
		t.Fatalf("phase counts %d+%d+%d != %d", r, a, b, s.NumSteps())
	}
	if b != r {
		// With an all-to-all the broadcast mirrors the gathers exactly.
		t.Fatalf("broadcast steps %d != reduce steps %d", b, r)
	}
}
