package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var rec Recorder
	rec.Record(NewRun("exp1", []string{"a", "b"},
		map[string][]float64{"s1": {1, 2}, "s0": {3, 4}},
		map[string]float64{"nodes": 16}))
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	runs, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Experiment != "exp1" {
		t.Fatalf("runs = %+v", runs)
	}
	if len(runs[0].Series) != 2 || runs[0].Series[0].Name != "s0" {
		t.Fatalf("series not sorted: %+v", runs[0].Series)
	}
	if runs[0].Series[1].Points[1].X != "b" || runs[0].Series[1].Points[1].Y != 2 {
		t.Fatalf("points wrong: %+v", runs[0].Series[1].Points)
	}
	if runs[0].Scalars["nodes"] != 16 {
		t.Fatalf("scalars: %+v", runs[0].Scalars)
	}
	if runs[0].Timestamp.IsZero() {
		t.Fatal("timestamp not stamped")
	}
}

func TestNewRunPadsMissingTicks(t *testing.T) {
	run := NewRun("x", []string{"only"}, map[string][]float64{"s": {1, 2, 3}}, nil)
	pts := run.Series[0].Points
	if pts[0].X != "only" || pts[1].X != "1" || pts[2].X != "2" {
		t.Fatalf("points = %+v", pts)
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	var rec Recorder
	rec.Record(Run{Experiment: "f"})
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runs, err := Load(f)
	if err != nil || len(runs) != 1 {
		t.Fatalf("load: %v %d", err, len(runs))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestInjectedClockMakesDocumentsByteStable(t *testing.T) {
	fixed := time.Date(2023, 8, 7, 12, 0, 0, 0, time.UTC)
	render := func() []byte {
		rec := Recorder{Now: func() time.Time { return fixed }}
		rec.Record(NewRun("exp", []string{"a"}, map[string][]float64{"s": {1}}, nil))
		var buf bytes.Buffer
		if _, err := rec.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := render(), render()
	if !bytes.Equal(first, second) {
		t.Fatal("fixed-clock documents differ between renders")
	}
	if !bytes.Contains(first, []byte("2023-08-07T12:00:00Z")) {
		t.Fatalf("injected timestamp missing from document:\n%s", first)
	}
}

func TestNilClockStillStamps(t *testing.T) {
	var rec Recorder
	rec.Record(Run{Experiment: "exp"})
	if rec.Runs[0].Timestamp.IsZero() {
		t.Fatal("nil-clock recorder left a zero timestamp")
	}
}
