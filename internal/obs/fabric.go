package obs

import (
	"fmt"

	"wrht/internal/fabric"
)

// FabricObserver implements fabric.Observer, turning the engine's step
// events into Perfetto spans and registry counters. One observer traces
// one engine run; its Process names the Perfetto process grouping all
// of the run's tracks (e.g. "optical+overlap/WRHT"), so several runs —
// the crossfabric table times every (mode, algorithm) pair — coexist in
// one trace file side by side, each starting at simulated time zero.
//
// Track layout (DESIGN.md §2.3):
//
//   - "steps": one parent span per step over its visible window
//     [Start, Start+Total−Hidden], named after the phase, with nested
//     "reconfig" / "serialization" / "oeo" / "router-delay" child spans
//     for the non-zero cost components.
//   - "control plane": "reconfig (overlap-hidden)" spans for the setup
//     portion that ran under the previous step's transmission, at
//     [Start−Hidden, Start] — the part of the 25 µs MRR retune the
//     overlap mode made free.
//   - "node <i> <dir>": one track per (source node, ring direction)
//     carrying a "circuit λ<w>" reservation span per transfer over the
//     step's transmission window, with step/wavelength/src/dst args.
//
// Tracer and Metrics may each be nil independently (spans only, or
// counters only).
type FabricObserver struct {
	Tracer  *Tracer
	Metrics *Registry
	// Process names the Perfetto process for this run's tracks.
	Process string
	// MaxNodeTracks caps how many (node, direction) circuit tracks are
	// emitted (tracks for nodes ≥ the cap are dropped, keeping traces of
	// large rings readable). Zero means no cap.
	MaxNodeTracks int
}

// NewFabricObserver returns an observer emitting into tr and reg (either
// may be nil) under the given Perfetto process name.
func NewFabricObserver(tr *Tracer, reg *Registry, process string) *FabricObserver {
	return &FabricObserver{Tracer: tr, Metrics: reg, Process: process}
}

// StepExecuted renders one schedule step into spans and counters.
func (o *FabricObserver) StepExecuted(ev fabric.StepEvent) {
	c := ev.Cost
	visible := c.Total - ev.Hidden
	start := ev.Start
	if t := o.Tracer; t != nil {
		steps := Track{Process: o.Process, Name: "steps"}
		t.Span(steps, ev.Step.Phase.String(), start, visible, Args{
			"step": ev.Index, "transfers": len(ev.Step.Transfers),
			"bytes": c.MaxBytes, "hidden_us": ev.Hidden * 1e6,
		})
		at := start
		if d := c.Setup - ev.Hidden; d > 0 {
			t.Span(steps, "reconfig", at, d, nil)
			at += d
		}
		if c.Serialization > 0 {
			t.Span(steps, "serialization", at, c.Serialization, nil)
			at += c.Serialization
		}
		if c.OEO > 0 {
			t.Span(steps, "oeo", at, c.OEO, nil)
			at += c.OEO
		}
		if c.RouterDelay > 0 {
			t.Span(steps, "router-delay", at, c.RouterDelay, nil)
		}
		if ev.Hidden > 0 {
			t.Span(Track{Process: o.Process, Name: "control plane"},
				"reconfig (overlap-hidden)", start-ev.Hidden, ev.Hidden,
				Args{"step": ev.Index})
		}
		txStart := start + c.Setup - ev.Hidden
		tx := c.Transmission()
		for _, tr := range ev.Step.Transfers {
			if o.MaxNodeTracks > 0 && tr.Src >= o.MaxNodeTracks {
				continue
			}
			t.Span(Track{
				Process: o.Process,
				Name:    fmt.Sprintf("node %d %s", tr.Src, tr.Dir),
			}, fmt.Sprintf("circuit λ%d", tr.Wavelength), txStart, tx, Args{
				"step": ev.Index, "wavelength": tr.Wavelength,
				"src": tr.Src, "dst": tr.Dst,
			})
		}
	}
	if m := o.Metrics; m != nil {
		m.Counter("fabric.steps").Inc()
		m.Counter("fabric.circuits.reserved").Add(int64(len(ev.Step.Transfers)))
		if ev.Hidden > 0 {
			m.Counter("fabric.overlap.boundaries_hidden").Inc()
			m.Gauge("fabric.overlap.hidden_seconds").Add(ev.Hidden)
		}
	}
}

// FaultRescheduled marks a mid-run reschedule on the control-plane
// track (an instant: detection and rebuild are modelled as free — the
// restarted steps are where the time goes) and counts it.
func (o *FabricObserver) FaultRescheduled(ev fabric.FaultEvent) {
	if t := o.Tracer; t != nil {
		t.Span(Track{Process: o.Process, Name: "control plane"},
			"fault reschedule", ev.Time, 0, Args{
				"step": ev.Step, "reschedule": ev.Reschedule,
				"reason": ev.Reason.Error(),
			})
	}
	if m := o.Metrics; m != nil {
		m.Counter("fabric.faults.reschedules").Inc()
	}
}

// GroupExecuted renders one profile group as a single span (profiles
// carry no circuits, so there are no per-node tracks to populate).
func (o *FabricObserver) GroupExecuted(ev fabric.GroupEvent) {
	if t := o.Tracer; t != nil {
		dur := float64(ev.Steps) * ev.Cost.Total
		t.Span(Track{Process: o.Process, Name: "steps"},
			fmt.Sprintf("group ×%d", ev.Steps), ev.Start, dur, Args{
				"group": ev.Index, "steps": ev.Steps, "bytes": ev.Bytes,
				"step_us": ev.Cost.Total * 1e6,
			})
	}
	if m := o.Metrics; m != nil {
		m.Counter("fabric.groups").Inc()
		m.Counter("fabric.steps").Add(int64(ev.Steps))
	}
}
