package wrht_test

import (
	"fmt"
	"testing"

	"wrht"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	sched, err := wrht.NewSchedule(wrht.Config{N: 15, Wavelengths: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumSteps() != 3 {
		t.Fatalf("steps = %d, want 3", sched.NumSteps())
	}
	inputs := make([]wrht.Vector, 15)
	for i := range inputs {
		inputs[i] = wrht.Vector{float32(i), float32(2 * i)}
	}
	out, err := wrht.AllReduce(sched, inputs, true)
	if err != nil {
		t.Fatal(err)
	}
	for node, v := range out {
		if v[0] != 7 || v[1] != 14 { // mean of 0..14 and 0..28
			t.Fatalf("node %d = %v", node, v)
		}
	}
	// Inputs untouched.
	if inputs[3][0] != 3 {
		t.Fatal("AllReduce mutated inputs")
	}
	res, err := wrht.SimulateOptical(wrht.DefaultOpticalParams(), sched, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 3 || res.Time <= 0 {
		t.Fatalf("simulation result %+v", res)
	}
}

func TestFacadeBaselinesAndProfiles(t *testing.T) {
	if wrht.RingSchedule(8).NumSteps() != 14 {
		t.Fatal("ring steps")
	}
	if wrht.BTSchedule(8).NumSteps() != 6 {
		t.Fatal("bt steps")
	}
	rd, err := wrht.RDSchedule(8)
	if err != nil || rd.NumSteps() != 6 {
		t.Fatalf("rd: %v %d", err, rd.NumSteps())
	}
	hr, err := wrht.HRingSchedule(8, 2, 4)
	if err != nil || hr.NumSteps() == 0 {
		t.Fatalf("hring: %v", err)
	}
	pr, err := wrht.WRHTProfile(wrht.Config{N: 4096, Wavelengths: 64})
	if err != nil || pr.NumSteps() != 4 {
		t.Fatalf("profile: %v %d", err, pr.NumSteps())
	}
	res, err := wrht.SimulateOpticalProfile(wrht.DefaultOpticalParams(), wrht.RingProfile(1024), 1e6)
	if err != nil || res.Steps != 2046 {
		t.Fatalf("profile sim: %v %+v", err, res)
	}
	if wrht.BTProfile(1024).NumSteps() != 20 || wrht.HRingProfile(100, 5, 64).NumSteps() == 0 {
		t.Fatal("baseline profiles")
	}
}

func TestFacadeAnalysisAndConstraints(t *testing.T) {
	st, err := wrht.Steps(wrht.Config{N: 1024, Wavelengths: 64})
	if err != nil || st.Total != 3 {
		t.Fatalf("Steps: %v %+v", err, st)
	}
	if wrht.LowerBoundSteps(1024, 64) != 4 {
		t.Fatal("lower bound")
	}
	b := wrht.DefaultBudget()
	m := wrht.MaxGroupSize(b, 1024, 129)
	if m < 2 || m > 129 {
		t.Fatalf("MaxGroupSize = %d", m)
	}
	// The constraint clamps the schedule.
	s, err := wrht.NewSchedule(wrht.Config{N: 1024, Wavelengths: 64, MaxGroupSize: m})
	if err != nil {
		t.Fatal(err)
	}
	if s.WavelengthsNeeded() > 64 {
		t.Fatal("constrained schedule exceeds budget")
	}
}

func TestFacadeTorusAndElectrical(t *testing.T) {
	tor := wrht.NewTorus(4, 4)
	s, err := wrht.NewTorusSchedule(tor, 2, 0)
	if err != nil || s.NumSteps() == 0 {
		t.Fatalf("torus: %v", err)
	}
	tm, err := wrht.SimulateElectrical(wrht.DefaultElectricalParams(), 16, wrht.RingSchedule(16), 1e6)
	if err != nil || tm <= 0 {
		t.Fatalf("electrical: %v %g", err, tm)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(wrht.Workloads()) != 4 {
		t.Fatal("workloads")
	}
	if wrht.VGG16().Params() != 138357544 {
		t.Fatal("VGG16 params")
	}
	if wrht.BEiTLarge().GradBytes() <= wrht.ResNet50().GradBytes() {
		t.Fatal("model ordering")
	}
	if wrht.AlexNet().Name != "AlexNet" {
		t.Fatal("alexnet name")
	}
}

// ExampleAllReduce demonstrates the three-line all-reduce flow.
func ExampleAllReduce() {
	sched, _ := wrht.NewSchedule(wrht.Config{N: 4, Wavelengths: 2})
	out, _ := wrht.AllReduce(sched, []wrht.Vector{{1}, {2}, {3}, {4}}, true)
	fmt.Println(out[0][0], out[3][0])
	// Output: 2.5 2.5
}

func TestFacadeExtensions(t *testing.T) {
	// Mesh variant (§6.1).
	mesh, err := wrht.NewMeshSchedule(wrht.NewMesh(3, 5), 2, 0)
	if err != nil || mesh.NumSteps() == 0 {
		t.Fatalf("mesh: %v", err)
	}
	// Segment variant (§6.2).
	seg, err := wrht.NewSegmentSchedule(32, []int{8, 9, 10, 11}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range seg.Steps {
		for _, tr := range st.Transfers {
			if tr.Src < 8 || tr.Src > 11 || tr.Dst < 8 || tr.Dst > 11 {
				t.Fatalf("segment escaped span: %v", tr)
			}
		}
	}
	// DBTree and primitives.
	if wrht.DBTreeSchedule(16).NumSteps() != 8 {
		t.Fatal("dbtree steps")
	}
	bc, err := wrht.BroadcastSchedule(16, 4, 3)
	if err != nil || bc.NumSteps() == 0 {
		t.Fatalf("broadcast: %v", err)
	}
	rd, err := wrht.ReduceSchedule(16, 4, 3)
	if err != nil || rd.NumSteps() == 0 {
		t.Fatalf("reduce: %v", err)
	}
	if wrht.ReduceScatterSchedule(8).NumSteps() != 7 || wrht.AllGatherSchedule(8).NumSteps() != 7 {
		t.Fatal("rs/ag steps")
	}
	// MRR-level verification through the facade.
	s, err := wrht.NewSchedule(wrht.Config{N: 64, Wavelengths: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := wrht.VerifyMRR(s); err != nil {
		t.Fatal(err)
	}
}

// ExampleNewSchedule shows the Fig-2 motivating configuration.
func ExampleNewSchedule() {
	sched, _ := wrht.NewSchedule(wrht.Config{N: 15, Wavelengths: 2})
	fmt.Println(sched.NumSteps())
	// Output: 3
}
