package core

import (
	"math/rand"

	"wrht/internal/rwa"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// Streaming schedule construction. A Schedule materializes every
// Transfer of every step before anything consumes it, which caps the
// reachable ring size: at N = 2^20 the WRHT schedule alone is ~130 MB
// and the baseline ring algorithms are quadratically worse. A
// StepSource instead yields one step at a time into a producer-owned
// buffer, so construction, validation (StepValidator) and execution
// (fabric.Engine.RunStream) all run in O(max step) + O(index) peak
// memory. The materialized Build* constructors are retained as thin
// Collect wrappers over their Stream* producers and stay bit-identical
// to the pre-streaming output (pinned by the golden and property
// tests).

// StepSource is a pull-based schedule producer. Next returns the next
// step or ok=false when the schedule is exhausted. The returned step
// points into a buffer owned by the producer: it is valid only until
// the following Next call, and callers that retain a step must copy it
// (Collect does). A StepSource is single-use and not safe for
// concurrent use.
type StepSource interface {
	// Algorithm names the collective ("wrht", "ring", ...), matching
	// the Algorithm field of the collected Schedule.
	Algorithm() string
	// Ring is the topology the steps are scheduled on.
	Ring() topo.Ring
	// Next yields the next step, or ok=false at end of schedule.
	Next() (st *Step, ok bool)
}

// Collect drains a StepSource into a materialized Schedule, copying
// every yielded step. Build* constructors are defined as Collect over
// their Stream* producers.
func Collect(src StepSource) *Schedule {
	s := &Schedule{Algorithm: src.Algorithm(), Ring: src.Ring()}
	for {
		st, ok := src.Next()
		if !ok {
			return s
		}
		out := Step{Phase: st.Phase}
		if len(st.Transfers) > 0 {
			out.Transfers = append([]Transfer(nil), st.Transfers...)
		}
		s.Steps = append(s.Steps, out)
	}
}

// Source adapts a materialized schedule to the StepSource interface
// (zero-copy: the yielded steps alias s.Steps). It lets every streaming
// consumer — ValidateSource, fabric.Engine.RunStream — serve
// materialized schedules through the same code path.
func (s *Schedule) Source() StepSource {
	return &schedSource{s: s}
}

type schedSource struct {
	s *Schedule
	k int
}

func (ss *schedSource) Algorithm() string { return ss.s.Algorithm }
func (ss *schedSource) Ring() topo.Ring   { return ss.s.Ring }

func (ss *schedSource) Next() (*Step, bool) {
	if ss.k >= len(ss.s.Steps) {
		return nil, false
	}
	st := &ss.s.Steps[ss.k]
	ss.k++
	return st, true
}

// NewIndexedSource builds a StepSource over a closed-form step count:
// emit is called with the step index and a cleared buffer (Transfers
// truncated to length zero, capacity retained across steps) and must
// set the phase and append the step's transfers. The collective
// baselines (ring, bt, rd, hring, wdm-hring) stream through this.
func NewIndexedSource(alg string, ring topo.Ring, steps int, emit func(k int, st *Step)) StepSource {
	return &indexedSource{alg: alg, ring: ring, steps: steps, emit: emit}
}

type indexedSource struct {
	alg   string
	ring  topo.Ring
	steps int
	emit  func(k int, st *Step)
	k     int
	buf   Step
}

func (s *indexedSource) Algorithm() string { return s.alg }
func (s *indexedSource) Ring() topo.Ring   { return s.ring }

func (s *indexedSource) Next() (*Step, bool) {
	if s.k >= s.steps {
		return nil, false
	}
	s.buf.Transfers = s.buf.Transfers[:0]
	s.emit(s.k, &s.buf)
	s.k++
	return &s.buf, true
}

// CircuitClass is one interned (chunk, op, direction, wavelength)
// combination shared by many transfers of a compact step. WRHT-family
// steps repeat a handful of classes across thousands of endpoint pairs
// (every group's distance-k member uses wavelength k−1 on the same
// fiber with the same payload), so storing the class once and 12 bytes
// per endpoint replaces ~64 bytes per materialized Transfer.
type CircuitClass struct {
	Chunk      tensor.Chunk
	Op         tensor.ReduceOp
	Dir        topo.Direction
	Wavelength int
}

// Endpoint is one transfer of a compact step: the node pair plus the
// index of its circuit class. Node ids are int32, capping compact
// templates at 2^31 nodes (far above any reachable configuration).
type Endpoint struct {
	Src, Dst int32
	Class    uint32
}

// CompactStep is the interned form of a Step: deduplicated circuit
// classes plus one Endpoint per transfer, in transfer order. Stream
// producers that must retain step templates (the torus row/column
// templates, the WDM-HRing group template) hold CompactSteps and expand
// them per emission, so retained state stays small.
type CompactStep struct {
	Phase     Phase
	Classes   []CircuitClass
	Endpoints []Endpoint
}

// NumTransfers returns the expanded transfer count.
func (c CompactStep) NumTransfers() int { return len(c.Endpoints) }

// chunkEqual reports value equality of two chunk chains (Chunk carries
// a *Chunk Sub pointer, so == would compare pointers, not payloads).
func chunkEqual(a, b tensor.Chunk) bool {
	for {
		if a.Index != b.Index || a.Of != b.Of {
			return false
		}
		if a.Sub == nil || b.Sub == nil {
			return a.Sub == b.Sub
		}
		a, b = *a.Sub, *b.Sub
	}
}

// CompactOf interns a step. Class lookup is a linear scan: compact
// steps are built once per template and real steps carry few distinct
// classes (≤ ⌊m/2⌋ wavelengths × 2 directions for gather steps).
func CompactOf(st Step) CompactStep {
	c := CompactStep{Phase: st.Phase}
	for _, t := range st.Transfers {
		cls := -1
		for i := range c.Classes {
			k := &c.Classes[i]
			if k.Op == t.Op && k.Dir == t.Dir && k.Wavelength == t.Wavelength && chunkEqual(k.Chunk, t.Chunk) {
				cls = i
				break
			}
		}
		if cls < 0 {
			cls = len(c.Classes)
			c.Classes = append(c.Classes, CircuitClass{
				Chunk: t.Chunk, Op: t.Op, Dir: t.Dir, Wavelength: t.Wavelength,
			})
		}
		c.Endpoints = append(c.Endpoints, Endpoint{
			Src: int32(t.Src), Dst: int32(t.Dst), Class: uint32(cls),
		})
	}
	return c
}

// AppendTo appends the expanded transfers to buf, rewriting node ids
// through mapID (nil = identity). Transfer order matches the step
// CompactOf interned.
func (c CompactStep) AppendTo(buf *Step, mapID func(int) int) {
	for _, e := range c.Endpoints {
		k := c.Classes[e.Class]
		src, dst := int(e.Src), int(e.Dst)
		if mapID != nil {
			src, dst = mapID(src), mapID(dst)
		}
		buf.Transfers = append(buf.Transfers, Transfer{
			Src: src, Dst: dst,
			Chunk: k.Chunk, Op: k.Op,
			Dir: k.Dir, Wavelength: k.Wavelength,
		})
	}
}

// ExpandInto resets buf to the compact step's phase and expands into
// it, reusing buf's transfer capacity.
func (c CompactStep) ExpandInto(buf *Step, mapID func(int) int) {
	buf.Phase = c.Phase
	buf.Transfers = buf.Transfers[:0]
	c.AppendTo(buf, mapID)
}

// wrhtStream is the streaming producer behind BuildWRHT: the same
// grouped-gather recursion, emitting one step per Next call into a
// reused buffer. Retained state is the participant/level structure
// (O(N·m/(m−1)) ints — the broadcast stage must replay the gather
// levels in reverse), never the transfers themselves.
type wrhtStream struct {
	cfg          Config
	m            int
	ring         topo.Ring
	rng          *rand.Rand
	participants []int
	levels       [][]group
	phase        int // 0 = reduce, 1 = broadcast, 2 = done
	bcast        int
	buf          Step
	// planSteps/planIdx drive the Config.PlanAllToAll replacement of the
	// gather fallback: the phase plan's steps, emitted one per Next.
	planSteps []Step
	planIdx   int
}

// StreamWRHT returns a streaming producer of the WRHT schedule (§4.1),
// step-for-step and bit-for-bit identical to BuildWRHT's output
// (BuildWRHT is Collect over this source).
func StreamWRHT(cfg Config) (StepSource, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ws := &wrhtStream{cfg: cfg, m: cfg.EffectiveGroupSize(), ring: topo.NewRing(cfg.N)}
	if cfg.Strategy == rwa.RandomFit {
		ws.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	if cfg.N == 1 {
		ws.phase = 2
		return ws, nil
	}
	ws.participants = make([]int, cfg.N)
	for i := range ws.participants {
		ws.participants[i] = i
	}
	return ws, nil
}

func (ws *wrhtStream) Algorithm() string { return "wrht" }
func (ws *wrhtStream) Ring() topo.Ring   { return ws.ring }

func (ws *wrhtStream) Next() (*Step, bool) {
	switch ws.phase {
	case 0:
		if len(ws.participants) > 1 {
			r := len(ws.participants)
			if r <= ws.m && !ws.cfg.DisableAllToAll && AllToAllRequirement(r) <= ws.cfg.Wavelengths {
				// Final exchange among the surviving representatives; the
				// topmost gather level then needs no broadcast counterpart.
				if ws.cfg.Strategy == rwa.RandomFit {
					ws.buf = allToAllStep(ws.ring, ws.participants, ws.cfg.Strategy, ws.rng)
				} else {
					ws.buf = buildAllToAllStep(ws.ring, ws.participants)
				}
				ws.phase, ws.bcast = 1, len(ws.levels)-1
				return &ws.buf, true
			}
			if r <= ws.m && !ws.cfg.DisableAllToAll && ws.cfg.PlanAllToAll {
				// One-shot all-to-all over budget: carry the exchange
				// over the default multi-round reconfiguration plan
				// instead of gathering to a single root.
				if ws.planSteps == nil {
					plan, ok := DefaultPhasePlan(r, ws.cfg.Wavelengths)
					if ok {
						steps, err := BuildPhaseSteps(ws.ring, ws.participants, plan)
						if err == nil {
							ws.planSteps = steps
						}
					}
				}
				if ws.planIdx < len(ws.planSteps) {
					st := &ws.planSteps[ws.planIdx]
					ws.planIdx++
					if ws.planIdx == len(ws.planSteps) {
						ws.phase, ws.bcast = 1, len(ws.levels)-1
					}
					return st, true
				}
			}
			groups := partition(ws.participants, ws.m)
			gatherStepInto(&ws.buf, groups, tensor.OpSum)
			ws.levels = append(ws.levels, groups)
			next := make([]int, len(groups))
			for i, g := range groups {
				next[i] = g.rep()
			}
			ws.participants = next
			return &ws.buf, true
		}
		ws.phase, ws.bcast = 1, len(ws.levels)-1
		fallthrough
	case 1:
		if ws.bcast >= 0 {
			gatherStepInto(&ws.buf, ws.levels[ws.bcast], tensor.OpCopy)
			ws.bcast--
			return &ws.buf, true
		}
		ws.phase = 2
	}
	return nil, false
}
