package train

import (
	"fmt"
	"math"
	"math/rand"

	"wrht/internal/tensor"
)

// Conv2D is a 2-D convolution implemented as a matrix multiplication
// over an im2col-unrolled input, as the paper's §3.1 notes ([32]): each
// output position's receptive field is flattened into a column, turning
// the convolution into GEMM so the Eq 1–3 matrix formulation covers
// convolutional layers too. Input and output are flattened row-major
// [channels × height × width] vectors.
type Conv2D struct {
	InC, InH, InW int
	OutC, K       int
	Stride, Pad   int
	OutH, OutW    int

	w tensor.Vector // OutC×(InC·K·K) weights followed by OutC biases
	g tensor.Vector

	lastCols [][]float32 // per-sample im2col matrices, col-major patches
}

// NewConv2D builds a convolution layer with He-uniform initial weights.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	if stride < 1 || k < 1 {
		panic(fmt.Sprintf("train: conv kernel %d stride %d invalid", k, stride))
	}
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, K: k, Stride: stride, Pad: pad,
		OutH: (inH+2*pad-k)/stride + 1,
		OutW: (inW+2*pad-k)/stride + 1,
	}
	if c.OutH < 1 || c.OutW < 1 {
		panic(fmt.Sprintf("train: conv output %dx%d empty", c.OutH, c.OutW))
	}
	fan := inC * k * k
	c.w = tensor.New(outC*fan + outC)
	c.g = tensor.New(outC*fan + outC)
	limit := float32(math.Sqrt(6 / float64(fan)))
	for i := 0; i < outC*fan; i++ {
		c.w[i] = (rng.Float32()*2 - 1) * limit
	}
	return c
}

// patchDim returns the im2col row width InC·K·K.
func (c *Conv2D) patchDim() int { return c.InC * c.K * c.K }

// im2col unrolls one sample into an [OutH·OutW × patchDim] matrix
// stored row-major as a flat slice.
func (c *Conv2D) im2col(x []float32) []float32 {
	pd := c.patchDim()
	cols := make([]float32, c.OutH*c.OutW*pd)
	idx := 0
	for oy := 0; oy < c.OutH; oy++ {
		for ox := 0; ox < c.OutW; ox++ {
			for ch := 0; ch < c.InC; ch++ {
				for ky := 0; ky < c.K; ky++ {
					iy := oy*c.Stride + ky - c.Pad
					for kx := 0; kx < c.K; kx++ {
						ix := ox*c.Stride + kx - c.Pad
						if iy >= 0 && iy < c.InH && ix >= 0 && ix < c.InW {
							cols[idx] = x[(ch*c.InH+iy)*c.InW+ix]
						}
						idx++
					}
				}
			}
		}
	}
	return cols
}

// Forward implements Layer: out[o][p] = Σ w[o]·col[p] + b[o].
func (c *Conv2D) Forward(in [][]float32) [][]float32 {
	pd := c.patchDim()
	np := c.OutH * c.OutW
	c.lastCols = make([][]float32, len(in))
	out := make([][]float32, len(in))
	for b, x := range in {
		if len(x) != c.InC*c.InH*c.InW {
			panic(fmt.Sprintf("train: conv input %d, want %d", len(x), c.InC*c.InH*c.InW))
		}
		cols := c.im2col(x)
		c.lastCols[b] = cols
		y := make([]float32, c.OutC*np)
		for o := 0; o < c.OutC; o++ {
			wr := c.w[o*pd : (o+1)*pd]
			bias := c.w[c.OutC*pd+o]
			for p := 0; p < np; p++ {
				col := cols[p*pd : (p+1)*pd]
				acc := bias
				for i, wv := range wr {
					acc += wv * col[i]
				}
				y[o*np+p] = acc
			}
		}
		out[b] = y
	}
	return out
}

// Backward implements Layer via the transposed GEMMs: dW[o] += Σ_p
// dY[o][p]·col[p]; dcol[p] += Σ_o dY[o][p]·w[o]; then col2im folds the
// patch gradients back onto the input image.
func (c *Conv2D) Backward(gradOut [][]float32) [][]float32 {
	pd := c.patchDim()
	np := c.OutH * c.OutW
	gradIn := make([][]float32, len(gradOut))
	for b, gy := range gradOut {
		cols := c.lastCols[b]
		dcols := make([]float32, len(cols))
		for o := 0; o < c.OutC; o++ {
			wr := c.w[o*pd : (o+1)*pd]
			gw := c.g[o*pd : (o+1)*pd]
			var gb float32
			for p := 0; p < np; p++ {
				g := gy[o*np+p]
				if g == 0 {
					continue
				}
				gb += g
				col := cols[p*pd : (p+1)*pd]
				dcol := dcols[p*pd : (p+1)*pd]
				for i := range wr {
					gw[i] += g * col[i]
					dcol[i] += g * wr[i]
				}
			}
			c.g[c.OutC*pd+o] += gb
		}
		gradIn[b] = c.col2im(dcols)
	}
	return gradIn
}

// col2im scatters patch gradients back to image positions (the adjoint
// of im2col).
func (c *Conv2D) col2im(dcols []float32) []float32 {
	dx := make([]float32, c.InC*c.InH*c.InW)
	idx := 0
	for oy := 0; oy < c.OutH; oy++ {
		for ox := 0; ox < c.OutW; ox++ {
			for ch := 0; ch < c.InC; ch++ {
				for ky := 0; ky < c.K; ky++ {
					iy := oy*c.Stride + ky - c.Pad
					for kx := 0; kx < c.K; kx++ {
						ix := ox*c.Stride + kx - c.Pad
						if iy >= 0 && iy < c.InH && ix >= 0 && ix < c.InW {
							dx[(ch*c.InH+iy)*c.InW+ix] += dcols[idx]
						}
						idx++
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() (tensor.Vector, tensor.Vector) { return c.w, c.g }

// ZeroGrad implements Layer.
func (c *Conv2D) ZeroGrad() {
	for i := range c.g {
		c.g[i] = 0
	}
}

// OutDim implements Layer.
func (c *Conv2D) OutDim() int { return c.OutC * c.OutH * c.OutW }
