package fault

import (
	"reflect"
	"testing"

	"wrht/internal/phys"
	"wrht/internal/rwa"
	"wrht/internal/topo"
)

func TestMaskQueries(t *testing.T) {
	m := NewMask(8)
	if !m.Empty() {
		t.Fatal("fresh mask not empty")
	}
	m.FailNode(3)
	m.FailTransceiver(5, topo.CCW)
	m.KillWavelength(1)
	m.CutSegment(topo.CW, 6)
	m.DegradeMRR(2, 0.5)
	if m.Empty() {
		t.Fatal("populated mask reports empty")
	}
	if m.NodeOK(3) || !m.NodeOK(4) {
		t.Error("NodeOK wrong")
	}
	if m.TransceiverOK(5, topo.CCW) || !m.TransceiverOK(5, topo.CW) {
		t.Error("TransceiverOK wrong")
	}
	if m.TransceiverOK(3, topo.CW) {
		t.Error("failed node should have no working transceivers")
	}
	if m.WavelengthOK(1) || !m.WavelengthOK(0) {
		t.Error("WavelengthOK wrong")
	}
	if got := m.AliveNodes(); !reflect.DeepEqual(got, []int{0, 1, 2, 4, 5, 6, 7}) {
		t.Errorf("AliveNodes = %v", got)
	}
	if got := m.AliveWavelengths(4); !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Errorf("AliveWavelengths = %v", got)
	}
	r := topo.NewRing(8)
	// 5->7 CW crosses cut segment 6.
	if m.ArcClear(topo.CW, r.ArcOf(5, 7, topo.CW)) {
		t.Error("arc over cut segment reported clear")
	}
	if !m.ArcClear(topo.CCW, r.ArcOf(7, 5, topo.CCW)) {
		t.Error("opposite-direction fiber should be unaffected by a CW cut")
	}
}

func TestTransferErr(t *testing.T) {
	r := topo.NewRing(16)
	m := NewMask(16)
	m.FailNode(4)
	m.FailTransceiver(8, topo.CW)
	m.KillWavelength(2)
	m.CutSegment(topo.CCW, 10)
	cases := []struct {
		src, dst int
		dir      topo.Direction
		w        int
		ok       bool
	}{
		{0, 1, topo.CW, 0, true},
		{4, 5, topo.CW, 0, false},    // failed source
		{3, 4, topo.CW, 0, false},    // failed destination
		{8, 9, topo.CW, 0, false},    // failed CW transmitter
		{7, 8, topo.CW, 0, false},    // failed CW receiver
		{8, 7, topo.CCW, 0, true},    // CCW array still works
		{0, 1, topo.CW, 2, false},    // dead wavelength
		{12, 9, topo.CCW, 0, false},  // crosses CCW cut at segment 10
		{3, 4 + 2, topo.CW, 1, true}, // passes THROUGH failed node 4: fine
		{9, 12, topo.CW, 0, true},    // CW fiber unaffected by the CCW cut
	}
	for _, c := range cases {
		err := m.TransferErr(r, c.src, c.dst, c.dir, c.w)
		if (err == nil) != c.ok {
			t.Errorf("TransferErr(%d->%d %v λ%d) = %v, want ok=%v", c.src, c.dst, c.dir, c.w, err, c.ok)
		}
	}
	if err := (*Mask)(nil).TransferErr(r, 0, 1, topo.CW, 0); err != nil {
		t.Errorf("nil mask TransferErr = %v", err)
	}
}

func TestSeedRoutesAroundFaults(t *testing.T) {
	r := topo.NewRing(8)
	m := NewMask(8)
	m.KillWavelength(0)
	m.CutSegment(topo.CW, 2)
	ix := rwa.NewIndex(r)
	m.Seed(ix, 4)
	// First fit on an arc avoiding the cut skips the dead wavelength.
	if w := ix.FirstFree(topo.CW, r.ArcOf(4, 6, topo.CW)); w != 1 {
		t.Errorf("FirstFree off the cut = %d, want 1 (λ0 dead)", w)
	}
	// An arc over the cut is saturated on every budget wavelength.
	if w := ix.FirstFree(topo.CW, r.ArcOf(1, 4, topo.CW)); w < 4 {
		t.Errorf("FirstFree over the cut = %d, want >= 4 (all cut)", w)
	}
	// The seeds survive Reset.
	ix.Reset()
	if w := ix.FirstFree(topo.CW, r.ArcOf(4, 6, topo.CW)); w != 1 {
		t.Errorf("after Reset, FirstFree = %d, want 1", w)
	}
	// And Validate reports a masked hit as MaskedConflict.
	reqs := []rwa.Request{{Src: 4, Dst: 6, Dir: topo.CW}}
	asn := rwa.Assignment{0}
	err := ix.Validate(reqs, rwa.ArcsOf(r, reqs), asn, 4)
	mc, ok := err.(rwa.MaskedConflict)
	if !ok || mc.I != 0 || mc.Wavelength != 0 {
		t.Errorf("Validate on dead wavelength = %v, want MaskedConflict{0, 0}", err)
	}
	// The pairwise oracle cannot see the mask: it passes.
	if err := rwa.OracleValidate(r, reqs, asn, 4); err != nil {
		t.Errorf("oracle should not see masked cells: %v", err)
	}
}

func TestSpecSampleDeterministic(t *testing.T) {
	sp := Spec{Seed: 7, Nodes: 2, Transceivers: 3, Wavelengths: 2, Segments: 2, MRRs: 1, WavelengthBudget: 8}
	a, b := sp.Sample(32), sp.Sample(32)
	if a.String() != b.String() {
		t.Fatalf("same spec sampled different masks:\n%s\n%s", a, b)
	}
	an, at, aw, ac, am := a.Counts()
	if an != 2 || at != 3 || aw != 2 || ac != 2 || am != 1 {
		t.Errorf("Counts = %d %d %d %d %d, want 2 3 2 2 1", an, at, aw, ac, am)
	}
	other := Spec{Seed: 8, Nodes: 2, Transceivers: 3, Wavelengths: 2, Segments: 2, MRRs: 1, WavelengthBudget: 8}
	if other.Sample(32).String() == a.String() {
		t.Error("different seeds produced the same mask (suspicious)")
	}
	// Clamping: more faults than population.
	cl := Spec{Seed: 1, Nodes: 99, WavelengthBudget: 1}.Sample(4)
	if n, _, _, _, _ := cl.Counts(); n != 4 {
		t.Errorf("clamped node faults = %d, want 4", n)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := Spec{Seed: 3, Nodes: 1, Wavelengths: 1, Segments: 1, MRRs: 1, WavelengthBudget: 8}.Sample(16)
	c := m.Clone()
	if c.String() != m.String() {
		t.Fatalf("clone differs: %s vs %s", c, m)
	}
	c.FailNode(0)
	c.FailNode(1)
	if c.String() == m.String() {
		t.Error("mutating the clone changed the original")
	}
}

func TestApplyEvents(t *testing.T) {
	m := NewMask(8)
	for _, f := range []Fault{
		{Kind: NodeDown, Node: 1},
		{Kind: TransceiverDown, Node: 2, Dir: topo.CCW},
		{Kind: WavelengthDead, Wavelength: 3},
		{Kind: SegmentCut, Dir: topo.CW, Segment: 4},
		{Kind: MRRDegraded, Node: 5, ExtraLossDB: 1.25},
	} {
		m.Apply(f)
	}
	if m.NodeOK(1) || m.TransceiverOK(2, topo.CCW) || m.WavelengthOK(3) {
		t.Error("applied events not reflected in mask")
	}
	if m.ArcClear(topo.CW, topo.Arc{Lo: 4, Len: 1, N: 8}) {
		t.Error("cut not applied")
	}
	n, tr, w, c, mr := m.Counts()
	if n != 1 || tr != 1 || w != 1 || c != 1 || mr != 1 {
		t.Errorf("Counts = %d %d %d %d %d", n, tr, w, c, mr)
	}
}

func TestInjectorOrdering(t *testing.T) {
	in := NewInjector(
		Event{Step: 5, Fault: Fault{Kind: WavelengthDead, Wavelength: 1}},
		Event{Step: 1, Fault: Fault{Kind: NodeDown, Node: 2}},
		Event{Step: 1, Fault: Fault{Kind: WavelengthDead, Wavelength: 0}},
	)
	if in.Len() != 3 {
		t.Fatalf("Len = %d", in.Len())
	}
	if in.At(0).Step != 1 || in.At(1).Step != 1 || in.At(2).Step != 5 {
		t.Errorf("events not step-sorted: %+v", in)
	}
	// Stable: the two step-1 events keep insertion order.
	if in.At(0).Fault.Kind != NodeDown || in.At(1).Fault.Kind != WavelengthDead {
		t.Errorf("sort not stable: %+v, %+v", in.At(0), in.At(1))
	}
	if (*Injector)(nil).Len() != 0 {
		t.Error("nil injector should have zero events")
	}
}

func TestTightenBudget(t *testing.T) {
	b := phys.DefaultBudget()
	n := 1024
	cap := 2*64 + 1
	healthy := NewMask(n).MaxGroupSize(b, n, cap)
	if healthy != b.MaxGroupSize(n, cap) {
		t.Fatalf("empty mask changed MaxGroupSize: %d vs %d", healthy, b.MaxGroupSize(n, cap))
	}
	m := NewMask(n)
	for i := 0; i < 8; i++ {
		m.DegradeMRR(i, 1.0)
	}
	tb := m.TightenBudget(b)
	if tb.ModulatorLossDB != b.ModulatorLossDB+8 {
		t.Errorf("TightenBudget loss = %g, want %g", tb.ModulatorLossDB, b.ModulatorLossDB+8)
	}
	degraded := m.MaxGroupSize(b, n, cap)
	if degraded > healthy {
		t.Errorf("degraded MaxGroupSize %d > healthy %d", degraded, healthy)
	}
	if degraded == healthy {
		t.Errorf("8 dB of extra loss should tighten the clamp (healthy %d)", healthy)
	}
}
