package exp

import (
	"testing"

	"wrht/internal/core"
)

// TestStreamedBuildMemCeiling is the acceptance gate for the streaming
// pipeline: a million-node WRHT schedule must build AND validate
// through the streamed path under an asserted live-heap ceiling per
// node. The ceiling covers the producer's single-step buffer, the
// delta occupancy index and the validator scratch — all O(max step) +
// O(index) — with headroom for allocator slack; the materialized
// schedule alone would not fit under it.
func TestStreamedBuildMemCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale memory ceiling skipped in -short mode")
	}
	const wavelengths = 64
	cfg := core.Config{N: memCeilingNodes, Wavelengths: wavelengths}
	rep, err := StreamedBuildMem(func() (core.StepSource, error) {
		return core.StreamWRHT(cfg)
	}, wavelengths, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	want, err := core.StepsWRHT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != want.Total {
		t.Errorf("streamed %d steps, analysis says %d", rep.Steps, want.Total)
	}
	const ceilingBytesPerNode = 1000
	if bpn := rep.BytesPerNode(); bpn > ceilingBytesPerNode {
		t.Errorf("streamed build+validate peaked at %.1f B/node, ceiling %d", bpn, ceilingBytesPerNode)
	}
}

// TestStreamedFootprintBeatsMaterialized pins the point of the whole
// refactor: at the ceiling-test scale the streamed pipeline's peak
// live heap is strictly below the materialized build-then-validate
// path's, which must hold the entire schedule resident.
func TestStreamedFootprintBeatsMaterialized(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale memory comparison skipped in -short mode")
	}
	const wavelengths = 64
	cfg := core.Config{N: memCeilingNodes, Wavelengths: wavelengths}
	streamed, err := StreamedBuildMem(func() (core.StepSource, error) {
		return core.StreamWRHT(cfg)
	}, wavelengths, true)
	if err != nil {
		t.Fatal(err)
	}
	materialized, err := MaterializedBuildMem(func() (*core.Schedule, error) {
		return core.BuildWRHT(cfg)
	}, wavelengths, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(streamed.String())
	t.Log(materialized.String())
	if streamed.AttributableBytes() >= materialized.AttributableBytes() {
		t.Errorf("streamed peak %d B not below materialized %d B",
			streamed.AttributableBytes(), materialized.AttributableBytes())
	}
}
