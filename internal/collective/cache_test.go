package collective

import (
	"reflect"
	"sync"
	"testing"

	"wrht/internal/core"
)

func TestProfileCacheMatchesDirectConstruction(t *testing.T) {
	c := NewProfileCache()
	cfg := core.Config{N: 1024, Wavelengths: 64}
	got, err := c.WRHT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := WRHTProfile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cached WRHT profile differs from direct construction")
	}
	if !reflect.DeepEqual(c.Ring(1024), RingProfile(1024)) {
		t.Errorf("cached Ring profile differs")
	}
	if !reflect.DeepEqual(c.HRing(1024, 5, 64), HRingProfile(1024, 5, 64)) {
		t.Errorf("cached H-Ring profile differs")
	}
	if !reflect.DeepEqual(c.BT(1024), BTProfile(1024)) {
		t.Errorf("cached BT profile differs")
	}
}

// TestProfileCacheConcurrentSingleBuild hammers one logical key from
// many goroutines — half asking with the explicit Lemma-1 group size,
// half with the GroupSize-0 default that canonicalizes to it — and
// requires exactly one construction.
func TestProfileCacheConcurrentSingleBuild(t *testing.T) {
	c := NewProfileCache()
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := core.Config{N: 1024, Wavelengths: 64}
			if g%2 == 0 {
				cfg.GroupSize = 129 // = 2w+1, the canonical form of GroupSize 0
			}
			if _, err := c.WRHT(cfg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := c.Builds(); got != 1 {
		t.Errorf("concurrent identical requests built %d profiles, want 1", got)
	}
}

func TestProfileCacheMemoizesErrors(t *testing.T) {
	c := NewProfileCache()
	bad := core.Config{N: 0, Wavelengths: 64}
	_, err1 := c.WRHT(bad)
	_, err2 := c.WRHT(bad)
	if err1 == nil || err2 == nil {
		t.Fatal("invalid config should error")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("memoized error changed: %v vs %v", err1, err2)
	}
	if got := c.Builds(); got != 1 {
		t.Errorf("failed build attempted %d times, want 1", got)
	}
}

func TestProfileCacheDistinctKeysDoNotCollide(t *testing.T) {
	c := NewProfileCache()
	// Ring(64) and BT(64) share cfg{N:64} but differ in kind.
	ring := c.Ring(64)
	bt := c.BT(64)
	if ring.Algorithm == bt.Algorithm {
		t.Errorf("Ring and BT collided in the cache: both %q", ring.Algorithm)
	}
	if got := c.Builds(); got != 2 {
		t.Errorf("builds = %d, want 2", got)
	}
}
