package core

import (
	"testing"

	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// runPhaseSteps executes plan steps under snapshot semantics — every
// transfer of a step reads its source's pre-step state — over one
// L-element vector per node, mutating vals in place.
func runPhaseSteps(t *testing.T, steps []Step, vals [][]float64) {
	t.Helper()
	if len(vals) == 0 {
		return
	}
	l := len(vals[0])
	snap := make([][]float64, len(vals))
	for i := range snap {
		snap[i] = make([]float64, l)
	}
	for si := range steps {
		for i := range vals {
			copy(snap[i], vals[i])
		}
		for _, tr := range steps[si].Transfers {
			lo, hi := tr.Chunk.Range(l)
			for k := lo; k < hi; k++ {
				switch tr.Op {
				case tensor.OpSum:
					vals[tr.Dst][k] += snap[tr.Src][k]
				case tensor.OpCopy:
					vals[tr.Dst][k] = snap[tr.Src][k]
				default:
					t.Fatalf("step %d: unknown op %v", si, tr.Op)
				}
			}
		}
	}
}

// checkPhaseAllReduce builds the plan's steps for the representatives,
// validates every round against the budget, and checks that executing
// them leaves every representative with the elementwise sum of all
// representatives' initial vectors (and every other node untouched).
func checkPhaseAllReduce(t *testing.T, ring topo.Ring, reps []int, p PhasePlan, w int) {
	t.Helper()
	steps, err := BuildPhaseSteps(ring, reps, p)
	if err != nil {
		t.Fatalf("build %s: %v", p, err)
	}
	if got, want := len(steps), p.NumSteps(); got != want {
		t.Fatalf("%s emitted %d steps, NumSteps says %d", p, got, want)
	}
	s := &Schedule{Algorithm: "a2a-plan", Ring: ring, Steps: steps}
	if err := s.Validate(w); err != nil {
		t.Fatalf("%s: invalid under budget %d: %v", p, w, err)
	}
	for _, st := range steps {
		if st.Phase != PhaseAllToAll {
			t.Fatalf("%s: step phase %v, every plan round must carry PhaseAllToAll", p, st.Phase)
		}
	}
	const l = 5 // odd length so uneven stripe splits are exercised
	vals := make([][]float64, ring.N)
	want := make([]float64, l)
	inReps := make([]bool, ring.N)
	for i := range vals {
		vals[i] = make([]float64, l)
		for k := range vals[i] {
			vals[i][k] = float64((i+1)*(k+2)) + 1000
		}
	}
	for _, rep := range reps {
		inReps[rep] = true
		for k := 0; k < l; k++ {
			want[k] += vals[rep][k]
		}
	}
	runPhaseSteps(t, steps, vals)
	for i := range vals {
		for k := 0; k < l; k++ {
			if inReps[i] {
				if vals[i][k] != want[k] {
					t.Fatalf("%s: rep %d elem %d = %g, want global sum %g", p, i, k, vals[i][k], want[k])
				}
			} else if vals[i][k] != float64((i+1)*(k+2))+1000 {
				t.Fatalf("%s: non-participant %d elem %d mutated to %g", p, i, k, vals[i][k])
			}
		}
	}
}

// TestPhasePlansAllReduce checks every enumerated plan at a grid of
// (r, w) points: each is budget-feasible, wavelength-conflict-free, and
// semantically an all-reduce among the representatives — both with the
// representatives filling their own ring and scattered across a larger
// one.
func TestPhasePlansAllReduce(t *testing.T) {
	cases := []struct{ r, w int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 4}, {8, 64},
		{16, 8}, {16, 32}, {17, 8}, {32, 8}, {32, 16},
	}
	for _, tc := range cases {
		plans := PhasePlans(tc.r, tc.w)
		if len(plans) == 0 {
			t.Fatalf("r=%d w=%d: no feasible plans", tc.r, tc.w)
		}
		ring := topo.NewRing(tc.r)
		reps := make([]int, tc.r)
		for i := range reps {
			reps[i] = i
		}
		// Scattered representatives on a larger ring, unevenly spaced.
		big := topo.NewRing(3*tc.r + 7)
		scattered := make([]int, tc.r)
		for i := range scattered {
			scattered[i] = 3*i + i%2
		}
		for _, p := range plans {
			checkPhaseAllReduce(t, ring, reps, p, tc.w)
			checkPhaseAllReduce(t, big, scattered, p, tc.w)
		}
	}
}

// TestPhasePlansUncapped checks the w ≤ 0 enumeration used by fabrics
// without circuit semantics: every plan has stripe 1 everywhere and
// still all-reduces (validated uncapped).
func TestPhasePlansUncapped(t *testing.T) {
	for _, r := range []int{2, 5, 16} {
		ring := topo.NewRing(r)
		reps := make([]int, r)
		for i := range reps {
			reps[i] = i
		}
		plans := PhasePlans(r, 0)
		if len(plans) == 0 {
			t.Fatalf("r=%d uncapped: no plans", r)
		}
		for _, p := range plans {
			if p.StaggerStride != 0 {
				t.Fatalf("r=%d uncapped: staggered plan %s enumerated", r, p)
			}
			for _, lv := range p.Levels {
				if lv.Stripe != 1 || lv.BcastStripe != 1 {
					t.Fatalf("r=%d uncapped: striped plan %s", r, p)
				}
			}
			if p.TopA2A && p.TopStripe != 1 {
				t.Fatalf("r=%d uncapped: striped top in %s", r, p)
			}
			checkPhaseAllReduce(t, ring, reps, p, 0)
		}
	}
}

// TestOneShotStripeOneMatchesLegacy pins that the planner's unstriped
// one-shot plan reproduces buildAllToAllStep bit for bit, so swapping
// the legacy exchange for a planned one cannot perturb feasible-regime
// schedules.
func TestOneShotStripeOneMatchesLegacy(t *testing.T) {
	ring := topo.NewRing(40)
	reps := []int{1, 4, 9, 17, 22, 30, 38}
	steps, err := BuildPhaseSteps(ring, reps, PhasePlan{Family: "one-shot", TopA2A: true, TopStripe: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 {
		t.Fatalf("one-shot emitted %d steps", len(steps))
	}
	legacy := buildAllToAllStep(ring, reps)
	if len(steps[0].Transfers) != len(legacy.Transfers) {
		t.Fatalf("transfer count %d != legacy %d", len(steps[0].Transfers), len(legacy.Transfers))
	}
	for i, tr := range steps[0].Transfers {
		if tr != legacy.Transfers[i] {
			t.Fatalf("transfer %d = %+v, legacy %+v", i, tr, legacy.Transfers[i])
		}
	}
}

// TestDefaultPhasePlanBeatsFallback checks the heuristic's economics in
// the fallback regime: the chosen plan's serialized payload must be
// strictly below the fallback's 2d (unstriped gather + broadcast)
// whenever the budget allows any striping at all.
func TestDefaultPhasePlanBeatsFallback(t *testing.T) {
	for _, tc := range []struct{ r, w int }{{16, 8}, {32, 16}, {64, 32}, {9, 4}} {
		p, ok := DefaultPhasePlan(tc.r, tc.w)
		if !ok {
			t.Fatalf("r=%d w=%d: no default plan", tc.r, tc.w)
		}
		if p.SerWeight() >= 2 {
			t.Errorf("r=%d w=%d: default plan %s serializes %.3gd, not below the fallback's 2d",
				tc.r, tc.w, p, p.SerWeight())
		}
	}
	// r=16, w=8 is the worked DESIGN.md example: two ×8-striped gather
	// levels of triples, a tiny top exchange, and the striped broadcast
	// mirrors — 5 steps carrying 0.625d of serialized payload, versus
	// the fallback's 2 steps at 2d.
	p, ok := DefaultPhasePlan(16, 8)
	if !ok || p.NumSteps() != 5 || p.SerWeight() != 0.625 {
		t.Fatalf("r=16 w=8 default plan = %s, ok=%v; want the 5-step ser-0.625d k-round(g=3)", p, ok)
	}
}

// TestPlanAllToAllProperty is the regime property over r up to 512:
// with GroupSize pinned to r, StepsWRHT takes the one-shot all-to-all
// iff its requirement fits the budget, and with PlanAllToAll a
// multi-round plan is reported exactly where the gather fallback used
// to fire. Sampled configurations also build and validate.
func TestPlanAllToAllProperty(t *testing.T) {
	for r := 2; r <= 512; r = r + 1 + r/8 {
		req := AllToAllRequirement(r)
		for _, w := range []int{max(r/2, 1), max(r, 2), req, req + 3} {
			if w < r/2 { // config invalid: group needs ⌊r/2⌋ wavelengths
				continue
			}
			cfg := Config{N: r, Wavelengths: w, GroupSize: r}
			st, err := StepsWRHT(cfg)
			if err != nil {
				t.Fatalf("r=%d w=%d: %v", r, w, err)
			}
			if st.AllToAll != (req <= w) {
				t.Fatalf("r=%d w=%d: AllToAll=%v, requirement %d vs budget", r, w, st.AllToAll, req)
			}
			cfg.PlanAllToAll = true
			pst, err := StepsWRHT(cfg)
			if err != nil {
				t.Fatalf("r=%d w=%d planned: %v", r, w, err)
			}
			if pst.Planned != (req > w) {
				t.Fatalf("r=%d w=%d: Planned=%v, want plan exactly in the fallback regime (req %d)", r, w, pst.Planned, req)
			}
			if pst.Planned && pst.PlanSteps < 2 {
				t.Fatalf("r=%d w=%d: planned %d steps", r, w, pst.PlanSteps)
			}
			if r <= 70 { // keep the build/validate sample cheap
				s, err := BuildWRHT(cfg)
				if err != nil {
					t.Fatalf("r=%d w=%d build: %v", r, w, err)
				}
				if err := s.Validate(w); err != nil {
					t.Fatalf("r=%d w=%d: planned schedule invalid: %v", r, w, err)
				}
				if got := len(s.Steps); got != pst.Total {
					t.Fatalf("r=%d w=%d: built %d steps, analysis says %d", r, w, got, pst.Total)
				}
			}
		}
	}
}

// TestPlanAllToAllSchedulesAllReduce executes a full planned WRHT
// schedule in the fallback regime end to end: every node must end with
// the global sum.
func TestPlanAllToAllSchedulesAllReduce(t *testing.T) {
	for _, tc := range []struct{ n, w int }{{64, 4}, {256, 8}} {
		cfg := Config{N: tc.n, Wavelengths: tc.w, PlanAllToAll: true}
		st, err := StepsWRHT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Planned {
			t.Fatalf("N=%d w=%d: expected the planned regime (final r=%d)", tc.n, tc.w, st.FinalGroup)
		}
		s, err := BuildWRHT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(tc.w); err != nil {
			t.Fatalf("N=%d w=%d: %v", tc.n, tc.w, err)
		}
		const l = 5
		vals := make([][]float64, tc.n)
		want := make([]float64, l)
		for i := range vals {
			vals[i] = make([]float64, l)
			for k := range vals[i] {
				vals[i][k] = float64(i*l + k + 1)
				want[k] += vals[i][k]
			}
		}
		runPhaseSteps(t, s.Steps, vals)
		for i := range vals {
			for k := 0; k < l; k++ {
				if vals[i][k] != want[k] {
					t.Fatalf("N=%d w=%d: node %d elem %d = %g, want %g", tc.n, tc.w, i, k, vals[i][k], want[k])
				}
			}
		}
	}
}
