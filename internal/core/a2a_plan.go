package core

import (
	"fmt"
	"strings"
	"sync"

	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// Reconfiguration plans for the final all-to-all phase (ROADMAP item 2,
// "To Reconfigure or Not to Reconfigure", PAPERS.md arXiv 2602.10468).
//
// The exchange among the r surviving representatives is the
// wavelength-hungriest moment of WRHT: the one-shot circuit plan needs
// AllToAllRequirement(r) ≈ ⌈r²/8⌉ wavelengths, and when that exceeds
// the budget the builder historically abandoned the exchange for a slow
// gather to a single root. A PhasePlan describes the alternatives: the
// same traffic carried over k reconfigured rounds of narrow circuits,
// each round optionally striping its payload across the spare spectrum
// so the busiest circuit carries only 1/stripe of the vector. Three
// families are generated:
//
//   - one-shot: today's single-step exchange, stripe-widened when the
//     budget exceeds the requirement;
//   - k-round: grouped gather levels (the WRHT recursion replayed among
//     the representatives with a free group size g), finished by either
//     a root gather or a now-feasible all-to-all among the survivors,
//     and mirrored by OpCopy broadcasts;
//   - hybrid: the short-arc traffic — pairs inside one representative
//     group — exchanged one-shot on parallel per-group line all-to-alls,
//     with only the long-haul inter-group traffic spilled into an extra
//     reconfigured round among the group representatives.
//
// Every plan leaves all r representatives holding the global sum, so a
// plan's steps substitute for the single all-to-all step (or for the
// fallback's final gather+broadcast pair) without touching the rest of
// the schedule. The payload-aware choice among plans is internal/plan's
// job; core only enumerates the feasible shapes and provides the
// payload-free DefaultPhasePlan heuristic behind Config.PlanAllToAll.

// PhaseLevel is one reduction level of a PhasePlan: the participants are
// partitioned into consecutive groups of at most Group members, and
// either every member sends its partial to the group representative
// (A2A false: one gather round) or the group runs a one-shot line
// all-to-all so every member learns the group sum (A2A true). Each
// level is mirrored after the top exchange by an OpCopy broadcast round
// with the same circuit structure. Stripe and BcastStripe split the
// reduce and broadcast payloads into that many wavelength-parallel
// pieces (1 = the whole vector on one circuit).
type PhaseLevel struct {
	Group       int
	A2A         bool
	Stripe      int
	BcastStripe int
}

// PhasePlan is one candidate execution of the all-to-all phase: the
// reduction levels in order, then a one-shot exchange among the
// survivors when TopA2A is set (required unless the levels collapse the
// participants to a single root), then the levels' broadcast mirrors in
// reverse. StaggerStride, when nonzero, offsets the wavelengths of
// every odd-indexed round by that amount so consecutive rounds occupy
// disjoint spectrum halves and the engine's overlap mode can hide their
// reconfiguration delay (the rounds' stripes are computed against the
// half budget by the enumerator).
type PhasePlan struct {
	// Family labels the generator that produced the plan ("one-shot",
	// "k-round", "hybrid") for reporting.
	Family        string
	Levels        []PhaseLevel
	TopA2A        bool
	TopStripe     int
	StaggerStride int
}

// NumSteps returns the plan's communication step count: one reduce and
// one broadcast round per level, plus the top exchange.
func (p PhasePlan) NumSteps() int {
	n := 2 * len(p.Levels)
	if p.TopA2A {
		n++
	}
	return n
}

// SerWeight returns the plan's serialized payload in units of the
// vector size d: each round's busiest circuit carries d/stripe, so the
// total wire time is SerWeight·d/B plus NumSteps reconfigurations.
func (p PhasePlan) SerWeight() float64 {
	var s float64
	for _, lv := range p.Levels {
		s += 1/float64(lv.Stripe) + 1/float64(lv.BcastStripe)
	}
	if p.TopA2A {
		s += 1 / float64(p.TopStripe)
	}
	return s
}

// String renders a compact description, e.g. "k-round(g=4) 3 steps ser
// 0.75d" or "one-shot ×4".
func (p PhasePlan) String() string {
	var b strings.Builder
	b.WriteString(p.Family)
	if len(p.Levels) > 0 {
		fmt.Fprintf(&b, "(g=%d", p.Levels[0].Group)
		if len(p.Levels) > 1 {
			fmt.Fprintf(&b, "×%d", len(p.Levels))
		}
		b.WriteString(")")
	} else if p.TopStripe > 1 {
		fmt.Fprintf(&b, " ×%d", p.TopStripe)
	}
	if p.StaggerStride > 0 {
		b.WriteString(" staggered")
	}
	fmt.Fprintf(&b, " %d steps ser %.3gd", p.NumSteps(), p.SerWeight())
	return b.String()
}

// phaseWidths returns the wavelength requirement of every round of the
// plan, in emission order (levels, top, broadcasts), replaying the
// partition recursion for r participants. The second result is the
// surviving participant count after the levels.
func (p PhasePlan) phaseWidths(r int) (widths []int, survivors int) {
	parts := r
	bcast := make([]int, 0, len(p.Levels))
	for _, lv := range p.Levels {
		g := min(lv.Group, parts)
		if lv.A2A {
			widths = append(widths, LineAllToAllRequirement(g))
		} else {
			widths = append(widths, g/2)
		}
		// The broadcast mirror always has gather structure: width ⌊g/2⌋
		// with g the level's biggest group.
		bcast = append(bcast, g/2)
		parts = ceilDiv(parts, lv.Group)
	}
	if p.TopA2A {
		widths = append(widths, AllToAllRequirement(parts))
	}
	for i := len(bcast) - 1; i >= 0; i-- {
		widths = append(widths, bcast[i])
	}
	return widths, parts
}

// PhasePlans enumerates every feasible plan for an all-to-all phase
// among r participants under a per-direction wavelength budget w
// (w ≤ 0 = uncapped: every shape is feasible and all stripes are 1,
// matching fabrics without circuit semantics). The order is
// deterministic: one-shot first, then k-round plans by ascending group
// size and level count, then hybrids by ascending group size, each
// followed by its staggered variant when one exists. r < 2 yields nil.
func PhasePlans(r, w int) []PhasePlan {
	if r < 2 {
		return nil
	}
	uncapped := w <= 0
	half := w / 2
	// stripeFor returns the stripe factor for a round of the given
	// wavelength requirement under budget b, or 0 when infeasible.
	stripeFor := func(width, b int) int {
		if uncapped {
			return 1
		}
		if width < 1 {
			width = 1
		}
		if width > b {
			return 0
		}
		return b / width
	}
	var out []PhasePlan
	// One-shot.
	if s := stripeFor(AllToAllRequirement(r), w); s > 0 {
		out = append(out, PhasePlan{Family: "one-shot", TopA2A: true, TopStripe: s})
	}
	// k-round: gather levels of group size g, cut after L levels by
	// either a feasible all-to-all among the survivors or a root gather.
	for g := 2; g <= r; g++ {
		if !uncapped && g/2 > w {
			break // wider groups only grow the gather width
		}
		parts := r
		var levels []PhaseLevel
		for L := 1; parts > 1; L++ {
			gw := min(g, parts) / 2
			s := stripeFor(gw, w)
			if s == 0 {
				break
			}
			levels = append(levels, PhaseLevel{Group: g, A2A: false, Stripe: s, BcastStripe: s})
			parts = ceilDiv(parts, g)
			p := PhasePlan{Family: "k-round"}
			p.Levels = append([]PhaseLevel(nil), levels...)
			if parts == 1 {
				// Root gather: the levels alone finish the reduction.
				emitPlan(&out, p, r, w, half, uncapped)
				break
			}
			if ts := stripeFor(AllToAllRequirement(parts), w); ts > 0 {
				p.TopA2A, p.TopStripe = true, ts
				emitPlan(&out, p, r, w, half, uncapped)
			}
		}
	}
	// Hybrid: one level of parallel per-group line all-to-alls (the
	// short-arc traffic, exchanged one-shot), then the spilled
	// inter-group round among the ⌈r/g⌉ group representatives.
	for g := 2; g < r; g++ {
		s := stripeFor(LineAllToAllRequirement(g), w)
		if s == 0 {
			if !uncapped {
				break // line requirement grows monotonically in g
			}
			continue
		}
		groups := ceilDiv(r, g)
		ts := stripeFor(AllToAllRequirement(groups), w)
		if ts == 0 {
			continue
		}
		bs := stripeFor(g/2, w)
		p := PhasePlan{
			Family:    "hybrid",
			Levels:    []PhaseLevel{{Group: g, A2A: true, Stripe: s, BcastStripe: bs}},
			TopA2A:    true,
			TopStripe: ts,
		}
		emitPlan(&out, p, r, w, half, uncapped)
	}
	return out
}

// emitPlan appends p and, when every round also fits half the budget,
// a staggered variant whose odd rounds sit in the upper spectrum half
// (disjoint consecutive rounds let the engine's overlap mode hide
// their reconfiguration delay at the price of halved stripes).
func emitPlan(out *[]PhasePlan, p PhasePlan, r, w, half int, uncapped bool) {
	*out = append(*out, p)
	if uncapped || half < 1 || p.NumSteps() < 2 {
		return
	}
	widths, _ := p.phaseWidths(r)
	sp := PhasePlan{Family: p.Family, TopA2A: p.TopA2A, StaggerStride: half}
	sp.Levels = append([]PhaseLevel(nil), p.Levels...)
	wi := 0
	fit := func(width int) int {
		if width < 1 {
			width = 1
		}
		if width > half {
			return 0
		}
		return half / width
	}
	for i := range sp.Levels {
		s := fit(widths[wi])
		if s == 0 {
			return
		}
		sp.Levels[i].Stripe = s
		wi++
	}
	if sp.TopA2A {
		s := fit(widths[wi])
		if s == 0 {
			return
		}
		sp.TopStripe = s
		wi++
	}
	for i := len(sp.Levels) - 1; i >= 0; i-- {
		s := fit(widths[wi])
		if s == 0 {
			return
		}
		sp.Levels[i].BcastStripe = s
		wi++
	}
	*out = append(*out, sp)
}

// DefaultPhasePlan returns the payload-free plan Config.PlanAllToAll
// uses when the one-shot exchange does not fit the budget: the feasible
// plan with the least serialized payload (SerWeight — at DNN gradient
// sizes the wire term dominates the 25 µs reconfigurations by orders of
// magnitude), ties broken by fewer steps, then enumeration order. The
// payload- and fabric-aware argmin lives in internal/plan; this
// heuristic only has to beat the single-root gather fallback, which it
// does whenever any striping is possible. The second result is false
// when r < 2 or no plan fits (w < 1).
func DefaultPhasePlan(r, w int) (PhasePlan, bool) {
	plans := PhasePlans(r, w)
	best, ok := PhasePlan{}, false
	var bestSer float64
	for _, p := range plans {
		if p.StaggerStride > 0 {
			// Stagger trades stripe for overlap eligibility; without a
			// payload or an engine mode to price that, prefer packed.
			continue
		}
		ser := p.SerWeight()
		if !ok || ser < bestSer || (ser == bestSer && p.NumSteps() < best.NumSteps()) {
			best, bestSer, ok = p, ser, true
		}
	}
	return best, ok
}

// --- step construction ---------------------------------------------------

// lineTemplate caches the routed-and-colored one-shot line exchange for
// k participants (shared by every group of the same size).
type lineTemplate struct {
	right, left []lineArc
	rc, lc      []int
}

var lineTmplCache sync.Map // int -> *lineTemplate

func lineTmpl(k int) *lineTemplate {
	if v, ok := lineTmplCache.Load(k); ok {
		return v.(*lineTemplate)
	}
	right, left := routeLineAllToAll(k)
	rc, _ := colorLine(right)
	lc, _ := colorLine(left)
	t := &lineTemplate{right: right, left: left, rc: rc, lc: lc}
	lineTmplCache.Store(k, t)
	return t
}

// ringTemplate caches the routed-and-colored ring all-to-all for k
// participants.
type ringTemplate struct {
	cw, ccw             []virtualArc
	cwColors, ccwColors []int
}

var ringTmplCache sync.Map // int -> *ringTemplate

func ringTmpl(k int) *ringTemplate {
	if v, ok := ringTmplCache.Load(k); ok {
		return v.(*ringTemplate)
	}
	cw, ccw := routeAllToAll(k)
	cwc, _ := tileColor(cw, k)
	ccwc, _ := colorFiber(ccw, k, ccwShift(k))
	t := &ringTemplate{cw: cw, ccw: ccw, cwColors: cwc, ccwColors: ccwc}
	ringTmplCache.Store(k, t)
	return t
}

// stripeChunk returns piece j of a stripe-way split of the whole
// vector (the whole vector itself for stripe 1, keeping stripe-1 plans
// bit-identical to the unstriped constructions).
func stripeChunk(j, stripe int) tensor.Chunk {
	if stripe <= 1 {
		return tensor.Whole
	}
	return tensor.Chunk{Index: j, Of: stripe}
}

// appendStriped appends the stripe pieces of one logical transfer:
// piece j rides wavelength base + color·stripe + j.
func appendStriped(buf *Step, tr Transfer, color, stripe, base int) {
	for j := 0; j < stripe; j++ {
		tr.Chunk = stripeChunk(j, stripe)
		tr.Wavelength = base + color*stripe + j
		buf.Transfers = append(buf.Transfers, tr)
	}
}

// stripedGatherInto emits one gather (OpSum) or broadcast (OpCopy)
// round over the groups, with each member↔representative transfer
// striped. The circuit structure matches gatherStepInto exactly at
// stripe 1, base 0, except the phase is PhaseAllToAll: plan rounds are
// part of the all-to-all phase regardless of their internal shape, so
// IR passes can identify the phase span.
func stripedGatherInto(buf *Step, groups []group, op tensor.ReduceOp, stripe, base int) {
	buf.Phase = PhaseAllToAll
	buf.Transfers = buf.Transfers[:0]
	for _, g := range groups {
		for i, node := range g.Members {
			if i == g.RepIdx {
				continue
			}
			var dir topo.Direction
			var dist int
			if i < g.RepIdx {
				dir, dist = topo.CW, g.RepIdx-i
			} else {
				dir, dist = topo.CCW, i-g.RepIdx
			}
			tr := Transfer{Src: node, Dst: g.rep(), Op: op, Dir: dir}
			if op == tensor.OpCopy {
				tr.Src, tr.Dst = g.rep(), node
				tr.Dir = dir.Opposite()
			}
			appendStriped(buf, tr, dist-1, stripe, base)
		}
	}
}

// stripedGroupA2AInto emits one round of parallel per-group line
// all-to-alls: every member of every group exchanges its partial with
// its groupmates one-shot, so the whole group learns the group sum.
// Groups occupy disjoint ring spans (participants are ascending and
// partitioned into consecutive runs), so every group reuses the same
// wavelengths.
func stripedGroupA2AInto(buf *Step, groups []group, stripe, base int) {
	buf.Phase = PhaseAllToAll
	buf.Transfers = buf.Transfers[:0]
	for _, g := range groups {
		if len(g.Members) < 2 {
			continue
		}
		t := lineTmpl(len(g.Members))
		for i, a := range t.right {
			appendStriped(buf, Transfer{
				Src: g.Members[a.Src], Dst: g.Members[a.Dst],
				Op: tensor.OpSum, Dir: a.Dir,
			}, t.rc[i], stripe, base)
		}
		for i, a := range t.left {
			appendStriped(buf, Transfer{
				Src: g.Members[a.Src], Dst: g.Members[a.Dst],
				Op: tensor.OpSum, Dir: a.Dir,
			}, t.lc[i], stripe, base)
		}
	}
}

// stripedRingA2AInto emits the one-shot ring all-to-all among the
// participants, striped. Stripe 1, base 0 reproduces buildAllToAllStep
// bit for bit.
func stripedRingA2AInto(buf *Step, reps []int, stripe, base int) {
	buf.Phase = PhaseAllToAll
	buf.Transfers = buf.Transfers[:0]
	t := ringTmpl(len(reps))
	for i, a := range t.cw {
		appendStriped(buf, Transfer{
			Src: reps[a.Src], Dst: reps[a.Dst],
			Op: tensor.OpSum, Dir: a.Dir,
		}, t.cwColors[i], stripe, base)
	}
	for i, a := range t.ccw {
		appendStriped(buf, Transfer{
			Src: reps[a.Src], Dst: reps[a.Dst],
			Op: tensor.OpSum, Dir: a.Dir,
		}, t.ccwColors[i], stripe, base)
	}
}

// PhaseBuilder constructs a plan's steps with pooled buffers: after the
// first call, rebuilding a same-shaped plan allocates nothing (the
// planner in internal/plan evaluates hundreds of candidates through one
// builder; see BenchmarkPlanAllToAll). The returned steps alias the
// builder and are valid until the next Build call.
type PhaseBuilder struct {
	steps  []Step
	levels [][]group
	parts  [][]int
}

// nextStep returns a cleared step buffer, growing the pooled slice only
// beyond its high-water mark.
func (b *PhaseBuilder) nextStep() *Step {
	if len(b.steps) < cap(b.steps) {
		b.steps = b.steps[:len(b.steps)+1]
	} else {
		b.steps = append(b.steps, Step{})
	}
	st := &b.steps[len(b.steps)-1]
	st.Transfers = st.Transfers[:0]
	return st
}

// partitionLevel partitions parts into groups of at most g, storing the
// groups and next-level participants in the builder's pooled buffers
// for level li.
func (b *PhaseBuilder) partitionLevel(li int, parts []int, g int) ([]group, []int) {
	for len(b.levels) <= li {
		b.levels = append(b.levels, nil)
		b.parts = append(b.parts, nil)
	}
	groups := b.levels[li][:0]
	next := b.parts[li][:0]
	for lo := 0; lo < len(parts); lo += g {
		hi := min(lo+g, len(parts))
		members := parts[lo:hi]
		gr := group{Members: members, RepIdx: len(members) / 2}
		groups = append(groups, gr)
		next = append(next, gr.rep())
	}
	b.levels[li], b.parts[li] = groups, next
	return groups, next
}

// staggerBase returns the wavelength base of round t under the plan's
// stagger stride (odd rounds shift into the upper spectrum half).
func (p PhasePlan) staggerBase(t int) int {
	if p.StaggerStride > 0 && t%2 == 1 {
		return p.StaggerStride
	}
	return 0
}

// Build emits the plan's steps for the given representatives (strictly
// ascending ring positions). Every step carries PhaseAllToAll. The
// result aliases the builder's pooled buffers and is valid until the
// next Build call; callers that retain steps must copy them.
func (b *PhaseBuilder) Build(ring topo.Ring, reps []int, p PhasePlan) ([]Step, error) {
	if len(reps) < 2 {
		return nil, fmt.Errorf("core: phase plan needs ≥ 2 representatives, got %d", len(reps))
	}
	for i, rep := range reps {
		if rep < 0 || rep >= ring.N {
			return nil, fmt.Errorf("core: phase plan representative %d outside ring of %d", rep, ring.N)
		}
		if i > 0 && rep <= reps[i-1] {
			return nil, fmt.Errorf("core: phase plan representatives not strictly ascending at index %d", i)
		}
	}
	b.steps = b.steps[:0]
	round := 0
	parts := reps
	levelGroups := 0
	for li, lv := range p.Levels {
		if lv.Group < 2 {
			return nil, fmt.Errorf("core: phase plan level %d group size %d < 2", li, lv.Group)
		}
		if lv.Stripe < 1 || lv.BcastStripe < 1 {
			return nil, fmt.Errorf("core: phase plan level %d stripe < 1", li)
		}
		groups, next := b.partitionLevel(li, parts, lv.Group)
		if lv.A2A {
			stripedGroupA2AInto(b.nextStep(), groups, lv.Stripe, p.staggerBase(round))
		} else {
			stripedGatherInto(b.nextStep(), groups, tensor.OpSum, lv.Stripe, p.staggerBase(round))
		}
		round++
		parts = next
		levelGroups++
	}
	if p.TopA2A {
		if len(parts) < 2 {
			return nil, fmt.Errorf("core: phase plan top exchange among %d survivor(s)", len(parts))
		}
		if p.TopStripe < 1 {
			return nil, fmt.Errorf("core: phase plan top stripe < 1")
		}
		stripedRingA2AInto(b.nextStep(), parts, p.TopStripe, p.staggerBase(round))
		round++
	} else if len(parts) != 1 {
		return nil, fmt.Errorf("core: phase plan leaves %d survivors without a top exchange", len(parts))
	}
	for li := levelGroups - 1; li >= 0; li-- {
		stripedGatherInto(b.nextStep(), b.levels[li], tensor.OpCopy, p.Levels[li].BcastStripe, p.staggerBase(round))
		round++
	}
	return b.steps, nil
}

// BuildPhaseSteps is the allocating convenience over PhaseBuilder: the
// returned steps are independent copies.
func BuildPhaseSteps(ring topo.Ring, reps []int, p PhasePlan) ([]Step, error) {
	var b PhaseBuilder
	steps, err := b.Build(ring, reps, p)
	if err != nil {
		return nil, err
	}
	out := make([]Step, len(steps))
	for i, st := range steps {
		out[i] = Step{Phase: st.Phase, Transfers: append([]Transfer(nil), st.Transfers...)}
	}
	return out, nil
}
