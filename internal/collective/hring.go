package collective

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// BuildHRing constructs the hierarchical-ring all-reduce of [28]
// (the paper's H-Ring baseline): nodes are split into G = n/m groups of
// m consecutive nodes, and the algorithm runs
//
//  1. an intra-group ring reduce-scatter over m bands (m−1 steps),
//  2. m concurrent inter-group ring all-reduces — slot j of every group
//     forms a G-node ring reducing band j — taking 2(G−1) logical steps
//     and m wavelengths; when only w < m wavelengths are available the
//     slots serialize into ⌈m/w⌉ sub-steps per logical step, which is
//     the wavelength dependence Fig 5 shows for H-Ring,
//  3. an intra-group ring all-gather (m−1 steps).
//
// The constructive schedule requires m | n and 2 ≤ m ≤ n. The paper's
// own closed-form count (core.StepsHRingPaper) differs from the
// constructed schedule by one step at the paper's settings (416 built vs
// 417 from the formula at N=1024, m=5); EXPERIMENTS.md discusses this.
func BuildHRing(n, m, w int) (*core.Schedule, error) {
	s := &core.Schedule{Algorithm: "hring", Ring: topo.NewRing(n)}
	if n <= 1 {
		return s, nil
	}
	if m < 2 || m > n {
		return nil, fmt.Errorf("collective: hring group size m=%d out of range [2,%d]", m, n)
	}
	if n%m != 0 {
		return nil, fmt.Errorf("collective: hring requires m | n, got n=%d m=%d", n, m)
	}
	if w < 1 {
		return nil, fmt.Errorf("collective: hring wavelengths w=%d < 1", w)
	}
	g := n / m

	node := func(grp, slot int) int { return grp*m + slot }

	// intraStep emits one intra-group ring pass: member i sends band
	// bandOf(i) to member i+1 (wrapping inside the group). Members
	// 0..m−2 travel CW one hop; member m−1 travels CCW back across the
	// group span. Both fibers use wavelength 0 (arcs are group-disjoint).
	intraStep := func(bandOf func(i int) int, op tensor.ReduceOp, phase core.Phase) core.Step {
		st := core.Step{Phase: phase}
		for grp := 0; grp < g; grp++ {
			for i := 0; i < m; i++ {
				b := bandOf(i)
				tr := core.Transfer{
					Src:   node(grp, i),
					Dst:   node(grp, (i+1)%m),
					Chunk: tensor.Chunk{Index: b, Of: m},
					Op:    op,
				}
				if i == m-1 {
					tr.Dir = topo.CCW
				} else {
					tr.Dir = topo.CW
				}
				tr.Wavelength = 0
				st.Transfers = append(st.Transfers, tr)
			}
		}
		return st
	}

	// Phase 1: intra-group reduce-scatter. Step t: member i sends band
	// (i−t) mod m; after m−1 steps member i owns the group-reduced band
	// (i+1) mod m.
	for t := 0; t < m-1; t++ {
		tt := t
		s.Steps = append(s.Steps, intraStep(func(i int) int { return ((i-tt)%m + m) % m }, tensor.OpSum, core.PhaseReduce))
	}

	// Phase 2: per-slot inter-group rings over band (slot+1) mod m,
	// subdivided into G sub-chunks. Slot j travels on wavelength j within
	// its batch; with w < m the slots serialize into ⌈m/w⌉ batches.
	batches := (m + w - 1) / w
	interStep := func(subOf func(grp int) int, op tensor.ReduceOp, phase core.Phase, batch int) core.Step {
		st := core.Step{Phase: phase}
		for j := batch * w; j < min((batch+1)*w, m); j++ {
			band := (j + 1) % m
			for grp := 0; grp < g; grp++ {
				st.Transfers = append(st.Transfers, core.Transfer{
					Src:   node(grp, j),
					Dst:   node((grp+1)%g, j),
					Chunk: tensor.Chunk{Index: band, Of: m, Sub: &tensor.Chunk{Index: subOf(grp), Of: g}},
					Op:    op,
					Dir:   topo.CW, Wavelength: j - batch*w,
				})
			}
		}
		return st
	}
	for t := 0; t < g-1; t++ {
		tt := t
		for b := 0; b < batches; b++ {
			s.Steps = append(s.Steps, interStep(func(grp int) int { return ((grp-tt)%g + g) % g }, tensor.OpSum, core.PhaseReduce, b))
		}
	}
	for t := 0; t < g-1; t++ {
		tt := t
		for b := 0; b < batches; b++ {
			s.Steps = append(s.Steps, interStep(func(grp int) int { return ((grp+1-tt)%g + g) % g }, tensor.OpCopy, core.PhaseBroadcast, b))
		}
	}

	// Phase 3: intra-group all-gather. Member i owns complete band
	// (i+1) mod m; step t sends band (i+1−t) mod m.
	for t := 0; t < m-1; t++ {
		tt := t
		s.Steps = append(s.Steps, intraStep(func(i int) int { return ((i+1-tt)%m + m) % m }, tensor.OpCopy, core.PhaseBroadcast))
	}
	return s, nil
}

// HRingSteps returns the step count of the constructive H-Ring schedule:
// 2(m−1) + 2(⌈n/m⌉−1)·⌈m/w⌉.
func HRingSteps(n, m, w int) int {
	if n <= 1 {
		return 0
	}
	g := ceilDiv(n, m)
	return 2*(m-1) + 2*(g-1)*ceilDiv(m, w)
}

// HRingProfile returns the analytic step profile of the constructive
// H-Ring schedule. Unlike BuildHRing it tolerates ragged n (m ∤ n) by
// using G = ⌈n/m⌉ groups, which is sufficient for timing.
func HRingProfile(n, m, w int) core.Profile {
	p := core.Profile{Algorithm: "hring"}
	if n <= 1 {
		return p
	}
	g := ceilDiv(n, m)
	intra := core.ProfileGroup{Steps: m - 1, FracOfD: 1 / float64(m), Wavelengths: 1}
	if intra.Steps > 0 {
		p.Groups = append(p.Groups, intra)
	}
	if g > 1 {
		p.Groups = append(p.Groups, core.ProfileGroup{
			Steps:       2 * (g - 1) * ceilDiv(m, w),
			FracOfD:     1 / float64(m) / float64(g),
			Wavelengths: min(m, w),
		})
	}
	if intra.Steps > 0 {
		p.Groups = append(p.Groups, intra)
	}
	return p
}
