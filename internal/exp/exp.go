// Package exp regenerates every table and figure of the paper's
// evaluation (§5): Table 1 (step counts), Fig 4 (grouped-node sweep),
// Fig 5 (wavelength sweep), Fig 6 (node scaling in the optical system),
// Fig 7 (optical vs electrical), plus the §4.4 constraint analysis and
// the ablation studies DESIGN.md lists. The cmd/wrhtsim binary and the
// root bench_test.go both drive these entry points.
//
// Each sweep runs on a bounded worker pool (see engine.go): points fan
// out across up to Options.Workers goroutines, collective profiles are
// memoized per sweep so each distinct core.Config is built exactly
// once, and results are assembled in index order so the output is
// byte-identical to a sequential (Workers=1) run. Errors propagate —
// nothing in this package panics on timing or profile failures.
package exp

import (
	"context"
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/electrical"
	"wrht/internal/metrics"
	"wrht/internal/obs"
	"wrht/internal/optical"
	"wrht/internal/phys"
	"wrht/internal/trace"
)

// baselineWorkload is the workload the paper normalizes Figs 5-7 by.
const baselineWorkload = "ResNet50"

// Granularity selects how the per-iteration gradient is handed to the
// all-reduce.
type Granularity int

const (
	// Fused all-reduces the whole gradient in one invocation (one fused
	// buffer), the default reading of the paper's Eq-6 model.
	Fused Granularity = iota
	// Bucketed all-reduces gradient-fusion buckets (~25 MB, like DDP /
	// Horovod) one after another, multiplying the per-step overheads.
	// DESIGN.md §5 explains why this reading reproduces the paper's
	// headline percentages more closely for the largest models.
	Bucketed
)

func (g Granularity) String() string {
	if g == Bucketed {
		return "bucketed"
	}
	return "fused"
}

// BucketBytes is the fusion-bucket size used in Bucketed mode.
const BucketBytes = 25 << 20

// Options configures an experiment run.
type Options struct {
	Optical     optical.Params
	Electrical  electrical.Params
	Granularity Granularity
	// Workers bounds the sweep worker pool: 0 (the default) uses
	// GOMAXPROCS, 1 forces the sequential baseline path. Output is
	// identical whatever the value.
	Workers int
	// Trace, when non-nil, receives observability spans: per-sweep-point
	// progress spans (only when Trace.Clock is set — they are wall-clock
	// diagnostics, not simulated time) and, for CrossFabric, the full
	// simulated-time step timeline of every (algorithm, mode) run. Runs
	// that emit simulated timelines force Workers=1 so the trace file is
	// byte-stable.
	Trace *obs.Tracer
	// Metrics, when non-nil, accumulates sweep counters (points run,
	// worker busy seconds), profile-cache hit/miss deltas and RWA probe
	// statistics.
	Metrics *obs.Registry
	// Ctx, when non-nil, cancels an in-flight sweep between points: a
	// dropped daemon client or a draining server stops burning workers
	// at the next point boundary, and the sweep returns the context's
	// error (wrapped, so errors.Is still matches context.Canceled).
	Ctx context.Context
	// Pool, when non-nil, runs sweep points on this shared bounded
	// worker pool instead of spawning a per-sweep pool, so concurrent
	// sweeps in one process (wrhtd) share a single compute bound.
	// Workers still caps fan-out per sweep; runs forced sequential
	// (Workers=1, e.g. byte-stable trace runs) bypass the pool. Output
	// is byte-identical with or without it.
	Pool *Pool
}

// Defaults returns the Table-2 configuration with fused granularity.
func Defaults() Options {
	return Options{
		Optical:    optical.DefaultParams(),
		Electrical: electrical.DefaultParams(),
	}
}

// payloads returns the per-invocation gradient byte sizes for a model
// under the configured granularity.
func (o Options) payloads(m dnn.Model) []float64 {
	if o.Granularity == Bucketed {
		return m.Buckets(BucketBytes)
	}
	return []float64{float64(m.GradBytes())}
}

// Table1 reproduces Table 1: communication step counts of the four
// algorithms at N=1024, w=64 (H-Ring m=5, WRHT m=129).
func Table1() (*metrics.Table, error) {
	const n, w = 1024, 64
	st, err := core.StepsWRHT(core.Config{N: n, Wavelengths: w, GroupSize: 129})
	if err != nil {
		return nil, fmt.Errorf("exp: table 1: %w", err)
	}
	t := &metrics.Table{
		Title:   "Table 1: communication steps, N=1024, w=64",
		Headers: []string{"Algorithm", "Closed form", "Steps", "Paper"},
	}
	t.AddRow("Ring", "2(N-1)", fmt.Sprint(core.StepsRing(n)), "2046")
	t.AddRow("H-Ring (m=5)", "2(m^2+N)/m - 3", fmt.Sprint(core.StepsHRingPaper(n, 5, w)), "417")
	t.AddRow("BT", "2ceil(log2 N)", fmt.Sprint(core.StepsBT(n)), "20")
	t.AddRow("WRHT (m=129)", "2ceil(log_m N) - 1", fmt.Sprint(st.Total), "3")
	return t, nil
}

// Fig4 reproduces Figure 4: WRHT communication time on a 1024-node ring
// with grouped-node counts m ∈ {17, 33, 65, 129}, per DNN workload,
// normalized by WRHT₃ (m=129) within each workload.
func Fig4(o Options) (*metrics.Figure, error) { return newEngine(o, "fig4").fig4() }

func (e *engine) fig4() (*metrics.Figure, error) {
	const n, w = 1024, 64
	ms := []int{17, 33, 65, 129}
	models := dnn.Workloads()
	// One sweep point per (workload, m), model-major.
	times, err := sweep(e, len(models)*len(ms), func(i int) (float64, error) {
		model, m := models[i/len(ms)], ms[i%len(ms)]
		pr, err := e.wrht(n, w, m)
		if err != nil {
			return 0, err
		}
		return e.opticalTime(pr, model)
	})
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		Title:  "Figure 4: WRHT vs grouped nodes m, N=1024, w=64 (normalized per workload by m=129)",
		XLabel: "workload",
		YLabel: "normalized communication time",
	}
	series := make([]metrics.Series, len(ms))
	for i, m := range ms {
		series[i] = metrics.Series{Name: fmt.Sprintf("WRHT_%d (m=%d)", i, m)}
	}
	for mi, model := range models {
		fig.XTicks = append(fig.XTicks, model.Name)
		base := times[mi*len(ms)+len(ms)-1]
		for i := range ms {
			series[i].Y = append(series[i].Y, times[mi*len(ms)+i]/base)
		}
	}
	fig.Series = series
	steps := make([]string, len(ms))
	for i, m := range ms {
		st, err := core.StepsWRHT(core.Config{N: n, Wavelengths: w, GroupSize: m})
		if err != nil {
			return nil, fmt.Errorf("exp: fig 4 steps (m=%d): %w", m, err)
		}
		steps[i] = fmt.Sprintf("m=%d:θ=%d", m, st.Total)
	}
	fig.Comment = fmt.Sprintf("step counts: %v (paper: time falls with m, then plateaus)", steps)
	return fig, nil
}

// optAlgos enumerates the four §5 algorithms in the order the *All
// accumulation slices use: WRHT, Ring, H-Ring (m=5), BT.
const numOptAlgos = 4

// optAlgoTime times algorithm ai ∈ [0, numOptAlgos) for one model at
// (n, w), building profiles through the per-sweep cache.
func (e *engine) optAlgoTime(ai, n, w int, model dnn.Model) (float64, error) {
	var pr core.Profile
	switch ai {
	case 0:
		var err error
		pr, err = e.wrht(n, w, 0)
		if err != nil {
			return 0, err
		}
	case 1:
		pr = e.ring(n)
	case 2:
		pr = e.hring(n, 5, w)
	default:
		pr = e.bt(n)
	}
	return e.opticalTime(pr, model)
}

// Fig5Result bundles the wavelength-sweep subfigures with the paper-style
// average reductions of WRHT versus each baseline.
type Fig5Result struct {
	Figures []*metrics.Figure // one per DNN, X = wavelengths
	VsRing  float64           // mean % reduction (paper: 13.74%)
	VsHRing float64           // paper: 9.29%
	VsBT    float64           // paper: 75%
}

// Fig5 reproduces Figure 5: the four algorithms on a 1024-node optical
// ring under w ∈ {4, 16, 64, 256} wavelengths (H-Ring m=5), one
// subfigure per DNN, normalized by WRHT on ResNet50 at 256 wavelengths.
func Fig5(o Options) (Fig5Result, error) { return newEngine(o, "fig5").fig5() }

func (e *engine) fig5() (Fig5Result, error) {
	const n = 1024
	ws := []int{4, 16, 64, 256}
	models := dnn.Workloads()
	baseModel, err := baselineModel(models, baselineWorkload)
	if err != nil {
		return Fig5Result{}, err
	}
	basePr, err := e.wrht(n, 256, 0)
	if err != nil {
		return Fig5Result{}, err
	}
	base, err := e.opticalTime(basePr, baseModel) // WRHT, ResNet50, w=256
	if err != nil {
		return Fig5Result{}, err
	}
	// One sweep point per (workload, wavelength, algorithm).
	times, err := sweep(e, len(models)*len(ws)*numOptAlgos, func(i int) (float64, error) {
		model := models[i/(len(ws)*numOptAlgos)]
		w := ws[(i/numOptAlgos)%len(ws)]
		return e.optAlgoTime(i%numOptAlgos, n, w, model)
	})
	if err != nil {
		return Fig5Result{}, err
	}

	var out Fig5Result
	var wrhtAll, ringAll, hringAll, btAll []float64
	for mi, model := range models {
		fig := &metrics.Figure{
			Title:  fmt.Sprintf("Figure 5 (%s): communication time vs wavelengths, N=1024", model.Name),
			XLabel: "wavelengths",
			YLabel: "normalized communication time",
		}
		wrhtS := metrics.Series{Name: "WRHT"}
		ringS := metrics.Series{Name: "Ring"}
		hringS := metrics.Series{Name: "H-Ring"}
		btS := metrics.Series{Name: "BT"}
		for wi, w := range ws {
			fig.XTicks = append(fig.XTicks, fmt.Sprint(w))
			p := (mi*len(ws) + wi) * numOptAlgos
			tw, tr, th, tb := times[p], times[p+1], times[p+2], times[p+3]
			wrhtS.Y = append(wrhtS.Y, tw/base)
			ringS.Y = append(ringS.Y, tr/base)
			hringS.Y = append(hringS.Y, th/base)
			btS.Y = append(btS.Y, tb/base)
			wrhtAll = append(wrhtAll, tw)
			ringAll = append(ringAll, tr)
			hringAll = append(hringAll, th)
			btAll = append(btAll, tb)
		}
		fig.Series = []metrics.Series{ringS, hringS, btS, wrhtS}
		out.Figures = append(out.Figures, fig)
	}
	if out.VsRing, err = metrics.MeanReduction(wrhtAll, ringAll); err != nil {
		return Fig5Result{}, err
	}
	if out.VsHRing, err = metrics.MeanReduction(wrhtAll, hringAll); err != nil {
		return Fig5Result{}, err
	}
	if out.VsBT, err = metrics.MeanReduction(wrhtAll, btAll); err != nil {
		return Fig5Result{}, err
	}
	return out, nil
}

// Fig6Result bundles the node-scaling subfigures with the headline
// average reductions (paper: 65.23%, 43.81%, 82.22%).
type Fig6Result struct {
	Figures []*metrics.Figure
	VsRing  float64
	VsHRing float64
	VsBT    float64
}

// Fig6 reproduces Figure 6: the four algorithms on optical rings of
// N ∈ {1024, 2048, 3072, 4096} nodes at w=64 (H-Ring m=5), one subfigure
// per DNN, normalized by WRHT on ResNet50 at N=1024.
func Fig6(o Options) (Fig6Result, error) { return newEngine(o, "fig6").fig6() }

func (e *engine) fig6() (Fig6Result, error) {
	const w = 64
	ns := []int{1024, 2048, 3072, 4096}
	models := dnn.Workloads()
	baseModel, err := baselineModel(models, baselineWorkload)
	if err != nil {
		return Fig6Result{}, err
	}
	basePr, err := e.wrht(ns[0], w, 0)
	if err != nil {
		return Fig6Result{}, err
	}
	base, err := e.opticalTime(basePr, baseModel) // WRHT, ResNet50, N=1024
	if err != nil {
		return Fig6Result{}, err
	}
	// One sweep point per (workload, node count, algorithm).
	times, err := sweep(e, len(models)*len(ns)*numOptAlgos, func(i int) (float64, error) {
		model := models[i/(len(ns)*numOptAlgos)]
		n := ns[(i/numOptAlgos)%len(ns)]
		return e.optAlgoTime(i%numOptAlgos, n, w, model)
	})
	if err != nil {
		return Fig6Result{}, err
	}

	var out Fig6Result
	var wrhtAll, ringAll, hringAll, btAll []float64
	for mi, model := range models {
		fig := &metrics.Figure{
			Title:  fmt.Sprintf("Figure 6 (%s): communication time vs nodes, w=64", model.Name),
			XLabel: "nodes",
			YLabel: "normalized communication time",
		}
		wrhtS := metrics.Series{Name: "WRHT"}
		ringS := metrics.Series{Name: "Ring"}
		hringS := metrics.Series{Name: "H-Ring"}
		btS := metrics.Series{Name: "BT"}
		for ni, n := range ns {
			fig.XTicks = append(fig.XTicks, fmt.Sprint(n))
			p := (mi*len(ns) + ni) * numOptAlgos
			tw, tr, th, tb := times[p], times[p+1], times[p+2], times[p+3]
			wrhtS.Y = append(wrhtS.Y, tw/base)
			ringS.Y = append(ringS.Y, tr/base)
			hringS.Y = append(hringS.Y, th/base)
			btS.Y = append(btS.Y, tb/base)
			wrhtAll = append(wrhtAll, tw)
			ringAll = append(ringAll, tr)
			hringAll = append(hringAll, th)
			btAll = append(btAll, tb)
		}
		fig.Series = []metrics.Series{ringS, hringS, btS, wrhtS}
		out.Figures = append(out.Figures, fig)
	}
	if out.VsRing, err = metrics.MeanReduction(wrhtAll, ringAll); err != nil {
		return Fig6Result{}, err
	}
	if out.VsHRing, err = metrics.MeanReduction(wrhtAll, hringAll); err != nil {
		return Fig6Result{}, err
	}
	if out.VsBT, err = metrics.MeanReduction(wrhtAll, btAll); err != nil {
		return Fig6Result{}, err
	}
	return out, nil
}

// Fig7Result bundles the optical-vs-electrical subfigures with the
// paper's headline reductions (O-Ring vs E-Ring 48.74%; WRHT vs E-Ring
// 61.23%; WRHT vs E-RD 55.51%).
type Fig7Result struct {
	Figures      []*metrics.Figure
	ORingVsERing float64
	WRHTVsERing  float64
	WRHTVsERD    float64
}

// Fig7 reproduces Figure 7: Ring and recursive halving/doubling on the
// electrical fat-tree versus Ring and WRHT on the optical ring, for
// N ∈ {128, 256, 512, 1024} and w=64, one subfigure per DNN, normalized
// by WRHT on ResNet50 at N=128.
func Fig7(o Options) (Fig7Result, error) {
	return fig7At(o, []int{128, 256, 512, 1024})
}

// fig7At runs the Fig-7 comparison over an explicit node list (the test
// suite uses a smaller sweep to keep the flow simulation fast).
func fig7At(o Options, ns []int) (Fig7Result, error) { return newEngine(o, "fig7").fig7(ns) }

func (e *engine) fig7(ns []int) (Fig7Result, error) {
	const w = 64
	const numAlgos = 4 // E-Ring, E-RD, O-Ring, WRHT
	models := dnn.Workloads()
	baseModel, err := baselineModel(models, baselineWorkload)
	if err != nil {
		return Fig7Result{}, err
	}
	basePr, err := e.wrht(ns[0], w, 0)
	if err != nil {
		return Fig7Result{}, err
	}
	base, err := e.opticalTime(basePr, baseModel)
	if err != nil {
		return Fig7Result{}, err
	}

	// Electrical schedules and networks per N, built once up front and
	// shared read-only across all models and workers.
	type nets struct {
		nw   *electrical.Network
		ring *core.Schedule
		rd   *core.Schedule
	}
	byN := map[int]nets{}
	for _, n := range ns {
		nw, err := electrical.NewNetwork(n, e.opts.Electrical)
		if err != nil {
			return Fig7Result{}, fmt.Errorf("exp: fig 7 network (N=%d): %w", n, err)
		}
		rd, err := collective.BuildRD(n)
		if err != nil {
			return Fig7Result{}, fmt.Errorf("exp: fig 7 RD schedule (N=%d): %w", n, err)
		}
		byN[n] = nets{nw: nw, ring: collective.BuildRing(n), rd: rd}
	}

	// One sweep point per (workload, node count, algorithm). The
	// electrical points dominate the runtime, so fanning them out is
	// where the pool pays off.
	times, err := sweep(e, len(models)*len(ns)*numAlgos, func(i int) (float64, error) {
		model := models[i/(len(ns)*numAlgos)]
		n := ns[(i/numAlgos)%len(ns)]
		nn := byN[n]
		switch i % numAlgos {
		case 0:
			return e.electricalTime(nn.nw, nn.ring, model)
		case 1:
			return e.electricalTime(nn.nw, nn.rd, model)
		case 2:
			return e.opticalTime(e.ring(n), model)
		default:
			pr, err := e.wrht(n, w, 0)
			if err != nil {
				return 0, err
			}
			return e.opticalTime(pr, model)
		}
	})
	if err != nil {
		return Fig7Result{}, err
	}

	var out Fig7Result
	var wrhtAll, oringAll, eringAll, erdAll []float64
	for mi, model := range models {
		fig := &metrics.Figure{
			Title:  fmt.Sprintf("Figure 7 (%s): electrical vs optical, w=64", model.Name),
			XLabel: "nodes",
			YLabel: "normalized communication time",
		}
		eringS := metrics.Series{Name: "E-Ring"}
		erdS := metrics.Series{Name: "E-RD"}
		oringS := metrics.Series{Name: "O-Ring"}
		wrhtS := metrics.Series{Name: "WRHT"}
		for ni, n := range ns {
			fig.XTicks = append(fig.XTicks, fmt.Sprint(n))
			p := (mi*len(ns) + ni) * numAlgos
			te, td, to, tw := times[p], times[p+1], times[p+2], times[p+3]
			eringS.Y = append(eringS.Y, te/base)
			erdS.Y = append(erdS.Y, td/base)
			oringS.Y = append(oringS.Y, to/base)
			wrhtS.Y = append(wrhtS.Y, tw/base)
			eringAll = append(eringAll, te)
			erdAll = append(erdAll, td)
			oringAll = append(oringAll, to)
			wrhtAll = append(wrhtAll, tw)
		}
		fig.Series = []metrics.Series{eringS, erdS, oringS, wrhtS}
		out.Figures = append(out.Figures, fig)
	}
	if out.ORingVsERing, err = metrics.MeanReduction(oringAll, eringAll); err != nil {
		return Fig7Result{}, err
	}
	if out.WRHTVsERing, err = metrics.MeanReduction(wrhtAll, eringAll); err != nil {
		return Fig7Result{}, err
	}
	if out.WRHTVsERD, err = metrics.MeanReduction(wrhtAll, erdAll); err != nil {
		return Fig7Result{}, err
	}
	return out, nil
}

// FigureRun converts a rendered figure into a trace.Run for JSON export.
func FigureRun(name string, f *metrics.Figure) trace.Run {
	series := map[string][]float64{}
	for _, s := range f.Series {
		series[s.Name] = s.Y
	}
	return trace.NewRun(name, f.XTicks, series, nil)
}

// Constraints reproduces the §4.4 analysis: the maximum feasible grouped
// nodes m' under the default optical budget for varying pass-through
// loss, on a 1024-node ring.
func Constraints() *metrics.Table {
	t := &metrics.Table{
		Title:   "§4.4 constraints: max grouped nodes m' vs per-interface loss (N=1024)",
		Headers: []string{"P_pass (dB)", "m'", "L_max(m')", "SNR(dB)", "BER ok"},
	}
	for _, pass := range []float64{0.005, 0.01, 0.02, 0.05, 0.1} {
		b := phys.DefaultBudget()
		b.PassLossDB = pass
		m := b.MaxGroupSize(1024, 129)
		lm := phys.MaxCommLength(1024, m)
		row := []string{fmt.Sprintf("%.3f", pass)}
		if m == 0 {
			row = append(row, "-", "-", "-", "-")
		} else {
			row = append(row,
				fmt.Sprint(m), fmt.Sprint(lm),
				fmt.Sprintf("%.1f", b.SNRdB(lm)),
				fmt.Sprint(b.CrosstalkOK(lm)))
		}
		t.AddRow(row...)
	}
	return t
}
