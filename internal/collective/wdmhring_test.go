package collective_test

import (
	"math"
	"testing"

	"wrht/internal/cluster"
	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/fabric"
	"wrht/internal/optical"
)

func TestWDMHRingAllReduceCorrect(t *testing.T) {
	cases := []struct{ n, m, w int }{
		{4, 2, 4}, {8, 4, 4}, {12, 3, 2}, {20, 5, 8}, {64, 8, 8},
		{100, 10, 64}, {30, 5, 2}, {16, 16, 64}, // single group = pure a2a
		{36, 6, 3}, // sub-step splitting (a2a needs 9 > 3)
	}
	rngSeed := int64(1)
	for _, c := range cases {
		s, err := collective.BuildWDMHRing(c.n, c.m, c.w)
		if err != nil {
			t.Fatalf("n=%d m=%d w=%d: %v", c.n, c.m, c.w, err)
		}
		if err := s.Validate(c.w); err != nil {
			t.Fatalf("n=%d m=%d w=%d: %v", c.n, c.m, c.w, err)
		}
		if err := optical.VerifySchedule(s); err != nil {
			t.Fatalf("n=%d m=%d w=%d MRR: %v", c.n, c.m, c.w, err)
		}
		in := randInputs(newRng(rngSeed), c.n, 3*c.n)
		rngSeed++
		want := cluster.ExpectedSum(in)
		cl, err := cluster.New(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Execute(s); err != nil {
			t.Fatal(err)
		}
		if err := cl.VerifyAllReduced(want, 0); err != nil {
			t.Fatalf("n=%d m=%d w=%d: %v", c.n, c.m, c.w, err)
		}
	}
}

func TestWDMHRingUnevenVector(t *testing.T) {
	s, err := collective.BuildWDMHRing(20, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	in := randInputs(newRng(42), 20, 53)
	want := cluster.ExpectedSum(in)
	cl, err := cluster.New(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Execute(s); err != nil {
		t.Fatal(err)
	}
	if err := cl.VerifyAllReduced(want, 0); err != nil {
		t.Fatal(err)
	}
}

func TestWDMHRingProfileMatchesSchedule(t *testing.T) {
	p := optical.DefaultParams()
	tp := core.TimeParams{BytesPerSec: p.BandwidthBps / 8, StepOverheadSec: p.ReconfigDelay}
	for _, c := range []struct{ n, m, w int }{{100, 10, 64}, {64, 8, 8}, {36, 6, 3}} {
		s, err := collective.BuildWDMHRing(c.n, c.m, c.w)
		if err != nil {
			t.Fatal(err)
		}
		prof := collective.WDMHRingProfile(c.n, c.m, c.w)
		if s.NumSteps() != prof.NumSteps() {
			t.Fatalf("n=%d m=%d w=%d: schedule %d steps, profile %d", c.n, c.m, c.w, s.NumSteps(), prof.NumSteps())
		}
		d := float64(c.n * c.m * 40) // divisible payload
		fromSched := tp.ProfileTime(core.ProfileOf(s), d)
		fromProf := tp.ProfileTime(prof, d)
		if rel := math.Abs(fromSched-fromProf) / fromSched; rel > 1e-6 {
			t.Fatalf("n=%d m=%d w=%d: schedule time %g vs profile %g", c.n, c.m, c.w, fromSched, fromProf)
		}
	}
}

func TestWDMHRingFewerStepsThanHRing(t *testing.T) {
	// The whole point: with wavelengths available, the intra phases
	// collapse. At n=100, m=10, w=64: H-Ring needs 2·9+2·9 = 36 steps,
	// WDM-HRing ⌈25/64⌉·2 + 18 = 20.
	h, err := collective.BuildHRing(100, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	wh, err := collective.BuildWDMHRing(100, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if wh.NumSteps() >= h.NumSteps() {
		t.Fatalf("WDM-HRing %d steps should beat H-Ring %d", wh.NumSteps(), h.NumSteps())
	}
}

func TestWDMHRingBandwidthBeatsWRHTOnHugePayloads(t *testing.T) {
	// For a BEiT-class payload at N=1024 the chunked WDM-HRing must beat
	// full-vector WRHT under the Eq-6 model (the crossover WRHT loses).
	p := optical.DefaultParams()
	d := 1.2e9
	wrhtProf, err := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 64})
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Fabric()
	if err != nil {
		t.Fatal(err)
	}
	eng := fabric.Engine{Fabric: f}
	tWRHT, err := eng.RunProfile(wrhtProf, d)
	if err != nil {
		t.Fatal(err)
	}
	tWH, err := eng.RunProfile(collective.WDMHRingProfile(1024, 32, 64), d)
	if err != nil {
		t.Fatal(err)
	}
	if tWH.Time >= tWRHT.Time {
		t.Fatalf("WDM-HRing %.4fs should beat WRHT %.4fs on 1.2 GB payloads", tWH.Time, tWRHT.Time)
	}
}

func TestWDMHRingValidation(t *testing.T) {
	if _, err := collective.BuildWDMHRing(10, 3, 4); err == nil {
		t.Fatal("m must divide n")
	}
	if _, err := collective.BuildWDMHRing(10, 5, 0); err == nil {
		t.Fatal("w=0 invalid")
	}
	s, err := collective.BuildWDMHRing(1, 2, 4)
	if err != nil || s.NumSteps() != 0 {
		t.Fatalf("n=1 should be empty: %v", err)
	}
}
