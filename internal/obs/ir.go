package obs

import (
	"fmt"

	"wrht/internal/ir"
)

// IRObserver implements ir.Observer, turning pass-pipeline events into
// registry counters and (when the tracer carries a wall clock) Perfetto
// spans on an "ir"/"passes" track. Like every producer hook in this
// package it is nil-safe piecewise: Tracer and Metrics may each be nil
// independently, and pass spans are wall-clock diagnostics — the IR
// passes run at build time, before any simulated clock exists — so they
// are only emitted when Tracer.Clock is set, mirroring the sweep
// engine's progress spans.
type IRObserver struct {
	Tracer  *Tracer
	Metrics *Registry
}

// NewIRObserver returns an observer emitting into tr and reg (either
// may be nil).
func NewIRObserver(tr *Tracer, reg *Registry) *IRObserver {
	return &IRObserver{Tracer: tr, Metrics: reg}
}

// irTrack is the Perfetto track carrying pass spans.
var irTrack = Track{Process: "ir", Name: "passes"}

// PassApplied implements ir.Observer.
func (o *IRObserver) PassApplied(e ir.PassEvent) {
	if o == nil {
		return
	}
	if m := o.Metrics; m != nil {
		prefix := "ir.pass." + e.Pass
		m.Counter(prefix + ".runs").Inc()
		if e.Changed {
			m.Counter(prefix + ".changed").Inc()
		}
		m.Counter(prefix + ".boundaries_gained").Add(int64(e.DisjointAfter - e.DisjointBefore))
		m.Counter(prefix + ".steps_added").Add(int64(e.StepsAfter - e.StepsBefore))
		// Pass durations are wall clock (the passes run at build time),
		// hence volatile. Passes are rare, so the registry lock per event
		// is fine.
		m.MarkVolatile("ir.pass.seconds")
		m.Histogram(Labeled("ir.pass.seconds", "pass", e.Pass)).Observe(e.Seconds)
	}
	if t := o.Tracer; t != nil && t.Clock != nil {
		end := t.Clock()
		t.Span(irTrack, e.Pass, end-e.Seconds, e.Seconds, Args{
			"changed":         e.Changed,
			"steps":           fmt.Sprintf("%d->%d", e.StepsBefore, e.StepsAfter),
			"disjoint_bounds": fmt.Sprintf("%d->%d", e.DisjointBefore, e.DisjointAfter),
		})
	}
}
