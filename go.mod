module wrht

go 1.22
