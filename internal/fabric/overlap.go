package fabric

import (
	"wrht/internal/core"
	"wrht/internal/rwa"
	"wrht/internal/topo"
)

// Reconfiguration–communication overlap (SWOT-style): while step k's
// circuits are still streaming, the control plane may already retune the
// MRRs for step k+1 — but only if none of step k+1's circuits claims a
// (direction, wavelength) resource that an active step-k circuit holds
// on an overlapping fiber arc, because retuning a resonator onto a
// wavelength that is passing live traffic corrupts it. The decision is
// delegated to the internal/rwa conflict model: the two steps' circuits
// are pooled with their already-assigned wavelengths and checked against
// a bitset occupancy index, one near-linear pass per boundary. A clash
// rejects the boundary, falling back to the sequential setup-then-
// transmit behaviour for that step.

// StepsDisjoint reports whether steps a and b can have their circuits up
// simultaneously: the pooled request set of both steps must be
// conflict-free under the rwa model. The probe's index and buffers are
// reused across calls, so a single probe serves every boundary of an
// engine run — or every boundary pricing of a planner candidate — with
// zero steady-state allocation instead of a fresh rwa.NewIndex per
// boundary (the allocation profile is pinned by
// TestOverlapProbeReusesAllocations). stats, when non-nil, accumulates
// the probe counters.
func StepsDisjoint(pb *rwa.Probe, ring topo.Ring, a, b core.Step, stats *rwa.Stats) bool {
	pb.Begin(len(a.Transfers) + len(b.Transfers))
	for _, st := range [2]core.Step{a, b} {
		for _, t := range st.Transfers {
			pb.Add(rwa.Request{Src: t.Src, Dst: t.Dst, Dir: t.Dir}, ring.ArcOf(t.Src, t.Dst, t.Dir), t.Wavelength)
		}
	}
	pb.Index().Stats = stats
	return pb.ConflictFree()
}
