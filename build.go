package wrht

import (
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/fault"
	"wrht/internal/phys"
	"wrht/internal/topo"
)

// Kind selects the collective a Build call constructs.
type Kind string

const (
	// KindWRHT is the paper's hierarchical-tree all-reduce (§4.1).
	KindWRHT Kind = "wrht"
	// KindRing is the classic ring all-reduce (§5.2).
	KindRing Kind = "ring"
	// KindBT is the binary-tree all-reduce (§5.2).
	KindBT Kind = "bt"
	// KindRD is recursive halving/doubling (§5.2); needs a power-of-two N.
	KindRD Kind = "rd"
	// KindDBTree is the double binary tree of [25] (NCCL's algorithm).
	KindDBTree Kind = "dbtree"
	// KindHRing is the hierarchical ring; WithGroupSize sets the group
	// size m (must divide N) and WithWavelengths the budget.
	KindHRing Kind = "hring"
	// KindWDMHRing is the beyond-paper WDM-enhanced hierarchical ring.
	KindWDMHRing Kind = "wdmhring"
	// KindTorus is WRHT on an R×C torus (§6.1); WithDims sets R and C.
	KindTorus Kind = "torus"
	// KindMesh is WRHT on an R×C mesh (§6.1); WithDims sets R and C.
	KindMesh Kind = "mesh"
	// KindSegment is WRHT among an ascending subset of ring positions
	// (§6.2); n is the full ring size and WithParticipants the subset.
	KindSegment Kind = "segment"
	// KindBroadcast is the WRHT-style broadcast; WithRoot sets the root.
	KindBroadcast Kind = "broadcast"
	// KindReduce is the WRHT-style reduction; WithRoot sets the root.
	KindReduce Kind = "reduce"
	// KindReduceScatter is the ring reduce-scatter.
	KindReduceScatter Kind = "reduce-scatter"
	// KindAllGather is the ring all-gather.
	KindAllGather Kind = "all-gather"
)

// buildSpec accumulates the functional options of one Build call. Each
// option records its name so Build can reject options the chosen kind
// does not consume — a silent no-op option is almost always a caller
// bug.
type buildSpec struct {
	set          map[string]bool
	wavelengths  int
	groupSize    int
	maxGroupSize int
	faults       *fault.Mask
	budget       phys.Budget
	rows, cols   int
	participants []int
	root         int
	noAllToAll   bool
}

// BuildOption configures Build.
type BuildOption func(*buildSpec)

func (bs *buildSpec) mark(name string) {
	if bs.set == nil {
		bs.set = map[string]bool{}
	}
	bs.set[name] = true
}

// WithWavelengths sets the per-waveguide wavelength budget w.
func WithWavelengths(w int) BuildOption {
	return func(bs *buildSpec) { bs.mark("WithWavelengths"); bs.wavelengths = w }
}

// WithGroupSize sets the grouped-node count m explicitly (zero selects
// the step-optimal m = 2w+1 for WRHT kinds; HRing and WDMHRing require
// it and need m | n).
func WithGroupSize(m int) BuildOption {
	return func(bs *buildSpec) { bs.mark("WithGroupSize"); bs.groupSize = m }
}

// WithMaxGroupSize clamps the group size to the §4.4
// insertion-loss/crosstalk bound m' (see MaxGroupSize to derive it from
// a Budget, or WithBudget to have Build derive it).
func WithMaxGroupSize(m int) BuildOption {
	return func(bs *buildSpec) { bs.mark("WithMaxGroupSize"); bs.maxGroupSize = m }
}

// WithBudget folds the §4.4 optical link budget into the construction:
// Build derives the MaxGroupSize clamp from it (tightened by any
// degraded-loss MRRs when combined with WithFaults).
func WithBudget(b Budget) BuildOption {
	return func(bs *buildSpec) { bs.mark("WithBudget"); bs.budget = b }
}

// WithFaults builds the schedule under a fault mask (degraded mode):
// dead wavelengths shrink the effective budget, failed nodes are
// excluded with representative re-election, cut segments and failed
// transceivers are routed around, and degraded-loss MRRs tighten the
// link budget (WithBudget, or the default TeraRack budget). An empty
// mask is bit-identical to the healthy construction.
func WithFaults(m *FaultMask) BuildOption {
	return func(bs *buildSpec) { bs.mark("WithFaults"); bs.faults = m }
}

// WithDims sets the torus/mesh dimensions R×C (R·C must equal n).
func WithDims(r, c int) BuildOption {
	return func(bs *buildSpec) { bs.mark("WithDims"); bs.rows, bs.cols = r, c }
}

// WithParticipants sets the ascending ring positions of a segment
// collective.
func WithParticipants(positions ...int) BuildOption {
	return func(bs *buildSpec) { bs.mark("WithParticipants"); bs.participants = positions }
}

// WithRoot sets the root node of a broadcast or reduction.
func WithRoot(r int) BuildOption {
	return func(bs *buildSpec) { bs.mark("WithRoot"); bs.root = r }
}

// WithoutAllToAll forces WRHT's final reduce step to gather to a single
// root even when the budget would allow the all-to-all exchange
// (θ = 2⌈log_m N⌉ instead of 2⌈log_m N⌉−1; the ablation configuration).
func WithoutAllToAll() BuildOption {
	return func(bs *buildSpec) { bs.mark("WithoutAllToAll"); bs.noAllToAll = true }
}

// buildAccepts lists, per kind, which options Build consumes.
var buildAccepts = map[Kind][]string{
	KindWRHT:          {"WithWavelengths", "WithGroupSize", "WithMaxGroupSize", "WithBudget", "WithFaults", "WithoutAllToAll"},
	KindRing:          {},
	KindBT:            {},
	KindRD:            {},
	KindDBTree:        {},
	KindHRing:         {"WithWavelengths", "WithGroupSize"},
	KindWDMHRing:      {"WithWavelengths", "WithGroupSize"},
	KindTorus:         {"WithWavelengths", "WithGroupSize", "WithDims"},
	KindMesh:          {"WithWavelengths", "WithGroupSize", "WithDims"},
	KindSegment:       {"WithWavelengths", "WithGroupSize", "WithParticipants"},
	KindBroadcast:     {"WithWavelengths", "WithRoot"},
	KindReduce:        {"WithWavelengths", "WithRoot"},
	KindReduceScatter: {},
	KindAllGather:     {},
}

// Build is the single schedule-construction entrypoint: it builds the
// kind's collective for n nodes under the given options. The positional
// quick-start constructors (NewSchedule, NewTorusSchedule,
// HRingSchedule, NewSegmentSchedule, …) are thin wrappers over it.
//
//	s, err := wrht.Build(wrht.KindWRHT, 1024, wrht.WithWavelengths(64))
//	s, err := wrht.Build(wrht.KindTorus, 1024, wrht.WithDims(32, 32), wrht.WithWavelengths(8))
//	s, err := wrht.Build(wrht.KindWRHT, 64, wrht.WithWavelengths(8),
//	        wrht.WithFaults(wrht.NewFaultMask(64).KillWavelength(3)))
//
// Options the chosen kind does not consume are an error, so a
// misdirected option can never silently no-op.
func Build(kind Kind, n int, opts ...BuildOption) (*Schedule, error) {
	var bs buildSpec
	for _, o := range opts {
		o(&bs)
	}
	accepted, ok := buildAccepts[kind]
	if !ok {
		return nil, fmt.Errorf("wrht: unknown collective kind %q", kind)
	}
	for name := range bs.set {
		found := false
		for _, a := range accepted {
			if a == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("wrht: option %s is not consumed by kind %q", name, kind)
		}
	}
	switch kind {
	case KindWRHT:
		return buildWRHT(n, bs)
	case KindRing:
		return collective.BuildRing(n), nil
	case KindBT:
		return collective.BuildBT(n), nil
	case KindRD:
		return collective.BuildRD(n)
	case KindDBTree:
		return collective.BuildDBTree(n), nil
	case KindHRing:
		return collective.BuildHRing(n, bs.groupSize, bs.wavelengths)
	case KindWDMHRing:
		return collective.BuildWDMHRing(n, bs.groupSize, bs.wavelengths)
	case KindTorus, KindMesh:
		if !bs.set["WithDims"] {
			return nil, fmt.Errorf("wrht: kind %q needs WithDims(r, c)", kind)
		}
		if bs.rows*bs.cols != n {
			return nil, fmt.Errorf("wrht: %dx%d %s has %d nodes, Build was given n=%d",
				bs.rows, bs.cols, kind, bs.rows*bs.cols, n)
		}
		if kind == KindTorus {
			return core.BuildWRHTTorus(topo.NewTorus(bs.rows, bs.cols), bs.wavelengths, bs.groupSize)
		}
		return core.BuildWRHTMesh(topo.NewMesh(bs.rows, bs.cols), bs.wavelengths, bs.groupSize)
	case KindSegment:
		if !bs.set["WithParticipants"] {
			return nil, fmt.Errorf("wrht: kind %q needs WithParticipants", kind)
		}
		return core.BuildWRHTSegment(n, bs.participants, bs.wavelengths, bs.groupSize)
	case KindBroadcast:
		return collective.BuildBroadcast(n, bs.wavelengths, bs.root)
	case KindReduce:
		return collective.BuildReduce(n, bs.wavelengths, bs.root)
	case KindReduceScatter:
		return collective.BuildReduceScatter(n), nil
	case KindAllGather:
		return collective.BuildAllGather(n), nil
	}
	return nil, fmt.Errorf("wrht: unknown collective kind %q", kind)
}

// buildWRHT assembles the core.Config for the WRHT kind, folding the
// link budget and fault mask into the MaxGroupSize clamp, and
// dispatches to the healthy or degraded construction.
func buildWRHT(n int, bs buildSpec) (*Schedule, error) {
	cfg := core.Config{
		N:               n,
		Wavelengths:     bs.wavelengths,
		GroupSize:       bs.groupSize,
		MaxGroupSize:    bs.maxGroupSize,
		DisableAllToAll: bs.noAllToAll,
	}
	_, _, _, _, mrrs := bs.faults.Counts()
	if bs.set["WithBudget"] || mrrs > 0 {
		b := bs.budget
		if !bs.set["WithBudget"] {
			b = phys.DefaultBudget()
		}
		// The clamp cap is the Lemma-1 optimum 2w+1: a larger m is never
		// selected, so a looser bound must not override a caller's
		// explicit WithMaxGroupSize.
		mp := bs.faults.MaxGroupSize(b, n, 2*bs.wavelengths+1)
		if cfg.MaxGroupSize == 0 || mp < cfg.MaxGroupSize {
			cfg.MaxGroupSize = mp
		}
	}
	if bs.faults.Empty() {
		return core.BuildWRHT(cfg)
	}
	return core.BuildWRHTMasked(cfg, bs.faults)
}
