package fabric

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
	"wrht/internal/trace"
)

// stubFabric is a minimal deterministic backend: setup is a constant,
// transmission is perByte times the step's largest payload.
type stubFabric struct {
	setup     float64
	perByte   float64
	keyed     bool
	budget    int
	budgetErr error
	checkErr  error
	costCalls int
}

func (f *stubFabric) Name() string                       { return "stub" }
func (f *stubFabric) CheckSchedule(*core.Schedule) error { return f.checkErr }
func (f *stubFabric) CircuitBudget(bool) (int, error)    { return f.budget, f.budgetErr }
func (f *stubFabric) GroupCost(bytes float64) StepCost {
	ser := bytes * f.perByte
	return StepCost{Setup: f.setup, Serialization: ser, Total: f.setup + ser, MaxBytes: bytes}
}

func (f *stubFabric) StepCost(st core.Step, elems int) StepCost {
	f.costCalls++
	var maxBytes float64
	for _, t := range st.Transfers {
		if b := float64(t.Chunk.Bytes(elems)); b > maxBytes {
			maxBytes = b
		}
	}
	return f.GroupCost(maxBytes)
}

func (f *stubFabric) StepKey(st core.Step, elems int) (string, bool) {
	if !f.keyed {
		return "", false
	}
	var sb strings.Builder
	for _, t := range st.Transfers {
		fmt.Fprintf(&sb, "%d>%d:%d;", t.Src, t.Dst, t.Chunk.Bytes(elems))
	}
	return sb.String(), true
}

func whole() tensor.Chunk { return tensor.Chunk{Index: 0, Of: 1} }

// step builds a one-transfer step src->dst on wavelength w, CW.
func step(src, dst, w int) core.Step {
	return core.Step{Transfers: []core.Transfer{
		{Src: src, Dst: dst, Chunk: whole(), Dir: topo.CW, Wavelength: w},
	}}
}

func sched(n int, steps ...core.Step) *core.Schedule {
	return &core.Schedule{Algorithm: "test", Ring: topo.NewRing(n), Steps: steps}
}

func TestMemoizationSolvesIdenticalStepsOnce(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 1, keyed: true}
	s := sched(8, step(0, 1, 0), step(0, 1, 0), step(2, 3, 0), step(0, 1, 0))
	res, err := Engine{Fabric: f}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	if f.costCalls != 2 {
		t.Errorf("StepCost called %d times for 2 distinct steps", f.costCalls)
	}
	if res.Steps != 4 || len(res.PerStep) != 4 {
		t.Errorf("result covers %d/%d steps, want 4/4", res.Steps, len(res.PerStep))
	}
	f2 := &stubFabric{setup: 1, perByte: 1}
	res2, err := Engine{Fabric: f2}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	if f2.costCalls != 4 {
		t.Errorf("unkeyed fabric should cost every step, got %d calls", f2.costCalls)
	}
	if res2.Time != res.Time {
		t.Errorf("memoized time %g != unmemoized %g", res.Time, res2.Time)
	}
}

func TestOverlapHidesSetupUnderDisjointPreviousStep(t *testing.T) {
	// Steps 0->1 and 2->3 share (CW, λ0) but their ring arcs are
	// disjoint, so step 2's setup can retune under step 1's transmission.
	f := &stubFabric{setup: 1, perByte: 0.1}
	s := sched(8, step(0, 1, 0), step(2, 3, 0))
	dBytes := 400.0 // transmission 40 >> setup 1
	base, err := Engine{Fabric: f}.RunSchedule(s, dBytes)
	if err != nil {
		t.Fatal(err)
	}
	over, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s, dBytes)
	if err != nil {
		t.Fatal(err)
	}
	if over.OverlapSaved != f.setup {
		t.Errorf("OverlapSaved = %g, want full setup %g", over.OverlapSaved, f.setup)
	}
	if got, want := base.Time-over.Time, over.OverlapSaved; got != want {
		t.Errorf("time drop %g != OverlapSaved %g", got, want)
	}
	if over.PerStep[0].Overlapped != 0 {
		t.Error("first step can never overlap: there is no previous transmission")
	}
	if over.PerStep[1].Overlapped != f.setup {
		t.Errorf("step 1 overlapped %g, want %g", over.PerStep[1].Overlapped, f.setup)
	}
	// OverheadTime still reports the full setup cost; only Time shrinks.
	if over.OverheadTime != base.OverheadTime {
		t.Errorf("OverheadTime changed under overlap: %g != %g", over.OverheadTime, base.OverheadTime)
	}
}

func TestOverlapClampsToPreviousTransmission(t *testing.T) {
	// Transmission 0.4 < setup 1: only 0.4 of the setup can hide.
	f := &stubFabric{setup: 1, perByte: 0.001}
	s := sched(8, step(0, 1, 0), step(2, 3, 0))
	over, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	// The engine recovers the previous transmission as Total − Setup,
	// so the expectation mirrors that expression.
	wantHidden := (f.setup + 400*0.001) - f.setup
	if over.OverlapSaved != wantHidden {
		t.Errorf("OverlapSaved = %g, want clamp to previous transmission %g", over.OverlapSaved, wantHidden)
	}
}

func TestOverlapRejectedOnConflictingSteps(t *testing.T) {
	// Arcs [0,4) and [2,6) overlap on the same (CW, λ0) resources: the
	// rwa validator must reject the boundary and the engine must fall
	// back to sequential setup.
	f := &stubFabric{setup: 1, perByte: 0.1}
	s := sched(8, step(0, 4, 0), step(2, 6, 0))
	over, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	if over.OverlapSaved != 0 {
		t.Errorf("conflicting circuits overlapped: saved %g", over.OverlapSaved)
	}
	// Same arcs on different wavelengths are disjoint again.
	s2 := sched(8, step(0, 4, 0), step(2, 6, 1))
	over2, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s2, 400)
	if err != nil {
		t.Fatal(err)
	}
	if over2.OverlapSaved != f.setup {
		t.Errorf("distinct-wavelength circuits should overlap, saved %g", over2.OverlapSaved)
	}
}

func TestOverlapNoopWhenSetupFree(t *testing.T) {
	f := &stubFabric{setup: 0, perByte: 0.1}
	s := sched(8, step(0, 1, 0), step(2, 3, 0))
	over, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	if over.OverlapSaved != 0 {
		t.Errorf("setup-free fabric saved %g", over.OverlapSaved)
	}
}

func TestProfileRunRejectsOverlap(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 1}
	pr := core.Profile{Algorithm: "p", Groups: []core.ProfileGroup{{Steps: 2, FracOfD: 1}}}
	if _, err := (Engine{Fabric: f, Opts: Options{Overlap: true}}).RunProfile(pr, 100); err == nil {
		t.Fatal("profile run accepted overlap mode")
	}
	res, err := Engine{Fabric: f}.RunProfile(pr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * (1 + 100.0); res.Time != want {
		t.Errorf("profile time %g, want %g", res.Time, want)
	}
}

func TestEngineSurfacesFabricErrors(t *testing.T) {
	boom := errors.New("boom")
	s := sched(8, step(0, 1, 0))
	if _, err := (Engine{Fabric: &stubFabric{checkErr: boom}}).RunSchedule(s, 100); !errors.Is(err, boom) {
		t.Errorf("CheckSchedule error lost: %v", err)
	}
	if _, err := (Engine{Fabric: &stubFabric{budgetErr: boom}}).RunSchedule(s, 100); !errors.Is(err, boom) {
		t.Errorf("CircuitBudget error lost: %v", err)
	}
	pr := core.Profile{Groups: []core.ProfileGroup{{Steps: 1, FracOfD: 1}}}
	if _, err := (Engine{Fabric: &stubFabric{budgetErr: boom}}).RunProfile(pr, 100); !errors.Is(err, boom) {
		t.Errorf("profile CircuitBudget error lost: %v", err)
	}
}

func TestValidateWavelengthsEnforcesBudget(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 1, budget: 1}
	s := sched(8, step(0, 1, 3)) // wavelength 3 beyond budget 1
	if _, err := (Engine{Fabric: f, Opts: Options{ValidateWavelengths: true}}).RunSchedule(s, 100); err == nil {
		t.Fatal("over-budget wavelength accepted")
	}
	if _, err := (Engine{Fabric: f}).RunSchedule(s, 100); err != nil {
		t.Fatalf("validation off should not reject: %v", err)
	}
}

func TestBreakdownRunShape(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 0.1}
	s := sched(8, step(0, 1, 0), step(2, 3, 0))
	res, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	run := BreakdownRun("breakdown", res)
	bySeries := map[string][]trace.Point{}
	for _, s := range run.Series {
		bySeries[s.Name] = s.Points
	}
	for _, name := range []string{"reconfig", "serialization", "oeo", "router-delay", "overlapped"} {
		if len(bySeries[name]) != 2 {
			t.Errorf("series %q has %d points, want 2", name, len(bySeries[name]))
		}
	}
	if pt := bySeries["overlapped"][1]; pt.Y != f.setup || !strings.HasPrefix(pt.X, "1:") {
		t.Errorf("overlapped[1] = %+v, want setup %g hidden at step 1", pt, f.setup)
	}
	if run.Scalars["overlap-saved"] != res.OverlapSaved || run.Scalars["time"] != res.Time {
		t.Errorf("scalars %v disagree with result %+v", run.Scalars, res)
	}
	if run.Params["fabric"] != "stub" || run.Params["algorithm"] != "test" {
		t.Errorf("params %v", run.Params)
	}
}

func TestRunBucketsSumsProfiles(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 1}
	pr := core.Profile{Algorithm: "p", Groups: []core.ProfileGroup{{Steps: 3, FracOfD: 0.5}}}
	res, err := Engine{Fabric: f}.RunBuckets(pr, []float64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	one, _ := Engine{Fabric: f}.RunProfile(pr, 100)
	two, _ := Engine{Fabric: f}.RunProfile(pr, 200)
	if res.Time != one.Time+two.Time || res.Steps != one.Steps+two.Steps {
		t.Errorf("buckets %+v != %+v + %+v", res, one, two)
	}
}

// TestRunBucketsCarriesEveryField walks the Result struct by reflection
// so a future additive field cannot silently be dropped from the bucket
// sum the way OverlapSaved once was: every numeric field of the bucket
// total must equal the sum over per-bucket results, every string field
// must match, and PerStep must stay nil (the documented omission — the
// breakdown would not identify which bucket a step belongs to).
func TestRunBucketsCarriesEveryField(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 1}
	pr := core.Profile{Algorithm: "p", Groups: []core.ProfileGroup{{Steps: 3, FracOfD: 0.5}, {Steps: 1, FracOfD: 1}}}
	buckets := []float64{100, 200, 400}
	total, err := Engine{Fabric: f}.RunBuckets(pr, buckets)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]Result, len(buckets))
	for i, b := range buckets {
		if parts[i], err = (Engine{Fabric: f}).RunProfile(pr, b); err != nil {
			t.Fatal(err)
		}
	}
	tv := reflect.ValueOf(total)
	rt := tv.Type()
	for fi := 0; fi < rt.NumField(); fi++ {
		name := rt.Field(fi).Name
		switch rt.Field(fi).Type.Kind() {
		case reflect.Float64:
			want := 0.0
			for _, p := range parts {
				want += reflect.ValueOf(p).Field(fi).Float()
			}
			if got := tv.Field(fi).Float(); got != want {
				t.Errorf("field %s: bucket total %g != per-bucket sum %g", name, got, want)
			}
		case reflect.Int:
			want := int64(0)
			for _, p := range parts {
				want += reflect.ValueOf(p).Field(fi).Int()
			}
			if got := tv.Field(fi).Int(); got != want {
				t.Errorf("field %s: bucket total %d != per-bucket sum %d", name, got, want)
			}
		case reflect.String:
			for _, p := range parts {
				if got, want := tv.Field(fi).String(), reflect.ValueOf(p).Field(fi).String(); got != want {
					t.Errorf("field %s: bucket total %q != per-bucket %q", name, got, want)
				}
			}
		case reflect.Slice:
			if name != "PerStep" {
				t.Errorf("unexpected slice field %s: decide how RunBuckets handles it", name)
			} else if !tv.Field(fi).IsNil() {
				t.Error("PerStep must stay nil in bucket totals (documented omission)")
			}
		default:
			t.Errorf("field %s has kind %s: extend this test", name, rt.Field(fi).Type.Kind())
		}
	}
}

// manyBoundarySchedule builds a 32-step schedule whose consecutive steps
// occupy disjoint one-segment arcs, so overlap mode probes (and accepts)
// every one of its 31 boundaries.
func manyBoundarySchedule() *core.Schedule {
	steps := make([]core.Step, 32)
	for i := range steps {
		steps[i] = step(2*i, 2*i+1, 0)
	}
	return sched(64, steps...)
}

// TestOverlapProbeReusesAllocations pins the allocation profile of the
// overlap path: one occupancy index (plus its request buffers) serves
// all boundaries of a run, where the old disjointSteps built a fresh
// rwa.NewIndex — roughly ten allocations — per boundary.
func TestOverlapProbeReusesAllocations(t *testing.T) {
	s := manyBoundarySchedule()
	f := &stubFabric{setup: 1, perByte: 0.1}
	eng := Engine{Fabric: f, Opts: Options{Overlap: true}}
	run := func() {
		if _, err := eng.RunSchedule(s, 400); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up outside the measurement
	allocs := testing.AllocsPerRun(10, run)
	// ~16 today: the PerStep growth doublings, one probe + index, and the
	// three pooled request buffers. The pre-fix engine cost ~10 per
	// boundary (~310 for this schedule); 25 leaves headroom for runtime
	// jitter while still failing hard on any per-boundary regression.
	if allocs > 25 {
		t.Errorf("overlap run allocates %.0f times for 31 boundaries, want <= 25 (one shared probe index)", allocs)
	}
}

func TestPrecomputedBoundariesMatchProbe(t *testing.T) {
	// Boundary 0 (steps 0-1) is rwa-disjoint; boundary 1 (steps 1-2)
	// clashes on (CW, λ0) over overlapping arcs.
	s := sched(8, step(0, 1, 0), step(2, 3, 0), step(1, 4, 0))
	f := &stubFabric{setup: 1, perByte: 0.1}
	probed, err := Engine{Fabric: f, Opts: Options{Overlap: true}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Engine{Fabric: f, Opts: Options{Overlap: true, BoundaryDisjoint: []bool{true, false}}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(probed, pre) {
		t.Errorf("precomputed boundaries diverge from probing:\nprobe: %+v\npre:   %+v", probed, pre)
	}
	// The supplied decisions are authoritative: flipping them flips the
	// hidden setup even though the circuits themselves did not change.
	flipped, err := Engine{Fabric: f, Opts: Options{Overlap: true, BoundaryDisjoint: []bool{false, true}}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	if flipped.PerStep[1].Overlapped != 0 || flipped.PerStep[2].Overlapped != f.setup {
		t.Errorf("flipped decisions not honored: %+v", flipped.PerStep)
	}
	// A mismatched length is a hard error, not a silent truncation.
	if _, err := (Engine{Fabric: f, Opts: Options{Overlap: true, BoundaryDisjoint: []bool{true}}}).RunSchedule(s, 400); err == nil {
		t.Error("BoundaryDisjoint of wrong length accepted")
	}
	// Without overlap mode the precomputed decisions are ignored.
	base, err := Engine{Fabric: f}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Engine{Fabric: f, Opts: Options{BoundaryDisjoint: []bool{true, true}}}.RunSchedule(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, off) {
		t.Error("BoundaryDisjoint leaked into a non-overlap run")
	}
}

func TestRunScheduleRejectsGarbagePayloadSizes(t *testing.T) {
	f := &stubFabric{setup: 1, perByte: 1}
	s := sched(8, step(0, 1, 0))
	for _, d := range []float64{math.NaN(), math.Inf(1), -4} {
		if _, err := (Engine{Fabric: f}).RunSchedule(s, d); err == nil {
			t.Errorf("RunSchedule accepted payload size %g", d)
		}
		if _, err := (Engine{Fabric: f}).RunScheduleFaulted(s, d, FaultOptions{}); err == nil {
			t.Errorf("RunScheduleFaulted accepted payload size %g", d)
		}
	}
}
