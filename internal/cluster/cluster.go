// Package cluster executes collective schedules on real data: N worker
// goroutines, one per ring node, exchange float32 payloads through
// per-node mailboxes following the schedule's steps. It is the
// correctness backstop for every schedule constructor — after an
// all-reduce schedule runs, every worker must hold the elementwise sum
// (or average) of all initial vectors — and the gradient-synchronisation
// engine of the numeric training substrate (internal/train).
//
// Semantics mirror the circuit-switched optical system: steps are bulk
// synchronous; within a step every payload is read from pre-step state,
// and reductions apply before the next step begins (§4.2). Incoming
// payloads at a node are reduced in sender order so floating-point sums
// are deterministic across runs.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"wrht/internal/core"
	"wrht/internal/tensor"
)

// Cluster holds the per-node vector state.
type Cluster struct {
	n    int
	vecs []tensor.Vector
}

// New creates a cluster of n workers, each owning a copy of the
// corresponding input vector. All inputs must share one length.
func New(inputs []tensor.Vector) (*Cluster, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("cluster: no inputs")
	}
	l := len(inputs[0])
	vecs := make([]tensor.Vector, len(inputs))
	for i, v := range inputs {
		if len(v) != l {
			return nil, fmt.Errorf("cluster: input %d has length %d, want %d", i, len(v), l)
		}
		vecs[i] = v.Clone()
	}
	return &Cluster{n: len(inputs), vecs: vecs}, nil
}

// Vector returns node i's current vector (aliased, not copied).
func (c *Cluster) Vector(i int) tensor.Vector { return c.vecs[i] }

// Vectors returns all node vectors (aliased).
func (c *Cluster) Vectors() []tensor.Vector { return c.vecs }

// message is one delivered payload.
type message struct {
	src   int
	chunk tensor.Chunk
	op    tensor.ReduceOp
	data  tensor.Vector
}

// Execute runs the schedule to completion. Each step spawns the sending
// work across worker goroutines, barriers, then applies the received
// payloads. It returns an error if the schedule references nodes outside
// the cluster.
func (c *Cluster) Execute(s *core.Schedule) error {
	if s.Ring.N != c.n {
		return fmt.Errorf("cluster: schedule is for %d nodes, cluster has %d", s.Ring.N, c.n)
	}
	for si, st := range s.Steps {
		if err := c.executeStep(st); err != nil {
			return fmt.Errorf("cluster: step %d: %w", si, err)
		}
	}
	return nil
}

func (c *Cluster) executeStep(st core.Step) error {
	// Group incoming transfers by destination.
	inbox := make(map[int][]message, c.n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, len(st.Transfers))
	// Send phase: every worker snapshots its outgoing payloads from
	// pre-step state concurrently.
	for _, t := range st.Transfers {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			if t.Src < 0 || t.Src >= c.n || t.Dst < 0 || t.Dst >= c.n {
				errs <- fmt.Errorf("transfer %v out of range", t)
				return
			}
			payload := t.Chunk.Slice(c.vecs[t.Src]).Clone()
			mu.Lock()
			inbox[t.Dst] = append(inbox[t.Dst], message{src: t.Src, chunk: t.Chunk, op: t.Op, data: payload})
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	// Apply phase: every destination reduces its inbox in sender order.
	var awg sync.WaitGroup
	for dst, msgs := range inbox {
		dst, msgs := dst, msgs
		awg.Add(1)
		go func() {
			defer awg.Done()
			sort.Slice(msgs, func(i, j int) bool { return msgs[i].src < msgs[j].src })
			c.applyInbox(dst, msgs)
		}()
	}
	awg.Wait()
	return nil
}

// applyInbox reduces the sorted messages into dst's vector. When a node
// receives several sum payloads over one identical chunk (the all-to-all
// exchange), the reduction is computed in global node-index order with
// the node's own contribution slotted at its own index, so every node of
// an all-to-all obtains the bit-identical float32 sum regardless of its
// ring position — the determinism guarantee real collectives (e.g.
// NCCL) provide. Mixed or single payloads apply sequentially.
func (c *Cluster) applyInbox(dst int, msgs []message) {
	uniformSum := len(msgs) > 1
	for _, m := range msgs {
		if m.op != tensor.OpSum || m.chunk != msgs[0].chunk || m.chunk.Sub != nil {
			uniformSum = false
			break
		}
	}
	if !uniformSum {
		for _, m := range msgs {
			m.op.Apply(m.chunk.Slice(c.vecs[dst]), m.data)
		}
		return
	}
	target := msgs[0].chunk.Slice(c.vecs[dst])
	acc := tensor.New(len(target))
	selfApplied := false
	addSelf := func() {
		tensor.Add(acc, target)
		selfApplied = true
	}
	for _, m := range msgs {
		if !selfApplied && dst < m.src {
			addSelf()
		}
		tensor.Add(acc, m.data)
	}
	if !selfApplied {
		addSelf()
	}
	copy(target, acc)
}

// AllReduce is the high-level entry point: it executes the schedule and,
// if average is true, divides every vector by the node count afterwards
// (Eq 5's 1/n factor).
func (c *Cluster) AllReduce(s *core.Schedule, average bool) error {
	if err := c.Execute(s); err != nil {
		return err
	}
	if average {
		// Divide rather than multiply by the reciprocal: IEEE division is
		// correctly rounded, so exact cases (e.g. 105/15) stay exact.
		n := float32(c.n)
		for _, v := range c.vecs {
			for i := range v {
				v[i] /= n
			}
		}
	}
	return nil
}

// ExpectedSum returns the elementwise float64 sum of the inputs, the
// ground truth an all-reduce must reach on every node.
func ExpectedSum(inputs []tensor.Vector) []float64 {
	if len(inputs) == 0 {
		return nil
	}
	out := make([]float64, len(inputs[0]))
	for _, v := range inputs {
		for i, x := range v {
			out[i] += float64(x)
		}
	}
	return out
}

// VerifyAllReduced checks that every node's vector matches the expected
// sums within tol, returning a descriptive error on the first mismatch.
func (c *Cluster) VerifyAllReduced(expected []float64, tol float64) error {
	for node, v := range c.vecs {
		if len(v) != len(expected) {
			return fmt.Errorf("cluster: node %d length %d != %d", node, len(v), len(expected))
		}
		for i, x := range v {
			if d := float64(x) - expected[i]; d > tol || d < -tol {
				return fmt.Errorf("cluster: node %d element %d = %g, want %g (±%g)", node, i, x, expected[i], tol)
			}
		}
	}
	return nil
}
