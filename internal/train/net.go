package train

import (
	"fmt"
	"math"

	"wrht/internal/tensor"
)

// Net is a sequential stack of layers with a flattened parameter view,
// so the whole model's gradient is one vector — exactly the all-reduce
// payload d of the communication model.
type Net struct {
	Layers []Layer
}

// NewNet validates that consecutive layers' widths chain and returns the
// network.
func NewNet(layers ...Layer) *Net {
	return &Net{Layers: layers}
}

// NumParams returns the total trainable parameter count.
func (n *Net) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		w, _ := l.Params()
		total += len(w)
	}
	return total
}

// Forward runs the whole batch through the network.
func (n *Net) Forward(in [][]float32) [][]float32 {
	for _, l := range n.Layers {
		in = l.Forward(in)
	}
	return in
}

// Backward propagates the loss gradient and accumulates parameter
// gradients in every layer.
func (n *Net) Backward(gradOut [][]float32) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		gradOut = n.Layers[i].Backward(gradOut)
	}
}

// ZeroGrad clears all accumulated gradients.
func (n *Net) ZeroGrad() {
	for _, l := range n.Layers {
		l.ZeroGrad()
	}
}

// Gradients copies all layer gradients into a single flat vector.
func (n *Net) Gradients() tensor.Vector {
	out := tensor.New(n.NumParams())
	at := 0
	for _, l := range n.Layers {
		_, g := l.Params()
		copy(out[at:], g)
		at += len(g)
	}
	return out
}

// SetGradients overwrites all layer gradients from a flat vector (the
// result of the all-reduce).
func (n *Net) SetGradients(v tensor.Vector) {
	if len(v) != n.NumParams() {
		panic(fmt.Sprintf("train: gradient vector %d, want %d", len(v), n.NumParams()))
	}
	at := 0
	for _, l := range n.Layers {
		_, g := l.Params()
		copy(g, v[at:at+len(g)])
		at += len(g)
	}
}

// Weights copies all layer weights into a single flat vector.
func (n *Net) Weights() tensor.Vector {
	out := tensor.New(n.NumParams())
	at := 0
	for _, l := range n.Layers {
		w, _ := l.Params()
		copy(out[at:], w)
		at += len(w)
	}
	return out
}

// SetWeights overwrites all layer weights from a flat vector.
func (n *Net) SetWeights(v tensor.Vector) {
	if len(v) != n.NumParams() {
		panic(fmt.Sprintf("train: weight vector %d, want %d", len(v), n.NumParams()))
	}
	at := 0
	for _, l := range n.Layers {
		w, _ := l.Params()
		copy(w, v[at:at+len(w)])
		at += len(w)
	}
}

// SGDStep applies W ← W − lr·∇W to every layer (Eq 4; the paper writes
// the update with +σ∇W, absorbing the sign into the gradient).
func (n *Net) SGDStep(lr float32) {
	for _, l := range n.Layers {
		w, g := l.Params()
		if w == nil {
			continue
		}
		tensor.AXPY(w, -lr, g)
	}
}

// MSELoss computes the mean-squared-error loss over the batch and the
// gradient with respect to the predictions: L = mean_b mean_i
// (p−t)²/2. The mean over the batch makes gradient averaging across
// data-parallel workers equal the full-batch gradient (Eq 5).
func MSELoss(pred, target [][]float32) (float64, [][]float32) {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("train: MSE batch %d vs %d", len(pred), len(target)))
	}
	grad := make([][]float32, len(pred))
	var loss float64
	inv := 1 / float32(len(pred))
	for b := range pred {
		g := make([]float32, len(pred[b]))
		for i := range pred[b] {
			d := pred[b][i] - target[b][i]
			loss += float64(d) * float64(d) / 2
			g[i] = d * inv
		}
		grad[b] = g
	}
	return loss / float64(len(pred)), grad
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss against
// integer labels and its gradient with respect to the logits.
func SoftmaxCrossEntropy(logits [][]float32, labels []int) (float64, [][]float32) {
	if len(logits) != len(labels) {
		panic(fmt.Sprintf("train: CE batch %d vs %d labels", len(logits), len(labels)))
	}
	grad := make([][]float32, len(logits))
	var loss float64
	inv := 1 / float32(len(logits))
	for b, z := range logits {
		maxv := z[0]
		for _, v := range z {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range z {
			sum += math.Exp(float64(v - maxv))
		}
		lse := math.Log(sum) + float64(maxv)
		loss += lse - float64(z[labels[b]])
		g := make([]float32, len(z))
		for i, v := range z {
			p := float32(math.Exp(float64(v) - lse))
			g[i] = p * inv
		}
		g[labels[b]] -= inv
		grad[b] = g
	}
	return loss / float64(len(logits)), grad
}

// Accuracy returns the fraction of samples whose argmax matches the
// label.
func Accuracy(logits [][]float32, labels []int) float64 {
	if len(logits) == 0 {
		return 0
	}
	hits := 0
	for b, z := range logits {
		best := 0
		for i, v := range z {
			if v > z[best] {
				best = i
			}
		}
		if best == labels[b] {
			hits++
		}
	}
	return float64(hits) / float64(len(logits))
}
