package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wrht/internal/core"
	"wrht/internal/fabric"
	"wrht/internal/obs"
	"wrht/internal/optical"
)

var update = flag.Bool("update", false, "regenerate golden trace files")

// goldenRun executes the N=16, w=8 WRHT schedule with overlap on the
// optical fabric under a fresh tracer+registry. The configuration is
// chosen because its gather→broadcast boundary is rwa-disjoint, so the
// trace contains a "reconfig (overlap-hidden)" span (the N=64 w=8
// default hides nothing).
func goldenRun(t *testing.T) (*obs.Tracer, *obs.Registry) {
	t.Helper()
	s, err := core.BuildWRHT(core.Config{N: 16, Wavelengths: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := optical.DefaultParams()
	p.Wavelengths = 8
	f, err := p.Fabric()
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	eng := fabric.Engine{Fabric: f, Opts: fabric.Options{
		Overlap:  true,
		Observer: obs.NewFabricObserver(tr, reg, "optical+overlap/WRHT"),
	}}
	if _, err := eng.RunSchedule(s, 100e6); err != nil {
		t.Fatal(err)
	}
	return tr, reg
}

// TestGoldenPerfettoTrace pins the exact bytes of the small WRHT run's
// Perfetto JSON: simulated-time-only timestamps plus deterministic
// track registration make the file a pure function of the run.
// Regenerate with `go test ./internal/obs -run Golden -update` after an
// intentional format change.
func TestGoldenPerfettoTrace(t *testing.T) {
	tr, _ := goldenRun(t)
	var got bytes.Buffer
	if _, err := tr.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "wrht_n16_w8.trace.json")
	if *update {
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("trace differs from golden file %s (len %d vs %d); run with -update if the change is intentional",
			path, got.Len(), len(want))
	}
	// Byte-identical across runs, not just against the checked-in file.
	tr2, _ := goldenRun(t)
	var again bytes.Buffer
	if _, err := tr2.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), again.Bytes()) {
		t.Fatal("two identical runs emitted different trace bytes")
	}
}

// TestGoldenRunCounters asserts the registry side of the same run: the
// N=16 m=17 schedule is one gather step and one broadcast step, whose
// single boundary hides a full 25 µs reconfiguration.
func TestGoldenRunCounters(t *testing.T) {
	_, reg := goldenRun(t)
	s := reg.Snapshot()
	if got := s.Counters["fabric.steps"]; got != 2 {
		t.Errorf("fabric.steps = %d, want 2", got)
	}
	if got := s.Counters["fabric.circuits.reserved"]; got != 30 {
		t.Errorf("fabric.circuits.reserved = %d, want 30 (15 transfers per step)", got)
	}
	if got := s.Counters["fabric.overlap.boundaries_hidden"]; got != 1 {
		t.Errorf("fabric.overlap.boundaries_hidden = %d, want 1", got)
	}
	hidden := s.Gauges["fabric.overlap.hidden_seconds"]
	if hidden < 24.9e-6 || hidden > 25.1e-6 {
		t.Errorf("fabric.overlap.hidden_seconds = %g, want 25e-6", hidden)
	}
}
