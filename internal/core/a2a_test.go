package core

import (
	"testing"

	"wrht/internal/rwa"
	"wrht/internal/topo"
)

// TestAllToAllWavelengthsVsFirstFit compares the paper's ⌈r²/8⌉ formula
// (AllToAllWavelengths) with the wavelength count first-fit actually
// produces on the all-to-all step's request set — all ordered pairs
// among r representatives routed the shortest ring direction, exactly as
// allToAllStep builds them. The deterministic greedy tracks the formula
// from below within 1 (odd r, where the true optimum is (r²-1)/8) and
// from above within 50% (≈30% beyond tiny rings, ≈20% at r=64); a few
// exact values are pinned so any drift in Assign shows up here.
func TestAllToAllWavelengthsVsFirstFit(t *testing.T) {
	pinned := map[int]int{2: 1, 8: 10, 15: 32, 22: 73, 33: 165, 64: 615}
	for r := 2; r <= 64; r++ {
		ring := topo.NewRing(r)
		var reqs []rwa.Request
		for src := 0; src < r; src++ {
			for dst := 0; dst < r; dst++ {
				if src == dst {
					continue
				}
				dir, _ := ring.ShortestDir(src, dst)
				reqs = append(reqs, rwa.Request{Src: src, Dst: dst, Dir: dir})
			}
		}
		asn, used := rwa.Assign(ring, reqs, rwa.FirstFit, nil)
		if err := rwa.Validate(ring, reqs, asn, used); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		bound := AllToAllWavelengths(r)
		if used < bound-1 {
			t.Errorf("r=%d: first-fit used %d wavelengths, below paper bound %d - 1", r, used, bound)
		}
		if used > bound+bound/2 {
			t.Errorf("r=%d: first-fit used %d wavelengths, beyond 1.5× paper bound %d", r, used, bound)
		}
		if want, ok := pinned[r]; ok && used != want {
			t.Errorf("r=%d: first-fit used %d wavelengths, pinned value %d", r, used, want)
		}
	}
}

func TestAllToAllRequirementMeetsPaperBoundOddK(t *testing.T) {
	// For odd k the tiling construction meets ⌈k²/8⌉ exactly.
	for k := 3; k <= 129; k += 2 {
		req := AllToAllRequirement(k)
		bound := AllToAllWavelengths(k)
		if req > bound {
			t.Errorf("k=%d: requirement %d > paper bound %d", k, req, bound)
		}
	}
}

func TestAllToAllRequirementNearBoundEvenK(t *testing.T) {
	// For even k the construction stays within ⌈k/8⌉+1 of the bound.
	for k := 2; k <= 128; k += 2 {
		req := AllToAllRequirement(k)
		bound := AllToAllWavelengths(k)
		slack := k/8 + 1
		if req > bound+slack {
			t.Errorf("k=%d: requirement %d > bound %d + slack %d", k, req, bound, slack)
		}
	}
}

func TestAllToAllStepConflictFree(t *testing.T) {
	// Representatives at arbitrary (uneven) positions: the construction
	// must stay conflict-free within its own wavelength requirement.
	cases := [][]int{
		{2, 7, 12},                       // Fig 2 representatives on a 15-ring
		{0, 1, 2, 3},                     // tightly packed
		{0, 10, 11, 40, 41, 90},          // wildly uneven
		{5, 20, 35, 50, 65, 80, 95, 110}, // 8 evenly spaced (Table 1 case)
	}
	sizes := []int{15, 10, 100, 128}
	for i, reps := range cases {
		ring := topo.NewRing(sizes[i])
		st := buildAllToAllStep(ring, reps)
		s := &Schedule{Algorithm: "a2a", Ring: ring, Steps: []Step{st}}
		req := AllToAllRequirement(len(reps))
		if err := s.Validate(req); err != nil {
			t.Errorf("case %d (k=%d): %v", i, len(reps), err)
		}
		// Every ordered pair must appear exactly once.
		want := len(reps) * (len(reps) - 1)
		if len(st.Transfers) != want {
			t.Errorf("case %d: %d transfers, want %d", i, len(st.Transfers), want)
		}
	}
}

func TestAllToAllRequirementMonotoneish(t *testing.T) {
	// The requirement must be positive and grow roughly quadratically.
	if AllToAllRequirement(1) != 0 || AllToAllRequirement(0) != 0 {
		t.Fatal("k<=1 should need 0 wavelengths")
	}
	if AllToAllRequirement(2) != 1 {
		t.Fatalf("k=2 requirement = %d, want 1", AllToAllRequirement(2))
	}
	if AllToAllRequirement(3) > 2 {
		t.Fatalf("k=3 requirement = %d, want <= 2", AllToAllRequirement(3))
	}
}

func TestRouteAllToAllCoversAllPairs(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 8, 9, 16} {
		cw, ccw := routeAllToAll(k)
		seen := map[[2]int]int{}
		for _, a := range append(cw, ccw...) {
			seen[[2]int{a.Src, a.Dst}]++
		}
		if len(seen) != k*(k-1) {
			t.Errorf("k=%d: %d distinct pairs, want %d", k, len(seen), k*(k-1))
		}
		for p, c := range seen {
			if c != 1 {
				t.Errorf("k=%d: pair %v routed %d times", k, p, c)
			}
		}
		// Arc lengths are at most ⌈k/2⌉ (shortest-direction routing).
		for _, a := range append(cw, ccw...) {
			if a.Len < 1 || a.Len > (k+1)/2 && 2*a.Len != k {
				t.Errorf("k=%d: arc %+v has invalid length", k, a)
			}
		}
	}
}
