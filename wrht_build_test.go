package wrht_test

import (
	"reflect"
	"strings"
	"testing"

	"wrht"
	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/fabric"
	"wrht/internal/topo"
)

// TestBuildMatchesLegacyConstructors pins the facade redesign: every
// Build(kind, ...) call must be bit-identical (reflect.DeepEqual on the
// full schedule) to the positional constructor it replaced.
func TestBuildMatchesLegacyConstructors(t *testing.T) {
	type tc struct {
		name  string
		build func() (*core.Schedule, error)
		want  func() (*core.Schedule, error)
	}
	ok := func(s *core.Schedule) func() (*core.Schedule, error) {
		return func() (*core.Schedule, error) { return s, nil }
	}
	cases := []tc{
		{
			"wrht",
			func() (*core.Schedule, error) { return wrht.Build(wrht.KindWRHT, 64, wrht.WithWavelengths(8)) },
			func() (*core.Schedule, error) { return core.BuildWRHT(core.Config{N: 64, Wavelengths: 8}) },
		},
		{
			"wrht-no-a2a",
			func() (*core.Schedule, error) {
				return wrht.Build(wrht.KindWRHT, 64, wrht.WithWavelengths(8), wrht.WithoutAllToAll())
			},
			func() (*core.Schedule, error) {
				return core.BuildWRHT(core.Config{N: 64, Wavelengths: 8, DisableAllToAll: true})
			},
		},
		{
			"wrht-max-group",
			func() (*core.Schedule, error) {
				return wrht.Build(wrht.KindWRHT, 100, wrht.WithWavelengths(8), wrht.WithMaxGroupSize(5))
			},
			func() (*core.Schedule, error) {
				return core.BuildWRHT(core.Config{N: 100, Wavelengths: 8, MaxGroupSize: 5})
			},
		},
		{
			"ring",
			func() (*core.Schedule, error) { return wrht.Build(wrht.KindRing, 32) },
			ok(collective.BuildRing(32)),
		},
		{
			"bt",
			func() (*core.Schedule, error) { return wrht.Build(wrht.KindBT, 32) },
			ok(collective.BuildBT(32)),
		},
		{
			"rd",
			func() (*core.Schedule, error) { return wrht.Build(wrht.KindRD, 32) },
			func() (*core.Schedule, error) { return collective.BuildRD(32) },
		},
		{
			"dbtree",
			func() (*core.Schedule, error) { return wrht.Build(wrht.KindDBTree, 32) },
			ok(collective.BuildDBTree(32)),
		},
		{
			"hring",
			func() (*core.Schedule, error) {
				return wrht.Build(wrht.KindHRing, 100, wrht.WithGroupSize(10), wrht.WithWavelengths(4))
			},
			func() (*core.Schedule, error) { return collective.BuildHRing(100, 10, 4) },
		},
		{
			"wdmhring",
			func() (*core.Schedule, error) {
				return wrht.Build(wrht.KindWDMHRing, 100, wrht.WithGroupSize(10), wrht.WithWavelengths(4))
			},
			func() (*core.Schedule, error) { return collective.BuildWDMHRing(100, 10, 4) },
		},
		{
			"torus",
			func() (*core.Schedule, error) {
				return wrht.Build(wrht.KindTorus, 64, wrht.WithDims(8, 8), wrht.WithWavelengths(4))
			},
			func() (*core.Schedule, error) { return core.BuildWRHTTorus(topo.NewTorus(8, 8), 4, 0) },
		},
		{
			"mesh",
			func() (*core.Schedule, error) {
				return wrht.Build(wrht.KindMesh, 64, wrht.WithDims(8, 8), wrht.WithWavelengths(4))
			},
			func() (*core.Schedule, error) { return core.BuildWRHTMesh(topo.NewMesh(8, 8), 4, 0) },
		},
		{
			"segment",
			func() (*core.Schedule, error) {
				return wrht.Build(wrht.KindSegment, 64,
					wrht.WithParticipants(1, 5, 9, 20, 33, 40), wrht.WithWavelengths(4))
			},
			func() (*core.Schedule, error) {
				return core.BuildWRHTSegment(64, []int{1, 5, 9, 20, 33, 40}, 4, 0)
			},
		},
		{
			"broadcast",
			func() (*core.Schedule, error) {
				return wrht.Build(wrht.KindBroadcast, 32, wrht.WithWavelengths(4), wrht.WithRoot(7))
			},
			func() (*core.Schedule, error) { return collective.BuildBroadcast(32, 4, 7) },
		},
		{
			"reduce",
			func() (*core.Schedule, error) {
				return wrht.Build(wrht.KindReduce, 32, wrht.WithWavelengths(4), wrht.WithRoot(7))
			},
			func() (*core.Schedule, error) { return collective.BuildReduce(32, 4, 7) },
		},
		{
			"reduce-scatter",
			func() (*core.Schedule, error) { return wrht.Build(wrht.KindReduceScatter, 32) },
			ok(collective.BuildReduceScatter(32)),
		},
		{
			"all-gather",
			func() (*core.Schedule, error) { return wrht.Build(wrht.KindAllGather, 32) },
			ok(collective.BuildAllGather(32)),
		},
	}
	for _, c := range cases {
		got, err := c.build()
		if err != nil {
			t.Errorf("%s: Build: %v", c.name, err)
			continue
		}
		want, err := c.want()
		if err != nil {
			t.Errorf("%s: legacy: %v", c.name, err)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Build result differs from legacy constructor", c.name)
		}
	}
}

// TestBuildRejectsMisdirectedOptions: an option the kind does not
// consume must be an error, never a silent no-op.
func TestBuildRejectsMisdirectedOptions(t *testing.T) {
	cases := []struct {
		name string
		err  string
		call func() (*core.Schedule, error)
	}{
		{"dims-on-ring", "WithDims", func() (*core.Schedule, error) {
			return wrht.Build(wrht.KindRing, 32, wrht.WithDims(4, 8))
		}},
		{"faults-on-hring", "WithFaults", func() (*core.Schedule, error) {
			return wrht.Build(wrht.KindHRing, 100, wrht.WithGroupSize(10), wrht.WithWavelengths(4),
				wrht.WithFaults(wrht.NewFaultMask(100)))
		}},
		{"root-on-wrht", "WithRoot", func() (*core.Schedule, error) {
			return wrht.Build(wrht.KindWRHT, 64, wrht.WithWavelengths(8), wrht.WithRoot(3))
		}},
		{"unknown-kind", "unknown collective kind", func() (*core.Schedule, error) {
			return wrht.Build(wrht.Kind("bogus"), 32)
		}},
		{"torus-without-dims", "WithDims", func() (*core.Schedule, error) {
			return wrht.Build(wrht.KindTorus, 64, wrht.WithWavelengths(4))
		}},
		{"torus-dims-mismatch", "n=64", func() (*core.Schedule, error) {
			return wrht.Build(wrht.KindTorus, 64, wrht.WithDims(4, 8), wrht.WithWavelengths(4))
		}},
		{"segment-without-participants", "WithParticipants", func() (*core.Schedule, error) {
			return wrht.Build(wrht.KindSegment, 64, wrht.WithWavelengths(4))
		}},
	}
	for _, c := range cases {
		_, err := c.call()
		if err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.err) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.err)
		}
	}
}

// TestBuildWithFaults: a degraded build must stay a valid schedule
// within the healthy wavelength budget, and an empty mask must be
// bit-identical to the healthy construction.
func TestBuildWithFaults(t *testing.T) {
	const n, w = 64, 8
	healthy, err := wrht.Build(wrht.KindWRHT, n, wrht.WithWavelengths(w))
	if err != nil {
		t.Fatal(err)
	}
	zero, err := wrht.Build(wrht.KindWRHT, n, wrht.WithWavelengths(w),
		wrht.WithFaults(wrht.NewFaultMask(n)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero, healthy) {
		t.Error("empty fault mask changed the construction")
	}

	mask := wrht.NewFaultMask(n).
		KillWavelength(0).
		KillWavelength(3).
		FailNode(17).
		FailTransceiver(4, wrht.CW).
		CutSegment(wrht.CCW, 40)
	degraded, err := wrht.Build(wrht.KindWRHT, n, wrht.WithWavelengths(w), wrht.WithFaults(mask))
	if err != nil {
		t.Fatal(err)
	}
	if err := degraded.Validate(w); err != nil {
		t.Errorf("degraded schedule fails validation: %v", err)
	}
	if degraded.NumSteps() < healthy.NumSteps() {
		t.Errorf("degraded schedule has fewer steps (%d) than healthy (%d)",
			degraded.NumSteps(), healthy.NumSteps())
	}
	// Degraded-loss MRRs tighten the §4.4 budget clamp even without an
	// explicit WithBudget.
	mrr := wrht.NewFaultMask(n)
	for i := 0; i < n; i++ {
		mrr.DegradeMRR(i, 3.0)
	}
	tightened, err := wrht.Build(wrht.KindWRHT, n, wrht.WithWavelengths(w), wrht.WithFaults(mrr))
	if err != nil {
		t.Fatal(err)
	}
	if tightened.NumSteps() < healthy.NumSteps() {
		t.Errorf("MRR-degraded schedule has fewer steps (%d) than healthy (%d)",
			tightened.NumSteps(), healthy.NumSteps())
	}
}

// TestSimulateMatchesEngine pins the unified Simulate entrypoint to the
// fabric engine it wraps, on both backends.
func TestSimulateMatchesEngine(t *testing.T) {
	const d = 25e6
	s, err := wrht.Build(wrht.KindWRHT, 64, wrht.WithWavelengths(8))
	if err != nil {
		t.Fatal(err)
	}
	p := wrht.DefaultOpticalParams()
	p.Wavelengths = 8

	got, err := wrht.Simulate(wrht.Optical, s, d, wrht.WithOpticalParams(p))
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Fabric()
	if err != nil {
		t.Fatal(err)
	}
	want, err := fabric.Engine{Fabric: f, Opts: fabric.Options{ValidateWavelengths: true}}.RunSchedule(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("optical Simulate %+v != engine %+v", got, want)
	}

	prof, err := wrht.WRHTProfile(wrht.Config{N: 1024, Wavelengths: 64})
	if err != nil {
		t.Fatal(err)
	}
	gp, err := wrht.Simulate(wrht.Optical, prof, d)
	if err != nil {
		t.Fatal(err)
	}
	df, err := wrht.DefaultOpticalParams().Fabric()
	if err != nil {
		t.Fatal(err)
	}
	wp, err := fabric.Engine{Fabric: df, Opts: fabric.Options{ValidateWavelengths: true}}.RunProfile(prof, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gp, wp) {
		t.Errorf("optical profile Simulate %+v != engine %+v", gp, wp)
	}

	// Electrical: same engine, the network's fabric, no wavelength
	// validation (packet switching has no wavelength constraint).
	ge, err := wrht.Simulate(wrht.ElectricalFatTree, s, d)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := wrht.SimulateElectrical(wrht.DefaultElectricalParams(), 64, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if ge.Time != legacy {
		t.Errorf("electrical Simulate %.9g != SimulateElectrical wrapper %.9g", ge.Time, legacy)
	}
}

// TestSimulateArgumentErrors: the facade's misuse cases must all error
// loudly rather than silently mis-simulate.
func TestSimulateArgumentErrors(t *testing.T) {
	prof := wrht.RingProfile(64)
	s := wrht.RingSchedule(64)
	if _, err := wrht.Simulate(wrht.ElectricalFatTree, prof, 1e6); err == nil {
		t.Error("electrical profile without WithHosts should error")
	}
	if _, err := wrht.Simulate(wrht.ElectricalFatTree, prof, 1e6, wrht.WithHosts(64)); err != nil {
		t.Errorf("electrical profile with WithHosts: %v", err)
	}
	if _, err := wrht.Simulate(wrht.ElectricalFatTree, s, 1e6, wrht.WithOverlap()); err == nil {
		t.Error("overlap on the electrical backend should error")
	}
	if _, err := wrht.Simulate(wrht.Backend("bogus"), s, 1e6); err == nil {
		t.Error("unknown backend should error")
	}
	if _, err := wrht.Simulate(wrht.Optical, 42, 1e6); err == nil {
		t.Error("non-collective argument should error")
	}
}
