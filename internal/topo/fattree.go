package topo

import "fmt"

// FatTree is the two-level fat-tree of 32-port routers used for the
// electrical baseline system (§5.1, Table 2): edge routers attach hosts
// on half their ports and connect the other half upward to core routers.
// With 32-port routers an edge serves 16 hosts and has 16 uplinks, so a
// 1024-host cluster uses 64 edge and 32 core routers at full bisection.
type FatTree struct {
	Hosts        int // number of hosts (compute nodes)
	Radix        int // router port count (32 in Table 2)
	HostsPerEdge int // Radix/2
	Edges        int // number of edge routers
	Cores        int // number of core routers
	LinksPerPair int // parallel links between an (edge, core) pair
}

// NewFatTree builds a two-level full-bisection fat-tree for n hosts using
// routers of the given radix. n is rounded up to a whole number of edge
// routers. It panics if radix < 2 or n < 1.
func NewFatTree(n, radix int) FatTree {
	if radix < 2 || radix%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree radix %d must be even and >= 2", radix))
	}
	if n < 1 {
		panic(fmt.Sprintf("topo: fat-tree host count %d < 1", n))
	}
	hpe := radix / 2
	edges := (n + hpe - 1) / hpe
	// Full bisection: edges*hpe uplinks total, each core offers radix
	// downlinks, so cores = ceil(edges*hpe/radix). Each edge spreads its
	// hpe uplinks across the cores round-robin, which caps the usable
	// core count at hpe: beyond ~radix²/4 hosts a two-level topology of
	// fixed-radix routers cannot reach more cores, so the model keeps
	// hpe (idealised wider) cores and the shared router-aggregate
	// capacity becomes the binding constraint — exactly the Table-2
	// "router full bisection bandwidth" bottleneck.
	cores := (edges*hpe + radix - 1) / radix
	if cores < 1 {
		cores = 1
	}
	if cores > hpe {
		cores = hpe
	}
	links := 1
	if cores < hpe {
		links = (hpe + cores - 1) / cores
	}
	return FatTree{
		Hosts:        n,
		Radix:        radix,
		HostsPerEdge: hpe,
		Edges:        edges,
		Cores:        cores,
		LinksPerPair: links,
	}
}

// EdgeOf returns the edge router index serving host h.
func (f FatTree) EdgeOf(h int) int { return h / f.HostsPerEdge }

// Uplink identifies one directed edge<->core link by the uplink slot
// (0..HostsPerEdge-1) it uses on the edge router.
type Uplink struct {
	Edge int
	Slot int
}

// CoreOf returns the core router reached through uplink slot s of any
// edge router (uplinks are spread round-robin over cores).
func (f FatTree) CoreOf(s int) int { return s % f.Cores }

// Path describes the route of a flow: the routers traversed and the
// directed links crossed. Links are identified by opaque integer ids so
// the flow-level simulator can map them to capacity state.
type Path struct {
	Routers []int // router ids traversed, for latency accounting
	Links   []int // directed link ids traversed, for bandwidth sharing
}

// Link id layout (all directed):
//
//	host h up:    0*S + h
//	host h down:  1*S + h
//	edge e slot s up (edge->core):   2*S + e*HostsPerEdge + s
//	edge e slot s down (core->edge): 3*S + e*HostsPerEdge + s
//
// where S = stride, a number larger than any per-class index.
func (f FatTree) stride() int {
	s := f.Hosts
	if u := f.Edges * f.HostsPerEdge; u > s {
		s = u
	}
	return s + 1
}

// NumLinks returns an upper bound on link ids produced by Route,
// suitable for sizing dense arrays.
func (f FatTree) NumLinks() int { return 4 * f.stride() }

// RouterID layout: edge routers are 0..Edges-1, core routers are
// Edges..Edges+Cores-1.
func (f FatTree) edgeRouter(e int) int { return e }
func (f FatTree) coreRouter(c int) int { return f.Edges + c }

// Route returns the shortest path from host src to host dst. Flows
// within one edge router go host->edge->host (one router); flows between
// edges go host->edge->core->edge->host (three routers). The uplink slot
// is chosen deterministically from the source host so that distinct
// hosts on an edge spread over distinct uplinks (SimGrid-style static
// shortest-path routing, Table 2).
func (f FatTree) Route(src, dst int) Path {
	if src < 0 || src >= f.Hosts || dst < 0 || dst >= f.Hosts {
		panic(fmt.Sprintf("topo: fat-tree route %d->%d out of range [0,%d)", src, dst, f.Hosts))
	}
	if src == dst {
		return Path{}
	}
	s := f.stride()
	se, de := f.EdgeOf(src), f.EdgeOf(dst)
	if se == de {
		return Path{
			Routers: []int{f.edgeRouter(se)},
			Links:   []int{0*s + src, 1*s + dst},
		}
	}
	slot := src % f.HostsPerEdge
	core := f.CoreOf(slot)
	// The downlink from the core to the destination edge must be a slot
	// congruent to the core index (those are the parallel links between
	// this core and the destination edge). Spread flows over them by a
	// mix of source slot and source edge so that hosts of one edge and
	// same-slot hosts of different edges land on different links.
	lpp := max(1, f.LinksPerPair)
	dslot := core + f.Cores*((slot/f.Cores+se)%lpp)
	if dslot >= f.HostsPerEdge {
		dslot = core
	}
	return Path{
		Routers: []int{f.edgeRouter(se), f.coreRouter(core), f.edgeRouter(de)},
		Links: []int{
			0*s + src,
			2*s + se*f.HostsPerEdge + slot,
			3*s + de*f.HostsPerEdge + dslot,
			1*s + dst,
		},
	}
}

// NumRouters returns the total router count (edge + core).
func (f FatTree) NumRouters() int { return f.Edges + f.Cores }
