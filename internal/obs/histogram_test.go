package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram reports non-zero aggregates")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("nil histogram snapshot not empty: %+v", s)
	}
	var r *Registry
	r.Histogram("x").Observe(2)
	r.MarkVolatile("x")
}

func TestHistogramBucketLayout(t *testing.T) {
	// Bounds are strictly increasing and end at +Inf.
	prev := 0.0
	for i := 0; i <= histBuckets; i++ {
		b := HistBucketBound(i)
		if i > 0 && b <= prev {
			t.Fatalf("bucket %d bound %g not above %g", i, b, prev)
		}
		prev = b
	}
	if !math.IsInf(HistBucketBound(histBuckets), 1) {
		t.Fatal("overflow bucket bound not +Inf")
	}
	// Every positive value lands in a bucket whose bound brackets it
	// within one sub-bucket ratio (linear sub-division: at most
	// 1+1/histSub).
	ratio := 1 + 1.0/histSub
	for _, v := range []float64{1e-9, 25e-6, 1e-3, 0.5, 1, 3.7, 1000} {
		i := histBucketOf(v)
		ub := HistBucketBound(i)
		if v > ub {
			t.Fatalf("value %g above its bucket bound %g", v, ub)
		}
		if i > 0 && !math.IsInf(ub, 1) && v < ub/ratio/(1+1e-12) {
			t.Fatalf("value %g far below its bucket bound %g", v, ub)
		}
	}
	// Degenerate inputs land in the underflow bucket, not out of range.
	for _, v := range []float64{0, -1, math.Inf(-1), math.NaN(), 1e-12} {
		if i := histBucketOf(v); i != 0 {
			t.Fatalf("histBucketOf(%g) = %d, want underflow bucket", v, i)
		}
	}
	if i := histBucketOf(math.Inf(1)); i != histBuckets {
		t.Fatalf("histBucketOf(+Inf) = %d, want overflow bucket", i)
	}
}

func TestHistogramAggregatesAndQuantiles(t *testing.T) {
	h := &Histogram{}
	vals := []float64{1e-6, 2e-6, 5e-6, 10e-6, 20e-6, 50e-6, 100e-6, 200e-6, 500e-6, 1e-3}
	sum := 0.0
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(vals))
	}
	if math.Abs(h.Sum()-sum) > 1e-12 {
		t.Fatalf("sum = %g, want %g", h.Sum(), sum)
	}
	if h.Max() != 1e-3 {
		t.Fatalf("max = %g, want 1e-3", h.Max())
	}
	// Quantile estimates carry at most one sub-bucket ratio of relative
	// error above the true value (the bucket upper bound overestimates).
	ratio := 1 + 1.0/histSub
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 20e-6}, {0.9, 500e-6}, {0.99, 1e-3}, {1, 1e-3},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want/(ratio*1.001) || got > tc.want*ratio*1.001 {
			t.Errorf("q%.2f = %g, want within one bucket of %g", tc.q, got, tc.want)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("q1 = %g, want the exact max %g", h.Quantile(1), h.Max())
	}
}

func TestHistogramObserveZeroAllocs(t *testing.T) {
	h := &Histogram{}
	if n := testing.AllocsPerRun(200, func() { h.Observe(42e-6) }); n != 0 {
		t.Fatalf("Observe allocates %.1f per run, want 0", n)
	}
	// The nil path must be allocation-free too.
	var nh *Histogram
	if n := testing.AllocsPerRun(200, func() { nh.Observe(42e-6) }); n != 0 {
		t.Fatalf("nil Observe allocates %.1f per run, want 0", n)
	}
}

// TestHistogramConcurrentObserveSnapshot hammers one histogram with
// concurrent observers while a scraper snapshot-and-resets it, and
// checks conservation: every observation ends up in exactly one
// snapshot (the bucket words are swapped atomically). Run under -race
// in CI, this is the lock-free-Observe gate.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	h := &Histogram{}
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g+1) * 1e-6)
			}
		}()
	}
	done := make(chan struct{})
	var scraped uint64
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := h.snapshot(true)
			for _, b := range s.Buckets {
				scraped += b.Count
			}
		}
	}()
	wg.Wait()
	<-done
	final := h.snapshot(true)
	for _, b := range final.Buckets {
		scraped += b.Count
	}
	if want := uint64(goroutines * perG); scraped != want {
		t.Fatalf("snapshots account for %d observations, want %d", scraped, want)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 1e-6
		for pb.Next() {
			h.Observe(v)
			v += 1e-6
		}
	})
}
