package optical

import (
	"fmt"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/fabric"
)

// The legacy* functions below reproduce the pre-engine simulator loops
// verbatim (operation order included) so the parity tests can assert
// that fabric.Engine over Params.Fabric — the only execution path now
// that the deprecated Run* shims are gone — changed no result bit. They
// intentionally duplicate arithmetic rather than call into the engine.

// runSchedule, runProfile and runBuckets drive fabric.Engine the way
// production callers do, converting back to the package Result so the
// legacy oracles compare field by field.
func runSchedule(p Params, s *core.Schedule, dBytes float64, validateW bool) (Result, error) {
	f, err := p.Fabric()
	if err != nil {
		return Result{}, err
	}
	eng := fabric.Engine{Fabric: f, Opts: fabric.Options{ValidateWavelengths: validateW}}
	r, err := eng.RunSchedule(s, dBytes)
	if err != nil {
		return Result{}, err
	}
	return fromFabric(r), nil
}

func runProfile(p Params, pr core.Profile, dBytes float64) (Result, error) {
	f, err := p.Fabric()
	if err != nil {
		return Result{}, err
	}
	r, err := fabric.Engine{Fabric: f}.RunProfile(pr, dBytes)
	if err != nil {
		return Result{}, err
	}
	return fromFabric(r), nil
}

func runBuckets(p Params, pr core.Profile, bucketBytes []float64) (Result, error) {
	f, err := p.Fabric()
	if err != nil {
		return Result{}, err
	}
	r, err := fabric.Engine{Fabric: f}.RunBuckets(pr, bucketBytes)
	if err != nil {
		return Result{}, err
	}
	return fromFabric(r), nil
}

func legacyRunSchedule(p Params, s *core.Schedule, dBytes float64) Result {
	// core.ElemsOf truncates exactly like the historical int(dBytes/4)
	// here, so the oracle's arithmetic is unchanged.
	elems, err := core.ElemsOf(dBytes)
	if err != nil {
		panic(err)
	}
	res := Result{Algorithm: s.Algorithm, Steps: s.NumSteps()}
	for _, st := range s.Steps {
		var maxBytes float64
		for _, t := range st.Transfers {
			b := float64(t.Chunk.Bytes(elems))
			if b > maxBytes {
				maxBytes = b
			}
		}
		dur := p.ReconfigDelay + p.transferTime(maxBytes)
		res.PerStep = append(res.PerStep, StepReport{Phase: st.Phase, Duration: dur, MaxBytes: maxBytes})
		res.Time += dur
		res.TransferTime += p.transferTime(maxBytes)
		res.OverheadTime += p.ReconfigDelay
	}
	return res
}

func legacyRunProfile(p Params, pr core.Profile, dBytes float64) Result {
	res := Result{Algorithm: pr.Algorithm, Steps: pr.NumSteps()}
	for _, g := range pr.Groups {
		bytes := g.FracOfD * dBytes
		tt := p.transferTime(bytes)
		res.Time += float64(g.Steps) * (p.ReconfigDelay + tt)
		res.TransferTime += float64(g.Steps) * tt
		res.OverheadTime += float64(g.Steps) * p.ReconfigDelay
	}
	return res
}

func legacyRunBuckets(p Params, pr core.Profile, bucketBytes []float64) Result {
	total := Result{Algorithm: pr.Algorithm}
	for _, b := range bucketBytes {
		r := legacyRunProfile(p, pr, b)
		total.Steps += r.Steps
		total.Time += r.Time
		total.TransferTime += r.TransferTime
		total.OverheadTime += r.OverheadTime
	}
	return total
}

func paritySchedules(t *testing.T) map[string]*core.Schedule {
	t.Helper()
	out := map[string]*core.Schedule{}
	for _, cfg := range []core.Config{
		{N: 64, Wavelengths: 8},
		{N: 256, Wavelengths: 16},
		{N: 1024, Wavelengths: 64},
		{N: 256, Wavelengths: 16, DisableAllToAll: true},
	} {
		s, err := core.BuildWRHT(cfg)
		if err != nil {
			t.Fatalf("BuildWRHT(%+v): %v", cfg, err)
		}
		name := "wrht"
		if cfg.DisableAllToAll {
			name = "wrht-noa2a"
		}
		out[nameKey(name, cfg.N)] = s
	}
	out[nameKey("ring", 64)] = collective.BuildRing(64)
	out[nameKey("bt", 64)] = collective.BuildBT(64)
	return out
}

func nameKey(name string, n int) string { return fmt.Sprintf("%s/n=%d", name, n) }

func TestScheduleEngineMatchesLegacyBitForBit(t *testing.T) {
	p := DefaultParams()
	for name, s := range paritySchedules(t) {
		for _, dBytes := range []float64{4e3, 1e6, 100e6} {
			want := legacyRunSchedule(p, s, dBytes)
			got, err := runSchedule(p, s, dBytes, false)
			if err != nil {
				t.Fatalf("%s d=%g: %v", name, dBytes, err)
			}
			if got.Time != want.Time || got.TransferTime != want.TransferTime ||
				got.OverheadTime != want.OverheadTime || got.Steps != want.Steps {
				t.Errorf("%s d=%g: engine %+v != legacy %+v", name, dBytes, got, want)
			}
			if len(got.PerStep) != len(want.PerStep) {
				t.Fatalf("%s d=%g: %d per-step reports, want %d", name, dBytes, len(got.PerStep), len(want.PerStep))
			}
			for i := range got.PerStep {
				if got.PerStep[i] != want.PerStep[i] {
					t.Errorf("%s d=%g step %d: %+v != %+v", name, dBytes, i, got.PerStep[i], want.PerStep[i])
				}
			}
		}
	}
}

func TestProfileEngineMatchesLegacyBitForBit(t *testing.T) {
	p := DefaultParams()
	for name, s := range paritySchedules(t) {
		pr := core.ProfileOf(s)
		for _, dBytes := range []float64{4e3, 1e6, 100e6} {
			want := legacyRunProfile(p, pr, dBytes)
			got, err := runProfile(p, pr, dBytes)
			if err != nil {
				t.Fatalf("%s d=%g: %v", name, dBytes, err)
			}
			if got.Time != want.Time || got.TransferTime != want.TransferTime ||
				got.OverheadTime != want.OverheadTime || got.Steps != want.Steps {
				t.Errorf("%s d=%g: engine %+v != legacy %+v", name, dBytes, got, want)
			}
		}
	}
}

func TestBucketsEngineMatchesLegacyBitForBit(t *testing.T) {
	p := DefaultParams()
	buckets := [][]float64{
		{25e6},
		{1e6, 4e6, 25e6},
		{97.5e6 / 4, 97.5e6 / 4, 97.5e6 / 4, 97.5e6 / 4},
	}
	for name, s := range paritySchedules(t) {
		pr := core.ProfileOf(s)
		for _, bs := range buckets {
			want := legacyRunBuckets(p, pr, bs)
			got, err := runBuckets(p, pr, bs)
			if err != nil {
				t.Fatalf("%s %v: %v", name, bs, err)
			}
			if got.Time != want.Time || got.TransferTime != want.TransferTime ||
				got.OverheadTime != want.OverheadTime || got.Steps != want.Steps {
				t.Errorf("%s %v: engine %+v != legacy %+v", name, bs, got, want)
			}
		}
	}
}

func TestScheduleEngineStillValidates(t *testing.T) {
	p := DefaultParams()
	p.Wavelengths = 1
	s, err := core.BuildWRHT(core.Config{N: 64, Wavelengths: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runSchedule(p, s, 1e6, true); err == nil {
		t.Fatal("schedule exceeding a 1-wavelength budget accepted")
	}
	if _, err := runSchedule(p, s, 1e6, false); err != nil {
		t.Fatalf("validation off should not reject: %v", err)
	}
}
