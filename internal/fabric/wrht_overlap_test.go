package fabric_test

import (
	"math"
	"testing"

	"wrht/internal/core"
	"wrht/internal/fabric"
	"wrht/internal/optical"
)

func wrhtEngine(t *testing.T, overlap bool) (fabric.Engine, optical.Params) {
	t.Helper()
	p := optical.DefaultParams()
	f, err := p.Fabric()
	if err != nil {
		t.Fatal(err)
	}
	return fabric.Engine{Fabric: f, Opts: fabric.Options{Overlap: overlap}}, p
}

func runWRHT(t *testing.T, cfg core.Config, dBytes float64, overlap bool) (fabric.Result, optical.Params) {
	t.Helper()
	s, err := core.BuildWRHT(cfg)
	if err != nil {
		t.Fatalf("BuildWRHT(%+v): %v", cfg, err)
	}
	eng, p := wrhtEngine(t, overlap)
	res, err := eng.RunSchedule(s, dBytes)
	if err != nil {
		t.Fatalf("RunSchedule(%+v): %v", cfg, err)
	}
	return res, p
}

// TestOverlapSavesOnWRHT pins the paper-scale configuration where the
// WRHT schedule has an overlap-eligible step boundary: at N=4096, w=64
// the topmost reduce step's circuits are rwa-disjoint from the following
// step's, so exactly that boundary's reconfiguration hides under the
// preceding transmission. The saving must be positive and bounded by
// (θ−1)·a — the first step can never overlap.
func TestOverlapSavesOnWRHT(t *testing.T) {
	cfg := core.Config{N: 4096, Wavelengths: 64}
	const dBytes = 100e6 // 100 MB: transmissions dwarf the 25 µs setup
	base, _ := runWRHT(t, cfg, dBytes, false)
	over, p := runWRHT(t, cfg, dBytes, true)
	if over.OverlapSaved <= 0 {
		t.Fatalf("no overlap saving at N=%d w=%d", cfg.N, cfg.Wavelengths)
	}
	bound := float64(over.Steps-1) * p.ReconfigDelay
	if over.OverlapSaved > bound {
		t.Fatalf("saved %g exceeds (θ−1)·a = %g", over.OverlapSaved, bound)
	}
	// Subtracting a 25 µs hide from a multi-second accumulated sum loses
	// low bits, so the drop matches the saving only to rounding.
	if got := base.Time - over.Time; math.Abs(got-over.OverlapSaved) > 1e-12*base.Time {
		t.Errorf("time drop %g != OverlapSaved %g", got, over.OverlapSaved)
	}
	// With 100 MB payloads every transmission exceeds a, so each hidden
	// boundary hides a full reconfiguration.
	if over.OverlapSaved != p.ReconfigDelay {
		t.Errorf("saved %g, want exactly one full reconfiguration %g", over.OverlapSaved, p.ReconfigDelay)
	}
	if base.OverheadTime != over.OverheadTime || base.TransferTime != over.TransferTime {
		t.Error("overlap must only shift time, not change component totals")
	}
}

// TestOverlapFallsBackOnConflictingWRHT pins a configuration whose
// consecutive steps all share (direction, wavelength) arcs: at N=1024,
// w=64 every boundary conflicts under the rwa model and the engine must
// keep the sequential setup-then-transmit behaviour throughout.
func TestOverlapFallsBackOnConflictingWRHT(t *testing.T) {
	cfg := core.Config{N: 1024, Wavelengths: 64}
	base, _ := runWRHT(t, cfg, 100e6, false)
	over, _ := runWRHT(t, cfg, 100e6, true)
	if over.OverlapSaved != 0 {
		t.Fatalf("conflicting boundaries overlapped: saved %g", over.OverlapSaved)
	}
	if over.Time != base.Time {
		t.Errorf("overlap-on time %g != overlap-off time %g despite zero saving", over.Time, base.Time)
	}
}
