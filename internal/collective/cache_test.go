package collective

import (
	"reflect"
	"sync"
	"testing"

	"wrht/internal/core"
	"wrht/internal/rwa"
)

func TestProfileCacheMatchesDirectConstruction(t *testing.T) {
	c := NewProfileCache()
	cfg := core.Config{N: 1024, Wavelengths: 64}
	got, err := c.WRHT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := WRHTProfile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cached WRHT profile differs from direct construction")
	}
	if !reflect.DeepEqual(c.Ring(1024), RingProfile(1024)) {
		t.Errorf("cached Ring profile differs")
	}
	if !reflect.DeepEqual(c.HRing(1024, 5, 64), HRingProfile(1024, 5, 64)) {
		t.Errorf("cached H-Ring profile differs")
	}
	if !reflect.DeepEqual(c.BT(1024), BTProfile(1024)) {
		t.Errorf("cached BT profile differs")
	}
}

// TestProfileCacheConcurrentSingleBuild hammers one logical key from
// many goroutines — half asking with the explicit Lemma-1 group size,
// half with the GroupSize-0 default that canonicalizes to it — and
// requires exactly one construction.
func TestProfileCacheConcurrentSingleBuild(t *testing.T) {
	c := NewProfileCache()
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := core.Config{N: 1024, Wavelengths: 64}
			if g%2 == 0 {
				cfg.GroupSize = 129 // = 2w+1, the canonical form of GroupSize 0
			}
			if _, err := c.WRHT(cfg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := c.Builds(); got != 1 {
		t.Errorf("concurrent identical requests built %d profiles, want 1", got)
	}
	// Exactly one lookup created the entry; every other goroutine found
	// it (possibly mid-build — sharing the build still counts as a hit).
	if h, m := c.Hits(), c.Misses(); m != 1 || h != 31 {
		t.Errorf("hits/misses = %d/%d, want 31/1", h, m)
	}
}

// TestProfileCacheIgnoresProfileIrrelevantFields pins the fix for the
// silent-rebuild blind spot: WRHTProfile is a pure function of
// (N, Wavelengths, effective GroupSize, DisableAllToAll), so configs
// differing only in Strategy, Seed, or an already-honored MaxGroupSize
// must share one cache entry instead of fragmenting into identical
// rebuilds.
func TestProfileCacheIgnoresProfileIrrelevantFields(t *testing.T) {
	c := NewProfileCache()
	variants := []core.Config{
		{N: 1024, Wavelengths: 64},
		{N: 1024, Wavelengths: 64, Strategy: rwa.RandomFit, Seed: 7},
		{N: 1024, Wavelengths: 64, Seed: 42},
		{N: 1024, Wavelengths: 64, MaxGroupSize: 129}, // clamp equals the Lemma-1 default: no-op
	}
	var want core.Profile
	for i, cfg := range variants {
		pr, err := c.WRHT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = pr
		} else if !reflect.DeepEqual(pr, want) {
			t.Fatalf("variant %d built a different profile", i)
		}
	}
	if b, m := c.Builds(), c.Misses(); b != 1 || m != 1 {
		t.Errorf("builds/misses = %d/%d, want 1/1: profile-irrelevant fields fragmented the key", b, m)
	}
	if h := c.Hits(); h != int64(len(variants)-1) {
		t.Errorf("hits = %d, want %d", h, len(variants)-1)
	}
	// A clamp that actually changes the effective group size is a real
	// key difference and must miss.
	if _, err := c.WRHT(core.Config{N: 1024, Wavelengths: 64, MaxGroupSize: 65}); err != nil {
		t.Fatal(err)
	}
	if b := c.Builds(); b != 2 {
		t.Errorf("binding MaxGroupSize clamp built %d profiles total, want 2", b)
	}
}

func TestProfileCacheMemoizesErrors(t *testing.T) {
	c := NewProfileCache()
	bad := core.Config{N: 0, Wavelengths: 64}
	_, err1 := c.WRHT(bad)
	_, err2 := c.WRHT(bad)
	if err1 == nil || err2 == nil {
		t.Fatal("invalid config should error")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("memoized error changed: %v vs %v", err1, err2)
	}
	if got := c.Builds(); got != 1 {
		t.Errorf("failed build attempted %d times, want 1", got)
	}
}

func TestProfileCacheDistinctKeysDoNotCollide(t *testing.T) {
	c := NewProfileCache()
	// Ring(64) and BT(64) share cfg{N:64} but differ in kind.
	ring := c.Ring(64)
	bt := c.BT(64)
	if ring.Algorithm == bt.Algorithm {
		t.Errorf("Ring and BT collided in the cache: both %q", ring.Algorithm)
	}
	if got := c.Builds(); got != 2 {
		t.Errorf("builds = %d, want 2", got)
	}
}
