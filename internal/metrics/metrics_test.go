package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bbbb"}}
	tb.AddRow("xxxxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, separator, row
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "a    ") {
		t.Errorf("header not padded to widest cell: %q", lines[1])
	}
	if !strings.Contains(lines[2], "-----") {
		t.Errorf("separator missing: %q", lines[2])
	}
}

func TestFigureNormalizeAndString(t *testing.T) {
	f := &Figure{
		Title:  "fig",
		XLabel: "x",
		XTicks: []string{"1", "2"},
		Series: []Series{{Name: "s", Y: []float64{2, 4}}},
	}
	f.Normalize(2)
	if f.Series[0].Y[0] != 1 || f.Series[0].Y[1] != 2 {
		t.Fatalf("normalize: %v", f.Series[0].Y)
	}
	f.Normalize(0) // no-op
	if f.Series[0].Y[0] != 1 {
		t.Fatal("normalize by zero changed values")
	}
	out := f.String()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "s") {
		t.Fatalf("figure render: %q", out)
	}
}

func TestFigureStringShortSeries(t *testing.T) {
	f := &Figure{XLabel: "x", XTicks: []string{"1", "2"}, Series: []Series{{Name: "s", Y: []float64{5}}}}
	if out := f.String(); !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for short series: %q", out)
	}
}

func TestMeanReduction(t *testing.T) {
	// ours = half of base everywhere → 50%.
	if got, err := MeanReduction([]float64{1, 2}, []float64{2, 4}); err != nil || math.Abs(got-50) > 1e-9 {
		t.Fatalf("MeanReduction = %g, %v", got, err)
	}
	// Negative reduction when ours is slower.
	if got, err := MeanReduction([]float64{4}, []float64{2}); err != nil || got >= 0 {
		t.Fatalf("MeanReduction = %g, %v, want negative", got, err)
	}
	// Non-positive bases are skipped.
	if got, err := MeanReduction([]float64{1, 1}, []float64{0, 2}); err != nil || math.Abs(got-50) > 1e-9 {
		t.Fatalf("MeanReduction with zero base = %g, %v", got, err)
	}
	if got, err := MeanReduction(nil, nil); err != nil || got != 0 {
		t.Fatalf("empty input should give 0, got %g, %v", got, err)
	}
}

func TestMeanReductionErrorsOnMismatch(t *testing.T) {
	got, err := MeanReduction([]float64{1}, []float64{1, 2})
	if err == nil {
		t.Fatal("length mismatch did not error")
	}
	if !math.IsNaN(got) {
		t.Fatalf("mismatch value = %g, want NaN", got)
	}
}

func TestPct(t *testing.T) {
	if Pct(65.234) != "65.23%" {
		t.Fatalf("Pct = %q", Pct(65.234))
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("SortedKeys = %v", keys)
	}
}
