package optical

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/des"
	"wrht/internal/fabric"
)

// Event-driven execution mode: instead of summing closed-form step
// durations, RunScheduleDES schedules explicit events on the DES kernel —
// one reconfiguration event per step, one completion event per transfer —
// and the step barrier fires when the last circuit drains. It produces
// exactly the same totals as the analytic fabric.Engine run (asserted by
// tests), and exists
// to (a) cross-validate the analytic model and (b) host extensions where
// per-transfer dynamics differ (e.g. straggling circuits), which a
// closed form cannot express.

// TransferDelay lets callers perturb individual circuits in DES mode: it
// receives the step index, transfer index and nominal duration and
// returns the duration to use. Nil means nominal.
type TransferDelay func(step, transfer int, nominal float64) float64

// RunScheduleDES executes the schedule on the discrete-event kernel and
// returns the simulated timing. If delay is non-nil it perturbs each
// transfer's duration (fault/straggler injection).
func RunScheduleDES(p Params, s *core.Schedule, dBytes float64, delay TransferDelay) (Result, error) {
	return RunScheduleDESObserved(p, s, dBytes, delay, nil)
}

// RunScheduleDESObserved is RunScheduleDES with a des.Hook attached to
// the kernel. Reconfiguration and transfer completions are scheduled as
// labeled events ("reconfig", "transfer"), so an observing hook (the
// Perfetto kernel observer in internal/obs) sees them by name on the
// simulated timeline.
func RunScheduleDESObserved(p Params, s *core.Schedule, dBytes float64, delay TransferDelay, hook des.Hook) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	elems, err := core.ElemsOf(dBytes)
	if err != nil {
		return Result{}, fmt.Errorf("optical: %w", err)
	}
	res := Result{Algorithm: s.Algorithm, Steps: s.NumSteps()}

	k := des.Kernel{Hook: hook}
	var runStep func(si int)
	runStep = func(si int) {
		if si >= len(s.Steps) {
			return
		}
		st := s.Steps[si]
		stepStart := k.Now()
		// Reconfigure the MRRs, then launch every circuit in parallel.
		k.AfterNamed(p.ReconfigDelay, "reconfig", func() {
			if len(st.Transfers) == 0 {
				finishStep(&k, &res, st, stepStart, si, runStep)
				return
			}
			remaining := len(st.Transfers)
			for ti, t := range st.Transfers {
				dur := p.transferTime(float64(t.Chunk.Bytes(elems)))
				if delay != nil {
					dur = delay(si, ti, dur)
					if dur < 0 {
						dur = 0
					}
				}
				k.AfterNamed(dur, "transfer", func() {
					remaining--
					if remaining == 0 {
						finishStep(&k, &res, st, stepStart, si, runStep)
					}
				})
			}
		})
	}
	runStep(0)
	end := k.Run()
	res.Time = end
	return res, nil
}

func finishStep(k *des.Kernel, res *Result, st core.Step, stepStart float64, si int, next func(int)) {
	dur := k.Now() - stepStart
	res.PerStep = append(res.PerStep, StepReport{Phase: st.Phase, Duration: dur})
	next(si + 1)
}

// CheckAgainstAnalytic runs both execution modes and returns an error if
// the totals disagree beyond tolerance — a self-test hook used by the
// test suite and available to downstream users extending either path.
func CheckAgainstAnalytic(p Params, s *core.Schedule, dBytes float64) error {
	f, err := p.Fabric()
	if err != nil {
		return err
	}
	ar, err := fabric.Engine{Fabric: f}.RunSchedule(s, dBytes)
	if err != nil {
		return err
	}
	a := fromFabric(ar)
	d, err := RunScheduleDES(p, s, dBytes, nil)
	if err != nil {
		return err
	}
	diff := a.Time - d.Time
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-9*float64(1+s.NumSteps()) {
		return fmt.Errorf("optical: analytic %.12f vs DES %.12f differ", a.Time, d.Time)
	}
	return nil
}
