package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/rwa"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// buildCorpus returns one schedule per construction kind (WRHT in its
// strategy/ablation variants, the torus scheme, and every baseline),
// each paired with a rebuild closure so determinism can be checked
// against a second independent stream.
func buildCorpus(t *testing.T) map[string]func() *core.Schedule {
	t.Helper()
	wrht := func(cfg core.Config) func() *core.Schedule {
		return func() *core.Schedule {
			s, err := core.BuildWRHT(cfg)
			if err != nil {
				t.Fatalf("BuildWRHT(%+v): %v", cfg, err)
			}
			return s
		}
	}
	must := func(s *core.Schedule, err error) *core.Schedule {
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return map[string]func() *core.Schedule{
		"wrht-trivial":   wrht(core.Config{N: 1, Wavelengths: 2}),
		"wrht-firstfit":  wrht(core.Config{N: 15, Wavelengths: 2}),
		"wrht-randomfit": wrht(core.Config{N: 40, Wavelengths: 4, Strategy: rwa.RandomFit, Seed: 11}),
		"wrht-no-a2a":    wrht(core.Config{N: 64, Wavelengths: 8, DisableAllToAll: true}),
		"wrht-m3":        wrht(core.Config{N: 27, Wavelengths: 4, GroupSize: 3}),
		"wrht-maxgroup":  wrht(core.Config{N: 50, Wavelengths: 16, MaxGroupSize: 5}),
		"wrht-torus": func() *core.Schedule {
			return must(core.BuildWRHTTorus(topo.Torus{Rows: 4, Cols: 8}, 4, 0))
		},
		"ring": func() *core.Schedule { return collective.BuildRing(12) },
		"bt":   func() *core.Schedule { return collective.BuildBT(13) },
		"rd":   func() *core.Schedule { return must(collective.BuildRD(16)) },
		"hring": func() *core.Schedule {
			return must(collective.BuildHRing(24, 4, 2))
		},
		"wdm-hring": func() *core.Schedule {
			return must(collective.BuildWDMHRing(24, 6, 3))
		},
	}
}

// TestStreamDeterminism pins every streamed constructor deterministic:
// two independent builds (each a fresh stream drained by Collect) must
// be deeply equal, including the RandomFit variants, whose rng is
// seeded per stream.
func TestStreamDeterminism(t *testing.T) {
	for name, build := range buildCorpus(t) {
		a, b := build(), build()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two streamed builds differ", name)
		}
	}
}

// TestSourceRoundTrip pins Collect(s.Source()) deeply equal to s for
// every corpus schedule — the stream view loses nothing.
func TestSourceRoundTrip(t *testing.T) {
	for name, build := range buildCorpus(t) {
		s := build()
		got := core.Collect(s.Source())
		if !reflect.DeepEqual(got, s) {
			t.Errorf("%s: Collect(Source()) != original schedule", name)
		}
	}
}

// TestCompactRoundTrip pins the interned step representation lossless:
// CompactOf then ExpandInto with the identity mapping reproduces every
// transfer of every corpus step exactly.
func TestCompactRoundTrip(t *testing.T) {
	id := func(v int) int { return v }
	for name, build := range buildCorpus(t) {
		s := build()
		var buf core.Step
		for si, st := range s.Steps {
			c := core.CompactOf(st)
			c.ExpandInto(&buf, id)
			if buf.Phase != st.Phase || len(buf.Transfers) != len(st.Transfers) {
				t.Fatalf("%s step %d: round-trip shape mismatch", name, si)
			}
			for ti := range st.Transfers {
				if buf.Transfers[ti] != st.Transfers[ti] {
					t.Fatalf("%s step %d transfer %d: %v != %v", name, si, ti, buf.Transfers[ti], st.Transfers[ti])
				}
			}
		}
	}
}

// legacyValidate is the pre-streaming ValidateWithIndex, copied
// verbatim: per-step Reset+replay through rwa.Index.Validate with
// freshly allocated request buffers. It is the oracle the streamed
// validator's errors are pinned against.
func legacyValidate(s *core.Schedule, ix *rwa.Index, wavelengths int) error {
	n := s.Ring.N
	for si, st := range s.Steps {
		reqs := make([]rwa.Request, 0, len(st.Transfers))
		asn := make(rwa.Assignment, 0, len(st.Transfers))
		for ti, t := range st.Transfers {
			if t.Src < 0 || t.Src >= n || t.Dst < 0 || t.Dst >= n {
				return fmt.Errorf("core: step %d transfer %d: node out of range: %v", si, ti, t)
			}
			if t.Src == t.Dst {
				return fmt.Errorf("core: step %d transfer %d: self transfer: %v", si, ti, t)
			}
			if err := t.Chunk.Validate(); err != nil {
				return fmt.Errorf("core: step %d transfer %d: %w", si, ti, err)
			}
			reqs = append(reqs, rwa.Request{Src: t.Src, Dst: t.Dst, Dir: t.Dir})
			asn = append(asn, t.Wavelength)
		}
		if err := ix.Validate(reqs, rwa.ArcsOf(s.Ring, reqs), asn, wavelengths); err != nil {
			return fmt.Errorf("core: step %d: %w", si, err)
		}
	}
	return nil
}

// copySchedule clones the step/transfer structure so a mutation never
// leaks into the shared corpus build.
func copySchedule(s *core.Schedule) *core.Schedule {
	out := &core.Schedule{Algorithm: s.Algorithm, Ring: s.Ring, Steps: make([]core.Step, len(s.Steps))}
	for i, st := range s.Steps {
		out.Steps[i] = core.Step{Phase: st.Phase, Transfers: append([]core.Transfer(nil), st.Transfers...)}
	}
	return out
}

// TestValidateMatchesLegacy differentially pins the streamed delta
// validator against the legacy Reset+replay oracle: on every corpus
// schedule — clean and under a systematic set of corruptions (negative
// wavelength, budget overflow, duplicated wavelength, self transfer,
// out-of-range node, malformed chunk) — both validators must agree on
// acceptance and, when rejecting, return the identical error string
// (including which conflict pair rwa names).
func TestValidateMatchesLegacy(t *testing.T) {
	type mutation struct {
		name  string
		apply func(tr *core.Transfer, s *core.Schedule)
	}
	muts := []mutation{
		{"negative-wavelength", func(tr *core.Transfer, _ *core.Schedule) { tr.Wavelength = -1 }},
		{"budget-overflow", func(tr *core.Transfer, s *core.Schedule) { tr.Wavelength = s.WavelengthsNeeded() + 3 }},
		{"wavelength-zero", func(tr *core.Transfer, _ *core.Schedule) { tr.Wavelength = 0 }},
		{"self-transfer", func(tr *core.Transfer, _ *core.Schedule) { tr.Dst = tr.Src }},
		{"node-range", func(tr *core.Transfer, s *core.Schedule) { tr.Dst = s.Ring.N + 7 }},
		{"bad-chunk", func(tr *core.Transfer, _ *core.Schedule) { tr.Chunk = tensor.Chunk{Index: 5, Of: 2} }},
	}
	errStr := func(err error) string {
		if err == nil {
			return "<nil>"
		}
		return err.Error()
	}
	for name, build := range buildCorpus(t) {
		orig := build()
		wv := orig.WavelengthsNeeded()
		if wv == 0 {
			wv = 1
		}
		check := func(label string, s *core.Schedule) {
			got := errStr(s.ValidateWithIndex(rwa.NewIndex(s.Ring), wv))
			want := errStr(legacyValidate(s, rwa.NewIndex(s.Ring), wv))
			if got != want {
				t.Errorf("%s/%s: streamed validator %q, legacy %q", name, label, got, want)
			}
		}
		check("clean", copySchedule(orig))
		// Mutate a spread of positions: first/middle/last step, first and
		// last transfer of each.
		for _, si := range []int{0, len(orig.Steps) / 2, len(orig.Steps) - 1} {
			if si < 0 || si >= len(orig.Steps) {
				continue
			}
			for _, m := range muts {
				for _, last := range []bool{false, true} {
					s := copySchedule(orig)
					trs := s.Steps[si].Transfers
					if len(trs) == 0 {
						continue
					}
					ti := 0
					if last {
						ti = len(trs) - 1
					}
					m.apply(&trs[ti], s)
					check(fmt.Sprintf("%s@%d.%d", m.name, si, ti), s)
				}
			}
		}
	}
}

// TestValidateMaskedMatchesLegacy pins the fault-mask path: with
// identical pre-occupied cells seeded into both indexes, the streamed
// validator must agree with the legacy oracle on schedules that do and
// do not touch the mask.
func TestValidateMaskedMatchesLegacy(t *testing.T) {
	s, err := core.BuildWRHT(core.Config{N: 15, Wavelengths: 2})
	if err != nil {
		t.Fatal(err)
	}
	seed := func() *rwa.Index {
		ix := rwa.NewIndex(s.Ring)
		// One cell set the schedule certainly uses (wavelength 0 near node
		// 0) and one far above the budget.
		ix.Preoccupy(topo.CW, s.Ring.ArcOf(0, 1, topo.CW), 0)
		ix.Preoccupy(topo.CCW, s.Ring.ArcOf(5, 3, topo.CCW), 90)
		return ix
	}
	got := s.ValidateWithIndex(seed(), 2)
	want := legacyValidate(s, seed(), 2)
	if (got == nil) != (want == nil) || (got != nil && got.Error() != want.Error()) {
		t.Fatalf("masked: streamed %v, legacy %v", got, want)
	}
	if got == nil {
		t.Fatal("mask on wavelength 0 should have produced a conflict")
	}
}

// TestValidateAllocsStepCountIndependent pins satellite criterion:
// validation over a reused index allocates a constant amount regardless
// of the schedule's step count (the request/arc/circuit scratch lives
// in the index and the validator, not per step).
func TestValidateAllocsStepCountIndependent(t *testing.T) {
	long := collective.BuildRing(128) // 254 steps of 128 transfers
	short := copySchedule(long)
	short.Steps = short.Steps[:4] // same per-step width, 4 steps
	ix := rwa.NewIndex(long.Ring)
	allocs := func(s *core.Schedule) float64 {
		return testing.AllocsPerRun(10, func() {
			if err := s.ValidateWithIndex(ix, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
	aShort, aLong := allocs(short), allocs(long)
	// Per-run cost is the validator + its scratch warm-up, which depends
	// on the step width (N), never on the step count: 63x the steps must
	// not change the allocation count.
	if aLong != aShort {
		t.Errorf("validation allocs scale with steps: %v for 4 steps, %v for 254", aShort, aLong)
	}
}
