package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden schedule files")

// TestGoldenFig2Schedule pins the exact Fig-2 schedule (15 nodes, 2
// wavelengths) to a golden file: any change to grouping, routing or
// wavelength assignment shows up as a reviewable diff. Regenerate with
// `go test ./internal/core -run Golden -update-golden`.
func TestGoldenFig2Schedule(t *testing.T) {
	s, err := BuildWRHT(Config{N: 15, Wavelengths: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "fig2_schedule.json")
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("Fig-2 schedule changed; run with -update-golden if intentional and review the diff")
	}
	// The golden file itself must decode into an equivalent, valid schedule.
	back, err := ReadSchedule(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Steps, s.Steps) {
		t.Error("golden file decodes to a different schedule")
	}
	if err := back.Validate(2); err != nil {
		t.Error(err)
	}
}
