package ir

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/topo"
)

// ReplaceSteps splices the flat steps into the program in place of the
// index range [lo, hi), recomputing each new transfer's occupied arc,
// re-deriving the dependency edges of the whole program, and
// re-validating it against the wavelength budget. On a validation
// failure the program is restored to its prior state and the error
// returned. This is the structural edit behind plan.Pass, which swaps a
// contiguous all-to-all phase span for a multi-round reconfiguration
// plan; unlike the circuit-metadata rewrites of the built-in passes, it
// may change the step count.
func (p *Program) ReplaceSteps(lo, hi int, steps []core.Step) error {
	if lo < 0 || hi < lo || hi > len(p.Steps) {
		return fmt.Errorf("ir: replace steps: range [%d,%d) out of bounds for %d steps", lo, hi, len(p.Steps))
	}
	repl := make([]Step, len(steps))
	for i, st := range steps {
		ns := Step{Phase: st.Phase}
		if len(st.Transfers) > 0 {
			ns.Transfers = append([]core.Transfer(nil), st.Transfers...)
			ns.Arcs = make([]topo.Arc, len(st.Transfers))
			for j, t := range st.Transfers {
				ns.Arcs[j] = p.Ring.ArcOf(t.Src, t.Dst, t.Dir)
			}
		}
		repl[i] = ns
	}
	old := p.Steps
	next := make([]Step, 0, len(old)-(hi-lo)+len(repl))
	next = append(next, old[:lo]...)
	next = append(next, repl...)
	next = append(next, old[hi:]...)
	p.Steps = next
	p.analyze()
	if err := p.check(); err != nil {
		p.Steps = old
		p.analyze()
		return fmt.Errorf("ir: replace steps [%d,%d): %w", lo, hi, err)
	}
	return nil
}
