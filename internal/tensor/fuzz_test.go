package tensor

import "testing"

// FuzzChunkRange fuzzes the chunk arithmetic: for any (n, of, index,
// nested sub), ranges stay within bounds, ordered, and nested chunks
// stay within their parents.
func FuzzChunkRange(f *testing.F) {
	f.Add(10, 3, 1, 2, 0)
	f.Add(0, 1, 0, 1, 0)
	f.Add(1023, 64, 63, 8, 7)
	f.Fuzz(func(t *testing.T, n, of, idx, subOf, subIdx int) {
		if n < 0 || n > 1<<20 {
			t.Skip()
		}
		if of < 1 || of > 1<<12 || idx < 0 || idx >= of {
			t.Skip()
		}
		if subOf < 1 || subOf > 1<<12 || subIdx < 0 || subIdx >= subOf {
			t.Skip()
		}
		c := Chunk{Index: idx, Of: of, Sub: &Chunk{Index: subIdx, Of: subOf}}
		if err := c.Validate(); err != nil {
			t.Fatalf("valid chunk rejected: %v", err)
		}
		plo, phi := (Chunk{Index: idx, Of: of}).Range(n)
		lo, hi := c.Range(n)
		if lo < plo || hi > phi || lo > hi {
			t.Fatalf("nested range [%d,%d) escapes parent [%d,%d)", lo, hi, plo, phi)
		}
		if b := c.Bytes(n); b != int64(hi-lo)*4 {
			t.Fatalf("Bytes %d != 4×%d", b, hi-lo)
		}
	})
}
