// Command trainsim simulates the end-to-end distributed DNN training the
// paper targets: it combines the FLOPs-based compute model (substituting
// the TensorFlow-profiler traces of §5.1), the optical all-reduce timing
// of Eq 6, and the DES timeline of synchronous data-parallel SGD to
// report per-epoch time and the fraction spent in all-reduce — the
// paper's motivating statistic that communication takes 50–90% of an
// iteration at scale [35].
//
// Usage:
//
//	trainsim [-n 1024] [-wavelengths 64] [-dataset 1281167] [-algo wrht|ring|bt|hring]
//
// -trace writes a Perfetto timeline of the simulated epoch (one trace
// process per workload, a few sample workers plus the all-reduce
// track); -metrics dumps per-workload epoch gauges on exit, by default
// in the Prometheus text exposition format (-metrics-format=legacy for
// the old name/value dump); -prom writes the Prometheus exposition to
// a file regardless of -metrics. The observability flags are shared
// with wrhtsim via cmd/internal/cliflags, so names and semantics match
// across the CLIs.
package main

import (
	"flag"
	"fmt"
	"log"

	"wrht/cmd/internal/cliflags"
	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/fabric"
	"wrht/internal/metrics"
	"wrht/internal/optical"
	"wrht/internal/train"
	"wrht/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainsim: ")
	var (
		n       = flag.Int("n", 1024, "data-parallel workers")
		waves   = flag.Int("wavelengths", 64, "optical wavelengths")
		dataset = flag.Int("dataset", 1281167, "dataset size (ImageNet-1k train split)")
		algo    = flag.String("algo", "wrht", "all-reduce algorithm: wrht, ring, bt, hring, dbtree, wdmhring")
	)
	shared := cliflags.Register(flag.CommandLine, cliflags.Trace|cliflags.Metrics|cliflags.Prom)
	flag.Parse()
	if err := shared.Validate(); err != nil {
		log.Fatal(err)
	}

	tr := shared.NewTracer()
	reg := shared.NewRegistry()

	p := optical.DefaultParams()
	p.Wavelengths = *waves
	optFab, err := p.Fabric()
	if err != nil {
		log.Fatal(err)
	}

	t := &metrics.Table{
		Title: fmt.Sprintf("Per-epoch training timeline: %d workers, %s all-reduce, %d wavelengths",
			*n, *algo, *waves),
		Headers: []string{"Workload", "batch/GPU", "iters", "compute/iter (ms)", "comm/iter (ms)", "epoch (s)", "comm share"},
	}
	for _, w := range workload.PaperWorkloads() {
		var prof core.Profile
		switch *algo {
		case "wrht":
			var err error
			prof, err = collective.WRHTProfile(core.Config{N: *n, Wavelengths: *waves})
			if err != nil {
				log.Fatal(err)
			}
		case "ring":
			prof = collective.RingProfile(*n)
		case "bt":
			prof = collective.BTProfile(*n)
		case "hring":
			prof = collective.HRingProfile(*n, 5, *waves)
		case "dbtree":
			prof = collective.DBTreeProfile(*n)
		case "wdmhring":
			prof = collective.WDMHRingProfile(*n, 32, *waves)
		default:
			log.Fatalf("unknown algorithm %q", *algo)
		}
		res, err := fabric.Engine{Fabric: optFab}.RunProfile(prof, w.GradBytes)
		if err != nil {
			log.Fatal(err)
		}
		tl := train.EpochTimeline(w, *n, *dataset, res.Time)
		tl.Trace = tr
		tl.TraceProcess = w.Model.Name
		out := tl.Run()
		reg.Gauge("train." + w.Model.Name + ".epoch_seconds").Set(out.TotalSec)
		reg.Gauge("train." + w.Model.Name + ".comm_fraction").Set(out.CommFraction)
		reg.Counter("train.workloads").Inc()
		t.AddRow(
			w.Model.Name,
			fmt.Sprint(w.BatchSize),
			fmt.Sprint(tl.Iterations),
			fmt.Sprintf("%.2f", w.ComputeSecPerIter*1e3),
			fmt.Sprintf("%.2f", res.Time*1e3),
			fmt.Sprintf("%.2f", out.TotalSec),
			fmt.Sprintf("%.1f%%", out.CommFraction*100),
		)
	}
	fmt.Println(t)
	if err := shared.WriteTrace(tr); err != nil {
		log.Fatal(err)
	}
	if err := shared.WriteMetrics(reg); err != nil {
		log.Fatal(err)
	}
}
