package optical

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/fabric"
)

// ringFabric adapts the TeraRack WDM-ring timing model (Eq 6, Table 2)
// to the fabric.Fabric interface: every step pays the MRR
// reconfiguration delay as circuit setup, and the step's transmission is
// the serialization plus O/E/O time of its busiest circuit.
type ringFabric struct {
	p Params
}

// Fabric returns the optical ring as a schedule-execution backend for
// fabric.Engine, validating the Table-2 parameters first.
func (p Params) Fabric() (fabric.Fabric, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return ringFabric{p: p}, nil
}

func (f ringFabric) Name() string { return "optical" }

// CheckSchedule accepts any schedule: the ring hosts exactly the nodes
// the schedule declares.
func (f ringFabric) CheckSchedule(*core.Schedule) error { return nil }

// CircuitBudget returns the per-direction wavelength budget. With
// withFibers set, the budget is widened by the physical fiber
// multiplicity (TeraRack routes two fiber rings per direction, §3.2);
// a multiplicity below one is a configuration error.
func (f ringFabric) CircuitBudget(withFibers bool) (int, error) {
	if !withFibers {
		return f.p.Wavelengths, nil
	}
	if f.p.FibersPerDirection < 1 {
		return 0, fmt.Errorf("optical: fibers per direction %d < 1", f.p.FibersPerDirection)
	}
	return f.p.EffectiveWavelengths(), nil
}

func (f ringFabric) GroupCost(bytes float64) fabric.StepCost {
	ser, oeo := f.p.transferParts(bytes)
	return fabric.StepCost{
		Setup:         f.p.ReconfigDelay,
		Serialization: ser,
		OEO:           oeo,
		Total:         f.p.ReconfigDelay + (ser + oeo),
		MaxBytes:      bytes,
	}
}

func (f ringFabric) StepCost(st core.Step, elems int) fabric.StepCost {
	var maxBytes float64
	for _, t := range st.Transfers {
		if b := float64(t.Chunk.Bytes(elems)); b > maxBytes {
			maxBytes = b
		}
	}
	return f.GroupCost(maxBytes)
}

// StepKey disables memoization: the closed-form step cost is cheaper
// than hashing the step.
func (f ringFabric) StepKey(core.Step, int) (string, bool) { return "", false }
