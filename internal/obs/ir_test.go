package obs

import (
	"testing"

	"wrht/internal/ir"
)

func TestIRObserverCountersAndSpans(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer()
	now := 0.0
	tr.Clock = func() float64 { now++; return now }
	o := NewIRObserver(tr, reg)
	o.PassApplied(ir.PassEvent{
		Pass: "split", Changed: true,
		StepsBefore: 3, StepsAfter: 5,
		DisjointBefore: 1, DisjointAfter: 3,
		Seconds: 0.25,
	})
	o.PassApplied(ir.PassEvent{Pass: "split", StepsBefore: 5, StepsAfter: 5, DisjointBefore: 3, DisjointAfter: 3})
	s := reg.Snapshot()
	for name, want := range map[string]int64{
		"ir.pass.split.runs":              2,
		"ir.pass.split.changed":           1,
		"ir.pass.split.boundaries_gained": 2,
		"ir.pass.split.steps_added":       2,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if tr.Events() != 2 {
		t.Errorf("tracer recorded %d spans, want 2", tr.Events())
	}
}

func TestIRObserverIsNilSafe(t *testing.T) {
	// No sinks at all: must not panic.
	NewIRObserver(nil, nil).PassApplied(ir.PassEvent{Pass: "reorder"})
	// A tracer without a wall clock must stay span-free: pass timing is
	// wall-clock diagnostics, not simulated time, and must never leak
	// into byte-stable simulated-timeline traces.
	tr := NewTracer()
	NewIRObserver(tr, nil).PassApplied(ir.PassEvent{Pass: "reorder", Seconds: 1})
	if tr.Events() != 0 {
		t.Errorf("clockless tracer recorded %d events, want 0", tr.Events())
	}
}
