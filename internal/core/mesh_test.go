package core

import (
	"testing"

	"wrht/internal/topo"
)

func TestLineAllToAllRequirement(t *testing.T) {
	// Max cut load for all-pairs on a line: ⌊k/2⌋·⌈k/2⌉ per fiber.
	for k := 2; k <= 40; k++ {
		want := (k / 2) * ((k + 1) / 2)
		if got := LineAllToAllRequirement(k); got != want {
			t.Errorf("k=%d: requirement %d, want %d", k, got, want)
		}
	}
	if LineAllToAllRequirement(1) != 0 || LineAllToAllRequirement(0) != 0 {
		t.Error("trivial sizes should need 0")
	}
}

func TestLineRequirementExceedsRing(t *testing.T) {
	// A line can't split flows two ways around, so it needs roughly twice
	// the ring's wavelengths (⌈k²/4⌉ vs ⌈k²/8⌉).
	for _, k := range []int{5, 9, 16, 25} {
		if LineAllToAllRequirement(k) <= AllToAllRequirement(k) {
			t.Errorf("k=%d: line %d should exceed ring %d", k, LineAllToAllRequirement(k), AllToAllRequirement(k))
		}
	}
}

func TestBuildWRHTLineStructure(t *testing.T) {
	// 15 nodes, enough wavelengths for the 3-rep line exchange
	// (requirement ⌊3/2⌋·⌈3/2⌉ = 2).
	s, err := BuildWRHTLine(Config{N: 15, Wavelengths: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() != 3 {
		t.Fatalf("line WRHT steps = %d, want 3", s.NumSteps())
	}
	// No transfer may wrap: CW means increasing index.
	for si, st := range s.Steps {
		for _, tr := range st.Transfers {
			if (tr.Dir == topo.CW) != (tr.Dst > tr.Src) {
				t.Fatalf("step %d: transfer %v would wrap on a line", si, tr)
			}
		}
	}
}

func TestBuildWRHTLineFallsBackToGather(t *testing.T) {
	// With only 1 wavelength the 3-rep line exchange (needs 2) is
	// infeasible, so the schedule must gather to a single root: θ = 4.
	s, err := BuildWRHTLine(Config{N: 9, Wavelengths: 1, GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() != 4 {
		t.Fatalf("steps = %d, want 4 (gather-only)", s.NumSteps())
	}
}

func TestMeshScheduleValidates(t *testing.T) {
	cases := []struct{ r, c, w int }{{4, 4, 2}, {3, 15, 2}, {8, 8, 4}, {1, 7, 2}, {7, 1, 2}}
	for _, cse := range cases {
		m := topo.NewMesh(cse.r, cse.c)
		s, err := BuildWRHTMesh(m, cse.w, 0)
		if err != nil {
			t.Fatalf("%dx%d: %v", cse.r, cse.c, err)
		}
		if err := ValidateMesh(s, m, cse.w); err != nil {
			t.Errorf("%dx%d: %v", cse.r, cse.c, err)
		}
	}
}

func TestValidateMeshRejectsWrap(t *testing.T) {
	m := topo.NewMesh(2, 5)
	s := &Schedule{Ring: topo.NewRing(10), Steps: []Step{{
		Transfers: []Transfer{{Src: 4, Dst: 0, Chunk: whole(), Dir: topo.CW}}, // CW from col 4 to col 0 wraps
	}}}
	if err := ValidateMesh(s, m, 0); err == nil {
		t.Fatal("wrapping transfer accepted on a mesh")
	}
}

func TestValidateMeshRejectsOverlap(t *testing.T) {
	m := topo.NewMesh(1, 10)
	s := &Schedule{Ring: topo.NewRing(10), Steps: []Step{{
		Transfers: []Transfer{
			{Src: 0, Dst: 5, Chunk: whole(), Dir: topo.CW, Wavelength: 0},
			{Src: 3, Dst: 8, Chunk: whole(), Dir: topo.CW, Wavelength: 0},
		},
	}}}
	if err := ValidateMesh(s, m, 0); err == nil {
		t.Fatal("overlapping same-wavelength line circuits accepted")
	}
}
