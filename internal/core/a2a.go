package core

import (
	"sort"
	"sync"

	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// All-to-all exchange among the top-level representatives (§4.1.2).
//
// The representatives r₀ < r₁ < … < r_{k-1} partition the physical ring
// into k gaps; every circuit between two representatives covers whole
// gaps, so routing and wavelength assignment reduce exactly to a virtual
// k-node ring whose "segments" are the gaps. Wavelength counts therefore
// depend only on k, never on where the representatives sit.
//
// Routing: each ordered pair travels the direction of its shorter index
// distance; diametral pairs (even k) are routed both-ways-together in
// alternation so that the two arcs of one pair tile the circle exactly.
//
// Assignment: a tiling-extraction greedy that repeatedly peels a set of
// disjoint arcs covering the circle (each such set is one wavelength).
// For odd k this meets the paper's ⌈k²/8⌉ bound exactly (verified by
// test for every odd k ≤ 129); for even k it uses at most ~⌈k/8⌉ extra
// wavelengths. Feasibility decisions use the constructive requirement,
// which coincides with the paper's formula for every configuration the
// paper evaluates.

// virtualArc is a CW circular interval of gaps [Start, Start+Len) mod K
// owned by the flow from rep index Src to rep index Dst.
type virtualArc struct {
	Src, Dst   int
	Start, Len int
	Dir        topo.Direction
}

// routeAllToAll routes all ordered pairs of k representatives on the
// virtual ring, returning the CW-fiber and CCW-fiber arc sets.
func routeAllToAll(k int) (cw, ccw []virtualArc) {
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			d := ((j-i)%k + k) % k
			switch {
			case 2*d < k:
				cw = append(cw, virtualArc{Src: i, Dst: j, Start: i, Len: d, Dir: topo.CW})
			case 2*d > k:
				ccw = append(ccw, virtualArc{Src: i, Dst: j, Start: j, Len: k - d, Dir: topo.CCW})
			default:
				// Diametral pair: route both arcs of pair p the same way so
				// they tile the circle together.
				p := i % (k / 2)
				if p < (k/2+1)/2 {
					cw = append(cw, virtualArc{Src: i, Dst: j, Start: i, Len: d, Dir: topo.CW})
				} else {
					ccw = append(ccw, virtualArc{Src: i, Dst: j, Start: j, Len: d, Dir: topo.CCW})
				}
			}
		}
	}
	return cw, ccw
}

// tileColor assigns wavelengths to arcs on a k-gap circle by repeatedly
// extracting near-exact tilings: walk the circle choosing the longest
// remaining arc that fits before the wrap completes, jumping over gaps
// with no available arc. Arcs are mutated in place via the returned
// parallel color slice. The second result is the number of colors used.
func tileColor(arcs []virtualArc, k int) ([]int, int) {
	colors := make([]int, len(arcs))
	// remaining[start] = indices of uncolored arcs starting there, by
	// ascending length.
	remaining := make([][]int, k)
	for idx, a := range arcs {
		remaining[a.Start] = append(remaining[a.Start], idx)
	}
	for s := range remaining {
		sort.Slice(remaining[s], func(x, y int) bool {
			return arcs[remaining[s][x]].Len < arcs[remaining[s][y]].Len
		})
	}
	left := len(arcs)
	color := 0
	for left > 0 {
		// Find the first start with remaining arcs.
		start := -1
		for s := 0; s < k; s++ {
			if len(remaining[s]) > 0 {
				start = s
				break
			}
		}
		p, used := start, 0
		for used < k {
			// Longest arc at p fitting in the remaining span.
			list := remaining[p]
			pick := -1
			for x := len(list) - 1; x >= 0; x-- {
				if used+arcs[list[x]].Len <= k {
					pick = x
					break
				}
			}
			if pick >= 0 {
				idx := list[pick]
				remaining[p] = append(list[:pick], list[pick+1:]...)
				colors[idx] = color
				left--
				used += arcs[idx].Len
				p = (p + arcs[idx].Len) % k
				continue
			}
			if len(list) > 0 {
				// Arcs remain here but none fits before the wrap: close
				// this wavelength rather than skipping over them (skipping
				// measurably inflates the color count on large even rings).
				break
			}
			// Jump to the next start with a fitting arc.
			jumped := false
			for step := 1; step < k-used; step++ {
				q := (p + step) % k
				ok := false
				for _, idx := range remaining[q] {
					if used+step+arcs[idx].Len <= k {
						ok = true
						break
					}
				}
				if ok {
					p, used = q, used+step
					jumped = true
					break
				}
			}
			if !jumped {
				break
			}
		}
		color++
	}
	return colors, color
}

// colorFiber colors one fiber's arcs. The CCW instance is the CW one
// rotated by the diametral-pair offset (its half-ring arcs start at pair
// index ⌈k/4⌉ instead of 0), so it is first rotated into the
// CW-isomorphic form — the tiling greedy is sensitive to where the
// diametral arcs sit relative to its lowest-start bias, and the rotation
// makes both fibers color identically. Rotation preserves arc overlap,
// so the returned colors are valid for the original arcs.
func colorFiber(arcs []virtualArc, k, shift int) ([]int, int) {
	if shift == 0 {
		return tileColor(arcs, k)
	}
	rot := make([]virtualArc, len(arcs))
	copy(rot, arcs)
	for i := range rot {
		rot[i].Start = ((rot[i].Start-shift)%k + k) % k
	}
	return tileColor(rot, k)
}

// ccwShift returns the rotation aligning the CCW fiber instance with the
// CW one: the first diametral pair routed CCW.
func ccwShift(k int) int {
	if k%2 != 0 {
		return 0
	}
	return (k/2 + 1) / 2
}

var a2aReqCache sync.Map // int -> int

// AllToAllRequirement returns the wavelength count the constructive
// all-to-all exchange among k representatives actually needs (the
// maximum over the two fibers). It equals AllToAllWavelengths(k) for
// odd k and exceeds it by at most ~⌈k/8⌉ for even k.
func AllToAllRequirement(k int) int {
	if k <= 1 {
		return 0
	}
	if v, ok := a2aReqCache.Load(k); ok {
		return v.(int)
	}
	cw, ccw := routeAllToAll(k)
	_, ncw := tileColor(cw, k)
	_, nccw := colorFiber(ccw, k, ccwShift(k))
	req := ncw
	if nccw > req {
		req = nccw
	}
	a2aReqCache.Store(k, req)
	return req
}

// buildAllToAllStep emits the physical all-to-all step for the given
// representatives (ascending ring positions) using the virtual-ring
// construction.
func buildAllToAllStep(ring topo.Ring, reps []int) Step {
	k := len(reps)
	st := Step{Phase: PhaseAllToAll}
	cw, ccw := routeAllToAll(k)
	cwColors, _ := tileColor(cw, k)
	ccwColors, _ := colorFiber(ccw, k, ccwShift(k))
	emit := func(arcs []virtualArc, colors []int) {
		for i, a := range arcs {
			st.Transfers = append(st.Transfers, Transfer{
				Src: reps[a.Src], Dst: reps[a.Dst],
				Chunk: tensor.Whole, Op: tensor.OpSum,
				Dir: a.Dir, Wavelength: colors[i],
			})
		}
	}
	emit(cw, cwColors)
	emit(ccw, ccwColors)
	return st
}
