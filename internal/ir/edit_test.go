package ir

import (
	"reflect"
	"testing"

	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// TestReplaceStepsRoundTrip splices a span with a copy of itself: the
// program must be unchanged (arcs and deps re-derived identically).
func TestReplaceStepsRoundTrip(t *testing.T) {
	s, err := core.BuildWRHT(core.Config{N: 32, Wavelengths: 8})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Raise()
	span := make([]core.Step, 2)
	for i := range span {
		span[i] = core.Step{Phase: p.Steps[1+i].Phase, Transfers: append([]core.Transfer(nil), p.Steps[1+i].Transfers...)}
	}
	if err := p.ReplaceSteps(1, 3, span); err != nil {
		t.Fatal(err)
	}
	if got := p.Raise(); !reflect.DeepEqual(got, want) {
		t.Error("identity splice changed the program")
	}
}

// TestReplaceStepsRejectsInvalid reverts on a splice that violates the
// wavelength budget, leaving the program intact.
func TestReplaceStepsRejectsInvalid(t *testing.T) {
	s, err := core.BuildWRHT(core.Config{N: 32, Wavelengths: 8})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Raise()
	bad := []core.Step{{Phase: core.PhaseReduce, Transfers: []core.Transfer{
		{Src: 0, Dst: 1, Chunk: tensor.Whole, Op: tensor.OpSum, Dir: topo.CW, Wavelength: 99},
	}}}
	if err := p.ReplaceSteps(0, 1, bad); err == nil {
		t.Fatal("over-budget splice did not error")
	}
	if got := p.Raise(); !reflect.DeepEqual(got, want) {
		t.Error("failed splice left the program mutated")
	}
}

// TestReplaceStepsBounds rejects out-of-range spans.
func TestReplaceStepsBounds(t *testing.T) {
	s, err := core.BuildWRHT(core.Config{N: 8, Wavelengths: 8})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]int{{-1, 0}, {0, len(p.Steps) + 1}, {2, 1}} {
		if err := p.ReplaceSteps(tc[0], tc[1], nil); err == nil {
			t.Errorf("range [%d,%d) did not error", tc[0], tc[1])
		}
	}
}
