// Package des is a minimal discrete-event simulation kernel: a
// time-ordered event queue with deterministic FIFO tie-breaking. The
// electrical fat-tree simulator uses it to sequence flow completions and
// the training simulator uses it to interleave per-worker compute and
// communication phases.
package des

import (
	"container/heap"
	"fmt"
)

// Hook observes the kernel's event lifecycle. Both methods run
// synchronously on the simulating goroutine; a nil Kernel.Hook costs
// one pointer comparison per event. Labels come from the *Named
// scheduling variants and are "" for unlabeled events.
type Hook interface {
	// EventScheduled fires when an event enters the queue: seq is its
	// FIFO tie-breaking rank (monotonically increasing across the
	// kernel's lifetime), at its firing time, now the clock at
	// scheduling time.
	EventScheduled(seq uint64, at, now float64, label string)
	// EventFired fires just before the event's callback runs, with the
	// clock already advanced to the event's time.
	EventFired(seq uint64, now float64, label string)
}

// Event is a scheduled callback.
type event struct {
	time  float64
	seq   uint64
	fn    func()
	label string
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel owns the simulated clock and the pending event queue. The zero
// value is ready to use at time 0.
type Kernel struct {
	// Hook, when non-nil, observes every event's scheduling and firing.
	// It must not mutate the kernel.
	Hook Hook

	now    float64
	seq    uint64
	events eventHeap
}

// Now returns the current simulated time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would reorder causality silently.
func (k *Kernel) At(t float64, fn func()) { k.AtNamed(t, "", fn) }

// AtNamed schedules fn at absolute time t with a label the Hook (and
// the timeline tracer built on it) can attribute the event to.
func (k *Kernel) AtNamed(t float64, label string, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("des: scheduling at %g before now %g", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{time: t, seq: k.seq, fn: fn, label: label})
	if k.Hook != nil {
		k.Hook.EventScheduled(k.seq, t, k.now, label)
	}
}

// After schedules fn to run delay seconds from now.
func (k *Kernel) After(delay float64, fn func()) { k.AfterNamed(delay, "", fn) }

// AfterNamed schedules fn delay seconds from now with a label.
func (k *Kernel) AfterNamed(delay float64, label string, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %g", delay))
	}
	k.AtNamed(k.now+delay, label, fn)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was available.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*event)
	k.now = e.time
	if k.Hook != nil {
		k.Hook.EventFired(e.seq, k.now, e.label)
	}
	e.fn()
	return true
}

// Run drains the event queue and returns the final clock value.
func (k *Kernel) Run() float64 {
	for k.Step() {
	}
	return k.now
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }
