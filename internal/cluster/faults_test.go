package cluster_test

import (
	"math/rand"
	"testing"

	"wrht/internal/cluster"
	"wrht/internal/core"
	"wrht/internal/optical"
	"wrht/internal/tensor"
)

// Fault-injection suite: the repository's three verification layers
// (numeric all-reduce verification, rwa arc validation, MRR light
// propagation) must each catch the class of corruption it is
// responsible for. A schedule bug that slips through all three would be
// a hole in the safety net, so these tests deliberately break schedules
// and assert detection.

func deepCopy(s *core.Schedule) *core.Schedule {
	out := &core.Schedule{Algorithm: s.Algorithm, Ring: s.Ring}
	for _, st := range s.Steps {
		ns := core.Step{Phase: st.Phase, Transfers: append([]core.Transfer(nil), st.Transfers...)}
		out.Steps = append(out.Steps, ns)
	}
	return out
}

func buildWRHT(t *testing.T, n, w int) *core.Schedule {
	t.Helper()
	s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func detectNumeric(t *testing.T, s *core.Schedule, n int) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	in := intInputs(rng, n, 32)
	want := cluster.ExpectedSum(in)
	c, err := cluster.New(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Execute(s); err != nil {
		return true // structural failure also counts as detection
	}
	return c.VerifyAllReduced(want, 0) != nil
}

func TestDroppedTransferDetected(t *testing.T) {
	const n = 30
	for _, stepIdx := range []int{0, 1, 2} {
		s := deepCopy(buildWRHT(t, n, 4))
		if stepIdx >= len(s.Steps) || len(s.Steps[stepIdx].Transfers) == 0 {
			continue
		}
		s.Steps[stepIdx].Transfers = s.Steps[stepIdx].Transfers[1:]
		if !detectNumeric(t, s, n) {
			t.Errorf("dropping a transfer from step %d went undetected", stepIdx)
		}
	}
}

func TestDroppedStepDetected(t *testing.T) {
	const n = 30
	s := deepCopy(buildWRHT(t, n, 4))
	s.Steps = s.Steps[:len(s.Steps)-1]
	if !detectNumeric(t, s, n) {
		t.Error("dropping the final broadcast step went undetected")
	}
}

func TestDuplicatedTransferDetected(t *testing.T) {
	const n = 30
	s := deepCopy(buildWRHT(t, n, 4))
	// Double-count one gather contribution.
	tr := s.Steps[0].Transfers[0]
	s.Steps[0].Transfers = append(s.Steps[0].Transfers, tr)
	if !detectNumeric(t, s, n) {
		t.Error("duplicated sum transfer went undetected")
	}
}

func TestWrongOpDetected(t *testing.T) {
	const n = 30
	s := deepCopy(buildWRHT(t, n, 4))
	// Turn one reduce payload into an overwrite.
	s.Steps[0].Transfers[0].Op = tensor.OpCopy
	if !detectNumeric(t, s, n) {
		t.Error("sum->copy corruption went undetected")
	}
}

func TestWavelengthCorruptionCaughtByValidators(t *testing.T) {
	const n = 30
	s := deepCopy(buildWRHT(t, n, 4))
	// Force two same-direction overlapping gather circuits onto one
	// wavelength: take two transfers towards the same representative and
	// equalize their wavelengths.
	st := &s.Steps[0]
	var i, j = -1, -1
	for a := range st.Transfers {
		for b := a + 1; b < len(st.Transfers); b++ {
			ta, tb := st.Transfers[a], st.Transfers[b]
			if ta.Dst == tb.Dst && ta.Dir == tb.Dir && ta.Wavelength != tb.Wavelength {
				i, j = a, b
				break
			}
		}
		if i >= 0 {
			break
		}
	}
	if i < 0 {
		t.Fatal("no suitable transfer pair found")
	}
	st.Transfers[j].Wavelength = st.Transfers[i].Wavelength
	if err := s.Validate(0); err == nil {
		t.Error("rwa validation missed the wavelength collision")
	}
	if err := optical.VerifySchedule(s); err == nil {
		t.Error("MRR verification missed the wavelength collision")
	}
	// Note: the data-plane executor is wavelength-oblivious by design
	// (it models ideal delivery), which is exactly why the validators
	// must catch this class.
}

func TestMisroutedTransferDetected(t *testing.T) {
	const n = 30
	s := deepCopy(buildWRHT(t, n, 4))
	// Send a gather payload to the wrong representative.
	s.Steps[0].Transfers[0].Dst = (s.Steps[0].Transfers[0].Dst + 1) % n
	if !detectNumeric(t, s, n) {
		t.Error("misrouted transfer went undetected")
	}
}
