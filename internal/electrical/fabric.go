package electrical

import (
	"fmt"
	"math"

	"wrht/internal/core"
	"wrht/internal/fabric"
)

// treeFabric adapts the fat-tree flow model to the fabric.Fabric
// interface. Packet switching needs no circuit setup, so Setup is
// always zero (and overlap mode degenerates to a no-op): a step's cost
// is the max–min fluid-model completion time split into the wire-drain
// part (Serialization) and the residual router-pipeline tail
// (RouterDelay).
type treeFabric struct {
	nw *Network
}

// Fabric returns the fat-tree as a schedule-execution backend for
// fabric.Engine.
func (nw *Network) Fabric() fabric.Fabric { return treeFabric{nw: nw} }

func (f treeFabric) Name() string { return "electrical" }

// CheckSchedule rejects schedules that need more hosts than the tree
// offers.
func (f treeFabric) CheckSchedule(s *core.Schedule) error {
	if s.Ring.N > f.nw.Tree.Hosts {
		return fmt.Errorf("electrical: schedule needs %d hosts, network has %d", s.Ring.N, f.nw.Tree.Hosts)
	}
	return nil
}

// CircuitBudget is zero: packet switching imposes no wavelength budget,
// and budget zero makes the engine's schedule validation skip the
// conflict check while keeping the structural checks.
func (f treeFabric) CircuitBudget(bool) (int, error) { return 0, nil }

// StepCost solves the fluid model for the step. Total carries the exact
// legacy stepDuration value; the component split is reporting-only.
func (f treeFabric) StepCost(st core.Step, elems int) fabric.StepCost {
	end, drain := f.nw.stepDuration(st, elems)
	var maxBytes float64
	for _, t := range st.Transfers {
		if b := float64(t.Chunk.Bytes(elems)); b > maxBytes {
			maxBytes = b
		}
	}
	return fabric.StepCost{
		Serialization: drain,
		RouterDelay:   end - drain,
		Total:         end,
		MaxBytes:      maxBytes,
	}
}

// GroupCost approximates one profile-group step without congestion:
// the payload is wire-inflated by per-packet framing and drained at one
// link's line rate, then the worst-case router path (three routers when
// traffic can cross edges, one inside a single edge) adds its pipeline
// latency. This is optimistic for steps whose flows share links, which
// is exactly the congestion the explicit-schedule path models — profile
// runs on the electrical fabric are a cross-fabric estimate, not the
// reference number.
func (f treeFabric) GroupCost(bytes float64) fabric.StepCost {
	p := f.nw.Params
	b := bytes
	if p.PacketBytes > 0 && b > 0 {
		packets := math.Ceil(b / float64(p.PacketBytes))
		b = packets * float64(p.PacketBytes+p.HeaderBytes)
	}
	ser := b * 8 / p.LinkBps
	routers := 1
	if f.nw.Tree.Edges > 1 {
		routers = 3
	}
	lat := float64(routers) * p.RouterDelay
	return fabric.StepCost{
		Serialization: ser,
		RouterDelay:   lat,
		Total:         ser + lat,
		MaxBytes:      bytes,
	}
}

// StepKey enables memoization: collectives repeat the same transfer
// pattern for thousands of steps, so identical steps are solved once.
func (f treeFabric) StepKey(st core.Step, elems int) (string, bool) {
	return stepSignature(st, elems), true
}
