package exp

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(context.Background(), func(worker int) {
			defer wg.Done()
			if worker < 0 || worker >= 4 {
				t.Errorf("worker index %d out of range", worker)
			}
			ran.Add(1)
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1)
	p.Close()
	err := p.Submit(context.Background(), func(int) { t.Error("task ran on closed pool") })
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close: %v, want ErrPoolClosed", err)
	}
}

func TestPoolSubmitCanceledContext(t *testing.T) {
	// A full pool plus a canceled submit context must not block.
	p := NewPool(1)
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	var wg sync.WaitGroup
	wg.Add(1)
	if err := p.Submit(context.Background(), func(int) { defer wg.Done(); <-block }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.Submit(ctx, func(int) { t.Error("task ran despite canceled context") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with canceled ctx: %v, want context.Canceled", err)
	}
}

// Routing a sweep through a shared pool must not change its output:
// results are assembled in index order regardless of execution order.
func TestSweepPoolParity(t *testing.T) {
	base := Defaults()
	base.Workers = 4
	seq := base
	seq.Workers = 1
	pooled := base
	pooled.Pool = NewPool(4)
	defer pooled.Pool.Close()

	for name, run := range map[string]func(Options) (any, error){
		"overlap": func(o Options) (any, error) {
			r, err := OverlapSweep(o, []int{64, 128}, 16, 1e7, nil)
			return r.Points, err
		},
		"degradation": func(o Options) (any, error) {
			r, err := Degradation(o, []int{64, 128}, 8, 1e7, []int{0, 1}, 1)
			return r.Points, err
		},
	} {
		t.Run(name, func(t *testing.T) {
			want, err := run(seq)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			gotLocal, err := run(base)
			if err != nil {
				t.Fatalf("local pool: %v", err)
			}
			gotShared, err := run(pooled)
			if err != nil {
				t.Fatalf("shared pool: %v", err)
			}
			if !reflect.DeepEqual(want, gotLocal) {
				t.Errorf("local-pool run diverged from sequential:\n%+v\nvs\n%+v", gotLocal, want)
			}
			if !reflect.DeepEqual(want, gotShared) {
				t.Errorf("shared-pool run diverged from sequential:\n%+v\nvs\n%+v", gotShared, want)
			}
		})
	}
}

// A canceled Options.Ctx must abort the sweep with a context error
// instead of computing every remaining point.
func TestSweepCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := Defaults()
	o.Workers = 2
	o.Ctx = ctx
	if _, err := OverlapSweep(o, []int{64, 128}, 16, 1e7, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("OverlapSweep under canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := Degradation(o, []int{64}, 8, 1e7, []int{0}, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("Degradation under canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := CrossFabric(o, 64, 8, 1e7); !errors.Is(err, context.Canceled) {
		t.Errorf("CrossFabric under canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := PlanSweep(o, []int{4}, []int{8}, []float64{25}, 1e7); !errors.Is(err, context.Canceled) {
		t.Errorf("PlanSweep under canceled ctx: %v, want context.Canceled", err)
	}
}
