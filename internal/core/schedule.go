// Package core implements the paper's primary contribution: the WRHT
// (Wavelength Reused Hierarchical Tree) all-reduce scheme for optical
// ring interconnects (§4), together with its closed-form analysis
// (Table 1, Lemma 1, Theorem 1) and the torus/mesh extension sketched in
// §6.1.
//
// A collective is represented as an explicit Schedule: an ordered list of
// bulk-synchronous steps, each holding the point-to-point transfers that
// proceed in parallel on separate (direction, wavelength) circuits. The
// same schedule drives three consumers: the optical timing simulator
// (internal/optical), the wavelength-conflict validator (internal/rwa),
// and the real data-plane executor (internal/cluster).
package core

import (
	"fmt"

	"wrht/internal/rwa"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// Phase labels the role of a step within the collective.
type Phase int

const (
	// PhaseReduce steps move partial sums toward representatives (§4.1).
	PhaseReduce Phase = iota
	// PhaseAllToAll is the final exchange among top-level representatives
	// when the wavelength budget permits it (§4.1.2).
	PhaseAllToAll
	// PhaseBroadcast steps fan the reduced vector back out, reversing the
	// reduce stage (§4.1).
	PhaseBroadcast
)

func (p Phase) String() string {
	switch p {
	case PhaseReduce:
		return "reduce"
	case PhaseAllToAll:
		return "all-to-all"
	case PhaseBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Transfer is one point-to-point movement within a step. Src sends the
// designated chunk of its local vector state; Dst applies Op. On the
// optical ring the transfer owns wavelength Wavelength on the Dir fiber
// along the arc from Src to Dst for the duration of the step.
type Transfer struct {
	Src, Dst   int
	Chunk      tensor.Chunk
	Op         tensor.ReduceOp
	Dir        topo.Direction
	Wavelength int
}

func (t Transfer) String() string {
	return fmt.Sprintf("%d->%d %s %s λ%d %s", t.Src, t.Dst, t.Chunk, t.Op, t.Wavelength, t.Dir)
}

// Step is one bulk-synchronous communication round. All transfer
// payloads are read from pre-step state and all reductions are applied
// before the next step begins (circuit-switched semantics: the MRRs are
// reconfigured between steps, §4.2).
type Step struct {
	Phase     Phase
	Transfers []Transfer
}

// MaxWavelength returns the highest wavelength index used in the step
// plus one (i.e. the wavelength count), or 0 for an empty step.
func (s Step) MaxWavelength() int {
	m := 0
	for _, t := range s.Transfers {
		if t.Wavelength+1 > m {
			m = t.Wavelength + 1
		}
	}
	return m
}

// Schedule is a complete collective schedule over an N-node ring.
type Schedule struct {
	Algorithm string
	Ring      topo.Ring
	Steps     []Step
}

// NumSteps returns the communication step count θ of the schedule.
func (s *Schedule) NumSteps() int { return len(s.Steps) }

// WavelengthsNeeded returns the largest per-step wavelength count.
func (s *Schedule) WavelengthsNeeded() int {
	m := 0
	for _, st := range s.Steps {
		if w := st.MaxWavelength(); w > m {
			m = w
		}
	}
	return m
}

// Validate checks structural sanity and wavelength conflict-freedom of
// every step: node ids in range, chunks well formed, no self transfers,
// no two same-direction same-wavelength transfers with overlapping arcs,
// and (if wavelengths > 0) every wavelength within budget.
func (s *Schedule) Validate(wavelengths int) error {
	// One occupancy index serves every step, updated with per-step
	// occupy/release deltas; every scratch buffer (requests, arcs,
	// circuits) is reused across steps (see StepValidator).
	return s.ValidateWithIndex(rwa.NewIndex(s.Ring), wavelengths)
}

// ValidateWithIndex is Validate over a caller-supplied occupancy index,
// so fault-aware callers can seed pre-occupied (masked) cells — dead
// wavelengths, cut fiber segments — that every step must route around
// (the index is reset once on entry, which preserves the seeds; a step
// touching one fails with rwa.MaskedConflict). Validation runs over the
// schedule's step stream with delta index updates between steps
// (validate.go); the errors are identical to the historical per-step
// Reset+replay behaviour.
func (s *Schedule) ValidateWithIndex(ix *rwa.Index, wavelengths int) error {
	return ValidateSource(s.Source(), ix, wavelengths)
}

// StepsByPhase returns the number of steps per phase.
func (s *Schedule) StepsByPhase() (reduce, a2a, bcast int) {
	for _, st := range s.Steps {
		switch st.Phase {
		case PhaseReduce:
			reduce++
		case PhaseAllToAll:
			a2a++
		case PhaseBroadcast:
			bcast++
		}
	}
	return
}

// Profile is the analytic step profile of a collective: a sequence of
// homogeneous step groups. It carries exactly the information the Eq-6
// timing model needs, so large configurations (N in the thousands, GB
// vectors) can be timed without materialising millions of Transfer
// structs. Constructive schedules and profiles are cross-checked for
// equality on small N by the test suite.
type Profile struct {
	Algorithm string
	Groups    []ProfileGroup
}

// ProfileGroup is a run of Steps identical steps whose busiest circuit
// carries FracOfD × d bytes (d = per-node vector size).
type ProfileGroup struct {
	Steps   int
	FracOfD float64
	// Wavelengths is the per-step wavelength requirement of the group
	// (informational; used by feasibility checks and reports).
	Wavelengths int
}

// NumSteps returns the total step count of the profile.
func (p Profile) NumSteps() int {
	n := 0
	for _, g := range p.Groups {
		n += g.Steps
	}
	return n
}

// ProfileOf derives the analytic profile of an explicit schedule by
// grouping consecutive steps with identical busiest-circuit fractions.
func ProfileOf(s *Schedule) Profile {
	p := Profile{Algorithm: s.Algorithm}
	for _, st := range s.Steps {
		frac := 0.0
		for _, t := range st.Transfers {
			if f := t.Chunk.Fraction(); f > frac {
				frac = f
			}
		}
		w := st.MaxWavelength()
		if k := len(p.Groups); k > 0 && p.Groups[k-1].FracOfD == frac && p.Groups[k-1].Wavelengths == w {
			p.Groups[k-1].Steps++
		} else {
			p.Groups = append(p.Groups, ProfileGroup{Steps: 1, FracOfD: frac, Wavelengths: w})
		}
	}
	return p
}
