package plan

import (
	"testing"

	"wrht/internal/core"
	"wrht/internal/electrical"
	"wrht/internal/fabric"
	"wrht/internal/optical"
	"wrht/internal/topo"
)

func opticalFab(t testing.TB, w int, aSec float64) fabric.Fabric {
	t.Helper()
	p := optical.DefaultParams()
	p.Wavelengths = w
	if aSec > 0 {
		p.ReconfigDelay = aSec
	}
	f, err := p.Fabric()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func identityReps(r int) []int {
	reps := make([]int, r)
	for i := range reps {
		reps[i] = i
	}
	return reps
}

// TestPredictedMatchesSimulated cross-checks the planner's pricing
// against fabric.Engine on both fabrics: the chosen plan's Predicted
// must equal the engine's simulated time bit for bit (the pricing
// mirrors the engine's accumulation statement for statement), and every
// other candidate must simulate to its own prediction too.
func TestPredictedMatchesSimulated(t *testing.T) {
	const dBytes = 25e6
	cases := []struct {
		name    string
		fab     fabric.Fabric
		budget  int
		r       int
		overlap bool
	}{
		{"optical-r16-w8", opticalFab(t, 8, 0), 8, 16, true},
		{"optical-r32-w8", opticalFab(t, 8, 0), 8, 32, true},
		{"optical-r8-w64", opticalFab(t, 64, 0), 64, 8, true},
		{"optical-no-overlap", opticalFab(t, 8, 0), 8, 16, false},
	}
	if nw, err := electrical.NewNetwork(16, electrical.DefaultParams()); err == nil {
		cases = append(cases, struct {
			name    string
			fab     fabric.Fabric
			budget  int
			r       int
			overlap bool
		}{"electrical-r16", nw.Fabric(), 0, 16, false})
	} else {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ring := topo.NewRing(tc.r)
			reps := identityReps(tc.r)
			pl := Planner{Fabric: tc.fab, Budget: tc.budget, Overlap: tc.overlap}
			d, err := pl.Plan(ring, reps, dBytes)
			if err != nil {
				t.Fatal(err)
			}
			if len(d.Candidates) == 0 {
				t.Fatal("no candidates")
			}
			eng := fabric.Engine{Fabric: tc.fab, Opts: fabric.Options{Overlap: tc.overlap, ValidateWavelengths: true}}
			for i, c := range d.Candidates {
				steps, err := core.BuildPhaseSteps(ring, reps, c.Plan)
				if err != nil {
					t.Fatalf("candidate %s: %v", c.Plan, err)
				}
				res, err := eng.RunSchedule(&core.Schedule{Algorithm: "a2a-plan", Ring: ring, Steps: steps}, dBytes)
				if err != nil {
					t.Fatalf("candidate %s: %v", c.Plan, err)
				}
				if res.Time != c.Predicted {
					t.Errorf("candidate %s: predicted %.12g s, engine %.12g s", c.Plan, c.Predicted, res.Time)
				}
				if c.Predicted < d.Best().Predicted {
					t.Errorf("candidate %d (%s) beats the chosen plan", i, c.Plan)
				}
			}
			sim, err := eng.RunSchedule(d.Materialize(ring), dBytes)
			if err != nil {
				t.Fatal(err)
			}
			if sim.Time != d.Best().Predicted {
				t.Errorf("chosen %s: predicted %.12g s, simulated %.12g s", d.Best().Plan, d.Best().Predicted, sim.Time)
			}
		})
	}
}

// TestOverlapPrefersStaggeredWhenItWins checks the overlap pricing is
// live: with overlap on, the planner's chosen time is never above the
// overlap-off choice, and staggered candidates price below their packed
// siblings whenever the halved stripes cost less than the hidden
// reconfigurations (small payloads).
func TestOverlapPricingMonotone(t *testing.T) {
	fab := opticalFab(t, 8, 0)
	ring := topo.NewRing(16)
	reps := identityReps(16)
	for _, dBytes := range []float64{1e3, 1e5, 1e7} {
		on := Planner{Fabric: fab, Budget: 8, Overlap: true}
		off := Planner{Fabric: fab, Budget: 8, Overlap: false}
		dOn, err := on.Plan(ring, reps, dBytes)
		if err != nil {
			t.Fatal(err)
		}
		dOff, err := off.Plan(ring, reps, dBytes)
		if err != nil {
			t.Fatal(err)
		}
		if dOn.Best().Predicted > dOff.Best().Predicted {
			t.Errorf("d=%g: overlap-on choice %.12g s slower than overlap-off %.12g s", dBytes, dOn.Best().Predicted, dOff.Best().Predicted)
		}
	}
}

// TestCostArgminConsistent checks the analytic closed form against the
// fabric pricing: the plan Cost ranks cheapest must tie the fabric-
// priced argmin's Cost (Cost ignores the sub-microsecond O/E/O term and
// stripe rounding, so index equality is only guaranteed up to exact
// Cost ties).
func TestCostArgminConsistent(t *testing.T) {
	p := optical.DefaultParams()
	for _, tc := range []struct{ r, w int }{{16, 8}, {32, 8}, {32, 16}, {8, 64}} {
		fab := opticalFab(t, tc.w, 0)
		ring := topo.NewRing(tc.r)
		reps := identityReps(tc.r)
		for _, dBytes := range []float64{1e4, 1e6, 100e6} {
			pl := Planner{Fabric: fab, Budget: tc.w, Overlap: false}
			d, err := pl.Plan(ring, reps, dBytes)
			if err != nil {
				t.Fatal(err)
			}
			minCost := -1.0
			for _, c := range d.Candidates {
				if cost := Cost(c.Plan, dBytes, p.ReconfigDelay, p.BandwidthBps); minCost < 0 || cost < minCost {
					minCost = cost
				}
			}
			chosenCost := Cost(d.Best().Plan, dBytes, p.ReconfigDelay, p.BandwidthBps)
			if rel := (chosenCost - minCost) / minCost; rel > 1e-6 {
				t.Errorf("r=%d w=%d d=%g: chosen plan's analytic cost %.12g exceeds the analytic argmin %.12g (rel %.2g)",
					tc.r, tc.w, dBytes, chosenCost, minCost, rel)
			}
		}
	}
}

// TestPlannerSteadyStateAllocs pins the planner's zero-alloc steady
// state: one warm call caches the (r, w) plan enumeration and sizes the
// pooled builder, probe and candidate buffers, after which repeated
// planning of the same shape allocates nothing.
func TestPlannerSteadyStateAllocs(t *testing.T) {
	fab := opticalFab(t, 8, 0)
	ring := topo.NewRing(32)
	reps := identityReps(32)
	pl := Planner{Fabric: fab, Budget: 8, Overlap: true}
	if _, err := pl.Plan(ring, reps, 64e6); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := pl.Plan(ring, reps, 64e6); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Plan allocates %.1f times per call, want 0", allocs)
	}
}

// TestPlannerErrors covers the failure modes.
func TestPlannerErrors(t *testing.T) {
	var empty Planner
	if _, err := empty.Plan(topo.NewRing(4), []int{0, 1}, 1e6); err == nil {
		t.Error("fabric-less planner did not error")
	}
	pl := Planner{Fabric: opticalFab(t, 8, 0), Budget: 8}
	if _, err := pl.Plan(topo.NewRing(4), []int{0, 1}, -1); err == nil {
		t.Error("negative payload did not error")
	}
	if _, err := pl.Plan(topo.NewRing(4), []int{1, 0}, 1e6); err == nil {
		t.Error("descending representatives did not error")
	}
}

// BenchmarkPlanAllToAll measures a full plan decision — enumerate,
// build, validate and price every candidate — at the r=32, w=8 fallback
// regime with a 100 MB payload.
func BenchmarkPlanAllToAll(b *testing.B) {
	fab := opticalFab(b, 8, 0)
	ring := topo.NewRing(32)
	reps := identityReps(32)
	pl := Planner{Fabric: fab, Budget: 8, Overlap: true}
	if _, err := pl.Plan(ring, reps, 100e6); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Plan(ring, reps, 100e6); err != nil {
			b.Fatal(err)
		}
	}
}
