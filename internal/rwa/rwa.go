// Package rwa implements routing and wavelength assignment (RWA) for
// circuits on the optical ring, per §4.1.2 of the paper: communications
// inside disjoint subgroups are independent, so wavelengths are reused
// across subgroups, and within a conflict set the First Fit [21] or
// Random Fit [31] heuristics assign wavelengths.
//
// A circuit on a ring occupies a contiguous arc of fiber segments in one
// travel direction. Two circuits conflict iff they travel the same
// direction and their arcs share a segment; only then must their
// wavelengths differ. The TeraRack node has an independent Tx/Rx array
// per direction, so circuits in opposite directions never conflict even
// on the same wavelength (§3.3).
package rwa

import (
	"fmt"
	"math/rand"

	"wrht/internal/topo"
)

// Request is one circuit to be colored.
type Request struct {
	Src, Dst int
	Dir      topo.Direction
}

// Assignment maps each request (by position) to a wavelength index.
type Assignment []int

// Strategy selects the wavelength-assignment heuristic.
type Strategy int

const (
	// FirstFit assigns the lowest-index wavelength free on every segment
	// of the circuit's arc.
	FirstFit Strategy = iota
	// RandomFit assigns a uniformly random wavelength among those free on
	// the circuit's arc.
	RandomFit
)

func (s Strategy) String() string {
	switch s {
	case FirstFit:
		return "first-fit"
	case RandomFit:
		return "random-fit"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Assign colors the requests on ring r using the given strategy. rng is
// required for RandomFit and ignored for FirstFit. The returned
// assignment uses wavelength indices starting at 0; the second result is
// the number of distinct wavelengths used (max index + 1).
//
// Assign is greedy in request order. For the nested same-direction arcs
// produced by WRHT's grouped gathers, first-fit is optimal (the conflict
// graph per direction is an interval graph within each group and groups
// are segment-disjoint).
func Assign(r topo.Ring, reqs []Request, strat Strategy, rng *rand.Rand) (Assignment, int) {
	asn := make(Assignment, len(reqs))
	arcs := make([]topo.Arc, len(reqs))
	for i, q := range reqs {
		arcs[i] = r.ArcOf(q.Src, q.Dst, q.Dir)
	}
	maxUsed := 0
	for i := range reqs {
		used := map[int]bool{}
		for j := 0; j < i; j++ {
			if reqs[j].Dir != reqs[i].Dir {
				continue
			}
			if arcs[j].Overlaps(arcs[i]) {
				used[asn[j]] = true
			}
		}
		w := pick(used, strat, rng)
		asn[i] = w
		if w+1 > maxUsed {
			maxUsed = w + 1
		}
	}
	return asn, maxUsed
}

func pick(used map[int]bool, strat Strategy, rng *rand.Rand) int {
	switch strat {
	case FirstFit:
		for w := 0; ; w++ {
			if !used[w] {
				return w
			}
		}
	case RandomFit:
		if rng == nil {
			panic("rwa: RandomFit requires a rand source")
		}
		// Random fit chooses uniformly among the free wavelengths below
		// max(used)+2, which always includes at least one free slot.
		limit := 0
		for w := range used {
			if w+1 > limit {
				limit = w + 1
			}
		}
		limit++ // ensure at least one candidate above all used
		var free []int
		for w := 0; w < limit; w++ {
			if !used[w] {
				free = append(free, w)
			}
		}
		return free[rng.Intn(len(free))]
	default:
		panic("rwa: unknown strategy")
	}
}

// Conflict describes a wavelength clash between two circuits.
type Conflict struct {
	I, J       int // request indices
	Wavelength int
}

func (c Conflict) Error() string {
	return fmt.Sprintf("rwa: requests %d and %d share wavelength %d on overlapping same-direction arcs", c.I, c.J, c.Wavelength)
}

// Validate checks that the assignment is conflict-free on ring r and that
// every wavelength index is within [0, wavelengths). A wavelengths value
// of 0 disables the range check.
func Validate(r topo.Ring, reqs []Request, asn Assignment, wavelengths int) error {
	if len(reqs) != len(asn) {
		return fmt.Errorf("rwa: %d requests but %d assignments", len(reqs), len(asn))
	}
	arcs := make([]topo.Arc, len(reqs))
	for i, q := range reqs {
		arcs[i] = r.ArcOf(q.Src, q.Dst, q.Dir)
	}
	for i := range reqs {
		if asn[i] < 0 {
			return fmt.Errorf("rwa: request %d has negative wavelength %d", i, asn[i])
		}
		if wavelengths > 0 && asn[i] >= wavelengths {
			return fmt.Errorf("rwa: request %d uses wavelength %d beyond budget %d", i, asn[i], wavelengths)
		}
		for j := i + 1; j < len(reqs); j++ {
			if reqs[i].Dir != reqs[j].Dir || asn[i] != asn[j] {
				continue
			}
			if arcs[i].Overlaps(arcs[j]) {
				return Conflict{I: i, J: j, Wavelength: asn[i]}
			}
		}
	}
	return nil
}
