// Package api defines the versioned request/response schema shared by
// the wrhtd daemon and the wrhtsim/trainsim CLIs. Every JSON payload a
// CLI emits with -json and every body wrhtd serves marshals through the
// types here, so the two surfaces cannot drift: the daemon parity test
// (cmd/wrhtsim) asserts byte identity and the round-trip test in this
// package asserts encode → decode → deep-equal for every type.
//
// The schema is deliberately free of wall-clock fields (no time.Time,
// no durations measured off the host clock): responses are pure
// functions of the request, which is what makes both the byte-parity
// guarantee and the daemon's request coalescing sound. Volatile
// observability lives in the obs registry, never in API responses.
package api

import (
	"encoding/json"
	"fmt"
	"io"

	"wrht/internal/core"
)

// Version is the API generation every response carries and every
// daemon route is prefixed with ("/v1/...").
const Version = "v1"

// Error codes. They partition the failure space coarsely enough for a
// client to dispatch on without parsing messages.
const (
	// CodeBadRequest covers malformed or self-contradictory requests
	// (bad JSON, missing required fields, negative payloads).
	CodeBadRequest = "bad_request"
	// CodeUnknownKind is a collective kind Build does not know.
	CodeUnknownKind = "unknown_kind"
	// CodeUnknownBackend is a simulation backend Simulate does not know.
	CodeUnknownBackend = "unknown_backend"
	// CodeUnconsumedOption is a build option the chosen kind does not
	// consume (the facade's strict functional-option check).
	CodeUnconsumedOption = "unconsumed_option"
	// CodeBuildFailed is a schedule construction or validation failure
	// for a structurally valid request.
	CodeBuildFailed = "build_failed"
	// CodeSimulateFailed is an engine or sweep failure.
	CodeSimulateFailed = "simulate_failed"
	// CodeCheckFailed reports a requested gate (overlap/plan -check)
	// that did not hold.
	CodeCheckFailed = "check_failed"
	// CodeCanceled is a request abandoned mid-flight (client gone or
	// daemon draining).
	CodeCanceled = "canceled"
	// CodeMethodNotAllowed is a non-POST hit on an API endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeInternal is everything else.
	CodeInternal = "internal"
)

// Error is the typed error every API surface returns. It implements
// error so executors can thread it through plain error returns.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Code + ": " + e.Message }

// Errorf builds an Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// HTTPStatus maps the code to the status line wrhtd serves it under.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest, CodeUnknownKind, CodeUnknownBackend, CodeUnconsumedOption:
		return 400
	case CodeMethodNotAllowed:
		return 405
	case CodeBuildFailed, CodeSimulateFailed, CodeCheckFailed:
		return 422
	case CodeCanceled:
		return 503
	}
	return 500
}

// ErrorEnvelope is the body of every non-2xx daemon response:
// {"error": {"code": ..., "message": ...}}.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// Encode writes v as two-space-indented JSON with a trailing newline —
// the one serialization both the CLIs and the daemon use, so equal
// values produce equal bytes.
func Encode(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// FaultSpec mirrors fault.Spec: how many faults of each class to
// sample, deterministically from the seed. The wavelength population
// dead wavelengths are drawn from is the request's wavelength budget.
type FaultSpec struct {
	Seed         int64   `json:"seed,omitempty"`
	Nodes        int     `json:"nodes,omitempty"`
	Transceivers int     `json:"transceivers,omitempty"`
	Wavelengths  int     `json:"wavelengths,omitempty"`
	Segments     int     `json:"segments,omitempty"`
	MRRs         int     `json:"mrrs,omitempty"`
	MRRLossDB    float64 `json:"mrr_loss_db,omitempty"`
}

// BuildRequest asks for one schedule construction (wrht.Build through
// the facade's strict functional options). A zero field means "option
// not given": the facade maps each non-zero field onto its functional
// option and rejects any the kind does not consume, exactly as a
// direct Build call would.
type BuildRequest struct {
	// Kind is the collective ("wrht", "ring", "torus", ...); empty
	// defaults to "wrht".
	Kind string `json:"kind,omitempty"`
	// N is the ring size (required, ≥ 1).
	N            int        `json:"n"`
	Wavelengths  int        `json:"wavelengths,omitempty"`
	GroupSize    int        `json:"group_size,omitempty"`
	MaxGroupSize int        `json:"max_group_size,omitempty"`
	Rows         int        `json:"rows,omitempty"`
	Cols         int        `json:"cols,omitempty"`
	Participants []int      `json:"participants,omitempty"`
	Root         *int       `json:"root,omitempty"`
	NoAllToAll   bool       `json:"no_all_to_all,omitempty"`
	Faults       *FaultSpec `json:"faults,omitempty"`
	// Stream consumes the schedule as a step stream instead of
	// materializing it (WRHT only; the at-scale build path).
	Stream bool `json:"stream,omitempty"`
}

// Normalize returns the request with defaults resolved: the kind
// defaulted to "wrht" and, for WRHT builds with a wavelength budget,
// the group size resolved through core.Config.Canonical — so two
// requests that build identical schedules share one canonical form
// (and hence one singleflight key).
func (r BuildRequest) Normalize() BuildRequest {
	if r.Kind == "" {
		r.Kind = "wrht"
	}
	if r.Kind == "wrht" && r.Wavelengths > 0 {
		cfg := core.Config{
			N:            r.N,
			Wavelengths:  r.Wavelengths,
			GroupSize:    r.GroupSize,
			MaxGroupSize: r.MaxGroupSize,
		}.Canonical()
		r.GroupSize = cfg.GroupSize
	}
	return r
}

// Key returns the coalescing key: the canonical JSON of the normalized
// request. Requests with equal keys are interchangeable — they build
// byte-identical responses.
func (r BuildRequest) Key() string { return jsonKey(r.Normalize()) }

// SimulateRequest times one collective on one backend: the schedule
// described by Build, run at PayloadBytes per node.
type SimulateRequest struct {
	// Backend is "optical" or "electrical".
	Backend string       `json:"backend"`
	Build   BuildRequest `json:"build"`
	// PayloadBytes is the per-node gradient size in bytes (required,
	// > 0).
	PayloadBytes float64 `json:"payload_bytes"`
	// Overlap enables the reconfiguration–communication overlap mode
	// (optical only).
	Overlap bool `json:"overlap,omitempty"`
	// Hosts sets the electrical fat-tree host count (defaults to the
	// schedule's ring size).
	Hosts int `json:"hosts,omitempty"`
	// NoValidate skips the optical pre-run schedule validation.
	NoValidate bool `json:"no_validate,omitempty"`
	// Trace returns the simulated-time Perfetto timeline of the run
	// inline in the response.
	Trace bool `json:"trace,omitempty"`
}

// Normalize resolves the embedded build request's defaults.
func (r SimulateRequest) Normalize() SimulateRequest {
	r.Build = r.Build.Normalize()
	return r
}

// Key returns the coalescing key for the normalized request.
func (r SimulateRequest) Key() string { return jsonKey(r.Normalize()) }

// SweepRequest runs one of the exp package's named sweeps:
// "crossfabric" (N is the ring size), "overlap" or "faults" (Ns lists
// ring sizes; empty selects each sweep's paper default).
type SweepRequest struct {
	Sweep string `json:"sweep"`
	// N is the crossfabric ring size.
	N int `json:"n,omitempty"`
	// Ns lists the overlap/faults ring sizes; empty selects the sweep's
	// paper defaults ({1024, 4096} and {64, 1024, 4096}).
	Ns          []int   `json:"ns,omitempty"`
	Wavelengths int     `json:"wavelengths"`
	PayloadMB   float64 `json:"payload_mb"`
	// Passes selects the overlap IR pipeline ("all", "none", or a
	// comma-separated subset of reorder, recolor, split).
	Passes string `json:"passes,omitempty"`
	// Dead lists the faults sweep's dead-wavelength counts (empty
	// selects {0, 1, 2, 4, 8}); Seed seeds the fault sampling (0
	// selects the default seed 1, matching the CLI).
	Dead []int `json:"dead,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// Check applies the sweep's CI gate (overlap: passes strictly beat
	// the baseline hidden count) and fails with check_failed otherwise.
	Check bool `json:"check,omitempty"`
}

// Normalize resolves the sweep defaults shared by CLI and daemon.
func (r SweepRequest) Normalize() SweepRequest {
	if r.Passes == "" {
		r.Passes = "all"
	}
	if r.Sweep == "faults" && r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// Key returns the coalescing key for the normalized request.
func (r SweepRequest) Key() string { return jsonKey(r.Normalize()) }

// PlanRequest sweeps the all-to-all planner over the (r, w, a) grid
// plus one electrical row per r, and measures the planner rescue on
// the named fallback configurations.
type PlanRequest struct {
	// Rs are the representative counts, AMicros the reconfiguration
	// delays in µs; both required and non-empty.
	Rs          []int     `json:"rs"`
	Wavelengths int       `json:"wavelengths"`
	AMicros     []float64 `json:"a_micros"`
	PayloadMB   float64   `json:"payload_mb"`
	// NoRescue skips the rescue table (grid sweep only).
	NoRescue bool `json:"no_rescue,omitempty"`
	// Check applies the planner CI gate (predicted argmin == simulated
	// argmin everywhere, rescue speedups > 1).
	Check bool `json:"check,omitempty"`
}

// Key returns the coalescing key for the request.
func (r PlanRequest) Key() string { return jsonKey(r) }

// jsonKey marshals a normalized request compactly. Marshaling a
// struct of scalars and slices cannot fail, so errors degrade to a
// (correct, never-shared) unique key rather than propagating.
func jsonKey(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("unkeyable:%p", &v)
	}
	return string(b)
}
