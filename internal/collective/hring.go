package collective

import (
	"wrht/internal/core"
)

// BuildHRing constructs the hierarchical-ring all-reduce of [28]
// (the paper's H-Ring baseline): nodes are split into G = n/m groups of
// m consecutive nodes, and the algorithm runs
//
//  1. an intra-group ring reduce-scatter over m bands (m−1 steps),
//  2. m concurrent inter-group ring all-reduces — slot j of every group
//     forms a G-node ring reducing band j — taking 2(G−1) logical steps
//     and m wavelengths; when only w < m wavelengths are available the
//     slots serialize into ⌈m/w⌉ sub-steps per logical step, which is
//     the wavelength dependence Fig 5 shows for H-Ring,
//  3. an intra-group ring all-gather (m−1 steps).
//
// The constructive schedule requires m | n and 2 ≤ m ≤ n. The paper's
// own closed-form count (core.StepsHRingPaper) differs from the
// constructed schedule by one step at the paper's settings (416 built vs
// 417 from the formula at N=1024, m=5); EXPERIMENTS.md discusses this.
func BuildHRing(n, m, w int) (*core.Schedule, error) {
	src, err := StreamHRing(n, m, w)
	if err != nil {
		return nil, err
	}
	return core.Collect(src), nil
}

// HRingSteps returns the step count of the constructive H-Ring schedule:
// 2(m−1) + 2(⌈n/m⌉−1)·⌈m/w⌉.
func HRingSteps(n, m, w int) int {
	if n <= 1 {
		return 0
	}
	g := ceilDiv(n, m)
	return 2*(m-1) + 2*(g-1)*ceilDiv(m, w)
}

// HRingProfile returns the analytic step profile of the constructive
// H-Ring schedule. Unlike BuildHRing it tolerates ragged n (m ∤ n) by
// using G = ⌈n/m⌉ groups, which is sufficient for timing.
func HRingProfile(n, m, w int) core.Profile {
	p := core.Profile{Algorithm: "hring"}
	if n <= 1 {
		return p
	}
	g := ceilDiv(n, m)
	intra := core.ProfileGroup{Steps: m - 1, FracOfD: 1 / float64(m), Wavelengths: 1}
	if intra.Steps > 0 {
		p.Groups = append(p.Groups, intra)
	}
	if g > 1 {
		p.Groups = append(p.Groups, core.ProfileGroup{
			Steps:       2 * (g - 1) * ceilDiv(m, w),
			FracOfD:     1 / float64(m) / float64(g),
			Wavelengths: min(m, w),
		})
	}
	if intra.Steps > 0 {
		p.Groups = append(p.Groups, intra)
	}
	return p
}
