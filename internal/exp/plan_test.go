package exp

import (
	"testing"
)

// TestPlanSweepCrossCheck runs the planner gate over a grid spanning
// all three regimes — one-shot feasible (r=8, w=64), deep fallback
// (r=32, w=8) and the middle (r=16) — at two reconfiguration delays,
// asserting every point's prediction matches its simulation and the
// chosen plan is the simulated argmin.
func TestPlanSweepCrossCheck(t *testing.T) {
	res, err := PlanSweep(Defaults(), []int{8, 16, 32}, []int{8, 64}, []float64{25, 250}, 25e6)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 3*2*2 + 3 // optical grid + one electrical row per r
	if len(res.Points) != wantRows {
		t.Fatalf("swept %d points, want %d", len(res.Points), wantRows)
	}
	elec := 0
	for _, pt := range res.Points {
		if err := pt.Check(); err != nil {
			t.Errorf("(%s, r=%d, w=%d, a=%gus): %v", pt.Fabric, pt.R, pt.W, pt.AMicro, err)
		}
		if pt.Fabric == "electrical" {
			elec++
		}
	}
	if elec != 3 {
		t.Errorf("%d electrical rows, want 3", elec)
	}
	if res.Table == nil || len(res.Table.Headers) == 0 {
		t.Error("sweep produced no table")
	}
}

// TestRescueSweep measures the headline win on the two named fallback
// configurations: the planned schedule must beat the gather fallback
// outright, end to end.
func TestRescueSweep(t *testing.T) {
	pts, err := RescueSweep(Defaults(), []int{256, 1024}, []int{8, 16}, 25e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Requirement <= pt.W {
			t.Errorf("(N=%d, w=%d): requirement %d fits the budget — not a rescue point", pt.N, pt.W, pt.Requirement)
		}
		if pt.Speedup <= 1 {
			t.Errorf("(N=%d, w=%d): planned %.6g s not faster than fallback %.6g s (final r=%d)",
				pt.N, pt.W, pt.PlannedTime, pt.FallbackTime, pt.FinalR)
		}
	}
}

// TestRescueSweepRejectsFeasible refuses configurations whose final
// exchange already fits the budget.
func TestRescueSweepRejectsFeasible(t *testing.T) {
	if _, err := RescueSweep(Defaults(), []int{8}, []int{64}, 1e6); err == nil {
		t.Error("feasible configuration accepted as a rescue point")
	}
}
