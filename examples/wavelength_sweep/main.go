// wavelength_sweep: how much WDM does each all-reduce exploit?
//
// Sweeps the available wavelength count on a 1024-node optical ring and
// reports communication time per algorithm for a VGG16 gradient — the
// per-DNN slice of the paper's Figure 5. Ring and BT stay flat (they use
// a single wavelength), H-Ring gains a little, WRHT's step count shrinks
// with m = 2w+1 until the wavelengths stop helping. The raw series are
// also written to wavelength_sweep.json.
//
// Uses only the public wrht API plus the trace exporter.
package main

import (
	"fmt"
	"log"

	"wrht"
	"wrht/internal/metrics"
	"wrht/internal/trace"
)

func main() {
	log.SetFlags(0)
	const n = 1024
	model := wrht.VGG16()
	d := float64(model.GradBytes())
	waves := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

	table := &metrics.Table{
		Title:   fmt.Sprintf("Communication time (ms) for %s (%.0f MB) on a %d-node optical ring", model.Name, d/1e6, n),
		Headers: []string{"wavelengths", "Ring", "H-Ring", "BT", "WRHT", "WRHT steps"},
	}
	series := map[string][]float64{"Ring": nil, "H-Ring": nil, "BT": nil, "WRHT": nil}
	var xticks []string

	for _, w := range waves {
		p := wrht.DefaultOpticalParams()
		p.Wavelengths = w
		time := func(pr wrht.Profile) float64 {
			res, err := wrht.Simulate(wrht.Optical, pr, d, wrht.WithOpticalParams(p))
			if err != nil {
				log.Fatal(err)
			}
			return res.Time
		}
		wrhtProf, err := wrht.WRHTProfile(wrht.Config{N: n, Wavelengths: w})
		if err != nil {
			log.Fatal(err)
		}
		tr := time(wrht.RingProfile(n))
		th := time(wrht.HRingProfile(n, 5, w))
		tb := time(wrht.BTProfile(n))
		tw := time(wrhtProf)
		table.AddRow(fmt.Sprint(w),
			fmt.Sprintf("%.2f", tr*1e3), fmt.Sprintf("%.2f", th*1e3),
			fmt.Sprintf("%.2f", tb*1e3), fmt.Sprintf("%.2f", tw*1e3),
			fmt.Sprint(wrhtProf.NumSteps()))
		series["Ring"] = append(series["Ring"], tr)
		series["H-Ring"] = append(series["H-Ring"], th)
		series["BT"] = append(series["BT"], tb)
		series["WRHT"] = append(series["WRHT"], tw)
		xticks = append(xticks, fmt.Sprint(w))
	}
	fmt.Println(table)

	var rec trace.Recorder
	rec.Record(trace.NewRun("wavelength_sweep", xticks, series, map[string]float64{
		"nodes":      n,
		"grad_bytes": d,
	}))
	if err := rec.WriteFile("wavelength_sweep.json"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("raw series written to wavelength_sweep.json")
}
