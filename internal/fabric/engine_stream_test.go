package fabric

import (
	"reflect"
	"strings"
	"testing"

	"wrht/internal/core"
	"wrht/internal/rwa"
)

// recorder captures step events by value (deep-copying the step, since
// streamed events alias a reused producer buffer).
type recorder struct {
	events []StepEvent
}

func (r *recorder) StepExecuted(ev StepEvent) {
	st := core.Step{Phase: ev.Step.Phase, Transfers: append([]core.Transfer(nil), ev.Step.Transfers...)}
	ev.Step = &st
	r.events = append(r.events, ev)
}
func (r *recorder) GroupExecuted(GroupEvent) {}

// streamParityCorpus returns named schedules spanning the interesting
// step shapes: WRHT with and without the final all-to-all, RandomFit
// wavelengths, and a handcrafted sequence whose boundaries alternate
// between overlap-disjoint and conflicting.
func streamParityCorpus(t *testing.T) map[string]*core.Schedule {
	t.Helper()
	wrht := func(cfg core.Config) *core.Schedule {
		s, err := core.BuildWRHT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return map[string]*core.Schedule{
		"wrht":        wrht(core.Config{N: 15, Wavelengths: 2}),
		"wrht-random": wrht(core.Config{N: 40, Wavelengths: 4, Strategy: rwa.RandomFit, Seed: 3}),
		"wrht-noa2a":  wrht(core.Config{N: 27, Wavelengths: 4, DisableAllToAll: true}),
		"mixed": sched(8,
			step(0, 1, 0), step(0, 1, 0), // same circuit: conflicting boundary
			step(2, 3, 0), // disjoint boundary
			step(4, 5, 1), // disjoint boundary
			core.Step{},   // empty step
			step(6, 7, 0),
		),
	}
}

// TestRunStreamMatchesRunSchedule pins the streamed execution path
// bit-identical to the materialized one — same Result (times, splits,
// per-step breakdown) and same observer event sequence — across the
// option matrix: overlap off/probed/precomputed, validation on/off,
// memoized and unmemoized fabrics.
func TestRunStreamMatchesRunSchedule(t *testing.T) {
	for name, s := range streamParityCorpus(t) {
		boundaries := make([]bool, max(s.NumSteps()-1, 0))
		for i := range boundaries {
			boundaries[i] = i%2 == 0
		}
		type optCase struct {
			name string
			opts Options
		}
		cases := []optCase{
			{"plain", Options{}},
			{"validate", Options{ValidateWavelengths: true}},
			{"overlap-probe", Options{Overlap: true}},
			{"overlap-bd", Options{Overlap: true, BoundaryDisjoint: boundaries}},
			{"overlap-validate", Options{Overlap: true, ValidateWavelengths: true}},
		}
		for _, keyed := range []bool{false, true} {
			for _, oc := range cases {
				f := &stubFabric{setup: 2e-6, perByte: 1e-9, keyed: keyed, budget: 8}
				recSched := &recorder{}
				opts := oc.opts
				opts.Observer = recSched
				want, err := Engine{Fabric: f, Opts: opts}.RunSchedule(s, 4096)
				if err != nil {
					t.Fatalf("%s/%s keyed=%v: RunSchedule: %v", name, oc.name, keyed, err)
				}
				recStream := &recorder{}
				opts.Observer = recStream
				got, err := Engine{Fabric: f, Opts: opts}.RunStream(s.Source(), 4096)
				if err != nil {
					t.Fatalf("%s/%s keyed=%v: RunStream: %v", name, oc.name, keyed, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s keyed=%v: streamed result differs:\n got %+v\nwant %+v", name, oc.name, keyed, got, want)
				}
				if !reflect.DeepEqual(recStream.events, recSched.events) {
					t.Errorf("%s/%s keyed=%v: observer event sequences differ", name, oc.name, keyed)
				}
			}
		}
	}
}

// TestRunStreamValidationError pins the streamed validator's error on a
// conflicting schedule identical to the materialized pre-validation.
func TestRunStreamValidationError(t *testing.T) {
	// Two same-wavelength transfers over overlapping CW arcs.
	bad := sched(8,
		step(0, 1, 0),
		core.Step{Transfers: []core.Transfer{
			step(0, 3, 1).Transfers[0],
			step(1, 4, 1).Transfers[0],
		}},
	)
	f := &stubFabric{setup: 1, perByte: 1, budget: 4}
	opts := Options{ValidateWavelengths: true}
	_, wantErr := Engine{Fabric: f, Opts: opts}.RunSchedule(bad, 1024)
	_, gotErr := Engine{Fabric: f, Opts: opts}.RunStream(bad.Source(), 1024)
	if wantErr == nil || gotErr == nil {
		t.Fatalf("conflicting schedule accepted: sched=%v stream=%v", wantErr, gotErr)
	}
	if gotErr.Error() != wantErr.Error() {
		t.Fatalf("streamed error %q != materialized %q", gotErr, wantErr)
	}
	if !strings.Contains(gotErr.Error(), "step 1") {
		t.Fatalf("error does not name the offending step: %v", gotErr)
	}
}

// TestRunStreamBoundaryDisjointLength checks the stream path's
// BoundaryDisjoint length handling: overrun fails mid-run, underrun is
// reported after the drain with the RunSchedule-style message.
func TestRunStreamBoundaryDisjointLength(t *testing.T) {
	s := sched(8, step(0, 1, 0), step(2, 3, 0), step(4, 5, 0))
	f := &stubFabric{setup: 1, perByte: 1, budget: 4}
	run := func(bd []bool) error {
		_, err := Engine{Fabric: f, Opts: Options{Overlap: true, BoundaryDisjoint: bd}}.RunStream(s.Source(), 1024)
		return err
	}
	if err := run([]bool{true}); err == nil {
		t.Error("1 boundary for 3 steps accepted")
	}
	if err := run([]bool{true, true, false, true}); err == nil {
		t.Error("4 boundaries for 3 steps accepted")
	}
	if err := run([]bool{true, false}); err != nil {
		t.Errorf("correct boundary count rejected: %v", err)
	}
}
