package core_test

import (
	"math/rand"
	"reflect"
	"testing"

	"wrht/internal/cluster"
	"wrht/internal/core"
	"wrht/internal/fault"
	"wrht/internal/rwa"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// checkMaskedSchedule is the differential oracle for degraded schedules:
// the fast bitset validator (seeded with the mask, so a circuit touching
// a masked cell fails), the original pairwise oracle (which cannot see
// the mask), and the mask's own per-transfer feasibility check must all
// agree the schedule is clean.
func checkMaskedSchedule(t *testing.T, s *core.Schedule, m *fault.Mask, w int) {
	t.Helper()
	ix := rwa.NewIndex(s.Ring)
	m.Seed(ix, w)
	if err := s.ValidateWithIndex(ix, w); err != nil {
		t.Fatalf("masked validation: %v", err)
	}
	for si, st := range s.Steps {
		reqs := make([]rwa.Request, 0, len(st.Transfers))
		asn := make(rwa.Assignment, 0, len(st.Transfers))
		for _, tr := range st.Transfers {
			if err := m.TransferErr(s.Ring, tr.Src, tr.Dst, tr.Dir, tr.Wavelength); err != nil {
				t.Errorf("step %d: transfer %v hits a fault: %v", si, tr, err)
			}
			reqs = append(reqs, rwa.Request{Src: tr.Src, Dst: tr.Dst, Dir: tr.Dir})
			asn = append(asn, tr.Wavelength)
		}
		if err := rwa.OracleValidate(s.Ring, reqs, asn, w); err != nil {
			t.Errorf("step %d: pairwise oracle: %v", si, err)
		}
	}
}

func randInputs(rng *rand.Rand, n, l int) []tensor.Vector {
	in := make([]tensor.Vector, n)
	for i := range in {
		in[i] = tensor.New(l)
		for j := range in[i] {
			in[i][j] = float32(rng.Intn(201) - 100)
		}
	}
	return in
}

func TestMaskedZeroFaultIdentity(t *testing.T) {
	for _, c := range []struct{ n, w int }{{16, 2}, {64, 4}, {100, 8}} {
		cfg := core.Config{N: c.n, Wavelengths: c.w}
		want, err := core.BuildWRHT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for name, m := range map[string]*fault.Mask{"nil": nil, "empty": fault.NewMask(c.n)} {
			got, err := core.BuildWRHTMasked(cfg, m)
			if err != nil {
				t.Fatalf("n=%d w=%d %s mask: %v", c.n, c.w, name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("n=%d w=%d: %s mask not bit-identical to BuildWRHT", c.n, c.w, name)
			}
		}
	}
}

func TestMaskedDeadWavelengths(t *testing.T) {
	const n, w = 64, 8
	cfg := core.Config{N: n, Wavelengths: w}
	healthy, err := core.BuildWRHT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := fault.NewMask(n).KillWavelength(2).KillWavelength(5)
	s, err := core.BuildWRHTMasked(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() < healthy.NumSteps() {
		t.Errorf("degraded schedule has %d steps, healthy %d: fewer wavelengths cannot speed things up", s.NumSteps(), healthy.NumSteps())
	}
	for si, st := range s.Steps {
		for _, tr := range st.Transfers {
			if tr.Wavelength == 2 || tr.Wavelength == 5 {
				t.Fatalf("step %d transfer %v uses a dead wavelength", si, tr)
			}
		}
	}
	checkMaskedSchedule(t, s, m, w)

	rng := rand.New(rand.NewSource(11))
	in := randInputs(rng, n, 160)
	want := cluster.ExpectedSum(in)
	cl, err := cluster.New(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Execute(s); err != nil {
		t.Fatal(err)
	}
	if err := cl.VerifyAllReduced(want, 0); err != nil {
		t.Errorf("degraded schedule not a correct all-reduce: %v", err)
	}
}

func TestMaskedFailedNodes(t *testing.T) {
	const n, w = 32, 4
	cfg := core.Config{N: n, Wavelengths: w}
	m := fault.NewMask(n).FailNode(3).FailNode(17).FailNode(18)
	s, err := core.BuildWRHTMasked(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	for si, st := range s.Steps {
		for _, tr := range st.Transfers {
			if !m.NodeOK(tr.Src) || !m.NodeOK(tr.Dst) {
				t.Fatalf("step %d transfer %v references a failed node", si, tr)
			}
		}
	}
	checkMaskedSchedule(t, s, m, w)

	// The survivors all-reduce among themselves; the failed nodes' inputs
	// are excluded and their state must stay untouched.
	rng := rand.New(rand.NewSource(12))
	in := randInputs(rng, n, 96)
	var aliveIn []tensor.Vector
	for _, i := range m.AliveNodes() {
		aliveIn = append(aliveIn, in[i])
	}
	want := cluster.ExpectedSum(aliveIn)
	cl, err := cluster.New(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Execute(s); err != nil {
		t.Fatal(err)
	}
	for _, i := range m.AliveNodes() {
		v := cl.Vector(i)
		for j, x := range v {
			if float64(x) != want[j] {
				t.Fatalf("alive node %d element %d = %g, want %g", i, j, x, want[j])
			}
		}
	}
	for _, i := range []int{3, 17, 18} {
		if !reflect.DeepEqual(cl.Vector(i), in[i]) {
			t.Errorf("failed node %d's vector was modified", i)
		}
	}
}

func TestMaskedCutsAndTransceivers(t *testing.T) {
	const n, w = 32, 4
	cfg := core.Config{N: n, Wavelengths: w}
	m := fault.NewMask(n).CutSegment(topo.CW, 7).FailTransceiver(20, topo.CCW)
	s, err := core.BuildWRHTMasked(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	checkMaskedSchedule(t, s, m, w)

	rng := rand.New(rand.NewSource(13))
	in := randInputs(rng, n, 96)
	want := cluster.ExpectedSum(in)
	cl, err := cluster.New(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Execute(s); err != nil {
		t.Fatal(err)
	}
	if err := cl.VerifyAllReduced(want, 0); err != nil {
		t.Errorf("repaired schedule not a correct all-reduce: %v", err)
	}
}

func TestMaskedCombined(t *testing.T) {
	const n, w = 64, 8
	cfg := core.Config{N: n, Wavelengths: w}
	m := fault.Spec{Seed: 42, Nodes: 2, Transceivers: 1, Wavelengths: 2, Segments: 1, WavelengthBudget: w}.Sample(n)
	s, err := core.BuildWRHTMasked(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(w); err != nil {
		t.Fatalf("plain Validate: %v", err)
	}
	checkMaskedSchedule(t, s, m, w)
}

func TestMaskedErrors(t *testing.T) {
	cfg := core.Config{N: 16, Wavelengths: 2}
	if _, err := core.BuildWRHTMasked(cfg, fault.NewMask(8).FailNode(0)); err == nil {
		t.Error("mask size mismatch not rejected")
	}
	all := fault.NewMask(16)
	for wl := 0; wl < 2; wl++ {
		all.KillWavelength(wl)
	}
	if _, err := core.BuildWRHTMasked(cfg, all); err == nil {
		t.Error("all-wavelengths-dead not rejected")
	}
	// A node whose transceivers both failed is alive but mute: no
	// feasible degraded schedule exists.
	mute := fault.NewMask(16).FailTransceiver(5, topo.CW).FailTransceiver(5, topo.CCW)
	if _, err := core.BuildWRHTMasked(cfg, mute); err == nil {
		t.Error("isolated (transceiver-dead) node not rejected")
	}
}
