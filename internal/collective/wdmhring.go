package collective

import (
	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// WDM-HRing is a beyond-paper algorithm this substrate makes easy to
// explore: H-Ring's intra-group ring passes (m−1 steps each way) are
// replaced by wavelength-parallel in-group all-to-all exchanges, so the
// intra phases collapse to ⌈⌊m/2⌋⌈m/2⌉/w⌉ steps while keeping H-Ring's
// bandwidth-optimal d/m and d/N chunk sizes. It combines WRHT's insight
// (spend wavelengths to kill steps) with the ring algorithms' insight
// (chunking kills the bandwidth term):
//
//	phase 1  in-group all-to-all reduce-scatter: member j of every group
//	         receives every other member's chunk {j, m} and sums —
//	         one logical step, split into sub-steps if the line
//	         all-to-all needs more than w wavelengths;
//	phase 2  per-slot inter-group ring all-reduce on sub-chunks d/N
//	         (as in H-Ring, slots serialize by ⌈m/w⌉ when wavelengths
//	         are scarce);
//	phase 3  in-group all-to-all all-gather (reverse of phase 1).
//
// At N=1024, m=32, w=64 this takes ~70 steps moving ~2d/m + 2d/N per
// node versus Ring's 2046 steps or WRHT's 3 steps of full d — a middle
// point that wins when d is large and steps are cheap-ish; the Extras
// table quantifies it.

// lineA2AGroupSteps builds the in-group all-to-all as one or more steps
// respecting the wavelength budget. members are ascending ring
// positions; payloadOf returns the chunk transfer (i→j) carries; op is
// applied at the destination.
func lineA2AGroupSteps(members []int, w int, payloadOf func(srcIdx, dstIdx int) tensor.Chunk, op tensor.ReduceOp, phase core.Phase) []core.Step {
	k := len(members)
	type arc struct {
		src, dst, wl int
		dir          topo.Direction
	}
	var arcs []arc
	// Route and color both fibers of the line all-to-all via the core
	// construction exposed through BuildWRHTSegment's machinery: rebuild
	// locally to keep chunk control. Right-going flows (i<j) and
	// left-going flows (i>j) are interval-colored independently.
	color := func(pairs [][2]int) []int {
		// first-fit by (lo, longest first): optimal for intervals.
		order := make([]int, len(pairs))
		for i := range order {
			order[i] = i
		}
		lo := func(p [2]int) int { return min(p[0], p[1]) }
		hi := func(p [2]int) int { return max(p[0], p[1]) }
		for i := 1; i < len(order); i++ {
			for j := i; j > 0; j-- {
				a, b := pairs[order[j-1]], pairs[order[j]]
				if lo(b) < lo(a) || (lo(b) == lo(a) && hi(b) > hi(a)) {
					order[j-1], order[j] = order[j], order[j-1]
				} else {
					break
				}
			}
		}
		colors := make([]int, len(pairs))
		var busy []int
		for _, idx := range order {
			p := pairs[idx]
			c := -1
			for ci, until := range busy {
				if until <= lo(p) {
					c = ci
					break
				}
			}
			if c < 0 {
				busy = append(busy, 0)
				c = len(busy) - 1
			}
			busy[c] = hi(p)
			colors[idx] = c
		}
		return colors
	}
	var right, left [][2]int
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i < j {
				right = append(right, [2]int{i, j})
			} else if i > j {
				left = append(left, [2]int{i, j})
			}
		}
	}
	rc, lc := color(right), color(left)
	for x, p := range right {
		arcs = append(arcs, arc{src: p[0], dst: p[1], wl: rc[x], dir: topo.CW})
	}
	for x, p := range left {
		arcs = append(arcs, arc{src: p[0], dst: p[1], wl: lc[x], dir: topo.CCW})
	}
	// Split by wavelength budget: sub-step b carries wavelengths
	// [b·w, (b+1)·w), remapped down to [0, w).
	maxWl := 0
	for _, a := range arcs {
		if a.wl+1 > maxWl {
			maxWl = a.wl + 1
		}
	}
	nSub := (maxWl + w - 1) / w
	steps := make([]core.Step, nSub)
	for i := range steps {
		steps[i].Phase = phase
	}
	for _, a := range arcs {
		b := a.wl / w
		steps[b].Transfers = append(steps[b].Transfers, core.Transfer{
			Src: members[a.src], Dst: members[a.dst],
			Chunk: payloadOf(a.src, a.dst), Op: op,
			Dir: a.dir, Wavelength: a.wl % w,
		})
	}
	return steps
}

// BuildWDMHRing constructs the WDM-enhanced hierarchical ring
// all-reduce. Requires 2 ≤ m ≤ n, m | n and w ≥ 1.
func BuildWDMHRing(n, m, w int) (*core.Schedule, error) {
	src, err := StreamWDMHRing(n, m, w)
	if err != nil {
		return nil, err
	}
	return core.Collect(src), nil
}

// WDMHRingProfile returns the analytic step profile (tolerates ragged n
// for timing, like HRingProfile).
func WDMHRingProfile(n, m, w int) core.Profile {
	p := core.Profile{Algorithm: "wdm-hring"}
	if n <= 1 || m < 2 {
		return p
	}
	g := ceilDiv(n, m)
	a2aColors := (m / 2) * ((m + 1) / 2) // line all-to-all requirement
	sub := ceilDiv(a2aColors, w)
	intra := core.ProfileGroup{Steps: sub, FracOfD: 1 / float64(m), Wavelengths: min(a2aColors, w)}
	p.Groups = append(p.Groups, intra)
	if g > 1 {
		p.Groups = append(p.Groups, core.ProfileGroup{
			Steps:       2 * (g - 1) * ceilDiv(m, w),
			FracOfD:     1 / float64(m) / float64(g),
			Wavelengths: min(m, w),
		})
	}
	p.Groups = append(p.Groups, intra)
	return p
}
