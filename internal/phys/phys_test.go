package phys

import (
	"math"
	"testing"
)

func TestMaxCommLength(t *testing.T) {
	// Eq 7: single level → ⌊m/2⌋; L ≥ 2 levels → m·m^(L−2).
	cases := []struct{ n, m, want int }{
		{16, 17, 8},      // one level: ⌊17/2⌋
		{1024, 129, 129}, // two levels: 129·129⁰
		{1024, 5, 625},   // ⌈log₅1024⌉ = 5 levels: 5·5³
		{1, 5, 0},
		{10, 1, 0},
	}
	for _, c := range cases {
		if got := MaxCommLength(c.n, c.m); got != c.want {
			t.Errorf("MaxCommLength(%d,%d) = %d, want %d", c.n, c.m, got, c.want)
		}
	}
}

func TestTotalLossMonotone(t *testing.T) {
	b := DefaultBudget()
	if b.TotalLossDB(10) >= b.TotalLossDB(100) {
		t.Fatal("loss must grow with communication length")
	}
	if got, want := b.TotalLossDB(0), b.ModulatorLossDB; got != want {
		t.Fatalf("zero-length loss = %g, want modulator loss %g", got, want)
	}
}

func TestInsertionLossConstraint(t *testing.T) {
	b := DefaultBudget()
	// Eq 9: P_laser ≥ L_l + P_p. With the default budget the headroom is
	// 10 − 1.5 − 3 = 5.5 dB → L_max ≤ 5.5/0.02 = 275 interfaces.
	if !b.InsertionLossOK(275) {
		t.Error("275 interfaces should satisfy the insertion-loss budget")
	}
	if b.InsertionLossOK(276) {
		t.Error("276 interfaces should violate the insertion-loss budget")
	}
}

func TestSNRDecreasesWithLength(t *testing.T) {
	b := DefaultBudget()
	prev := math.Inf(1)
	for _, l := range []int{1, 10, 100, 500} {
		snr := b.SNRdB(l)
		if snr >= prev {
			t.Fatalf("SNR did not decrease at length %d: %g >= %g", l, snr, prev)
		}
		prev = snr
	}
}

func TestBERRelationship(t *testing.T) {
	// Eq 13: BER = ½e^(−SNR/4), SNR linear.
	if got := BER(10 * math.Log10(4*math.Log(0.5/1e-9))); math.Abs(got-1e-9)/1e-9 > 1e-9 {
		t.Fatalf("BER at threshold SNR = %g, want 1e-9", got)
	}
	if BER(0) >= 0.5 {
		t.Fatal("BER must be below 1/2 for positive SNR")
	}
	if b1, b2 := BER(10), BER(20); b2 >= b1 {
		t.Fatal("BER must fall as SNR rises")
	}
}

func TestMaxGroupSizeRespectsBothConstraints(t *testing.T) {
	b := DefaultBudget()
	m := b.MaxGroupSize(1024, 129)
	if m < 2 {
		t.Fatalf("default budget should allow some grouping, got %d", m)
	}
	if !b.FeasibleLength(MaxCommLength(1024, m)) {
		t.Fatalf("returned m=%d is not feasible", m)
	}
	// A starved laser allows nothing.
	starved := b
	starved.LaserPowerDBm = -20
	if got := starved.MaxGroupSize(1024, 129); got != 0 {
		t.Fatalf("starved budget returned m=%d, want 0", got)
	}
	// Cap below 2 yields 0.
	if b.MaxGroupSize(1024, 1) != 0 {
		t.Fatal("cap < 2 should yield 0")
	}
}

func TestMaxGroupSizeTightensWithPassLoss(t *testing.T) {
	loose := DefaultBudget()
	tight := DefaultBudget()
	tight.PassLossDB = 0.2 // 10× lossier interfaces
	ml, mt := loose.MaxGroupSize(1024, 129), tight.MaxGroupSize(1024, 129)
	if mt > ml {
		t.Fatalf("lossier interfaces should not allow larger groups: %d > %d", mt, ml)
	}
}

func TestCrosstalkConstraint(t *testing.T) {
	b := DefaultBudget()
	if !b.CrosstalkOK(1) {
		t.Fatal("single-hop crosstalk should satisfy BER threshold")
	}
	noisy := b
	noisy.RxCrosstalkDBc = -10 // severe per-hop leakage
	if noisy.CrosstalkOK(200) {
		t.Fatal("200 hops of -10 dBc crosstalk should fail BER")
	}
}

func TestWorstCrosstalkGrowsWithLength(t *testing.T) {
	b := DefaultBudget()
	if b.WorstCrosstalkDBm(100) <= b.WorstCrosstalkDBm(1) {
		t.Fatal("aggregate crosstalk must grow with traversed interfaces")
	}
}

func TestDbmRoundTrip(t *testing.T) {
	for _, v := range []float64{-30, -3, 0, 3, 10} {
		if got := mwToDbm(dbmToMw(v)); math.Abs(got-v) > 1e-9 {
			t.Fatalf("round trip %g -> %g", v, got)
		}
	}
	if !math.IsInf(mwToDbm(0), -1) {
		t.Fatal("mwToDbm(0) should be -inf")
	}
}
