package ir

import (
	"fmt"
	"time"
)

// Pass is one program rewrite. Apply reports whether it changed the
// program; a changed program is re-validated by the pipeline, so a pass
// that cannot prove its rewrite legal should revert and report false
// rather than emit a conflicted schedule.
type Pass interface {
	Name() string
	Apply(p *Program) (changed bool, err error)
}

// PassEvent describes one pass application for observers.
type PassEvent struct {
	Pass    string
	Changed bool
	// Step counts before/after (splitting grows the program).
	StepsBefore, StepsAfter int
	// Overlap-eligible boundary counts before/after — the pass
	// framework's figure of merit.
	DisjointBefore, DisjointAfter int
	// Seconds is the pass's wall-clock duration.
	Seconds float64
}

// Observer receives one event per applied pass. internal/obs implements
// it (obs.IRObserver) over the metrics registry and tracer.
type Observer interface {
	PassApplied(ev PassEvent)
}

// Pipeline applies passes in order, validating the program after every
// mutating pass. An empty pipeline is the identity: Lower → Run(empty)
// → Raise reproduces the input schedule exactly.
type Pipeline struct {
	Passes   []Pass
	Observer Observer
}

// Run applies every pass to p in order. The first pass error or
// validation failure aborts the run; p may then hold the offending
// pass's output for inspection, but its Raise()d schedule must not be
// executed.
func (pl Pipeline) Run(p *Program) error {
	for _, pass := range pl.Passes {
		stepsBefore, disjBefore := len(p.Steps), p.DisjointBoundaries()
		start := time.Now()
		changed, err := pass.Apply(p)
		if err != nil {
			return fmt.Errorf("ir: pass %s: %w", pass.Name(), err)
		}
		if changed {
			if err := p.check(); err != nil {
				return fmt.Errorf("ir: pass %s produced an invalid schedule: %w", pass.Name(), err)
			}
		}
		if pl.Observer != nil {
			pl.Observer.PassApplied(PassEvent{
				Pass:           pass.Name(),
				Changed:        changed,
				StepsBefore:    stepsBefore,
				StepsAfter:     len(p.Steps),
				DisjointBefore: disjBefore,
				DisjointAfter:  p.DisjointBoundaries(),
				Seconds:        time.Since(start).Seconds(),
			})
		}
	}
	return nil
}
