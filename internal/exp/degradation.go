package exp

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/fabric"
	"wrht/internal/fault"
	"wrht/internal/metrics"
	"wrht/internal/obs"
)

// DegradationPoint is one (node count, dead-wavelength count) cell of
// the degradation sweep.
type DegradationPoint struct {
	N    int
	Dead int
	// EffW is the surviving wavelength budget the degraded schedule was
	// built for.
	EffW int
	// Steps is the degraded schedule's communication step count θ.
	Steps int
	// StaticTime is the completion time of the schedule built with the
	// fault mask known upfront; Slowdown normalizes it to the healthy
	// (Dead=0) time at the same N.
	StaticTime float64
	Slowdown   float64
	// InjectedTime is the completion time when the same wavelengths die
	// mid-run instead: the healthy schedule starts, the fault hits, and
	// the engine restarts on a rebuilt degraded schedule, keeping the
	// time already spent. Reschedules counts the rebuilds.
	InjectedTime float64
	Reschedules  int
}

// DegradationResult bundles the sweep table with the raw points.
type DegradationResult struct {
	Table  *metrics.Table
	Points []DegradationPoint
}

// Degradation sweeps WRHT completion time against dead-wavelength
// counts at several ring sizes (§4.4 asks what the scheme loses when
// the WDM comb degrades; this is the quantitative answer). For every
// (n, k) it builds the degraded schedule via core.BuildWRHTMasked and
// times it on the optical fabric, and separately injects the same k
// wavelength deaths mid-run through fabric.RunScheduleFaulted to price
// the fail-restart path. Nil ns defaults to {64, 1024, 4096}; nil dead
// defaults to {0, 1, 2, 4, 8} (counts ≥ w are dropped — killing the
// whole comb leaves nothing to schedule on). Static completion time is
// monotone non-decreasing in k: the degraded construction depends only
// on how many wavelengths survive, never on which.
func Degradation(o Options, ns []int, w int, dBytes float64, dead []int, seed int64) (*DegradationResult, error) {
	if o.Trace != nil {
		o.Workers = 1
	}
	if ns == nil {
		ns = []int{64, 1024, 4096}
	}
	if dead == nil {
		dead = []int{0, 1, 2, 4, 8}
	}
	var ks []int
	for _, k := range dead {
		if k < 0 || k >= w {
			continue
		}
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("exp: degradation: no dead-wavelength count in %v is feasible below the budget w=%d", dead, w)
	}
	e := newEngine(o, "degradation")
	if e.optFabErr != nil {
		return nil, fmt.Errorf("exp: degradation: %w", e.optFabErr)
	}

	points, err := sweep(e, len(ns)*len(ks), func(i int) (DegradationPoint, error) {
		n, k := ns[i/len(ks)], ks[i%len(ks)]
		cfg := core.Config{N: n, Wavelengths: w}
		mask := fault.NewMask(n)
		if k > 0 {
			mask = fault.Spec{Seed: seed, Wavelengths: k, WavelengthBudget: w}.Sample(n)
		}
		s, err := core.BuildWRHTMasked(cfg, mask)
		if err != nil {
			return DegradationPoint{}, fmt.Errorf("degraded build (N=%d, %d dead): %w", n, k, err)
		}
		if err := s.Validate(w); err != nil {
			return DegradationPoint{}, fmt.Errorf("degraded schedule invalid (N=%d, %d dead): %w", n, k, err)
		}
		eng := fabric.Engine{Fabric: e.optFab}
		var fobs *obs.FabricObserver
		if o.Trace != nil || o.Metrics != nil {
			fobs = obs.NewFabricObserver(o.Trace, o.Metrics, fmt.Sprintf("faults/N=%d dead=%d", n, k))
			eng.Opts.Observer = fobs
		}
		static, err := eng.RunSchedule(s, dBytes)
		if err != nil {
			return DegradationPoint{}, fmt.Errorf("degraded timing (N=%d, %d dead): %w", n, k, err)
		}
		pt := DegradationPoint{
			N: n, Dead: k, EffW: w - k, Steps: s.NumSteps(), StaticTime: static.Time,
		}
		if k > 0 {
			healthy, err := core.BuildWRHT(cfg)
			if err != nil {
				return DegradationPoint{}, err
			}
			var events []fault.Event
			for wl := 0; wl < w; wl++ {
				if !mask.WavelengthOK(wl) {
					events = append(events, fault.Event{Step: 1, Fault: fault.Fault{
						Kind: fault.WavelengthDead, Wavelength: wl,
					}})
				}
			}
			fo := fabric.FaultOptions{
				Injector: fault.NewInjector(events...),
				Rebuild: func(m *fault.Mask) (*core.Schedule, error) {
					return core.BuildWRHTMasked(cfg, m)
				},
			}
			if fobs != nil {
				fo.Observer = fobs
			}
			injected, err := eng.RunScheduleFaulted(healthy, dBytes, fo)
			if err != nil {
				return DegradationPoint{}, fmt.Errorf("injected run (N=%d, %d dead): %w", n, k, err)
			}
			pt.InjectedTime = injected.Time
			pt.Reschedules = injected.Reschedules
		} else {
			pt.InjectedTime = static.Time
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}

	out := &DegradationResult{
		Table: &metrics.Table{
			Title: fmt.Sprintf("WRHT under dead wavelengths (w=%d, d=%.0f MB)", w, dBytes/1e6),
			Headers: []string{"N", "Dead λ", "Eff. w", "Steps",
				"Static (ms)", "Slowdown", "Injected (ms)", "Reschedules"},
		},
		Points: points,
	}
	for i := range points {
		pt := &points[i]
		base := points[(i/len(ks))*len(ks)] // the Dead=0 point of the same N
		pt.Slowdown = pt.StaticTime / base.StaticTime
		out.Table.AddRow(fmt.Sprint(pt.N), fmt.Sprint(pt.Dead), fmt.Sprint(pt.EffW),
			fmt.Sprint(pt.Steps),
			fmt.Sprintf("%.3f", pt.StaticTime*1e3),
			fmt.Sprintf("%.3f×", pt.Slowdown),
			fmt.Sprintf("%.3f", pt.InjectedTime*1e3),
			fmt.Sprint(pt.Reschedules))
	}
	return out, nil
}
