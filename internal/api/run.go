package api

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"wrht/internal/exp"
	"wrht/internal/metrics"
)

// AsError coerces any error into a typed API error: typed errors pass
// through, context cancellation becomes CodeCanceled, and everything
// else (engine and sweep failures) becomes CodeSimulateFailed.
func AsError(err error) *Error {
	var ae *Error
	if errors.As(err, &ae) {
		return ae
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Errorf(CodeCanceled, "%v", err)
	}
	return Errorf(CodeSimulateFailed, "%v", err)
}

// RunSweep executes one named sweep for both surfaces: cmd/wrhtsim
// renders the returned tables and serializes the response with -json;
// wrhtd serves the response body. Because both call this one executor
// and encode with Encode, their JSON is byte-identical.
//
// On a check failure the response and tables are still returned
// alongside the CodeCheckFailed error, so the CLI can print the swept
// tables before reporting the gate violation (the daemon serves only
// the error).
func RunSweep(o exp.Options, req SweepRequest) (*SweepResponse, []*metrics.Table, *Error) {
	req = req.Normalize()
	if req.PayloadMB <= 0 {
		return nil, nil, Errorf(CodeBadRequest, "sweep %q: payload_mb must be positive, got %g", req.Sweep, req.PayloadMB)
	}
	if req.Wavelengths < 1 {
		return nil, nil, Errorf(CodeBadRequest, "sweep %q: wavelengths must be at least 1, got %d", req.Sweep, req.Wavelengths)
	}
	d := req.PayloadMB * 1e6
	resp := &SweepResponse{Version: Version, Sweep: req.Sweep}
	switch req.Sweep {
	case "crossfabric":
		if req.N < 1 {
			return nil, nil, Errorf(CodeBadRequest, "crossfabric sweep: n must be at least 1, got %d", req.N)
		}
		r, err := exp.CrossFabric(o, req.N, req.Wavelengths, d)
		if err != nil {
			return nil, nil, AsError(err)
		}
		cf := &CrossFabricResult{N: req.N, Wavelengths: req.Wavelengths, PayloadBytes: d}
		names := make([]string, 0, len(r.Runs))
		for name := range r.Runs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			algo, mode, _ := strings.Cut(name, "/")
			cf.Cells = append(cf.Cells, CrossFabricCell{
				Algorithm: algo, Mode: mode, Result: SimResultFrom(r.Runs[name]),
			})
		}
		resp.CrossFabric = cf
		return resp, []*metrics.Table{r.Table}, nil

	case "overlap":
		ns := req.Ns
		if len(ns) == 0 {
			ns = []int{1024, 4096} // the golden pair the CLI defaults to
		}
		passes, err := exp.ParsePasses(req.Passes, o.Optical, d)
		if err != nil {
			return nil, nil, Errorf(CodeBadRequest, "%v", err)
		}
		r, err := exp.OverlapSweep(o, ns, req.Wavelengths, d, passes)
		if err != nil {
			return nil, nil, AsError(err)
		}
		for _, pt := range r.Points {
			resp.Overlap = append(resp.Overlap, OverlapPointFrom(pt))
		}
		tables := []*metrics.Table{r.Table}
		if req.Check {
			for _, pt := range r.Points {
				if pt.PassHidden <= pt.BaselineHidden {
					return resp, tables, Errorf(CodeCheckFailed,
						"overlap check: N=%d w=%d: pass hidden-reconfig count %d not strictly above baseline %d",
						pt.N, pt.W, pt.PassHidden, pt.BaselineHidden)
				}
			}
		}
		return resp, tables, nil

	case "faults":
		r, err := exp.Degradation(o, req.Ns, req.Wavelengths, d, req.Dead, req.Seed)
		if err != nil {
			return nil, nil, AsError(err)
		}
		for _, pt := range r.Points {
			resp.Faults = append(resp.Faults, FaultsPointFrom(pt))
		}
		return resp, []*metrics.Table{r.Table}, nil
	}
	return nil, nil, Errorf(CodeBadRequest, "unknown sweep %q (want crossfabric, overlap or faults)", req.Sweep)
}

// RunPlan executes the all-to-all planner sweep plus (unless
// suppressed) the rescue measurement, with the same shared-executor
// contract as RunSweep: tables for the CLI, response for both.
func RunPlan(o exp.Options, req PlanRequest) (*PlanResponse, []*metrics.Table, *Error) {
	if len(req.Rs) == 0 {
		return nil, nil, Errorf(CodeBadRequest, "plan: rs must be non-empty")
	}
	if len(req.AMicros) == 0 {
		return nil, nil, Errorf(CodeBadRequest, "plan: a_micros must be non-empty")
	}
	if req.Wavelengths < 1 {
		return nil, nil, Errorf(CodeBadRequest, "plan: wavelengths must be at least 1, got %d", req.Wavelengths)
	}
	if req.PayloadMB <= 0 {
		return nil, nil, Errorf(CodeBadRequest, "plan: payload_mb must be positive, got %g", req.PayloadMB)
	}
	d := req.PayloadMB * 1e6
	r, err := exp.PlanSweep(o, req.Rs, []int{req.Wavelengths}, req.AMicros, d)
	if err != nil {
		return nil, nil, AsError(err)
	}
	resp := &PlanResponse{Version: Version}
	for _, pt := range r.Points {
		resp.Points = append(resp.Points, PlanPointFrom(pt))
	}
	tables := []*metrics.Table{r.Table}
	var rescue []exp.RescuePoint
	if !req.NoRescue {
		rescue, err = exp.RescueSweep(o, []int{256, 1024}, []int{8, 16}, d)
		if err != nil {
			return nil, nil, AsError(err)
		}
		for _, pt := range rescue {
			resp.Rescue = append(resp.Rescue, RescuePointFrom(pt))
		}
		tables = append(tables, rescueTable(rescue))
	}
	if req.Check {
		for _, pt := range r.Points {
			if err := pt.Check(); err != nil {
				return resp, tables, Errorf(CodeCheckFailed,
					"plan check (%s, r=%d, w=%d, a=%gus): %v", pt.Fabric, pt.R, pt.W, pt.AMicro, err)
			}
		}
		for _, pt := range rescue {
			if pt.Speedup <= 1 {
				return resp, tables, Errorf(CodeCheckFailed,
					"plan check: rescue (N=%d, w=%d) speedup %.3f not above 1", pt.N, pt.W, pt.Speedup)
			}
		}
	}
	return resp, tables, nil
}

// rescueTable renders the planner-rescue measurement the way the plan
// subcommand has always printed it.
func rescueTable(rescue []exp.RescuePoint) *metrics.Table {
	rt := &metrics.Table{
		Title:   "Planner rescue of fallback configurations (full WRHT, optical, overlap on)",
		Headers: []string{"N", "w", "final r", "req", "steps", "fallback (ms)", "planned (ms)", "speedup"},
	}
	for _, pt := range rescue {
		rt.AddRow(fmt.Sprint(pt.N), fmt.Sprint(pt.W), fmt.Sprint(pt.FinalR), fmt.Sprint(pt.Requirement),
			fmt.Sprintf("%d -> %d", pt.FallbackSteps, pt.PlannedSteps),
			fmt.Sprintf("%.3f", pt.FallbackTime*1e3), fmt.Sprintf("%.3f", pt.PlannedTime*1e3),
			fmt.Sprintf("%.2fx", pt.Speedup))
	}
	return rt
}
