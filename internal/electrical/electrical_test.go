package electrical

import (
	"math"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

func mustNet(t *testing.T, n int, p Params) *Network {
	t.Helper()
	nw, err := NewNetwork(n, p)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// oneFlowStep builds a single-transfer schedule step.
func oneFlowStep(src, dst int, chunk tensor.Chunk) *core.Schedule {
	return &core.Schedule{
		Algorithm: "single",
		Ring:      topo.NewRing(max(src, dst) + 1),
		Steps: []core.Step{{
			Transfers: []core.Transfer{{Src: src, Dst: dst, Chunk: chunk, Dir: topo.CW}},
		}},
	}
}

func TestSingleIntraEdgeFlow(t *testing.T) {
	p := DefaultParams()
	nw := mustNet(t, 32, p)
	d := 40e6 * 4 // bytes; one flow of full vector
	res, err := runSchedule(nw, oneFlowStep(0, 1, tensor.Whole), d)
	if err != nil {
		t.Fatal(err)
	}
	// Wire bytes include per-packet headers: d/72 packets of 72+58 B.
	wire := d / 72 * 130
	want := wire*8/p.LinkBps + p.RouterDelay // serialization + 1 router
	if math.Abs(res.Time-want)/want > 1e-6 {
		t.Fatalf("time = %.9f, want %.9f", res.Time, want)
	}
}

func TestHeaderOverheadRatio(t *testing.T) {
	// Removing the header overhead must speed a flow up by exactly
	// (72+58)/72.
	withH := DefaultParams()
	noH := DefaultParams()
	noH.HeaderBytes = 0
	d := 72e4
	a, err := runSchedule(mustNet(t, 32, withH), oneFlowStep(0, 1, tensor.Whole), d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSchedule(mustNet(t, 32, noH), oneFlowStep(0, 1, tensor.Whole), d)
	if err != nil {
		t.Fatal(err)
	}
	gotRatio := (a.Time - withH.RouterDelay) / (b.Time - noH.RouterDelay)
	if math.Abs(gotRatio-130.0/72) > 1e-6 {
		t.Fatalf("header overhead ratio = %g, want %g", gotRatio, 130.0/72)
	}
}

func TestInterEdgeFlowPaysThreeRouters(t *testing.T) {
	p := DefaultParams()
	nw := mustNet(t, 64, p)
	d := 1e6
	intra, _ := runSchedule(nw, oneFlowStep(0, 1, tensor.Whole), d)
	inter, _ := runSchedule(nw, oneFlowStep(0, 63, tensor.Whole), d)
	diff := inter.Time - intra.Time
	if math.Abs(diff-2*p.RouterDelay) > 1e-9 {
		t.Fatalf("inter-intra latency gap = %.9f, want 2×25µs", diff)
	}
}

func TestRouterAggregateSharing(t *testing.T) {
	// 16 hosts of one edge all send to their CW neighbour: all flows
	// traverse the one edge router, so with a 40 Gb/s aggregate each flow
	// gets 1/16 of it and the step takes ~16× the unconstrained time.
	p := DefaultParams()
	p.RouterAggBps = 40e9 // oversubscription ablation
	nw := mustNet(t, 16, p)
	st := core.Step{}
	for i := 0; i < 15; i++ {
		st.Transfers = append(st.Transfers, core.Transfer{Src: i, Dst: i + 1, Chunk: tensor.Whole, Dir: topo.CW})
	}
	s := &core.Schedule{Algorithm: "x", Ring: topo.NewRing(16), Steps: []core.Step{st}}
	d := 15e6 * 4
	res, err := runSchedule(nw, s, d)
	if err != nil {
		t.Fatal(err)
	}
	// All 15 flows share the router: aggregate drain = 15·d wire bytes
	// (payload + headers) at 40 Gb/s plus latency.
	want := 15*(d/72*130)*8/p.RouterAggBps + p.RouterDelay
	if math.Abs(res.Time-want)/want > 0.01 {
		t.Fatalf("time = %.6f, want ≈ %.6f", res.Time, want)
	}
}

func TestFairShareMaxMin(t *testing.T) {
	// Without the router constraint, two flows sharing one uplink split
	// it; a third disjoint flow gets the full link.
	p := DefaultParams()
	nw := mustNet(t, 64, p)
	st := core.Step{Transfers: []core.Transfer{
		{Src: 0, Dst: 32, Chunk: tensor.Whole, Dir: topo.CW},  // edge0->edge2 via uplink 0
		{Src: 16, Dst: 33, Chunk: tensor.Whole, Dir: topo.CW}, // edge1->edge2, separate uplink
	}}
	s := &core.Schedule{Algorithm: "x", Ring: topo.NewRing(64), Steps: []core.Step{st}}
	d := 4e6
	res, err := runSchedule(nw, s, d)
	if err != nil {
		t.Fatal(err)
	}
	// The two flows land on different destination-edge downlinks and
	// different uplinks: both run at line rate (wire bytes incl headers).
	want := (d/72*130)*8/p.LinkBps + 3*p.RouterDelay
	if math.Abs(res.Time-want)/want > 0.01 {
		t.Fatalf("time = %.6f, want %.6f", res.Time, want)
	}
}

func TestERingSlowerThanORingModel(t *testing.T) {
	// Fig 7's headline: Ring on the electrical fat-tree is slower than
	// the same Ring schedule on the optical ring model, because every
	// hop pays routing and the router aggregate is shared.
	n := 128
	sched := collective.BuildRing(n)
	nw := mustNet(t, n, DefaultParams())
	d := 100e6
	eres, err := runSchedule(nw, sched, d)
	if err != nil {
		t.Fatal(err)
	}
	// Optical comparison value via Eq 6: 2(N−1) steps of d/N.
	tp := core.TimeParams{BytesPerSec: 5e9, StepOverheadSec: 25e-6}
	oring := tp.ProfileTime(collective.RingProfile(n), d)
	if eres.Time <= oring {
		t.Fatalf("E-Ring %.6f should exceed O-Ring %.6f", eres.Time, oring)
	}
}

func TestMemoizationConsistency(t *testing.T) {
	// Identical repeated steps must not change totals: running the same
	// schedule twice gives exactly double the one-run time.
	n := 16
	sched := collective.BuildRing(n)
	nw := mustNet(t, n, DefaultParams())
	d := 16e4
	once, err := runSchedule(nw, sched, d)
	if err != nil {
		t.Fatal(err)
	}
	double := &core.Schedule{Algorithm: "ring2", Ring: sched.Ring, Steps: append(append([]core.Step{}, sched.Steps...), sched.Steps...)}
	twice, err := runSchedule(nw, double, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(twice.Time-2*once.Time)/once.Time > 1e-9 {
		t.Fatalf("memoized double run %.9f != 2×%.9f", twice.Time, once.Time)
	}
}

func TestZeroByteFlowPaysLatencyOnly(t *testing.T) {
	p := DefaultParams()
	nw := mustNet(t, 32, p)
	// A chunk of an empty vector has zero bytes.
	res, err := runSchedule(nw, oneFlowStep(0, 1, tensor.Whole), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Time-p.RouterDelay) > 1e-12 {
		t.Fatalf("zero-byte flow time = %g, want router delay", res.Time)
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(0, DefaultParams()); err == nil {
		t.Fatal("0 hosts accepted")
	}
	p := DefaultParams()
	p.Radix = 1
	if _, err := NewNetwork(4, p); err == nil {
		t.Fatal("radix 1 accepted")
	}
	p = DefaultParams()
	p.LinkBps = 0
	if _, err := NewNetwork(4, p); err == nil {
		t.Fatal("zero link rate accepted")
	}
}

func TestScheduleTooLargeRejected(t *testing.T) {
	nw := mustNet(t, 16, DefaultParams())
	if _, err := runSchedule(nw, collective.BuildRing(32), 1e3); err == nil {
		t.Fatal("oversized schedule accepted")
	}
}
