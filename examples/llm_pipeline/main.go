// llm_pipeline: the paper's §6.2 outlook, made concrete.
//
// Large models that do not fit one accelerator train with hybrid
// pipeline × data parallelism; §6.2 notes WRHT "can also be employed
// during LLM training ... when using model-parallel, pipeline-parallel
// or hybrid-parallel methods". This example sweeps strategies
// (P stages × D replicas, P·D = 64) for BEiT-L on the optical ring:
// every stage's data-parallel group runs a segment-confined WRHT on its
// own shard, all groups concurrently with full wavelength reuse, and
// the GPipe-style pipeline supplies the compute timeline.
package main

import (
	"fmt"
	"log"

	"wrht/internal/dnn"
	"wrht/internal/metrics"
	"wrht/internal/optical"
	"wrht/internal/parallel"
	"wrht/internal/workload"
)

func main() {
	log.SetFlags(0)
	const nodes = 64
	model := dnn.BEiTLarge()

	table := &metrics.Table{
		Title: fmt.Sprintf("Hybrid-parallel %s on %d optical-ring nodes (GPipe, 8 microbatches × 2 samples)",
			model.Name, nodes),
		Headers: []string{"P×D", "pipeline (ms)", "bubble (ms)", "all-reduce (ms)", "iteration (ms)", "shard (MB)"},
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		sim := parallel.Sim{
			Model:          model,
			Strat:          parallel.Strategy{Stages: p, Replicas: nodes / p},
			Microbatches:   8,
			MicrobatchSize: 2,
			GPU:            workload.TitanXP(),
			Optical:        optical.DefaultParams(),
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(
			fmt.Sprintf("%d x %d", p, nodes/p),
			fmt.Sprintf("%.1f", res.PipelineSec*1e3),
			fmt.Sprintf("%.1f", res.BubbleSec*1e3),
			fmt.Sprintf("%.1f", res.AllReduceSec*1e3),
			fmt.Sprintf("%.1f", res.TotalSec*1e3),
			fmt.Sprintf("%.0f", res.MaxStageGradBytes/1e6),
		)
	}
	fmt.Println(table)

	// Show the concurrency: the 4×16 gradient sync is one schedule whose
	// steps carry all four groups at once, conflict-free.
	st := parallel.Strategy{Stages: 4, Replicas: 16}
	sync, err := parallel.BuildGradientSync(st, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4x16 gradient sync: %d steps, %d wavelengths, %d transfers in step 1 (all four groups together)\n",
		sync.NumSteps(), sync.WavelengthsNeeded(), len(sync.Steps[0].Transfers))
	fmt.Println("pipelining shrinks each group's all-reduce payload (shard) while WRHT keeps the step count flat,")
	fmt.Println("so gradient sync stops scaling with model size — the §6.2 promise.")
}
