// Package electrical simulates the electrical packet-switched baseline
// system of §5.1: a two-level fat-tree of 32-port routers (Table 2)
// carrying the same collective schedules the optical simulator runs.
// It substitutes for the paper's SimGrid 3.3 setup with the same class
// of model SimGrid uses: flow-level simulation with max–min fair
// bandwidth sharing on links plus a fixed per-router forwarding delay.
//
// Two capacity constraints shape each flow's rate:
//
//   - every directed link carries at most LinkBps, and
//   - optionally, every router forwards at most RouterAggBps aggregate,
//     shared max–min among the flows traversing it (an oversubscription
//     ablation; Table 2's "router full bisection bandwidth" reads as
//     full bisection, so the default leaves this off).
//
// What makes the electrical system lose to circuit-switched optics in
// Fig 7 is (a) per-router forwarding latency on every hop versus one
// MRR reconfiguration per optical step, and (b) per-packet protocol
// headers: with Table 2's 72-byte packets, Ethernet/IP/TCP framing
// costs ~58 bytes per packet, cutting goodput to ~55% of the line rate,
// while the optical data plane carries payloads on a reserved circuit.
package electrical

import (
	"fmt"
	"math"
	"sort"

	"wrht/internal/core"
	"wrht/internal/topo"
)

// Params holds the electrical-system parameters of Table 2.
type Params struct {
	// Radix is the router port count (32).
	Radix int
	// LinkBps is the per-link line rate in bits per second (40 Gb/s).
	LinkBps float64
	// RouterAggBps is the aggregate forwarding capacity of one router in
	// bits per second, shared by all flows traversing it. Zero (the
	// default) disables the constraint, modelling full-bisection routers
	// per Table 2; positive values model oversubscribed routers (used by
	// the ablation benchmarks).
	RouterAggBps float64
	// RouterDelay is the forwarding latency per router traversal in
	// seconds (25 µs).
	RouterDelay float64
	// PacketBytes is the packet payload size (72 B); payloads are
	// packetised and rounded up to whole packets.
	PacketBytes int
	// HeaderBytes is the per-packet framing overhead added on the wire
	// (Ethernet 18 B + IPv4 20 B + TCP 20 B = 58 B). With 72-byte
	// packets this is the dominant electrical handicap.
	HeaderBytes int
}

// DefaultParams returns the Table-2 electrical configuration.
func DefaultParams() Params {
	return Params{
		Radix:       32,
		LinkBps:     40e9,
		RouterDelay: 25e-6,
		PacketBytes: 72,
		HeaderBytes: 58,
	}
}

// Network is a fat-tree instance ready to time collective schedules.
type Network struct {
	Params Params
	Tree   topo.FatTree
}

// NewNetwork builds the fat-tree for n hosts.
func NewNetwork(n int, p Params) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("electrical: host count %d < 1", n)
	}
	if p.Radix < 2 {
		return nil, fmt.Errorf("electrical: radix %d < 2", p.Radix)
	}
	if p.LinkBps <= 0 {
		return nil, fmt.Errorf("electrical: link rate %g <= 0", p.LinkBps)
	}
	return &Network{Params: p, Tree: topo.NewFatTree(n, p.Radix)}, nil
}

// flow is one transfer in flight during a step.
type flow struct {
	bytes   float64 // remaining payload
	links   []int
	routers []int
	latency float64
	rate    float64
	done    bool
}

// stepSignature fingerprints a step for memoization: collectives like
// Ring repeat the same (src, dst, bytes) pattern for thousands of steps,
// so identical steps are solved once.
func stepSignature(st core.Step, elems int) string {
	type rec struct {
		s, d int
		b    int64
	}
	recs := make([]rec, len(st.Transfers))
	for i, t := range st.Transfers {
		recs[i] = rec{t.Src, t.Dst, t.Chunk.Bytes(elems)}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].s != recs[j].s {
			return recs[i].s < recs[j].s
		}
		if recs[i].d != recs[j].d {
			return recs[i].d < recs[j].d
		}
		return recs[i].b < recs[j].b
	})
	sig := make([]byte, 0, len(recs)*12)
	for _, r := range recs {
		sig = appendInt(sig, int64(r.s))
		sig = appendInt(sig, int64(r.d))
		sig = appendInt(sig, r.b)
	}
	return string(sig)
}

func appendInt(b []byte, v int64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

// stepDuration solves the fluid model for one step: repeatedly compute
// max–min fair rates for the unfinished flows, advance to the next flow
// completion, and repeat. The step ends when the last flow has drained
// and cleared its router pipeline latency; drain is the instant the last
// byte left the wire, so end−drain is the residual router-pipeline tail.
func (nw *Network) stepDuration(st core.Step, elems int) (end, drain float64) {
	p := nw.Params
	flows := make([]*flow, 0, len(st.Transfers))
	for _, t := range st.Transfers {
		b := float64(t.Chunk.Bytes(elems))
		if p.PacketBytes > 0 && b > 0 {
			packets := math.Ceil(b / float64(p.PacketBytes))
			b = packets * float64(p.PacketBytes+p.HeaderBytes)
		}
		path := nw.Tree.Route(t.Src, t.Dst)
		flows = append(flows, &flow{
			bytes:   b,
			links:   path.Links,
			routers: path.Routers,
			latency: float64(len(path.Routers)) * p.RouterDelay,
		})
	}
	var now float64
	active := 0
	for _, f := range flows {
		if f.bytes > 0 {
			active++
		} else if f.latency > end {
			end = f.latency // zero-byte flow still pays latency
		}
	}
	for active > 0 {
		nw.fairShare(flows)
		// Next completion.
		dt := math.Inf(1)
		for _, f := range flows {
			if f.done || f.rate <= 0 {
				continue
			}
			if t := f.bytes / f.rate; t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) {
			panic("electrical: active flows with zero rate")
		}
		now += dt
		const eps = 1e-9
		for _, f := range flows {
			if f.done {
				continue
			}
			f.bytes -= f.rate * dt
			if f.bytes <= eps*math.Max(1, f.rate*dt) {
				f.bytes = 0
				f.done = true
				active--
				if fin := now + f.latency; fin > end {
					end = fin
				}
			}
		}
	}
	return end, now
}

// fairShare computes max–min fair rates (bytes/s) for the unfinished
// flows by progressive filling over link and router constraints.
func (nw *Network) fairShare(flows []*flow) {
	p := nw.Params
	type cons struct {
		cap   float64 // remaining capacity, bytes/s
		count int     // unfrozen flows crossing it
	}
	linkCons := map[int]*cons{}
	routerCons := map[int]*cons{}
	for _, f := range flows {
		if f.done {
			continue
		}
		f.rate = 0
		for _, l := range f.links {
			c := linkCons[l]
			if c == nil {
				c = &cons{cap: p.LinkBps / 8}
				linkCons[l] = c
			}
			c.count++
		}
		if p.RouterAggBps > 0 {
			for _, r := range f.routers {
				c := routerCons[r]
				if c == nil {
					c = &cons{cap: p.RouterAggBps / 8}
					routerCons[r] = c
				}
				c.count++
			}
		}
	}
	frozen := func(f *flow) bool { return f.done || f.rate > 0 }
	for {
		// Find the tightest constraint among those with unfrozen flows.
		bottleneck := math.Inf(1)
		for _, c := range linkCons {
			if c.count > 0 {
				if s := c.cap / float64(c.count); s < bottleneck {
					bottleneck = s
				}
			}
		}
		for _, c := range routerCons {
			if c.count > 0 {
				if s := c.cap / float64(c.count); s < bottleneck {
					bottleneck = s
				}
			}
		}
		if math.IsInf(bottleneck, 1) {
			return // all flows frozen
		}
		// Freeze every unfrozen flow crossing a binding constraint at the
		// bottleneck share.
		progressed := false
		for _, f := range flows {
			if frozen(f) {
				continue
			}
			binding := false
			for _, l := range f.links {
				c := linkCons[l]
				if c.count > 0 && c.cap/float64(c.count) <= bottleneck*(1+1e-12) {
					binding = true
					break
				}
			}
			if !binding && p.RouterAggBps > 0 {
				for _, r := range f.routers {
					c := routerCons[r]
					if c.count > 0 && c.cap/float64(c.count) <= bottleneck*(1+1e-12) {
						binding = true
						break
					}
				}
			}
			if !binding {
				continue
			}
			f.rate = bottleneck
			progressed = true
			for _, l := range f.links {
				c := linkCons[l]
				c.cap -= bottleneck
				c.count--
			}
			if p.RouterAggBps > 0 {
				for _, r := range f.routers {
					c := routerCons[r]
					c.cap -= bottleneck
					c.count--
				}
			}
		}
		if !progressed {
			// Numerical guard: freeze everything at the bottleneck.
			for _, f := range flows {
				if !frozen(f) {
					f.rate = bottleneck
				}
			}
			return
		}
	}
}
