package daemon

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLoadSmoke fires >=10k concurrent mixed requests (build,
// simulate, plan — duplicate-heavy so coalescing has something to
// chew on) against an in-process daemon. Run under -race in CI, it is
// the data-race and leak gate for the flight/pool/endpoint plumbing.
// Asserts zero failed requests and observed coalescing; logs p99
// latency from the daemon's own histograms.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke skipped in -short")
	}
	s := New(Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// Five templates, round-robined: heavy duplication by design.
	reqs := []struct{ path, body string }{
		{"/v1/build", `{"kind":"wrht","n":64,"wavelengths":8}`},
		{"/v1/build", `{"kind":"ring","n":128}`},
		{"/v1/simulate", `{"backend":"optical","payload_bytes":1048576,"build":{"kind":"ring","n":32}}`},
		{"/v1/simulate", `{"backend":"optical","payload_bytes":1048576,"overlap":true,"build":{"kind":"wrht","n":64,"wavelengths":8}}`},
		{"/v1/plan", `{"rs":[4],"wavelengths":8,"a_micros":[25],"payload_mb":1,"no_rescue":true}`},
	}

	const total = 10_000
	const clients = 64
	var next, failures atomic.Int64
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: clients}
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= total {
					return
				}
				r := reqs[i%int64(len(reqs))]
				resp, err := client.Post(ts.URL+r.path, "application/json", strings.NewReader(r.body))
				if err != nil {
					failures.Add(1)
					t.Errorf("request %d (%s): %v", i, r.path, err)
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					failures.Add(1)
					t.Errorf("request %d (%s): reading body: %v", i, r.path, err)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("request %d (%s): status %d, body %s", i, r.path, resp.StatusCode, body)
				}
			}
		}()
	}
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed", n, total)
	}

	snap := s.Registry().Snapshot()
	var requests, hits int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "api.requests") {
			requests += v
		}
		if strings.HasPrefix(name, "api.coalesce.hits") {
			hits += v
		}
	}
	if requests != total {
		t.Errorf("daemon counted %d requests, want %d", requests, total)
	}
	if hits == 0 {
		t.Error("no coalescing hits across a duplicate-heavy 10k-request run")
	}
	for name, h := range snap.Histograms {
		if strings.HasPrefix(name, "api.request.seconds") {
			t.Logf("%s: count=%d p99=%.4fs max=%.4fs", name, h.Count, h.Quantile(0.99), h.Max)
		}
	}
	t.Logf("coalescing: %d of %d requests joined an in-flight execution", hits, total)
}
