package core

import (
	"testing"

	"wrht/internal/topo"
)

func TestBuildWRHTSegmentConfined(t *testing.T) {
	parts := []int{10, 11, 12, 13, 14, 15, 16, 17}
	s, err := BuildWRHTSegment(64, parts, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := SegmentSpanArcs(s, 10, 17); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(8); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWRHTSegmentSparseParticipants(t *testing.T) {
	// Participants need not be contiguous; circuits stay within the span.
	parts := []int{3, 7, 20, 21, 40}
	s, err := BuildWRHTSegment(64, parts, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := SegmentSpanArcs(s, 3, 40); err != nil {
		t.Fatal(err)
	}
	// Only participants appear in transfers.
	allowed := map[int]bool{}
	for _, p := range parts {
		allowed[p] = true
	}
	for _, st := range s.Steps {
		for _, tr := range st.Transfers {
			if !allowed[tr.Src] || !allowed[tr.Dst] {
				t.Fatalf("transfer %v touches non-participant", tr)
			}
		}
	}
}

func TestBuildWRHTSegmentValidation(t *testing.T) {
	if _, err := BuildWRHTSegment(16, nil, 4, 0); err == nil {
		t.Fatal("empty participants accepted")
	}
	if _, err := BuildWRHTSegment(16, []int{3, 2}, 4, 0); err == nil {
		t.Fatal("unsorted participants accepted")
	}
	if _, err := BuildWRHTSegment(16, []int{2, 2}, 4, 0); err == nil {
		t.Fatal("duplicate participants accepted")
	}
	if _, err := BuildWRHTSegment(16, []int{2, 99}, 4, 0); err == nil {
		t.Fatal("out-of-ring participant accepted")
	}
}

func TestMergeConcurrentDisjointSegments(t *testing.T) {
	a, err := BuildWRHTSegment(32, []int{0, 1, 2, 3, 4, 5, 6, 7}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWRHTSegment(32, []int{16, 17, 18, 19, 20, 21, 22, 23}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := MergeConcurrent(32, a, b)
	if m.NumSteps() != a.NumSteps() || m.NumSteps() != b.NumSteps() {
		t.Fatalf("merged steps %d, inputs %d/%d", m.NumSteps(), a.NumSteps(), b.NumSteps())
	}
	if err := m.Validate(4); err != nil {
		t.Fatalf("disjoint segments conflict: %v", err)
	}
	for k := range m.Steps {
		if len(m.Steps[k].Transfers) != len(a.Steps[k].Transfers)+len(b.Steps[k].Transfers) {
			t.Fatalf("step %d transfer counts do not add up", k)
		}
	}
}

func TestMergeConcurrentOverlapCaught(t *testing.T) {
	// Segments whose same-direction gather arcs overlap on the same
	// wavelengths must fail validation after merging. (Merely sharing
	// nodes is not enough — opposite-fiber circuits coexist — so shift
	// the second segment by two to overlap the CW arcs.)
	a, err := BuildWRHTSegment(32, []int{0, 1, 2, 3, 4, 5, 6, 7}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWRHTSegment(32, []int{2, 3, 4, 5, 6, 7, 8, 9}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := MergeConcurrent(32, a, b)
	if err := m.Validate(4); err == nil {
		t.Fatal("overlapping segments validated cleanly")
	}
}

func TestMergeConcurrentUnequalLengths(t *testing.T) {
	long, err := BuildWRHTSegment(64, rangeInts(0, 27), 2, 0) // needs more levels
	if err != nil {
		t.Fatal(err)
	}
	short, err := BuildWRHTSegment(64, rangeInts(40, 44), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := MergeConcurrent(64, long, short)
	if m.NumSteps() != long.NumSteps() {
		t.Fatalf("merged steps %d, want %d", m.NumSteps(), long.NumSteps())
	}
	if err := m.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestSegmentSpanArcsRejectsEscape(t *testing.T) {
	s := &Schedule{Ring: topo.NewRing(32), Steps: []Step{{
		Transfers: []Transfer{{Src: 5, Dst: 20, Chunk: whole(), Dir: topo.CW}},
	}}}
	if err := SegmentSpanArcs(s, 0, 10); err == nil {
		t.Fatal("escaping transfer accepted")
	}
}
