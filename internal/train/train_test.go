package train

import (
	"math"
	"math/rand"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/tensor"
)

// numericalGradCheck compares analytic gradients against central finite
// differences for a tiny network on one batch.
func numericalGradCheck(t *testing.T, build func(rng *rand.Rand) *Net, inDim, outDim int) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	net := build(rand.New(rand.NewSource(7)))
	batch := 3
	in := make([][]float32, batch)
	labels := make([]int, batch)
	for b := range in {
		in[b] = make([]float32, inDim)
		for i := range in[b] {
			in[b][i] = rng.Float32()*2 - 1
		}
		labels[b] = rng.Intn(outDim)
	}
	lossAt := func() float64 {
		logits := net.Forward(in)
		l, _ := SoftmaxCrossEntropy(logits, labels)
		return l
	}
	net.ZeroGrad()
	logits := net.Forward(in)
	_, g := SoftmaxCrossEntropy(logits, labels)
	net.Backward(g)
	analytic := net.Gradients()
	w := net.Weights()

	const eps = 1e-2
	checked := 0
	for _, idx := range []int{0, 1, len(w) / 2, len(w) - 1} {
		orig := w[idx]
		w[idx] = orig + eps
		net.SetWeights(w)
		up := lossAt()
		w[idx] = orig - eps
		net.SetWeights(w)
		down := lossAt()
		w[idx] = orig
		net.SetWeights(w)
		numeric := (up - down) / (2 * eps)
		if diff := math.Abs(numeric - float64(analytic[idx])); diff > 2e-2*(1+math.Abs(numeric)) {
			t.Errorf("grad[%d]: analytic %g vs numeric %g", idx, analytic[idx], numeric)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
}

func TestDenseGradCheck(t *testing.T) {
	numericalGradCheck(t, func(rng *rand.Rand) *Net {
		return NewNet(NewDense(6, 10, rng), NewReLU(10), NewDense(10, 4, rng))
	}, 6, 4)
}

func TestConvGradCheck(t *testing.T) {
	numericalGradCheck(t, func(rng *rand.Rand) *Net {
		conv := NewConv2D(2, 5, 5, 3, 3, 1, 1, rng)
		return NewNet(conv, NewReLU(conv.OutDim()), NewDense(conv.OutDim(), 4, rng))
	}, 2*5*5, 4)
}

func TestConvStrideAndPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(1, 6, 6, 2, 3, 2, 1, rng)
	if c.OutH != 3 || c.OutW != 3 {
		t.Fatalf("conv out %dx%d, want 3x3", c.OutH, c.OutW)
	}
	out := c.Forward([][]float32{make([]float32, 36)})
	if len(out[0]) != c.OutDim() {
		t.Fatalf("out dim %d vs %d", len(out[0]), c.OutDim())
	}
	// Zero input, positive bias: output equals bias everywhere.
	w, _ := c.Params()
	w[len(w)-2], w[len(w)-1] = 0.5, -0.25
	out = c.Forward([][]float32{make([]float32, 36)})
	for p := 0; p < 9; p++ {
		if out[0][p] != 0.5 || out[0][9+p] != -0.25 {
			t.Fatalf("bias broadcast wrong at %d: %g %g", p, out[0][p], out[0][9+p])
		}
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// A 1×1 identity kernel must reproduce its input.
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(1, 4, 4, 1, 1, 1, 0, rng)
	w, _ := c.Params()
	for i := range w {
		w[i] = 0
	}
	w[0] = 1
	in := make([]float32, 16)
	for i := range in {
		in[i] = float32(i)
	}
	out := c.Forward([][]float32{in})
	for i := range in {
		if out[0][i] != in[i] {
			t.Fatalf("identity conv differs at %d: %g != %g", i, out[0][i], in[i])
		}
	}
}

func TestSoftmaxCrossEntropyGradientSums(t *testing.T) {
	logits := [][]float32{{1, 2, 3}, {0, 0, 0}}
	labels := []int{2, 0}
	loss, grad := SoftmaxCrossEntropy(logits, labels)
	if loss <= 0 {
		t.Fatalf("loss = %g", loss)
	}
	// Per-sample gradients sum to zero (softmax property).
	for b := range grad {
		var s float64
		for _, g := range grad[b] {
			s += float64(g)
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("sample %d gradient sums to %g", b, s)
		}
	}
}

func TestMSELoss(t *testing.T) {
	loss, grad := MSELoss([][]float32{{1, 2}}, [][]float32{{0, 0}})
	if math.Abs(loss-2.5) > 1e-9 {
		t.Fatalf("loss = %g, want 2.5", loss)
	}
	if grad[0][0] != 1 || grad[0][1] != 2 {
		t.Fatalf("grad = %v", grad[0])
	}
}

func TestAccuracy(t *testing.T) {
	logits := [][]float32{{0, 1}, {1, 0}, {0.2, 0.1}}
	if acc := Accuracy(logits, []int{1, 0, 1}); math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %g", acc)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func mlpFactory(seed int64, in, hidden, classes int) NetFactory {
	return func() *Net {
		rng := rand.New(rand.NewSource(seed))
		return NewNet(NewDense(in, hidden, rng), NewReLU(hidden), NewDense(hidden, classes, rng))
	}
}

func TestParallelTrainingConvergesWithWRHT(t *testing.T) {
	const n, dim, classes = 8, 10, 4
	sched, err := core.BuildWRHT(core.Config{N: n, Wavelengths: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewParallelTrainer(n, mlpFactory(11, dim, 16, classes), sched, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ds := SyntheticClassification(640, dim, classes, 3)
	losses, err := tr.Epochs(ds, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	first, last := losses[0], losses[len(losses)-1]
	if last >= first*0.5 {
		t.Fatalf("loss did not converge: %g -> %g", first, last)
	}
	if err := tr.ReplicasInSync(0); err != nil {
		t.Fatal(err)
	}
}

func TestParallelTrainingIdenticalAcrossSchedules(t *testing.T) {
	// The all-reduce algorithm must not change training outcomes: WRHT,
	// Ring and BT runs produce identical weights up to float reduction
	// order (exact for BT/WRHT vs each other is not guaranteed, so use a
	// small tolerance).
	const n, dim, classes = 4, 8, 3
	ds := SyntheticClassification(320, dim, classes, 9)
	wsched, err := core.BuildWRHT(core.Config{N: n, Wavelengths: 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func(s *core.Schedule) tensor.Vector {
		tr, err := NewParallelTrainer(n, mlpFactory(21, dim, 12, classes), s, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Epochs(ds, 4, 3); err != nil {
			t.Fatal(err)
		}
		if err := tr.ReplicasInSync(0); err != nil {
			t.Fatal(err)
		}
		return tr.Nets[0].Weights()
	}
	wW := run(wsched)
	wR := run(collective.BuildRing(n))
	wB := run(collective.BuildBT(n))
	if !tensor.Equal(wW, wR, 1e-3) {
		t.Fatalf("WRHT vs Ring training diverged: max diff %g", tensor.MaxAbsDiff(wW, wR))
	}
	if !tensor.Equal(wW, wB, 1e-3) {
		t.Fatalf("WRHT vs BT training diverged: max diff %g", tensor.MaxAbsDiff(wW, wB))
	}
}

func TestDataParallelMatchesSingleWorker(t *testing.T) {
	// Eq 5: averaging shard gradients equals the full-batch gradient, so
	// n workers with batch b must track 1 worker with batch n·b.
	const dim, classes = 6, 3
	ds := SyntheticClassification(240, dim, classes, 17)

	single, err := NewParallelTrainer(1, mlpFactory(31, dim, 8, classes),
		mustWRHT(t, 1, 1), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewParallelTrainer(4, mlpFactory(31, dim, 8, classes),
		mustWRHT(t, 4, 2), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 10; it++ {
		xs1, ys1 := ds.Shard(1, 16, it)
		if _, err := single.Step(xs1, ys1); err != nil {
			t.Fatal(err)
		}
		x4, y4 := ds.Shard(4, 4, it)
		if _, err := multi.Step(x4, y4); err != nil {
			t.Fatal(err)
		}
	}
	w1, w4 := single.Nets[0].Weights(), multi.Nets[0].Weights()
	if !tensor.Equal(w1, w4, 1e-3) {
		t.Fatalf("data-parallel drifted from single-worker: max diff %g", tensor.MaxAbsDiff(w1, w4))
	}
}

func mustWRHT(t *testing.T, n, w int) *core.Schedule {
	t.Helper()
	s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrainerValidation(t *testing.T) {
	if _, err := NewParallelTrainer(3, mlpFactory(1, 2, 2, 2), mustWRHT(t, 4, 2), 0.1); err == nil {
		t.Fatal("mismatched schedule accepted")
	}
	// Non-deterministic factory must be rejected.
	var calls int64
	bad := func() *Net {
		calls++
		return NewNet(NewDense(2, 2, rand.New(rand.NewSource(calls))))
	}
	if _, err := NewParallelTrainer(2, bad, mustWRHT(t, 2, 1), 0.1); err == nil {
		t.Fatal("non-deterministic factory accepted")
	}
}

func TestShardWrapsAround(t *testing.T) {
	ds := SyntheticClassification(10, 2, 2, 1)
	xs, ys := ds.Shard(3, 4, 0)
	if len(xs) != 3 || len(xs[0]) != 4 || len(ys[2]) != 4 {
		t.Fatalf("shard shape wrong: %d %d", len(xs), len(xs[0]))
	}
}

func TestMomentumTrainingConvergesFasterOrInSync(t *testing.T) {
	const n, dim, classes = 4, 8, 3
	ds := SyntheticClassification(320, dim, classes, 23)
	sched := mustWRHT(t, n, 2)
	tr, err := NewParallelTrainer(n, mlpFactory(51, dim, 12, classes), sched, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	opts := make([]Optimizer, n)
	for i := range opts {
		opts[i] = NewMomentum(0.05, 0.9, 1e-4)
	}
	var first, last float64
	for it := 0; it < 30; it++ {
		xs, ys := ds.Shard(n, 4, it)
		loss, err := tr.StepWith(xs, ys, opts)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first*0.6 {
		t.Fatalf("momentum training did not converge: %g -> %g", first, last)
	}
	if err := tr.ReplicasInSync(0); err != nil {
		t.Fatalf("momentum replicas diverged: %v", err)
	}
}

func TestMomentumMatchesSGDAtZeroMu(t *testing.T) {
	const n, dim, classes = 2, 6, 2
	ds := SyntheticClassification(160, dim, classes, 31)
	run := func(useMomentum bool) tensor.Vector {
		tr, err := NewParallelTrainer(n, mlpFactory(61, dim, 8, classes), mustWRHT(t, n, 1), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		for it := 0; it < 10; it++ {
			xs, ys := ds.Shard(n, 4, it)
			if useMomentum {
				opts := []Optimizer{NewMomentum(0.05, 0, 0), NewMomentum(0.05, 0, 0)}
				if _, err := tr.StepWith(xs, ys, opts); err != nil {
					t.Fatal(err)
				}
			} else if _, err := tr.Step(xs, ys); err != nil {
				t.Fatal(err)
			}
		}
		return tr.Nets[0].Weights()
	}
	a, b := run(false), run(true)
	if !tensor.Equal(a, b, 0) {
		t.Fatalf("µ=0 momentum differs from SGD: max diff %g", tensor.MaxAbsDiff(a, b))
	}
}

func TestStepWithValidatesOptimizerCount(t *testing.T) {
	tr, err := NewParallelTrainer(2, mlpFactory(71, 4, 4, 2), mustWRHT(t, 2, 1), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ds := SyntheticClassification(16, 4, 2, 1)
	xs, ys := ds.Shard(2, 2, 0)
	if _, err := tr.StepWith(xs, ys, []Optimizer{SGD{LR: 0.1}}); err == nil {
		t.Fatal("optimizer count mismatch accepted")
	}
}
