package core

import (
	"encoding/json"
	"fmt"
	"io"

	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// Schedule serialization: schedules are valuable artifacts — a control
// plane can precompute and cache them per (N, w, m) and load them at
// run time, and golden files keep construction changes reviewable — so
// they round-trip through a stable JSON form.

type jsonChunk struct {
	Index int        `json:"i"`
	Of    int        `json:"of"`
	Sub   *jsonChunk `json:"sub,omitempty"`
}

func toJSONChunk(c tensor.Chunk) *jsonChunk {
	out := &jsonChunk{Index: c.Index, Of: c.Of}
	if c.Sub != nil {
		out.Sub = toJSONChunk(*c.Sub)
	}
	return out
}

func fromJSONChunk(c *jsonChunk) tensor.Chunk {
	out := tensor.Chunk{Index: c.Index, Of: c.Of}
	if c.Sub != nil {
		sub := fromJSONChunk(c.Sub)
		out.Sub = &sub
	}
	return out
}

type jsonTransfer struct {
	Src        int        `json:"src"`
	Dst        int        `json:"dst"`
	Chunk      *jsonChunk `json:"chunk"`
	Op         string     `json:"op"`
	Dir        string     `json:"dir"`
	Wavelength int        `json:"wl"`
}

type jsonStep struct {
	Phase     string         `json:"phase"`
	Transfers []jsonTransfer `json:"transfers"`
}

type jsonSchedule struct {
	Algorithm string     `json:"algorithm"`
	N         int        `json:"n"`
	Steps     []jsonStep `json:"steps"`
}

// MarshalJSON implements json.Marshaler for Schedule.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	doc := jsonSchedule{Algorithm: s.Algorithm, N: s.Ring.N}
	for _, st := range s.Steps {
		js := jsonStep{Phase: st.Phase.String()}
		for _, t := range st.Transfers {
			js.Transfers = append(js.Transfers, jsonTransfer{
				Src: t.Src, Dst: t.Dst,
				Chunk:      toJSONChunk(t.Chunk),
				Op:         t.Op.String(),
				Dir:        t.Dir.String(),
				Wavelength: t.Wavelength,
			})
		}
		doc.Steps = append(doc.Steps, js)
	}
	return json.Marshal(doc)
}

// UnmarshalJSON implements json.Unmarshaler for Schedule.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var doc jsonSchedule
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("core: schedule decode: %w", err)
	}
	if doc.N < 1 {
		return fmt.Errorf("core: schedule decode: ring size %d < 1", doc.N)
	}
	out := Schedule{Algorithm: doc.Algorithm, Ring: topo.NewRing(doc.N)}
	for si, js := range doc.Steps {
		st := Step{}
		switch js.Phase {
		case "reduce":
			st.Phase = PhaseReduce
		case "all-to-all":
			st.Phase = PhaseAllToAll
		case "broadcast":
			st.Phase = PhaseBroadcast
		default:
			return fmt.Errorf("core: schedule decode: step %d has unknown phase %q", si, js.Phase)
		}
		for ti, jt := range js.Transfers {
			if jt.Chunk == nil {
				return fmt.Errorf("core: schedule decode: step %d transfer %d lacks chunk", si, ti)
			}
			t := Transfer{
				Src: jt.Src, Dst: jt.Dst,
				Chunk:      fromJSONChunk(jt.Chunk),
				Wavelength: jt.Wavelength,
			}
			switch jt.Op {
			case "sum":
				t.Op = tensor.OpSum
			case "copy":
				t.Op = tensor.OpCopy
			default:
				return fmt.Errorf("core: schedule decode: step %d transfer %d has unknown op %q", si, ti, jt.Op)
			}
			switch jt.Dir {
			case "cw":
				t.Dir = topo.CW
			case "ccw":
				t.Dir = topo.CCW
			default:
				return fmt.Errorf("core: schedule decode: step %d transfer %d has unknown direction %q", si, ti, jt.Dir)
			}
			st.Transfers = append(st.Transfers, t)
		}
		out.Steps = append(out.Steps, st)
	}
	*s = out
	return nil
}

// WriteTo writes the schedule as indented JSON.
func (s *Schedule) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	n, err := w.Write(b)
	return int64(n), err
}

// ReadSchedule decodes a schedule from JSON and validates its structure
// (chunk sanity, node ranges, conflict-freedom is NOT checked — run
// Validate with the wavelength budget separately).
func ReadSchedule(r io.Reader) (*Schedule, error) {
	var s Schedule
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
