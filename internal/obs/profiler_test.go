package obs

import (
	"testing"
	"time"
)

func TestProfilerNilSafe(t *testing.T) {
	if p := NewProfiler(nil); p != nil {
		t.Fatal("NewProfiler(nil) should return nil")
	}
	var p *Profiler
	h := p.Hist("f", "k", "v")
	if h != nil {
		t.Fatal("nil profiler Hist should return nil")
	}
	start := p.Start()
	if !start.IsZero() {
		t.Fatal("nil profiler Start should return the zero time")
	}
	p.End(h, start)
	p.Span(start, "f")
}

// TestProfilerDeterministicClock drives the profiler with an injected
// clock and checks the exact histogram contents.
func TestProfilerDeterministicClock(t *testing.T) {
	reg := NewRegistry()
	p := NewProfiler(reg)
	now := time.Unix(0, 0)
	p.Now = func() time.Time { return now }

	h := p.Hist("span.seconds", "kind", "a")
	start := p.Start()
	now = now.Add(2 * time.Millisecond)
	p.End(h, start)

	start = p.Start()
	now = now.Add(8 * time.Millisecond)
	p.Span(start, "span.seconds", "kind", "a")

	got := reg.Histogram(Labeled("span.seconds", "kind", "a"))
	if got.Count() != 2 {
		t.Fatalf("count = %d, want 2", got.Count())
	}
	if sum := got.Sum(); sum < 0.00999 || sum > 0.01001 {
		t.Fatalf("sum = %g, want ~0.010", sum)
	}
	if max := got.Max(); max < 0.00799 || max > 0.00801 {
		t.Fatalf("max = %g, want ~0.008", max)
	}
}

// TestProfilerMarksVolatile checks that every family a profiler creates
// is excluded from determinism comparisons by construction.
func TestProfilerMarksVolatile(t *testing.T) {
	reg := NewRegistry()
	p := NewProfiler(reg)
	p.Hist("wall.seconds", "stage", "x")
	p.Span(p.Start(), "other.seconds")
	s := reg.Snapshot()
	want := map[string]bool{"wall.seconds": false, "other.seconds": false}
	for _, f := range s.Volatile {
		if _, ok := want[f]; ok {
			want[f] = true
		}
	}
	for f, seen := range want {
		if !seen {
			t.Errorf("family %q not marked volatile", f)
		}
	}
}
