package wrht_test

import (
	"strings"
	"testing"

	"wrht"
	"wrht/internal/api"
)

// The API layer must surface Build's strict-option failures as typed
// errors: same failure site, same message text, plus a code a client
// can dispatch on.
func TestServeBuildErrorPaths(t *testing.T) {
	root := 0
	cases := []struct {
		name    string
		req     api.BuildRequest
		code    string
		message string // substring the message must carry
	}{
		{
			name: "zero n",
			req:  api.BuildRequest{Kind: "wrht"},
			code: api.CodeBadRequest, message: "n must be at least 1",
		},
		{
			name: "unknown kind",
			req:  api.BuildRequest{Kind: "quantum", N: 8},
			code: api.CodeUnknownKind, message: `unknown collective kind "quantum"`,
		},
		{
			name: "wavelengths unconsumed by ring",
			req:  api.BuildRequest{Kind: "ring", N: 8, Wavelengths: 4},
			code: api.CodeUnconsumedOption, message: `option WithWavelengths is not consumed by kind "ring"`,
		},
		{
			name: "dims unconsumed by wrht",
			req:  api.BuildRequest{Kind: "wrht", N: 16, Wavelengths: 4, Rows: 4, Cols: 4},
			code: api.CodeUnconsumedOption, message: `option WithDims is not consumed by kind "wrht"`,
		},
		{
			name: "root unconsumed by reduce-scatter",
			req:  api.BuildRequest{Kind: "reduce-scatter", N: 8, Root: &root},
			code: api.CodeUnconsumedOption, message: `option WithRoot is not consumed by kind "reduce-scatter"`,
		},
		{
			name: "dead wavelengths without a budget",
			req:  api.BuildRequest{Kind: "wrht", N: 16, Faults: &api.FaultSpec{Seed: 1, Wavelengths: 2}},
			code: api.CodeBadRequest, message: "wavelength budget",
		},
		{
			name: "stream rejects non-wrht",
			req:  api.BuildRequest{Kind: "ring", N: 8, Stream: true},
			code: api.CodeBadRequest, message: "stream mode supports only kind",
		},
		{
			name: "stream rejects faults",
			req:  api.BuildRequest{Kind: "wrht", N: 16, Wavelengths: 4, Stream: true, Faults: &api.FaultSpec{Nodes: 1}},
			code: api.CodeBadRequest, message: "stream mode takes only",
		},
		{
			name: "construction failure",
			req:  api.BuildRequest{Kind: "torus", N: 7, Rows: 2, Cols: 5},
			code: api.CodeBuildFailed,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, aerr := wrht.ServeBuild(tc.req)
			if aerr == nil {
				t.Fatalf("no error; response %+v", resp)
			}
			if aerr.Code != tc.code {
				t.Errorf("code = %q, want %q (message %q)", aerr.Code, tc.code, aerr.Message)
			}
			if tc.message != "" && !strings.Contains(aerr.Message, tc.message) {
				t.Errorf("message %q does not contain %q", aerr.Message, tc.message)
			}
		})
	}
}

// A typed unconsumed_option error must carry the same message Build's
// plain strict-option error does (minus the package prefix): one
// failure, one text, two surfaces.
func TestServeBuildMatchesBuildErrorText(t *testing.T) {
	_, err := wrht.Build(wrht.KindRing, 8, wrht.WithWavelengths(4))
	if err == nil {
		t.Fatal("direct Build accepted an unconsumed option")
	}
	_, aerr := wrht.ServeBuild(api.BuildRequest{Kind: "ring", N: 8, Wavelengths: 4})
	if aerr == nil {
		t.Fatal("ServeBuild accepted an unconsumed option")
	}
	if want := strings.TrimPrefix(err.Error(), "wrht: "); aerr.Message != want {
		t.Errorf("API message %q != Build message %q", aerr.Message, want)
	}
}

func TestServeSimulateErrorPaths(t *testing.T) {
	okBuild := api.BuildRequest{Kind: "ring", N: 8}
	cases := []struct {
		name    string
		req     api.SimulateRequest
		code    string
		message string
	}{
		{
			name: "zero payload",
			req:  api.SimulateRequest{Backend: "optical", Build: okBuild},
			code: api.CodeBadRequest, message: "payload_bytes must be positive",
		},
		{
			name: "negative payload",
			req:  api.SimulateRequest{Backend: "optical", Build: okBuild, PayloadBytes: -5},
			code: api.CodeBadRequest, message: "payload_bytes must be positive",
		},
		{
			name: "unknown backend",
			req:  api.SimulateRequest{Backend: "carrier-pigeon", Build: okBuild, PayloadBytes: 1},
			code: api.CodeUnknownBackend, message: `unknown backend "carrier-pigeon"`,
		},
		{
			name: "overlap on electrical",
			req:  api.SimulateRequest{Backend: "electrical", Build: okBuild, PayloadBytes: 1, Overlap: true},
			code: api.CodeBadRequest, message: "electrical backend does not take it",
		},
		{
			name: "stream build",
			req: api.SimulateRequest{Backend: "optical", PayloadBytes: 1,
				Build: api.BuildRequest{Kind: "wrht", N: 16, Wavelengths: 4, Stream: true}},
			code: api.CodeBadRequest, message: "materialized schedule",
		},
		{
			name: "unknown embedded kind",
			req: api.SimulateRequest{Backend: "optical", PayloadBytes: 1,
				Build: api.BuildRequest{Kind: "quantum", N: 8}},
			code: api.CodeUnknownKind,
		},
		{
			name: "unconsumed embedded option",
			req: api.SimulateRequest{Backend: "optical", PayloadBytes: 1,
				Build: api.BuildRequest{Kind: "ring", N: 8, GroupSize: 4}},
			code: api.CodeUnconsumedOption, message: "WithGroupSize",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, aerr := wrht.ServeSimulate(tc.req)
			if aerr == nil {
				t.Fatalf("no error; response %+v", resp)
			}
			if aerr.Code != tc.code {
				t.Errorf("code = %q, want %q (message %q)", aerr.Code, tc.code, aerr.Message)
			}
			if tc.message != "" && !strings.Contains(aerr.Message, tc.message) {
				t.Errorf("message %q does not contain %q", aerr.Message, tc.message)
			}
		})
	}
}

// The happy path: a traced simulate returns a non-empty inline trace
// and the same result an untraced run produces.
func TestServeSimulateTraceInline(t *testing.T) {
	req := api.SimulateRequest{
		Backend: "optical", PayloadBytes: 1 << 20,
		Build: api.BuildRequest{Kind: "wrht", N: 32, Wavelengths: 8},
	}
	plain, aerr := wrht.ServeSimulate(req)
	if aerr != nil {
		t.Fatalf("ServeSimulate: %v", aerr)
	}
	req.Trace = true
	traced, aerr := wrht.ServeSimulate(req)
	if aerr != nil {
		t.Fatalf("ServeSimulate with trace: %v", aerr)
	}
	if len(traced.Trace) == 0 {
		t.Fatal("trace requested but response carries none")
	}
	if traced.Result.Time != plain.Result.Time || traced.Result.Steps != plain.Result.Steps {
		t.Errorf("tracing changed the result: %+v vs %+v", traced.Result, plain.Result)
	}
}
