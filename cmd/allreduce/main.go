// Command allreduce runs a real data-plane all-reduce on the in-process
// cluster: N goroutine workers hold random float32 vectors, execute the
// chosen collective schedule, and verify that every worker ends with the
// elementwise sum. It also prints the schedule's step structure and
// wavelength needs plus the Eq-6 communication time the optical
// simulator predicts for a gradient of the chosen size.
//
// Usage:
//
//	allreduce [-n 16] [-algo wrht|ring|bt|rd|hring] [-len 4096]
//	          [-wavelengths 64] [-group 0] [-hring-m 4] [-verbose]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"wrht"
	"wrht/internal/cluster"
	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/optical"
	"wrht/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("allreduce: ")
	var (
		n       = flag.Int("n", 16, "number of workers on the optical ring")
		algo    = flag.String("algo", "wrht", "collective: wrht, ring, bt, rd, hring, dbtree, wdmhring")
		vlen    = flag.Int("len", 4096, "vector length per worker (float32 elements)")
		waves   = flag.Int("wavelengths", 64, "available wavelengths per waveguide")
		group   = flag.Int("group", 0, "WRHT grouped nodes m (0 = optimal 2w+1)")
		hringM  = flag.Int("hring-m", 4, "H-Ring intra-group size (must divide n)")
		seed    = flag.Int64("seed", 1, "input RNG seed")
		verbose = flag.Bool("verbose", false, "print every step")
	)
	flag.Parse()

	var (
		s   *core.Schedule
		err error
	)
	switch *algo {
	case "wrht":
		s, err = core.BuildWRHT(core.Config{N: *n, Wavelengths: *waves, GroupSize: *group})
	case "ring":
		s = collective.BuildRing(*n)
	case "bt":
		s = collective.BuildBT(*n)
	case "rd":
		s, err = collective.BuildRD(*n)
	case "hring":
		s, err = collective.BuildHRing(*n, *hringM, *waves)
	case "dbtree":
		s = collective.BuildDBTree(*n)
	case "wdmhring":
		s, err = collective.BuildWDMHRing(*n, *hringM, *waves)
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %d nodes: %d steps, %d wavelengths needed (budget %d)\n",
		s.Algorithm, *n, s.NumSteps(), s.WavelengthsNeeded(), *waves)
	fmt.Printf("utilization: %s\n", core.ComputeStats(s))
	if err := s.Validate(0); err != nil {
		log.Fatalf("schedule is wavelength-conflicted: %v", err)
	}
	if *verbose {
		for i, st := range s.Steps {
			fmt.Printf("  step %2d (%s): %d transfers\n", i+1, st.Phase, len(st.Transfers))
			for _, tr := range st.Transfers {
				fmt.Printf("    %v\n", tr)
			}
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	inputs := make([]tensor.Vector, *n)
	for i := range inputs {
		inputs[i] = tensor.New(*vlen)
		for j := range inputs[i] {
			inputs[i][j] = float32(rng.Intn(200) - 100)
		}
	}
	want := cluster.ExpectedSum(inputs)
	cl, err := cluster.New(inputs)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Execute(s); err != nil {
		log.Fatal(err)
	}
	if err := cl.VerifyAllReduced(want, 0); err != nil {
		log.Fatalf("FAILED verification: %v", err)
	}
	fmt.Printf("all %d workers hold the exact elementwise sum of %d elements: OK\n", *n, *vlen)

	p := optical.DefaultParams()
	p.Wavelengths = *waves
	res, err := wrht.Simulate(wrht.Optical, s, float64(*vlen)*4,
		wrht.WithOpticalParams(p), wrht.WithoutValidation())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optical model: T = %.6f ms (transfer %.6f ms + step overhead %.6f ms)\n",
		res.Time*1e3, res.TransferTime*1e3, res.OverheadTime*1e3)
	os.Exit(0)
}
