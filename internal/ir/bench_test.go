package ir

import (
	"testing"

	"wrht/internal/core"
)

// BenchmarkIRPipeline measures the full lower → passes → raise +
// boundary export path on the N=1024 golden config (CI runs it at
// -benchtime=1x as a smoke test).
func BenchmarkIRPipeline(b *testing.B) {
	s, err := core.BuildWRHT(core.Config{N: 1024, Wavelengths: 64})
	if err != nil {
		b.Fatal(err)
	}
	passes := testPasses()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := Lower(s, 64)
		if err != nil {
			b.Fatal(err)
		}
		if err := (Pipeline{Passes: passes}).Run(p); err != nil {
			b.Fatal(err)
		}
		if p.Raise() == nil || p.Boundaries() == nil {
			b.Fatal("pipeline lost the program")
		}
	}
}
