package api

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// Every schema type must survive encode → decode → deep-equal with all
// fields populated: a field that drops, renames or collides in JSON
// breaks the CLI/daemon byte-parity contract, and this is where it
// surfaces first.
func TestSchemaRoundTrip(t *testing.T) {
	root := 3
	stepCost := StepCost{Setup: 1e-5, Serialization: 2e-3, OEO: 3e-7, RouterDelay: 4e-7, Total: 2.1e-3, MaxBytes: 1 << 20}
	stepReport := StepReport{Phase: "reduce", Cost: stepCost, Overlapped: 5e-6}
	simResult := SimResult{
		Fabric:       "optical",
		Algorithm:    "wrht",
		Steps:        7,
		Time:         0.25,
		TransferTime: 0.2,
		OverheadTime: 0.04,
		RouterTime:   0.01,
		OverlapSaved: 0.005,
		PerStep:      []StepReport{stepReport},
	}
	faults := &FaultSpec{Seed: 7, Nodes: 1, Transceivers: 2, Wavelengths: 3, Segments: 4, MRRs: 5, MRRLossDB: 0.5}
	buildReq := BuildRequest{
		Kind: "wrht", N: 64, Wavelengths: 8, GroupSize: 17, MaxGroupSize: 32,
		Rows: 8, Cols: 8, Participants: []int{0, 1, 2}, Root: &root,
		NoAllToAll: true, Faults: faults, Stream: true,
	}

	cases := []struct {
		name string
		v    any
	}{
		{"FaultSpec", *faults},
		{"BuildRequest", buildReq},
		{"SimulateRequest", SimulateRequest{
			Backend: "optical", Build: buildReq, PayloadBytes: 1e8,
			Overlap: true, Hosts: 64, NoValidate: true, Trace: true,
		}},
		{"SweepRequest", SweepRequest{
			Sweep: "overlap", N: 64, Ns: []int{1024, 4096}, Wavelengths: 64,
			PayloadMB: 100, Passes: "reorder,split", Dead: []int{0, 2}, Seed: 9, Check: true,
		}},
		{"PlanRequest", PlanRequest{
			Rs: []int{4, 8}, Wavelengths: 8, AMicros: []float64{0.4, 25},
			PayloadMB: 25, NoRescue: true, Check: true,
		}},
		{"Error", Error{Code: CodeUnconsumedOption, Message: "option WithDims is not consumed"}},
		{"ErrorEnvelope", ErrorEnvelope{Error: &Error{Code: CodeBadRequest, Message: "bad"}}},
		{"StepCost", stepCost},
		{"StepReport", stepReport},
		{"SimResult", simResult},
		{"BuildResponse", BuildResponse{
			Version: Version, Kind: "wrht", Algorithm: "wrht", N: 64,
			Wavelengths: 8, Steps: 12, Transfers: 480, Validated: true, Streamed: true,
		}},
		{"SimulateResponse", SimulateResponse{
			Version: Version, Backend: "optical", PayloadBytes: 1e8,
			// An indentation-invariant raw value: Encode re-indents embedded
			// raw JSON, which is fine for clients but would fail a byte-level
			// DeepEqual here.
			Result: simResult, Trace: json.RawMessage(`{}`),
		}},
		{"CrossFabricCell", CrossFabricCell{Algorithm: "wrht", Mode: "optical+overlap", Result: simResult}},
		{"CrossFabricResult", CrossFabricResult{
			N: 64, Wavelengths: 8, PayloadBytes: 1e7,
			Cells: []CrossFabricCell{{Algorithm: "ring", Mode: "electrical", Result: simResult}},
		}},
		{"OverlapPoint", OverlapPoint{
			N: 1024, Wavelengths: 64, BaselineSteps: 10, PassSteps: 9,
			BaselineHidden: 3, PassHidden: 7, BaselineSaved: 0.01, PassSaved: 0.02,
			BaselineTime: 0.5, PassTime: 0.45,
		}},
		{"FaultsPoint", FaultsPoint{
			N: 1024, Dead: 2, EffectiveWavelengths: 62, Steps: 11,
			StaticTime: 0.6, Slowdown: 1.05, InjectedTime: 0.61, Reschedules: 1,
		}},
		{"SweepResponse", SweepResponse{
			Version: Version, Sweep: "crossfabric",
			CrossFabric: &CrossFabricResult{N: 64, Wavelengths: 8, PayloadBytes: 1e7},
			Overlap:     []OverlapPoint{{N: 1024, Wavelengths: 64}},
			Faults:      []FaultsPoint{{N: 64, Dead: 1}},
		}},
		{"PlanPoint", PlanPoint{
			Fabric: "optical", R: 8, Wavelengths: 8, AMicro: 25,
			Chosen: "planned", ChosenSteps: 3, Predicted: 0.1, Simulated: 0.11,
			Argmin: true, OneShot: 0.2, Fallback: 0.3,
		}},
		{"RescuePoint", RescuePoint{
			N: 1024, Wavelengths: 16, FinalR: 33, Requirement: 33,
			FallbackSteps: 33, PlannedSteps: 5, FallbackTime: 0.9, PlannedTime: 0.3, Speedup: 3,
		}},
		{"PlanResponse", PlanResponse{
			Version: Version,
			Points:  []PlanPoint{{Fabric: "electrical", R: 4}},
			Rescue:  []RescuePoint{{N: 256, Wavelengths: 8}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Encode(&buf, tc.v); err != nil {
				t.Fatalf("Encode: %v", err)
			}
			out := reflect.New(reflect.TypeOf(tc.v))
			dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
			dec.DisallowUnknownFields()
			if err := dec.Decode(out.Interface()); err != nil {
				t.Fatalf("Decode: %v\nencoded: %s", err, buf.Bytes())
			}
			if got := out.Elem().Interface(); !reflect.DeepEqual(got, tc.v) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v\nencoded: %s", got, tc.v, buf.Bytes())
			}
		})
	}
}

// Encode must be deterministic and newline-terminated — the format the
// byte-parity guarantee between wrhtsim -json and wrhtd rides on.
func TestEncodeFormat(t *testing.T) {
	var a, b bytes.Buffer
	v := BuildResponse{Version: Version, Kind: "wrht", Algorithm: "wrht", N: 8, Steps: 3, Transfers: 12}
	if err := Encode(&a, v); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Encode is not deterministic")
	}
	if !strings.HasSuffix(a.String(), "\n") {
		t.Error("Encode output not newline-terminated")
	}
	if !strings.Contains(a.String(), "\n  \"version\": \"v1\"") {
		t.Errorf("Encode not two-space-indented:\n%s", a.String())
	}
}

// Requests that build identical schedules must share one coalescing
// key; requests that differ must not.
func TestRequestKeys(t *testing.T) {
	// Group size left implicit vs. spelled out as the canonical value:
	// same schedule, same key.
	implicit := BuildRequest{Kind: "wrht", N: 64, Wavelengths: 8}
	explicit := BuildRequest{Kind: "wrht", N: 64, Wavelengths: 8, GroupSize: implicit.Normalize().GroupSize}
	if implicit.Key() != explicit.Key() {
		t.Errorf("canonical-equal builds have different keys:\n%s\n%s", implicit.Key(), explicit.Key())
	}
	// Kind defaulting: empty kind is wrht.
	if (BuildRequest{N: 64, Wavelengths: 8}).Key() != implicit.Key() {
		t.Error("empty kind does not normalize to wrht")
	}
	if implicit.Key() == (BuildRequest{Kind: "wrht", N: 128, Wavelengths: 8}).Key() {
		t.Error("different N share a key")
	}
	// Sweep defaults: passes "" == "all"; faults seed 0 == 1.
	s1 := SweepRequest{Sweep: "overlap", Ns: []int{1024}, Wavelengths: 64, PayloadMB: 100}
	s2 := s1
	s2.Passes = "all"
	if s1.Key() != s2.Key() {
		t.Error("default passes does not normalize to all")
	}
	f1 := SweepRequest{Sweep: "faults", Wavelengths: 8, PayloadMB: 10}
	f2 := f1
	f2.Seed = 1
	if f1.Key() != f2.Key() {
		t.Error("default faults seed does not normalize to 1")
	}
}
