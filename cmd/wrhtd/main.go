// Command wrhtd serves the wrht schedule builder and simulators over
// a versioned HTTP/JSON API: POST /v1/build, /v1/simulate, /v1/sweep
// and /v1/plan (schemas in internal/api — the same types `wrhtsim
// -json` emits), plus GET /metrics and /debug/pprof. Duplicate
// requests coalesce onto one execution and all sweeps share one
// bounded worker pool; SIGINT/SIGTERM drains in-flight requests
// before exit.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"wrht/internal/daemon"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "shared sweep worker pool size (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout for in-flight requests")
	flag.Parse()

	s := daemon.New(daemon.Config{Workers: *workers})
	mux := daemon.DebugMux(s.Registry()) // /metrics + /debug/pprof
	mux.Handle("/v1/", s.Handler())

	g, err := daemon.StartGraceful(*addr, mux, *drain)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wrhtd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrhtd %s serving /v1/{build,simulate,sweep,plan} and /metrics\n", g.Addr())
	err = g.Wait() // returns after signal-driven drain
	s.Close()
	if err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "wrhtd: %v\n", err)
		os.Exit(1)
	}
}
