package topo

import (
	"testing"
	"testing/quick"
)

func TestRingDist(t *testing.T) {
	r := NewRing(10)
	cases := []struct {
		src, dst int
		dir      Direction
		want     int
	}{
		{0, 3, CW, 3},
		{0, 3, CCW, 7},
		{3, 0, CW, 7},
		{3, 0, CCW, 3},
		{9, 0, CW, 1},
		{0, 9, CCW, 1},
		{5, 5, CW, 0},
		{5, 5, CCW, 0},
	}
	for _, c := range cases {
		if got := r.Dist(c.src, c.dst, c.dir); got != c.want {
			t.Errorf("Dist(%d,%d,%v) = %d, want %d", c.src, c.dst, c.dir, got, c.want)
		}
	}
}

func TestShortestDir(t *testing.T) {
	r := NewRing(10)
	if dir, d := r.ShortestDir(0, 3); dir != CW || d != 3 {
		t.Errorf("ShortestDir(0,3) = %v,%d", dir, d)
	}
	if dir, d := r.ShortestDir(0, 8); dir != CCW || d != 2 {
		t.Errorf("ShortestDir(0,8) = %v,%d", dir, d)
	}
	// Tie resolves to CW.
	if dir, d := r.ShortestDir(0, 5); dir != CW || d != 5 {
		t.Errorf("ShortestDir(0,5) = %v,%d", dir, d)
	}
}

func TestShortestDirQuick(t *testing.T) {
	f := func(nRaw, sRaw, dRaw uint16) bool {
		n := int(nRaw%500) + 2
		src, dst := int(sRaw)%n, int(dRaw)%n
		dir, d := r0(n).ShortestDir(src, dst)
		if d > n/2 {
			return false
		}
		return r0(n).Dist(src, dst, dir) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func r0(n int) Ring { return NewRing(n) }

func TestSegmentsMatchArc(t *testing.T) {
	f := func(nRaw, sRaw, dRaw uint16, ccw bool) bool {
		n := int(nRaw%100) + 2
		src, dst := int(sRaw)%n, int(dRaw)%n
		dir := CW
		if ccw {
			dir = CCW
		}
		r := NewRing(n)
		segs := r.Segment(src, dst, dir)
		arc := r.ArcOf(src, dst, dir)
		if len(segs) != arc.Len {
			return false
		}
		for _, s := range segs {
			if !arc.Contains(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArcOverlapMatchesSegmentSets(t *testing.T) {
	f := func(nRaw, a1, b1, a2, b2 uint16, ccw1, ccw2 bool) bool {
		n := int(nRaw%40) + 2
		r := NewRing(n)
		d1, d2 := CW, CW
		if ccw1 {
			d1 = CCW
		}
		if ccw2 {
			d2 = CCW
		}
		s1, e1 := int(a1)%n, int(b1)%n
		s2, e2 := int(a2)%n, int(b2)%n
		set := map[int]bool{}
		for _, s := range r.Segment(s1, e1, d1) {
			set[s] = true
		}
		brute := false
		for _, s := range r.Segment(s2, e2, d2) {
			if set[s] {
				brute = true
			}
		}
		return r.ArcOf(s1, e1, d1).Overlaps(r.ArcOf(s2, e2, d2)) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestArcWraparound(t *testing.T) {
	r := NewRing(10)
	// CW from 8 to 2 crosses segments 8, 9, 0, 1.
	arc := r.ArcOf(8, 2, CW)
	for _, s := range []int{8, 9, 0, 1} {
		if !arc.Contains(s) {
			t.Errorf("arc missing segment %d", s)
		}
	}
	if arc.Contains(2) || arc.Contains(7) {
		t.Error("arc contains segments outside its span")
	}
}

func TestOppositeDirection(t *testing.T) {
	if CW.Opposite() != CCW || CCW.Opposite() != CW {
		t.Fatal("Opposite broken")
	}
	if CW.String() != "cw" || CCW.String() != "ccw" {
		t.Fatal("direction strings")
	}
}

func TestNewRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestFullCircleArcOverlaps(t *testing.T) {
	a := Arc{Lo: 0, Len: 10, N: 10}
	b := Arc{Lo: 3, Len: 1, N: 10}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("full-circle arc must overlap everything")
	}
	empty := Arc{Lo: 0, Len: 0, N: 10}
	if a.Overlaps(empty) || empty.Overlaps(a) {
		t.Fatal("empty arc must overlap nothing")
	}
}
