package rwa

import "wrht/internal/topo"

// Probe pools an occupancy index with request/arc/assignment buffers
// for repeated conflict checks over already-assigned circuit sets: the
// engine's per-boundary overlap probes (internal/fabric) and the
// all-to-all planner's per-round validation and boundary pricing
// (internal/plan) both reuse one Probe across every check of a run, so
// the steady state allocates nothing. Begin sizes the buffers exactly
// on first use (or when a bigger check shows up), matching the
// allocation profile the pre-probe code paid for a single check.
//
// A Probe is single-goroutine state, like the Index it wraps.
type Probe struct {
	ix   *Index
	reqs []Request
	arcs []topo.Arc
	asn  Assignment
}

// NewProbe returns a probe over a fresh occupancy index for the ring.
func NewProbe(r topo.Ring) *Probe {
	return &Probe{ix: NewIndex(r)}
}

// Index exposes the underlying occupancy index (for attaching Stats).
func (p *Probe) Index() *Index { return p.ix }

// Begin clears the pooled buffers for a new check, growing them to
// exactly capHint when they are smaller.
func (p *Probe) Begin(capHint int) {
	if cap(p.reqs) < capHint {
		p.reqs = make([]Request, 0, capHint)
		p.arcs = make([]topo.Arc, 0, capHint)
		p.asn = make(Assignment, 0, capHint)
	}
	p.reqs = p.reqs[:0]
	p.arcs = p.arcs[:0]
	p.asn = p.asn[:0]
}

// Add appends one assigned circuit to the pending check.
func (p *Probe) Add(q Request, arc topo.Arc, wavelength int) {
	p.reqs = append(p.reqs, q)
	p.arcs = append(p.arcs, arc)
	p.asn = append(p.asn, wavelength)
}

// ConflictFree reports whether the added circuits can all be up
// simultaneously (resetting the index first, like Index.ConflictFree).
func (p *Probe) ConflictFree() bool {
	return p.ix.ConflictFree(p.reqs, p.arcs, p.asn)
}

// Validate checks the added circuits against the wavelength budget
// (0 = uncapped) with Index.Validate's exact error semantics.
func (p *Probe) Validate(wavelengths int) error {
	return p.ix.Validate(p.reqs, p.arcs, p.asn, wavelengths)
}
