package dnn

import (
	"math"
	"testing"
)

// TestParameterCountsMatchPaper pins the layer tables to the §5.1 totals:
// exact for VGG16 (the canonical 138,357,544) and within ~2% for the
// rest (the paper rounds).
func TestParameterCountsMatchPaper(t *testing.T) {
	cases := []struct {
		model Model
		want  int64
		tol   float64
	}{
		{VGG16(), 138357544, 0},
		{AlexNet(), int64(62.3e6), 0.02},
		{ResNet50(), int64(25e6), 0.03},
		{BEiTLarge(), int64(307e6), 0.02},
	}
	for _, c := range cases {
		got := c.model.Params()
		if c.tol == 0 {
			if got != c.want {
				t.Errorf("%s params = %d, want exactly %d", c.model.Name, got, c.want)
			}
			continue
		}
		if rel := math.Abs(float64(got-c.want)) / float64(c.want); rel > c.tol {
			t.Errorf("%s params = %d, want %d ±%.0f%%", c.model.Name, got, c.want, c.tol*100)
		}
	}
}

func TestGradBytesIsFloat32(t *testing.T) {
	m := ResNet50()
	if m.GradBytes() != 4*m.Params() {
		t.Fatalf("GradBytes = %d, want 4×params", m.GradBytes())
	}
}

func TestWorkloadsOrderAndNames(t *testing.T) {
	ws := Workloads()
	want := []string{"BEiT-L", "VGG16", "AlexNet", "ResNet50"}
	if len(ws) != len(want) {
		t.Fatalf("%d workloads", len(ws))
	}
	for i, m := range ws {
		if m.Name != want[i] {
			t.Errorf("workload %d = %s, want %s", i, m.Name, want[i])
		}
		if m.Params() <= 0 || m.ForwardFLOPs() <= 0 {
			t.Errorf("%s has non-positive params/flops", m.Name)
		}
	}
}

func TestBucketsPartitionGradient(t *testing.T) {
	for _, m := range Workloads() {
		for _, maxB := range []int64{0, 1 << 20, 25 << 20, 1 << 40} {
			buckets := m.Buckets(maxB)
			var sum float64
			for _, b := range buckets {
				if b <= 0 {
					t.Fatalf("%s: empty bucket", m.Name)
				}
				// A bucket may exceed maxB only if a single layer does.
				sum += b
			}
			if int64(sum) != m.GradBytes() {
				t.Errorf("%s maxB=%d: buckets sum to %.0f, want %d", m.Name, maxB, sum, m.GradBytes())
			}
		}
	}
}

func TestBucketsRespectMaxUnlessSingleLayerBigger(t *testing.T) {
	m := VGG16()
	maxB := int64(25 << 20)
	var largest int64
	for _, l := range m.Layers {
		if l.Params*4 > largest {
			largest = l.Params * 4
		}
	}
	for _, b := range m.Buckets(maxB) {
		if int64(b) > maxB && int64(b) > largest {
			t.Fatalf("bucket %0.f exceeds both max %d and largest layer %d", b, maxB, largest)
		}
	}
}

func TestBucketsBackPropOrder(t *testing.T) {
	// The first bucket must contain the last layer (BP emits gradients
	// last-layer-first).
	m := AlexNet()
	buckets := m.Buckets(1) // one layer per bucket (every layer > 1 byte)
	if len(buckets) != len(m.Layers) {
		t.Fatalf("%d buckets for %d layers", len(buckets), len(m.Layers))
	}
	last := m.Layers[len(m.Layers)-1]
	if int64(buckets[0]) != last.Params*4 {
		t.Fatalf("first bucket %.0f, want last layer %d", buckets[0], last.Params*4)
	}
}

func TestConvDimensions(t *testing.T) {
	// VGG16's first conv: 64 filters of 3×3×3 + bias = 1792 params;
	// 224×224 output → 2·27·64·224² FLOPs.
	m := VGG16()
	l := m.Layers[0]
	if l.Params != 1792 {
		t.Errorf("conv1_1 params = %d, want 1792", l.Params)
	}
	wantFLOPs := int64(2 * 27 * 64 * 224 * 224)
	if l.FLOPs != wantFLOPs {
		t.Errorf("conv1_1 FLOPs = %d, want %d", l.FLOPs, wantFLOPs)
	}
}

func TestTrainFLOPsIsTripleForward(t *testing.T) {
	m := AlexNet()
	if m.TrainFLOPs() != 3*m.ForwardFLOPs() {
		t.Fatal("TrainFLOPs != 3×ForwardFLOPs")
	}
}

func TestLayerKindStrings(t *testing.T) {
	for k, want := range map[LayerKind]string{Conv: "conv", FC: "fc", Norm: "norm", Embed: "embed", Attention: "attn"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestPaperParamsTable(t *testing.T) {
	for _, m := range Workloads() {
		if _, ok := PaperParams[m.Name]; !ok {
			t.Errorf("PaperParams missing %s", m.Name)
		}
	}
}
