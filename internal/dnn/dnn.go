// Package dnn provides the DNN workload models of §5.1 — BEiT-L, VGG16,
// AlexNet, and ResNet50 — as explicit layer tables with parameter counts
// and per-sample FLOPs. Distributed data-parallel training all-reduces
// one float32 gradient per parameter each iteration (Eq 5), so a model's
// gradient byte size is what the communication experiments consume; the
// FLOPs feed the compute-time model that substitutes for the paper's
// TensorFlow-profiler measurements.
package dnn

import "fmt"

// LayerKind classifies a parameterised layer.
type LayerKind int

const (
	Conv LayerKind = iota
	FC
	Norm
	Embed
	Attention
)

func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case FC:
		return "fc"
	case Norm:
		return "norm"
	case Embed:
		return "embed"
	case Attention:
		return "attn"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// Layer is one parameterised layer: its trainable parameter count and
// the forward FLOPs for a single sample (backward is modeled as 2×
// forward, the standard estimate).
type Layer struct {
	Name   string
	Kind   LayerKind
	Params int64
	FLOPs  int64 // forward FLOPs per sample
	// OutElems is the number of output activation elements per sample,
	// i.e. the float32 count crossing a pipeline-stage boundary placed
	// after this layer (used by the §6.2 hybrid-parallel simulation).
	OutElems int64
}

// Model is a named stack of layers.
type Model struct {
	Name   string
	Layers []Layer
}

// Params returns the total trainable parameter count.
func (m Model) Params() int64 {
	var p int64
	for _, l := range m.Layers {
		p += l.Params
	}
	return p
}

// GradBytes returns the byte size of one full float32 gradient, the
// per-node all-reduce payload d of Eq 6.
func (m Model) GradBytes() int64 { return m.Params() * 4 }

// ForwardFLOPs returns the forward FLOPs for one sample.
func (m Model) ForwardFLOPs() int64 {
	var f int64
	for _, l := range m.Layers {
		f += l.FLOPs
	}
	return f
}

// TrainFLOPs returns the training FLOPs for one sample (forward plus
// backward, modeled as 3× forward).
func (m Model) TrainFLOPs() int64 { return 3 * m.ForwardFLOPs() }

// Buckets fuses consecutive layers' gradients into buckets of at most
// maxBytes (similar to gradient-fusion buffers in DDP/Horovod) and
// returns the per-bucket byte sizes in back-propagation order (last
// layer first). maxBytes ≤ 0 yields a single fused bucket.
func (m Model) Buckets(maxBytes int64) []float64 {
	if maxBytes <= 0 {
		return []float64{float64(m.GradBytes())}
	}
	var out []float64
	var cur int64
	for i := len(m.Layers) - 1; i >= 0; i-- {
		b := m.Layers[i].Params * 4
		if cur > 0 && cur+b > maxBytes {
			out = append(out, float64(cur))
			cur = 0
		}
		cur += b
	}
	if cur > 0 {
		out = append(out, float64(cur))
	}
	return out
}

// conv appends a convolution layer, returning the output spatial size.
func conv(m *Model, name string, cin, cout, k, stride, pad, h, w int) (int, int) {
	oh := (h+2*pad-k)/stride + 1
	ow := (w+2*pad-k)/stride + 1
	params := int64(cout)*int64(cin)*int64(k)*int64(k) + int64(cout)
	flops := 2 * int64(k) * int64(k) * int64(cin) * int64(cout) * int64(oh) * int64(ow)
	m.Layers = append(m.Layers, Layer{Name: name, Kind: Conv, Params: params, FLOPs: flops, OutElems: int64(cout) * int64(oh) * int64(ow)})
	return oh, ow
}

// fc appends a fully connected layer applied once per sample.
func fc(m *Model, name string, in, out int) {
	m.Layers = append(m.Layers, Layer{
		Name: name, Kind: FC,
		Params:   int64(in)*int64(out) + int64(out),
		FLOPs:    2 * int64(in) * int64(out),
		OutElems: int64(out),
	})
}

// tokenFC appends a fully connected layer applied to every token of a
// transformer sequence (parameters are shared; FLOPs scale with tokens).
func tokenFC(m *Model, name string, in, out, tokens int) {
	m.Layers = append(m.Layers, Layer{
		Name: name, Kind: FC,
		Params:   int64(in)*int64(out) + int64(out),
		FLOPs:    2 * int64(in) * int64(out) * int64(tokens),
		OutElems: int64(out) * int64(tokens),
	})
}

// norm appends a normalisation layer (BN/LN: scale + shift per channel).
func norm(m *Model, name string, ch int, tokens int) {
	m.Layers = append(m.Layers, Layer{
		Name: name, Kind: Norm,
		Params:   2 * int64(ch),
		FLOPs:    4 * int64(ch) * int64(max(tokens, 1)),
		OutElems: int64(ch) * int64(max(tokens, 1)),
	})
}

// AlexNet returns the (ungrouped) AlexNet model on 224×224×3 inputs,
// ~63M parameters (the paper cites 62.3M).
func AlexNet() Model {
	m := Model{Name: "AlexNet"}
	h, w := 224, 224
	h, w = conv(&m, "conv1", 3, 96, 11, 4, 2, h, w)
	h, w = h/2, w/2 // pool1
	h, w = conv(&m, "conv2", 96, 256, 5, 1, 2, h, w)
	h, w = h/2, w/2 // pool2
	h, w = conv(&m, "conv3", 256, 384, 3, 1, 1, h, w)
	h, w = conv(&m, "conv4", 384, 384, 3, 1, 1, h, w)
	h, w = conv(&m, "conv5", 384, 256, 3, 1, 1, h, w)
	h, w = h/2, w/2 // pool5
	fc(&m, "fc6", 256*h*w, 4096)
	fc(&m, "fc7", 4096, 4096)
	fc(&m, "fc8", 4096, 1000)
	return m
}

// VGG16 returns the VGG-16 model on 224×224×3 inputs, 138.36M
// parameters (the paper cites 138M).
func VGG16() Model {
	m := Model{Name: "VGG16"}
	h, w := 224, 224
	cfg := []struct {
		blocks   int
		channels int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	cin := 3
	for bi, blk := range cfg {
		for i := 0; i < blk.blocks; i++ {
			h, w = conv(&m, fmt.Sprintf("conv%d_%d", bi+1, i+1), cin, blk.channels, 3, 1, 1, h, w)
			cin = blk.channels
		}
		h, w = h/2, w/2 // pool
	}
	fc(&m, "fc1", 512*h*w, 4096)
	fc(&m, "fc2", 4096, 4096)
	fc(&m, "fc3", 4096, 1000)
	return m
}

// ResNet50 returns the ResNet-50 model on 224×224×3 inputs, 25.56M
// parameters (the paper cites 25M).
func ResNet50() Model {
	m := Model{Name: "ResNet50"}
	h, w := 224, 224
	h, w = conv(&m, "conv1", 3, 64, 7, 2, 3, h, w)
	norm(&m, "bn1", 64, h*w)
	h, w = h/2, w/2 // maxpool
	cin := 64
	stages := []struct {
		blocks int
		mid    int
		out    int
		stride int
	}{{3, 64, 256, 1}, {4, 128, 512, 2}, {6, 256, 1024, 2}, {3, 512, 2048, 2}}
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			stride := 1
			if b == 0 {
				stride = st.stride
			}
			name := fmt.Sprintf("res%d_%d", si+2, b+1)
			if b == 0 {
				// Projection shortcut.
				conv(&m, name+"_proj", cin, st.out, 1, stride, 0, h, w)
				norm(&m, name+"_projbn", st.out, (h/stride)*(w/stride))
			}
			h2, w2 := conv(&m, name+"_a", cin, st.mid, 1, 1, 0, h, w)
			norm(&m, name+"_abn", st.mid, h2*w2)
			h2, w2 = conv(&m, name+"_b", st.mid, st.mid, 3, stride, 1, h2, w2)
			norm(&m, name+"_bbn", st.mid, h2*w2)
			h2, w2 = conv(&m, name+"_c", st.mid, st.out, 1, 1, 0, h2, w2)
			norm(&m, name+"_cbn", st.out, h2*w2)
			h, w = h2, w2
			cin = st.out
		}
	}
	fc(&m, "fc", 2048, 1000)
	return m
}

// BEiTLarge returns the BEiT-Large (ViT-L/16 backbone) model on
// 224×224×3 inputs, ~304M parameters (the paper cites 307M).
func BEiTLarge() Model {
	const (
		layers = 24
		dim    = 1024
		mlp    = 4096
		tokens = 197 // 14×14 patches + cls
	)
	m := Model{Name: "BEiT-L"}
	// Patch embedding: 16×16×3 → dim.
	m.Layers = append(m.Layers, Layer{
		Name: "patch_embed", Kind: Embed,
		Params:   int64(16*16*3)*dim + dim + int64(tokens)*dim, // proj + positional
		FLOPs:    2 * int64(16*16*3) * dim * int64(tokens),
		OutElems: int64(dim) * int64(tokens),
	})
	for l := 0; l < layers; l++ {
		name := fmt.Sprintf("block%d", l+1)
		norm(&m, name+"_ln1", dim, tokens)
		// Attention: QKV + output projection.
		m.Layers = append(m.Layers, Layer{
			Name: name + "_attn", Kind: Attention,
			Params:   4*int64(dim)*int64(dim) + 4*int64(dim),
			FLOPs:    8*int64(dim)*int64(dim)*int64(tokens) + 4*int64(dim)*int64(tokens)*int64(tokens),
			OutElems: int64(dim) * int64(tokens),
		})
		norm(&m, name+"_ln2", dim, tokens)
		tokenFC(&m, name+"_mlp1", dim, mlp, tokens)
		tokenFC(&m, name+"_mlp2", mlp, dim, tokens)
	}
	norm(&m, "ln_final", dim, tokens)
	fc(&m, "head", dim, 1000)
	return m
}

// PaperParams records the parameter counts the paper states for each
// workload (§5.1), used by the experiment harness when exact paper
// payloads are wanted rather than our layer-table totals.
var PaperParams = map[string]int64{
	"BEiT-L":   307e6,
	"VGG16":    138e6,
	"AlexNet":  62.3e6,
	"ResNet50": 25e6,
}

// Workloads returns the four paper workloads in the order the figures
// present them.
func Workloads() []Model {
	return []Model{BEiTLarge(), VGG16(), AlexNet(), ResNet50()}
}

// Stage is one pipeline stage: a contiguous run of layers.
type Stage struct {
	Layers []Layer
}

// Params returns the stage's trainable parameter count.
func (s Stage) Params() int64 {
	var p int64
	for _, l := range s.Layers {
		p += l.Params
	}
	return p
}

// GradBytes returns the stage's float32 gradient size — the all-reduce
// payload of the stage's data-parallel group in hybrid training (§6.2).
func (s Stage) GradBytes() int64 { return s.Params() * 4 }

// ForwardFLOPs returns the stage's per-sample forward FLOPs.
func (s Stage) ForwardFLOPs() int64 {
	var f int64
	for _, l := range s.Layers {
		f += l.FLOPs
	}
	return f
}

// BoundaryElems returns the activation element count leaving the stage
// (the last layer's output), which crosses to the next pipeline stage
// per sample.
func (s Stage) BoundaryElems() int64 {
	if len(s.Layers) == 0 {
		return 0
	}
	return s.Layers[len(s.Layers)-1].OutElems
}

// SplitStages partitions the model's layers into p contiguous pipeline
// stages with approximately balanced forward FLOPs (the compute-bound
// criterion pipeline planners use). It panics if p < 1; stages are never
// empty as long as p ≤ len(layers).
func SplitStages(m Model, p int) []Stage {
	if p < 1 {
		panic("dnn: SplitStages p < 1")
	}
	if p > len(m.Layers) {
		p = len(m.Layers)
	}
	target := m.ForwardFLOPs() / int64(p)
	stages := make([]Stage, 0, p)
	var cur Stage
	var acc int64
	for i, l := range m.Layers {
		cur.Layers = append(cur.Layers, l)
		acc += l.FLOPs
		remainingLayers := len(m.Layers) - i - 1
		remainingStages := p - len(stages) - 1
		// Close the stage when it reaches its FLOP share, or when the
		// remaining layers are only just enough to keep later stages
		// non-empty. The final stage absorbs whatever is left.
		if remainingStages > 0 && (acc >= target || remainingLayers == remainingStages) {
			stages = append(stages, cur)
			cur = Stage{}
			acc = 0
		}
	}
	if len(cur.Layers) > 0 {
		stages = append(stages, cur)
	}
	return stages
}
