// Quickstart: build a WRHT all-reduce schedule, inspect it, run it on
// real data, and time it under the paper's optical model — all through
// the public wrht API.
//
// This reproduces the paper's motivating example (§3.3 / Fig 2): 15
// nodes and 2 wavelengths, where binary-tree all-reduce needs 8 steps
// but WRHT needs 3.
package main

import (
	"fmt"
	"log"

	"wrht"
)

func main() {
	log.SetFlags(0)

	// 1. Build the schedule: 15 nodes, 2 wavelengths (Fig 2b).
	sched, err := wrht.Build(wrht.KindWRHT, 15, wrht.WithWavelengths(2))
	if err != nil {
		log.Fatal(err)
	}
	bt := wrht.BTSchedule(15)
	fmt.Printf("WRHT needs %d steps; binary tree needs %d (paper Fig 2: 3 vs 8)\n",
		sched.NumSteps(), bt.NumSteps())

	// 2. Inspect: every step is an explicit set of wavelength-assigned
	// circuits, and the schedule is verifiably conflict-free within the
	// 2-wavelength budget.
	if err := sched.Validate(2); err != nil {
		log.Fatal(err)
	}
	for i, st := range sched.Steps {
		fmt.Printf("step %d (%s): %d transfers, %d wavelengths\n",
			i+1, st.Phase, len(st.Transfers), st.MaxWavelength())
	}

	// 3. Run it for real: 15 goroutine workers all-reduce their vectors
	// and every one ends with the mean.
	inputs := make([]wrht.Vector, 15)
	for i := range inputs {
		inputs[i] = wrht.Vector{float32(i + 1), float32(i + 1), float32(i + 1), float32(i + 1)}
	}
	out, err := wrht.AllReduce(sched, inputs, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after all-reduce every worker holds the mean %.1f: worker0=%v\n",
		float32(15+1)/2, out[0])

	// 4. Time it under the Table-2 optical model for a ResNet50-sized
	// gradient (Eq 6).
	res, err := wrht.Simulate(wrht.Optical, sched, float64(wrht.ResNet50().GradBytes()),
		wrht.WithOpticalParams(opticalWith2Wavelengths()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optical communication time for the %.0f MB ResNet50 gradient: %.3f ms (θ=%d)\n",
		float64(wrht.ResNet50().GradBytes())/1e6, res.Time*1e3, res.Steps)
}

func opticalWith2Wavelengths() wrht.OpticalParams {
	p := wrht.DefaultOpticalParams()
	p.Wavelengths = 2
	return p
}
