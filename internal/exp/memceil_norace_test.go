//go:build !race

package exp

// Full-scale memory-ceiling configuration: the acceptance-criterion
// million-node ring. Under the race detector every allocation carries
// shadow memory, so memceil_race_test.go downscales N to keep `go test
// -race ./...` tractable.
const memCeilingNodes = 1 << 20
