package core

import (
	"fmt"
	"strings"

	"wrht/internal/topo"
)

// Stats summarises how a schedule uses the ring: per-step circuit
// counts, wavelength usage, and fiber-segment utilisation. It answers
// the practical adoption questions — "how busy are my waveguides?",
// "how many wavelengths does step k really light up?" — and quantifies
// the wavelength-reuse argument of §4.1.2 (SpatialReuse > 1 means the
// same wavelength carries several circuits at once on disjoint arcs).
type Stats struct {
	Steps        int
	Transfers    int
	MaxWavelen   int     // peak per-step wavelength count
	MeanCircuits float64 // average concurrent circuits per step
	// SpatialReuse is the mean number of same-direction circuits sharing
	// one wavelength within a step (1 = no reuse).
	SpatialReuse float64
	// SegmentUtilization is the mean fraction of (segment, direction,
	// wavelength) resources occupied per step, within the budget used.
	SegmentUtilization float64
	// BytesFraction is the total payload moved, in units of the per-node
	// vector size d (e.g. Ring ≈ 2·N·(N−1)/N ≈ 2N−2... per-transfer
	// fractions summed).
	BytesFraction float64
}

// ComputeStats analyses the schedule.
func ComputeStats(s *Schedule) Stats {
	st := Stats{Steps: s.NumSteps()}
	if st.Steps == 0 {
		return st
	}
	n := s.Ring.N
	var reuseNum, reuseDen float64
	var utilSum float64
	for _, step := range s.Steps {
		st.Transfers += len(step.Transfers)
		if w := step.MaxWavelength(); w > st.MaxWavelen {
			st.MaxWavelen = w
		}
		// Wavelength reuse: circuits per distinct (dir, wavelength).
		type key struct {
			dir topo.Direction
			wl  int
		}
		perKey := map[key]int{}
		segBusy := 0
		for _, t := range step.Transfers {
			perKey[key{t.Dir, t.Wavelength}]++
			segBusy += s.Ring.Dist(t.Src, t.Dst, t.Dir)
			st.BytesFraction += t.Chunk.Fraction()
		}
		for _, c := range perKey {
			reuseNum += float64(c)
			reuseDen++
		}
		if w := step.MaxWavelength(); w > 0 {
			utilSum += float64(segBusy) / float64(2*n*w) // 2 directions
		}
	}
	st.MeanCircuits = float64(st.Transfers) / float64(st.Steps)
	if reuseDen > 0 {
		st.SpatialReuse = reuseNum / reuseDen
	}
	st.SegmentUtilization = utilSum / float64(st.Steps)
	return st
}

// String renders the stats as a short report.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "steps=%d transfers=%d peak-λ=%d", st.Steps, st.Transfers, st.MaxWavelen)
	fmt.Fprintf(&b, " circuits/step=%.1f λ-reuse=%.2fx", st.MeanCircuits, st.SpatialReuse)
	fmt.Fprintf(&b, " segment-util=%.1f%% moved=%.1fd", st.SegmentUtilization*100, st.BytesFraction)
	return b.String()
}
