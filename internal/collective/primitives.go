package collective

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/tensor"
	"wrht/internal/topo"
)

// Standalone collective primitives. All-reduce is reduce + broadcast
// (§3.3) or reduce-scatter + all-gather; a downstream user composing
// training systems needs the pieces individually (e.g. broadcast for
// initial weight distribution, reduce-scatter for ZeRO-style sharded
// optimizers), so they are exported with the same schedule/step
// vocabulary as the full all-reduce algorithms.

// rotate relabels every node id by +k (mod n), exploiting the ring's
// rotational symmetry to re-root hierarchical schedules.
func rotate(s *core.Schedule, k int) *core.Schedule {
	n := s.Ring.N
	out := &core.Schedule{Algorithm: s.Algorithm, Ring: s.Ring}
	for _, st := range s.Steps {
		ns := core.Step{Phase: st.Phase, Transfers: make([]core.Transfer, len(st.Transfers))}
		for i, t := range st.Transfers {
			t.Src = ((t.Src+k)%n + n) % n
			t.Dst = ((t.Dst+k)%n + n) % n
			ns.Transfers[i] = t
		}
		out.Steps = append(out.Steps, ns)
	}
	return out
}

// BuildReduce constructs a WRHT-style reduction of every node's vector
// to the given root in ⌈log_m N⌉ grouped-gather steps (the reduce stage
// of §4.1 without the final all-to-all). Non-root nodes' buffers hold
// partial sums afterwards (like MPI_Reduce, their contents are
// unspecified).
func BuildReduce(n, wavelengths, root int) (*core.Schedule, error) {
	if root < 0 || root >= n {
		return nil, fmt.Errorf("collective: reduce root %d out of range [0,%d)", root, n)
	}
	full, err := core.BuildWRHT(core.Config{N: n, Wavelengths: wavelengths, DisableAllToAll: true})
	if err != nil {
		return nil, err
	}
	reduceSteps := full.NumSteps() / 2
	s := &core.Schedule{Algorithm: "reduce", Ring: full.Ring, Steps: full.Steps[:reduceSteps]}
	// The gather-only WRHT converges on a deterministic position; rotate
	// so that position becomes the requested root.
	if reduceSteps > 0 {
		natural := s.Steps[reduceSteps-1].Transfers[0].Dst
		s = rotate(s, root-natural)
	}
	s.Algorithm = "reduce"
	return s, nil
}

// BuildBroadcast constructs a WRHT-style broadcast from root to every
// node in ⌈log_m N⌉ steps (the broadcast stage of §4.1).
func BuildBroadcast(n, wavelengths, root int) (*core.Schedule, error) {
	if root < 0 || root >= n {
		return nil, fmt.Errorf("collective: broadcast root %d out of range [0,%d)", root, n)
	}
	full, err := core.BuildWRHT(core.Config{N: n, Wavelengths: wavelengths, DisableAllToAll: true})
	if err != nil {
		return nil, err
	}
	reduceSteps := full.NumSteps() / 2
	s := &core.Schedule{Algorithm: "broadcast", Ring: full.Ring, Steps: full.Steps[reduceSteps:]}
	if reduceSteps > 0 {
		natural := s.Steps[0].Transfers[0].Src
		s = rotate(s, root-natural)
	}
	s.Algorithm = "broadcast"
	return s, nil
}

// BuildReduceScatter constructs the ring reduce-scatter: after n−1
// steps, node i holds the fully reduced chunk OwnedChunk(n, i) of the
// n-way division.
func BuildReduceScatter(n int) *core.Schedule {
	full := BuildRing(n)
	half := len(full.Steps) / 2
	return &core.Schedule{Algorithm: "reduce-scatter", Ring: full.Ring, Steps: full.Steps[:half]}
}

// OwnedChunk returns the chunk node i owns after BuildReduceScatter.
func OwnedChunk(n, i int) tensor.Chunk {
	if n <= 1 {
		return tensor.Whole
	}
	return tensor.Chunk{Index: (i + 1) % n, Of: n}
}

// BuildAllGather constructs the ring all-gather: node i starts with
// valid data in chunk {i, n} of its vector and after n−1 steps every
// node holds every chunk.
func BuildAllGather(n int) *core.Schedule {
	s := &core.Schedule{Algorithm: "all-gather", Ring: topo.NewRing(n)}
	if n <= 1 {
		return s
	}
	for t := 0; t < n-1; t++ {
		st := core.Step{Phase: core.PhaseBroadcast}
		for i := 0; i < n; i++ {
			c := ((i-t)%n + n) % n
			st.Transfers = append(st.Transfers, core.Transfer{
				Src: i, Dst: (i + 1) % n,
				Chunk: tensor.Chunk{Index: c, Of: n},
				Op:    tensor.OpCopy,
				Dir:   topo.CW, Wavelength: 0,
			})
		}
		s.Steps = append(s.Steps, st)
	}
	return s
}

// BuildDBTree constructs the double-binary-tree all-reduce of [25]
// (the NCCL algorithm the paper's related work cites): two binary trees
// whose node sets are shifted by one position each carry half of the
// vector, doubling link utilisation relative to a single tree; the step
// count stays 2⌈log₂N⌉ but every step moves d/2 on two wavelengths.
func BuildDBTree(n int) *core.Schedule {
	s := &core.Schedule{Algorithm: "dbtree", Ring: topo.NewRing(n)}
	if n <= 1 {
		return s
	}
	t1 := BuildBT(n)
	t2 := rotate(BuildBT(n), 1)
	for si := range t1.Steps {
		st := core.Step{Phase: t1.Steps[si].Phase}
		for _, tr := range t1.Steps[si].Transfers {
			tr.Chunk = tensor.Chunk{Index: 0, Of: 2}
			tr.Wavelength = 0
			st.Transfers = append(st.Transfers, tr)
		}
		for _, tr := range t2.Steps[si].Transfers {
			tr.Chunk = tensor.Chunk{Index: 1, Of: 2}
			tr.Wavelength = 1
			st.Transfers = append(st.Transfers, tr)
		}
		s.Steps = append(s.Steps, st)
	}
	return s
}

// DBTreeProfile returns the analytic profile of the double binary tree:
// 2⌈log₂N⌉ steps of d/2 bytes on two wavelengths.
func DBTreeProfile(n int) core.Profile {
	p := core.Profile{Algorithm: "dbtree"}
	if n <= 1 {
		return p
	}
	p.Groups = []core.ProfileGroup{{
		Steps:       core.StepsBT(n),
		FracOfD:     0.5,
		Wavelengths: 2,
	}}
	return p
}
