package fabric

import (
	"fmt"
	"math"

	"wrht/internal/core"
	"wrht/internal/rwa"
)

// Options configures one engine run.
type Options struct {
	// ValidateWavelengths checks explicit schedules for structural
	// sanity and wavelength conflict-freedom against the fabric's
	// circuit budget before timing them.
	ValidateWavelengths bool
	// UseFiberMultiplicity widens the circuit budget by the fabric's
	// fibers-per-direction multiplicity (TeraRack's second fiber ring
	// per direction, §3.2) when validating. The fabric reports an error
	// if its multiplicity is configured below one.
	UseFiberMultiplicity bool
	// Overlap pipelines each step's circuit setup under the previous
	// step's transmission when the two steps' (direction, wavelength)
	// circuits are disjoint per the internal/rwa conflict model. Only
	// explicit schedules carry circuits, so profile runs reject it.
	Overlap bool
	// Observer, when non-nil, receives a StepEvent per executed schedule
	// step and a GroupEvent per profile group (see observer.go). Nil is
	// the default fast path: one pointer comparison, zero allocations.
	Observer Observer
	// RWAStats, when non-nil, is attached to the occupancy index behind
	// the overlap probes so first-fit/saturation counters accumulate
	// there.
	RWAStats *rwa.Stats
	// BoundaryDisjoint, when non-nil, supplies the overlap mode's
	// per-boundary disjointness decisions up front: entry k-1 answers
	// whether steps k-1 and k may hold their circuits simultaneously,
	// replacing the per-boundary rwa probe. internal/ir computes it
	// (Program.Boundaries) so schedules rewritten by IR passes are
	// consumed without re-probing. The length must be NumSteps()-1 (0
	// for empty schedules); it is ignored unless Overlap is set.
	BoundaryDisjoint []bool
}

// Engine executes collective schedules and analytic profiles on a
// Fabric. The zero Options value reproduces the pre-engine simulators
// bit for bit (asserted by the parity tests in internal/optical and
// internal/electrical).
type Engine struct {
	Fabric Fabric
	Opts   Options
}

// StepReport is the per-step outcome of an explicit schedule run.
type StepReport struct {
	Phase core.Phase
	Cost  StepCost
	// Overlapped is how much of Cost.Setup was hidden under the
	// previous step's transmission (zero unless Options.Overlap).
	Overlapped float64
}

// Duration returns the step's wall-clock contribution after overlap.
func (r StepReport) Duration() float64 { return r.Cost.Total - r.Overlapped }

// Result is the outcome of executing one collective on a fabric.
type Result struct {
	Fabric    string
	Algorithm string
	Steps     int
	// Time is the total communication time in seconds.
	Time float64
	// TransferTime accumulates the serialization + O-E-O components,
	// OverheadTime the circuit-setup components and RouterTime the
	// router pipeline latencies.
	TransferTime float64
	OverheadTime float64
	RouterTime   float64
	// OverlapSaved is the total setup time hidden by overlap mode; it
	// is bounded by (θ−1)·a and already subtracted from Time.
	OverlapSaved float64
	// PerStep is the per-step breakdown (populated by RunSchedule only;
	// profile runs stay O(groups)).
	PerStep []StepReport
}

// RunSchedule executes an explicit schedule carrying a dBytes-sized
// per-node vector and returns the simulated timing.
func (e Engine) RunSchedule(s *core.Schedule, dBytes float64) (Result, error) {
	f := e.Fabric
	if err := f.CheckSchedule(s); err != nil {
		return Result{}, err
	}
	budget, err := f.CircuitBudget(e.Opts.UseFiberMultiplicity)
	if err != nil {
		return Result{}, err
	}
	if e.Opts.ValidateWavelengths {
		if err := s.Validate(budget); err != nil {
			return Result{}, err
		}
	}
	elems, err := core.ElemsOf(dBytes)
	if err != nil {
		return Result{}, fmt.Errorf("fabric: %w", err)
	}
	bd := e.Opts.BoundaryDisjoint
	if e.Opts.Overlap && bd != nil && len(bd) != max(s.NumSteps()-1, 0) {
		return Result{}, fmt.Errorf("fabric: BoundaryDisjoint carries %d boundaries for a %d-step schedule", len(bd), s.NumSteps())
	}
	res := Result{Fabric: f.Name(), Algorithm: s.Algorithm, Steps: s.NumSteps()}
	if err := e.timeSteps(s.Source(), elems, nil, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// RunStream is RunSchedule over a step stream: the schedule is never
// materialized, so peak memory is O(max step) + O(occupancy index)
// regardless of the step count, and N in the millions becomes
// reachable. The timing accumulation is the exact statement sequence of
// RunSchedule, so streamed and materialized results are bit-identical
// on the same schedule (pinned by the parity tests).
//
// Differences forced by single-pass consumption: validation
// (Options.ValidateWavelengths) runs inline per step through the delta
// occupancy index instead of up front, so on an invalid schedule any
// Observer has already seen the steps before the offending one; the
// StepEvent.Step pointer is only valid during the callback (it aliases
// the producer's buffer); and a too-short Options.BoundaryDisjoint is
// only detected when the stream outruns it. PerStep is still populated
// per step — WRHT-family streams have O(log N) steps; callers running
// O(N)-step baseline streams who need O(1) memory should consume an
// Observer instead and discard PerStep.
func (e Engine) RunStream(src core.StepSource, dBytes float64) (Result, error) {
	f := e.Fabric
	// Fabric admission checks only read the header (algorithm + ring).
	if err := f.CheckSchedule(&core.Schedule{Algorithm: src.Algorithm(), Ring: src.Ring()}); err != nil {
		return Result{}, err
	}
	budget, err := f.CircuitBudget(e.Opts.UseFiberMultiplicity)
	if err != nil {
		return Result{}, err
	}
	elems, err := core.ElemsOf(dBytes)
	if err != nil {
		return Result{}, fmt.Errorf("fabric: %w", err)
	}
	var v *core.StepValidator
	if e.Opts.ValidateWavelengths {
		v = core.NewStepValidator(src.Ring(), rwa.NewIndex(src.Ring()), budget)
	}
	res := Result{Fabric: f.Name(), Algorithm: src.Algorithm()}
	if err := e.timeSteps(src, elems, v, &res); err != nil {
		return Result{}, err
	}
	if bd := e.Opts.BoundaryDisjoint; e.Opts.Overlap && bd != nil && len(bd) != max(res.Steps-1, 0) {
		return Result{}, fmt.Errorf("fabric: BoundaryDisjoint carries %d boundaries for a %d-step schedule", len(bd), res.Steps)
	}
	return res, nil
}

// timeSteps drains src through the per-step cost/overlap/observer
// accounting shared by RunSchedule and RunStream, accumulating into
// res (Steps included). v, when non-nil, validates each step before it
// is timed. The previous step is retained in a reused copy buffer only
// when the overlap probe needs it (Overlap set without
// BoundaryDisjoint), keeping the streamed path's live set to at most
// two steps.
func (e Engine) timeSteps(src core.StepSource, elems int, v *core.StepValidator, res *Result) error {
	f := e.Fabric
	bd := e.Opts.BoundaryDisjoint
	ring := src.Ring()
	var memo map[string]StepCost
	var probe *rwa.Probe
	var prevTransmit float64
	var prev core.Step
	keepPrev := e.Opts.Overlap && bd == nil
	for k := 0; ; k++ {
		stp, ok := src.Next()
		if !ok {
			return nil
		}
		st := *stp
		if v != nil {
			if err := v.Step(stp); err != nil {
				return err
			}
		}
		var c StepCost
		if key, ok := f.StepKey(st, elems); ok {
			if memo == nil {
				memo = make(map[string]StepCost)
			}
			c, ok = memo[key]
			if !ok {
				c = f.StepCost(st, elems)
				memo[key] = c
			}
		} else {
			c = f.StepCost(st, elems)
		}
		var hidden float64
		if e.Opts.Overlap && k > 0 && c.Setup > 0 && prevTransmit > 0 {
			disjoint := false
			if bd != nil {
				if k-1 >= len(bd) {
					return fmt.Errorf("fabric: BoundaryDisjoint carries %d boundaries but the stream has more steps", len(bd))
				}
				disjoint = bd[k-1]
			} else {
				if probe == nil {
					probe = rwa.NewProbe(ring)
				}
				disjoint = StepsDisjoint(probe, ring, prev, st, e.Opts.RWAStats)
			}
			if disjoint {
				hidden = math.Min(c.Setup, prevTransmit)
			}
		}
		if e.Opts.Observer != nil {
			e.Opts.Observer.StepExecuted(StepEvent{
				Index: k, Start: res.Time, Step: stp,
				Cost: c, Hidden: hidden, Elems: elems,
			})
		}
		res.Time += c.Total - hidden
		res.TransferTime += c.Serialization + c.OEO
		res.OverheadTime += c.Setup
		res.RouterTime += c.RouterDelay
		res.OverlapSaved += hidden
		res.PerStep = append(res.PerStep, StepReport{Phase: st.Phase, Cost: c, Overlapped: hidden})
		prevTransmit = c.Transmission()
		if keepPrev {
			prev.Phase = st.Phase
			prev.Transfers = append(prev.Transfers[:0], st.Transfers...)
		}
		if k >= res.Steps {
			res.Steps = k + 1
		}
	}
}

// RunProfile times an analytic step profile in O(groups) work,
// equivalent to RunSchedule on the schedule the profile describes.
// Payload fractions apply to dBytes directly (the rounding of uneven
// chunk splits is below packet granularity for all paper workloads).
// Profiles carry no circuits, so overlap mode is rejected.
func (e Engine) RunProfile(pr core.Profile, dBytes float64) (Result, error) {
	if e.Opts.Overlap {
		return Result{}, fmt.Errorf("fabric: overlap mode needs an explicit schedule, not a profile (%s)", pr.Algorithm)
	}
	if _, err := e.Fabric.CircuitBudget(e.Opts.UseFiberMultiplicity); err != nil {
		return Result{}, err
	}
	res := Result{Fabric: e.Fabric.Name(), Algorithm: pr.Algorithm, Steps: pr.NumSteps()}
	for gi, g := range pr.Groups {
		c := e.Fabric.GroupCost(g.FracOfD * dBytes)
		steps := float64(g.Steps)
		if e.Opts.Observer != nil {
			e.Opts.Observer.GroupExecuted(GroupEvent{
				Index: gi, Start: res.Time, Steps: g.Steps,
				Bytes: g.FracOfD * dBytes, Cost: c,
			})
		}
		res.Time += steps * c.Total
		res.TransferTime += steps * (c.Serialization + c.OEO)
		res.OverheadTime += steps * c.Setup
		res.RouterTime += steps * c.RouterDelay
	}
	return res, nil
}

// RunBuckets times a collective invoked once per gradient bucket
// (per-layer or fused-bucket granularity): the profile is evaluated for
// every bucket size and the times add up, because synchronous
// data-parallel training serializes the bucket all-reduces on the same
// fabric. Every additive Result field is carried through the sum,
// OverlapSaved included; PerStep is intentionally left nil — a bucket
// run covers NumSteps()×len(bucketBytes) steps and the per-step
// breakdown would not identify which bucket a step belongs to, so
// callers needing it run the buckets individually.
func (e Engine) RunBuckets(pr core.Profile, bucketBytes []float64) (Result, error) {
	total := Result{Fabric: e.Fabric.Name(), Algorithm: pr.Algorithm}
	for _, b := range bucketBytes {
		r, err := e.RunProfile(pr, b)
		if err != nil {
			return Result{}, err
		}
		total.Steps += r.Steps
		total.Time += r.Time
		total.TransferTime += r.TransferTime
		total.OverheadTime += r.OverheadTime
		total.RouterTime += r.RouterTime
		total.OverlapSaved += r.OverlapSaved
	}
	return total, nil
}
