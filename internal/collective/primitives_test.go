package collective_test

import (
	"math/rand"
	"testing"

	"wrht/internal/cluster"
	"wrht/internal/collective"
	"wrht/internal/tensor"
)

func randInputs(rng *rand.Rand, n, l int) []tensor.Vector {
	in := make([]tensor.Vector, n)
	for i := range in {
		in[i] = tensor.New(l)
		for j := range in[i] {
			in[i][j] = float32(rng.Intn(101) - 50)
		}
	}
	return in
}

func TestBroadcastDeliversRootVector(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 5, 15, 16, 64, 100} {
		for _, root := range []int{0, 1, n / 2, n - 1} {
			s, err := collective.BuildBroadcast(n, 4, root)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(4); err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			in := randInputs(rng, n, 17)
			want := in[root].Clone()
			cl, err := cluster.New(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.Execute(s); err != nil {
				t.Fatal(err)
			}
			for node := 0; node < n; node++ {
				if !tensor.Equal(cl.Vector(node), want, 0) {
					t.Fatalf("n=%d root=%d: node %d did not receive the root vector", n, root, node)
				}
			}
		}
	}
}

func TestReduceSumsToRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{2, 5, 16, 100} {
		for _, root := range []int{0, n - 1, n / 3} {
			s, err := collective.BuildReduce(n, 4, root)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(4); err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			in := randInputs(rng, n, 9)
			want := cluster.ExpectedSum(in)
			cl, err := cluster.New(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.Execute(s); err != nil {
				t.Fatal(err)
			}
			v := cl.Vector(root)
			for i := range v {
				if float64(v[i]) != want[i] {
					t.Fatalf("n=%d root=%d: root[%d] = %g, want %g", n, root, i, v[i], want[i])
				}
			}
		}
	}
}

func TestReducePlusBroadcastEqualsAllReduce(t *testing.T) {
	const n, root = 20, 7
	rng := rand.New(rand.NewSource(5))
	in := randInputs(rng, n, 24)
	want := cluster.ExpectedSum(in)
	red, err := collective.BuildReduce(n, 4, root)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := collective.BuildBroadcast(n, 4, root)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Execute(red); err != nil {
		t.Fatal(err)
	}
	if err := cl.Execute(bc); err != nil {
		t.Fatal(err)
	}
	if err := cl.VerifyAllReduced(want, 0); err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{2, 4, 7, 16} {
		s := collective.BuildReduceScatter(n)
		in := randInputs(rng, n, 4*n)
		want := cluster.ExpectedSum(in)
		cl, err := cluster.New(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Execute(s); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			c := collective.OwnedChunk(n, i)
			lo, hi := c.Range(4 * n)
			v := cl.Vector(i)
			for e := lo; e < hi; e++ {
				if float64(v[e]) != want[e] {
					t.Fatalf("n=%d: node %d chunk element %d = %g, want %g", n, i, e, v[e], want[e])
				}
			}
		}
	}
}

func TestAllGatherDistributesChunks(t *testing.T) {
	for _, n := range []int{2, 5, 16} {
		s := collective.BuildAllGather(n)
		l := 3 * n
		in := make([]tensor.Vector, n)
		for i := range in {
			in[i] = tensor.New(l)
			c := tensor.Chunk{Index: i, Of: n}
			seg := c.Slice(in[i])
			for j := range seg {
				seg[j] = float32(i + 1)
			}
		}
		cl, err := cluster.New(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Execute(s); err != nil {
			t.Fatal(err)
		}
		for node := 0; node < n; node++ {
			v := cl.Vector(node)
			for owner := 0; owner < n; owner++ {
				c := tensor.Chunk{Index: owner, Of: n}
				for _, x := range c.Slice(v) {
					if x != float32(owner+1) {
						t.Fatalf("n=%d node %d: chunk %d has %g, want %d", n, node, owner, x, owner+1)
					}
				}
			}
		}
	}
}

func TestDBTreeAllReduceCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{2, 3, 4, 8, 15, 16, 33, 64} {
		s := collective.BuildDBTree(n)
		if err := s.Validate(2); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		in := randInputs(rng, n, 40)
		want := cluster.ExpectedSum(in)
		cl, err := cluster.New(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Execute(s); err != nil {
			t.Fatal(err)
		}
		if err := cl.VerifyAllReduced(want, 0); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestDBTreeHalvesBTTime(t *testing.T) {
	// Same step count as BT but half the payload per step.
	n := 64
	db := collective.DBTreeProfile(n)
	bt := collective.BTProfile(n)
	if db.NumSteps() != bt.NumSteps() {
		t.Fatalf("dbtree steps %d != bt steps %d", db.NumSteps(), bt.NumSteps())
	}
	if db.Groups[0].FracOfD != 0.5 || bt.Groups[0].FracOfD != 1 {
		t.Fatal("payload fractions wrong")
	}
	sched := collective.BuildDBTree(n)
	if sched.WavelengthsNeeded() != 2 {
		t.Fatalf("dbtree wavelengths = %d, want 2", sched.WavelengthsNeeded())
	}
}

func TestBadRoots(t *testing.T) {
	if _, err := collective.BuildReduce(8, 4, 8); err == nil {
		t.Fatal("root out of range accepted")
	}
	if _, err := collective.BuildBroadcast(8, 4, -1); err == nil {
		t.Fatal("negative root accepted")
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
