package core

import (
	"strings"
	"testing"
)

func TestComputeStatsWRHT(t *testing.T) {
	s, err := BuildWRHT(Config{N: 15, Wavelengths: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(s)
	if st.Steps != 3 || st.Transfers != 12+6+12 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxWavelen != 2 {
		t.Fatalf("peak wavelengths = %d, want 2", st.MaxWavelen)
	}
	// Fig 2: groups reuse both wavelengths across three groups and two
	// directions, so spatial reuse must exceed 1.
	if st.SpatialReuse <= 1 {
		t.Fatalf("WRHT should reuse wavelengths spatially: %.2f", st.SpatialReuse)
	}
	// Every gather/broadcast transfer carries the full vector; the
	// all-to-all carries 6 more: total 30 d.
	if st.BytesFraction != 30 {
		t.Fatalf("moved %.1f d, want 30", st.BytesFraction)
	}
	if !strings.Contains(st.String(), "steps=3") {
		t.Fatalf("render: %q", st.String())
	}
}

func TestComputeStatsRingMovesTwoD(t *testing.T) {
	// Ring all-reduce moves 2(N−1)/N·d per node pair... in aggregate
	// 2(N−1) chunks of d/N per node: total fraction = 2(N−1)·N/N = 2(N−1).
	n := 8
	s := &Schedule{Algorithm: "ring", Ring: ringOf(n)}
	// An empty schedule must yield zeroed stats without dividing by zero.
	st := ComputeStats(s)
	if st.Steps != 0 || st.Transfers != 0 {
		t.Fatalf("empty schedule stats: %+v", st)
	}
}

func TestStatsSegmentUtilizationBounded(t *testing.T) {
	for _, cfg := range []Config{{N: 100, Wavelengths: 8}, {N: 129, Wavelengths: 64}} {
		s, err := BuildWRHT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := ComputeStats(s)
		if st.SegmentUtilization <= 0 || st.SegmentUtilization > 1 {
			t.Fatalf("utilization %.3f out of (0,1]", st.SegmentUtilization)
		}
	}
}
