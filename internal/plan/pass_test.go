package plan

import (
	"testing"

	"wrht/internal/core"
	"wrht/internal/fabric"
	"wrht/internal/ir"
)

// TestPassReplansPhase lowers a planned fallback-regime schedule, runs
// the pass, and checks the rewritten program validates, still carries a
// contiguous all-to-all phase, and times no worse than the input.
func TestPassReplansPhase(t *testing.T) {
	const n, w = 256, 8
	const dBytes = 1e4 // small payload: overlap-aware re-planning has room to differ
	fab := opticalFab(t, w, 0)
	s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w, PlanAllToAll: true})
	if err != nil {
		t.Fatal(err)
	}
	before, err := fabric.Engine{Fabric: fab, Opts: fabric.Options{Overlap: true}}.RunSchedule(s, dBytes)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(s, w)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Planner: &Planner{Fabric: fab, Budget: w, Overlap: true}, DBytes: dBytes}
	if err := (ir.Pipeline{Passes: []ir.Pass{pass}}).Run(p); err != nil {
		t.Fatal(err)
	}
	after, err := fabric.Engine{
		Fabric: fab,
		Opts:   fabric.Options{Overlap: true, BoundaryDisjoint: p.Boundaries(), ValidateWavelengths: true},
	}.RunSchedule(p.Raise(), dBytes)
	if err != nil {
		t.Fatal(err)
	}
	if after.Time > before.Time {
		t.Errorf("pass made the schedule slower: %.12g s -> %.12g s", before.Time, after.Time)
	}
	span := 0
	for _, st := range p.Steps {
		if st.Phase == core.PhaseAllToAll {
			span++
		}
	}
	if span == 0 {
		t.Error("rewritten program lost its all-to-all phase")
	}
}

// TestPassIdempotent re-applies the pass: the second application must
// report no change (the span already is the argmin schedule).
func TestPassIdempotent(t *testing.T) {
	const n, w = 64, 4
	fab := opticalFab(t, w, 0)
	s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w, PlanAllToAll: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(s, w)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Planner: &Planner{Fabric: fab, Budget: w, Overlap: true}, DBytes: 64e6}
	if _, err := pass.Apply(p); err != nil {
		t.Fatal(err)
	}
	changed, err := pass.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("second application still changed the program")
	}
}

// TestPassNoPhase leaves phase-less schedules untouched.
func TestPassNoPhase(t *testing.T) {
	const n, w = 16, 2
	fab := opticalFab(t, w, 0)
	s, err := core.BuildWRHT(core.Config{N: n, Wavelengths: w, DisableAllToAll: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(s, w)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Planner: &Planner{Fabric: fab, Budget: w}, DBytes: 1e6}
	changed, err := pass.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("pass changed a schedule with no all-to-all phase")
	}
}

// TestPassBudgetMismatch rejects a planner whose budget disagrees with
// the program's.
func TestPassBudgetMismatch(t *testing.T) {
	fab := opticalFab(t, 8, 0)
	s, err := core.BuildWRHT(core.Config{N: 16, Wavelengths: 8})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Planner: &Planner{Fabric: fab, Budget: 4}, DBytes: 1e6}
	if _, err := pass.Apply(p); err == nil {
		t.Error("budget mismatch did not error")
	}
}
