package core

import (
	"fmt"

	"wrht/internal/rwa"
	"wrht/internal/topo"
)

// WRHT on a torus (§6.1): the reduce stage of WRHT runs inside every row
// ring in parallel (all rows are structurally identical, so their
// representatives land in one column), the row representatives then run
// a full WRHT all-reduce on that column ring, and the row broadcast
// stage replays the row gathers in reverse. Row steps across different
// rows merge into single schedule steps because each row is its own
// waveguide — wavelengths are reused across rows exactly as they are
// across subgroups on the ring.

// rowRepPosition replays the grouping recursion on a c-node ring to find
// the position the row reduce converges to.
func rowRepPosition(c, m int) int {
	participants := make([]int, c)
	for i := range participants {
		participants[i] = i
	}
	for len(participants) > 1 {
		groups := partition(participants, m)
		next := make([]int, len(groups))
		for i, g := range groups {
			next[i] = g.rep()
		}
		participants = next
	}
	return participants[0]
}

// remapStep rewrites a step's node ids through the given mapping,
// keeping chunks, ops, directions and wavelengths.
func remapStep(st Step, mapID func(int) int) Step {
	out := Step{Phase: st.Phase, Transfers: make([]Transfer, len(st.Transfers))}
	for i, t := range st.Transfers {
		t.Src = mapID(t.Src)
		t.Dst = mapID(t.Dst)
		out.Transfers[i] = t
	}
	return out
}

// BuildWRHTTorus constructs the WRHT all-reduce on an R×C torus with w
// wavelengths per waveguide and first-step group size m (0 = the
// Lemma-1 optimum 2w+1, clamped to the row length). Transfers carry
// global node ids (row·C + col); ValidateTorus checks per-waveguide
// wavelength feasibility.
func BuildWRHTTorus(t topo.Torus, w, m int) (*Schedule, error) {
	if t.Rows < 1 || t.Cols < 1 {
		return nil, fmt.Errorf("core: torus %dx%d invalid", t.Rows, t.Cols)
	}
	rowCfg := Config{N: t.Cols, Wavelengths: w, GroupSize: m, DisableAllToAll: true}
	if t.Cols == 1 {
		rowCfg.GroupSize = 0
	}
	s := &Schedule{Algorithm: "wrht-torus", Ring: topo.NewRing(t.N())}

	// Row reduce/broadcast template on a C-node ring (ids = columns).
	var rowSteps []Step
	if t.Cols > 1 {
		rowSched, err := BuildWRHT(rowCfg)
		if err != nil {
			return nil, fmt.Errorf("core: torus row stage: %w", err)
		}
		rowSteps = rowSched.Steps // L gathers then L broadcasts
	}
	gathers := len(rowSteps) / 2

	// Merge each row-template step across all rows.
	mergeRows := func(tmpl Step) Step {
		out := Step{Phase: tmpl.Phase}
		for r := 0; r < t.Rows; r++ {
			mapped := remapStep(tmpl, func(col int) int { return t.Index(r, col) })
			out.Transfers = append(out.Transfers, mapped.Transfers...)
		}
		return out
	}
	for i := 0; i < gathers; i++ {
		s.Steps = append(s.Steps, mergeRows(rowSteps[i]))
	}

	// Column stage: full WRHT all-reduce among the row representatives,
	// which all sit in the representative column.
	if t.Rows > 1 {
		repCol := 0
		if t.Cols > 1 {
			repCol = rowRepPosition(t.Cols, rowCfg.EffectiveGroupSize())
		}
		colCfg := Config{N: t.Rows, Wavelengths: w, GroupSize: m}
		if colCfg.GroupSize > t.Rows {
			colCfg.GroupSize = 0
		}
		colSched, err := BuildWRHT(colCfg)
		if err != nil {
			return nil, fmt.Errorf("core: torus column stage: %w", err)
		}
		for _, st := range colSched.Steps {
			s.Steps = append(s.Steps, remapStep(st, func(row int) int { return t.Index(row, repCol) }))
		}
	}

	// Row broadcast stage (reverse of the gathers).
	for i := gathers; i < len(rowSteps); i++ {
		s.Steps = append(s.Steps, mergeRows(rowSteps[i]))
	}
	return s, nil
}

// ValidateTorus checks a torus schedule: every transfer must stay within
// one row or one column ring, and per (ring, direction) the wavelength
// assignment must be conflict-free and within the budget (0 disables the
// budget check). Wavelength reuse across distinct rows/columns is free —
// they are separate waveguides.
func ValidateTorus(s *Schedule, t topo.Torus, wavelengths int) error {
	type domain struct {
		row bool
		idx int
	}
	// Row and column rings each get one reusable occupancy index; every
	// per-domain check below is near-linear in its transfer count.
	rowRing, colRing := topo.NewRing(t.Cols), topo.NewRing(t.Rows)
	rowIx, colIx := rwa.NewIndex(rowRing), rwa.NewIndex(colRing)
	for si, st := range s.Steps {
		byDomain := map[domain][]int{}
		for ti, tr := range st.Transfers {
			sr, sc := t.Coord(tr.Src)
			dr, dc := t.Coord(tr.Dst)
			switch {
			case sr == dr:
				byDomain[domain{row: true, idx: sr}] = append(byDomain[domain{row: true, idx: sr}], ti)
			case sc == dc:
				byDomain[domain{row: false, idx: sc}] = append(byDomain[domain{row: false, idx: sc}], ti)
			default:
				return fmt.Errorf("core: torus step %d transfer %d crosses both dimensions: %v", si, ti, tr)
			}
		}
		for dom, tis := range byDomain {
			ring, ix := rowRing, rowIx
			if !dom.row {
				ring, ix = colRing, colIx
			}
			reqs := make([]rwa.Request, 0, len(tis))
			asn := make(rwa.Assignment, 0, len(tis))
			for _, ti := range tis {
				tr := st.Transfers[ti]
				sr, sc := t.Coord(tr.Src)
				dr, dc := t.Coord(tr.Dst)
				var src, dst int
				if dom.row {
					src, dst = sc, dc
				} else {
					src, dst = sr, dr
				}
				reqs = append(reqs, rwa.Request{Src: src, Dst: dst, Dir: tr.Dir})
				asn = append(asn, tr.Wavelength)
			}
			if err := ix.Validate(reqs, rwa.ArcsOf(ring, reqs), asn, wavelengths); err != nil {
				return fmt.Errorf("core: torus step %d (%v ring %d): %w", si, dom.row, dom.idx, err)
			}
		}
	}
	return nil
}

// StepsWRHTTorus returns the analytic step count of the torus scheme:
// 2·L_row (row gathers + broadcasts) plus the column all-reduce θ.
func StepsWRHTTorus(t topo.Torus, w, m int) (int, error) {
	rowSteps := 0
	if t.Cols > 1 {
		cfg := Config{N: t.Cols, Wavelengths: w, GroupSize: m, DisableAllToAll: true}
		st, err := StepsWRHT(cfg)
		if err != nil {
			return 0, err
		}
		rowSteps = st.Total
	}
	colSteps := 0
	if t.Rows > 1 {
		cfg := Config{N: t.Rows, Wavelengths: w, GroupSize: m}
		if cfg.GroupSize > t.Rows {
			cfg.GroupSize = 0
		}
		st, err := StepsWRHT(cfg)
		if err != nil {
			return 0, err
		}
		colSteps = st.Total
	}
	return rowSteps + colSteps, nil
}
