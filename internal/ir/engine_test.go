package ir

import (
	"reflect"
	"testing"

	"wrht/internal/core"
	"wrht/internal/fabric"
	"wrht/internal/optical"
)

// TestPassesOffEngineTimingIsBitIdentical is the acceptance criterion:
// with all passes disabled, running the round-tripped schedule — with
// the IR's precomputed boundary decisions replacing the engine's own
// probes — must reproduce the flat engine path bit for bit on the
// golden configs, per-step breakdown included.
func TestPassesOffEngineTimingIsBitIdentical(t *testing.T) {
	f, err := optical.DefaultParams().Fabric()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ n, w int }{
		{64, 8}, {64, 64}, {256, 64}, {1024, 64},
	} {
		s, err := core.BuildWRHT(core.Config{N: tc.n, Wavelengths: tc.w})
		if err != nil {
			t.Fatal(err)
		}
		for _, overlap := range []bool{false, true} {
			flat, err := fabric.Engine{Fabric: f, Opts: fabric.Options{Overlap: overlap}}.RunSchedule(s, 100e6)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Lower(s, tc.w)
			if err != nil {
				t.Fatal(err)
			}
			if err := (Pipeline{}).Run(p); err != nil {
				t.Fatal(err)
			}
			opts := fabric.Options{Overlap: overlap}
			if overlap {
				opts.BoundaryDisjoint = p.Boundaries()
			}
			ir, err := fabric.Engine{Fabric: f, Opts: opts}.RunSchedule(p.Raise(), 100e6)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(flat, ir) {
				t.Errorf("N=%d w=%d overlap=%v: IR path diverged from flat engine\nflat: %+v\nir:   %+v",
					tc.n, tc.w, overlap, flat, ir)
			}
		}
	}
}
