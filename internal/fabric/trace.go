package fabric

import (
	"fmt"

	"wrht/internal/trace"
)

// BreakdownRun exports a schedule run's per-step cost decomposition as a
// trace.Run: one series per cost component (reconfig, serialization,
// oeo, router-delay, overlapped), X ticks "step:phase", plus scalar
// totals. Recorded documents can be diffed and re-plotted outside the
// repo like every other figure trace.
func BreakdownRun(name string, res Result) trace.Run {
	n := len(res.PerStep)
	xticks := make([]string, n)
	series := map[string][]float64{
		"reconfig":      make([]float64, n),
		"serialization": make([]float64, n),
		"oeo":           make([]float64, n),
		"router-delay":  make([]float64, n),
		"overlapped":    make([]float64, n),
	}
	for i, sr := range res.PerStep {
		xticks[i] = fmt.Sprintf("%d:%s", i, sr.Phase)
		series["reconfig"][i] = sr.Cost.Setup
		series["serialization"][i] = sr.Cost.Serialization
		series["oeo"][i] = sr.Cost.OEO
		series["router-delay"][i] = sr.Cost.RouterDelay
		series["overlapped"][i] = sr.Overlapped
	}
	run := trace.NewRun(name, xticks, series, map[string]float64{
		"time":          res.Time,
		"transfer-time": res.TransferTime,
		"overhead-time": res.OverheadTime,
		"router-time":   res.RouterTime,
		"overlap-saved": res.OverlapSaved,
	})
	run.Params = map[string]string{
		"fabric":    res.Fabric,
		"algorithm": res.Algorithm,
	}
	return run
}
