package optical

import (
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/phys"
)

func TestEnergyPositiveAndAdditive(t *testing.T) {
	p := DefaultParams()
	ep := DefaultEnergyParams(phys.DefaultBudget())
	pr, err := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 64})
	if err != nil {
		t.Fatal(err)
	}
	e := EnergyOfProfile(p, ep, pr, 100e6)
	if e.LaserJ <= 0 || e.OEOJ <= 0 || e.TuningJ <= 0 {
		t.Fatalf("non-positive component: %+v", e)
	}
	if e.Total() != e.LaserJ+e.OEOJ+e.TuningJ {
		t.Fatal("total mismatch")
	}
	// Doubling the payload roughly doubles laser and O/E/O energy
	// (tuning is payload-independent).
	e2 := EnergyOfProfile(p, ep, pr, 200e6)
	if e2.LaserJ < 1.9*e.LaserJ || e2.OEOJ < 1.9*e.OEOJ {
		t.Fatalf("energy did not scale with payload: %+v vs %+v", e, e2)
	}
	if e2.TuningJ != e.TuningJ {
		t.Fatal("tuning energy should not depend on payload")
	}
}

func TestEnergyStepHeavyAlgorithmsPayMoreTuning(t *testing.T) {
	p := DefaultParams()
	ep := DefaultEnergyParams(phys.DefaultBudget())
	ring := EnergyOfProfile(p, ep, collective.RingProfile(1024), 100e6)
	pr, _ := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 64})
	wrht := EnergyOfProfile(p, ep, pr, 100e6)
	if ring.TuningJ <= wrht.TuningJ {
		t.Fatalf("Ring (2046 steps) should pay more tuning energy than WRHT (3): %g vs %g",
			ring.TuningJ, wrht.TuningJ)
	}
}

func TestDefaultEnergyParamsDerivation(t *testing.T) {
	b := phys.DefaultBudget() // 10 dBm = 10 mW optical
	ep := DefaultEnergyParams(b)
	if ep.LaserWallW < 0.09 || ep.LaserWallW > 0.11 {
		t.Fatalf("10 mW at 10%% efficiency should be ~0.1 W wall, got %g", ep.LaserWallW)
	}
}
