package train

import (
	"fmt"

	"wrht/internal/tensor"
)

// Optimizer updates a network's weights from its (already synchronised)
// gradients. SGD with momentum is the optimizer the paper's workloads
// historically train with (AlexNet/VGG/ResNet recipes), and its state
// (velocity) is one more reason gradient synchronisation must be exact:
// replicas integrate the same gradients into the same velocities, so a
// single mismatched all-reduce diverges all future steps.
type Optimizer interface {
	// Step applies one update to the network in place.
	Step(n *Net)
}

// SGD is plain stochastic gradient descent (Eq 4).
type SGD struct {
	LR float32
}

// Step implements Optimizer.
func (o SGD) Step(n *Net) { n.SGDStep(o.LR) }

// Momentum is SGD with heavy-ball momentum and optional L2 weight decay:
//
//	v ← µ·v + g + wd·w
//	w ← w − lr·v
type Momentum struct {
	LR          float32
	Mu          float32
	WeightDecay float32
	velocity    []tensor.Vector // one per layer, lazily initialised
}

// NewMomentum returns a momentum optimizer.
func NewMomentum(lr, mu, weightDecay float32) *Momentum {
	return &Momentum{LR: lr, Mu: mu, WeightDecay: weightDecay}
}

// Step implements Optimizer.
func (o *Momentum) Step(n *Net) {
	if o.velocity == nil {
		o.velocity = make([]tensor.Vector, len(n.Layers))
		for i, l := range n.Layers {
			w, _ := l.Params()
			o.velocity[i] = tensor.New(len(w))
		}
	}
	if len(o.velocity) != len(n.Layers) {
		panic(fmt.Sprintf("train: momentum state for %d layers applied to %d", len(o.velocity), len(n.Layers)))
	}
	for i, l := range n.Layers {
		w, g := l.Params()
		if w == nil {
			continue
		}
		v := o.velocity[i]
		for j := range v {
			v[j] = o.Mu*v[j] + g[j] + o.WeightDecay*w[j]
			w[j] -= o.LR * v[j]
		}
	}
}

// StepWith runs one synchronous data-parallel iteration like
// ParallelTrainer.Step but applies the provided per-replica optimizers
// instead of plain SGD. Each replica must own its own optimizer value
// (momentum state is per-replica, though identical across replicas by
// construction).
func (t *ParallelTrainer) StepWith(shardX [][][]float32, shardY [][]int, opts []Optimizer) (float64, error) {
	if len(opts) != len(t.Nets) {
		return 0, fmt.Errorf("train: %d optimizers for %d replicas", len(opts), len(t.Nets))
	}
	loss, err := t.stepGradients(shardX, shardY)
	if err != nil {
		return 0, err
	}
	for i, net := range t.Nets {
		opts[i].Step(net)
	}
	return loss, nil
}

// stepGradients computes and synchronises gradients without applying an
// update (factored out of Step so optimizers can vary).
func (t *ParallelTrainer) stepGradients(shardX [][][]float32, shardY [][]int) (float64, error) {
	n := len(t.Nets)
	if len(shardX) != n || len(shardY) != n {
		return 0, fmt.Errorf("train: %d shards for %d workers", len(shardX), n)
	}
	losses := make([]float64, n)
	if err := t.computeAndSync(shardX, shardY, losses); err != nil {
		return 0, err
	}
	var mean float64
	for _, l := range losses {
		mean += l
	}
	return mean / float64(n), nil
}
