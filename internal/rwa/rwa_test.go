package rwa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrht/internal/topo"
)

func randomRequests(rng *rand.Rand, n, count int) []Request {
	reqs := make([]Request, count)
	for i := range reqs {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		for dst == src {
			dst = rng.Intn(n)
		}
		dir := topo.CW
		if rng.Intn(2) == 1 {
			dir = topo.CCW
		}
		reqs[i] = Request{Src: src, Dst: dst, Dir: dir}
	}
	return reqs
}

func TestFirstFitConflictFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(40)
		r := topo.NewRing(n)
		reqs := randomRequests(rng, n, 1+rng.Intn(30))
		asn, used := Assign(r, reqs, FirstFit, nil)
		if err := Validate(r, reqs, asn, used); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRandomFitConflictFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(40)
		r := topo.NewRing(n)
		reqs := randomRequests(rng, n, 1+rng.Intn(30))
		asn, used := Assign(r, reqs, RandomFit, rng)
		if err := Validate(r, reqs, asn, used); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestFirstFitUsesNoMoreThanRandomFitOnIntervals(t *testing.T) {
	// On nested same-direction arcs (WRHT's gather pattern) first-fit is
	// optimal: k nested circuits need exactly k wavelengths.
	r := topo.NewRing(20)
	var reqs []Request
	for d := 1; d <= 8; d++ {
		reqs = append(reqs, Request{Src: 10 - d, Dst: 10, Dir: topo.CW})
	}
	_, used := Assign(r, reqs, FirstFit, nil)
	if used != 8 {
		t.Fatalf("first-fit used %d wavelengths on 8 nested arcs, want 8", used)
	}
}

func TestOppositeDirectionsShareWavelength(t *testing.T) {
	r := topo.NewRing(10)
	reqs := []Request{
		{Src: 2, Dst: 5, Dir: topo.CW},
		{Src: 8, Dst: 5, Dir: topo.CCW},
	}
	asn, used := Assign(r, reqs, FirstFit, nil)
	if used != 1 || asn[0] != 0 || asn[1] != 0 {
		t.Fatalf("opposite-direction circuits should share λ0, got %v (used %d)", asn, used)
	}
}

func TestDisjointArcsShareWavelength(t *testing.T) {
	r := topo.NewRing(12)
	reqs := []Request{
		{Src: 0, Dst: 3, Dir: topo.CW},
		{Src: 4, Dst: 7, Dir: topo.CW},
		{Src: 8, Dst: 11, Dir: topo.CW},
	}
	asn, used := Assign(r, reqs, FirstFit, nil)
	if used != 1 {
		t.Fatalf("disjoint arcs used %d wavelengths, want 1 (asn %v)", used, asn)
	}
}

func TestValidateDetectsConflict(t *testing.T) {
	r := topo.NewRing(10)
	reqs := []Request{
		{Src: 0, Dst: 5, Dir: topo.CW},
		{Src: 2, Dst: 7, Dir: topo.CW},
	}
	if err := Validate(r, reqs, Assignment{0, 0}, 0); err == nil {
		t.Fatal("overlapping same-direction same-wavelength circuits not detected")
	}
	if err := Validate(r, reqs, Assignment{0, 1}, 2); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	if err := Validate(r, reqs, Assignment{0, 5}, 2); err == nil {
		t.Fatal("over-budget wavelength not detected")
	}
	if err := Validate(r, reqs, Assignment{0}, 0); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if err := Validate(r, reqs, Assignment{0, -1}, 0); err == nil {
		t.Fatal("negative wavelength not detected")
	}
}

func TestAssignQuickProperty(t *testing.T) {
	f := func(seed int64, nRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 3
		r := topo.NewRing(n)
		reqs := randomRequests(rng, n, int(cRaw%25)+1)
		asn, used := Assign(r, reqs, FirstFit, nil)
		return Validate(r, reqs, asn, used) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomFitRequiresRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RandomFit without rng did not panic")
		}
	}()
	r := topo.NewRing(5)
	Assign(r, []Request{{Src: 0, Dst: 1, Dir: topo.CW}, {Src: 0, Dst: 2, Dir: topo.CW}}, RandomFit, nil)
}

func TestStrategyString(t *testing.T) {
	if FirstFit.String() != "first-fit" || RandomFit.String() != "random-fit" {
		t.Fatal("strategy strings")
	}
}
