package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChunkWhole(t *testing.T) {
	lo, hi := Whole.Range(17)
	if lo != 0 || hi != 17 {
		t.Fatalf("Whole.Range(17) = [%d,%d), want [0,17)", lo, hi)
	}
	if Whole.Fraction() != 1 {
		t.Fatalf("Whole.Fraction() = %g, want 1", Whole.Fraction())
	}
	if Whole.String() != "whole" {
		t.Fatalf("Whole.String() = %q", Whole.String())
	}
}

func TestChunkPartition(t *testing.T) {
	// For any (n, of) the chunks must exactly partition [0, n) in order.
	check := func(n, of int) {
		t.Helper()
		prev := 0
		for i := 0; i < of; i++ {
			lo, hi := (Chunk{Index: i, Of: of}).Range(n)
			if lo != prev {
				t.Fatalf("n=%d of=%d: chunk %d starts at %d, want %d", n, of, i, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d of=%d: chunk %d negative size", n, of, i)
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("n=%d of=%d: chunks end at %d, want %d", n, of, prev, n)
		}
	}
	for _, n := range []int{0, 1, 5, 16, 17, 100, 1023} {
		for _, of := range []int{1, 2, 3, 7, 16, 64} {
			check(n, of)
		}
	}
}

func TestChunkPartitionQuick(t *testing.T) {
	f := func(nRaw, ofRaw uint16) bool {
		n := int(nRaw % 5000)
		of := int(ofRaw%200) + 1
		prev := 0
		for i := 0; i < of; i++ {
			lo, hi := (Chunk{Index: i, Of: of}).Range(n)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkSizesBalanced(t *testing.T) {
	// Chunk sizes differ by at most one element.
	n, of := 1000, 7
	minSz, maxSz := n, 0
	for i := 0; i < of; i++ {
		lo, hi := (Chunk{Index: i, Of: of}).Range(n)
		if sz := hi - lo; sz < minSz {
			minSz = sz
		} else if sz > maxSz {
			maxSz = sz
		}
	}
	if maxSz-minSz > 1 {
		t.Fatalf("chunk size spread %d..%d > 1", minSz, maxSz)
	}
}

func TestNestedChunkWithinParent(t *testing.T) {
	f := func(nRaw, ofRaw, subRaw uint16) bool {
		n := int(nRaw%3000) + 1
		of := int(ofRaw%50) + 1
		subOf := int(subRaw%50) + 1
		for i := 0; i < of; i++ {
			plo, phi := (Chunk{Index: i, Of: of}).Range(n)
			prev := plo
			for q := 0; q < subOf; q++ {
				c := Chunk{Index: i, Of: of, Sub: &Chunk{Index: q, Of: subOf}}
				lo, hi := c.Range(n)
				if lo != prev || hi < lo || hi > phi {
					return false
				}
				prev = hi
			}
			if prev != phi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkValidate(t *testing.T) {
	cases := []struct {
		c  Chunk
		ok bool
	}{
		{Chunk{0, 1, nil}, true},
		{Chunk{3, 4, nil}, true},
		{Chunk{4, 4, nil}, false},
		{Chunk{-1, 4, nil}, false},
		{Chunk{0, 0, nil}, false},
		{Chunk{1, 2, &Chunk{Index: 1, Of: 3}}, true},
		{Chunk{1, 2, &Chunk{Index: 3, Of: 3}}, false},
	}
	for _, c := range cases {
		err := c.c.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) = %v, want ok=%v", c.c, err, c.ok)
		}
	}
}

func TestChunkString(t *testing.T) {
	c := Chunk{Index: 2, Of: 5, Sub: &Chunk{Index: 1, Of: 3}}
	if got := c.String(); got != "2/5.1/3" {
		t.Fatalf("String() = %q", got)
	}
}

func TestChunkBytes(t *testing.T) {
	c := Chunk{Index: 0, Of: 4}
	if got := c.Bytes(100); got != 100 { // 25 elements × 4 bytes
		t.Fatalf("Bytes(100) = %d, want 100", got)
	}
	if got := Whole.Bytes(10); got != 40 {
		t.Fatalf("Whole.Bytes(10) = %d, want 40", got)
	}
}

func TestAddScaleAXPY(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{10, 20, 30}
	Add(a, b)
	if a[0] != 11 || a[1] != 22 || a[2] != 33 {
		t.Fatalf("Add: %v", a)
	}
	Scale(a, 2)
	if a[0] != 22 || a[2] != 66 {
		t.Fatalf("Scale: %v", a)
	}
	AXPY(a, -2, b)
	if a[0] != 2 || a[1] != 4 || a[2] != 6 {
		t.Fatalf("AXPY: %v", a)
	}
}

func TestAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched lengths did not panic")
		}
	}()
	Add(Vector{1}, Vector{1, 2})
}

func TestSumDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if Sum(v) != 7 {
		t.Fatalf("Sum = %g", Sum(v))
	}
	if Dot(v, v) != 25 {
		t.Fatalf("Dot = %g", Dot(v, v))
	}
	if Norm2(v) != 5 {
		t.Fatalf("Norm2 = %g", Norm2(v))
	}
}

func TestReduceOpApply(t *testing.T) {
	dst := Vector{1, 1}
	OpSum.Apply(dst, Vector{2, 3})
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("OpSum: %v", dst)
	}
	OpCopy.Apply(dst, Vector{7, 8})
	if dst[0] != 7 || dst[1] != 8 {
		t.Fatalf("OpCopy: %v", dst)
	}
	if OpSum.String() != "sum" || OpCopy.String() != "copy" {
		t.Fatalf("op strings: %v %v", OpSum, OpCopy)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Vector{1, 2}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{1, 2.5, 3}
	if MaxAbsDiff(a, b) != 0.5 {
		t.Fatalf("MaxAbsDiff = %g", MaxAbsDiff(a, b))
	}
	if Equal(a, b, 0.4) {
		t.Fatal("Equal with tol 0.4 should fail")
	}
	if !Equal(a, b, 0.6) {
		t.Fatal("Equal with tol 0.6 should pass")
	}
	if Equal(a, Vector{1}, 1) {
		t.Fatal("Equal with different lengths should fail")
	}
}

func TestSliceAliases(t *testing.T) {
	v := Filled(10, 1)
	c := Chunk{Index: 1, Of: 2}
	s := c.Slice(v)
	if len(s) != 5 {
		t.Fatalf("slice len %d", len(s))
	}
	s[0] = 42
	if v[5] != 42 {
		t.Fatal("Slice does not alias")
	}
}

func TestFractionNested(t *testing.T) {
	c := Chunk{Index: 0, Of: 4, Sub: &Chunk{Index: 0, Of: 5}}
	if f := c.Fraction(); f != 0.05 {
		t.Fatalf("Fraction = %g, want 0.05", f)
	}
}

func BenchmarkAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	x, y := New(n), New(n)
	for i := range y {
		y[i] = rng.Float32()
	}
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add(x, y)
	}
}
