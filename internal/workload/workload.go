// Package workload synthesizes the per-workload measurements the paper
// collected with the TensorFlow profiler on 8× GTX TITAN XP GPUs (§5.1):
// per-iteration GPU compute time, peak memory, and the transferred
// gradient size. The paper observes that only the transferred size
// matters for all-reduce performance — that size comes straight from the
// model's parameter count, which internal/dnn reproduces — so a
// FLOPs-based compute model is a faithful substitute for the traces.
package workload

import (
	"fmt"

	"wrht/internal/dnn"
)

// GPUProfile describes the accelerator used for compute-time estimation.
type GPUProfile struct {
	Name string
	// PeakFLOPS is the peak fp32 throughput in FLOP/s.
	PeakFLOPS float64
	// Efficiency is the achieved fraction of peak for DNN training
	// (im2col'd convolutions and GEMMs typically sustain 30–50%).
	Efficiency float64
	// MemoryBytes is the device memory capacity, which bounds the batch
	// size (the paper tunes batch sizes to fully use GPU memory).
	MemoryBytes float64
}

// TitanXP returns the GTX TITAN XP profile used by the paper's testbed:
// 12.15 TFLOPS peak fp32, 12 GB memory.
func TitanXP() GPUProfile {
	return GPUProfile{Name: "TITAN XP", PeakFLOPS: 12.15e12, Efficiency: 0.38, MemoryBytes: 12e9}
}

// Workload is one distributed-training workload: a model, the per-GPU
// batch size, and the synthesized profile numbers.
type Workload struct {
	Model     dnn.Model
	BatchSize int
	// ComputeSecPerIter is the modeled per-iteration forward+backward
	// GPU time for the batch.
	ComputeSecPerIter float64
	// GradBytes is the all-reduce payload d (float32 gradient bytes).
	GradBytes float64
	// PeakMemBytes is the modeled activation+parameter memory at the
	// chosen batch size.
	PeakMemBytes float64
}

// activationBytesPerSample is a coarse per-model activation footprint
// estimate: activations dominate DNN training memory and scale linearly
// with batch size. Empirically, stored activations cost roughly two
// float32 values per 100 MACs (≈ 8 bytes per 400 FLOPs) across CNN and
// transformer models; this puts BEiT-L at ~2.5 GB/sample and ResNet50
// at ~160 MB/sample, consistent with fp32 training footprints on the
// paper's 12 GB TITAN XP cards.
func activationBytesPerSample(m dnn.Model) float64 {
	return float64(m.ForwardFLOPs()) * 8 / 400
}

// TuneBatchSize picks the largest power-of-two batch size whose modeled
// memory footprint (weights + gradients + optimizer + activations) fits
// the GPU, matching the paper's "batch sizes that fully utilize GPU
// memory" methodology.
func TuneBatchSize(m dnn.Model, gpu GPUProfile) int {
	fixed := float64(m.GradBytes()) * 3 // weights + grads + momentum
	per := activationBytesPerSample(m)
	b := 1
	for float64(2*b)*per+fixed <= gpu.MemoryBytes && b < 4096 {
		b *= 2
	}
	return b
}

// New builds the workload for a model on a GPU at the given batch size
// (0 = auto-tune to memory).
func New(m dnn.Model, gpu GPUProfile, batch int) Workload {
	if batch <= 0 {
		batch = TuneBatchSize(m, gpu)
	}
	flops := float64(m.TrainFLOPs()) * float64(batch)
	return Workload{
		Model:             m,
		BatchSize:         batch,
		ComputeSecPerIter: flops / (gpu.PeakFLOPS * gpu.Efficiency),
		GradBytes:         float64(m.GradBytes()),
		PeakMemBytes:      float64(m.GradBytes())*3 + float64(batch)*activationBytesPerSample(m),
	}
}

// PaperWorkloads returns the four §5.1 workloads with auto-tuned batch
// sizes on the TITAN XP profile, in figure order.
func PaperWorkloads() []Workload {
	gpu := TitanXP()
	models := dnn.Workloads()
	out := make([]Workload, len(models))
	for i, m := range models {
		out[i] = New(m, gpu, 0)
	}
	return out
}

func (w Workload) String() string {
	return fmt.Sprintf("%s(batch=%d, grad=%.0fMB, compute=%.1fms)",
		w.Model.Name, w.BatchSize, w.GradBytes/1e6, w.ComputeSecPerIter*1e3)
}

// IterationsPerEpoch returns the iteration count for one epoch over a
// dataset of the given size with n data-parallel workers.
func (w Workload) IterationsPerEpoch(datasetSize, n int) int {
	global := w.BatchSize * n
	if global < 1 {
		return 0
	}
	return (datasetSize + global - 1) / global
}
