// Package wrht_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`), plus ablation benches for the design
// choices DESIGN.md calls out. Each benchmark prints the reproduced rows
// once and reports the headline reduction percentages as custom metrics,
// so a bench run is a full reproduction pass.
package wrht_test

import (
	"fmt"
	"sync"
	"testing"

	"wrht"
	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/exp"
	"wrht/internal/fabric"
	"wrht/internal/optical"
	"wrht/internal/parallel"
	"wrht/internal/phys"
	"wrht/internal/rwa"
	"wrht/internal/topo"
	"wrht/internal/workload"
)

// once-guards so the tables print a single time however many benchmark
// iterations run.
var printOnce sync.Map

func printFirst(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

// BenchmarkTable1Steps regenerates Table 1 (communication step counts at
// N=1024, w=64) and measures the cost of computing it.
func BenchmarkTable1Steps(b *testing.B) {
	t1, err := exp.Table1()
	if err != nil {
		b.Fatal(err)
	}
	printFirst("table1", func() { b.Log("\n" + t1.String()) })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if t, err := exp.Table1(); err != nil || t == nil {
			b.Fatal("table1:", err)
		}
	}
}

// BenchmarkFig4GroupedNodes regenerates Figure 4 (grouped-node sweep).
func BenchmarkFig4GroupedNodes(b *testing.B) {
	o := exp.Defaults()
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig4(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) != 4 {
			b.Fatal("unexpected series count")
		}
		printFirst("fig4", func() { b.Log("\n" + fig.String()) })
	}
}

// BenchmarkFig5Wavelengths regenerates Figure 5 (wavelength sweep) and
// reports the mean reductions as custom metrics (paper: 13.74%, 9.29%,
// 75% for Ring, H-Ring, BT).
func BenchmarkFig5Wavelengths(b *testing.B) {
	o := exp.Defaults()
	var r exp.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = exp.Fig5(o); err != nil {
			b.Fatal(err)
		}
	}
	printFirst("fig5", func() {
		for _, f := range r.Figures {
			b.Log("\n" + f.String())
		}
	})
	b.ReportMetric(r.VsRing, "pct-vs-ring")
	b.ReportMetric(r.VsHRing, "pct-vs-hring")
	b.ReportMetric(r.VsBT, "pct-vs-bt")
}

// BenchmarkFig6NodeScaling regenerates Figure 6 (node scaling; paper
// headline: 65.23%, 43.81%, 82.22%) in both granularities.
func BenchmarkFig6NodeScaling(b *testing.B) {
	for _, g := range []exp.Granularity{exp.Fused, exp.Bucketed} {
		g := g
		b.Run(g.String(), func(b *testing.B) {
			o := exp.Defaults()
			o.Granularity = g
			var r exp.Fig6Result
			var err error
			for i := 0; i < b.N; i++ {
				if r, err = exp.Fig6(o); err != nil {
					b.Fatal(err)
				}
			}
			printFirst("fig6-"+g.String(), func() {
				for _, f := range r.Figures {
					b.Log("\n" + f.String())
				}
			})
			b.ReportMetric(r.VsRing, "pct-vs-ring")
			b.ReportMetric(r.VsHRing, "pct-vs-hring")
			b.ReportMetric(r.VsBT, "pct-vs-bt")
		})
	}
}

// BenchmarkFig7OpticalVsElectrical regenerates Figure 7 (paper headline:
// O-Ring −48.74% vs E-Ring; WRHT −61.23%/−55.51% vs E-Ring/E-RD). The
// electrical flow simulation dominates the runtime.
func BenchmarkFig7OpticalVsElectrical(b *testing.B) {
	o := exp.Defaults()
	var r exp.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = exp.Fig7(o); err != nil {
			b.Fatal(err)
		}
	}
	printFirst("fig7", func() {
		for _, f := range r.Figures {
			b.Log("\n" + f.String())
		}
	})
	b.ReportMetric(r.ORingVsERing, "pct-oring-vs-ering")
	b.ReportMetric(r.WRHTVsERing, "pct-wrht-vs-ering")
	b.ReportMetric(r.WRHTVsERD, "pct-wrht-vs-erd")
}

// BenchmarkConstraints regenerates the §4.4 feasible-group-size table.
func BenchmarkConstraints(b *testing.B) {
	printFirst("constraints", func() { b.Log("\n" + exp.Constraints().String()) })
	for i := 0; i < b.N; i++ {
		if exp.Constraints() == nil {
			b.Fatal("nil table")
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationAllToAll quantifies the final all-to-all step's value:
// θ = 2⌈log_m N⌉−1 with it versus 2⌈log_m N⌉ without (and the time delta
// on a BEiT-class gradient).
func BenchmarkAblationAllToAll(b *testing.B) {
	p := optical.DefaultParams()
	d := float64(dnn.BEiTLarge().GradBytes())
	var with, without float64
	for i := 0; i < b.N; i++ {
		on, err := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 64})
		if err != nil {
			b.Fatal(err)
		}
		off, err := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 64, DisableAllToAll: true})
		if err != nil {
			b.Fatal(err)
		}
		ron, _ := wrht.Simulate(wrht.Optical, on, d, wrht.WithOpticalParams(p))
		roff, _ := wrht.Simulate(wrht.Optical, off, d, wrht.WithOpticalParams(p))
		with, without = ron.Time, roff.Time
	}
	printFirst("abl-a2a", func() {
		b.Logf("all-to-all on: %.4fs (θ=3); off: %.4fs (θ=4); saving %.1f%%",
			with, without, 100*(1-with/without))
	})
	b.ReportMetric(100*(1-with/without), "pct-saving")
}

// BenchmarkAblationRWAStrategy compares first-fit (tiling construction)
// against random-fit wavelength counts on the all-to-all step.
func BenchmarkAblationRWAStrategy(b *testing.B) {
	var ff, rf int
	for i := 0; i < b.N; i++ {
		sf, err := core.BuildWRHT(core.Config{N: 300, Wavelengths: 8})
		if err != nil {
			b.Fatal(err)
		}
		sr, err := core.BuildWRHT(core.Config{N: 300, Wavelengths: 8, Strategy: rwa.RandomFit, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		ff, rf = sf.WavelengthsNeeded(), sr.WavelengthsNeeded()
	}
	printFirst("abl-rwa", func() {
		b.Logf("wavelengths needed: first-fit/tiling %d, random-fit %d", ff, rf)
	})
	b.ReportMetric(float64(ff), "ff-wavelengths")
	b.ReportMetric(float64(rf), "rf-wavelengths")
}

// BenchmarkAblationGranularity compares fused vs bucketed all-reduce
// timing for every workload on the 1024-node ring (the model-reading
// ablation DESIGN.md §5 documents).
func BenchmarkAblationGranularity(b *testing.B) {
	p := optical.DefaultParams()
	f, err := p.Fabric()
	if err != nil {
		b.Fatal(err)
	}
	eng := fabric.Engine{Fabric: f}
	prof, err := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 64})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]string, 0, 4)
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, m := range dnn.Workloads() {
			fused, err := eng.RunProfile(prof, float64(m.GradBytes()))
			if err != nil {
				b.Fatal(err)
			}
			bucketed, err := eng.RunBuckets(prof, m.Buckets(exp.BucketBytes))
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, fmt.Sprintf("%s fused %.4fs bucketed %.4fs (+%.2f%% overhead)",
				m.Name, fused.Time, bucketed.Time, 100*(bucketed.Time/fused.Time-1)))
		}
	}
	printFirst("abl-gran", func() {
		for _, r := range rows {
			b.Log(r)
		}
	})
}

// BenchmarkAblationTorus compares the flat-ring and torus WRHT variants
// under scarce wavelengths: steps and worst-case circuit length.
func BenchmarkAblationTorus(b *testing.B) {
	var flat, torus int
	for i := 0; i < b.N; i++ {
		st, err := core.StepsWRHT(core.Config{N: 1024, Wavelengths: 4})
		if err != nil {
			b.Fatal(err)
		}
		flat = st.Total
		ts, err := core.StepsWRHTTorus(topoTorus(), 4, 0)
		if err != nil {
			b.Fatal(err)
		}
		torus = ts
	}
	printFirst("abl-torus", func() {
		b.Logf("θ flat ring (N=1024, w=4): %d; θ 32x32 torus: %d", flat, torus)
	})
	b.ReportMetric(float64(flat), "flat-steps")
	b.ReportMetric(float64(torus), "torus-steps")
}

// BenchmarkScheduleConstruction measures BuildWRHT itself at paper scale.
func BenchmarkScheduleConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := core.BuildWRHT(core.Config{N: 4096, Wavelengths: 64})
		if err != nil {
			b.Fatal(err)
		}
		if s.NumSteps() == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func topoTorus() topo.Torus { return topo.NewTorus(32, 32) }

// BenchmarkExtrasComparison regenerates the beyond-paper six-algorithm
// table (time, wavelength feasibility, energy) at the Table-1 setting.
func BenchmarkExtrasComparison(b *testing.B) {
	o := exp.Defaults()
	for i := 0; i < b.N; i++ {
		t, err := exp.Extras(o, dnn.ResNet50(), 1024, 64)
		if err != nil || t == nil {
			b.Fatal("extras:", err)
		}
		printFirst("extras", func() { b.Log("\n" + t.String()) })
	}
}

// BenchmarkHybridParallel regenerates the §6.2 hybrid pipeline×data
// sweep for BEiT-L on 64 nodes.
func BenchmarkHybridParallel(b *testing.B) {
	var rows []string
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, p := range []int{1, 2, 4, 8} {
			sim := parallel.Sim{
				Model:          dnn.BEiTLarge(),
				Strat:          parallel.Strategy{Stages: p, Replicas: 64 / p},
				Microbatches:   8,
				MicrobatchSize: 2,
				GPU:            workload.TitanXP(),
				Optical:        optical.DefaultParams(),
			}
			res, err := sim.Run()
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, fmt.Sprintf("P=%d D=%d: pipeline %.1fms bubble %.1fms allreduce %.1fms total %.1fms",
				p, 64/p, res.PipelineSec*1e3, res.BubbleSec*1e3, res.AllReduceSec*1e3, res.TotalSec*1e3))
		}
	}
	printFirst("hybrid", func() {
		for _, r := range rows {
			b.Log(r)
		}
	})
}

// BenchmarkEnergyModel reports the per-collective communication energy
// at the Table-1 setting (ResNet50 gradient).
func BenchmarkEnergyModel(b *testing.B) {
	p := optical.DefaultParams()
	ep := optical.DefaultEnergyParams(phys.DefaultBudget())
	d := float64(dnn.ResNet50().GradBytes())
	var ringE, wrhtE float64
	for i := 0; i < b.N; i++ {
		prof, err := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 64})
		if err != nil {
			b.Fatal(err)
		}
		ringE = optical.EnergyOfProfile(p, ep, collective.RingProfile(1024), d).Total()
		wrhtE = optical.EnergyOfProfile(p, ep, prof, d).Total()
	}
	printFirst("energy", func() {
		b.Logf("communication energy, ResNet50 @ N=1024: Ring %.4f J, WRHT %.4f J", ringE, wrhtE)
	})
	b.ReportMetric(ringE, "ring-J")
	b.ReportMetric(wrhtE, "wrht-J")
}

// BenchmarkDataPlaneAllReduce measures the real in-process all-reduce
// throughput of the WRHT schedule on 64 workers with a 256k-element
// vector (64 MB of gradient state per iteration).
func BenchmarkDataPlaneAllReduce(b *testing.B) {
	const n, l = 64, 1 << 18
	sched, err := core.BuildWRHT(core.Config{N: n, Wavelengths: 8})
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]wrht.Vector, n)
	for i := range inputs {
		inputs[i] = make(wrht.Vector, l)
		for j := range inputs[i] {
			inputs[i][j] = float32(i + j)
		}
	}
	b.SetBytes(int64(n * l * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wrht.AllReduce(sched, inputs, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDoubleRing quantifies TeraRack's second fiber ring
// per direction (§3.2): doubling the circuit capacity doubles the
// Lemma-1 group size, which saves a step at the larger node counts.
func BenchmarkAblationDoubleRing(b *testing.B) {
	p := optical.DefaultParams()
	single, double := p.Wavelengths, p.EffectiveWavelengths()
	var rows []string
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, n := range []int{1024, 4096} {
			s1, err := core.StepsWRHT(core.Config{N: n, Wavelengths: single})
			if err != nil {
				b.Fatal(err)
			}
			s2, err := core.StepsWRHT(core.Config{N: n, Wavelengths: double})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, fmt.Sprintf("N=%d: single ring (w=%d) θ=%d; double ring (w=%d) θ=%d",
				n, single, s1.Total, double, s2.Total))
		}
	}
	printFirst("abl-doublering", func() {
		for _, r := range rows {
			b.Log(r)
		}
	})
}

// BenchmarkFabricOverlap measures the unified engine on the paper-scale
// WRHT schedule (N=4096, w=64, 100 MB) with and without
// reconfiguration–communication overlap, reporting the hidden setup
// time in microseconds (bounded by (θ−1)·a = 50 µs at θ=3).
func BenchmarkFabricOverlap(b *testing.B) {
	p := optical.DefaultParams()
	f, err := p.Fabric()
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.BuildWRHT(core.Config{N: 4096, Wavelengths: 64})
	if err != nil {
		b.Fatal(err)
	}
	var base, over fabric.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if base, err = (fabric.Engine{Fabric: f}).RunSchedule(s, 100e6); err != nil {
			b.Fatal(err)
		}
		eng := fabric.Engine{Fabric: f, Opts: fabric.Options{Overlap: true}}
		if over, err = eng.RunSchedule(s, 100e6); err != nil {
			b.Fatal(err)
		}
	}
	printFirst("fabric-overlap", func() {
		b.Logf("WRHT N=4096 w=64 d=100MB: sequential %.4fs, overlapped %.4fs (hid %.1f µs of reconfig)",
			base.Time, over.Time, over.OverlapSaved*1e6)
	})
	b.ReportMetric(over.OverlapSaved*1e6, "overlap-us")
}

// BenchmarkCrossFabric regenerates the cross-fabric table: identical
// explicit schedules timed by one engine on both the WDM ring and the
// fat-tree.
func BenchmarkCrossFabric(b *testing.B) {
	o := exp.Defaults()
	for i := 0; i < b.N; i++ {
		r, err := exp.CrossFabric(o, 128, 16, 25e6)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("crossfabric", func() { b.Log("\n" + r.Table.String()) })
	}
}

// BenchmarkStragglerSensitivity regenerates the DES-mode jitter study
// (a question the paper's deterministic model cannot ask).
func BenchmarkStragglerSensitivity(b *testing.B) {
	o := exp.Defaults()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := exp.Stragglers(o, dnn.ResNet50(), 128, 64, 0.2, 5, 1)
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	printFirst("stragglers", func() { b.Log("\n" + out) })
}
