package optical

import (
	"math"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
)

func TestEq6Reproduction(t *testing.T) {
	// A 3-step full-vector schedule must time out to exactly
	// T = 3·(d/B + a) plus the (tiny) per-packet O/E/O term.
	p := DefaultParams()
	cfg := core.Config{N: 1024, Wavelengths: 64, GroupSize: 129}
	prof, err := collective.WRHTProfile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := 100e6
	res, err := runProfile(p, prof, d)
	if err != nil {
		t.Fatal(err)
	}
	want := p.TimeParams().CommTime(3, d)
	oeo := 3 * math.Ceil(d/72) * p.OEOPerPacket
	if math.Abs(res.Time-(want+oeo)) > 1e-9 {
		t.Fatalf("profile time = %.9f, want Eq6 %.9f + oeo %.12f", res.Time, want, oeo)
	}
	if res.Steps != 3 {
		t.Fatalf("steps = %d", res.Steps)
	}
}

func TestScheduleAndProfileAgree(t *testing.T) {
	p := DefaultParams()
	d := float64(64 * 1000 * 4) // divisible by every chunk count below
	cfgs := []struct {
		name  string
		sched *core.Schedule
		prof  core.Profile
	}{}
	s1, _ := core.BuildWRHT(core.Config{N: 100, Wavelengths: 8})
	pr1, _ := collective.WRHTProfile(core.Config{N: 100, Wavelengths: 8})
	cfgs = append(cfgs,
		struct {
			name  string
			sched *core.Schedule
			prof  core.Profile
		}{"wrht", s1, pr1},
		struct {
			name  string
			sched *core.Schedule
			prof  core.Profile
		}{"ring", collective.BuildRing(64), collective.RingProfile(64)},
		struct {
			name  string
			sched *core.Schedule
			prof  core.Profile
		}{"bt", collective.BuildBT(64), collective.BTProfile(64)},
	)
	for _, c := range cfgs {
		rs, err := runSchedule(p, c.sched, d, false)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := runProfile(p, c.prof, d)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(rs.Time-rp.Time) / rs.Time; rel > 1e-6 {
			t.Errorf("%s: schedule %.9f vs profile %.9f (rel %g)", c.name, rs.Time, rp.Time, rel)
		}
	}
}

func TestEngineValidatesBudget(t *testing.T) {
	p := DefaultParams()
	p.Wavelengths = 1
	s, _ := core.BuildWRHT(core.Config{N: 100, Wavelengths: 8})
	if _, err := runSchedule(p, s, 1e6, true); err == nil {
		t.Fatal("8-wavelength schedule accepted on 1-wavelength system")
	}
	if _, err := runSchedule(p, s, 1e6, false); err != nil {
		t.Fatalf("validation disabled should pass: %v", err)
	}
}

func TestRingVsWRHTStepOverheadDominance(t *testing.T) {
	// For a small payload the 2046 Ring steps pay ~2046×25 µs while WRHT
	// pays 3×25 µs: WRHT must win by a wide margin (the paper's core
	// argument).
	p := DefaultParams()
	d := 1e6 // 1 MB
	ring, err := runProfile(p, collective.RingProfile(1024), d)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 64})
	wrht, err := runProfile(p, prof, d)
	if err != nil {
		t.Fatal(err)
	}
	if wrht.Time*10 > ring.Time {
		t.Fatalf("WRHT %.6f should be >10x faster than Ring %.6f on small payloads", wrht.Time, ring.Time)
	}
}

func TestOverheadTransferSplit(t *testing.T) {
	p := DefaultParams()
	prof, _ := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 64})
	res, err := runProfile(p, prof, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Time-(res.TransferTime+res.OverheadTime)) > 1e-12 {
		t.Fatal("time split does not add up")
	}
	if res.OverheadTime != float64(res.Steps)*p.ReconfigDelay {
		t.Fatalf("overhead %.9f != steps×a", res.OverheadTime)
	}
}

func TestRunBucketsAddsUp(t *testing.T) {
	p := DefaultParams()
	prof, _ := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 64})
	whole, err := runProfile(p, prof, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	split, err := runBuckets(p, prof, []float64{60e6, 40e6})
	if err != nil {
		t.Fatal(err)
	}
	// Same bytes, twice the per-step overhead.
	if split.TransferTime <= 0 || math.Abs(split.TransferTime-whole.TransferTime) > 1e-9 {
		t.Fatalf("bucketed transfer time %.9f vs fused %.9f", split.TransferTime, whole.TransferTime)
	}
	if math.Abs(split.OverheadTime-2*whole.OverheadTime) > 1e-12 {
		t.Fatalf("bucketed overhead %.9f vs fused %.9f", split.OverheadTime, whole.OverheadTime)
	}
}

func TestFeasibleWavelengths(t *testing.T) {
	p := DefaultParams() // 64 λ
	ok, _ := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 64})
	if !p.FeasibleWavelengths(ok) {
		t.Fatal("129-group WRHT should fit 64 wavelengths")
	}
	big, _ := collective.WRHTProfile(core.Config{N: 1024, Wavelengths: 256})
	if p.FeasibleWavelengths(big) {
		t.Fatal("513-group WRHT must not fit 64 wavelengths")
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{Wavelengths: 0, BandwidthBps: 1, PacketBytes: 72},
		{Wavelengths: 1, BandwidthBps: 0, PacketBytes: 72},
		{Wavelengths: 1, BandwidthBps: 1, PacketBytes: 0},
	}
	prof := collective.RingProfile(4)
	for _, p := range bad {
		if _, err := runProfile(p, prof, 1); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestTimeParamsConversion(t *testing.T) {
	tp := DefaultParams().TimeParams()
	if tp.BytesPerSec != 5e9 || tp.StepOverheadSec != 25e-6 {
		t.Fatalf("TimeParams = %+v", tp)
	}
}

func TestEffectiveWavelengths(t *testing.T) {
	p := DefaultParams()
	if p.EffectiveWavelengths() != 128 {
		t.Fatalf("default (2 fibers × 64 λ) = %d, want 128", p.EffectiveWavelengths())
	}
	p.FibersPerDirection = 0
	if p.EffectiveWavelengths() != 64 {
		t.Fatalf("zero fibers should clamp to 1: %d", p.EffectiveWavelengths())
	}
}
