// Package obs is the simulator's observability layer: a tracer that
// emits Chrome Trace Event / Perfetto-loadable JSON timelines in
// simulated time, and a registry of named counters and gauges.
//
// Everything here is zero-cost when disabled. Producers (the fabric
// engine, the DES kernel, the sweep engine, the training timeline) take
// a nil-able observer/tracer/registry; a nil value is one pointer
// comparison on the hot path and no allocations, pinned by
// BenchmarkEngineNilObserver in internal/fabric.
//
// Timestamps are simulated seconds supplied by the producer — never
// time.Now — so an emitted trace file is a pure function of the
// simulated run and byte-identical across invocations (golden-tested).
// The only clock the tracer knows is the injectable Clock field, the
// same pattern trace.Recorder uses for its Now field; it exists for
// diagnostic wall-clock tracks (sweep progress) and deterministic tests.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are
// safe on a nil receiver (no-ops / zero), so producers can hold the
// result of Registry.Counter on a nil registry without branching.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric (accumulated seconds, ratios). Like Counter
// it is nil-safe and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a namespace of counters and gauges. Metric handles are
// created on first use and live for the registry's lifetime; lookups on
// a nil registry return nil handles whose methods no-op, so one nil
// check at wiring time covers an entire instrumented subsystem.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot is a point-in-time copy of every metric, JSON-serializable
// with deterministic (sorted) key order.
type Snapshot struct {
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// Snapshot captures the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Gauges: map[string]float64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	return s
}

// WriteText writes the snapshot as sorted "name value" lines.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", name, v))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile dumps the metrics to path: JSON when the path ends in
// ".json", text lines otherwise. A path of "-" writes text to stdout.
func (r *Registry) WriteFile(path string) error {
	if path == "-" {
		return r.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = r.WriteJSON(f)
	} else {
		err = r.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
