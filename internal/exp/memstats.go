package exp

import (
	"fmt"
	"runtime"

	"wrht/internal/core"
	"wrht/internal/rwa"
)

// Memory accounting for schedule construction — the measurement behind
// the streaming refactor's headline claim (peak memory O(max step) +
// O(index) instead of O(total schedule)) and the `wrhtsim build
// -memstats` report. Sampling forces a GC and reads HeapAlloc, so the
// numbers are live-set bytes, not allocation throughput; forcing a GC
// per sample is affordable because WRHT streams have O(log N) steps.

// MemReport describes the memory footprint of one schedule
// construction (and optional validation) run.
type MemReport struct {
	Mode      string // "materialized" or "streamed"
	Algorithm string
	Nodes     int
	Steps     int
	Transfers int // total transfers across all steps
	// BaselineBytes is the live heap before construction started,
	// PeakBytes the largest live heap sampled during the run (after each
	// step for streams; after build and validation for materialized).
	BaselineBytes uint64
	PeakBytes     uint64
}

// AttributableBytes is the peak live heap growth over the baseline.
func (r MemReport) AttributableBytes() uint64 {
	if r.PeakBytes < r.BaselineBytes {
		return 0
	}
	return r.PeakBytes - r.BaselineBytes
}

// BytesPerNode normalizes the attributable peak by the ring size.
func (r MemReport) BytesPerNode() float64 {
	if r.Nodes == 0 {
		return 0
	}
	return float64(r.AttributableBytes()) / float64(r.Nodes)
}

func (r MemReport) String() string {
	return fmt.Sprintf("%s %s N=%d: %d steps, %d transfers, peak live heap +%.2f MB (%.1f B/node)",
		r.Mode, r.Algorithm, r.Nodes, r.Steps, r.Transfers,
		float64(r.AttributableBytes())/(1<<20), r.BytesPerNode())
}

// liveHeap forces a collection and returns the live HeapAlloc.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// StreamedBuildMem drives a schedule stream end to end — validating
// each step through the delta occupancy index when validate is set —
// and reports the peak live heap along the way. The schedule is never
// materialized; what the measurement sees is the producer's step
// buffer, the occupancy index, and the validator scratch.
func StreamedBuildMem(mkSource func() (core.StepSource, error), wavelengths int, validate bool) (MemReport, error) {
	rep := MemReport{Mode: "streamed", BaselineBytes: liveHeap()}
	src, err := mkSource()
	if err != nil {
		return MemReport{}, err
	}
	rep.Algorithm = src.Algorithm()
	rep.Nodes = src.Ring().N
	var v *core.StepValidator
	if validate {
		v = core.NewStepValidator(src.Ring(), rwa.NewIndex(src.Ring()), wavelengths)
	}
	sample := func() {
		if h := liveHeap(); h > rep.PeakBytes {
			rep.PeakBytes = h
		}
	}
	sample()
	for {
		st, ok := src.Next()
		if !ok {
			break
		}
		rep.Steps++
		rep.Transfers += len(st.Transfers)
		if v != nil {
			if err := v.Step(st); err != nil {
				return MemReport{}, err
			}
		}
		sample()
	}
	return rep, nil
}

// MaterializedBuildMem builds the full schedule, optionally validates
// it, and reports the peak live heap with the whole schedule resident —
// the number the streamed path is compared against.
func MaterializedBuildMem(build func() (*core.Schedule, error), wavelengths int, validate bool) (MemReport, error) {
	rep := MemReport{Mode: "materialized", BaselineBytes: liveHeap()}
	s, err := build()
	if err != nil {
		return MemReport{}, err
	}
	rep.Algorithm = s.Algorithm
	rep.Nodes = s.Ring.N
	rep.Steps = s.NumSteps()
	for _, st := range s.Steps {
		rep.Transfers += len(st.Transfers)
	}
	rep.PeakBytes = liveHeap()
	if validate {
		// Validate step by step (the same validator Schedule.Validate
		// runs), sampling after every step so transient validator scratch
		// is measured while the schedule is still resident — a single
		// post-validation sample would let it be collected before the
		// read and under-report the materialized peak.
		src := s.Source()
		v := core.NewStepValidator(s.Ring, rwa.NewIndex(s.Ring), wavelengths)
		for {
			st, ok := src.Next()
			if !ok {
				break
			}
			if err := v.Step(st); err != nil {
				return MemReport{}, err
			}
			if h := liveHeap(); h > rep.PeakBytes {
				rep.PeakBytes = h
			}
		}
	}
	runtime.KeepAlive(s)
	return rep, nil
}
